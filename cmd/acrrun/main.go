// Command acrrun executes one of the paper's mini-applications live under
// full ACR protection — replicated execution, coordinated checkpointing,
// SDC detection, hard-error recovery — with optional failure injection, and
// reports the run statistics and event timeline. This is the end-to-end
// demonstration counterpart of the simulated figures.
//
// Example:
//
//	acrrun -app "Jacobi3D Charm++" -scheme medium -iters 800 -kill 20ms -sdc
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"acr/internal/apps"
	"acr/internal/buildinfo"
	"acr/internal/core"
	"acr/internal/runtime"
	"acr/internal/trace"
)

func main() {
	var (
		appName  = flag.String("app", "Jacobi3D Charm++", "mini-app (see -list)")
		list     = flag.Bool("list", false, "list the available mini-apps and exit")
		schemeS  = flag.String("scheme", "strong", "resilience scheme: strong | medium | weak")
		method   = flag.String("method", "full", "SDC comparison: full | checksum")
		nodes    = flag.Int("nodes", 2, "logical nodes per replica")
		tasks    = flag.Int("tasks", 2, "tasks per node")
		spares   = flag.Int("spares", 2, "spare nodes")
		iters    = flag.Int("iters", 600, "application iterations")
		interval = flag.Duration("interval", 5*time.Millisecond, "checkpoint interval (0 = hard-error-only mode)")
		adaptive = flag.Bool("adaptive", false, "adapt the interval to observed failures")
		estim    = flag.String("estimator", "trend", "adaptive MTBF estimator: trend | mean | weibull")
		kill     = flag.Duration("kill", 0, "inject a fail-stop error after this delay (0 = none)")
		sdc      = flag.Bool("sdc", false, "inject one silent data corruption")
		semi     = flag.Bool("semiblocking", false, "overlap checkpoint comparison with execution (§4.2 extension)")
		predict  = flag.Duration("predict", 0, "emit a failure prediction after this delay (0 = none)")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout, "acrrun", *showVersion) {
		return
	}

	if *list {
		for _, s := range apps.Table2() {
			fmt.Printf("%-18s (%s) %s\n", s.Name, s.Model, s.Config)
		}
		return
	}
	spec, err := apps.SpecByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrrun:", err)
		os.Exit(1)
	}
	var scheme core.Scheme
	switch *schemeS {
	case "strong":
		scheme = core.Strong
	case "medium":
		scheme = core.Medium
	case "weak":
		scheme = core.Weak
	default:
		fmt.Fprintf(os.Stderr, "acrrun: unknown scheme %q\n", *schemeS)
		os.Exit(1)
	}
	cmp := core.FullCompare
	if *method == "checksum" {
		cmp = core.ChecksumCompare
	}
	var estimator core.Estimator
	switch *estim {
	case "trend":
		estimator = core.TrendEstimator
	case "mean":
		estimator = core.MeanEstimator
	case "weibull":
		estimator = core.WeibullEstimator
	default:
		fmt.Fprintf(os.Stderr, "acrrun: unknown estimator %q\n", *estim)
		os.Exit(1)
	}

	tl := &trace.Timeline{}
	ctrl, err := core.New(core.Config{
		NodesPerReplica:    *nodes,
		TasksPerNode:       *tasks,
		Spares:             *spares,
		Factory:            spec.Factory(*iters),
		Scheme:             scheme,
		Comparison:         cmp,
		CheckpointInterval: *interval,
		Adaptive:           *adaptive,
		Estimator:          estimator,
		SemiBlocking:       *semi,
		HeartbeatInterval:  time.Millisecond,
		HeartbeatTimeout:   10 * time.Millisecond,
		Timeline:           tl,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrrun:", err)
		os.Exit(1)
	}
	if *sdc {
		ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 1, Node: 0, Task: 0})
	}
	if *kill > 0 {
		go func() {
			time.Sleep(*kill)
			ctrl.KillNode(0, *nodes-1)
		}()
	}
	if *predict > 0 {
		go func() {
			time.Sleep(*predict)
			ctrl.PredictFailure()
		}()
	}

	fmt.Printf("running %s under ACR (%s scheme, %s comparison, %d+%d nodes x %d tasks, %d iters)\n",
		spec.Name, scheme, cmp, 2**nodes, *spares, *tasks, *iters)
	stats, err := ctrl.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrrun: run failed:", err)
		os.Exit(1)
	}
	fmt.Printf("completed in %v\n", stats.Elapsed.Round(time.Millisecond))
	fmt.Printf("  checkpoints committed : %d\n", stats.Checkpoints)
	fmt.Printf("  SDC detected          : %d\n", stats.SDCDetected)
	fmt.Printf("  hard errors recovered : %d (spares used %d)\n", stats.HardErrors, stats.SparesUsed)
	fmt.Printf("  replica rollbacks     : %d\n", stats.Rollbacks)
	fmt.Printf("  final interval        : %v\n", stats.FinalInterval)
	fmt.Println("timeline:")
	for _, e := range tl.Events() {
		if e.Kind == trace.Progress {
			continue
		}
		fmt.Printf("  t=%8.4fs %-10s %s\n", e.Time, e.Kind, e.Detail)
	}
}

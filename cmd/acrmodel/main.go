// Command acrmodel explores the §5 performance/reliability model directly:
// given a machine and application point, it prints the optimal checkpoint
// period, total execution time, utilization, and undetected-SDC probability
// for the three resilience schemes, plus the Figure 1 and Figure 7 sweeps.
package main

import (
	"flag"
	"fmt"
	"os"

	"acr/internal/buildinfo"
	"acr/internal/expt"
	"acr/internal/model"
)

func main() {
	var (
		w       = flag.Float64("work", 24*3600, "total computation time W in seconds")
		delta   = flag.Float64("delta", 15, "checkpoint time in seconds")
		rh      = flag.Float64("rh", 30, "hard-error restart time in seconds")
		rs      = flag.Float64("rs", 10, "SDC restart time in seconds")
		sockets = flag.Int("sockets", 16384, "sockets per replica")
		mtbf    = flag.Float64("mtbf-years", 50, "per-socket hard-error MTBF in years")
		fit     = flag.Float64("fit", 100, "per-socket SDC rate in FIT")
		sweeps  = flag.Bool("sweeps", false, "also print the Figure 1 and Figure 7 sweeps")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout, "acrmodel", *showVersion) {
		return
	}

	p := model.Params{
		W:                   *w,
		Delta:               *delta,
		RH:                  *rh,
		RS:                  *rs,
		SocketsPerReplica:   *sockets,
		HardMTBFSocketYears: *mtbf,
		SDCFITPerSocket:     *fit,
	}
	fmt.Printf("machine: %d sockets/replica, hard MTBF %.3g s, SDC MTBF %.3g s\n",
		p.SocketsPerReplica, p.HardMTBF(), p.SDCMTBF())
	fmt.Printf("%-8s %10s %12s %12s %12s\n", "scheme", "tau*(s)", "T(s)", "utilization", "P(undet SDC)")
	for _, s := range model.Schemes() {
		tau, util, err := p.Utilization(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrmodel:", err)
			os.Exit(1)
		}
		total, err := p.TotalTime(s, tau)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrmodel:", err)
			os.Exit(1)
		}
		und, err := p.UndetectedSDCProb(s, tau)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrmodel:", err)
			os.Exit(1)
		}
		fmt.Printf("%-8s %10.1f %12.0f %12.4f %12.5f\n", s, tau, total, util, und)
	}
	if *sweeps {
		fmt.Println()
		expt.FprintFig1(os.Stdout)
		fmt.Println()
		if err := expt.FprintFig7(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "acrmodel:", err)
			os.Exit(1)
		}
	}
}

// Command acrload is the seeded closed-loop load generator for an acrd
// daemon: it submits N ring jobs over the HTTP API at a target rate,
// follows them to completion, verifies golden-ring results, and emits a
// JSON report with submit/completion latency percentiles.
//
// Usage:
//
//	acrload -addr http://127.0.0.1:7946 -jobs 8 -seed 1 -verify
//	acrload -addr ... -jobs 4 -seed 1 -submit-only        # leave running
//	acrload -addr ... -wait-existing -verify              # adopt & finish
//
// The same -seed always submits the same job shapes, so a -submit-only run
// before a daemon kill and a -wait-existing run after -resume together
// assert crash-restart correctness end to end (the acrd-smoke CI job).
//
// Exit status: 0 all jobs succeeded (and verified, when asked), 1 any job
// failed, verification mismatched, or the run errored, 2 usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"acr/internal/acrd/loadgen"
	"acr/internal/buildinfo"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:7946", "daemon base URL")
		jobs       = flag.Int("jobs", 4, "jobs to submit")
		conc       = flag.Int("concurrency", 2, "closed-loop width")
		rate       = flag.Float64("rate", 0, "target submit rate per second (0 = unpaced)")
		seed       = flag.Int64("seed", 1, "job-shape seed")
		nodesMin   = flag.Int("nodes-min", 1, "min nodes per replica")
		nodesMax   = flag.Int("nodes-max", 2, "max nodes per replica")
		tasksMin   = flag.Int("tasks-min", 1, "min tasks per node")
		tasksMax   = flag.Int("tasks-max", 2, "max tasks per node")
		itersMin   = flag.Int("iters-min", 10000, "min ring laps")
		itersMax   = flag.Int("iters-max", 30000, "max ring laps")
		flushEvery = flag.Int("flush-every", 1, "durable flush cadence")
		submitOnly = flag.Bool("submit-only", false, "return once each job has a durable epoch; leave jobs running")
		waitExist  = flag.Bool("wait-existing", false, "adopt the daemon's existing jobs instead of submitting")
		verifyFlag = flag.Bool("verify", false, "golden-ring verify completed jobs")
		timeout    = flag.Duration("timeout", 5*time.Minute, "whole-run deadline")
		out        = flag.String("out", "", "write the JSON report here as well as stdout")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout, "acrload", *showVersion) {
		return
	}
	if *submitOnly && *waitExist {
		fmt.Fprintln(os.Stderr, "acrload: -submit-only and -wait-existing are mutually exclusive")
		os.Exit(2)
	}

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:     *addr,
		Jobs:        *jobs,
		Concurrency: *conc,
		RatePerSec:  *rate,
		Seed:        *seed,
		NodesMin:    *nodesMin, NodesMax: *nodesMax,
		TasksMin: *tasksMin, TasksMax: *tasksMax,
		ItersMin: *itersMin, ItersMax: *itersMax,
		FlushEvery:   *flushEvery,
		SubmitOnly:   *submitOnly,
		WaitExisting: *waitExist,
		Verify:       *verifyFlag,
		Timeout:      *timeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "acrload: %v\n", err)
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "acrload: marshal report: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	os.Stdout.Write(blob)
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "acrload: write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}

	bad := len(rep.Errors) > 0 || rep.Failed > 0 || rep.VerifyBad > 0
	if !*submitOnly && rep.Completed != rep.Submitted {
		bad = true
	}
	if *verifyFlag && rep.Verified+rep.Failed < rep.Completed {
		// Unverified completions are fine only when they predate this
		// daemon life; those are not counted Verified. Don't fail on them.
		bad = bad || rep.VerifyBad > 0
	}
	if bad {
		os.Exit(1)
	}
}

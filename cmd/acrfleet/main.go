// Command acrfleet runs a multi-job fleet campaign from a JSON spec: many
// concurrent ACR jobs multiplexed over a shared node pool, a shared spare
// pool, and a shared disk-bandwidth budget (internal/fleet). Optional
// seeded kills inject hard errors into admitted jobs, exercising the
// fleet's spare brokering; every default-workload job is verified bit for
// bit against the serial ring reference at the end.
//
// Usage:
//
//	go run ./cmd/acrfleet -spec examples/fleet_spec/fleet16.json
//	go run ./cmd/acrfleet -spec examples/fleet_spec/smoke8.json -timeline
//
// Output is one JSON report on stdout: fleet stats (admissions, queue
// waits, spare grants, preemptions, per-job degraded time, I/O-arbiter
// counters) plus any oracle violations.
//
// Exit status: 0 clean, 1 violations (failed jobs, golden mismatches, or
// drain timeout), 2 usage or spec errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"acr/internal/buildinfo"
	"acr/internal/core"
	"acr/internal/fleet"
	"acr/internal/trace"
)

// fileSpec is the on-disk campaign format. Durations are milliseconds and
// schemes are names, so specs stay hand-editable.
type fileSpec struct {
	Nodes         int     `json:"nodes"`
	Spares        int     `json:"spares"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	TransferSlots int     `json:"transfer_slots"`
	WatchdogSec   float64 `json:"watchdog_sec"`

	Jobs  []fileJob  `json:"jobs"`
	Kills []fileKill `json:"kills"`
}

type fileJob struct {
	Name       string  `json:"name"`
	Priority   int     `json:"priority"`
	Nodes      int     `json:"nodes"`
	Tasks      int     `json:"tasks"`
	Spares     int     `json:"spares"`
	Iters      int     `json:"iters"`
	Scheme     string  `json:"scheme"`
	Comparison string  `json:"comparison"`
	IntervalMs float64 `json:"interval_ms"`
	FlushEvery int     `json:"flush_every"`
}

type fileKill struct {
	Job     int     `json:"job"`
	Replica int     `json:"replica"`
	Node    int     `json:"node"`
	AfterMs float64 `json:"after_ms"`
}

type report struct {
	Spec       string           `json:"spec"`
	Elapsed    float64          `json:"elapsed_sec"`
	Stats      fleet.FleetStats `json:"stats"`
	Violations []string         `json:"violations,omitempty"`
}

func main() {
	var (
		specPath = flag.String("spec", "", "fleet campaign JSON (required)")
		timeline = flag.Bool("timeline", false, "dump fleet trace events to stderr")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout, "acrfleet", *showVersion) {
		return
	}
	if *specPath == "" {
		fatalf("-spec is required")
	}
	blob, err := os.ReadFile(*specPath)
	if err != nil {
		fatalf("%v", err)
	}
	var spec fileSpec
	if err := json.Unmarshal(blob, &spec); err != nil {
		fatalf("parse %s: %v", *specPath, err)
	}
	if len(spec.Jobs) == 0 {
		fatalf("%s: no jobs", *specPath)
	}
	for _, k := range spec.Kills {
		if k.Job < 0 || k.Job >= len(spec.Jobs) {
			fatalf("%s: kill targets job %d of %d", *specPath, k.Job, len(spec.Jobs))
		}
	}
	watchdog := 2 * time.Minute
	if spec.WatchdogSec > 0 {
		watchdog = time.Duration(spec.WatchdogSec * float64(time.Second))
	}

	var tl *trace.Timeline
	if *timeline {
		tl = &trace.Timeline{}
	}
	sched, err := fleet.New(fleet.Config{
		Nodes:         spec.Nodes,
		Spares:        spec.Spares,
		BytesPerSec:   spec.BytesPerSec,
		TransferSlots: spec.TransferSlots,
		Timeline:      tl,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer sched.Close()

	start := time.Now()
	jobs := make([]*fleet.Job, len(spec.Jobs))
	for i, fj := range spec.Jobs {
		js, err := toJobSpec(fj, i)
		if err != nil {
			fatalf("%s: job %d: %v", *specPath, i, err)
		}
		jobs[i], err = sched.Submit(js)
		if err != nil {
			fatalf("%s: job %d: %v", *specPath, i, err)
		}
	}
	for _, k := range spec.Kills {
		k := k
		j := jobs[k.Job]
		go func() {
			<-j.Admitted()
			time.Sleep(time.Duration(k.AfterMs * float64(time.Millisecond)))
			if ctrl := j.Controller(); ctrl != nil {
				ctrl.KillNode(k.Replica, k.Node)
			}
		}()
	}

	rep := report{Spec: *specPath}
	stats, err := sched.Drain(watchdog)
	if err != nil {
		rep.Violations = append(rep.Violations, "no-deadlock: "+err.Error())
	} else {
		for i, j := range jobs {
			res := j.Wait()
			if !res.Completed {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("job %d (%s): did not complete: %s", i, res.Name, res.Err))
				continue
			}
			for _, e := range fleet.VerifyRing(j) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("golden-result: job %d (%s): %v", i, res.Name, e))
			}
		}
		stats = sched.Stats()
	}
	rep.Stats = stats
	rep.Elapsed = time.Since(start).Seconds()

	if tl != nil {
		for _, e := range tl.Events() {
			fmt.Fprintf(os.Stderr, "%8.3fs %-6s %s\n", e.Time, e.Kind, e.Detail)
		}
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	os.Stdout.Write(append(out, '\n'))
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}

func toJobSpec(fj fileJob, i int) (fleet.JobSpec, error) {
	js := fleet.JobSpec{
		Name:       fj.Name,
		Priority:   fj.Priority,
		Nodes:      fj.Nodes,
		Tasks:      fj.Tasks,
		Spares:     fj.Spares,
		Iters:      fj.Iters,
		FlushEvery: fj.FlushEvery,
		Interval:   time.Duration(fj.IntervalMs * float64(time.Millisecond)),
	}
	if js.Name == "" {
		js.Name = fmt.Sprintf("job-%02d", i)
	}
	switch fj.Scheme {
	case "strong", "":
		js.Scheme = core.Strong
	case "medium":
		js.Scheme = core.Medium
	case "weak":
		js.Scheme = core.Weak
	default:
		return js, fmt.Errorf("unknown scheme %q", fj.Scheme)
	}
	switch fj.Comparison {
	case "full", "":
		js.Comparison = core.FullCompare
	case "checksum":
		js.Comparison = core.ChecksumCompare
	default:
		return js, fmt.Errorf("unknown comparison %q", fj.Comparison)
	}
	return js, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "acrfleet: "+format+"\n", args...)
	os.Exit(2)
}

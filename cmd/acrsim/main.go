// Command acrsim regenerates the paper's tables and figures. Model- and
// network-driven figures (1, 6, 7, 8, 9, 10, 11, 12) evaluate instantly;
// Figure 5 executes a live replicated run with an injected failure per
// resilience scheme.
//
// Usage:
//
//	acrsim -fig 8        # one figure
//	acrsim -table 2      # Table 2
//	acrsim -all          # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"acr/internal/buildinfo"
	"acr/internal/expt"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (1, 4, 5, 6, 7, 8, 9, 10, 11, 12)")
	table := flag.Int("table", 0, "table number to regenerate (2)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	ablations := flag.Bool("ablations", false, "run the design-choice ablation studies")
	asCSV := flag.Bool("csv", false, "emit the figure as CSV instead of a formatted table (with -fig)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout, "acrsim", *showVersion) {
		return
	}

	w := os.Stdout
	run := func(n int) error {
		if *asCSV {
			return expt.WriteCSV(w, n)
		}
		switch n {
		case 1:
			expt.FprintFig1(w)
			return nil
		case 4:
			expt.FprintFig4(w)
			return nil
		case 5:
			return expt.FprintFig5(w)
		case 6:
			expt.FprintFig6(w)
			return nil
		case 7:
			return expt.FprintFig7(w)
		case 8:
			return expt.FprintFig8(w)
		case 9:
			return expt.FprintFig9(w)
		case 10:
			return expt.FprintFig10(w)
		case 11:
			return expt.FprintFig11(w)
		case 12:
			return expt.FprintFig12(w)
		default:
			return fmt.Errorf("unknown figure %d", n)
		}
	}

	switch {
	case *all:
		expt.FprintTable2(w)
		for _, n := range []int{1, 4, 6, 7, 8, 9, 10, 11, 12, 5} {
			if err := run(n); err != nil {
				fmt.Fprintln(os.Stderr, "acrsim:", err)
				os.Exit(1)
			}
		}
		if err := expt.FprintAblations(w); err != nil {
			fmt.Fprintln(os.Stderr, "acrsim:", err)
			os.Exit(1)
		}
	case *ablations:
		if err := expt.FprintAblations(w); err != nil {
			fmt.Fprintln(os.Stderr, "acrsim:", err)
			os.Exit(1)
		}
	case *table == 2:
		expt.FprintTable2(w)
	case *fig != 0:
		if err := run(*fig); err != nil {
			fmt.Fprintln(os.Stderr, "acrsim:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// Command acrsoak drives deterministic fault-injection campaigns against
// the live controller (internal/chaos) and judges every run with the
// invariant oracle. The default campaign sweeps the stock scenario set
// across a seed range; the same seed range always yields a byte-identical
// JSON report (unless -budget truncates the sweep).
//
// Usage:
//
//	acrsoak -seeds 25 -budget 30s          # CI soak smoke
//	acrsoak -seeds 100 -parallel 8 -json report.json
//	acrsoak -campaign my.json -seeds 10    # custom scenario file
//	acrsoak -repro 17                      # replay seed 17, verbose
//	acrsoak -repro 17 -minimize            # + shrink violating schedules
//
// Exit status: 0 clean, 1 invariant violations found, 2 usage or
// execution error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"acr/internal/buildinfo"
	"acr/internal/chaos"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 5, "seeds per scenario (seed range is seed-base..seed-base+seeds-1)")
		seedBase = flag.Int64("seed-base", 1, "first seed of the range")
		parallel = flag.Int("parallel", 4, "concurrent runs")
		budget   = flag.Duration("budget", 0, "wall-clock budget for the whole campaign; 0 = unlimited (runs past the budget are skipped and counted as truncated)")
		watchdog = flag.Duration("watchdog", 0, "per-run deadlock watchdog; 0 = default")
		campFile = flag.String("campaign", "", "JSON file with a scenario or an array of scenarios (default: built-in campaign)")
		scenName = flag.String("scenario", "", "run only the scenario with this name")
		jsonOut  = flag.String("json", "", "write the deterministic JSON report to this file ('-' = stdout)")
		csvOut   = flag.String("csv", "", "write a per-run CSV to this file ('-' = stdout)")
		repro    = flag.Int64("repro", 0, "replay every scenario at this single seed with verbose per-fault output")
		minimize = flag.Bool("minimize", false, "with -repro: shrink each violating fault schedule to a 1-minimal subset (ddmin)")
		quiet    = flag.Bool("quiet", false, "suppress the progress line per finished run")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout, "acrsoak", *showVersion) {
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "acrsoak: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	scenarios, name, err := loadScenarios(*campFile, *scenName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrsoak:", err)
		os.Exit(2)
	}

	if *repro != 0 {
		os.Exit(runRepro(scenarios, *repro, *watchdog, *minimize))
	}

	cfg := chaos.CampaignConfig{
		Name:      name,
		Scenarios: scenarios,
		SeedBase:  *seedBase,
		Seeds:     *seeds,
		Parallel:  *parallel,
		Budget:    *budget,
		Watchdog:  *watchdog,
	}
	if !*quiet {
		cfg.OnRun = func(res chaos.RunResult) {
			fmt.Fprintf(os.Stderr, "  %-28s seed %-4d %s\n",
				res.Report.Scenario, res.Report.Seed, res.Report.Outcome)
		}
	}
	start := time.Now()
	rep, err := chaos.RunCampaign(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrsoak:", err)
		os.Exit(2)
	}
	if err := emit(rep, *jsonOut, *csvOut); err != nil {
		fmt.Fprintln(os.Stderr, "acrsoak:", err)
		os.Exit(2)
	}
	summarize(rep, time.Since(start))
	if rep.Violations > 0 {
		os.Exit(1)
	}
}

// loadScenarios resolves the scenario set: the built-in campaign, or a
// JSON file holding one scenario or an array of them, optionally filtered
// by name.
func loadScenarios(path, only string) ([]chaos.Scenario, string, error) {
	scenarios := chaos.DefaultCampaign()
	name := "default"
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, "", err
		}
		if err := json.Unmarshal(data, &scenarios); err != nil {
			// Not an array; accept a single scenario object.
			scn, serr := chaos.ParseScenario(data)
			if serr != nil {
				return nil, "", fmt.Errorf("%s: not a scenario array (%v) nor a scenario (%v)", path, err, serr)
			}
			scenarios = []chaos.Scenario{scn}
		}
		name = path
	}
	if only != "" {
		var kept []chaos.Scenario
		for _, s := range scenarios {
			if s.Name == only {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			return nil, "", fmt.Errorf("no scenario named %q", only)
		}
		scenarios = kept
	}
	for i := range scenarios {
		if err := scenarios[i].Validate(); err != nil {
			return nil, "", err
		}
	}
	return scenarios, name, nil
}

// runRepro replays every scenario at one seed with full fault records —
// the single-run debugging mode. Returns the process exit code.
func runRepro(scenarios []chaos.Scenario, seed int64, watchdog time.Duration, minimize bool) int {
	code := 0
	for _, scn := range scenarios {
		res, err := chaos.RunScenario(scn, seed, watchdog, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrsoak:", err)
			return 2
		}
		r := res.Report
		fmt.Printf("%s seed %d: %s\n", r.Scenario, r.Seed, r.Outcome)
		for _, f := range r.Faults {
			status := "executed"
			if !f.Executed {
				status = "NOT executed"
			}
			fmt.Printf("  fault %s on %s at %s occurrence %d: %s\n",
				f.Kind, f.Target, f.Point, f.Occurrence, status)
		}
		for _, v := range r.Violations {
			fmt.Printf("  VIOLATION %s: %s\n", v.Invariant, v.Detail)
		}
		if len(r.Violations) > 0 {
			code = 1
			if minimize {
				min, err := chaos.MinimizeSchedule(scn, seed, watchdog)
				if err != nil {
					fmt.Fprintln(os.Stderr, "acrsoak: minimize:", err)
					return 2
				}
				out, err := json.MarshalIndent(min.Scenario, "", "  ")
				if err != nil {
					fmt.Fprintln(os.Stderr, "acrsoak:", err)
					return 2
				}
				fmt.Printf("  minimal schedule (%d fault(s), %d runs spent):\n%s\n",
					len(min.Scenario.Faults), min.Runs, out)
			}
		}
	}
	return code
}

// emit writes the requested report renderings ('-' = stdout).
func emit(rep *chaos.Report, jsonOut, csvOut string) error {
	write := func(path string, data []byte) error {
		if path == "-" {
			_, err := os.Stdout.Write(data)
			return err
		}
		return os.WriteFile(path, data, 0o644)
	}
	if jsonOut != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := write(jsonOut, data); err != nil {
			return err
		}
	}
	if csvOut != "" {
		if err := write(csvOut, []byte(rep.CSV())); err != nil {
			return err
		}
	}
	return nil
}

// summarize prints the human-readable campaign digest to stderr, keeping
// stdout clean for '-json -' / '-csv -'.
func summarize(rep *chaos.Report, elapsed time.Duration) {
	outcomes := map[string]int{}
	for _, run := range rep.Runs {
		outcomes[run.Outcome]++
	}
	fmt.Fprintf(os.Stderr, "campaign %q: %d runs in %s", rep.Campaign, len(rep.Runs), elapsed.Round(time.Millisecond))
	for _, k := range []string{chaos.OutcomeOK, chaos.OutcomeDetectedAtRest, chaos.OutcomeUnrecoverable, chaos.OutcomeViolation} {
		if n := outcomes[k]; n > 0 {
			fmt.Fprintf(os.Stderr, ", %d %s", n, k)
		}
	}
	if rep.Truncated > 0 {
		fmt.Fprintf(os.Stderr, ", %d truncated by budget", rep.Truncated)
	}
	fmt.Fprintln(os.Stderr)
	missed := 0
	for _, c := range rep.Coverage {
		if !c.Exercised {
			missed++
			fmt.Fprintf(os.Stderr, "coverage: injection point %s never exercised\n", c.Point)
		}
	}
	if missed == 0 {
		fmt.Fprintf(os.Stderr, "coverage: all %d injection points exercised\n", len(rep.Coverage))
	}
	if rep.Violations > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d invariant violation(s); rerun with -repro <seed> [-minimize]\n", rep.Violations)
	}
}

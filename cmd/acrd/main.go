// Command acrd runs the ACR checkpoint/restart control plane as a
// long-running service: a fleet scheduler behind an HTTP/JSON API, with
// every submission, durable flush, and result fsynced into a journal under
// -data so the daemon itself is crash-restartable.
//
// Usage:
//
//	acrd -addr :7946 -data /var/lib/acrd -nodes 64 -spares 4
//	acrd -addr :7946 -data /var/lib/acrd -resume   # after a crash
//
// Endpoints: /healthz, /metrics (Prometheus), /api/v1/jobs (POST submit,
// GET list), /api/v1/jobs/{id}[/progress|/inventory|/verify|/flush|
// /restore], /api/v1/fleet, /api/v1/resume. See DESIGN.md §14.
//
// SIGINT/SIGTERM drain gracefully: running jobs are settled (not journaled
// done), so a subsequent -resume readmits them exactly like a crash would.
// Exit status: 0 clean shutdown, 1 startup or serve error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"acr/internal/acrd"
	"acr/internal/buildinfo"
	"acr/internal/fleet"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7946", "HTTP listen address")
		dataDir   = flag.String("data", "", "durable state directory (required)")
		resume    = flag.Bool("resume", false, "replay the journal and readmit unfinished jobs")
		nodes     = flag.Int("nodes", 64, "physical node pool")
		spares    = flag.Int("spares", 4, "shared spare pool")
		bps       = flag.Float64("bytes-per-sec", 0, "disk-tier flush bandwidth budget (0 = unthrottled)")
		slots     = flag.Int("transfer-slots", 0, "concurrent disk transfers (0 = unlimited)")
		opTimeout = flag.Duration("op-timeout", 30*time.Second, "on-demand flush/restore timeout")
		authToken = flag.String("auth-token", "", "token required on mutating API routes (default $ACRD_TOKEN; empty = open)")

		remote     = flag.Bool("remote", false, "enable the remote object-store checkpoint tier")
		remEvery   = flag.Int("remote-every", 4, "default remote upload cadence in committed epochs")
		remLatency = flag.Duration("remote-latency", 0, "simulated remote per-op latency")
		remFault   = flag.Float64("remote-fault-rate", 0, "simulated remote per-op transient fault probability [0,1)")
		remSeed    = flag.Int64("remote-seed", 1, "remote fault-schedule seed (offset per job)")
		remBW      = flag.Float64("remote-bw", 0, "remote-tier upload bandwidth budget in bytes/sec (0 = unthrottled)")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout, "acrd", *showVersion) {
		return
	}
	if *dataDir == "" {
		fatalf("-data is required")
	}
	if *authToken == "" {
		*authToken = os.Getenv("ACRD_TOKEN")
	}
	if *remFault < 0 || *remFault >= 1 {
		fatalf("-remote-fault-rate must be in [0,1), got %g", *remFault)
	}

	srv, err := acrd.New(acrd.Config{
		DataDir: *dataDir,
		Fleet: fleet.Config{
			Nodes:             *nodes,
			Spares:            *spares,
			BytesPerSec:       *bps,
			TransferSlots:     *slots,
			RemoteBytesPerSec: *remBW,
		},
		Resume:    *resume,
		OpTimeout: *opTimeout,
		AuthToken: *authToken,
		Remote: acrd.RemoteConfig{
			Enabled:   *remote,
			Every:     *remEvery,
			Latency:   *remLatency,
			FaultRate: *remFault,
			Seed:      *remSeed,
		},
	})
	if err != nil {
		fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		fatalf("listen %s: %v", *addr, err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "acrd: %s listening on http://%s (data %s)\n",
		buildinfo.Get("acrd").String(), ln.Addr(), *dataDir)
	if rep := srv.ResumeReport(); rep.Resumed {
		fmt.Fprintf(os.Stderr, "acrd: resume: %d readmitted, %d finished, %d cold; %d epochs salvaged, %d skipped\n",
			rep.Readmitted, rep.Finished, rep.ColdStarted, rep.SalvagedEpochs, rep.SkippedEpochs)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "acrd: %v; draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = hs.Shutdown(ctx)
		cancel()
		srv.Close()
	case err := <-errCh:
		srv.Close()
		fatalf("serve: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "acrd: "+format+"\n", args...)
	os.Exit(1)
}

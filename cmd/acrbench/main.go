// Command acrbench measures the live checkpoint commit path — replica
// capture, buddy comparison, and the full round — at several machine
// shapes, each in two variants: the pinned serial baseline
// (core.Config.SerialCommitPath, the pre-fast-path behavior) and the
// default fast path (concurrent replica capture, size-hint single-pass
// packing, pooled checkpoint buffers, parallel compare). It emits the
// results as a JSON report, the repo's benchmark trajectory.
//
// Usage:
//
//	go run ./cmd/acrbench                         # full matrix, writes BENCH_checkpoint.json
//	go run ./cmd/acrbench -quick                  # CI smoke subset
//	go run ./cmd/acrbench -quick -against BENCH_checkpoint.json -tolerance 0.25
//
// With -against, the run is additionally checked for regressions versus a
// baseline report: a case fails when its speedup ratio degrades by more
// than -tolerance relative to the baseline (only enforced where the
// baseline itself showed a speedup), or its fast-path allocs/op grow by
// more than -tolerance. Ratios, not absolute nanoseconds, so the gate is
// meaningful across machines.
//
// Exit status: 0 clean, 1 regression detected, 2 usage or execution error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	stdruntime "runtime"

	"acr/internal/core"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "run only the smoke-subset of machine shapes")
		count     = flag.Int("count", 3, "measure each cell this many times, keep the fastest")
		out       = flag.String("out", "BENCH_checkpoint.json", "write the JSON report to this file ('-' = stdout only)")
		against   = flag.String("against", "", "baseline report to check for regressions")
		tolerance = flag.Float64("tolerance", 0.25, "allowed relative regression vs the baseline")
	)
	flag.Parse()

	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	logf("acrbench: GOMAXPROCS=%d quick=%v count=%d", stdruntime.GOMAXPROCS(0), *quick, *count)

	report, err := core.RunCheckpointBench(*quick, *count, stdruntime.GOMAXPROCS(0), logf)
	if err != nil {
		fatalf("bench: %v", err)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		logf("acrbench: wrote %s (%d cases)", *out, len(report.Cases))
	}

	if *against == "" {
		return
	}
	base, err := readReport(*against)
	if err != nil {
		fatalf("baseline: %v", err)
	}
	regressions, skipped := check(base, report, *tolerance)
	for _, s := range skipped {
		logf("acrbench: case %s not in baseline %s, skipped (regenerate the baseline to gate it)", s, *against)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		os.Exit(1)
	}
	logf("acrbench: no regressions vs %s (tolerance %.0f%%, %d cases checked, %d skipped)",
		*against, *tolerance*100, len(report.Cases)-len(skipped), len(skipped))
}

func readReport(path string) (*core.BenchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r core.BenchReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// check compares the fresh run against the baseline case by case (by
// name, so a -quick run checks against the matching subset of a full
// baseline). Gated quantities are machine-portable ratios:
//
//   - speedup (serial and fast are measured in the same run, so their
//     ratio cancels the machine's absolute speed), enforced only where
//     the baseline itself showed a >1.05x speedup;
//   - fast-path allocs/op, which are deterministic counts, with a small
//     absolute slack for one-off warmup allocations.
//
// A case missing from the baseline (a shape added after the baseline was
// generated) cannot be gated; it is returned in skipped so the caller
// reports it loudly instead of silently passing it.
func check(base, cur *core.BenchReport, tol float64) (regressions, skipped []string) {
	for i := range cur.Cases {
		c := &cur.Cases[i]
		b := base.Find(c.Name)
		if b == nil {
			skipped = append(skipped, c.Name)
			continue
		}
		if b.Speedup > 1.05 && c.Speedup < b.Speedup*(1-tol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: speedup %.2fx, baseline %.2fx (allowed >= %.2fx)",
				c.Name, c.Speedup, b.Speedup, b.Speedup*(1-tol)))
		}
		allowedAllocs := int64(float64(b.Fast.AllocsPerOp)*(1+tol)) + 4
		if c.Fast.AllocsPerOp > allowedAllocs {
			regressions = append(regressions, fmt.Sprintf(
				"%s: fast path %d allocs/op, baseline %d (allowed <= %d)",
				c.Name, c.Fast.AllocsPerOp, b.Fast.AllocsPerOp, allowedAllocs))
		}
	}
	return regressions, skipped
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "acrbench: "+format+"\n", args...)
	os.Exit(2)
}

// Command acrbench measures the live checkpoint commit path — replica
// capture, buddy comparison, and the full round — at several machine
// shapes, each in two variants: the pinned serial baseline
// (core.Config.SerialCommitPath, the pre-fast-path behavior) and the
// default fast path (concurrent replica capture, size-hint single-pass
// packing, pooled checkpoint buffers, parallel compare). It emits the
// results as a JSON report, the repo's benchmark trajectory.
//
// Usage:
//
//	go run ./cmd/acrbench                         # full matrix, writes BENCH_checkpoint.json
//	go run ./cmd/acrbench -quick                  # CI smoke subset
//	go run ./cmd/acrbench -quick -against BENCH_checkpoint.json -tolerance 0.25
//
// With -against, the run is additionally checked for regressions versus a
// baseline report: a case fails when its speedup ratio degrades by more
// than -tolerance relative to the baseline (only enforced where the
// baseline itself showed a speedup), or its fast-path allocs/op grow by
// more than -tolerance. Ratios, not absolute nanoseconds, so the gate is
// meaningful across machines. Cases present only on one side are never
// silently dropped: current-run cases missing from the baseline and
// baseline cases missing from the current run are both logged to stderr.
//
// Unless -fleet=false, the run also covers the fleet layer
// (internal/fleet): the fleet-scale case measures wall-clock per committed
// epoch of the sharded discrete-event fleet at 2 versus 16 jobs (131,072
// simulated cores) and gates per-epoch growth at 1.3x — an absolute,
// machine-portable bound checked even without a baseline; and a seeded
// 16-job failure burst over one shared spare must finish with zero oracle
// violations (every job completes with its bit-identical golden result).
//
// Exit status: 0 clean, 1 regression or fleet violation, 2 usage or
// execution error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	stdruntime "runtime"
	"runtime/pprof"
	"time"

	"acr/internal/buildinfo"
	"acr/internal/core"
	"acr/internal/fleet"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "run only the smoke-subset of machine shapes")
		count      = flag.Int("count", 3, "measure each cell this many times, keep the fastest")
		out        = flag.String("out", "BENCH_checkpoint.json", "write the JSON report to this file ('-' = stdout only)")
		against    = flag.String("against", "", "baseline report to check for regressions")
		tolerance  = flag.Float64("tolerance", 0.25, "allowed relative regression vs the baseline")
		withFleet  = flag.Bool("fleet", true, "run the fleet scaling case and failure-burst campaign")
		burstSeed  = flag.Int64("burst-seed", 1, "seed for the fleet failure-burst kill plan")
		only       = flag.String("only", "", "run only machine shapes whose name contains this substring")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the bench run to this file")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout, "acrbench", *showVersion) {
		return
	}

	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	logf("acrbench: GOMAXPROCS=%d quick=%v count=%d fleet=%v only=%q", stdruntime.GOMAXPROCS(0), *quick, *count, *withFleet, *only)

	// The profile brackets the measurement section only and is flushed
	// before any gate can os.Exit, so a failing run still ships a usable
	// profile for triage.
	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "acrbench: close %s: %v\n", *cpuprofile, err)
			}
			stopProfile = func() {}
		}
	}

	report, err := core.RunCheckpointBench(*quick, *count, stdruntime.GOMAXPROCS(0), *only, logf)
	if err != nil {
		stopProfile()
		fatalf("bench: %v", err)
	}
	if *withFleet {
		cs, err := fleet.RunFleetScalingBench(*quick, *count, logf)
		if err != nil {
			stopProfile()
			fatalf("fleet bench: %v", err)
		}
		report.Cases = append(report.Cases, cs)
		if err := runBurst(*burstSeed, logf); err != nil {
			stopProfile()
			fmt.Fprintln(os.Stderr, "VIOLATION:", err)
			os.Exit(1)
		}
	}
	stopProfile()

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		logf("acrbench: wrote %s (%d cases)", *out, len(report.Cases))
	}

	// The fleet-scale gate is absolute (per-epoch growth <= 1.3x at 8x the
	// jobs), so it holds with or without a baseline.
	var regressions []string
	if c := report.Find(fleet.FleetScaleCaseName); c != nil && c.Speedup < 1/fleetScaleBudget {
		regressions = append(regressions, fmt.Sprintf(
			"%s: per-epoch cost at 16 jobs is %.2fx the 2-job cost (allowed <= %.2fx)",
			c.Name, 1/c.Speedup, fleetScaleBudget))
	}

	if *against != "" {
		base, err := readReport(*against)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		baselineRegressions, skippedCur, skippedBase := check(base, report, *tolerance)
		regressions = append(regressions, baselineRegressions...)
		for _, s := range skippedCur {
			logf("acrbench: case %s not in baseline %s, skipped (regenerate the baseline to gate it)", s, *against)
		}
		for _, s := range skippedBase {
			logf("acrbench: baseline case %s not produced by this run, skipped (full baseline vs -quick run, or a removed shape)", s)
		}
		if len(regressions) == 0 {
			logf("acrbench: no regressions vs %s (tolerance %.0f%%, %d cases checked, %d skipped)",
				*against, *tolerance*100, len(report.Cases)-len(skippedCur), len(skippedCur)+len(skippedBase))
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		os.Exit(1)
	}
}

// fleetScaleBudget is the allowed per-epoch wall-clock growth when the
// simulated fleet's job count grows 8x (2 -> 16 jobs).
const fleetScaleBudget = 1.3

// runBurst runs the seeded 16-job failure-burst acceptance campaign: one
// shared spare, six kills, and a zero-violation oracle.
func runBurst(seed int64, logf func(format string, args ...any)) error {
	spec := fleet.DefaultBurstSpec(seed)
	rep, err := fleet.RunBurst(spec)
	if err != nil {
		return err
	}
	logf("fleet-burst: %d jobs, %d kills, %d grants, %d preemptions, %v degraded total, %v elapsed",
		spec.Jobs, len(spec.Kills), rep.Stats.SpareGrants, rep.Stats.Preemptions,
		rep.Stats.DegradedTime.Round(time.Millisecond), rep.Elapsed.Round(time.Millisecond))
	if len(rep.Violations) > 0 {
		return fmt.Errorf("fleet-burst (seed %d): %d oracle violations, first: %s",
			seed, len(rep.Violations), rep.Violations[0])
	}
	return nil
}

func readReport(path string) (*core.BenchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r core.BenchReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// check compares the fresh run against the baseline case by case (by
// name, so a -quick run checks against the matching subset of a full
// baseline). Gated quantities are machine-portable ratios:
//
//   - speedup (serial and fast are measured in the same run, so their
//     ratio cancels the machine's absolute speed), enforced only where
//     the baseline itself showed a >1.05x speedup;
//   - fast-path allocs/op, which are deterministic counts, with a small
//     absolute slack for one-off warmup allocations.
//
// A case missing from the baseline (a shape added after the baseline was
// generated) cannot be gated, and neither can a baseline case this run did
// not produce (a full baseline checked by a -quick run, or a shape that was
// removed); both are returned so the caller reports them loudly instead of
// silently passing them.
func check(base, cur *core.BenchReport, tol float64) (regressions, skippedCur, skippedBase []string) {
	for i := range base.Cases {
		if cur.Find(base.Cases[i].Name) == nil {
			skippedBase = append(skippedBase, base.Cases[i].Name)
		}
	}
	for i := range cur.Cases {
		c := &cur.Cases[i]
		b := base.Find(c.Name)
		if b == nil {
			skippedCur = append(skippedCur, c.Name)
			continue
		}
		if b.Speedup > 1.05 && c.Speedup < b.Speedup*(1-tol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: speedup %.2fx, baseline %.2fx (allowed >= %.2fx)",
				c.Name, c.Speedup, b.Speedup, b.Speedup*(1-tol)))
		}
		allowedAllocs := int64(float64(b.Fast.AllocsPerOp)*(1+tol)) + 4
		if c.Fast.AllocsPerOp > allowedAllocs {
			regressions = append(regressions, fmt.Sprintf(
				"%s: fast path %d allocs/op, baseline %d (allowed <= %d)",
				c.Name, c.Fast.AllocsPerOp, b.Fast.AllocsPerOp, allowedAllocs))
		}
	}
	return regressions, skippedCur, skippedBase
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "acrbench: "+format+"\n", args...)
	os.Exit(2)
}

package main

import (
	"strings"
	"testing"

	"acr/internal/core"
)

func report(cases ...core.BenchCase) *core.BenchReport {
	return &core.BenchReport{Version: 1, Cases: cases}
}

func okCase(name string) core.BenchCase {
	return core.BenchCase{
		Name:    name,
		Serial:  core.BenchMeasurement{NsPerOp: 1000, AllocsPerOp: 100},
		Fast:    core.BenchMeasurement{NsPerOp: 250, AllocsPerOp: 10},
		Speedup: 4.0,
	}
}

func TestCheckClean(t *testing.T) {
	base := report(okCase("shape/round"))
	regressions, skippedCur, skippedBase := check(base, report(okCase("shape/round")), 0.25)
	if len(regressions) != 0 || len(skippedCur) != 0 || len(skippedBase) != 0 {
		t.Fatalf("clean run reported regressions=%v skipped=%v/%v", regressions, skippedCur, skippedBase)
	}
}

func TestCheckSkipsAndReportsMissingBaselineCase(t *testing.T) {
	base := report(okCase("shape/round"))
	cur := report(okCase("shape/round"), okCase("new-shape/round"))
	regressions, skippedCur, skippedBase := check(base, cur, 0.25)
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", regressions)
	}
	if len(skippedCur) != 1 || skippedCur[0] != "new-shape/round" {
		t.Fatalf("skipped = %v, want exactly [new-shape/round]", skippedCur)
	}
	if len(skippedBase) != 0 {
		t.Fatalf("skippedBase = %v, want none", skippedBase)
	}
}

func TestCheckReportsBaselineCasesMissingFromRun(t *testing.T) {
	// A full baseline checked by a -quick run: the un-run cases must be
	// surfaced, not silently passed.
	base := report(okCase("shape/round"), okCase("big-shape/round"))
	cur := report(okCase("shape/round"))
	regressions, skippedCur, skippedBase := check(base, cur, 0.25)
	if len(regressions) != 0 || len(skippedCur) != 0 {
		t.Fatalf("unexpected regressions=%v skippedCur=%v", regressions, skippedCur)
	}
	if len(skippedBase) != 1 || skippedBase[0] != "big-shape/round" {
		t.Fatalf("skippedBase = %v, want exactly [big-shape/round]", skippedBase)
	}
}

func TestCheckFlagsSpeedupRegression(t *testing.T) {
	base := report(okCase("shape/round"))
	cur := report(okCase("shape/round"))
	cur.Cases[0].Speedup = 2.0 // below 4.0 * (1 - 0.25)
	regressions, skippedCur, skippedBase := check(base, cur, 0.25)
	if len(skippedCur) != 0 || len(skippedBase) != 0 {
		t.Fatalf("unexpected skips: %v/%v", skippedCur, skippedBase)
	}
	if len(regressions) != 1 || !strings.Contains(regressions[0], "speedup") {
		t.Fatalf("regressions = %v, want one speedup regression", regressions)
	}
}

func TestCheckIgnoresSpeedupWhereBaselineHadNone(t *testing.T) {
	// Speedup gate only applies where the baseline itself beat 1.05x.
	c := okCase("shape/compare")
	c.Speedup = 1.0
	base := report(c)
	cur := report(c)
	cur.Cases[0].Speedup = 0.5
	regressions, _, _ := check(base, cur, 0.25)
	if len(regressions) != 0 {
		t.Fatalf("gated a case whose baseline showed no speedup: %v", regressions)
	}
}

func TestCheckFlagsAllocRegression(t *testing.T) {
	base := report(okCase("shape/round"))
	cur := report(okCase("shape/round"))
	// Allowed is 10*1.25 + 4 = 16.
	cur.Cases[0].Fast.AllocsPerOp = 17
	regressions, _, _ := check(base, cur, 0.25)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "allocs/op") {
		t.Fatalf("regressions = %v, want one alloc regression", regressions)
	}
}

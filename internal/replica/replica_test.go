package replica

import (
	"testing"

	"acr/internal/topology"
)

func layout(t *testing.T, scheme topology.Scheme, chunk int) *Layout {
	t.Helper()
	tr, err := topology.NewTorus(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := topology.NewMapping(tr, scheme, chunk)
	if err != nil {
		t.Fatal(err)
	}
	return NewLayout(m)
}

func TestLayoutCoversBothReplicas(t *testing.T) {
	for _, s := range []topology.Scheme{topology.DefaultScheme, topology.ColumnScheme} {
		l := layout(t, s, 0)
		if l.NodesPerReplica() != 256 {
			t.Fatalf("%v: nodes per replica = %d, want 256", s, l.NodesPerReplica())
		}
		seen := make(map[int]bool)
		for rep := 0; rep < 2; rep++ {
			for i := 0; i < l.NodesPerReplica(); i++ {
				r := l.TorusRank(rep, i)
				if seen[r] {
					t.Fatalf("%v: torus rank %d used twice", s, r)
				}
				seen[r] = true
				if l.Mapping.ReplicaOf(r) != rep {
					t.Fatalf("%v: rank %d assigned to wrong replica", s, r)
				}
			}
		}
		if len(seen) != 512 {
			t.Fatalf("%v: covered %d nodes, want 512", s, len(seen))
		}
	}
}

func TestLogicalBuddiesAreMappingBuddies(t *testing.T) {
	l := layout(t, topology.DefaultScheme, 0)
	for i := 0; i < l.NodesPerReplica(); i++ {
		r0 := l.TorusRank(0, i)
		r1 := l.TorusRank(1, i)
		if l.Mapping.BuddyOf(r0) != r1 {
			t.Fatalf("logical %d: %d's buddy is %d, not %d", i, r0, l.Mapping.BuddyOf(r0), r1)
		}
	}
}

func TestBuddyDistanceByScheme(t *testing.T) {
	if d := layout(t, topology.DefaultScheme, 0).BuddyDistance(17); d != 4 {
		t.Fatalf("default buddy distance %d, want 4", d)
	}
	if d := layout(t, topology.ColumnScheme, 0).BuddyDistance(17); d != 1 {
		t.Fatalf("column buddy distance %d, want 1", d)
	}
	if d := layout(t, topology.MixedScheme, 2).BuddyDistance(17); d != 2 {
		t.Fatalf("mixed buddy distance %d, want 2", d)
	}
}

func TestCoordConsistent(t *testing.T) {
	l := layout(t, topology.ColumnScheme, 0)
	for i := 0; i < 10; i++ {
		c := l.Coord(0, i)
		if l.Mapping.Torus.RankOf(c) != l.TorusRank(0, i) {
			t.Fatal("Coord and TorusRank disagree")
		}
	}
}

func TestSparePool(t *testing.T) {
	p := NewSparePool([]int{7, 8, 9})
	if p.Free() != 3 || p.Used() != 0 {
		t.Fatal("fresh pool wrong")
	}
	id, err := p.Take()
	if err != nil || id != 7 {
		t.Fatalf("Take = (%d, %v)", id, err)
	}
	if p.Free() != 2 || p.Used() != 1 {
		t.Fatal("counts wrong after take")
	}
	p.Take()
	p.Take()
	if _, err := p.Take(); err == nil {
		t.Fatal("exhausted pool must error")
	}
	if p.Used() != 3 {
		t.Fatalf("used = %d", p.Used())
	}
}

func TestSparePoolCopiesInput(t *testing.T) {
	ids := []int{1, 2}
	p := NewSparePool(ids)
	ids[0] = 99
	if id, _ := p.Take(); id != 1 {
		t.Fatal("pool should copy its input")
	}
}

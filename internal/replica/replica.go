// Package replica connects the logical node space of the live runtime (two
// replicas of N logical nodes each) to physical torus positions under a
// chosen mapping scheme, and tracks the spare-node pool reserved at job
// launch (§2.1, §4.1).
//
// Logical pairing is fixed: logical node i of replica 0 and logical node i
// of replica 1 are buddies. The mapping scheme decides where those two
// nodes sit on the torus and therefore what the checkpoint-exchange traffic
// costs (§4.2).
package replica

import (
	"fmt"

	"acr/internal/topology"
)

// Layout places the two replicas' logical nodes onto torus coordinates.
type Layout struct {
	Mapping *topology.Mapping

	// ranks[rep][logical] is the torus node rank backing the logical node.
	ranks [2][]int
}

// NewLayout derives a layout from a mapping: logical node i of replica 0 is
// the i-th replica-0 member in torus rank order, and its buddy (same i in
// replica 1) is that node's mapping buddy.
func NewLayout(m *topology.Mapping) *Layout {
	l := &Layout{Mapping: m}
	members := m.Members(0)
	l.ranks[0] = make([]int, len(members))
	l.ranks[1] = make([]int, len(members))
	for i, r := range members {
		l.ranks[0][i] = r
		l.ranks[1][i] = m.BuddyOf(r)
	}
	return l
}

// NodesPerReplica returns the logical node count.
func (l *Layout) NodesPerReplica() int { return len(l.ranks[0]) }

// TorusRank returns the torus node rank backing the logical node.
func (l *Layout) TorusRank(rep, logical int) int { return l.ranks[rep][logical] }

// Coord returns the torus coordinate backing the logical node.
func (l *Layout) Coord(rep, logical int) topology.Coord {
	return l.Mapping.Torus.CoordOf(l.ranks[rep][logical])
}

// BuddyDistance returns the hop distance between logical node i's two
// physical homes.
func (l *Layout) BuddyDistance(logical int) int {
	return l.Mapping.Torus.Distance(l.Coord(0, logical), l.Coord(1, logical))
}

// SparePool tracks the spare nodes reserved when the job launched. It is a
// plain value type used under the caller's synchronization.
type SparePool struct {
	free []int
	used int
}

// NewSparePool returns a pool of the given spare node ids.
func NewSparePool(ids []int) *SparePool {
	p := &SparePool{free: make([]int, len(ids))}
	copy(p.free, ids)
	return p
}

// Take removes and returns one spare node id.
func (p *SparePool) Take() (int, error) {
	if len(p.free) == 0 {
		return 0, fmt.Errorf("replica: spare pool exhausted after %d replacements", p.used)
	}
	id := p.free[0]
	p.free = p.free[1:]
	p.used++
	return id, nil
}

// Free returns the number of remaining spares.
func (p *SparePool) Free() int { return len(p.free) }

// Used returns the number of spares consumed so far.
func (p *SparePool) Used() int { return p.used }

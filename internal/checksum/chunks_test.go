package checksum

import (
	"math/rand"
	"testing"
)

func randBytes(t testing.TB, n int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestFletcher64ChunksMatchesSerialPerChunk(t *testing.T) {
	data := randBytes(t, 1<<20+13) // deliberately not chunk-aligned
	const cs = 4 << 10
	for _, workers := range []int{0, 1, 3, 8} {
		root, chunks := Fletcher64Chunks(data, cs, workers)
		want := NumChunks(len(data), cs)
		if len(chunks) != want {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(chunks), want)
		}
		for i, sum := range chunks {
			lo := i * cs
			hi := lo + cs
			if hi > len(data) {
				hi = len(data)
			}
			if serial := Fletcher64(data[lo:hi]); sum != serial {
				t.Fatalf("workers=%d chunk %d: sum %#x, serial %#x", workers, i, sum, serial)
			}
		}
		if root != ChunkRoot(chunks) {
			t.Fatalf("workers=%d: root %#x != ChunkRoot %#x", workers, root, ChunkRoot(chunks))
		}
	}
}

func TestFletcher64ChunksDeterministicAcrossWorkerCounts(t *testing.T) {
	data := randBytes(t, 257<<10)
	root1, _ := Fletcher64Chunks(data, 8<<10, 1)
	for _, workers := range []int{2, 5, 16} {
		if root, _ := Fletcher64Chunks(data, 8<<10, workers); root != root1 {
			t.Fatalf("workers=%d: root %#x, want %#x", workers, root, root1)
		}
	}
}

// Reordering chunks must change the root: the root is position-dependent
// at chunk granularity, so transposed-but-individually-intact chunks may
// not collide.
func TestChunkRootPositionDependent(t *testing.T) {
	data := randBytes(t, 64<<10)
	const cs = 8 << 10
	root, chunks := Fletcher64Chunks(data, cs, 4)

	swapped := append([]byte(nil), data...)
	// Swap the first two chunks wholesale.
	tmp := append([]byte(nil), swapped[:cs]...)
	copy(swapped[:cs], swapped[cs:2*cs])
	copy(swapped[cs:2*cs], tmp)

	swRoot, swChunks := Fletcher64Chunks(swapped, cs, 4)
	if swChunks[0] != chunks[1] || swChunks[1] != chunks[0] {
		t.Fatal("chunk swap did not transpose the per-chunk sums")
	}
	if swRoot == root {
		t.Fatalf("reordered chunks collided at the root (%#x)", root)
	}

	// Same property directly on the sum vector.
	perm := append([]uint64(nil), chunks...)
	perm[2], perm[5] = perm[5], perm[2]
	if ChunkRoot(perm) == ChunkRoot(chunks) {
		t.Fatal("permuted chunk sums collided at the root")
	}
}

func TestFletcher64ChunksEdgeCases(t *testing.T) {
	if root, chunks := Fletcher64Chunks(nil, 1024, 4); len(chunks) != 1 || chunks[0] != 0 || root != ChunkRoot([]uint64{0}) {
		t.Fatalf("empty data: root=%#x chunks=%v", root, chunks)
	}
	data := []byte{1, 2, 3}
	_, chunks := Fletcher64Chunks(data, 1024, 4) // one short chunk
	if len(chunks) != 1 || chunks[0] != Fletcher64(data) {
		t.Fatalf("single short chunk: %v", chunks)
	}
	// Default chunk size kicks in for chunkSize <= 0.
	_, chunks = Fletcher64Chunks(randBytes(t, DefaultChunkSize+1), 0, 0)
	if len(chunks) != 2 {
		t.Fatalf("default chunk size: %d chunks, want 2", len(chunks))
	}
}

func TestChunkRootDetectsSingleChunkChange(t *testing.T) {
	data := randBytes(t, 512<<10)
	root, _ := Fletcher64Chunks(data, 16<<10, 4)
	data[300<<10] ^= 1 // single-bit flip in chunk 18
	flipRoot, flipChunks := Fletcher64Chunks(data, 16<<10, 4)
	if flipRoot == root {
		t.Fatal("bit flip did not change the root")
	}
	clean := randBytes(t, 512<<10)
	_, cleanChunks := Fletcher64Chunks(clean, 16<<10, 4)
	var diff []int
	for i := range cleanChunks {
		if cleanChunks[i] != flipChunks[i] {
			diff = append(diff, i)
		}
	}
	if len(diff) != 1 || diff[0] != (300<<10)/(16<<10) {
		t.Fatalf("flip localized to chunks %v, want [18]", diff)
	}
}

// The block-mode loop behind the chunk path must be bit-identical to the
// incremental writer for every length, including partial trailing words
// and block-boundary straddles.
func TestFletcher64BlockMatchesWriter(t *testing.T) {
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 15, 16, 17, 4093, 4096, 4099,
		4 * fletcherNMax, 4*fletcherNMax + 1, 4*fletcherNMax + 7, 1 << 20}
	for _, n := range lengths {
		data := randBytes(t, n)
		var f Fletcher64Writer
		f.Write(data)
		if got, want := fletcher64Block(data), f.Sum64(); got != want {
			t.Fatalf("len %d: block %#x, writer %#x", n, got, want)
		}
	}
}

func BenchmarkFletcher64Serial4MiB(b *testing.B) {
	data := randBytes(b, 4<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var f Fletcher64Writer
		f.Write(data)
		sink = f.Sum64()
	}
}

func BenchmarkFletcher64Chunks4MiB(b *testing.B) {
	data := randBytes(b, 4<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root, _ := Fletcher64Chunks(data, DefaultChunkSize, 0)
		sink = root
	}
}

var sink uint64

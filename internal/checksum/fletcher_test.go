package checksum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Known Fletcher-32 vectors (over 16-bit LE words) derived from the
// classical byte-pair definition.
func TestFletcher32KnownVectors(t *testing.T) {
	// "abcde" -> words {0x6261, 0x6463, 0x0065}
	// s1 = (0x6261+0x6463+0x0065) % 65535 = 0xC729 ... compute directly:
	naive := func(data []byte) uint32 {
		var s1, s2 uint32
		for i := 0; i < len(data); i += 2 {
			var w uint32
			if i+1 < len(data) {
				w = uint32(data[i]) | uint32(data[i+1])<<8
			} else {
				w = uint32(data[i])
			}
			s1 = (s1 + w) % 65535
			s2 = (s2 + s1) % 65535
		}
		return s2<<16 | s1
	}
	for _, s := range []string{"", "a", "ab", "abcde", "abcdef", "abcdefgh"} {
		if got, want := Fletcher32([]byte(s)), naive([]byte(s)); got != want {
			t.Errorf("Fletcher32(%q) = %#x, want %#x", s, got, want)
		}
	}
}

func TestFletcher64MatchesNaive(t *testing.T) {
	naive := func(data []byte) uint64 {
		var s1, s2 uint64
		for i := 0; i < len(data); i += 4 {
			var w uint64
			for j := 0; j < 4; j++ {
				if i+j < len(data) {
					w |= uint64(data[i+j]) << (8 * j)
				}
			}
			s1 = (s1 + w) % 4294967295
			s2 = (s2 + s1) % 4294967295
		}
		return s2<<32 | s1
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 100, 1023, 4096} {
		data := make([]byte, n)
		rng.Read(data)
		if got, want := Fletcher64(data), naive(data); got != want {
			t.Errorf("Fletcher64(len %d) = %#x, want %#x", n, got, want)
		}
	}
}

// Position dependence: swapping two unequal words changes the checksum.
// This is the property that makes Fletcher suitable for SDC detection on
// structured data (§4.2) where an additive checksum would miss transposes.
func TestPositionDependence(t *testing.T) {
	a := []byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}
	b := []byte{2, 0, 0, 0, 1, 0, 0, 0, 3, 0, 0, 0}
	if Fletcher64(a) == Fletcher64(b) {
		t.Error("Fletcher64 failed to distinguish transposed words")
	}
	if Fletcher32(a) == Fletcher32(b) {
		t.Error("Fletcher32 failed to distinguish transposed words")
	}
}

// Every single-bit flip must change the checksum: this is exactly the SDC
// model of §6.1 (the injector flips one randomly selected bit).
func TestSingleBitFlipDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 256)
	rng.Read(data)
	orig64 := Fletcher64(data)
	orig32 := Fletcher32(data)
	for byteIdx := 0; byteIdx < len(data); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			data[byteIdx] ^= 1 << bit
			if Fletcher64(data) == orig64 {
				t.Fatalf("Fletcher64 missed bit flip at byte %d bit %d", byteIdx, bit)
			}
			if Fletcher32(data) == orig32 {
				t.Fatalf("Fletcher32 missed bit flip at byte %d bit %d", byteIdx, bit)
			}
			data[byteIdx] ^= 1 << bit
		}
	}
}

// Incremental writes over arbitrary split points must equal the one-shot
// checksum.
func TestIncrementalEqualsOneShot(t *testing.T) {
	f := func(data []byte, splitRaw uint8) bool {
		if len(data) == 0 {
			return true
		}
		split := int(splitRaw) % (len(data) + 1)
		var w64 Fletcher64Writer
		w64.Write(data[:split])
		w64.Write(data[split:])
		var w32 Fletcher32Writer
		w32.Write(data[:split])
		w32.Write(data[split:])
		return w64.Sum64() == Fletcher64(data) && w32.Sum32() == Fletcher32(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Byte-at-a-time writes equal one-shot.
func TestByteAtATime(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	var w64 Fletcher64Writer
	var w32 Fletcher32Writer
	for _, b := range data {
		w64.Write([]byte{b})
		w32.Write([]byte{b})
	}
	if w64.Sum64() != Fletcher64(data) {
		t.Error("Fletcher64 byte-at-a-time mismatch")
	}
	if w32.Sum32() != Fletcher32(data) {
		t.Error("Fletcher32 byte-at-a-time mismatch")
	}
}

// Sum must not disturb subsequent writes (it snapshots pending bytes).
func TestSumIsNonDestructive(t *testing.T) {
	var w Fletcher64Writer
	w.Write([]byte{1, 2, 3}) // partial word pending
	s1 := w.Sum64()
	s2 := w.Sum64()
	if s1 != s2 {
		t.Error("repeated Sum64 differs")
	}
	w.Write([]byte{4})
	if w.Sum64() != Fletcher64([]byte{1, 2, 3, 4}) {
		t.Error("write after Sum64 corrupted state")
	}
}

func TestReset(t *testing.T) {
	var w64 Fletcher64Writer
	w64.Write([]byte("garbage"))
	w64.Reset()
	w64.Write([]byte("data"))
	if w64.Sum64() != Fletcher64([]byte("data")) {
		t.Error("Fletcher64Writer.Reset did not clear state")
	}
	var w32 Fletcher32Writer
	w32.Write([]byte("garbage"))
	w32.Reset()
	w32.Write([]byte("data"))
	if w32.Sum32() != Fletcher32([]byte("data")) {
		t.Error("Fletcher32Writer.Reset did not clear state")
	}
}

func TestWriteReturnsLength(t *testing.T) {
	var w Fletcher64Writer
	n, err := w.Write(make([]byte, 37))
	if n != 37 || err != nil {
		t.Fatalf("Write = (%d, %v), want (37, nil)", n, err)
	}
}

func BenchmarkFletcher64(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fletcher64(data)
	}
}

func BenchmarkFletcher32(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fletcher32(data)
	}
}

// Package checksum implements the position-dependent Fletcher checksum used
// by ACR to compare buddy checkpoints without shipping them (§4.2).
//
// Fletcher's algorithm keeps two running sums: a plain sum of the data words
// and a sum of the running sums. The second sum weights each word by its
// distance from the end of the buffer, which makes the checksum sensitive to
// the *position* of corrupted data, not just its value — transposed blocks
// that would fool an additive checksum change a Fletcher checksum.
//
// The cost model of §4.2 (4 arithmetic instructions per word versus 1 for a
// plain copy, so checksumming wins only when gamma < beta/4) corresponds to
// the two adds and two modular reductions in the inner loop.
package checksum

import "encoding/binary"

// Fletcher32 computes the Fletcher-32 checksum over the data interpreted as
// little-endian 16-bit words. Odd-length data is zero-padded.
func Fletcher32(data []byte) uint32 {
	var f Fletcher32Writer
	f.Write(data)
	return f.Sum32()
}

// Fletcher64 computes the Fletcher-64 checksum over the data interpreted as
// little-endian 32-bit words. Trailing bytes are zero-padded. ACR uses the
// 64-bit variant for checkpoint comparison: a 32-byte checksum message (two
// 64-bit sums per direction plus framing) replaces a multi-megabyte
// checkpoint transfer.
//
// For whole buffers this uses the block-mode loop (deferred modular
// reduction, see chunks.go), which produces bit-identical sums to
// Fletcher64Writer at several times the throughput; the incremental writer
// remains the reference implementation and the §4.2 cost-model baseline.
func Fletcher64(data []byte) uint64 {
	return fletcher64Block(data)
}

// Fletcher32Writer is an incremental Fletcher-32 accumulator implementing
// io.Writer. The zero value is ready to use.
type Fletcher32Writer struct {
	s1, s2 uint32
	odd    bool
	carry  byte
	empty  bool // tracks explicit init; zero value works because mod starts at 0
}

const mod16 = 65535

// Write absorbs data into the checksum. It never fails.
func (f *Fletcher32Writer) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		var w uint32
		if f.odd {
			w = uint32(f.carry) | uint32(p[0])<<8
			p = p[1:]
			f.odd = false
		} else if len(p) >= 2 {
			w = uint32(binary.LittleEndian.Uint16(p))
			p = p[2:]
		} else {
			f.carry = p[0]
			f.odd = true
			p = nil
			break
		}
		f.s1 = (f.s1 + w) % mod16
		f.s2 = (f.s2 + f.s1) % mod16
	}
	return n, nil
}

// Sum32 returns the checksum of the bytes written so far. A pending odd byte
// is treated as a zero-padded final word without disturbing further writes.
func (f *Fletcher32Writer) Sum32() uint32 {
	s1, s2 := f.s1, f.s2
	if f.odd {
		w := uint32(f.carry)
		s1 = (s1 + w) % mod16
		s2 = (s2 + s1) % mod16
	}
	return s2<<16 | s1
}

// Reset restores the writer to its initial state.
func (f *Fletcher32Writer) Reset() { *f = Fletcher32Writer{} }

// Fletcher64Writer is an incremental Fletcher-64 accumulator implementing
// io.Writer. The zero value is ready to use.
type Fletcher64Writer struct {
	s1, s2 uint64
	nbuf   int
	buf    [4]byte
}

const mod32 = 4294967295

// Write absorbs data into the checksum. It never fails.
func (f *Fletcher64Writer) Write(p []byte) (int, error) {
	n := len(p)
	// Drain any partial word first.
	for f.nbuf > 0 && f.nbuf < 4 && len(p) > 0 {
		f.buf[f.nbuf] = p[0]
		f.nbuf++
		p = p[1:]
	}
	if f.nbuf == 4 {
		f.absorb(binary.LittleEndian.Uint32(f.buf[:]))
		f.nbuf = 0
	}
	for len(p) >= 4 {
		f.absorb(binary.LittleEndian.Uint32(p))
		p = p[4:]
	}
	for _, b := range p {
		f.buf[f.nbuf] = b
		f.nbuf++
	}
	return n, nil
}

func (f *Fletcher64Writer) absorb(w uint32) {
	f.s1 = (f.s1 + uint64(w)) % mod32
	f.s2 = (f.s2 + f.s1) % mod32
}

// Sum64 returns the checksum of the bytes written so far, zero-padding any
// pending partial word without disturbing further writes.
func (f *Fletcher64Writer) Sum64() uint64 {
	s1, s2 := f.s1, f.s2
	if f.nbuf > 0 {
		var tmp [4]byte
		copy(tmp[:], f.buf[:f.nbuf])
		w := uint64(binary.LittleEndian.Uint32(tmp[:]))
		s1 = (s1 + w) % mod32
		s2 = (s2 + s1) % mod32
	}
	return s2<<32 | s1
}

// Reset restores the writer to its initial state.
func (f *Fletcher64Writer) Reset() { *f = Fletcher64Writer{} }

package checksum

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file adds the chunked-parallel variant of the Fletcher-64 checksum
// used by the ckptstore subsystem: the checkpoint buffer is split into
// fixed-size chunks, each chunk is summed independently (and concurrently),
// and the per-chunk sums are folded into a single position-dependent root.
// Comparing roots first and per-chunk sums second turns checkpoint
// comparison into a two-phase Merkle-style check that *localizes* a
// corrupted chunk instead of merely flagging the whole checkpoint.

// DefaultChunkSize is the chunk granularity used when callers pass a
// non-positive chunk size: 64 KiB keeps per-chunk hashing in L1/L2 while
// giving megabyte-scale checkpoints enough chunks to parallelize over.
const DefaultChunkSize = 64 << 10

// NumChunks returns the number of chunks a buffer of n bytes occupies at
// the given chunk size. Empty buffers occupy one (empty) chunk so that
// every checkpoint has a well-defined root.
func NumChunks(n, chunkSize int) int {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if n <= 0 {
		return 1
	}
	return (n + chunkSize - 1) / chunkSize
}

// Fletcher64Chunks splits data into chunkSize-byte chunks, computes each
// chunk's Fletcher-64 sum concurrently on up to workers goroutines, and
// returns the per-chunk sums plus a position-dependent root folded over
// them. chunkSize <= 0 selects DefaultChunkSize; workers <= 0 selects
// GOMAXPROCS. The root is NOT the serial Fletcher64 of the whole buffer —
// it is the Fletcher64 of the chunk-sum stream, which preserves the
// position sensitivity of the underlying checksum at chunk granularity:
// swapping two chunks changes the root even though the multiset of chunk
// sums is unchanged.
func Fletcher64Chunks(data []byte, chunkSize, workers int) (root uint64, chunks []uint64) {
	return Fletcher64ChunksInto(nil, data, chunkSize, workers)
}

// Fletcher64ChunksInto is Fletcher64Chunks with a caller-provided sum
// slice: dst's capacity is reused when it suffices, so steady-state
// re-capture of a stable-size checkpoint allocates nothing. dst may be nil.
func Fletcher64ChunksInto(dst []uint64, data []byte, chunkSize, workers int) (root uint64, chunks []uint64) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	n := NumChunks(len(data), chunkSize)
	if cap(dst) >= n {
		chunks = dst[:n]
	} else {
		chunks = make([]uint64, n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range chunks {
			chunks[i] = Fletcher64(chunkAt(data, i, chunkSize))
		}
		return ChunkRoot(chunks), chunks
	}
	// The goroutine fan-out lives in its own function so the serial path
	// above stays allocation-free: a closure here would move this
	// function's locals to the heap even on calls that never spawn it.
	fletcherChunksParallel(chunks, data, chunkSize, workers)
	return ChunkRoot(chunks), chunks
}

func fletcherChunksParallel(chunks []uint64, data []byte, chunkSize, workers int) {
	n := len(chunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				chunks[i] = Fletcher64(chunkAt(data, i, chunkSize))
			}
		}()
	}
	wg.Wait()
}

// ChunkRoot folds per-chunk Fletcher-64 sums into the position-dependent
// root checksum. It is exported so stores that already hold per-chunk sums
// (e.g. a delta store patching only changed chunks) can re-derive the root
// without touching the data.
func ChunkRoot(chunks []uint64) uint64 {
	var f Fletcher64Writer
	var w [8]byte
	for _, s := range chunks {
		binary.LittleEndian.PutUint64(w[:], s)
		f.Write(w[:])
	}
	return f.Sum64()
}

// chunkAt returns the i-th chunkSize window of data (shorter at the tail,
// empty past the end).
func chunkAt(data []byte, i, chunkSize int) []byte {
	lo := i * chunkSize
	if lo >= len(data) {
		return nil
	}
	hi := lo + chunkSize
	if hi > len(data) {
		hi = len(data)
	}
	return data[lo:hi]
}

// fletcherNMax is the largest number of 32-bit words that can be absorbed
// into unreduced uint64 Fletcher accumulators before s2 can overflow.
// Starting from reduced sums (< 2^32), after n words
// s2 <= (2^32-1) * (1 + n + n(n+1)/2), which stays below 2^64 for
// n <= 92680.
const fletcherNMax = 92680

// fletcher64Block computes the Fletcher-64 sum of one whole buffer with
// the modular reduction deferred to every fletcherNMax words instead of
// every word — the same sums as Fletcher64Writer (two adds per word versus
// its two adds plus two reductions), restricted to the non-incremental
// case. This is what makes the chunked path beat the serial writer even
// before any parallelism: chunking turns the stream into whole blocks that
// can be hashed with the tight loop.
func fletcher64Block(data []byte) uint64 {
	var s1, s2 uint64
	aligned := len(data) &^ 3
	rest := data[aligned:]
	data = data[:aligned]
	for len(data) > 0 {
		block := data
		if len(block) > 4*fletcherNMax {
			block = block[:4*fletcherNMax]
		}
		data = data[len(block):]
		for len(block) >= 16 {
			// Unrolled 4x: s2 accumulates the running s1 after each word.
			w0 := uint64(binary.LittleEndian.Uint32(block))
			w1 := uint64(binary.LittleEndian.Uint32(block[4:]))
			w2 := uint64(binary.LittleEndian.Uint32(block[8:]))
			w3 := uint64(binary.LittleEndian.Uint32(block[12:]))
			s2 += 4*s1 + 4*w0 + 3*w1 + 2*w2 + w3
			s1 += w0 + w1 + w2 + w3
			block = block[16:]
		}
		for len(block) >= 4 {
			s1 += uint64(binary.LittleEndian.Uint32(block))
			s2 += s1
			block = block[4:]
		}
		s1 %= mod32
		s2 %= mod32
	}
	if len(rest) > 0 {
		var tmp [4]byte
		copy(tmp[:], rest)
		s1 = (s1 + uint64(binary.LittleEndian.Uint32(tmp[:]))) % mod32
		s2 = (s2 + s1) % mod32
	}
	return s2<<32 | s1
}

package model

import (
	"fmt"
	"math"
)

// This file analyzes the §3.4 design choice: dual redundancy (ACR's
// choice — one detected SDC forces re-execution from the last checkpoint)
// versus triple modular redundancy (TMR — a majority vote corrects the
// corrupted replica in place, at the price of a third copy of the
// machine). The paper argues dual wins "assuming good scalability for most
// applications and relatively small number of SDCs"; the crossover below
// quantifies where that assumption breaks.

// TMRTotalTime returns the expected execution time under TMR at checkpoint
// period tau. Checkpointing (still needed for hard errors) and hard-error
// rework match the strong scheme; SDC costs only a vote-and-overwrite
// correction (modelled as RS) instead of a rollback, so the (tau+d)/MS
// rework term disappears.
func (p Params) TMRTotalTime(tau float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if tau <= 0 {
		return 0, fmt.Errorf("model: tau must be positive")
	}
	mh, ms := p.HardMTBF(), p.SDCMTBF()
	nCkpt := p.W/tau - 1
	if nCkpt < 0 {
		nCkpt = 0
	}
	fixed := p.W + nCkpt*p.Delta
	rate := p.RH/mh + p.RS/ms + (tau+p.Delta)/(2*mh)
	if rate >= 1 {
		return 0, fmt.Errorf("model: TMR overhead rate %.3f >= 1", rate)
	}
	return fixed / (1 - rate), nil
}

// TMROptimalTau returns the period minimizing TMRTotalTime.
func (p Params) TMROptimalTau() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	// Closed-form first-order optimum is fine here: the only
	// tau-dependent overheads are d/tau and tau/(2 MH).
	tau := math.Sqrt(2 * p.Delta * p.HardMTBF())
	if tau > p.W {
		tau = p.W
	}
	if tau < p.Delta {
		tau = p.Delta
	}
	return tau, nil
}

// TMRUtilization returns W / (3 * T): the whole-machine utilization of
// triple redundancy on the same socket budget accounting (three replicas
// of SocketsPerReplica sockets each).
func (p Params) TMRUtilization() (tau, util float64, err error) {
	tau, err = p.TMROptimalTau()
	if err != nil {
		return 0, 0, err
	}
	t, err := p.TMRTotalTime(tau)
	if err != nil {
		return 0, 0, err
	}
	return tau, p.W / (3 * t), nil
}

// RedundancyComparison contrasts dual redundancy (strong scheme) with TMR
// at one model point.
type RedundancyComparison struct {
	DualUtil float64
	TMRUtil  float64
	// TMRWins reports whether triple redundancy delivers higher
	// utilization — the regime the paper concedes to TMR when SDCs are
	// frequent enough that re-execution dominates.
	TMRWins bool
}

// CompareRedundancy evaluates both designs at the params point. A design
// that cannot make forward progress at any checkpoint period (failure
// overheads consume everything) scores zero utilization rather than
// erroring, so the comparison is total.
func (p Params) CompareRedundancy() (RedundancyComparison, error) {
	if err := p.Validate(); err != nil {
		return RedundancyComparison{}, err
	}
	_, dual, err := p.Utilization(Strong)
	if err != nil {
		dual = 0
	}
	_, tmr, err := p.TMRUtilization()
	if err != nil {
		tmr = 0
	}
	return RedundancyComparison{DualUtil: dual, TMRUtil: tmr, TMRWins: tmr > dual}, nil
}

// SDCCrossoverFIT returns (approximately) the per-socket SDC rate in FIT
// above which TMR outperforms dual redundancy for this machine point,
// found by bisection on the FIT axis. Returns +Inf if dual wins everywhere
// up to the cap.
func (p Params) SDCCrossoverFIT(maxFIT float64) (float64, error) {
	wins := func(fit float64) (bool, error) {
		q := p
		q.SDCFITPerSocket = fit
		cmp, err := q.CompareRedundancy()
		if err != nil {
			return false, err
		}
		return cmp.TMRWins, nil
	}
	hiWin, err := wins(maxFIT)
	if err != nil {
		return 0, err
	}
	if !hiWin {
		return math.Inf(1), nil
	}
	lo, hi := 0.0, maxFIT
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		w, err := wins(mid)
		if err != nil {
			return 0, err
		}
		if w {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

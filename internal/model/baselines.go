package model

import (
	"math"

	"acr/internal/failure"
)

// The Figure 1 baselines model a non-replicated machine of S sockets
// running a fixed-length job, with either no fault tolerance at all or
// plain (hard-error-only) checkpoint/restart. Vulnerability is the
// probability of finishing with a silently corrupted result.

// BaselineParams configures a Figure 1 surface point.
type BaselineParams struct {
	// W is the job's useful computation time in seconds.
	W float64
	// Delta is the checkpoint time (checkpoint-only baseline).
	Delta float64
	// RH is the hard-error restart time.
	RH float64
	// Sockets is the total socket count (no replication in baselines).
	Sockets int
	// HardMTBFSocketYears is the per-socket hard-error MTBF in years.
	HardMTBFSocketYears float64
	// SDCFITPerSocket is the per-socket SDC rate in FIT.
	SDCFITPerSocket float64
}

func (b BaselineParams) hardMTBF() float64 {
	return failure.SocketYearsToMTBF(b.HardMTBFSocketYears, b.Sockets)
}

func (b BaselineParams) sdcMTBF() float64 {
	return failure.FITToMTBF(b.SDCFITPerSocket, b.Sockets)
}

// NoFTTime returns the expected completion time with no fault tolerance:
// any hard error restarts the job from the beginning. For exponential
// failures with system MTBF M, E[T] = (exp(W/M) - 1) * M.
func (b BaselineParams) NoFTTime() float64 {
	m := b.hardMTBF()
	if math.IsInf(m, 1) {
		return b.W
	}
	x := b.W / m
	if x > 700 { // exp overflow guard: effectively never finishes
		return math.Inf(1)
	}
	return (math.Exp(x) - 1) * m
}

// NoFTUtilization returns W / E[T] for the unprotected machine.
func (b BaselineParams) NoFTUtilization() float64 {
	t := b.NoFTTime()
	if math.IsInf(t, 1) {
		return 0
	}
	return b.W / t
}

// CheckpointOnlyTime returns the expected completion time with classic
// hard-error checkpoint/restart at the first-order optimal period
// tau = sqrt(2*Delta*M) (Young/Daly [7]), modelling checkpoint, restart,
// and half-period rework overheads.
func (b BaselineParams) CheckpointOnlyTime() (tau, t float64) {
	m := b.hardMTBF()
	if math.IsInf(m, 1) {
		return b.W, b.W
	}
	tau = math.Sqrt(2 * b.Delta * m)
	if tau > b.W {
		tau = b.W
	}
	rate := b.RH/m + (tau+b.Delta)/(2*m)
	if rate >= 1 {
		return tau, math.Inf(1)
	}
	nCkpt := b.W/tau - 1
	if nCkpt < 0 {
		nCkpt = 0
	}
	fixed := b.W + nCkpt*b.Delta
	return tau, fixed / (1 - rate)
}

// CheckpointOnlyUtilization returns W / T for the checkpoint/restart
// baseline.
func (b BaselineParams) CheckpointOnlyUtilization() float64 {
	_, t := b.CheckpointOnlyTime()
	if math.IsInf(t, 1) {
		return 0
	}
	return b.W / t
}

// Vulnerability returns the probability that at least one SDC corrupts the
// run over an execution of length t with no SDC detection at all:
// 1 - exp(-t/MS). Both Figure 1 baselines carry this vulnerability; ACR
// with the strong scheme has zero.
func (b BaselineParams) Vulnerability(t float64) float64 {
	ms := b.sdcMTBF()
	if math.IsInf(ms, 1) {
		return 0
	}
	if math.IsInf(t, 1) {
		return 1
	}
	return 1 - math.Exp(-t/ms)
}

// ACRPoint converts the baseline configuration into replicated-ACR model
// parameters using the same total socket budget: the machine's sockets are
// split into two replicas of half the size. RS reuses RH.
func (b BaselineParams) ACRPoint() Params {
	return Params{
		W:                   b.W,
		Delta:               b.Delta,
		RH:                  b.RH,
		RS:                  b.RH,
		SocketsPerReplica:   b.Sockets / 2,
		HardMTBFSocketYears: b.HardMTBFSocketYears,
		SDCFITPerSocket:     b.SDCFITPerSocket,
	}
}

// ACRUtilization returns the whole-machine utilization of ACR (strong
// scheme) on the baseline's socket budget: W/(2*T) with the replica count
// baked in by ACRPoint, and zero vulnerability.
func (b BaselineParams) ACRUtilization() float64 {
	p := b.ACRPoint()
	if p.SocketsPerReplica <= 0 {
		return 0
	}
	_, u, err := p.Utilization(Strong)
	if err != nil {
		return 0
	}
	return u
}

package model

import (
	"math"
	"testing"
)

func tmrParams(fit float64) Params {
	return Params{
		W:                   24 * 3600,
		Delta:               15,
		RH:                  30,
		RS:                  10,
		SocketsPerReplica:   65536,
		HardMTBFSocketYears: 50,
		SDCFITPerSocket:     fit,
	}
}

func TestTMRTotalTimeBasics(t *testing.T) {
	p := tmrParams(100)
	tt, err := p.TMRTotalTime(400)
	if err != nil {
		t.Fatal(err)
	}
	if tt <= p.W {
		t.Fatal("TMR total time must exceed W")
	}
	if _, err := p.TMRTotalTime(0); err == nil {
		t.Fatal("tau=0 must fail")
	}
	bad := p
	bad.W = 0
	if _, err := bad.TMRTotalTime(100); err == nil {
		t.Fatal("invalid params must fail")
	}
}

func TestTMRIgnoresSDCRework(t *testing.T) {
	// TMR's execution time must be insensitive to the SDC rate (votes
	// correct in place), unlike the dual strong scheme.
	low := tmrParams(1)
	high := tmrParams(100000)
	tLow, err := low.TMRTotalTime(400)
	if err != nil {
		t.Fatal(err)
	}
	tHigh, err := high.TMRTotalTime(400)
	if err != nil {
		t.Fatal(err)
	}
	// Only the tiny RS/MS correction term differs.
	if (tHigh-tLow)/tLow > 0.02 {
		t.Fatalf("TMR should barely notice SDC rate: %v vs %v", tLow, tHigh)
	}
	sLow, err := low.TotalTime(Strong, 400)
	if err != nil {
		t.Fatal(err)
	}
	sHigh, err := high.TotalTime(Strong, 400)
	if err != nil {
		t.Fatal(err)
	}
	if sHigh <= sLow*1.05 {
		t.Fatal("dual strong must suffer visibly under heavy SDC")
	}
}

func TestDualWinsAtLowSDCRate(t *testing.T) {
	// §3.4: with "relatively small number of SDCs", dual redundancy's 50%
	// beats TMR's 33%.
	cmp, err := tmrParams(100).CompareRedundancy()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TMRWins {
		t.Fatalf("dual should win at 100 FIT: dual %.3f vs TMR %.3f", cmp.DualUtil, cmp.TMRUtil)
	}
	if cmp.TMRUtil <= 0 || cmp.TMRUtil > 1.0/3 {
		t.Fatalf("TMR utilization %.3f outside (0, 1/3]", cmp.TMRUtil)
	}
}

func TestTMRWinsAtExtremeSDCRate(t *testing.T) {
	cmp, err := tmrParams(3e6).CompareRedundancy()
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.TMRWins {
		t.Fatalf("TMR should win at 3M FIT: dual %.3f vs TMR %.3f", cmp.DualUtil, cmp.TMRUtil)
	}
}

func TestSDCCrossoverFIT(t *testing.T) {
	p := tmrParams(0)
	cross, err := p.SDCCrossoverFIT(3e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(cross, 1) {
		t.Fatal("crossover should exist below 1e8 FIT")
	}
	if cross < 1000 {
		t.Fatalf("crossover at %v FIT implausibly low", cross)
	}
	// Verify the crossover is genuine: dual wins just below, TMR at or
	// above.
	below := p
	below.SDCFITPerSocket = cross * 0.5
	cb, err := below.CompareRedundancy()
	if err != nil {
		t.Fatal(err)
	}
	if cb.TMRWins {
		t.Fatal("dual should still win below the crossover")
	}
	above := p
	above.SDCFITPerSocket = cross * 2
	ca, err := above.CompareRedundancy()
	if err != nil {
		t.Fatal(err)
	}
	if !ca.TMRWins {
		t.Fatal("TMR should win above the crossover")
	}
	// No crossover below a tiny cap.
	small, err := p.SDCCrossoverFIT(10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(small, 1) {
		t.Fatal("no crossover should be found below 10 FIT")
	}
}

func TestTMROptimalTau(t *testing.T) {
	p := tmrParams(100)
	tau, err := p.TMROptimalTau()
	if err != nil {
		t.Fatal(err)
	}
	best, err := p.TMRTotalTime(tau)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.5, 2} {
		other, err := p.TMRTotalTime(tau * f)
		if err != nil {
			continue
		}
		if other < best*(1-0.01) {
			t.Fatalf("tau %v (T=%v) clearly beaten by %v (T=%v)", tau, best, tau*f, other)
		}
	}
}

func TestDiskSystem(t *testing.T) {
	d := DiskSystem{AggregateBandwidth: 50e9, BytesPerSocket: 4e9}
	delta, err := d.Delta(1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delta-80) > 1e-9 {
		t.Fatalf("delta = %v, want 80", delta)
	}
	if _, err := (DiskSystem{}).Delta(10); err == nil {
		t.Fatal("zero bandwidth must fail")
	}
	if _, err := d.Delta(0); err == nil {
		t.Fatal("zero sockets must fail")
	}
}

func TestDiskVsMemorySweep(t *testing.T) {
	disk := DiskSystem{AggregateBandwidth: 50e9, BytesPerSocket: 4e9}
	base := BaselineParams{
		W:                   120 * 3600,
		RH:                  30,
		HardMTBFSocketYears: 50,
		SDCFITPerSocket:     100,
	}
	sockets := []int{4096, 16384, 65536, 262144}
	pts, err := DiskVsMemory(disk, 15, base, sockets)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(sockets) {
		t.Fatal("missing points")
	}
	// Disk delta grows linearly with the machine; utilization degrades.
	for i := 1; i < len(pts); i++ {
		if pts[i].DiskDelta <= pts[i-1].DiskDelta {
			t.Fatal("disk delta must grow with machine size")
		}
		if pts[i].DiskUtil >= pts[i-1].DiskUtil {
			t.Fatal("disk utilization must degrade with machine size")
		}
	}
	// The §1 motivation: at large scale the in-memory replicated design
	// overtakes disk checkpointing despite the 50% replication tax.
	last := pts[len(pts)-1]
	if last.ACRUtil <= last.DiskUtil {
		t.Fatalf("ACR (%.3f) should beat disk checkpointing (%.3f) at 256K sockets",
			last.ACRUtil, last.DiskUtil)
	}
	first := pts[0]
	if first.DiskUtil <= first.ACRUtil {
		t.Fatalf("disk checkpointing (%.3f) should still win at 4K sockets (%.3f)",
			first.DiskUtil, first.ACRUtil)
	}
	if _, err := DiskVsMemory(DiskSystem{}, 15, base, sockets); err == nil {
		t.Fatal("bad disk system must fail")
	}
}

// Package model implements the performance and reliability model of §5 of
// the ACR paper: the total-execution-time equations for the strong, medium,
// and weak resilience schemes, the optimal checkpoint period, system
// utilization, and the probability of undetected silent data corruption.
// It also provides the no-fault-tolerance and checkpoint-only baselines
// behind Figure 1.
//
// Notation follows Table 1 of the paper:
//
//	W   total computation time           tau  checkpoint period
//	d   (delta) checkpoint time          T    total execution time
//	RH  hard-error restart time          MH   hard-error MTBF (system)
//	RS  SDC restart time                 MS   SDC MTBF (system)
//
// The three scheme equations are implicit in T; with every failure term
// linear in T they solve in closed form:
//
//	TS = W + D + R + TS/MH*(tau+d)/2 + TS/MS*(tau+d)
//	TM = W + D + R + TM/MH*d         + TM/MS*(tau+d)
//	TW = W + D + R + TS/MH*(tau+d)/2*P + TW/MS*(tau+d)
//
// where D = (W/tau - 1)*d, R = T/MH*RH + T/MS*RS, and P is the probability
// of more than one failure in a checkpoint period (the weak scheme's
// exposure to losing the healthy replica before the next checkpoint).
package model

import (
	"fmt"
	"math"

	"acr/internal/failure"
)

// Scheme is one of ACR's three resilience levels (§2.3).
type Scheme int

// Resilience schemes.
const (
	Strong Scheme = iota
	Medium
	Weak
)

func (s Scheme) String() string {
	switch s {
	case Strong:
		return "strong"
	case Medium:
		return "medium"
	case Weak:
		return "weak"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Schemes lists all three resilience levels in paper order.
func Schemes() []Scheme { return []Scheme{Strong, Medium, Weak} }

// Params configures the model for one machine/application point.
type Params struct {
	// W is the total useful computation time in seconds.
	W float64
	// Delta is the time of one checkpoint in seconds.
	Delta float64
	// RH is the restart time after a hard error, RS after an SDC.
	RH, RS float64
	// SocketsPerReplica is the socket count of one replica; the machine
	// runs 2x this many sockets.
	SocketsPerReplica int
	// HardMTBFSocketYears is the per-socket hard-error MTBF in years
	// (the paper uses 50, the Jaguar number).
	HardMTBFSocketYears float64
	// SDCFITPerSocket is the per-socket silent-corruption rate in FIT.
	SDCFITPerSocket float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.W <= 0:
		return fmt.Errorf("model: W must be positive")
	case p.Delta <= 0:
		return fmt.Errorf("model: Delta must be positive")
	case p.RH < 0 || p.RS < 0:
		return fmt.Errorf("model: restart times must be nonnegative")
	case p.SocketsPerReplica <= 0:
		return fmt.Errorf("model: need positive socket count")
	case p.HardMTBFSocketYears <= 0:
		return fmt.Errorf("model: need positive hard MTBF")
	case p.SDCFITPerSocket < 0:
		return fmt.Errorf("model: negative SDC rate")
	}
	return nil
}

// HardMTBF returns the system-level hard-error MTBF in seconds, counted
// over the sockets of one replica. The model tracks the progress of one
// replica: a crash anywhere stalls exactly one replica's forward path while
// the other continues, so the per-replica rate is the one that enters the
// rework terms. This convention reproduces the paper's quantitative anchors
// (37% strong utilization at 256K sockets with delta=180s; medium
// undetected-SDC probability below 1% at 64K sockets with delta=15s).
func (p Params) HardMTBF() float64 {
	return failure.SocketYearsToMTBF(p.HardMTBFSocketYears, p.SocketsPerReplica)
}

// SDCMTBF returns the system-level SDC MTBF in seconds, counted per replica
// (see HardMTBF for the convention).
func (p Params) SDCMTBF() float64 {
	return failure.FITToMTBF(p.SDCFITPerSocket, p.SocketsPerReplica)
}

// MultiFailureProb returns P, the (loose upper bound on the) probability of
// more than one hard failure within one checkpoint period tau:
//
//	P = 1 - exp(-(tau+d)/MH) * (1 + (tau+d)/MH)
func (p Params) MultiFailureProb(tau float64) float64 {
	x := (tau + p.Delta) / p.HardMTBF()
	return 1 - math.Exp(-x)*(1+x)
}

// TotalTime solves the scheme's implicit equation for the total execution
// time at checkpoint period tau. It returns an error when the failure rate
// is too high for the run to make progress (the denominator of the closed
// form reaches zero: overheads consume all the time).
func (p Params) TotalTime(s Scheme, tau float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if tau <= 0 {
		return 0, fmt.Errorf("model: tau must be positive")
	}
	mh, ms := p.HardMTBF(), p.SDCMTBF()
	// Fixed (T-independent) part: W plus total checkpointing time.
	nCkpt := p.W/tau - 1
	if nCkpt < 0 {
		nCkpt = 0
	}
	fixed := p.W + nCkpt*p.Delta
	// T-proportional overhead rate: restarts plus scheme-dependent rework.
	rate := p.RH/mh + p.RS/ms + (tau+p.Delta)/ms
	switch s {
	case Strong:
		rate += (tau + p.Delta) / (2 * mh)
	case Medium:
		rate += p.Delta / mh
	case Weak:
		// The weak scheme's hard-error rework happens only when a second
		// failure lands within the period (probability P), and the paper
		// expresses that term through TS.
		ts, err := p.TotalTime(Strong, tau)
		if err != nil {
			return 0, err
		}
		fixed += ts / mh * (tau + p.Delta) / 2 * p.MultiFailureProb(tau)
	}
	if rate >= 1 {
		return 0, fmt.Errorf("model: failure overhead rate %.3f >= 1 (no forward progress)", rate)
	}
	return fixed / (1 - rate), nil
}

// OptimalTau returns the checkpoint period minimizing TotalTime for the
// scheme, found by golden-section search on [Delta, W].
func (p Params) OptimalTau(s Scheme) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	eval := func(tau float64) float64 {
		t, err := p.TotalTime(s, tau)
		if err != nil {
			return math.Inf(1)
		}
		return t
	}
	lo, hi := p.Delta, p.W
	if hi <= lo {
		hi = lo * 10
	}
	// Coarse log-spaced grid to bracket the minimum (the feasible region
	// may be only a left portion of [lo, hi]; a pure golden-section can
	// otherwise wander into the infeasible +Inf plateau).
	const gridN = 256
	ratio := math.Pow(hi/lo, 1.0/(gridN-1))
	bestIdx, bestVal := -1, math.Inf(1)
	grid := make([]float64, gridN)
	x := lo
	for i := 0; i < gridN; i++ {
		grid[i] = x
		if v := eval(x); v < bestVal {
			bestVal, bestIdx = v, i
		}
		x *= ratio
	}
	if bestIdx < 0 || math.IsInf(bestVal, 1) {
		return 0, fmt.Errorf("model: no feasible checkpoint period (failure rate too high)")
	}
	a := grid[max(bestIdx-1, 0)]
	b := grid[min(bestIdx+1, gridN-1)]
	// Golden-section refinement inside the bracketing cell.
	const phi = 0.6180339887498949
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := eval(c), eval(d)
	for i := 0; i < 100 && (b-a) > 1e-9*b; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = eval(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = eval(d)
		}
	}
	tau := (a + b) / 2
	if math.IsInf(eval(tau), 1) {
		return 0, fmt.Errorf("model: no feasible checkpoint period (failure rate too high)")
	}
	return tau, nil
}

// Utilization returns the replicated-system utilization at the scheme's
// optimal period: W / (2 * T). The factor 2 accounts for the second replica
// doing redundant work — dual redundancy invests 50% of the machine
// up front, so even a failure-free perfectly efficient run peaks at 0.5.
func (p Params) Utilization(s Scheme) (tau, util float64, err error) {
	tau, err = p.OptimalTau(s)
	if err != nil {
		return 0, 0, err
	}
	t, err := p.TotalTime(s, tau)
	if err != nil {
		return 0, 0, err
	}
	return tau, p.W / (2 * t), nil
}

// UndetectedSDCProb returns the probability that at least one silent data
// corruption strikes inside an unprotected window during the whole run at
// period tau (Figure 7b). Strong resilience has no unprotected window.
// For medium resilience each hard error leaves on average (tau+d)/2
// unprotected; for weak the full (tau+d).
func (p Params) UndetectedSDCProb(s Scheme, tau float64) (float64, error) {
	t, err := p.TotalTime(s, tau)
	if err != nil {
		return 0, err
	}
	var window float64
	switch s {
	case Strong:
		return 0, nil
	case Medium:
		window = (tau + p.Delta) / 2
	case Weak:
		window = tau + p.Delta
	}
	hardErrors := t / p.HardMTBF()
	exposure := hardErrors * window
	return 1 - math.Exp(-exposure/p.SDCMTBF()), nil
}

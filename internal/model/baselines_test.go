package model

import (
	"math"
	"testing"
)

// fig1Params: 120-hour job as in Figure 1.
func fig1Params(sockets int, fit float64) BaselineParams {
	return BaselineParams{
		W:                   120 * 3600,
		Delta:               60,
		RH:                  30,
		Sockets:             sockets,
		HardMTBFSocketYears: 50,
		SDCFITPerSocket:     fit,
	}
}

func TestNoFTUtilizationCollapse(t *testing.T) {
	// Figure 1a: "as the socket count increases from 4K to 16K, the
	// utilization rapidly declines to almost 0."
	u4k := fig1Params(4096, 100).NoFTUtilization()
	u16k := fig1Params(16384, 100).NoFTUtilization()
	u64k := fig1Params(65536, 100).NoFTUtilization()
	if u4k < 0.3 {
		t.Errorf("4K no-FT utilization = %.3f, want moderate (>0.3)", u4k)
	}
	if u16k > 0.15 {
		t.Errorf("16K no-FT utilization = %.3f, want near collapse (<0.15)", u16k)
	}
	if u64k > 0.001 {
		t.Errorf("64K no-FT utilization = %.5f, want ~0", u64k)
	}
	if !(u4k > u16k && u16k > u64k) {
		t.Error("no-FT utilization must decline with sockets")
	}
}

func TestNoFTInfiniteMTBF(t *testing.T) {
	b := fig1Params(4096, 100)
	b.HardMTBFSocketYears = 0 // SocketYearsToMTBF returns +Inf
	if got := b.NoFTTime(); got != b.W {
		t.Fatalf("failure-free job should take exactly W, got %v", got)
	}
	if b.NoFTUtilization() != 1 {
		t.Fatal("failure-free utilization should be 1")
	}
}

func TestCheckpointOnlyBeatsNoFT(t *testing.T) {
	// Figure 1b: checkpoint/restart lifts utilization substantially.
	for _, s := range []int{16384, 65536, 262144} {
		b := fig1Params(s, 100)
		noft := b.NoFTUtilization()
		ck := b.CheckpointOnlyUtilization()
		if ck <= noft {
			t.Errorf("%d sockets: checkpointing (%.3f) should beat no FT (%.3f)", s, ck, noft)
		}
	}
}

func TestCheckpointOnlyStillDegrades(t *testing.T) {
	// Figure 1b: utilization "still drops after 64K sockets".
	u64 := fig1Params(65536, 100).CheckpointOnlyUtilization()
	u1m := fig1Params(1048576, 100).CheckpointOnlyUtilization()
	if u1m >= u64 {
		t.Errorf("checkpoint-only should degrade with scale: %.3f vs %.3f", u64, u1m)
	}
}

func TestVulnerabilityShape(t *testing.T) {
	b := fig1Params(4096, 100)
	tRun := b.NoFTTime()
	v := b.Vulnerability(tRun)
	if v <= 0 || v >= 1 {
		t.Fatalf("vulnerability %v out of (0,1)", v)
	}
	// Grows with FIT rate.
	hot := fig1Params(4096, 10000)
	if hv := hot.Vulnerability(hot.NoFTTime()); hv <= v {
		t.Errorf("higher FIT should raise vulnerability: %v vs %v", hv, v)
	}
	// Grows with exposure time.
	if b.Vulnerability(2*tRun) <= v {
		t.Error("longer exposure should raise vulnerability")
	}
	// Zero FIT, zero vulnerability.
	if fig1Params(4096, 0).Vulnerability(tRun) != 0 {
		t.Error("zero FIT should have zero vulnerability")
	}
	if b.Vulnerability(math.Inf(1)) != 1 {
		t.Error("infinite exposure should be certain corruption")
	}
}

func TestHighFITVulnerabilityNearOne(t *testing.T) {
	// Figure 1a's far corner: 10000 FIT at large scale.
	b := fig1Params(65536, 10000)
	v := b.Vulnerability(b.W)
	if v < 0.99 {
		t.Errorf("vulnerability at 10K FIT / 64K sockets = %v, want ~1", v)
	}
}

// Figure 1c: ACR utilization is lower than checkpoint-only at small scale
// (the 50% replication tax) but roughly flat, so it becomes comparable or
// better at scale, with zero vulnerability.
func TestACRUtilizationFlat(t *testing.T) {
	var prev float64
	var acr4k float64
	for i, s := range []int{4096, 16384, 65536, 262144, 1048576} {
		u := fig1Params(s, 100).ACRUtilization()
		if u <= 0 {
			t.Fatalf("%d sockets: ACR utilization nonpositive", s)
		}
		if i == 0 {
			acr4k = u
		} else if u > prev*1.001 {
			t.Errorf("ACR utilization should not grow: %v then %v", prev, u)
		}
		prev = u
	}
	// Flatness: from 4K to 1M sockets ACR loses far less than half.
	if prev < acr4k*0.75 {
		t.Errorf("ACR utilization should stay nearly constant: %.3f -> %.3f", acr4k, prev)
	}
	// Figure 1c's claim: the replication penalty, large at small scale,
	// becomes "comparable to other cases at scale" — the gap to
	// checkpoint-only narrows substantially from 4K to 1M sockets.
	ck4k := fig1Params(4096, 100).CheckpointOnlyUtilization()
	ck1m := fig1Params(1048576, 100).CheckpointOnlyUtilization()
	gapSmall := ck4k - acr4k
	gapBig := ck1m - prev
	if gapBig >= gapSmall*0.75 {
		t.Errorf("ACR's utilization gap should narrow at scale: %.3f at 4K vs %.3f at 1M", gapSmall, gapBig)
	}
	// At small scale checkpoint-only wins (the replication tax).
	if ck4k <= acr4k {
		t.Error("at 4K sockets checkpoint-only should beat ACR")
	}
}

func TestACRPointHalvesSockets(t *testing.T) {
	b := fig1Params(4096, 100)
	p := b.ACRPoint()
	if p.SocketsPerReplica != 2048 {
		t.Fatalf("sockets per replica = %d, want 2048", p.SocketsPerReplica)
	}
	if p.W != b.W || p.Delta != b.Delta {
		t.Fatal("ACRPoint should preserve W and Delta")
	}
}

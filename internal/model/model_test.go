package model

import (
	"math"
	"testing"
)

// fig7Params reproduces the Figure 7 configuration: MH = 50 years/socket,
// SDC = 100 FIT/socket, 24-hour job.
func fig7Params(socketsPerReplica int, delta float64) Params {
	return Params{
		W:                   24 * 3600,
		Delta:               delta,
		RH:                  30,
		RS:                  10,
		SocketsPerReplica:   socketsPerReplica,
		HardMTBFSocketYears: 50,
		SDCFITPerSocket:     100,
	}
}

func TestValidate(t *testing.T) {
	good := fig7Params(1024, 15)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{},
		{W: 1},
		{W: 1, Delta: 1, RH: -1},
		{W: 1, Delta: 1, SocketsPerReplica: 0},
		{W: 1, Delta: 1, SocketsPerReplica: 1},
		{W: 1, Delta: 1, SocketsPerReplica: 1, HardMTBFSocketYears: 1, SDCFITPerSocket: -5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSystemMTBFScaling(t *testing.T) {
	p1 := fig7Params(1024, 15)
	p4 := fig7Params(4096, 15)
	if r := p1.HardMTBF() / p4.HardMTBF(); math.Abs(r-4) > 1e-9 {
		t.Fatalf("hard MTBF should scale inversely with sockets: ratio %v", r)
	}
	if r := p1.SDCMTBF() / p4.SDCMTBF(); math.Abs(r-4) > 1e-9 {
		t.Fatalf("SDC MTBF should scale inversely with sockets: ratio %v", r)
	}
}

func TestMultiFailureProb(t *testing.T) {
	p := fig7Params(1024, 15)
	small := p.MultiFailureProb(10)
	big := p.MultiFailureProb(10000)
	if small < 0 || small > 1 || big < 0 || big > 1 {
		t.Fatalf("probabilities out of range: %v, %v", small, big)
	}
	if small >= big {
		t.Fatalf("longer period should raise multi-failure probability: %v vs %v", small, big)
	}
	// Second-order behaviour: for x = (tau+d)/M << 1, P ~ x^2/2.
	x := (10.0 + 15.0) / p.HardMTBF()
	if rel := math.Abs(small-x*x/2) / (x * x / 2); rel > 0.01 {
		t.Fatalf("small-x expansion violated: got %v, want ~%v", small, x*x/2)
	}
}

func TestTotalTimeExceedsWork(t *testing.T) {
	p := fig7Params(4096, 15)
	for _, s := range Schemes() {
		tt, err := p.TotalTime(s, 300)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if tt <= p.W {
			t.Errorf("%v: total time %v not above W %v", s, tt, p.W)
		}
	}
}

func TestTotalTimeErrors(t *testing.T) {
	p := fig7Params(4096, 15)
	if _, err := p.TotalTime(Strong, 0); err == nil {
		t.Fatal("tau=0 must fail")
	}
	bad := p
	bad.W = 0
	if _, err := bad.TotalTime(Strong, 100); err == nil {
		t.Fatal("invalid params must fail")
	}
	// Absurd failure rate: no forward progress.
	hot := fig7Params(4096, 15)
	hot.HardMTBFSocketYears = 1e-6
	if _, err := hot.TotalTime(Strong, 100); err == nil {
		t.Fatal("overhead rate >= 1 must fail")
	}
}

// Scheme ordering at a common tau: strong does the most hard-error rework,
// medium only an extra checkpoint, weak almost none. TS >= TM >= TW.
func TestSchemeOrdering(t *testing.T) {
	p := fig7Params(65536, 180)
	tau := 1000.0
	ts, err := p.TotalTime(Strong, tau)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := p.TotalTime(Medium, tau)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := p.TotalTime(Weak, tau)
	if err != nil {
		t.Fatal(err)
	}
	if !(ts > tm && tm > tw) {
		t.Fatalf("expected TS > TM > TW, got %v, %v, %v", ts, tm, tw)
	}
}

func TestOptimalTauMinimizes(t *testing.T) {
	p := fig7Params(16384, 15)
	for _, s := range Schemes() {
		tau, err := p.OptimalTau(s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		best, err := p.TotalTime(s, tau)
		if err != nil {
			t.Fatal(err)
		}
		for _, factor := range []float64{0.25, 0.5, 2, 4} {
			other, err := p.TotalTime(s, tau*factor)
			if err != nil {
				continue
			}
			if other < best*(1-1e-9) {
				t.Errorf("%v: tau=%v (T=%v) beaten by tau=%v (T=%v)", s, tau, best, tau*factor, other)
			}
		}
	}
}

// The strong scheme checkpoints more frequently than medium/weak because
// its rework penalty grows with tau (§6.2: "applications using strong
// resilience scheme need to checkpoint more frequently").
func TestStrongCheckpointsMoreOften(t *testing.T) {
	p := fig7Params(16384, 15)
	tauS, err := p.OptimalTau(Strong)
	if err != nil {
		t.Fatal(err)
	}
	tauM, err := p.OptimalTau(Medium)
	if err != nil {
		t.Fatal(err)
	}
	if tauS >= tauM {
		t.Fatalf("strong tau %v should be below medium tau %v", tauS, tauM)
	}
}

// Figure 7a quantitative anchors: with delta=15s all schemes stay above 45%
// at 256K sockets/replica; with delta=180s strong drops to roughly 37% while
// weak and medium stay above 43%... (paper values; we assert the shape with
// modest margins).
func TestFig7aUtilizationAnchors(t *testing.T) {
	const s256k = 262144
	for _, s := range Schemes() {
		_, u, err := fig7Params(s256k, 15).Utilization(s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if u < 0.43 || u > 0.5 {
			t.Errorf("delta=15 %v utilization = %.3f, want in [0.43, 0.5]", s, u)
		}
	}
	_, uStrong, err := fig7Params(s256k, 180).Utilization(Strong)
	if err != nil {
		t.Fatal(err)
	}
	if uStrong < 0.30 || uStrong > 0.42 {
		t.Errorf("delta=180 strong utilization = %.3f, want ~0.37", uStrong)
	}
	_, uWeak, err := fig7Params(s256k, 180).Utilization(Weak)
	if err != nil {
		t.Fatal(err)
	}
	_, uMedium, err := fig7Params(s256k, 180).Utilization(Medium)
	if err != nil {
		t.Fatal(err)
	}
	if uWeak < 0.40 || uMedium < 0.40 {
		t.Errorf("delta=180 weak/medium utilization = %.3f/%.3f, want > 0.40", uWeak, uMedium)
	}
	if !(uStrong < uMedium && uStrong < uWeak) {
		t.Errorf("strong should cost the most utilization at delta=180: %v vs %v/%v", uStrong, uMedium, uWeak)
	}
}

// Utilization declines with socket count for every scheme (Figure 7a).
func TestUtilizationMonotoneInSockets(t *testing.T) {
	for _, s := range Schemes() {
		prev := 1.0
		for _, n := range []int{1024, 4096, 16384, 65536, 262144} {
			_, u, err := fig7Params(n, 180).Utilization(s)
			if err != nil {
				t.Fatalf("%v at %d: %v", s, n, err)
			}
			if u > prev {
				t.Errorf("%v: utilization rose from %.4f to %.4f at %d sockets", s, prev, u, n)
			}
			prev = u
		}
	}
}

// Figure 7b anchors: strong detects everything; medium halves weak's
// undetected-SDC probability; probabilities grow with socket count; at 64K
// sockets with delta=15s medium stays below 1%.
func TestFig7bUndetectedSDC(t *testing.T) {
	p := fig7Params(65536, 15)
	tau, err := p.OptimalTau(Medium)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := p.UndetectedSDCProb(Strong, tau)
	if err != nil || ps != 0 {
		t.Fatalf("strong undetected prob = %v (err %v), want 0", ps, err)
	}
	pm, err := p.UndetectedSDCProb(Medium, tau)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := p.UndetectedSDCProb(Weak, tau)
	if err != nil {
		t.Fatal(err)
	}
	if pm <= 0 || pw <= 0 || pm >= 1 || pw >= 1 {
		t.Fatalf("probabilities out of range: medium %v weak %v", pm, pw)
	}
	if ratio := pw / pm; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("medium should halve weak's exposure: ratio %.2f", ratio)
	}
	if pm >= 0.01 {
		t.Errorf("medium delta=15s at 64K sockets = %.4f, paper says < 1%%", pm)
	}
	// Growth with sockets.
	pBig := fig7Params(262144, 180)
	tauBig, err := pBig.OptimalTau(Weak)
	if err != nil {
		t.Fatal(err)
	}
	pwBig, err := pBig.UndetectedSDCProb(Weak, tauBig)
	if err != nil {
		t.Fatal(err)
	}
	if pwBig <= pw {
		t.Errorf("weak exposure should grow with sockets and delta: %v vs %v", pwBig, pw)
	}
	if pwBig < 0.05 {
		t.Errorf("weak delta=180 at 256K should be substantial, got %v", pwBig)
	}
}

func TestSchemeString(t *testing.T) {
	if Strong.String() != "strong" || Medium.String() != "medium" || Weak.String() != "weak" {
		t.Fatal("Scheme.String broken")
	}
	if Scheme(9).String() == "" {
		t.Fatal("unknown scheme should format")
	}
	if len(Schemes()) != 3 {
		t.Fatal("Schemes() should list all three")
	}
}

package model

import "fmt"

// This file models the §1 motivation: classic checkpoint/restart writes to
// a parallel file system whose aggregate bandwidth does not scale with the
// compute, so the checkpoint time delta — and with it the achievable
// utilization — degrades as machines grow. ACR's in-memory buddy
// checkpoints keep delta roughly constant per node.

// DiskSystem describes a parallel-file-system checkpoint target.
type DiskSystem struct {
	// AggregateBandwidth is the PFS write bandwidth shared by the whole
	// machine, bytes/second (tens of GB/s on a BG/P-class installation).
	AggregateBandwidth float64
	// BytesPerSocket is the checkpoint footprint per socket.
	BytesPerSocket float64
}

// Delta returns the time of one whole-machine checkpoint to disk.
func (d DiskSystem) Delta(sockets int) (float64, error) {
	if d.AggregateBandwidth <= 0 {
		return 0, fmt.Errorf("model: need positive PFS bandwidth")
	}
	if d.BytesPerSocket < 0 || sockets <= 0 {
		return 0, fmt.Errorf("model: invalid disk checkpoint size")
	}
	return d.BytesPerSocket * float64(sockets) / d.AggregateBandwidth, nil
}

// WriteSeconds returns the modeled time to push the given payload through
// the PFS, the per-write cost the ckptstore disk tier accrues so runs can
// report what their checkpoint stream would have cost on a parallel file
// system (§1's bandwidth wall).
func (d DiskSystem) WriteSeconds(bytes float64) (float64, error) {
	if d.AggregateBandwidth <= 0 {
		return 0, fmt.Errorf("model: need positive PFS bandwidth")
	}
	if bytes < 0 {
		return 0, fmt.Errorf("model: negative write size")
	}
	return bytes / d.AggregateBandwidth, nil
}

// DiskVsMemoryPoint contrasts classic disk checkpoint/restart with ACR's
// in-memory double checkpointing at one machine size.
type DiskVsMemoryPoint struct {
	Sockets     int
	DiskDelta   float64
	MemoryDelta float64
	DiskUtil    float64 // no replication, delta grows with machine size
	ACRUtil     float64 // replicated, delta constant
}

// DiskVsMemory sweeps machine sizes: the disk baseline uses all sockets
// for computation but pays a delta that grows linearly with the machine,
// while ACR pays the constant in-memory delta plus the 50% replication
// tax. memoryDelta is the per-checkpoint cost of ACR's buddy exchange.
func DiskVsMemory(disk DiskSystem, memoryDelta float64, baseline BaselineParams, sockets []int) ([]DiskVsMemoryPoint, error) {
	var out []DiskVsMemoryPoint
	for _, s := range sockets {
		dd, err := disk.Delta(s)
		if err != nil {
			return nil, err
		}
		b := baseline
		b.Sockets = s
		b.Delta = dd
		pt := DiskVsMemoryPoint{
			Sockets:     s,
			DiskDelta:   dd,
			MemoryDelta: memoryDelta,
			DiskUtil:    b.CheckpointOnlyUtilization(),
		}
		m := baseline
		m.Sockets = s
		m.Delta = memoryDelta
		pt.ACRUtil = m.ACRUtilization()
		out = append(out, pt)
	}
	return out, nil
}

package model

import "testing"

func BenchmarkOptimalTau(b *testing.B) {
	p := Params{
		W:                   24 * 3600,
		Delta:               15,
		RH:                  30,
		RS:                  10,
		SocketsPerReplica:   65536,
		HardMTBFSocketYears: 50,
		SDCFITPerSocket:     100,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range Schemes() {
			if _, err := p.OptimalTau(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTotalTime(b *testing.B) {
	p := Params{
		W:                   24 * 3600,
		Delta:               15,
		RH:                  30,
		RS:                  10,
		SocketsPerReplica:   65536,
		HardMTBFSocketYears: 50,
		SDCFITPerSocket:     100,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.TotalTime(Weak, 500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSDCCrossover(b *testing.B) {
	p := Params{
		W:                   24 * 3600,
		Delta:               15,
		RH:                  30,
		RS:                  10,
		SocketsPerReplica:   65536,
		HardMTBFSocketYears: 50,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SDCCrossoverFIT(3e6); err != nil {
			b.Fatal(err)
		}
	}
}

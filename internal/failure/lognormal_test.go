package failure

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogNormalBasics(t *testing.T) {
	l, err := NewLogNormal(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(2 + 0.5)
	if math.Abs(l.Mean()-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", l.Mean(), want)
	}
	if l.String() == "" {
		t.Fatal("empty String()")
	}
	if _, err := NewLogNormal(0, 0); err == nil {
		t.Fatal("zero sigma must fail")
	}
	if _, err := NewLogNormal(math.NaN(), 1); err == nil {
		t.Fatal("NaN mu must fail")
	}
}

func TestLogNormalFromMean(t *testing.T) {
	l, err := LogNormalFromMean(120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Mean()-120)/120 > 1e-12 {
		t.Fatalf("mean = %v, want 120", l.Mean())
	}
	if _, err := LogNormalFromMean(-1, 1); err == nil {
		t.Fatal("negative mean must fail")
	}
}

func TestLogNormalSampleMean(t *testing.T) {
	l, _ := LogNormalFromMean(50, 1)
	rng := rand.New(rand.NewSource(12))
	sum := 0.0
	const n = 400000
	for i := 0; i < n; i++ {
		v := l.Sample(rng)
		if v <= 0 {
			t.Fatal("non-positive sample")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-50)/50 > 0.03 {
		t.Fatalf("sample mean %v, want ~50", mean)
	}
}

func TestLogNormalHazardEventuallyDecreases(t *testing.T) {
	l, _ := NewLogNormal(3, 1.2)
	// The lognormal hazard rises then falls; beyond the mode region it
	// must decrease.
	h1 := l.Hazard(200)
	h2 := l.Hazard(2000)
	h3 := l.Hazard(20000)
	if !(h1 > h2 && h2 > h3) {
		t.Fatalf("hazard should decrease in the tail: %v, %v, %v", h1, h2, h3)
	}
	if l.Hazard(0) != 0 {
		t.Fatal("hazard at 0 should be 0")
	}
	if l.Hazard(-1) != 0 {
		t.Fatal("hazard at negative time should be 0")
	}
}

func TestFitLogNormalRecoversParameters(t *testing.T) {
	l, _ := NewLogNormal(2.5, 0.8)
	rng := rand.New(rand.NewSource(13))
	gaps := make([]float64, 30000)
	for i := range gaps {
		gaps[i] = l.Sample(rng)
	}
	fit, err := FitLogNormal(gaps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-2.5) > 0.02 {
		t.Errorf("fitted mu %v, want ~2.5", fit.Mu)
	}
	if math.Abs(fit.Sigma-0.8) > 0.02 {
		t.Errorf("fitted sigma %v, want ~0.8", fit.Sigma)
	}
}

func TestFitLogNormalErrors(t *testing.T) {
	if _, err := FitLogNormal([]float64{1}); err == nil {
		t.Fatal("single sample must fail")
	}
	if _, err := FitLogNormal([]float64{1, -2}); err == nil {
		t.Fatal("negative gap must fail")
	}
	if _, err := FitLogNormal([]float64{5, 5, 5}); err == nil {
		t.Fatal("degenerate samples must fail")
	}
}

func TestLogNormalRenewalSchedule(t *testing.T) {
	l, _ := LogNormalFromMean(10, 1)
	rng := rand.New(rand.NewSource(14))
	s := RenewalSchedule(l, 1000, rng)
	if len(s) < 30 {
		t.Fatalf("too few failures: %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatal("schedule not sorted")
		}
	}
}

package failure

import (
	"fmt"
	"math"
)

// FitExponential returns the maximum-likelihood exponential distribution for
// the observed inter-failure times: MTBF = sample mean.
func FitExponential(gaps []float64) (Exponential, error) {
	if len(gaps) == 0 {
		return Exponential{}, fmt.Errorf("failure: no samples to fit")
	}
	sum := 0.0
	for _, g := range gaps {
		if g <= 0 {
			return Exponential{}, fmt.Errorf("failure: non-positive gap %v", g)
		}
		sum += g
	}
	return NewExponential(sum / float64(len(gaps)))
}

// FitWeibull returns the maximum-likelihood Weibull distribution for the
// observed inter-failure times, solving the profile-likelihood equation for
// the shape by Newton iteration with a bisection fallback.
func FitWeibull(gaps []float64) (Weibull, error) {
	n := len(gaps)
	if n < 2 {
		return Weibull{}, fmt.Errorf("failure: need >= 2 samples to fit Weibull, got %d", n)
	}
	meanLog := 0.0
	for _, g := range gaps {
		if g <= 0 {
			return Weibull{}, fmt.Errorf("failure: non-positive gap %v", g)
		}
		meanLog += math.Log(g)
	}
	meanLog /= float64(n)

	// g(k) = sum(x^k ln x)/sum(x^k) - 1/k - meanLog; root in k.
	g := func(k float64) float64 {
		var sxk, sxkl float64
		for _, x := range gaps {
			xk := math.Pow(x, k)
			sxk += xk
			sxkl += xk * math.Log(x)
		}
		return sxkl/sxk - 1/k - meanLog
	}

	// Bracket the root: g is increasing in k; g(k)->-inf as k->0+ and
	// g(k) -> max(ln x) - meanLog > 0 as k->inf (for non-degenerate data).
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 && hi < 1e6 {
		hi *= 2
	}
	if g(hi) < 0 {
		return Weibull{}, fmt.Errorf("failure: Weibull fit failed to bracket (degenerate samples?)")
	}
	// Bisection with a few extra digits; robust and fast enough for the
	// small windows used online.
	for i := 0; i < 200 && hi-lo > 1e-10*hi; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	var sxk float64
	for _, x := range gaps {
		sxk += math.Pow(x, k)
	}
	lambda := math.Pow(sxk/float64(n), 1/k)
	return NewWeibull(k, lambda)
}

// PowerLawFit is the Crow-AMSAA maximum-likelihood fit of a power-law NHPP
// to failure times observed on [0, T]:
//
//	shape = n / sum(ln(T/t_i)),   scale = T / n^(1/shape).
//
// Its intensity at observation time T, shape/scale * (T/scale)^(shape-1),
// is the "current trend of the distribution" that ACR's adaptive mode
// tracks (§2.2).
type PowerLawFit struct {
	Shape float64
	Scale float64
	T     float64 // observation window end
	N     int     // number of observed failures
}

// FitPowerLaw fits the power-law process to failure times on (0, T].
func FitPowerLaw(times []float64, T float64) (PowerLawFit, error) {
	n := len(times)
	if n < 2 {
		return PowerLawFit{}, fmt.Errorf("failure: need >= 2 failures to fit power law, got %d", n)
	}
	if T <= 0 {
		return PowerLawFit{}, fmt.Errorf("failure: non-positive window %v", T)
	}
	sum := 0.0
	for _, t := range times {
		if t <= 0 || t > T {
			return PowerLawFit{}, fmt.Errorf("failure: time %v outside (0, %v]", t, T)
		}
		sum += math.Log(T / t)
	}
	if sum <= 0 {
		return PowerLawFit{}, fmt.Errorf("failure: degenerate failure times")
	}
	shape := float64(n) / sum
	scale := T / math.Pow(float64(n), 1/shape)
	return PowerLawFit{Shape: shape, Scale: scale, T: T, N: n}, nil
}

// Intensity returns the fitted instantaneous failure rate at time t.
func (f PowerLawFit) Intensity(t float64) float64 {
	if t <= 0 {
		t = math.SmallestNonzeroFloat64
	}
	return f.Shape / f.Scale * math.Pow(t/f.Scale, f.Shape-1)
}

// CurrentMTBF returns the reciprocal of the fitted intensity at the end of
// the observation window: the "current observed mean time between
// failures" used to re-derive the checkpoint interval in Figure 12.
func (f PowerLawFit) CurrentMTBF() float64 {
	return 1 / f.Intensity(f.T)
}

// History accumulates observed failure times online and exposes rate
// estimates. It is the state behind ACR's adaptive checkpointing mode.
type History struct {
	times []float64
}

// Record appends a failure observed at absolute time t (seconds). Times
// must be recorded in nondecreasing order.
func (h *History) Record(t float64) {
	if len(h.times) > 0 && t < h.times[len(h.times)-1] {
		// Clamp rather than panic: concurrent detectors may race by tiny
		// amounts and ordering noise must not corrupt the estimate.
		t = h.times[len(h.times)-1]
	}
	h.times = append(h.times, t)
}

// Count returns the number of recorded failures.
func (h *History) Count() int { return len(h.times) }

// Times returns a copy of the recorded failure times.
func (h *History) Times() []float64 {
	out := make([]float64, len(h.times))
	copy(out, h.times)
	return out
}

// MeanMTBF returns the plain average inter-failure time, or +Inf with ok ==
// false when fewer than two failures have been seen.
func (h *History) MeanMTBF() (float64, bool) {
	if len(h.times) < 2 {
		return math.Inf(1), false
	}
	span := h.times[len(h.times)-1] - h.times[0]
	if span <= 0 {
		return math.Inf(1), false
	}
	return span / float64(len(h.times)-1), true
}

// CurrentMTBF estimates the mean time to the next failure as of time now,
// preferring the power-law trend fit and falling back to the plain mean
// when the fit is unavailable. ok is false when fewer than two failures
// have been recorded.
func (h *History) CurrentMTBF(now float64) (float64, bool) {
	if len(h.times) >= 2 && now > 0 {
		if fit, err := FitPowerLaw(h.times, now); err == nil {
			m := 1 / fit.Intensity(now)
			if m > 0 && !math.IsInf(m, 1) && !math.IsNaN(m) {
				return m, true
			}
		}
	}
	return h.MeanMTBF()
}

// WeibullMTBF estimates the mean time to the next failure by fitting an
// i.i.d. Weibull renewal process to the inter-failure gaps and evaluating
// the reciprocal hazard at the current age (time since the last failure).
// This is the "fit the actual observed failures to a certain distribution"
// alternative of §2.2: with shape < 1 the hazard decays as the system
// survives longer, so the estimate grows with the failure-free age.
// ok is false with fewer than three failures (two gaps).
func (h *History) WeibullMTBF(now float64) (float64, bool) {
	if len(h.times) < 3 {
		return math.Inf(1), false
	}
	gaps := make([]float64, 0, len(h.times)-1)
	for i := 1; i < len(h.times); i++ {
		if g := h.times[i] - h.times[i-1]; g > 0 {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) < 2 {
		return math.Inf(1), false
	}
	w, err := FitWeibull(gaps)
	if err != nil {
		return h.MeanMTBF()
	}
	age := now - h.times[len(h.times)-1]
	if age <= 0 {
		age = math.SmallestNonzeroFloat64
	}
	hz := w.Hazard(age)
	if hz <= 0 || math.IsInf(hz, 1) || math.IsNaN(hz) {
		return h.MeanMTBF()
	}
	return 1 / hz, true
}

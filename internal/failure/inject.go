package failure

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind distinguishes the two error classes ACR protects against.
type Kind int

// Error kinds.
const (
	// Hard is a fail-stop node crash: the node stops responding to all
	// communication (§6.1's "no-response scheme").
	Hard Kind = iota
	// SDC is a silent data corruption: a bit flip in user data that will
	// be checkpointed.
	SDC
)

func (k Kind) String() string {
	switch k {
	case Hard:
		return "hard"
	case SDC:
		return "sdc"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one planned failure injection.
type Event struct {
	Time    float64 // absolute seconds
	Kind    Kind
	Replica int // 0 or 1
	Node    int // node index within the replica
}

// Plan is a time-ordered list of injections.
type Plan []Event

// NewPlan merges hard-error and SDC schedules into a single injection plan,
// assigning each event to a uniformly random node of a uniformly random
// replica.
func NewPlan(hard, sdc Schedule, nodesPerReplica int, rng *rand.Rand) Plan {
	var p Plan
	for _, t := range hard {
		p = append(p, Event{Time: t, Kind: Hard, Replica: rng.Intn(2), Node: rng.Intn(nodesPerReplica)})
	}
	for _, t := range sdc {
		p = append(p, Event{Time: t, Kind: SDC, Replica: rng.Intn(2), Node: rng.Intn(nodesPerReplica)})
	}
	// Merge by time (insertion sort; plans are short).
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j].Time < p[j-1].Time; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
	return p
}

// FlipBit flips one uniformly random bit in data, returning the byte index
// and bit position. It mimics the paper's fault injector, which "injects a
// fault by flipping a randomly selected bit in the user data that will be
// checkpointed" (§6.1). Empty data is a no-op and returns (-1, -1).
func FlipBit(data []byte, rng *rand.Rand) (byteIdx, bit int) {
	if len(data) == 0 {
		return -1, -1
	}
	byteIdx = rng.Intn(len(data))
	bit = rng.Intn(8)
	data[byteIdx] ^= 1 << bit
	return byteIdx, bit
}

// FlipFloat64Bit flips one random bit in one random element of a float64
// slice — the typical corruption target in the mini-apps' grids.
func FlipFloat64Bit(data []float64, rng *rand.Rand) (index, bit int) {
	if len(data) == 0 {
		return -1, -1
	}
	index = rng.Intn(len(data))
	bit = rng.Intn(64)
	bits := floatBits(data[index]) ^ (1 << uint(bit))
	data[index] = floatFromBits(bits)
	return index, bit
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

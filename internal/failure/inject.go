package failure

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind distinguishes the two error classes ACR protects against.
type Kind int

// Error kinds.
const (
	// Hard is a fail-stop node crash: the node stops responding to all
	// communication (§6.1's "no-response scheme").
	Hard Kind = iota
	// SDC is a silent data corruption: a bit flip in user data that will
	// be checkpointed.
	SDC
)

func (k Kind) String() string {
	switch k {
	case Hard:
		return "hard"
	case SDC:
		return "sdc"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one planned failure injection.
type Event struct {
	Time    float64 // absolute seconds
	Kind    Kind
	Replica int // 0 or 1
	Node    int // node index within the replica
}

// Plan is a time-ordered list of injections.
type Plan []Event

// Targeting pins plan events to a fixed replica and/or node; a -1 field
// keeps the classical uniform-random assignment. Chaos scenarios use pinned
// targets to aim faults at a specific protocol participant (e.g. always the
// buddy of the previously crashed node) instead of spraying uniformly.
type Targeting struct {
	Replica int // 0 or 1, or -1 for uniform-random
	Node    int // node index, or -1 for uniform-random
}

// RandomTarget is the uniform-random assignment NewPlan has always used.
var RandomTarget = Targeting{Replica: -1, Node: -1}

// resolve draws the event target, consuming rng draws only for wildcard
// fields so pinned plans stay deterministic under the same seed.
func (tg Targeting) resolve(nodesPerReplica int, rng *rand.Rand) (replica, node int) {
	replica, node = tg.Replica, tg.Node
	if replica < 0 {
		replica = rng.Intn(2)
	}
	if node < 0 {
		node = rng.Intn(nodesPerReplica)
	}
	return replica, node
}

// NewPlan merges hard-error and SDC schedules into a single injection plan,
// assigning each event to a uniformly random node of a uniformly random
// replica.
func NewPlan(hard, sdc Schedule, nodesPerReplica int, rng *rand.Rand) Plan {
	return NewPlanTargeted(hard, sdc, nodesPerReplica, RandomTarget, RandomTarget, rng)
}

// NewPlanTargeted is NewPlan with per-kind targeting: hardTgt aims the
// fail-stop events, sdcTgt the corruption events. The result is stably
// time-ordered: events at equal times keep hard-before-SDC schedule order,
// and the plan is deterministic for a fixed rng seed.
func NewPlanTargeted(hard, sdc Schedule, nodesPerReplica int, hardTgt, sdcTgt Targeting, rng *rand.Rand) Plan {
	p := make(Plan, 0, len(hard)+len(sdc))
	for _, t := range hard {
		rep, node := hardTgt.resolve(nodesPerReplica, rng)
		p = append(p, Event{Time: t, Kind: Hard, Replica: rep, Node: node})
	}
	for _, t := range sdc {
		rep, node := sdcTgt.resolve(nodesPerReplica, rng)
		p = append(p, Event{Time: t, Kind: SDC, Replica: rep, Node: node})
	}
	sort.SliceStable(p, func(i, j int) bool { return p[i].Time < p[j].Time })
	return p
}

// FlipBit flips one uniformly random bit in data, returning the byte index
// and bit position. It mimics the paper's fault injector, which "injects a
// fault by flipping a randomly selected bit in the user data that will be
// checkpointed" (§6.1). Empty data is a no-op and returns (-1, -1).
func FlipBit(data []byte, rng *rand.Rand) (byteIdx, bit int) {
	if len(data) == 0 {
		return -1, -1
	}
	byteIdx = rng.Intn(len(data))
	bit = rng.Intn(8)
	data[byteIdx] ^= 1 << bit
	return byteIdx, bit
}

// FlipFloat64Bit flips one random bit in one random element of a float64
// slice — the typical corruption target in the mini-apps' grids.
func FlipFloat64Bit(data []float64, rng *rand.Rand) (index, bit int) {
	if len(data) == 0 {
		return -1, -1
	}
	index = rng.Intn(len(data))
	bit = rng.Intn(64)
	bits := floatBits(data[index]) ^ (1 << uint(bit))
	data[index] = floatFromBits(bits)
	return index, bit
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

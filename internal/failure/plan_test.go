package failure

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// TestPlanOrderedAndDeterministic: for any pair of schedules and any seed,
// the merged plan is non-decreasing in time, contains every input event
// exactly once, and two plans built from the same inputs and seed are
// identical.
func TestPlanOrderedAndDeterministic(t *testing.T) {
	f := func(seed int64, hardRaw, sdcRaw []float64, nodesRaw uint8) bool {
		nodes := int(nodesRaw)%4 + 1
		mk := func(raw []float64) Schedule {
			s := make(Schedule, 0, len(raw))
			for _, v := range raw {
				if v < 0 {
					v = -v
				}
				s = append(s, v)
			}
			sort.Float64s(s)
			return s
		}
		hard, sdc := mk(hardRaw), mk(sdcRaw)

		p1 := NewPlan(hard, sdc, nodes, rand.New(rand.NewSource(seed)))
		p2 := NewPlan(hard, sdc, nodes, rand.New(rand.NewSource(seed)))
		if !reflect.DeepEqual(p1, p2) {
			return false // same seed must give byte-identical plans
		}
		if len(p1) != len(hard)+len(sdc) {
			return false
		}
		hardLeft, sdcLeft := len(hard), len(sdc)
		for i, ev := range p1 {
			if i > 0 && ev.Time < p1[i-1].Time {
				return false // time order violated
			}
			if ev.Replica < 0 || ev.Replica > 1 || ev.Node < 0 || ev.Node >= nodes {
				return false // target out of range
			}
			switch ev.Kind {
			case Hard:
				hardLeft--
			case SDC:
				sdcLeft--
			}
		}
		return hardLeft == 0 && sdcLeft == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanTargeting: pinned fields land every event on the pinned target;
// wildcard fields still spread across the machine.
func TestPlanTargeting(t *testing.T) {
	hard := Schedule{1, 2, 3, 4, 5, 6, 7, 8}
	sdc := Schedule{1.5, 2.5, 3.5, 4.5}
	const nodes = 4
	rng := rand.New(rand.NewSource(7))
	p := NewPlanTargeted(hard, sdc, nodes, Targeting{Replica: 1, Node: 2}, Targeting{Replica: 0, Node: -1}, rng)
	if len(p) != len(hard)+len(sdc) {
		t.Fatalf("plan has %d events, want %d", len(p), len(hard)+len(sdc))
	}
	sdcNodes := map[int]bool{}
	for _, ev := range p {
		switch ev.Kind {
		case Hard:
			if ev.Replica != 1 || ev.Node != 2 {
				t.Fatalf("pinned hard event landed at r%d/n%d", ev.Replica, ev.Node)
			}
		case SDC:
			if ev.Replica != 0 {
				t.Fatalf("SDC pinned to replica 0 landed at r%d", ev.Replica)
			}
			sdcNodes[ev.Node] = true
		}
	}
	if len(sdcNodes) < 2 {
		t.Fatalf("wildcard SDC node never varied: %v", sdcNodes)
	}
}

// TestPlanStableAtEqualTimes: events at identical times keep schedule order
// (hard entries precede SDC entries, each in input order).
func TestPlanStableAtEqualTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPlan(Schedule{5, 5}, Schedule{5}, 2, rng)
	if p[0].Kind != Hard || p[1].Kind != Hard || p[2].Kind != SDC {
		t.Fatalf("equal-time ordering not stable: %+v", p)
	}
}

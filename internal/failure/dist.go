// Package failure models the error processes ACR is built to survive:
// hard-error and SDC arrival distributions (Poisson/exponential and
// Weibull), FIT-rate conversions, failure-schedule generation for injection
// experiments (§6.1), bit-flip SDC injection, and online estimation of the
// current failure rate from the observed failure stream (§2.2, "Adapting to
// Failures").
package failure

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Distribution is a continuous positive distribution of inter-failure times.
type Distribution interface {
	// Sample draws one value using the provided source.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Hazard returns the instantaneous failure rate at age t.
	Hazard(t float64) float64
	fmt.Stringer
}

// Exponential is the memoryless distribution of a Poisson failure process.
type Exponential struct {
	// MTBF is the mean time between failures (1/rate), in seconds.
	MTBF float64
}

// NewExponential returns an exponential distribution with the given mean.
func NewExponential(mtbf float64) (Exponential, error) {
	if mtbf <= 0 || math.IsNaN(mtbf) {
		return Exponential{}, fmt.Errorf("failure: MTBF must be positive, got %v", mtbf)
	}
	return Exponential{MTBF: mtbf}, nil
}

// Sample draws an exponential variate by inversion.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	// 1-U avoids log(0).
	return -e.MTBF * math.Log(1-rng.Float64())
}

// Mean returns the MTBF.
func (e Exponential) Mean() float64 { return e.MTBF }

// Hazard is constant for the exponential.
func (e Exponential) Hazard(t float64) float64 { return 1 / e.MTBF }

func (e Exponential) String() string { return fmt.Sprintf("Exponential(MTBF=%.4g s)", e.MTBF) }

// Weibull is the distribution found to fit HPC failure logs best
// (Schroeder & Gibson [29]); Shape < 1 gives the decreasing failure rate
// observed in practice.
type Weibull struct {
	Shape float64 // k
	Scale float64 // lambda, seconds
}

// NewWeibull returns a Weibull distribution.
func NewWeibull(shape, scale float64) (Weibull, error) {
	if shape <= 0 || scale <= 0 || math.IsNaN(shape) || math.IsNaN(scale) {
		return Weibull{}, fmt.Errorf("failure: Weibull needs positive shape/scale, got k=%v lambda=%v", shape, scale)
	}
	return Weibull{Shape: shape, Scale: scale}, nil
}

// WeibullFromMean returns a Weibull with the given shape whose mean equals
// mean: lambda = mean / Gamma(1 + 1/k).
func WeibullFromMean(shape, mean float64) (Weibull, error) {
	if shape <= 0 || mean <= 0 {
		return Weibull{}, fmt.Errorf("failure: need positive shape and mean")
	}
	return NewWeibull(shape, mean/math.Gamma(1+1/shape))
}

// Sample draws a Weibull variate by inversion.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	u := 1 - rng.Float64()
	return w.Scale * math.Pow(-math.Log(u), 1/w.Shape)
}

// Mean returns lambda * Gamma(1 + 1/k).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// Hazard returns (k/lambda) (t/lambda)^(k-1); decreasing in t for k < 1.
func (w Weibull) Hazard(t float64) float64 {
	if t <= 0 {
		t = math.SmallestNonzeroFloat64
	}
	return w.Shape / w.Scale * math.Pow(t/w.Scale, w.Shape-1)
}

func (w Weibull) String() string {
	return fmt.Sprintf("Weibull(k=%.3g, lambda=%.4g s)", w.Shape, w.Scale)
}

// FIT conversions. A FIT is one failure per 10^9 device-hours.

// FITToMTBF converts a per-device FIT rate and a device count to a
// system-level mean time between failures in seconds.
func FITToMTBF(fitPerDevice float64, devices int) float64 {
	if fitPerDevice <= 0 || devices <= 0 {
		return math.Inf(1)
	}
	hours := 1e9 / (fitPerDevice * float64(devices))
	return hours * 3600
}

// MTBFToFIT is the inverse of FITToMTBF for a single device.
func MTBFToFIT(mtbfSeconds float64, devices int) float64 {
	if mtbfSeconds <= 0 || math.IsInf(mtbfSeconds, 1) || devices <= 0 {
		return 0
	}
	return 1e9 / (mtbfSeconds / 3600 * float64(devices))
}

// SocketYearsToMTBF converts a per-socket MTBF expressed in years (the
// paper uses 50 years/socket, the Jaguar figure [30]) and a socket count to
// a system MTBF in seconds.
func SocketYearsToMTBF(years float64, sockets int) float64 {
	if years <= 0 || sockets <= 0 {
		return math.Inf(1)
	}
	const secondsPerYear = 365.25 * 24 * 3600
	return years * secondsPerYear / float64(sockets)
}

// Schedule is an increasing sequence of absolute failure times (seconds).
type Schedule []float64

// RenewalSchedule draws failure times on [0, horizon] as a renewal process
// with i.i.d. inter-failure times from d.
func RenewalSchedule(d Distribution, horizon float64, rng *rand.Rand) Schedule {
	var s Schedule
	t := d.Sample(rng)
	for t <= horizon {
		s = append(s, t)
		t += d.Sample(rng)
	}
	return s
}

// PowerLawSchedule draws failure times on [0, horizon] from a power-law
// (Crow-AMSAA) non-homogeneous Poisson process with cumulative intensity
// Lambda(t) = (t/scale)^shape. For shape < 1 the instantaneous rate
// decreases with time — the "more failures at the beginning" behaviour
// injected in the Figure 12 adaptivity run.
func PowerLawSchedule(shape, scale, horizon float64, rng *rand.Rand) Schedule {
	var s Schedule
	g := 0.0
	for {
		g += -math.Log(1 - rng.Float64()) // unit-rate Poisson arrival increments
		t := scale * math.Pow(g, 1/shape)
		if t > horizon {
			return s
		}
		s = append(s, t)
	}
}

// FixedCountPowerLawSchedule scales a power-law process so that exactly n
// failures land on [0, horizon]: it draws arrival fractions from the
// conditional distribution (order statistics of U^(1/shape)). This mirrors
// the paper's controlled injection of exactly 19 failures in 30 minutes.
func FixedCountPowerLawSchedule(shape float64, n int, horizon float64, rng *rand.Rand) Schedule {
	s := make(Schedule, n)
	for i := range s {
		u := rng.Float64()
		s[i] = horizon * math.Pow(u, 1/shape)
	}
	sort.Float64s(s)
	return s
}

// Interarrivals returns the gaps of the schedule, with the first gap
// measured from time zero.
func (s Schedule) Interarrivals() []float64 {
	out := make([]float64, len(s))
	prev := 0.0
	for i, t := range s {
		out[i] = t - prev
		prev = t
	}
	return out
}

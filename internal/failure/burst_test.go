package failure

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestBurstPlanProperties property-checks NewBurstPlan: for arbitrary
// schedules and burst shapes, the plan holds exactly width hard events per
// anchor inside the anchor's window, every SDC event unchanged, valid
// targets, and time ordering.
func TestBurstPlanProperties(t *testing.T) {
	prop := func(seed int64, nHard, nSDC, width, nodes uint8, window float64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := int(nHard%8) + 1
		s := int(nSDC % 8)
		b := Burst{
			Width:      int(width%5) + 1,
			Window:     (window - float64(int(window))) * 10, // fractional part scaled; may be negative
			BuddyPairs: seed%2 == 0,
		}
		if b.Window < 0 {
			b.Window = -b.Window
		}
		npr := int(nodes%6) + 1
		hard := make(Schedule, h)
		for i := range hard {
			hard[i] = float64(i) * 100 // well-separated anchors
		}
		sdc := make(Schedule, s)
		for i := range sdc {
			sdc[i] = float64(i)*70 + 13
		}
		plan, err := NewBurstPlan(hard, sdc, npr, b, rng)
		if err != nil {
			t.Logf("unexpected error: %v", err)
			return false
		}
		// Total-count invariant.
		nh, ns := 0, 0
		for _, e := range plan {
			switch e.Kind {
			case Hard:
				nh++
			case SDC:
				ns++
			}
			if e.Replica < 0 || e.Replica > 1 || e.Node < 0 || e.Node >= npr {
				t.Logf("invalid target %+v", e)
				return false
			}
		}
		if nh != h*b.Width || ns != s {
			t.Logf("counts: hard %d want %d, sdc %d want %d", nh, h*b.Width, ns, s)
			return false
		}
		// Window invariant: every hard event lies inside some anchor's
		// [t, t+Window]. Anchors are 100s apart and windows <= 10s, so
		// each event identifies its anchor uniquely.
		for _, e := range plan {
			if e.Kind != Hard {
				continue
			}
			inWindow := false
			for _, a := range hard {
				if e.Time >= a && e.Time <= a+b.Window {
					inWindow = true
					break
				}
			}
			if !inWindow {
				t.Logf("event at %v outside every burst window (window=%v)", e.Time, b.Window)
				return false
			}
		}
		// Ordering invariant.
		for i := 1; i < len(plan); i++ {
			if plan[i].Time < plan[i-1].Time {
				t.Logf("plan not time-ordered at %d", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBurstPlanDeterministic pins seed-determinism: the same inputs and
// seed reproduce the identical plan.
func TestBurstPlanDeterministic(t *testing.T) {
	mk := func() Plan {
		rng := rand.New(rand.NewSource(42))
		p, err := NewBurstPlan(Schedule{10, 200}, Schedule{55}, 4, Burst{Width: 3, Window: 2.5, BuddyPairs: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if a, b := mk(), mk(); !reflect.DeepEqual(a, b) {
		t.Fatalf("plans differ:\n%v\n%v", a, b)
	}
}

// TestBurstPlanBuddyPairs checks the buddy-pair shape: width 2 kills the
// same logical node in both replicas.
func TestBurstPlanBuddyPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	plan, err := NewBurstPlan(Schedule{100}, nil, 5, Burst{Width: 2, Window: 0, BuddyPairs: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("got %d events, want 2", len(plan))
	}
	if plan[0].Node != plan[1].Node {
		t.Fatalf("buddy burst hit different nodes: %+v", plan)
	}
	if plan[0].Replica == plan[1].Replica {
		t.Fatalf("buddy burst hit one replica twice: %+v", plan)
	}
	if plan[0].Time != 100 || plan[1].Time != 100 {
		t.Fatalf("zero-window burst not simultaneous: %+v", plan)
	}
}

// TestBurstPlanRejectsBadShape checks validation.
func TestBurstPlanRejectsBadShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewBurstPlan(Schedule{1}, nil, 4, Burst{Width: 0}, rng); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := NewBurstPlan(Schedule{1}, nil, 4, Burst{Width: 1, Window: -1}, rng); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := NewBurstPlan(Schedule{1}, nil, 0, Burst{Width: 1}, rng); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

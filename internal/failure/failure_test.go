package failure

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestExponentialBasics(t *testing.T) {
	e, err := NewExponential(100)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mean() != 100 {
		t.Fatalf("mean = %v", e.Mean())
	}
	if e.Hazard(0) != e.Hazard(1e6) {
		t.Fatal("exponential hazard must be constant")
	}
	if _, err := NewExponential(0); err == nil {
		t.Fatal("zero MTBF must fail")
	}
	if _, err := NewExponential(math.NaN()); err == nil {
		t.Fatal("NaN MTBF must fail")
	}
	if e.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestExponentialSampleMean(t *testing.T) {
	e, _ := NewExponential(50)
	rng := rand.New(rand.NewSource(1))
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := e.Sample(rng)
		if v < 0 {
			t.Fatal("negative sample")
		}
		sum += v
	}
	mean := sum / n
	if mean < 48 || mean > 52 {
		t.Fatalf("sample mean %v, want ~50", mean)
	}
}

func TestWeibullBasics(t *testing.T) {
	w, err := NewWeibull(0.6, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w.String() == "" {
		t.Fatal("empty String()")
	}
	// k<1: hazard decreasing.
	if !(w.Hazard(1) > w.Hazard(10) && w.Hazard(10) > w.Hazard(100)) {
		t.Fatal("Weibull k<1 hazard must decrease")
	}
	// k=1 reduces to exponential.
	w1, _ := NewWeibull(1, 100)
	if math.Abs(w1.Mean()-100) > 1e-9 {
		t.Fatalf("Weibull(1,100) mean = %v, want 100", w1.Mean())
	}
	if math.Abs(w1.Hazard(5)-0.01) > 1e-12 {
		t.Fatalf("Weibull(1,100) hazard = %v, want 0.01", w1.Hazard(5))
	}
	if _, err := NewWeibull(0, 1); err == nil {
		t.Fatal("zero shape must fail")
	}
	if _, err := NewWeibull(1, 0); err == nil {
		t.Fatal("zero scale must fail")
	}
}

func TestWeibullFromMean(t *testing.T) {
	w, err := WeibullFromMean(0.6, 90)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Mean()-90) > 1e-9 {
		t.Fatalf("mean = %v, want 90", w.Mean())
	}
	if _, err := WeibullFromMean(0, 1); err == nil {
		t.Fatal("bad shape must fail")
	}
}

func TestWeibullSampleMean(t *testing.T) {
	w, _ := NewWeibull(0.6, 100)
	rng := rand.New(rand.NewSource(2))
	sum := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		sum += w.Sample(rng)
	}
	mean := sum / n
	want := w.Mean()
	if math.Abs(mean-want)/want > 0.03 {
		t.Fatalf("sample mean %v, want ~%v", mean, want)
	}
}

func TestFITConversions(t *testing.T) {
	// 100 FIT on one device: 1e7 hours MTBF.
	m := FITToMTBF(100, 1)
	if math.Abs(m-1e7*3600) > 1 {
		t.Fatalf("FITToMTBF = %v", m)
	}
	// Round trip.
	if f := MTBFToFIT(m, 1); math.Abs(f-100) > 1e-9 {
		t.Fatalf("MTBFToFIT = %v", f)
	}
	// Scaling with devices.
	if FITToMTBF(100, 10) != m/10 {
		t.Fatal("MTBF must scale inversely with devices")
	}
	if !math.IsInf(FITToMTBF(0, 5), 1) {
		t.Fatal("zero FIT is infinite MTBF")
	}
	if MTBFToFIT(math.Inf(1), 5) != 0 {
		t.Fatal("infinite MTBF is zero FIT")
	}
}

func TestSocketYearsToMTBF(t *testing.T) {
	// 50 years across 50 sockets: one failure per year.
	m := SocketYearsToMTBF(50, 50)
	if math.Abs(m-365.25*24*3600) > 1 {
		t.Fatalf("MTBF = %v", m)
	}
	if !math.IsInf(SocketYearsToMTBF(0, 5), 1) {
		t.Fatal("zero years is infinite MTBF")
	}
}

func TestRenewalSchedule(t *testing.T) {
	e, _ := NewExponential(10)
	rng := rand.New(rand.NewSource(3))
	s := RenewalSchedule(e, 1000, rng)
	if len(s) < 50 || len(s) > 200 {
		t.Fatalf("expected ~100 failures, got %d", len(s))
	}
	if !sort.Float64sAreSorted(s) {
		t.Fatal("schedule not sorted")
	}
	for _, x := range s {
		if x <= 0 || x > 1000 {
			t.Fatalf("failure time %v outside (0,1000]", x)
		}
	}
	gaps := s.Interarrivals()
	if len(gaps) != len(s) {
		t.Fatal("interarrivals length")
	}
	sum := 0.0
	for _, g := range gaps {
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	if math.Abs(sum-s[len(s)-1]) > 1e-9 {
		t.Fatal("gaps do not sum to last time")
	}
}

func TestPowerLawScheduleDecreasingRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// shape 0.6 over [0, 1800] like the Figure 12 run.
	s := PowerLawSchedule(0.6, 1.0, 1800, rng)
	if len(s) < 10 {
		t.Fatalf("too few failures: %d", len(s))
	}
	if !sort.Float64sAreSorted(s) {
		t.Fatal("not sorted")
	}
	// More failures in the first half than the second (decreasing rate).
	first, second := 0, 0
	for _, x := range s {
		if x < 900 {
			first++
		} else {
			second++
		}
	}
	if first <= second {
		t.Fatalf("power law k<1 should front-load failures: %d vs %d", first, second)
	}
}

func TestFixedCountPowerLawSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := FixedCountPowerLawSchedule(0.6, 19, 1800, rng)
	if len(s) != 19 {
		t.Fatalf("got %d failures, want 19", len(s))
	}
	if !sort.Float64sAreSorted(s) {
		t.Fatal("not sorted")
	}
	for _, x := range s {
		if x < 0 || x > 1800 {
			t.Fatalf("time %v outside [0,1800]", x)
		}
	}
	// Aggregate front-loading check over many draws.
	firstHalf, total := 0, 0
	for trial := 0; trial < 50; trial++ {
		s := FixedCountPowerLawSchedule(0.6, 19, 1800, rng)
		for _, x := range s {
			total++
			if x < 900 {
				firstHalf++
			}
		}
	}
	if frac := float64(firstHalf) / float64(total); frac < 0.55 {
		t.Fatalf("front-loaded fraction = %.2f, want > 0.55", frac)
	}
}

func TestFitExponential(t *testing.T) {
	e, _ := NewExponential(42)
	rng := rand.New(rand.NewSource(6))
	gaps := make([]float64, 50000)
	for i := range gaps {
		gaps[i] = e.Sample(rng)
	}
	fit, err := FitExponential(gaps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.MTBF-42)/42 > 0.03 {
		t.Fatalf("fitted MTBF %v, want ~42", fit.MTBF)
	}
	if _, err := FitExponential(nil); err == nil {
		t.Fatal("empty fit must fail")
	}
	if _, err := FitExponential([]float64{1, -1}); err == nil {
		t.Fatal("negative gap must fail")
	}
}

func TestFitWeibullRecoversParameters(t *testing.T) {
	for _, k := range []float64{0.6, 1.0, 1.8} {
		w, _ := NewWeibull(k, 120)
		rng := rand.New(rand.NewSource(7))
		gaps := make([]float64, 20000)
		for i := range gaps {
			gaps[i] = w.Sample(rng)
		}
		fit, err := FitWeibull(gaps)
		if err != nil {
			t.Fatalf("k=%v: %v", k, err)
		}
		if math.Abs(fit.Shape-k)/k > 0.05 {
			t.Errorf("fitted shape %v, want ~%v", fit.Shape, k)
		}
		if math.Abs(fit.Scale-120)/120 > 0.05 {
			t.Errorf("fitted scale %v, want ~120", fit.Scale)
		}
	}
	if _, err := FitWeibull([]float64{1}); err == nil {
		t.Fatal("single sample must fail")
	}
	if _, err := FitWeibull([]float64{1, 0}); err == nil {
		t.Fatal("zero gap must fail")
	}
}

func TestFitPowerLawRecoversShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shapeSum := 0.0
	const trials = 30
	for i := 0; i < trials; i++ {
		s := PowerLawSchedule(0.6, 1.0, 100000, rng)
		fit, err := FitPowerLaw(s, 100000)
		if err != nil {
			t.Fatal(err)
		}
		shapeSum += fit.Shape
	}
	mean := shapeSum / trials
	if math.Abs(mean-0.6) > 0.08 {
		t.Fatalf("mean fitted shape %v, want ~0.6", mean)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1}, 10); err == nil {
		t.Fatal("one failure must fail")
	}
	if _, err := FitPowerLaw([]float64{1, 2}, 0); err == nil {
		t.Fatal("zero window must fail")
	}
	if _, err := FitPowerLaw([]float64{1, 20}, 10); err == nil {
		t.Fatal("time beyond window must fail")
	}
	if _, err := FitPowerLaw([]float64{10, 10}, 10); err == nil {
		t.Fatal("degenerate times must fail")
	}
}

func TestPowerLawFitCurrentMTBFGrowsForDecreasingRate(t *testing.T) {
	// With k<1 the intensity decreases, so the current MTBF at a later
	// observation time must be larger.
	times := []float64{10, 30, 80, 200, 500}
	early, err := FitPowerLaw(times[:3], 100)
	if err != nil {
		t.Fatal(err)
	}
	late, err := FitPowerLaw(times, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if late.CurrentMTBF() <= early.CurrentMTBF() {
		t.Fatalf("current MTBF should grow: early %v, late %v", early.CurrentMTBF(), late.CurrentMTBF())
	}
}

func TestHistory(t *testing.T) {
	var h History
	if _, ok := h.MeanMTBF(); ok {
		t.Fatal("empty history should not estimate")
	}
	if _, ok := h.CurrentMTBF(10); ok {
		t.Fatal("empty history should not estimate")
	}
	h.Record(10)
	if _, ok := h.MeanMTBF(); ok {
		t.Fatal("single failure should not estimate")
	}
	h.Record(30)
	h.Record(70)
	m, ok := h.MeanMTBF()
	if !ok || math.Abs(m-30) > 1e-9 {
		t.Fatalf("mean MTBF = %v, want 30", m)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	ts := h.Times()
	if len(ts) != 3 || ts[0] != 10 {
		t.Fatalf("times = %v", ts)
	}
	// Out-of-order record clamps.
	h.Record(50)
	if h.Times()[3] != 70 {
		t.Fatal("out-of-order record should clamp to last time")
	}
	// CurrentMTBF returns something positive with a trend fit.
	cm, ok := h.CurrentMTBF(100)
	if !ok || cm <= 0 || math.IsNaN(cm) {
		t.Fatalf("current MTBF = %v, ok=%v", cm, ok)
	}
}

func TestFlipBit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 64)
	orig := make([]byte, 64)
	copy(orig, data)
	i, b := FlipBit(data, rng)
	if i < 0 || b < 0 {
		t.Fatal("flip reported failure on non-empty data")
	}
	diff := 0
	for j := range data {
		if data[j] != orig[j] {
			diff++
			if data[j]^orig[j] != 1<<b || j != i {
				t.Fatalf("unexpected flip at %d", j)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed, want 1", diff)
	}
	if i, b := FlipBit(nil, rng); i != -1 || b != -1 {
		t.Fatal("empty data should be a no-op")
	}
}

func TestFlipFloat64Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := []float64{1, 2, 3, 4}
	orig := append([]float64(nil), data...)
	i, b := FlipFloat64Bit(data, rng)
	if i < 0 || b < 0 {
		t.Fatal("flip failed")
	}
	changed := 0
	for j := range data {
		if math.Float64bits(data[j]) != math.Float64bits(orig[j]) {
			changed++
			if j != i {
				t.Fatal("wrong element changed")
			}
		}
	}
	if changed != 1 {
		t.Fatalf("%d elements changed, want 1", changed)
	}
	if i, _ := FlipFloat64Bit(nil, rng); i != -1 {
		t.Fatal("empty slice should be a no-op")
	}
}

func TestNewPlanMergedSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hard := Schedule{5, 20, 100}
	sdc := Schedule{1, 50}
	p := NewPlan(hard, sdc, 16, rng)
	if len(p) != 5 {
		t.Fatalf("plan length %d, want 5", len(p))
	}
	for i := 1; i < len(p); i++ {
		if p[i].Time < p[i-1].Time {
			t.Fatal("plan not sorted")
		}
	}
	hardCount := 0
	for _, e := range p {
		if e.Replica < 0 || e.Replica > 1 {
			t.Fatal("bad replica")
		}
		if e.Node < 0 || e.Node >= 16 {
			t.Fatal("bad node")
		}
		if e.Kind == Hard {
			hardCount++
		}
	}
	if hardCount != 3 {
		t.Fatalf("hard count %d, want 3", hardCount)
	}
}

func TestKindString(t *testing.T) {
	if Hard.String() != "hard" || SDC.String() != "sdc" || Kind(7).String() == "" {
		t.Fatal("Kind.String broken")
	}
}

// Property: inverse-CDF sampling respects the CDF ordering — P(X <= median)
// is about one half.
func TestWeibullMedianProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, _ := NewWeibull(0.8, 50)
		median := 50 * math.Pow(math.Ln2, 1/0.8)
		below := 0
		const n = 2000
		for i := 0; i < n; i++ {
			if w.Sample(rng) <= median {
				below++
			}
		}
		frac := float64(below) / n
		return frac > 0.45 && frac < 0.55
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestWeibullMTBFEstimator(t *testing.T) {
	var h History
	if _, ok := h.WeibullMTBF(10); ok {
		t.Fatal("empty history should not estimate")
	}
	h.Record(1)
	h.Record(2)
	if _, ok := h.WeibullMTBF(10); ok {
		t.Fatal("two failures should not estimate (one gap)")
	}
	// Over-dispersed gaps (coefficient of variation > 1: 0.1, 1, 30)
	// fit a Weibull with shape < 1, so the estimate must grow with
	// failure-free age.
	h.Record(3)    // gap 1
	h.Record(3.1)  // gap 0.1
	h.Record(33.1) // gap 30
	early, ok := h.WeibullMTBF(34)
	if !ok {
		t.Fatal("estimator should engage with three gaps")
	}
	late, ok := h.WeibullMTBF(200)
	if !ok {
		t.Fatal("estimator lost")
	}
	if late <= early {
		t.Fatalf("sub-exponential gaps: estimate should grow with age (%v -> %v)", early, late)
	}
	if early <= 0 {
		t.Fatalf("nonpositive estimate %v", early)
	}
}

package failure

import (
	"fmt"
	"math/rand"
	"sort"
)

// Correlated failure bursts. Field studies of HPC failure logs show hard
// errors cluster: a power or cooling event takes out several physically
// adjacent nodes within seconds, not one node per MTBF. For ACR the
// nastiest cluster is the buddy pair — the same logical node in both
// replicas — because it destroys both in-memory copies of that node's
// checkpoints and forces the recovery ladder past tier 0. Burst turns a
// plain hard-error schedule into such correlated clusters.

// Burst parameterizes correlated-burst expansion of a hard-error
// schedule. Each schedule time becomes the anchor of one burst: Width
// correlated fail-stop events spread uniformly over the next Window
// seconds, targeted at a physical neighborhood.
type Burst struct {
	// Width is how many nodes each burst kills (>= 1). Width 1 degrades
	// to the classical independent plan.
	Width int
	// Window is the burst's duration in seconds (>= 0): every event of a
	// burst lands in [anchor, anchor+Window]. Zero makes the burst
	// simultaneous.
	Window float64
	// BuddyPairs aims each burst at buddy pairs: the burst picks a
	// random logical node and kills it in replica 0 then replica 1 (then
	// the next adjacent logical node, wrapping, for Width > 2) — the
	// double-fault shape the escalation ladder exists for. When false,
	// the burst sweeps a physical neighborhood instead: a random anchor
	// (replica, node) and its Width-1 following node indices in the same
	// replica, wrapping.
	BuddyPairs bool
}

func (b Burst) validate() error {
	if b.Width < 1 {
		return fmt.Errorf("failure: burst width %d < 1", b.Width)
	}
	if b.Window < 0 || b.Window != b.Window {
		return fmt.Errorf("failure: invalid burst window %v", b.Window)
	}
	return nil
}

// NewBurstPlan expands each anchor time of the hard schedule into one
// correlated burst of b.Width fail-stop events inside [t, t+b.Window],
// and merges the sdc schedule in unchanged (uniform-random targets). The
// result is stably time-ordered and deterministic for a fixed rng seed.
// Invariants (property-tested): exactly len(hard)*b.Width hard events and
// len(sdc) SDC events; every hard event of a burst lies within the
// burst's window; every target is a valid (replica, node).
func NewBurstPlan(hard, sdc Schedule, nodesPerReplica int, b Burst, rng *rand.Rand) (Plan, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	if nodesPerReplica <= 0 {
		return nil, fmt.Errorf("failure: nodesPerReplica %d <= 0", nodesPerReplica)
	}
	p := make(Plan, 0, len(hard)*b.Width+len(sdc))
	for _, t := range hard {
		anchorRep := rng.Intn(2)
		anchorNode := rng.Intn(nodesPerReplica)
		for i := 0; i < b.Width; i++ {
			var rep, node int
			if b.BuddyPairs {
				// i=0,1 hit both replicas of anchorNode; further events
				// walk to the adjacent logical nodes' pairs.
				rep = i % 2
				node = (anchorNode + i/2) % nodesPerReplica
			} else {
				rep = anchorRep
				node = (anchorNode + i) % nodesPerReplica
			}
			dt := 0.0
			if b.Window > 0 {
				dt = rng.Float64() * b.Window
			}
			p = append(p, Event{Time: t + dt, Kind: Hard, Replica: rep, Node: node})
		}
	}
	for _, t := range sdc {
		rep, node := RandomTarget.resolve(nodesPerReplica, rng)
		p = append(p, Event{Time: t, Kind: SDC, Replica: rep, Node: node})
	}
	sort.SliceStable(p, func(i, j int) bool { return p[i].Time < p[j].Time })
	return p, nil
}

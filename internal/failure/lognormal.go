package failure

import (
	"fmt"
	"math"
	"math/rand"
)

// LogNormal is the other distribution Schroeder & Gibson [29] found to fit
// HPC inter-failure times well. Like the sub-exponential Weibull it has a
// (eventually) decreasing hazard, so it is a second stress case for ACR's
// adaptive checkpointing.
type LogNormal struct {
	Mu    float64 // mean of log(X)
	Sigma float64 // stddev of log(X)
}

// NewLogNormal returns a lognormal distribution.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if sigma <= 0 || math.IsNaN(mu) || math.IsNaN(sigma) {
		return LogNormal{}, fmt.Errorf("failure: lognormal needs positive sigma, got mu=%v sigma=%v", mu, sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// LogNormalFromMean returns a lognormal with the given sigma whose mean
// equals mean: mu = ln(mean) - sigma^2/2.
func LogNormalFromMean(mean, sigma float64) (LogNormal, error) {
	if mean <= 0 {
		return LogNormal{}, fmt.Errorf("failure: lognormal needs positive mean")
	}
	return NewLogNormal(math.Log(mean)-sigma*sigma/2, sigma)
}

// Sample draws a lognormal variate.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Hazard returns the instantaneous failure rate f(t)/S(t).
func (l LogNormal) Hazard(t float64) float64 {
	if t <= 0 {
		return 0
	}
	z := (math.Log(t) - l.Mu) / l.Sigma
	pdf := math.Exp(-z*z/2) / (t * l.Sigma * math.Sqrt(2*math.Pi))
	surv := 0.5 * math.Erfc(z/math.Sqrt2)
	if surv <= 0 {
		return math.Inf(1)
	}
	return pdf / surv
}

func (l LogNormal) String() string {
	return fmt.Sprintf("LogNormal(mu=%.3g, sigma=%.3g)", l.Mu, l.Sigma)
}

// FitLogNormal returns the maximum-likelihood lognormal for the observed
// inter-failure times: mu and sigma are the mean and (population) standard
// deviation of the log samples.
func FitLogNormal(gaps []float64) (LogNormal, error) {
	n := len(gaps)
	if n < 2 {
		return LogNormal{}, fmt.Errorf("failure: need >= 2 samples to fit lognormal, got %d", n)
	}
	mu := 0.0
	for _, g := range gaps {
		if g <= 0 {
			return LogNormal{}, fmt.Errorf("failure: non-positive gap %v", g)
		}
		mu += math.Log(g)
	}
	mu /= float64(n)
	varSum := 0.0
	for _, g := range gaps {
		d := math.Log(g) - mu
		varSum += d * d
	}
	sigma := math.Sqrt(varSum / float64(n))
	if sigma == 0 {
		return LogNormal{}, fmt.Errorf("failure: degenerate samples (zero variance)")
	}
	return NewLogNormal(mu, sigma)
}

var _ Distribution = LogNormal{}
var _ Distribution = Exponential{}
var _ Distribution = Weibull{}

package apps

import (
	"math"

	"acr/internal/ampi"
	"acr/internal/pup"
	"acr/internal/runtime"
)

// Jacobi3D performs a 7-point stencil relaxation on a 3D structured mesh,
// the first kernel of §6.1. The message-driven variant decomposes the
// global mesh onto a 3D grid of tasks, each owning a bx*by*bz block and
// exchanging its six faces with neighbours every iteration; the global
// boundary is held at zero.

// faceMsg carries one face of a block.
type faceMsg struct {
	Iter int
	Dir  int // sender's face: 0 -X, 1 +X, 2 -Y, 3 +Y, 4 -Z, 5 +Z
	Vals []float64
}

// Jacobi is the message-driven Jacobi3D task. It write-tracks its state:
// each sweep rewrites all of U plus the iteration counter, so those two
// fields are marked dirty each iteration while the block geometry stays
// clean and splices from the previous checkpoint.
type Jacobi struct {
	pup.WriteSet
	Iter, Iters int
	BX, BY, BZ  int
	U           []float64
}

// JacobiBlock is the default per-task block edge for live runs.
const JacobiBlock = 8

// JacobiFactory builds message-driven Jacobi3D tasks with an 8^3 block.
func JacobiFactory(iters int) runtime.Factory {
	return JacobiFactorySized(iters, JacobiBlock, JacobiBlock, JacobiBlock)
}

// JacobiFactorySized builds message-driven Jacobi3D tasks with an arbitrary
// per-task block (the paper's configuration is 64x64x128 per core).
func JacobiFactorySized(iters, bx, by, bz int) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program {
		return &Jacobi{Iters: iters, BX: bx, BY: by, BZ: bz}
	}
}

// Pup implements pup.Pupable.
func (j *Jacobi) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&j.Iter)
	p.Label("iters")
	p.Int(&j.Iters)
	p.Label("bx")
	p.Int(&j.BX)
	p.Label("by")
	p.Int(&j.BY)
	p.Label("bz")
	p.Int(&j.BZ)
	p.Label("u")
	p.Float64s(&j.U)
}

func (j *Jacobi) idx(i, k, l int) int { return (l*j.BY+k)*j.BX + i }

// jacobiInit gives every cell a deterministic initial value derived from
// its global position.
func jacobiInit(g, local int) float64 {
	return math.Sin(float64(g)*1.3+float64(local)*0.17) + 2
}

// Norm returns the L1 norm of the block (a cheap integrity probe for
// tests).
func (j *Jacobi) Norm() float64 {
	s := 0.0
	for _, v := range j.U {
		s += math.Abs(v)
	}
	return s
}

// faceVals extracts the face of U in direction dir.
func (j *Jacobi) faceVals(dir int) []float64 {
	var out []float64
	switch dir {
	case 0, 1: // X faces: by*bz values
		i := 0
		if dir == 1 {
			i = j.BX - 1
		}
		out = make([]float64, 0, j.BY*j.BZ)
		for l := 0; l < j.BZ; l++ {
			for k := 0; k < j.BY; k++ {
				out = append(out, j.U[j.idx(i, k, l)])
			}
		}
	case 2, 3: // Y faces: bx*bz values
		k := 0
		if dir == 3 {
			k = j.BY - 1
		}
		out = make([]float64, 0, j.BX*j.BZ)
		for l := 0; l < j.BZ; l++ {
			for i := 0; i < j.BX; i++ {
				out = append(out, j.U[j.idx(i, k, l)])
			}
		}
	case 4, 5: // Z faces: bx*by values
		l := 0
		if dir == 5 {
			l = j.BZ - 1
		}
		out = make([]float64, 0, j.BX*j.BY)
		for k := 0; k < j.BY; k++ {
			for i := 0; i < j.BX; i++ {
				out = append(out, j.U[j.idx(i, k, l)])
			}
		}
	}
	return out
}

// Run implements runtime.Program.
func (j *Jacobi) Run(ctx *runtime.Ctx) error {
	px, py, pz := grid3(ctx.NumTasks())
	g := ctx.GlobalTask()
	gx := g % px
	gy := (g / px) % py
	gz := g / (px * py)
	if j.U == nil {
		j.U = make([]float64, j.BX*j.BY*j.BZ)
		for c := range j.U {
			j.U[c] = jacobiInit(g, c)
		}
	}
	// The pup layout is fixed from here on (U never resizes), so the
	// field spans computed once stay valid for every mark below.
	spans := pup.FieldSpans(j)
	// neighbour[dir] is the global task index across my face dir, or -1.
	neighbour := [6]int{-1, -1, -1, -1, -1, -1}
	if gx > 0 {
		neighbour[0] = g - 1
	}
	if gx < px-1 {
		neighbour[1] = g + 1
	}
	if gy > 0 {
		neighbour[2] = g - px
	}
	if gy < py-1 {
		neighbour[3] = g + px
	}
	if gz > 0 {
		neighbour[4] = g - px*py
	}
	if gz < pz-1 {
		neighbour[5] = g + px*py
	}
	opposite := [6]int{1, 0, 3, 2, 5, 4}

	var pending []runtime.Message
	halos := [6][]float64{}
	recvHalos := func(iter int) error {
		need := 0
		got := [6]bool{}
		for d := 0; d < 6; d++ {
			if neighbour[d] >= 0 {
				need++
			} else {
				got[d] = true
			}
		}
		take := func(m runtime.Message) bool {
			f := m.Data.(faceMsg)
			if f.Iter != iter {
				return false
			}
			for d := 0; d < 6; d++ {
				// My halo d arrives from neighbour[d], which sent its
				// opposite face.
				if !got[d] && neighbour[d] >= 0 && m.From == ctx.AddrOfGlobal(neighbour[d]) && f.Dir == opposite[d] {
					halos[d] = f.Vals
					got[d] = true
					need--
					return true
				}
			}
			return false
		}
		for i := 0; i < len(pending); {
			if take(pending[i]) {
				pending = append(pending[:i], pending[i+1:]...)
			} else {
				i++
			}
		}
		for need > 0 {
			m, err := ctx.Recv()
			if err != nil {
				return err
			}
			if !take(m) {
				pending = append(pending, m)
			}
		}
		return nil
	}

	for j.Iter < j.Iters {
		it := j.Iter
		for d := 0; d < 6; d++ {
			if neighbour[d] < 0 {
				continue
			}
			msg := faceMsg{Iter: it, Dir: d, Vals: j.faceVals(d)}
			if err := ctx.Send(ctx.AddrOfGlobal(neighbour[d]), 0, msg); err != nil {
				return err
			}
		}
		if err := recvHalos(it); err != nil {
			return err
		}
		j.relax(halos)
		j.Iter++
		j.MarkSpan(spans["u"])
		j.MarkSpan(spans["iter"])
		if err := ctx.Progress(j.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

// relax performs one 7-point sweep using the received halos (nil or empty
// halo faces act as zero boundaries).
func (j *Jacobi) relax(halos [6][]float64) {
	next := make([]float64, len(j.U))
	at := func(h []float64, i int) float64 {
		if h == nil {
			return 0
		}
		return h[i]
	}
	for l := 0; l < j.BZ; l++ {
		for k := 0; k < j.BY; k++ {
			for i := 0; i < j.BX; i++ {
				var xm, xp, ym, yp, zm, zp float64
				if i > 0 {
					xm = j.U[j.idx(i-1, k, l)]
				} else {
					xm = at(halos[0], l*j.BY+k)
				}
				if i < j.BX-1 {
					xp = j.U[j.idx(i+1, k, l)]
				} else {
					xp = at(halos[1], l*j.BY+k)
				}
				if k > 0 {
					ym = j.U[j.idx(i, k-1, l)]
				} else {
					ym = at(halos[2], l*j.BX+i)
				}
				if k < j.BY-1 {
					yp = j.U[j.idx(i, k+1, l)]
				} else {
					yp = at(halos[3], l*j.BX+i)
				}
				if l > 0 {
					zm = j.U[j.idx(i, k, l-1)]
				} else {
					zm = at(halos[4], k*j.BX+i)
				}
				if l < j.BZ-1 {
					zp = j.U[j.idx(i, k, l+1)]
				} else {
					zp = at(halos[5], k*j.BX+i)
				}
				c := j.U[j.idx(i, k, l)]
				next[j.idx(i, k, l)] = (c + xm + xp + ym + yp + zm + zp) / 7
			}
		}
	}
	j.U = next
}

// JacobiAMPI is the MPI-style Jacobi3D: a 1D slab decomposition along Z
// with blocking SendRecv halo exchange plus a per-iteration residual
// Allreduce, run through the AMPI layer (§6.1 runs the MPI codes on AMPI).
// Write-tracked the same way as Jacobi: U, the iteration counter, and the
// residual are dirtied every sweep; the slab geometry stays clean.
type JacobiAMPI struct {
	pup.WriteSet
	Iter, Iters int
	BX, BY, BZ  int
	U           []float64
	Residual    float64
}

// JacobiAMPIFactory builds AMPI Jacobi3D tasks with an 8^3 slab.
func JacobiAMPIFactory(iters int) runtime.Factory {
	return JacobiAMPIFactorySized(iters, JacobiBlock, JacobiBlock, JacobiBlock)
}

// JacobiAMPIFactorySized builds AMPI Jacobi3D tasks with an arbitrary slab.
func JacobiAMPIFactorySized(iters, bx, by, bz int) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program {
		return &JacobiAMPI{Iters: iters, BX: bx, BY: by, BZ: bz}
	}
}

// Pup implements pup.Pupable.
func (j *JacobiAMPI) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&j.Iter)
	p.Label("iters")
	p.Int(&j.Iters)
	p.Label("bx")
	p.Int(&j.BX)
	p.Label("by")
	p.Int(&j.BY)
	p.Label("bz")
	p.Int(&j.BZ)
	p.Label("u")
	p.Float64s(&j.U)
	p.Label("residual")
	p.Float64(&j.Residual)
}

func (j *JacobiAMPI) idx(i, k, l int) int { return (l*j.BY+k)*j.BX + i }

// Norm returns the L1 norm of the slab.
func (j *JacobiAMPI) Norm() float64 {
	s := 0.0
	for _, v := range j.U {
		s += math.Abs(v)
	}
	return s
}

// Run implements runtime.Program.
func (j *JacobiAMPI) Run(ctx *runtime.Ctx) error {
	r := ampi.New(ctx)
	rank, size := r.Rank(), r.Size()
	if j.U == nil {
		j.U = make([]float64, j.BX*j.BY*j.BZ)
		for c := range j.U {
			j.U[c] = jacobiInit(rank, c)
		}
	}
	spans := pup.FieldSpans(j)
	plane := j.BX * j.BY
	const tagDown, tagUp = 1, 2
	for j.Iter < j.Iters {
		// Halo exchange along Z: send the bottom plane down / top plane
		// up, receive the matching halos. Boundary ranks skip.
		var below, above []float64
		bottom := make([]float64, plane)
		copy(bottom, j.U[:plane])
		top := make([]float64, plane)
		copy(top, j.U[len(j.U)-plane:])
		if rank > 0 {
			if err := r.Send(rank-1, tagDown, bottom); err != nil {
				return err
			}
		}
		if rank < size-1 {
			if err := r.Send(rank+1, tagUp, top); err != nil {
				return err
			}
		}
		if rank > 0 {
			d, _, err := r.Recv(rank-1, tagUp)
			if err != nil {
				return err
			}
			below = d.([]float64)
		}
		if rank < size-1 {
			d, _, err := r.Recv(rank+1, tagDown)
			if err != nil {
				return err
			}
			above = d.([]float64)
		}
		local := j.sweep(below, above)
		res, err := r.Allreduce(ampi.Sum, local)
		if err != nil {
			return err
		}
		j.Residual = res
		j.Iter++
		j.MarkSpan(spans["u"])
		j.MarkSpan(spans["iter"])
		j.MarkSpan(spans["residual"])
		if err := r.Progress(j.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

// sweep relaxes the slab and returns the local squared-update residual.
func (j *JacobiAMPI) sweep(below, above []float64) float64 {
	next := make([]float64, len(j.U))
	res := 0.0
	at := func(h []float64, i int) float64 {
		if h == nil {
			return 0
		}
		return h[i]
	}
	for l := 0; l < j.BZ; l++ {
		for k := 0; k < j.BY; k++ {
			for i := 0; i < j.BX; i++ {
				var xm, xp, ym, yp, zm, zp float64
				if i > 0 {
					xm = j.U[j.idx(i-1, k, l)]
				}
				if i < j.BX-1 {
					xp = j.U[j.idx(i+1, k, l)]
				}
				if k > 0 {
					ym = j.U[j.idx(i, k-1, l)]
				}
				if k < j.BY-1 {
					yp = j.U[j.idx(i, k+1, l)]
				}
				if l > 0 {
					zm = j.U[j.idx(i, k, l-1)]
				} else {
					zm = at(below, k*j.BX+i)
				}
				if l < j.BZ-1 {
					zp = j.U[j.idx(i, k, l+1)]
				} else {
					zp = at(above, k*j.BX+i)
				}
				c := j.U[j.idx(i, k, l)]
				v := (c + xm + xp + ym + yp + zm + zp) / 7
				next[j.idx(i, k, l)] = v
				res += (v - c) * (v - c)
			}
		}
	}
	j.U = next
	return res
}

package apps

import (
	"math"

	"acr/internal/pup"
	"acr/internal/runtime"
)

// Lulesh is a Lagrangian explicit shock-hydrodynamics proxy standing in for
// LULESH (§6.1). It solves a 1D Sod shock tube on a staggered Lagrangian
// mesh: element-centred energy/mass/pressure, node-centred position and
// velocity, and the two-stage element->node->element update pattern that
// gives LULESH its layered data structures (the paper notes LULESH's
// serialization is the most expensive of the mini-apps for this reason).
// DESIGN.md records the substitution: the 3D unstructured hexahedral mesh
// becomes a 1D staggered mesh with identical communication structure
// (element pressures one way, nodal kinematics the other) and the same
// staged update and checkpoint shape (many distinct fields).
//
// Each task owns E elements and the E nodes on their left; the global
// right wall is owned by the last task. Boundary conditions are rigid
// walls (v = 0).
type Lulesh struct {
	Iter, Iters int
	E           int // elements per task
	Dt          float64
	Gamma       float64
	// Node-centred (E+1 entries: E owned + right ghost; the global last
	// task owns its right wall node).
	Pos, Vel, NodeMass []float64
	// Element-centred (E entries).
	Energy, Mass []float64
	Init         bool
}

// LuleshElems is the default per-task element count for live runs.
const LuleshElems = 16

// LuleshFactory builds shock-hydro tasks with 16 elements each.
func LuleshFactory(iters int) runtime.Factory {
	return LuleshFactorySized(iters, LuleshElems)
}

// LuleshFactorySized builds shock-hydro tasks with an arbitrary element
// count per task.
func LuleshFactorySized(iters, elems int) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program {
		return &Lulesh{Iters: iters, E: elems, Dt: 1e-3, Gamma: 1.4}
	}
}

// Pup implements pup.Pupable.
func (l *Lulesh) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&l.Iter)
	p.Label("iters")
	p.Int(&l.Iters)
	p.Label("e")
	p.Int(&l.E)
	p.Label("dt")
	p.Float64(&l.Dt)
	p.Label("gamma")
	p.Float64(&l.Gamma)
	p.Label("pos")
	p.Float64s(&l.Pos)
	p.Label("vel")
	p.Float64s(&l.Vel)
	p.Label("nodemass")
	p.Float64s(&l.NodeMass)
	p.Label("energy")
	p.Float64s(&l.Energy)
	p.Label("mass")
	p.Float64s(&l.Mass)
	p.Label("init")
	p.Bool(&l.Init)
}

// hydroMsg carries the per-iteration halo data between neighbouring tasks.
type hydroMsg struct {
	Iter  int
	Phase int // 0: pressure (rightward), 1: node kinematics (leftward)
	A, B  float64
}

func (l *Lulesh) setup(g, n int) {
	total := n * l.E
	l.Pos = make([]float64, l.E+1)
	l.Vel = make([]float64, l.E+1)
	l.NodeMass = make([]float64, l.E+1)
	l.Energy = make([]float64, l.E)
	l.Mass = make([]float64, l.E)
	dx := 1.0 / float64(total)
	for i := 0; i <= l.E; i++ {
		l.Pos[i] = float64(g*l.E+i) * dx
	}
	for e := 0; e < l.E; e++ {
		ge := g*l.E + e
		// Sod tube: density 1 everywhere, high energy on the left half.
		l.Mass[e] = dx
		if ge < total/2 {
			l.Energy[e] = 2.5 * dx // p = 1.0 at gamma = 1.4
		} else {
			l.Energy[e] = 0.25 * dx // p = 0.1
		}
	}
	for i := 0; i <= l.E; i++ {
		l.NodeMass[i] = dx
	}
	l.Init = true
}

// pressure returns element e's pressure from the ideal-gas EOS.
func (l *Lulesh) pressure(e int) float64 {
	vol := l.Pos[e+1] - l.Pos[e]
	if vol <= 0 {
		vol = 1e-12
	}
	rho := l.Mass[e] / vol
	return (l.Gamma - 1) * rho * (l.Energy[e] / l.Mass[e])
}

// Run implements runtime.Program.
func (l *Lulesh) Run(ctx *runtime.Ctx) error {
	g := ctx.GlobalTask()
	n := ctx.NumTasks()
	if !l.Init {
		l.setup(g, n)
	}
	var pending []runtime.Message
	recvPhase := func(iter, phase, fromTask int) (hydroMsg, error) {
		match := func(m runtime.Message) (hydroMsg, bool) {
			h, ok := m.Data.(hydroMsg)
			if !ok || h.Iter != iter || h.Phase != phase || m.From != ctx.AddrOfGlobal(fromTask) {
				return hydroMsg{}, false
			}
			return h, true
		}
		for i, m := range pending {
			if h, ok := match(m); ok {
				pending = append(pending[:i], pending[i+1:]...)
				return h, nil
			}
		}
		for {
			m, err := ctx.Recv()
			if err != nil {
				return hydroMsg{}, err
			}
			if h, ok := match(m); ok {
				return h, nil
			}
			pending = append(pending, m)
		}
	}

	for l.Iter < l.Iters {
		it := l.Iter
		// Stage 1: element pressures; ship my last element's pressure to
		// the right neighbour (it needs it for its node 0 force).
		p := make([]float64, l.E)
		for e := 0; e < l.E; e++ {
			p[e] = l.pressure(e)
		}
		if g < n-1 {
			if err := ctx.Send(ctx.AddrOfGlobal(g+1), 0, hydroMsg{Iter: it, Phase: 0, A: p[l.E-1]}); err != nil {
				return err
			}
		}
		leftP := 0.0
		haveLeft := g > 0
		if haveLeft {
			h, err := recvPhase(it, 0, g-1)
			if err != nil {
				return err
			}
			leftP = h.A
		}
		// Stage 2: nodal forces and kinematics for owned nodes 0..E-1.
		// f_i = p_left(i) - p_right(i).
		for i := 0; i < l.E; i++ {
			var pl, pr float64
			if i == 0 {
				if haveLeft {
					pl = leftP
				} else {
					pl = p[0] // rigid wall: mirror pressure, v stays 0
				}
			} else {
				pl = p[i-1]
			}
			pr = p[i]
			acc := (pl - pr) / l.NodeMass[i]
			l.Vel[i] += l.Dt * acc
		}
		if g == 0 {
			l.Vel[0] = 0 // left wall
		}
		if g == n-1 {
			l.Vel[l.E] = 0 // right wall is owned by the last task
		}
		// Stage 3: exchange updated node-0 kinematics leftward so the
		// left neighbour can move its right ghost node.
		if g > 0 {
			if err := ctx.Send(ctx.AddrOfGlobal(g-1), 0, hydroMsg{Iter: it, Phase: 1, A: l.Vel[0], B: l.Pos[0]}); err != nil {
				return err
			}
		}
		if g < n-1 {
			h, err := recvPhase(it, 1, g+1)
			if err != nil {
				return err
			}
			l.Vel[l.E] = h.A
			l.Pos[l.E] = h.B
		}
		// Stage 4: move owned nodes, then the ghost moves identically on
		// its owner; positions advance with the updated velocities.
		limit := l.E
		if g == n-1 {
			limit = l.E + 1
		}
		for i := 0; i < limit; i++ {
			l.Pos[i] += l.Dt * l.Vel[i]
		}
		if g < n-1 {
			l.Pos[l.E] += l.Dt * l.Vel[l.E]
		}
		// Stage 5: element energy update (pdV work).
		for e := 0; e < l.E; e++ {
			dv := l.Vel[e+1] - l.Vel[e]
			l.Energy[e] -= l.Dt * p[e] * dv
		}
		l.Iter++
		if err := ctx.Progress(l.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

// TotalEnergy returns the task's internal plus kinetic energy (nodes
// 0..E-1; the global last task adds its wall node).
func (l *Lulesh) TotalEnergy(lastTask bool) float64 {
	e := 0.0
	for i := range l.Energy {
		e += l.Energy[i]
	}
	limit := l.E
	if lastTask {
		limit = l.E + 1
	}
	for i := 0; i < limit; i++ {
		e += 0.5 * l.NodeMass[i] * l.Vel[i] * l.Vel[i]
	}
	return e
}

// MaxVel returns the task's maximum absolute nodal velocity.
func (l *Lulesh) MaxVel() float64 {
	m := 0.0
	for _, v := range l.Vel {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

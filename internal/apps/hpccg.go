package apps

import (
	"math"

	"acr/internal/ampi"
	"acr/internal/pup"
	"acr/internal/runtime"
)

// HPCCG ports the Mantevo conjugate-gradient mini-app (§6.1): CG on the
// 27-point operator HPCCG generates (diagonal 27, off-diagonals -1), with
// the right-hand side chosen so the exact solution is all-ones — which
// gives recovery tests a ground truth. The global nx*ny*(nz*P) domain is
// decomposed into Z slabs across the P ranks, exactly like the original;
// the sparse matvec exchanges one X-Y plane of the search vector with each
// Z neighbour, and the dot products are Allreduce operations.
// Write-tracked: each CG iteration rewrites x, r, p, rtrans, and the
// iteration counter; the slab geometry and Init flag stay clean and
// splice from the previous checkpoint.
type HPCCG struct {
	pup.WriteSet
	Iter, Iters int
	NX, NY, NZ  int // local slab dimensions
	X, R, P     []float64
	RTrans      float64
	Init        bool
}

// HPCCGBlock is the default per-task slab edge for live runs.
const HPCCGBlock = 6

// HPCCGFactory builds HPCCG tasks with a 6^3 local slab.
func HPCCGFactory(iters int) runtime.Factory {
	return HPCCGFactorySized(iters, HPCCGBlock, HPCCGBlock, HPCCGBlock)
}

// HPCCGFactorySized builds HPCCG tasks with an arbitrary local slab (the
// paper's configuration is 40^3 rows per core).
func HPCCGFactorySized(iters, nx, ny, nz int) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program {
		return &HPCCG{Iters: iters, NX: nx, NY: ny, NZ: nz}
	}
}

// Pup implements pup.Pupable.
func (h *HPCCG) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&h.Iter)
	p.Label("iters")
	p.Int(&h.Iters)
	p.Label("nx")
	p.Int(&h.NX)
	p.Label("ny")
	p.Int(&h.NY)
	p.Label("nz")
	p.Int(&h.NZ)
	p.Label("x")
	p.Float64s(&h.X)
	p.Label("r")
	p.Float64s(&h.R)
	p.Label("p")
	p.Float64s(&h.P)
	p.Label("rtrans")
	p.Float64(&h.RTrans)
	p.Label("init")
	p.Bool(&h.Init)
}

func (h *HPCCG) n() int              { return h.NX * h.NY * h.NZ }
func (h *HPCCG) idx(i, j, k int) int { return (k*h.NY+j)*h.NX + i }
func (h *HPCCG) plane() int          { return h.NX * h.NY }

// rowNeighbors counts the in-bounds stencil neighbours of a global cell.
func rowNeighbors(i, j, gk, nx, ny, gnz int) int {
	c := 0
	for dk := -1; dk <= 1; dk++ {
		for dj := -1; dj <= 1; dj++ {
			for di := -1; di <= 1; di++ {
				if di == 0 && dj == 0 && dk == 0 {
					continue
				}
				if i+di >= 0 && i+di < nx && j+dj >= 0 && j+dj < ny && gk+dk >= 0 && gk+dk < gnz {
					c++
				}
			}
		}
	}
	return c
}

// matvec computes y = A*v on the local slab, using halo planes from the
// Z neighbours (nil when at a global boundary). A has 27 on the diagonal
// and -1 on every in-bounds stencil neighbour.
func (h *HPCCG) matvec(v, below, above []float64) []float64 {
	y := make([]float64, h.n())
	at := func(i, j, k int) float64 {
		if i < 0 || i >= h.NX || j < 0 || j >= h.NY {
			return 0
		}
		switch {
		case k < 0:
			if below == nil {
				return 0
			}
			return below[j*h.NX+i]
		case k >= h.NZ:
			if above == nil {
				return 0
			}
			return above[j*h.NX+i]
		default:
			return v[h.idx(i, j, k)]
		}
	}
	for k := 0; k < h.NZ; k++ {
		for j := 0; j < h.NY; j++ {
			for i := 0; i < h.NX; i++ {
				sum := 27 * v[h.idx(i, j, k)]
				for dk := -1; dk <= 1; dk++ {
					for dj := -1; dj <= 1; dj++ {
						for di := -1; di <= 1; di++ {
							if di == 0 && dj == 0 && dk == 0 {
								continue
							}
							sum -= at(i+di, j+dj, k+dk)
						}
					}
				}
				y[h.idx(i, j, k)] = sum
			}
		}
	}
	return y
}

// exchange swaps boundary planes of v with the Z neighbours.
func (h *HPCCG) exchange(r *ampi.Rank, v []float64) (below, above []float64, err error) {
	rank, size := r.Rank(), r.Size()
	pl := h.plane()
	const tagDown, tagUp = 3, 4
	if rank > 0 {
		bottom := make([]float64, pl)
		copy(bottom, v[:pl])
		if err := r.Send(rank-1, tagDown, bottom); err != nil {
			return nil, nil, err
		}
	}
	if rank < size-1 {
		top := make([]float64, pl)
		copy(top, v[len(v)-pl:])
		if err := r.Send(rank+1, tagUp, top); err != nil {
			return nil, nil, err
		}
	}
	if rank > 0 {
		d, _, err := r.Recv(rank-1, tagUp)
		if err != nil {
			return nil, nil, err
		}
		below = d.([]float64)
	}
	if rank < size-1 {
		d, _, err := r.Recv(rank+1, tagDown)
		if err != nil {
			return nil, nil, err
		}
		above = d.([]float64)
	}
	return below, above, nil
}

// Run implements runtime.Program: Iters CG iterations.
func (h *HPCCG) Run(ctx *runtime.Ctx) error {
	r := ampi.New(ctx)
	rank, size := r.Rank(), r.Size()
	gnz := h.NZ * size
	if !h.Init {
		// b chosen so that A*ones = b: b_i = 27 - neighbours(i).
		h.X = make([]float64, h.n())
		h.R = make([]float64, h.n()) // r = b - A*0 = b
		for k := 0; k < h.NZ; k++ {
			gk := rank*h.NZ + k
			for j := 0; j < h.NY; j++ {
				for i := 0; i < h.NX; i++ {
					h.R[h.idx(i, j, k)] = 27 - float64(rowNeighbors(i, j, gk, h.NX, h.NY, gnz))
				}
			}
		}
		h.P = append([]float64(nil), h.R...)
		local := 0.0
		for _, v := range h.R {
			local += v * v
		}
		rt, err := r.Allreduce(ampi.Sum, local)
		if err != nil {
			return err
		}
		h.RTrans = rt
		h.Init = true
	}
	// Layout is fixed once the vectors exist; spans stay valid below.
	spans := pup.FieldSpans(h)
	for h.Iter < h.Iters {
		below, above, err := h.exchange(r, h.P)
		if err != nil {
			return err
		}
		ap := h.matvec(h.P, below, above)
		localPAp := 0.0
		for i := range ap {
			localPAp += h.P[i] * ap[i]
		}
		pAp, err := r.Allreduce(ampi.Sum, localPAp)
		if err != nil {
			return err
		}
		alpha := h.RTrans / pAp
		localRT := 0.0
		for i := range h.X {
			h.X[i] += alpha * h.P[i]
			h.R[i] -= alpha * ap[i]
			localRT += h.R[i] * h.R[i]
		}
		newRT, err := r.Allreduce(ampi.Sum, localRT)
		if err != nil {
			return err
		}
		beta := newRT / h.RTrans
		h.RTrans = newRT
		for i := range h.P {
			h.P[i] = h.R[i] + beta*h.P[i]
		}
		h.Iter++
		h.MarkSpan(spans["x"])
		h.MarkSpan(spans["r"])
		h.MarkSpan(spans["p"])
		h.MarkSpan(spans["rtrans"])
		h.MarkSpan(spans["iter"])
		if err := r.Progress(h.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

// SolutionError returns the max-norm distance of the local solution from
// the exact all-ones answer.
func (h *HPCCG) SolutionError() float64 {
	worst := 0.0
	for _, v := range h.X {
		if d := math.Abs(v - 1); d > worst {
			worst = d
		}
	}
	return worst
}

// ResidualNorm returns sqrt(RTrans), the global residual 2-norm after the
// last completed iteration.
func (h *HPCCG) ResidualNorm() float64 { return math.Sqrt(h.RTrans) }

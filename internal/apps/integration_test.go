package apps

import (
	"bytes"
	"testing"
	"time"

	"acr/internal/core"
	"acr/internal/runtime"
)

// acrRun executes an app under full ACR protection, optionally injecting
// failures, and returns the final packed states of replica 0 plus the run
// stats.
func acrRun(t *testing.T, factory runtime.Factory, scheme core.Scheme, perturb func(*core.Controller)) ([][]byte, core.Stats) {
	t.Helper()
	const nodes, tasks = 2, 2
	cfg := core.Config{
		NodesPerReplica:    nodes,
		TasksPerNode:       tasks,
		Spares:             2,
		Factory:            factory,
		Scheme:             scheme,
		Comparison:         core.FullCompare,
		CheckpointInterval: 5 * time.Millisecond,
		HeartbeatInterval:  time.Millisecond,
		HeartbeatTimeout:   8 * time.Millisecond,
	}
	ctrl, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if perturb != nil {
		perturb(ctrl)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for n := 0; n < nodes; n++ {
		for tk := 0; tk < tasks; tk++ {
			data, err := ctrl.Machine().PackTask(runtime.Addr{Replica: 0, Node: n, Task: tk})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, data)
		}
	}
	return out, stats
}

// TestAllAppsSurviveFailures is the paper's end-to-end claim in miniature:
// for every mini-app, a run that suffers a hard error AND a silent data
// corruption finishes with exactly the state of a failure-free run.
func TestAllAppsSurviveFailures(t *testing.T) {
	schemes := []core.Scheme{core.Strong, core.Medium, core.Weak}
	for i, spec := range Table2() {
		spec := spec
		scheme := schemes[i%len(schemes)] // rotate schemes across apps
		t.Run(spec.Name+"/"+scheme.String(), func(t *testing.T) {
			t.Parallel()
			const iters = 1200
			clean, cleanStats := acrRun(t, spec.Factory(iters), scheme, nil)
			if cleanStats.HardErrors != 0 {
				t.Fatal("clean run saw failures")
			}
			faulty, stats := acrRun(t, spec.Factory(iters), scheme, func(ctrl *core.Controller) {
				ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 1, Node: 0, Task: 1})
				go func() {
					time.Sleep(15 * time.Millisecond)
					ctrl.KillNode(0, 1)
				}()
			})
			if stats.SDCDetected == 0 {
				t.Error("injected SDC was not detected")
			}
			if stats.HardErrors == 0 {
				t.Error("hard error was not handled")
			}
			if stats.SparesUsed == 0 {
				t.Error("spare node was not consumed")
			}
			for j := range clean {
				if !bytes.Equal(clean[j], faulty[j]) {
					t.Fatalf("task %d final state differs from failure-free run", j)
				}
			}
		})
	}
}

// TestAppsUnderChecksumDetection repeats the SDC round trip with the
// Fletcher-checksum comparison method for one contiguous and one scattered
// app.
func TestAppsUnderChecksumDetection(t *testing.T) {
	for _, name := range []string{"Jacobi3D AMPI", "LeanMD"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := SpecByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Config{
				NodesPerReplica:    2,
				TasksPerNode:       2,
				Spares:             1,
				Factory:            spec.Factory(1000),
				Scheme:             core.Strong,
				Comparison:         core.ChecksumCompare,
				CheckpointInterval: 5 * time.Millisecond,
				HeartbeatInterval:  time.Millisecond,
				HeartbeatTimeout:   8 * time.Millisecond,
			}
			ctrl, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 0, Node: 1, Task: 0})
			stats, err := ctrl.Run()
			if err != nil {
				t.Fatal(err)
			}
			if stats.SDCDetected == 0 {
				t.Fatal("checksum comparison missed the injected corruption")
			}
		})
	}
}

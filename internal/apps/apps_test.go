package apps

import (
	"bytes"
	"testing"

	"acr/internal/pup"
	"acr/internal/runtime"
)

func TestGrid3(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 27, 64, 100} {
		px, py, pz := grid3(n)
		if px*py*pz != n {
			t.Fatalf("grid3(%d) = %d*%d*%d != %d", n, px, py, pz, n)
		}
		if px > py || py > pz {
			t.Fatalf("grid3(%d) = %d,%d,%d not ordered", n, px, py, pz)
		}
	}
	if px, py, pz := grid3(8); px != 2 || py != 2 || pz != 2 {
		t.Fatalf("grid3(8) = %d,%d,%d, want 2,2,2", px, py, pz)
	}
	if px, py, pz := grid3(27); px != 3 || py != 3 || pz != 3 {
		t.Fatalf("grid3(27) = %d,%d,%d, want 3,3,3", px, py, pz)
	}
}

func TestGrid2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 9, 12, 16} {
		px, py := grid2(n)
		if px*py != n || px > py {
			t.Fatalf("grid2(%d) = %d*%d", n, px, py)
		}
	}
	if px, py := grid2(16); px != 4 || py != 4 {
		t.Fatalf("grid2(16) = %d,%d", px, py)
	}
}

func TestTable2Catalog(t *testing.T) {
	specs := Table2()
	if len(specs) != 6 {
		t.Fatalf("Table2 has %d entries, want 6", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.Config == "" || s.Factory == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		if s.CheckpointBytesPerCore <= 0 {
			t.Fatalf("%s: nonpositive checkpoint bytes", s.Name)
		}
		if names[s.Name] {
			t.Fatalf("duplicate spec %s", s.Name)
		}
		names[s.Name] = true
		// Table 2: the MD apps are low-pressure/scattered, the rest high.
		if s.Scattered == s.HighMemoryPressure == true {
			t.Fatalf("%s: scattered and high pressure are mutually exclusive here", s.Name)
		}
	}
	// Memory-pressure split matches Table 2.
	for _, hi := range []string{"Jacobi3D Charm++", "Jacobi3D AMPI", "HPCCG", "LULESH"} {
		s, err := SpecByName(hi)
		if err != nil {
			t.Fatal(err)
		}
		if !s.HighMemoryPressure || s.Scattered {
			t.Errorf("%s should be high-pressure contiguous", hi)
		}
	}
	for _, lo := range []string{"LeanMD", "miniMD"} {
		s, err := SpecByName(lo)
		if err != nil {
			t.Fatal(err)
		}
		if s.HighMemoryPressure || !s.Scattered {
			t.Errorf("%s should be low-pressure scattered", lo)
		}
	}
	// MD checkpoints are orders of magnitude smaller than the stencil
	// codes (the Figure 8c/8f scale difference).
	j, _ := SpecByName("Jacobi3D Charm++")
	l, _ := SpecByName("LeanMD")
	if l.CheckpointBytesPerCore*10 > j.CheckpointBytesPerCore {
		t.Error("LeanMD checkpoint should be far smaller than Jacobi3D's")
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestModelString(t *testing.T) {
	if MessageDriven.String() != "charm" || AMPI.String() != "ampi" || Model(9).String() == "" {
		t.Fatal("Model.String broken")
	}
}

// runClean executes an app on a plain machine (no ACR) and returns the
// final packed states of replica 0's tasks.
func runClean(t *testing.T, factory runtime.Factory, nodes, tasks int) [][]byte {
	t.Helper()
	m, err := runtime.NewMachine(runtime.Config{
		NodesPerReplica: nodes,
		TasksPerNode:    tasks,
		Factory:         factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for n := 0; n < nodes; n++ {
		for tk := 0; tk < tasks; tk++ {
			// Cross-check replicas while we are here.
			d0, err := m.PackTask(runtime.Addr{Replica: 0, Node: n, Task: tk})
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.CheckTask(runtime.Addr{Replica: 1, Node: n, Task: tk}, d0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Match {
				t.Fatalf("replica divergence at n%d/t%d: %v", n, tk, res.Mismatches)
			}
			out = append(out, d0)
		}
	}
	return out
}

func TestAppsDeterministicAcrossRuns(t *testing.T) {
	for _, spec := range Table2() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			a := runClean(t, spec.Factory(12), 2, 2)
			b := runClean(t, spec.Factory(12), 2, 2)
			for i := range a {
				if !bytes.Equal(a[i], b[i]) {
					t.Fatalf("task %d state differs between identical runs", i)
				}
			}
		})
	}
}

func TestAppsPupRoundTrip(t *testing.T) {
	for _, spec := range Table2() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			states := runClean(t, spec.Factory(6), 1, 2)
			for _, data := range states {
				prog := spec.Factory(6)(runtime.Addr{})
				if err := pup.Unpack(data, prog); err != nil {
					t.Fatalf("unpack: %v", err)
				}
				re, err := pup.Pack(prog)
				if err != nil {
					t.Fatalf("repack: %v", err)
				}
				if !bytes.Equal(re, data) {
					t.Fatal("pack(unpack(x)) != x")
				}
			}
		})
	}
}

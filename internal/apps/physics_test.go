package apps

import (
	"math"
	"testing"

	"acr/internal/pup"
	"acr/internal/runtime"
)

// unpackAll decodes the packed task states into fresh programs.
func unpackAll[T pup.Pupable](t *testing.T, states [][]byte, mk func() T) []T {
	t.Helper()
	out := make([]T, len(states))
	for i, data := range states {
		p := mk()
		if err := pup.Unpack(data, p); err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func TestJacobiConvergesTowardZero(t *testing.T) {
	// With zero boundaries the relaxation contracts the field.
	short := unpackAll(t, runClean(t, JacobiFactory(2), 2, 2), func() *Jacobi { return &Jacobi{} })
	long := unpackAll(t, runClean(t, JacobiFactory(60), 2, 2), func() *Jacobi { return &Jacobi{} })
	var nShort, nLong float64
	for i := range short {
		nShort += short[i].Norm()
		nLong += long[i].Norm()
	}
	if nLong >= nShort*0.8 {
		t.Fatalf("relaxation not contracting: %v -> %v", nShort, nLong)
	}
	if nLong <= 0 || math.IsNaN(nLong) {
		t.Fatalf("degenerate field norm %v", nLong)
	}
}

func TestJacobiAMPIMatchesResidualMonotone(t *testing.T) {
	progs := unpackAll(t, runClean(t, JacobiAMPIFactory(40), 2, 2), func() *JacobiAMPI { return &JacobiAMPI{} })
	// All ranks agree on the global residual (it came from Allreduce).
	res := progs[0].Residual
	for _, p := range progs {
		if p.Residual != res {
			t.Fatalf("ranks disagree on residual: %v vs %v", p.Residual, res)
		}
	}
	early := unpackAll(t, runClean(t, JacobiAMPIFactory(5), 2, 2), func() *JacobiAMPI { return &JacobiAMPI{} })
	if res >= early[0].Residual {
		t.Fatalf("residual should decrease: %v -> %v", early[0].Residual, res)
	}
}

func TestHPCCGConvergesToOnes(t *testing.T) {
	// CG on the diagonally dominant 27-point operator converges fast;
	// after 25 iterations the solution must be all-ones to good accuracy.
	progs := unpackAll(t, runClean(t, HPCCGFactory(25), 2, 2), func() *HPCCG { return &HPCCG{} })
	for i, p := range progs {
		if e := p.SolutionError(); e > 1e-6 {
			t.Fatalf("rank %d solution error %v, want < 1e-6", i, e)
		}
	}
	if progs[0].ResidualNorm() > 1e-5 {
		t.Fatalf("residual %v did not converge", progs[0].ResidualNorm())
	}
}

func TestHPCCGResidualDecreases(t *testing.T) {
	r5 := unpackAll(t, runClean(t, HPCCGFactory(5), 1, 2), func() *HPCCG { return &HPCCG{} })
	r15 := unpackAll(t, runClean(t, HPCCGFactory(15), 1, 2), func() *HPCCG { return &HPCCG{} })
	if r15[0].ResidualNorm() >= r5[0].ResidualNorm() {
		t.Fatalf("residual not decreasing: %v -> %v", r5[0].ResidualNorm(), r15[0].ResidualNorm())
	}
}

func TestLuleshShockPhysics(t *testing.T) {
	const iters = 200
	progs := unpackAll(t, runClean(t, LuleshFactory(iters), 2, 2), func() *Lulesh { return &Lulesh{} })
	n := len(progs)
	// 1) The discontinuity launches a wave: some nodes must be moving.
	maxV := 0.0
	for _, p := range progs {
		if v := p.MaxVel(); v > maxV {
			maxV = v
		}
	}
	if maxV < 1e-3 {
		t.Fatalf("no shock developed: max velocity %v", maxV)
	}
	// 2) Total energy is approximately conserved by the staggered update.
	totalAfter := 0.0
	for i, p := range progs {
		totalAfter += p.TotalEnergy(i == n-1)
	}
	initial := unpackAll(t, runClean(t, LuleshFactory(0), 2, 2), func() *Lulesh { return &Lulesh{} })
	totalBefore := 0.0
	for i, p := range initial {
		totalBefore += p.TotalEnergy(i == n-1)
	}
	if rel := math.Abs(totalAfter-totalBefore) / totalBefore; rel > 0.02 {
		t.Fatalf("energy drifted %.2f%% (from %v to %v)", rel*100, totalBefore, totalAfter)
	}
	// 3) Mesh stays untangled: positions strictly increasing per task.
	for _, p := range progs {
		for i := 0; i < p.E; i++ {
			if p.Pos[i+1] <= p.Pos[i] {
				t.Fatalf("mesh tangled at node %d", i)
			}
		}
	}
}

func TestMDStability(t *testing.T) {
	progs := unpackAll(t, runClean(t, LeanMDFactory(100), 2, 2), func() *LeanMD { return &LeanMD{} })
	for _, p := range progs {
		for _, a := range p.Atoms {
			if a.X < -0.01 || a.X > 1.01 || a.Y < -0.01 || a.Y > 1.01 {
				t.Fatalf("atom escaped the box: %+v", a)
			}
			if math.IsNaN(a.X) || math.IsNaN(a.VX) {
				t.Fatal("NaN in MD state")
			}
		}
		if ke := p.KineticEnergy(); ke > 100 {
			t.Fatalf("kinetic energy blew up: %v", ke)
		}
	}
}

func TestMiniMDGlobalKineticEnergyAgrees(t *testing.T) {
	progs := unpackAll(t, runClean(t, MiniMDFactory(50), 2, 2), func() *MiniMD { return &MiniMD{} })
	ke := progs[0].TotalKE
	if ke <= 0 || math.IsNaN(ke) {
		t.Fatalf("bad global KE %v", ke)
	}
	sum := 0.0
	for _, p := range progs {
		if p.TotalKE != ke {
			t.Fatalf("ranks disagree on global KE")
		}
		sum += kinetic(p.Atoms)
	}
	if math.Abs(sum-ke)/ke > 1e-9 {
		t.Fatalf("allreduced KE %v != local sum %v", ke, sum)
	}
}

func TestAtomPupRoundTrip(t *testing.T) {
	a := Atom{X: 0.5, Y: 0.25, VX: -1, VY: 2}
	data, err := pup.Pack(&a)
	if err != nil {
		t.Fatal(err)
	}
	var b Atom
	if err := pup.Unpack(data, &b); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("round trip: %+v vs %+v", a, b)
	}
}

func TestSoftForceProperties(t *testing.T) {
	// Beyond cutoff: zero.
	if fx, fy := softForce(0, 0, mdCutoff*2, 0); fx != 0 || fy != 0 {
		t.Fatal("force beyond cutoff")
	}
	// Repulsive: force on a points away from b.
	fx, _ := softForce(0.1, 0, 0.05, 0)
	if fx <= 0 {
		t.Fatal("force not repulsive")
	}
	// Newton's third law.
	f1x, f1y := softForce(0.1, 0.2, 0.15, 0.22)
	f2x, f2y := softForce(0.15, 0.22, 0.1, 0.2)
	if math.Abs(f1x+f2x) > 1e-12 || math.Abs(f1y+f2y) > 1e-12 {
		t.Fatal("forces not antisymmetric")
	}
	// Coincident atoms do not produce NaN.
	if fx, fy := softForce(0.3, 0.3, 0.3, 0.3); fx != 0 || fy != 0 {
		t.Fatal("self force")
	}
}

func TestInitAtomsInsideCell(t *testing.T) {
	atoms := initAtoms(50, 3, 1, 2, 4, 4)
	for _, a := range atoms {
		if a.X < 0.25 || a.X > 0.5 || a.Y < 0.5 || a.Y > 0.75 {
			t.Fatalf("atom outside its cell: %+v", a)
		}
	}
}

func TestRowNeighbors(t *testing.T) {
	// Interior cell: 26 neighbours; corner: 7.
	if n := rowNeighbors(1, 1, 1, 4, 4, 4); n != 26 {
		t.Fatalf("interior neighbours = %d, want 26", n)
	}
	if n := rowNeighbors(0, 0, 0, 4, 4, 4); n != 7 {
		t.Fatalf("corner neighbours = %d, want 7", n)
	}
}

var _ runtime.Program = (*Jacobi)(nil)
var _ runtime.Program = (*JacobiAMPI)(nil)
var _ runtime.Program = (*HPCCG)(nil)
var _ runtime.Program = (*Lulesh)(nil)
var _ runtime.Program = (*LeanMD)(nil)
var _ runtime.Program = (*MiniMD)(nil)

package apps

import (
	"math"

	"acr/internal/ampi"
	"acr/internal/pup"
	"acr/internal/runtime"
)

// This file holds the two molecular-dynamics mini-apps of §6.1: LeanMD
// (message-driven, the cell/compute pattern of NAMD's short-range
// non-bonded force calculation) and miniMD (AMPI, mimicking LAMMPS's
// spatial decomposition). Both use a purely repulsive soft-sphere
// potential — bounded forces, so the explicit integrator stays stable and
// deterministic — and, per Table 2, a small checkpoint scattered across
// many per-atom objects (the layout that §6.2 blames for their relatively
// expensive serialization).

// Atom is one particle; each atom is pup'd as its own nested object,
// reproducing the scattered-checkpoint layout.
type Atom struct {
	X, Y   float64
	VX, VY float64
}

// Pup implements pup.Pupable.
func (a *Atom) Pup(p *pup.PUPer) {
	p.Float64(&a.X)
	p.Float64(&a.Y)
	p.Float64(&a.VX)
	p.Float64(&a.VY)
}

// pupAtoms pipes a []Atom with a length prefix.
func pupAtoms(p *pup.PUPer, atoms *[]Atom) {
	n := len(*atoms)
	p.Int(&n)
	if p.Mode() == pup.Unpacking && len(*atoms) != n {
		*atoms = make([]Atom, n)
	}
	for i := range *atoms {
		p.Object(&(*atoms)[i])
	}
}

// mdCutoff is the interaction radius and mdK the soft-sphere stiffness.
const (
	mdCutoff = 0.12
	mdK      = 40.0
	mdDt     = 5e-4
)

// softForce accumulates the repulsive force exerted on atom a by a
// neighbour at (x, y): f = k*(cutoff-r) along the separation, r < cutoff.
func softForce(ax, ay, bx, by float64) (fx, fy float64) {
	dx := ax - bx
	dy := ay - by
	r2 := dx*dx + dy*dy
	if r2 >= mdCutoff*mdCutoff || r2 == 0 {
		return 0, 0
	}
	r := math.Sqrt(r2)
	mag := mdK * (mdCutoff - r) / r
	return mag * dx, mag * dy
}

// posMsg ships a cell's atom positions to a neighbouring cell.
type posMsg struct {
	Iter   int
	XS, YS []float64
}

// initAtoms places k atoms deterministically inside the unit cell at
// (cx, cy) of a gx*gy cell grid, with small deterministic velocities.
func initAtoms(k, cell, cx, cy, gx, gy int) []Atom {
	atoms := make([]Atom, k)
	for i := range atoms {
		// Low-discrepancy-ish deterministic placement.
		fx := math.Mod(float64(i)*0.618033988749895+0.13, 1.0)
		fy := math.Mod(float64(i)*0.754877666246693+0.29, 1.0)
		atoms[i] = Atom{
			X:  (float64(cx) + 0.1 + 0.8*fx) / float64(gx),
			Y:  (float64(cy) + 0.1 + 0.8*fy) / float64(gy),
			VX: 0.05 * math.Sin(float64(cell*7+i)),
			VY: 0.05 * math.Cos(float64(cell*11+i)),
		}
	}
	return atoms
}

// integrate advances atoms one step given accumulated forces, reflecting
// at the unit-box walls.
func integrate(atoms []Atom, fx, fy []float64) {
	for i := range atoms {
		a := &atoms[i]
		a.VX += mdDt * fx[i]
		a.VY += mdDt * fy[i]
		a.X += mdDt * a.VX
		a.Y += mdDt * a.VY
		if a.X < 0 {
			a.X, a.VX = -a.X, -a.VX
		}
		if a.X > 1 {
			a.X, a.VX = 2-a.X, -a.VX
		}
		if a.Y < 0 {
			a.Y, a.VY = -a.Y, -a.VY
		}
		if a.Y > 1 {
			a.Y, a.VY = 2-a.Y, -a.VY
		}
	}
}

// kinetic returns the kinetic energy of the atoms.
func kinetic(atoms []Atom) float64 {
	e := 0.0
	for i := range atoms {
		e += 0.5 * (atoms[i].VX*atoms[i].VX + atoms[i].VY*atoms[i].VY)
	}
	return e
}

// LeanMD is the message-driven MD app: one cell (patch) per task on a 2D
// cell grid; every iteration the cell ships its atom positions to its <= 8
// neighbours, computes short-range forces against its own and neighbour
// atoms, and integrates. Atoms stay bound to their home cell (a proxy
// simplification recorded in DESIGN.md — migration does not change the
// checkpoint/recovery behaviour ACR exercises).
// Every integration step moves every atom, and the per-atom nested-object
// layout is all scalars (no bulk arrays to splice), so the write tracking
// is an honest MarkAll each iteration — the capture path gets no chunk
// reuse here, matching §6.2's observation that the scattered layout makes
// this checkpoint expensive.
type LeanMD struct {
	pup.WriteSet
	Iter, Iters int
	K           int // atoms per cell
	Atoms       []Atom
}

// LeanMDAtoms is the default per-task atom count for live runs.
const LeanMDAtoms = 24

// LeanMDFactory builds LeanMD tasks with 24 atoms per cell.
func LeanMDFactory(iters int) runtime.Factory {
	return LeanMDFactorySized(iters, LeanMDAtoms)
}

// LeanMDFactorySized builds LeanMD tasks with an arbitrary per-cell atom
// count (the paper uses 4000 per core).
func LeanMDFactorySized(iters, atoms int) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program {
		return &LeanMD{Iters: iters, K: atoms}
	}
}

// Pup implements pup.Pupable.
func (m *LeanMD) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&m.Iter)
	p.Label("iters")
	p.Int(&m.Iters)
	p.Label("k")
	p.Int(&m.K)
	p.Label("atoms")
	pupAtoms(p, &m.Atoms)
}

// KineticEnergy returns the cell's kinetic energy.
func (m *LeanMD) KineticEnergy() float64 { return kinetic(m.Atoms) }

// Run implements runtime.Program.
func (m *LeanMD) Run(ctx *runtime.Ctx) error {
	gx, gy := grid2(ctx.NumTasks())
	g := ctx.GlobalTask()
	cx, cy := g%gx, g/gx
	if m.Atoms == nil {
		m.Atoms = initAtoms(m.K, g, cx, cy, gx, gy)
	}
	var neighbours []int
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := cx+dx, cy+dy
			if nx >= 0 && nx < gx && ny >= 0 && ny < gy {
				neighbours = append(neighbours, ny*gx+nx)
			}
		}
	}

	var pending []runtime.Message
	recvAll := func(iter int) (map[int]posMsg, error) {
		got := make(map[int]posMsg, len(neighbours))
		want := make(map[runtime.Addr]int, len(neighbours))
		for _, nb := range neighbours {
			want[ctx.AddrOfGlobal(nb)] = nb
		}
		take := func(msg runtime.Message) bool {
			pm, ok := msg.Data.(posMsg)
			if !ok || pm.Iter != iter {
				return false
			}
			nb, ok := want[msg.From]
			if !ok {
				return false
			}
			if _, dup := got[nb]; dup {
				return false
			}
			got[nb] = pm
			return true
		}
		for i := 0; i < len(pending); {
			if take(pending[i]) {
				pending = append(pending[:i], pending[i+1:]...)
			} else {
				i++
			}
		}
		for len(got) < len(neighbours) {
			msg, err := ctx.Recv()
			if err != nil {
				return nil, err
			}
			if !take(msg) {
				pending = append(pending, msg)
			}
		}
		return got, nil
	}

	for m.Iter < m.Iters {
		it := m.Iter
		xs := make([]float64, len(m.Atoms))
		ys := make([]float64, len(m.Atoms))
		for i := range m.Atoms {
			xs[i] = m.Atoms[i].X
			ys[i] = m.Atoms[i].Y
		}
		for _, nb := range neighbours {
			if err := ctx.Send(ctx.AddrOfGlobal(nb), 0, posMsg{Iter: it, XS: xs, YS: ys}); err != nil {
				return err
			}
		}
		ext, err := recvAll(it)
		if err != nil {
			return err
		}
		fx := make([]float64, len(m.Atoms))
		fy := make([]float64, len(m.Atoms))
		for i := range m.Atoms {
			a := &m.Atoms[i]
			for j := range m.Atoms {
				if i == j {
					continue
				}
				dfx, dfy := softForce(a.X, a.Y, m.Atoms[j].X, m.Atoms[j].Y)
				fx[i] += dfx
				fy[i] += dfy
			}
			// Deterministic neighbour order: ascending cell index.
			for _, nb := range neighbours {
				pm := ext[nb]
				for j := range pm.XS {
					dfx, dfy := softForce(a.X, a.Y, pm.XS[j], pm.YS[j])
					fx[i] += dfx
					fy[i] += dfy
				}
			}
		}
		integrate(m.Atoms, fx, fy)
		m.Iter++
		m.MarkAll()
		if err := ctx.Progress(m.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

// MiniMD is the AMPI MD app: a 1D spatial decomposition across ranks
// (columns of the unit box), halo exchange of atom positions with the left
// and right ranks via blocking Send/Recv, and a per-step Allreduce of the
// kinetic energy — the LAMMPS-style structure of the Mantevo original.
// Write-tracked like LeanMD: everything moves every step, so MarkAll.
type MiniMD struct {
	pup.WriteSet
	Iter, Iters int
	K           int
	Atoms       []Atom
	TotalKE     float64
}

// MiniMDAtoms is the default per-task atom count for live runs.
const MiniMDAtoms = 16

// MiniMDFactory builds miniMD tasks with 16 atoms per rank.
func MiniMDFactory(iters int) runtime.Factory {
	return MiniMDFactorySized(iters, MiniMDAtoms)
}

// MiniMDFactorySized builds miniMD tasks with an arbitrary per-rank atom
// count (the paper uses 1000 per core).
func MiniMDFactorySized(iters, atoms int) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program {
		return &MiniMD{Iters: iters, K: atoms}
	}
}

// Pup implements pup.Pupable.
func (m *MiniMD) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&m.Iter)
	p.Label("iters")
	p.Int(&m.Iters)
	p.Label("k")
	p.Int(&m.K)
	p.Label("atoms")
	pupAtoms(p, &m.Atoms)
	p.Label("totalke")
	p.Float64(&m.TotalKE)
}

// Run implements runtime.Program.
func (m *MiniMD) Run(ctx *runtime.Ctx) error {
	r := ampi.New(ctx)
	rank, size := r.Rank(), r.Size()
	if m.Atoms == nil {
		m.Atoms = initAtoms(m.K, rank, rank, 0, size, 1)
	}
	const tagLeft, tagRight = 5, 6
	for m.Iter < m.Iters {
		xs := make([]float64, len(m.Atoms))
		ys := make([]float64, len(m.Atoms))
		for i := range m.Atoms {
			xs[i] = m.Atoms[i].X
			ys[i] = m.Atoms[i].Y
		}
		payload := posMsg{Iter: m.Iter, XS: xs, YS: ys}
		var left, right posMsg
		if rank > 0 {
			if err := r.Send(rank-1, tagLeft, payload); err != nil {
				return err
			}
		}
		if rank < size-1 {
			if err := r.Send(rank+1, tagRight, payload); err != nil {
				return err
			}
		}
		if rank > 0 {
			d, _, err := r.Recv(rank-1, tagRight)
			if err != nil {
				return err
			}
			left = d.(posMsg)
		}
		if rank < size-1 {
			d, _, err := r.Recv(rank+1, tagLeft)
			if err != nil {
				return err
			}
			right = d.(posMsg)
		}
		fx := make([]float64, len(m.Atoms))
		fy := make([]float64, len(m.Atoms))
		for i := range m.Atoms {
			a := &m.Atoms[i]
			for j := range m.Atoms {
				if i == j {
					continue
				}
				dfx, dfy := softForce(a.X, a.Y, m.Atoms[j].X, m.Atoms[j].Y)
				fx[i] += dfx
				fy[i] += dfy
			}
			for j := range left.XS {
				dfx, dfy := softForce(a.X, a.Y, left.XS[j], left.YS[j])
				fx[i] += dfx
				fy[i] += dfy
			}
			for j := range right.XS {
				dfx, dfy := softForce(a.X, a.Y, right.XS[j], right.YS[j])
				fx[i] += dfx
				fy[i] += dfy
			}
		}
		integrate(m.Atoms, fx, fy)
		ke, err := r.Allreduce(ampi.Sum, kinetic(m.Atoms))
		if err != nil {
			return err
		}
		m.TotalKE = ke
		m.Iter++
		m.MarkAll()
		if err := r.Progress(m.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

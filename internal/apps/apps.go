// Package apps contains Go ports of the paper's five mini-applications
// (§6.1, Table 2): Jacobi3D (in both the message-driven and the AMPI/MPI
// programming model), HPCCG, a LULESH-style hydrodynamics proxy, LeanMD,
// and miniMD. Each app is a runtime.Program — deterministic, fully pup-able
// and restartable — so the same binary state can be checkpointed, compared
// across replicas, corrupted by the SDC injector, and restored by ACR.
//
// The package also carries the Table 2 configuration data used by the
// large-scale figure reproductions: per-core checkpoint footprints and the
// memory-layout class (contiguous vs scattered) that drive the netsim cost
// model for Figures 8-11.
package apps

import (
	"fmt"

	"acr/internal/runtime"
)

// Model identifies the programming model an app variant is written in.
type Model int

// Programming models (§6.1 uses Charm++ and MPI via AMPI).
const (
	MessageDriven Model = iota // Charm++-style: explicit sends + any-receive
	AMPI                       // MPI-style: ranks with blocking Send/Recv/Allreduce
)

func (m Model) String() string {
	switch m {
	case MessageDriven:
		return "charm"
	case AMPI:
		return "ampi"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Spec describes one Table 2 mini-app variant for the figure harness.
type Spec struct {
	// Name as used in the figures ("Jacobi3D Charm++", "HPCCG", ...).
	Name string
	// Model is the programming model of the variant.
	Model Model
	// Config is the Table 2 per-core configuration string.
	Config string
	// CheckpointBytesPerCore is the serialized user-state footprint under
	// the paper's per-core configuration.
	CheckpointBytesPerCore float64
	// HighMemoryPressure mirrors Table 2's memory-pressure column.
	HighMemoryPressure bool
	// Scattered marks checkpoint data spread across many small objects
	// (the MD apps), which inflates serialization time (§6.2).
	Scattered bool
	// Factory builds a laptop-scale instance of the app for live runs:
	// iters iterations on whatever machine shape the runtime provides.
	Factory func(iters int) runtime.Factory
}

// Table2 returns the six app variants evaluated in Figures 8 and 10, in
// the paper's order (a-f): Jacobi3D Charm++, LULESH, LeanMD, Jacobi3D
// AMPI, HPCCG, miniMD.
func Table2() []Spec {
	const f8 = 8 // bytes per float64
	return []Spec{
		{
			Name:  "Jacobi3D Charm++",
			Model: MessageDriven,
			// 64x64x128 grid points per core, one live grid checkpointed.
			Config:                 "64*64*128 grid points",
			CheckpointBytesPerCore: 64 * 64 * 128 * f8,
			HighMemoryPressure:     true,
			Factory:                JacobiFactory,
		},
		{
			Name:  "LULESH",
			Model: MessageDriven,
			// 32x32x64 mesh elements per core with element- and
			// node-centred fields: a deeper structure than Jacobi,
			// hence the larger serialization cost observed in §6.2.
			Config:                 "32*32*64 mesh elements",
			CheckpointBytesPerCore: 32 * 32 * 64 * f8 * 9,
			HighMemoryPressure:     true,
			Factory:                LuleshFactory,
		},
		{
			Name:  "LeanMD",
			Model: MessageDriven,
			// 4000 atoms per core: position+velocity+force, scattered
			// across per-cell objects.
			Config:                 "4000 atoms",
			CheckpointBytesPerCore: 4000 * f8 * 9,
			Scattered:              true,
			Factory:                LeanMDFactory,
		},
		{
			Name:                   "Jacobi3D AMPI",
			Model:                  AMPI,
			Config:                 "64*64*128 grid points",
			CheckpointBytesPerCore: 64 * 64 * 128 * f8,
			HighMemoryPressure:     true,
			Factory:                JacobiAMPIFactory,
		},
		{
			Name:  "HPCCG",
			Model: AMPI,
			// 40x40x40 rows per core; the CG state (x, r, p, Ap, b) plus
			// the 27-point matrix diagonal band kept in the checkpoint.
			Config:                 "40*40*40 grid points",
			CheckpointBytesPerCore: 40 * 40 * 40 * f8 * 9,
			HighMemoryPressure:     true,
			Factory:                HPCCGFactory,
		},
		{
			Name:                   "miniMD",
			Model:                  AMPI,
			Config:                 "1000 atoms",
			CheckpointBytesPerCore: 1000 * f8 * 9,
			Scattered:              true,
			Factory:                MiniMDFactory,
		},
	}
}

// SpecByName returns the Table 2 spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Table2() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("apps: unknown app %q", name)
}

// grid3 factors n into a near-cubic px*py*pz = n decomposition with
// px <= py <= pz.
func grid3(n int) (px, py, pz int) {
	px, py, pz = 1, 1, n
	best := n * n
	for x := 1; x*x*x <= n; x++ {
		if n%x != 0 {
			continue
		}
		rem := n / x
		for y := x; y*y <= rem; y++ {
			if rem%y != 0 {
				continue
			}
			z := rem / y
			spread := (z - x) * (z - x)
			if spread < best {
				best = spread
				px, py, pz = x, y, z
			}
		}
	}
	return px, py, pz
}

// grid2 factors n into px*py = n with px <= py as square as possible.
func grid2(n int) (px, py int) {
	px, py = 1, n
	for x := 1; x*x <= n; x++ {
		if n%x == 0 {
			px, py = x, n/x
		}
	}
	return px, py
}

package apps

import (
	"math"
	"testing"

	"acr/internal/runtime"
)

// This file validates the numerical kernels against independent
// references, separately from the distributed machinery: the distributed
// runs must equal a serial re-computation of the same mathematics.

// serialJacobi runs the global 7-point relaxation on the full grid.
func serialJacobi(px, py, pz, bx, by, bz, iters int) []float64 {
	nx, ny, nz := px*bx, py*by, pz*bz
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	u := make([]float64, nx*ny*nz)
	// Initialization matches jacobiInit per task-local cell index.
	for g := 0; g < px*py*pz; g++ {
		gx, gy, gz := g%px, (g/px)%py, g/(px*py)
		for c := 0; c < bx*by*bz; c++ {
			ci := c % bx
			ck := (c / bx) % by
			cl := c / (bx * by)
			u[idx(gx*bx+ci, gy*by+ck, gz*bz+cl)] = jacobiInit(g, c)
		}
	}
	at := func(v []float64, x, y, z int) float64 {
		if x < 0 || x >= nx || y < 0 || y >= ny || z < 0 || z >= nz {
			return 0
		}
		return v[idx(x, y, z)]
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, len(u))
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					next[idx(x, y, z)] = (at(u, x, y, z) +
						at(u, x-1, y, z) + at(u, x+1, y, z) +
						at(u, x, y-1, z) + at(u, x, y+1, z) +
						at(u, x, y, z-1) + at(u, x, y, z+1)) / 7
				}
			}
		}
		u = next
	}
	return u
}

// TestJacobiMatchesSerialReference: the distributed message-driven stencil
// equals the serial sweep bit for bit.
func TestJacobiMatchesSerialReference(t *testing.T) {
	const iters = 15
	// 1 node x 8 tasks -> grid3(8) = 2x2x2 task grid of 4^3 blocks.
	states := runClean(t, JacobiFactorySized(iters, 4, 4, 4), 1, 8)
	px, py, pz := grid3(8)
	ref := serialJacobi(px, py, pz, 4, 4, 4, iters)
	nx, ny := px*4, py*4
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	progs := unpackAll(t, states, func() *Jacobi { return &Jacobi{} })
	for g, p := range progs {
		gx, gy, gz := g%px, (g/px)%py, g/(px*py)
		for c, v := range p.U {
			ci := c % 4
			ck := (c / 4) % 4
			cl := c / 16
			want := ref[idx(gx*4+ci, gy*4+ck, gz*4+cl)]
			if math.Float64bits(v) != math.Float64bits(want) {
				t.Fatalf("task %d cell %d: %v != serial %v", g, c, v, want)
			}
		}
	}
}

// serialMatvec27 applies the HPCCG operator (diag 27, in-bounds neighbours
// -1) on the full 3D grid.
func serialMatvec27(v []float64, nx, ny, nz int) []float64 {
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	at := func(x, y, z int) float64 {
		if x < 0 || x >= nx || y < 0 || y >= ny || z < 0 || z >= nz {
			return 0
		}
		return v[idx(x, y, z)]
	}
	y := make([]float64, len(v))
	for z := 0; z < nz; z++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				sum := 27 * v[idx(i, j, z)]
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							sum -= at(i+dx, j+dy, z+dz)
						}
					}
				}
				y[idx(i, j, z)] = sum
			}
		}
	}
	return y
}

// TestHPCCGMatvecMatchesSerial: the slab-distributed matvec with halo
// planes equals the serial 27-point operator.
func TestHPCCGMatvecMatchesSerial(t *testing.T) {
	const nx, ny, nz = 5, 4, 3 // per-rank slab; 2 ranks stacked in Z
	h0 := &HPCCG{NX: nx, NY: ny, NZ: nz}
	h1 := &HPCCG{NX: nx, NY: ny, NZ: nz}
	// Build a deterministic global vector split across two slabs.
	global := make([]float64, nx*ny*2*nz)
	for i := range global {
		global[i] = math.Sin(float64(i) * 0.3)
	}
	v0 := global[:nx*ny*nz]
	v1 := global[nx*ny*nz:]
	// Halo planes: top plane of v0 and bottom plane of v1.
	plane := nx * ny
	below1 := v0[len(v0)-plane:]
	above0 := v1[:plane]
	y0 := h0.matvec(v0, nil, above0)
	y1 := h1.matvec(v1, below1, nil)
	ref := serialMatvec27(global, nx, ny, 2*nz)
	for i := range y0 {
		if math.Abs(y0[i]-ref[i]) > 1e-12 {
			t.Fatalf("slab 0 element %d: %v != %v", i, y0[i], ref[i])
		}
	}
	for i := range y1 {
		if math.Abs(y1[i]-ref[nx*ny*nz+i]) > 1e-12 {
			t.Fatalf("slab 1 element %d: %v != %v", i, y1[i], ref[nx*ny*nz+i])
		}
	}
}

// TestHPCCGOperatorSymmetryAndDefiniteness: CG requires a symmetric
// positive-definite operator; verify <Av, w> == <v, Aw> and <Av, v> > 0 on
// random-ish vectors (single slab, so matvec has no halos).
func TestHPCCGOperatorSymmetryAndDefiniteness(t *testing.T) {
	h := &HPCCG{NX: 4, NY: 4, NZ: 4}
	n := 64
	v := make([]float64, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		v[i] = math.Sin(float64(i) * 1.1)
		w[i] = math.Cos(float64(i) * 0.7)
	}
	av := h.matvec(v, nil, nil)
	aw := h.matvec(w, nil, nil)
	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	if math.Abs(dot(av, w)-dot(v, aw)) > 1e-9 {
		t.Fatalf("operator not symmetric: %v vs %v", dot(av, w), dot(v, aw))
	}
	if dot(av, v) <= 0 {
		t.Fatalf("operator not positive definite: %v", dot(av, v))
	}
}

// TestJacobiFaceVals: extracted faces land in the documented order.
func TestJacobiFaceVals(t *testing.T) {
	j := &Jacobi{BX: 2, BY: 3, BZ: 4}
	j.U = make([]float64, 2*3*4)
	for i := range j.U {
		j.U[i] = float64(i)
	}
	// -X face: values at i=0, laid out k fastest then l.
	face := j.faceVals(0)
	if len(face) != 3*4 {
		t.Fatalf("X face size %d", len(face))
	}
	for l := 0; l < 4; l++ {
		for k := 0; k < 3; k++ {
			if face[l*3+k] != j.U[j.idx(0, k, l)] {
				t.Fatal("-X face layout wrong")
			}
		}
	}
	// +Z face: values at l=3, i fastest then k.
	face = j.faceVals(5)
	if len(face) != 2*3 {
		t.Fatalf("Z face size %d", len(face))
	}
	for k := 0; k < 3; k++ {
		for i := 0; i < 2; i++ {
			if face[k*2+i] != j.U[j.idx(i, k, 3)] {
				t.Fatal("+Z face layout wrong")
			}
		}
	}
}

// TestLuleshSetup: the Sod initialization is mass-uniform with the energy
// jump at the global midpoint, and node positions tile [0,1].
func TestLuleshSetup(t *testing.T) {
	const tasks = 4
	states := runClean(t, LuleshFactorySized(0, 8), 1, tasks)
	progs := unpackAll(t, states, func() *Lulesh { return &Lulesh{} })
	total := tasks * 8
	dx := 1.0 / float64(total)
	for g, p := range progs {
		for e := 0; e < p.E; e++ {
			ge := g*p.E + e
			if math.Abs(p.Mass[e]-dx) > 1e-15 {
				t.Fatalf("element %d mass %v, want %v", ge, p.Mass[e], dx)
			}
			wantE := 0.25 * dx
			if ge < total/2 {
				wantE = 2.5 * dx
			}
			if math.Abs(p.Energy[e]-wantE) > 1e-15 {
				t.Fatalf("element %d energy %v, want %v", ge, p.Energy[e], wantE)
			}
		}
		for i := 0; i <= p.E; i++ {
			want := float64(g*p.E+i) * dx
			if math.Abs(p.Pos[i]-want) > 1e-15 {
				t.Fatalf("node %d pos %v, want %v", i, p.Pos[i], want)
			}
		}
	}
	// Initial pressures: ratio 10 across the diaphragm (Sod).
	left := progs[0].pressure(0)
	right := progs[tasks-1].pressure(7)
	if r := left / right; math.Abs(r-10) > 1e-9 {
		t.Fatalf("pressure ratio %v, want 10", r)
	}
}

// TestMDIntegrateReflections: wall reflection preserves speed and flips
// velocity.
func TestMDIntegrateReflections(t *testing.T) {
	atoms := []Atom{{X: 0.9995, Y: 0.5, VX: 10, VY: 0}}
	integrate(atoms, []float64{0}, []float64{0})
	if atoms[0].X > 1 || atoms[0].VX >= 0 {
		t.Fatalf("right-wall reflection broken: %+v", atoms[0])
	}
	if math.Abs(atoms[0].VX) != 10 {
		t.Fatalf("reflection should preserve speed: %+v", atoms[0])
	}
	atoms = []Atom{{X: 0.0005, Y: 0.5, VX: -10, VY: 0}}
	integrate(atoms, []float64{0}, []float64{0})
	if atoms[0].X < 0 || atoms[0].VX <= 0 {
		t.Fatalf("left-wall reflection broken: %+v", atoms[0])
	}
}

// TestMDMomentumConservation: with no walls hit, pairwise forces conserve
// momentum over a step (Newton's third law at the system level).
func TestMDMomentumConservation(t *testing.T) {
	atoms := []Atom{
		{X: 0.5, Y: 0.5, VX: 0.01, VY: 0},
		{X: 0.55, Y: 0.52, VX: -0.01, VY: 0.02},
		{X: 0.48, Y: 0.55, VX: 0, VY: -0.02},
	}
	px0, py0 := 0.0, 0.0
	for _, a := range atoms {
		px0 += a.VX
		py0 += a.VY
	}
	fx := make([]float64, len(atoms))
	fy := make([]float64, len(atoms))
	for i := range atoms {
		for j := range atoms {
			if i == j {
				continue
			}
			dfx, dfy := softForce(atoms[i].X, atoms[i].Y, atoms[j].X, atoms[j].Y)
			fx[i] += dfx
			fy[i] += dfy
		}
	}
	integrate(atoms, fx, fy)
	px1, py1 := 0.0, 0.0
	for _, a := range atoms {
		px1 += a.VX
		py1 += a.VY
	}
	if math.Abs(px1-px0) > 1e-14 || math.Abs(py1-py0) > 1e-14 {
		t.Fatalf("momentum drifted: (%v,%v) -> (%v,%v)", px0, py0, px1, py1)
	}
}

// TestSizedFactoriesProduceConfiguredShapes confirms the sized variants
// carry their parameters through checkpoints.
func TestSizedFactoriesProduceConfiguredShapes(t *testing.T) {
	j := JacobiFactorySized(1, 3, 4, 5)(runtime.Addr{}).(*Jacobi)
	if j.BX != 3 || j.BY != 4 || j.BZ != 5 {
		t.Fatal("Jacobi sized factory wrong")
	}
	h := HPCCGFactorySized(1, 2, 3, 4)(runtime.Addr{}).(*HPCCG)
	if h.NX != 2 || h.NY != 3 || h.NZ != 4 {
		t.Fatal("HPCCG sized factory wrong")
	}
	l := LuleshFactorySized(1, 9)(runtime.Addr{}).(*Lulesh)
	if l.E != 9 {
		t.Fatal("Lulesh sized factory wrong")
	}
	lm := LeanMDFactorySized(1, 7)(runtime.Addr{}).(*LeanMD)
	if lm.K != 7 {
		t.Fatal("LeanMD sized factory wrong")
	}
	mm := MiniMDFactorySized(1, 5)(runtime.Addr{}).(*MiniMD)
	if mm.K != 5 {
		t.Fatal("miniMD sized factory wrong")
	}
}

package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestAdaptiveBeatsFixedUnderBurstyFailures(t *testing.T) {
	ad, fx := AdaptiveVsFixed(DefaultAdaptiveAblationConfig())
	if ad.Policy != "adaptive" || fx.Policy != "fixed" {
		t.Fatal("policies mislabelled")
	}
	if ad.UsefulFraction <= 0 || ad.UsefulFraction > 1 || fx.UsefulFraction <= 0 || fx.UsefulFraction > 1 {
		t.Fatalf("useful fractions out of range: %v / %v", ad.UsefulFraction, fx.UsefulFraction)
	}
	// The §2.2 claim (and [4, 20]): dynamic scheduling beats a fixed
	// interval when the failure rate is non-stationary.
	if ad.UsefulFraction < fx.UsefulFraction {
		t.Errorf("adaptive (%.4f) should not lose to fixed (%.4f) under k=0.6 failures",
			ad.UsefulFraction, fx.UsefulFraction)
	}
	// Adaptive trades denser early checkpoints for less rework.
	if ad.ReworkSeconds >= fx.ReworkSeconds {
		t.Errorf("adaptive rework (%.1fs) should be below fixed (%.1fs)",
			ad.ReworkSeconds, fx.ReworkSeconds)
	}
}

func TestAdaptiveEquivalentUnderPoisson(t *testing.T) {
	// Under a stationary (k=1) process the fixed Young/Daly interval is
	// already optimal; adaptive must not be much worse.
	cfg := DefaultAdaptiveAblationConfig()
	cfg.Shape = 1.0
	ad, fx := AdaptiveVsFixed(cfg)
	if diff := fx.UsefulFraction - ad.UsefulFraction; diff > 0.01 {
		t.Errorf("adaptive should be within 1%% of fixed under Poisson failures, gap %.4f", diff)
	}
}

func TestDualVsTMRSweep(t *testing.T) {
	rows, cross, err := DualVsTMRSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatal("sweep too short")
	}
	// Dual wins at the paper's operating points (<= 10K FIT).
	for _, r := range rows {
		if r.FIT <= 1e4 && r.TMRWins {
			t.Errorf("TMR should not win at %v FIT", r.FIT)
		}
	}
	// TMR wins at the top of the sweep.
	if !rows[len(rows)-1].TMRWins {
		t.Error("TMR should win at 3M FIT")
	}
	// The crossover lies inside the sweep and separates the regimes.
	if cross <= 1e4 || cross > 3e6 {
		t.Errorf("crossover %.0f FIT outside the expected band", cross)
	}
	// Dual utilization decreases with FIT; TMR stays nearly flat.
	for i := 1; i < len(rows); i++ {
		if rows[i].DualUtil > rows[i-1].DualUtil+1e-9 {
			t.Error("dual utilization should fall as SDC rate grows")
		}
	}
	// TMR utilization is nearly insensitive to the SDC rate while the
	// per-corruption vote cost is amortized (up to ~1e5 FIT); beyond
	// that even voting pays, but far less than re-execution does.
	var tmrAt10, tmrAt1e5 float64
	for _, r := range rows {
		if r.FIT == 10 {
			tmrAt10 = r.TMRUtil
		}
		if r.FIT == 1e5 {
			tmrAt1e5 = r.TMRUtil
		}
	}
	if tmrAt10-tmrAt1e5 > 0.02 {
		t.Errorf("TMR utilization should be nearly flat to 1e5 FIT: %.3f -> %.3f", tmrAt10, tmrAt1e5)
	}
}

func TestSemiBlockingAblation(t *testing.T) {
	rows, err := SemiBlockingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 6 apps, got %d", len(rows))
	}
	for _, r := range rows {
		if r.SemiSeconds >= r.BlockingSeconds {
			t.Errorf("%s: overlapping must reduce the pause", r.App)
		}
		if r.HiddenFraction <= 0 || r.HiddenFraction >= 1 {
			t.Errorf("%s: hidden fraction %v out of (0,1)", r.App, r.HiddenFraction)
		}
	}
	// High-memory-pressure apps hide the most (transfer dominates).
	byName := map[string]SemiBlockingRow{}
	for _, r := range rows {
		byName[r.App] = r
	}
	if byName["Jacobi3D Charm++"].HiddenFraction < 0.8 {
		t.Errorf("Jacobi3D should hide most of the round: %v", byName["Jacobi3D Charm++"].HiddenFraction)
	}
}

func TestDiskAblation(t *testing.T) {
	pts, err := DiskAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatal("sweep too short")
	}
	first, last := pts[0], pts[len(pts)-1]
	// Disk checkpointing wins small, loses big (§1).
	if first.DiskUtil <= first.ACRUtil {
		t.Error("disk should win at 4K sockets")
	}
	if last.ACRUtil <= last.DiskUtil {
		t.Errorf("ACR (%.3f) should beat disk (%.3f) at 1M sockets", last.ACRUtil, last.DiskUtil)
	}
	// Disk delta grows linearly with sockets.
	if last.DiskDelta < first.DiskDelta*100 {
		t.Error("disk delta should grow ~linearly with the machine")
	}
}

func TestFprintAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := FprintAblations(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Ablation A", "Ablation B", "Ablation C", "Ablation D", "crossover", "adaptive", "TMR"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

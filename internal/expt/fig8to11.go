package expt

import (
	"fmt"
	"io"

	"acr/internal/apps"
	"acr/internal/model"
	"acr/internal/netsim"
	"acr/internal/topology"
)

// Variant is one of the four checkpoint/exchange configurations the
// evaluation sweeps: the mapping scheme plus the detection method.
type Variant struct {
	Name   string
	Scheme topology.Scheme
	Chunk  int
	Method netsim.Method
}

// Fig8Variants are the four bars of Figure 8: default, mixed, column
// (all full-checkpoint exchange) and checksum (mapping-independent).
func Fig8Variants() []Variant {
	return []Variant{
		{Name: "default", Scheme: topology.DefaultScheme, Method: netsim.FullCheckpoint},
		{Name: "mixed", Scheme: topology.MixedScheme, Chunk: 2, Method: netsim.FullCheckpoint},
		{Name: "column", Scheme: topology.ColumnScheme, Method: netsim.FullCheckpoint},
		{Name: "checksum", Scheme: topology.DefaultScheme, Method: netsim.Checksum},
	}
}

// Fig8Cores are the per-replica core counts of Figures 8 and 10.
func Fig8Cores() []int { return []int{1024, 4096, 16384, 65536} }

// variantModel builds the netsim model for a variant at an allocation.
func variantModel(coresPerReplica int, v Variant) (*netsim.Model, error) {
	alloc, err := topology.NewAllocation(coresPerReplica)
	if err != nil {
		return nil, err
	}
	m, err := topology.NewMapping(alloc.Torus, v.Scheme, v.Chunk)
	if err != nil {
		return nil, err
	}
	return netsim.New(m, netsim.BGPParams()), nil
}

// Fig8Row is one bar of Figure 8: the single-checkpoint overhead
// decomposition for one app, allocation, and variant.
type Fig8Row struct {
	App             string
	CoresPerReplica int
	Variant         string
	Cost            netsim.CheckpointCost
}

// Fig8 computes the single-checkpoint overhead for every app variant of
// Table 2 across allocations and methods.
func Fig8() ([]Fig8Row, error) {
	var out []Fig8Row
	for _, spec := range apps.Table2() {
		bytesPerNode := spec.CheckpointBytesPerCore * topology.CoresPerNode
		for _, cores := range Fig8Cores() {
			for _, v := range Fig8Variants() {
				nm, err := variantModel(cores, v)
				if err != nil {
					return nil, err
				}
				out = append(out, Fig8Row{
					App:             spec.Name,
					CoresPerReplica: cores,
					Variant:         v.Name,
					Cost:            nm.Checkpoint(bytesPerNode, v.Method, spec.Scattered),
				})
			}
		}
	}
	return out, nil
}

// FprintFig8 renders Figure 8 in the paper's decomposition (local
// checkpoint / transfer / comparison).
func FprintFig8(w io.Writer) error {
	rows, err := Fig8()
	if err != nil {
		return err
	}
	writeHeader(w, "Figure 8: single-checkpoint overhead decomposition (seconds)")
	fmt.Fprintf(w, "%-18s %8s %-9s %8s %9s %9s %9s\n",
		"app", "cores/R", "variant", "local", "transfer", "compare", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8d %-9s %8.3f %9.3f %9.3f %9.3f\n",
			r.App, r.CoresPerReplica, r.Variant,
			r.Cost.Local, r.Cost.Transfer, r.Cost.Compare, r.Cost.Total())
	}
	return nil
}

// Fig10Row is one bar of Figure 10: the single-restart overhead
// decomposition for one app, allocation, and recovery variant.
type Fig10Row struct {
	App             string
	CoresPerReplica int
	Variant         string // "strong", "medium (default|mixed|column)"
	Cost            netsim.RestartCost
}

// Fig10 computes the restart overhead for every app: the strong scheme
// (one buddy-to-spare message, mapping-insensitive) versus the medium/weak
// scheme (all-buddies transfer) under the three mappings.
func Fig10() ([]Fig10Row, error) {
	variants := []struct {
		name   string
		scheme topology.Scheme
		chunk  int
		rs     netsim.RestartScheme
	}{
		{"strong", topology.DefaultScheme, 0, netsim.StrongRestart},
		{"medium (default)", topology.DefaultScheme, 0, netsim.MediumRestart},
		{"medium (mixed)", topology.MixedScheme, 2, netsim.MediumRestart},
		{"medium (column)", topology.ColumnScheme, 0, netsim.MediumRestart},
	}
	var out []Fig10Row
	for _, spec := range apps.Table2() {
		bytesPerNode := spec.CheckpointBytesPerCore * topology.CoresPerNode
		for _, cores := range Fig8Cores() {
			for _, v := range variants {
				nm, err := variantModel(cores, Variant{Scheme: v.scheme, Chunk: v.chunk})
				if err != nil {
					return nil, err
				}
				out = append(out, Fig10Row{
					App:             spec.Name,
					CoresPerReplica: cores,
					Variant:         v.name,
					Cost:            nm.Restart(bytesPerNode, v.rs, spec.Scattered),
				})
			}
		}
	}
	return out, nil
}

// FprintFig10 renders Figure 10.
func FprintFig10(w io.Writer) error {
	rows, err := Fig10()
	if err != nil {
		return err
	}
	writeHeader(w, "Figure 10: single-restart overhead decomposition (seconds)")
	fmt.Fprintf(w, "%-18s %8s %-17s %9s %14s %9s\n",
		"app", "cores/R", "variant", "transfer", "reconstruction", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8d %-17s %9.3f %14.3f %9.3f\n",
			r.App, r.CoresPerReplica, r.Variant,
			r.Cost.Transfer, r.Cost.Reconstruction, r.Cost.Total())
	}
	return nil
}

// Fig9Variants are the bars of Figures 9 and 11: mapping optimization with
// and without the checksum method.
func Fig9Variants() []Variant {
	return []Variant{
		{Name: "default", Scheme: topology.DefaultScheme, Method: netsim.FullCheckpoint},
		{Name: "default+checksum", Scheme: topology.DefaultScheme, Method: netsim.Checksum},
		{Name: "column", Scheme: topology.ColumnScheme, Method: netsim.FullCheckpoint},
		{Name: "column+checksum", Scheme: topology.ColumnScheme, Method: netsim.Checksum},
	}
}

// Fig9Sockets are the per-replica socket counts of Figures 9 and 11.
func Fig9Sockets() []int { return []int{1024, 4096, 16384} }

// Fig9Apps are the two applications of Figures 9 and 11.
func Fig9Apps() []string { return []string{"Jacobi3D Charm++", "LeanMD"} }

// OverheadRow is one bar of Figure 9 (forward-path) or Figure 11
// (overall): the per-replica overhead percentage at the model-optimal
// checkpoint period.
type OverheadRow struct {
	App               string
	SocketsPerReplica int
	Scheme            model.Scheme
	Variant           string
	Tau               float64 // optimal checkpoint period, seconds
	Delta             float64 // per-checkpoint cost, seconds
	OverheadPct       float64
}

// overheadParams builds the §5 model point for Figures 9/11: 24-hour job,
// MH = 50 years/socket, SDC rate 10,000 FIT/socket (§6.2).
func overheadParams(sockets int, delta, rh, rs float64) model.Params {
	return model.Params{
		W:                   24 * 3600,
		Delta:               delta,
		RH:                  rh,
		RS:                  rs,
		SocketsPerReplica:   sockets,
		HardMTBFSocketYears: 50,
		SDCFITPerSocket:     10000,
	}
}

// fig9and11 computes both overhead figures; forward selects Figure 9
// (checkpoint overhead only) versus Figure 11 (total overhead including
// restart and rework).
func fig9and11(forward bool) ([]OverheadRow, error) {
	var out []OverheadRow
	for _, appName := range Fig9Apps() {
		spec, err := apps.SpecByName(appName)
		if err != nil {
			return nil, err
		}
		bytesPerNode := spec.CheckpointBytesPerCore * topology.CoresPerNode
		for _, sockets := range Fig9Sockets() {
			cores := sockets * topology.CoresPerNode
			for _, v := range Fig9Variants() {
				nm, err := variantModel(cores, v)
				if err != nil {
					return nil, err
				}
				delta := nm.Checkpoint(bytesPerNode, v.Method, spec.Scattered).Total()
				// Restart costs: hard errors use the scheme's restart
				// path; SDC rollbacks are local reconstructions.
				for _, sch := range model.Schemes() {
					rs := nm.Restart(bytesPerNode, netsim.StrongRestart, spec.Scattered).Reconstruction
					var rh float64
					switch sch {
					case model.Strong:
						rh = nm.Restart(bytesPerNode, netsim.StrongRestart, spec.Scattered).Total()
					default:
						rh = nm.Restart(bytesPerNode, netsim.MediumRestart, spec.Scattered).Total()
					}
					p := overheadParams(sockets, delta, rh, rs)
					tau, err := p.OptimalTau(sch)
					if err != nil {
						return nil, err
					}
					var overhead float64
					if forward {
						overhead = delta / tau * 100
					} else {
						total, err := p.TotalTime(sch, tau)
						if err != nil {
							return nil, err
						}
						overhead = (total/p.W - 1) * 100
					}
					out = append(out, OverheadRow{
						App:               spec.Name,
						SocketsPerReplica: sockets,
						Scheme:            sch,
						Variant:           v.Name,
						Tau:               tau,
						Delta:             delta,
						OverheadPct:       overhead,
					})
				}
			}
		}
	}
	return out, nil
}

// Fig9 computes the forward-path (checkpoint) overhead percentages.
func Fig9() ([]OverheadRow, error) { return fig9and11(true) }

// Fig11 computes the overall overhead percentages (checkpoint + restart +
// rework).
func Fig11() ([]OverheadRow, error) { return fig9and11(false) }

func fprintOverhead(w io.Writer, title string, rows []OverheadRow) {
	writeHeader(w, title)
	fmt.Fprintf(w, "%-18s %9s %-8s %-17s %9s %9s %10s\n",
		"app", "sockets/R", "scheme", "variant", "delta(s)", "tau(s)", "overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %9d %-8s %-17s %9.3f %9.1f %9.3f%%\n",
			r.App, r.SocketsPerReplica, r.Scheme, r.Variant, r.Delta, r.Tau, r.OverheadPct)
	}
}

// FprintFig9 renders Figure 9.
func FprintFig9(w io.Writer) error {
	rows, err := Fig9()
	if err != nil {
		return err
	}
	fprintOverhead(w, "Figure 9: ACR forward-path overhead per replica (optimal period, SDC=10000 FIT)", rows)
	return nil
}

// FprintFig11 renders Figure 11.
func FprintFig11(w io.Writer) error {
	rows, err := Fig11()
	if err != nil {
		return err
	}
	fprintOverhead(w, "Figure 11: ACR overall overhead per replica (checkpoint + restart + rework)", rows)
	return nil
}

// FprintTable2 renders Table 2.
func FprintTable2(w io.Writer) {
	writeHeader(w, "Table 2: mini-application configuration (per core)")
	fmt.Fprintf(w, "%-18s %-7s %-24s %10s %s\n", "benchmark", "model", "configuration", "ckpt/core", "memory pressure")
	for _, s := range apps.Table2() {
		pressure := "low"
		if s.HighMemoryPressure {
			pressure = "high"
		}
		fmt.Fprintf(w, "%-18s %-7s %-24s %9.1fMB %s\n",
			s.Name, s.Model, s.Config, s.CheckpointBytesPerCore/1e6, pressure)
	}
}

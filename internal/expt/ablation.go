package expt

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"acr/internal/apps"
	"acr/internal/failure"
	"acr/internal/model"
	"acr/internal/netsim"
	"acr/internal/sim"
	"acr/internal/topology"
)

// This file contains the ablation studies for the design choices the paper
// argues for (§2.2, §3, §4.2):
//
//   - adaptive versus fixed checkpoint interval under non-Poisson failures;
//   - dual redundancy versus TMR as the SDC rate grows;
//   - blocking versus semi-blocking (overlapped) checkpoint rounds;
//   - in-memory buddy checkpoints versus a parallel file system.

// AdaptiveAblationConfig parameterizes the interval ablation.
type AdaptiveAblationConfig struct {
	Horizon  float64
	Delta    float64 // checkpoint cost, seconds
	Recovery float64 // restart cost after a failure
	Failures int
	Shape    float64 // power-law shape (< 1: decreasing rate)
	Seeds    int
	MinTau   float64
	MaxTau   float64
}

// DefaultAdaptiveAblationConfig uses a denser failure regime than the
// Figure 12 demonstration: with only 19 failures the expected gain from
// adapting the interval is smaller than the estimator noise of any online
// policy (checkpoint-period cost curves are famously flat near their
// optimum), so the ablation measures where adaptivity genuinely pays —
// long runs with many bursty failures.
func DefaultAdaptiveAblationConfig() AdaptiveAblationConfig {
	return AdaptiveAblationConfig{
		Horizon:  3600,
		Delta:    0.5,
		Recovery: 1,
		Failures: 60,
		Shape:    0.5,
		Seeds:    40,
		MinTau:   1,
		MaxTau:   120,
	}
}

// AblationRun is one policy's aggregate outcome over the seeds.
type AblationRun struct {
	Policy         string
	Checkpoints    float64 // mean per run
	ReworkSeconds  float64 // mean work lost to rollbacks
	UsefulFraction float64 // mean
}

// simulateInterval executes one classic checkpoint/rollback run on the
// virtual clock: failures roll the state back to the last completed
// checkpoint (rework = time since it), recovery costs Recovery, and the
// checkpoint period is either fixed or re-derived from the fitted current
// MTBF after every failure.
func simulateInterval(cfg AdaptiveAblationConfig, schedule failure.Schedule, adaptive bool, fixedTau float64) (ckpts int, rework, overhead float64) {
	eng := sim.NewEngine()
	eng.Horizon = cfg.Horizon
	var hist failure.History
	tau := fixedTau
	lastSafe := 0.0 // progress point of the last committed checkpoint
	var ckptEv *sim.Event
	var schedule2 func(e *sim.Engine, after float64)
	clamp := func(x float64) float64 { return math.Min(cfg.MaxTau, math.Max(cfg.MinTau, x)) }
	checkpoint := func(e *sim.Engine) {
		ckpts++
		overhead += cfg.Delta
		lastSafe = e.Now()
		schedule2(e, tau+cfg.Delta)
	}
	schedule2 = func(e *sim.Engine, after float64) {
		if e.Now()+after > cfg.Horizon {
			return
		}
		ckptEv = e.After(after, checkpoint)
	}
	schedule2(eng, tau+cfg.Delta)
	for _, ft := range schedule {
		ft := ft
		if ft > cfg.Horizon {
			break
		}
		eng.At(ft, func(e *sim.Engine) {
			lost := e.Now() - lastSafe
			if lost < 0 {
				lost = 0 // failure during the recovery window itself
			}
			rework += lost
			overhead += lost + cfg.Recovery
			// Unsaved work now accumulates from the resume point; the
			// committed state itself is unchanged.
			lastSafe = e.Now() + cfg.Recovery
			hist.Record(e.Now())
			if adaptive {
				if m, ok := hist.CurrentMTBF(e.Now()); ok {
					tau = clamp(math.Sqrt(2 * cfg.Delta * m))
				}
			}
			e.Cancel(ckptEv)
			schedule2(e, cfg.Recovery+tau+cfg.Delta)
		})
	}
	eng.Run()
	return ckpts, rework, overhead
}

// AdaptiveVsFixed compares the adaptive interval against the best static
// Young/Daly interval (derived from the run's overall mean MTBF) over many
// seeded failure schedules.
func AdaptiveVsFixed(cfg AdaptiveAblationConfig) (adaptive, fixed AblationRun) {
	adaptive.Policy = "adaptive"
	fixed.Policy = "fixed"
	meanMTBF := cfg.Horizon / float64(cfg.Failures)
	fixedTau := math.Min(cfg.MaxTau, math.Max(cfg.MinTau, math.Sqrt(2*cfg.Delta*meanMTBF)))
	for seed := 0; seed < cfg.Seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) + 100))
		schedule := failure.FixedCountPowerLawSchedule(cfg.Shape, cfg.Failures, cfg.Horizon, rng)
		ca, ra, oa := simulateInterval(cfg, schedule, true, fixedTau)
		cf, rf, of := simulateInterval(cfg, schedule, false, fixedTau)
		adaptive.Checkpoints += float64(ca)
		adaptive.ReworkSeconds += ra
		adaptive.UsefulFraction += (cfg.Horizon - oa) / cfg.Horizon
		fixed.Checkpoints += float64(cf)
		fixed.ReworkSeconds += rf
		fixed.UsefulFraction += (cfg.Horizon - of) / cfg.Horizon
	}
	n := float64(cfg.Seeds)
	adaptive.Checkpoints /= n
	adaptive.ReworkSeconds /= n
	adaptive.UsefulFraction /= n
	fixed.Checkpoints /= n
	fixed.ReworkSeconds /= n
	fixed.UsefulFraction /= n
	return adaptive, fixed
}

// RedundancyAblationRow is one SDC-rate point of the dual-vs-TMR sweep.
type RedundancyAblationRow struct {
	FIT      float64
	DualUtil float64
	TMRUtil  float64
	TMRWins  bool
}

// DualVsTMRSweep evaluates §3.4's trade-off across SDC rates at 64K
// sockets per replica.
func DualVsTMRSweep() ([]RedundancyAblationRow, float64, error) {
	base := model.Params{
		W:                   24 * 3600,
		Delta:               15,
		RH:                  30,
		RS:                  10,
		SocketsPerReplica:   65536,
		HardMTBFSocketYears: 50,
	}
	var rows []RedundancyAblationRow
	for _, fit := range []float64{10, 100, 1000, 1e4, 1e5, 1e6, 3e6} {
		p := base
		p.SDCFITPerSocket = fit
		cmp, err := p.CompareRedundancy()
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, RedundancyAblationRow{
			FIT:      fit,
			DualUtil: cmp.DualUtil,
			TMRUtil:  cmp.TMRUtil,
			TMRWins:  cmp.TMRWins,
		})
	}
	cross, err := base.SDCCrossoverFIT(3e6)
	if err != nil {
		return nil, 0, err
	}
	return rows, cross, nil
}

// SemiBlockingRow is one app's blocking-vs-overlapped comparison.
type SemiBlockingRow struct {
	App             string
	BlockingSeconds float64 // application pause, blocking round
	SemiSeconds     float64 // application pause, overlapped round
	HiddenFraction  float64 // share of the round moved off the critical path
}

// SemiBlockingAblation evaluates the §4.2 asynchronous-checkpointing
// optimization for every Table 2 app at 64K cores/replica under the
// default mapping.
func SemiBlockingAblation() ([]SemiBlockingRow, error) {
	alloc, err := topology.NewAllocation(65536)
	if err != nil {
		return nil, err
	}
	m, err := topology.NewMapping(alloc.Torus, topology.DefaultScheme, 0)
	if err != nil {
		return nil, err
	}
	nm := netsim.New(m, netsim.BGPParams())
	var rows []SemiBlockingRow
	for _, spec := range apps.Table2() {
		bytes := spec.CheckpointBytesPerCore * topology.CoresPerNode
		full := nm.Checkpoint(bytes, netsim.FullCheckpoint, spec.Scattered)
		semi := nm.SemiBlocking(bytes, netsim.FullCheckpoint, spec.Scattered)
		rows = append(rows, SemiBlockingRow{
			App:             spec.Name,
			BlockingSeconds: full.Total(),
			SemiSeconds:     semi.Blocking,
			HiddenFraction:  1 - semi.Blocking/full.Total(),
		})
	}
	return rows, nil
}

// DiskAblation compares in-memory ACR with PFS checkpointing across
// machine sizes (the §1 motivation), using the Jacobi3D footprint.
func DiskAblation() ([]model.DiskVsMemoryPoint, error) {
	spec, err := apps.SpecByName("Jacobi3D Charm++")
	if err != nil {
		return nil, err
	}
	disk := model.DiskSystem{
		AggregateBandwidth: 60e9, // Intrepid-class PFS: tens of GB/s
		BytesPerSocket:     spec.CheckpointBytesPerCore * topology.CoresPerNode,
	}
	base := model.BaselineParams{
		W:                   120 * 3600,
		RH:                  30,
		HardMTBFSocketYears: 50,
		SDCFITPerSocket:     100,
	}
	// In-memory delta: the buddy exchange at the corresponding scale.
	alloc, err := topology.NewAllocation(65536)
	if err != nil {
		return nil, err
	}
	mapping, err := topology.NewMapping(alloc.Torus, topology.DefaultScheme, 0)
	if err != nil {
		return nil, err
	}
	memDelta := netsim.New(mapping, netsim.BGPParams()).
		Checkpoint(disk.BytesPerSocket, netsim.FullCheckpoint, false).Total()
	return model.DiskVsMemory(disk, memDelta, base, []int{4096, 16384, 65536, 262144, 1048576})
}

// FprintAblations renders all four ablation studies.
func FprintAblations(w io.Writer) error {
	writeHeader(w, "Ablation A: adaptive vs fixed checkpoint interval (power-law failures)")
	ad, fx := AdaptiveVsFixed(DefaultAdaptiveAblationConfig())
	fmt.Fprintf(w, "%-9s %12s %12s %15s\n", "policy", "checkpoints", "rework(s)", "useful fraction")
	for _, r := range []AblationRun{ad, fx} {
		fmt.Fprintf(w, "%-9s %12.1f %12.1f %14.2f%%\n", r.Policy, r.Checkpoints, r.ReworkSeconds, r.UsefulFraction*100)
	}

	writeHeader(w, "Ablation B: dual redundancy vs TMR across SDC rates (64K sockets/replica)")
	rows, cross, err := DualVsTMRSweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %10s %10s %8s\n", "FIT/socket", "dual util", "TMR util", "winner")
	for _, r := range rows {
		winner := "dual"
		if r.TMRWins {
			winner = "TMR"
		}
		fmt.Fprintf(w, "%10.0f %10.3f %10.3f %8s\n", r.FIT, r.DualUtil, r.TMRUtil, winner)
	}
	fmt.Fprintf(w, "crossover at ~%.0f FIT/socket\n", cross)

	writeHeader(w, "Ablation C: blocking vs semi-blocking checkpoint rounds (64K cores/replica, default mapping)")
	semis, err := SemiBlockingAblation()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %12s %12s %8s\n", "app", "blocking(s)", "overlap(s)", "hidden")
	for _, r := range semis {
		fmt.Fprintf(w, "%-18s %12.3f %12.3f %7.0f%%\n", r.App, r.BlockingSeconds, r.SemiSeconds, r.HiddenFraction*100)
	}

	writeHeader(w, "Ablation D: in-memory buddy checkpoints vs parallel file system (Jacobi3D footprint)")
	pts, err := DiskAblation()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %12s %12s %10s %10s\n", "sockets", "disk d(s)", "memory d(s)", "disk util", "ACR util")
	for _, p := range pts {
		fmt.Fprintf(w, "%10d %12.1f %12.3f %10.3f %10.3f\n", p.Sockets, p.DiskDelta, p.MemoryDelta, p.DiskUtil, p.ACRUtil)
	}
	return nil
}

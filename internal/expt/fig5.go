package expt

import (
	"fmt"
	"io"
	"time"

	"acr/internal/apps"
	"acr/internal/core"
	"acr/internal/trace"
)

// Fig5Scenario is one panel of Figure 5: a live ACR run of Jacobi3D under
// one reliability configuration with a single injected hard error.
type Fig5Scenario struct {
	Name     string
	Scheme   core.Scheme
	Periodic bool // false = hard-error-only protection (panel a)
}

// Fig5Scenarios lists the four panels.
func Fig5Scenarios() []Fig5Scenario {
	return []Fig5Scenario{
		{Name: "(a) hard-error protection only", Scheme: core.Medium, Periodic: false},
		{Name: "(b) strong resilience", Scheme: core.Strong, Periodic: true},
		{Name: "(c) medium resilience", Scheme: core.Medium, Periodic: true},
		{Name: "(d) weak resilience", Scheme: core.Weak, Periodic: true},
	}
}

// Fig5Run executes one scenario live (milliseconds instead of minutes) and
// returns the control-flow events plus the run statistics.
type Fig5Run struct {
	Scenario Fig5Scenario
	Events   []trace.Event
	Stats    core.Stats
}

// Fig5 runs all four scenarios of the control-flow figure.
func Fig5() ([]Fig5Run, error) {
	var out []Fig5Run
	for _, sc := range Fig5Scenarios() {
		tl := &trace.Timeline{}
		cfg := core.Config{
			NodesPerReplica:   2,
			TasksPerNode:      2,
			Spares:            1,
			Factory:           apps.JacobiFactory(500),
			Scheme:            sc.Scheme,
			Comparison:        core.FullCompare,
			HeartbeatInterval: time.Millisecond,
			HeartbeatTimeout:  8 * time.Millisecond,
			Timeline:          tl,
		}
		if sc.Periodic {
			cfg.CheckpointInterval = 8 * time.Millisecond
		}
		ctrl, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		go func() {
			time.Sleep(20 * time.Millisecond)
			ctrl.KillNode(1, 0) // replica 2 crashes, as in the figure
		}()
		stats, err := ctrl.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Run{Scenario: sc, Events: tl.Events(), Stats: stats})
	}
	return out, nil
}

// FprintFig5 renders the control flow of each scenario.
func FprintFig5(w io.Writer) error {
	runs, err := Fig5()
	if err != nil {
		return err
	}
	writeHeader(w, "Figure 5: ACR control flow under different reliability requirements (live run)")
	for _, r := range runs {
		fmt.Fprintf(w, "%s  [checkpoints=%d hard-errors=%d rollbacks=%d]\n",
			r.Scenario.Name, r.Stats.Checkpoints, r.Stats.HardErrors, r.Stats.Rollbacks)
		for _, e := range r.Events {
			if e.Kind == trace.Progress {
				continue
			}
			fmt.Fprintf(w, "    t=%8.4fs %-10s %s\n", e.Time, e.Kind, e.Detail)
		}
	}
	return nil
}

package expt

import (
	"fmt"
	"io"
	"strings"

	"acr/internal/model"
)

// Figure 4 shows the progress-versus-time charts of the three resilience
// schemes around one hard error. This reproduction integrates the same
// dynamics on a virtual clock: both replicas advance at unit rate, pause
// delta for every coordinated checkpoint, and react to a crash of replica 2
// per the scheme:
//
//   - strong: replica 2 rolls back to the last checkpoint and re-executes;
//     replica 1, having reached the next checkpoint period, waits for it;
//   - medium: replica 1 checkpoints immediately and replica 2 resumes from
//     replica 1's progress after the transfer;
//   - weak: replica 2 idles until replica 1's next periodic checkpoint and
//     resumes from there.

// Fig4Config parameterizes the progress-chart runs.
type Fig4Config struct {
	Work     float64 // total progress units to complete
	Tau      float64 // checkpoint period (progress units between cuts)
	Delta    float64 // checkpoint pause
	Recovery float64 // checkpoint transfer + restart time
	CrashAt  float64 // time of the hard error in replica 2
	SampleDt float64 // chart sampling step
}

// DefaultFig4Config mirrors the figure's qualitative setup: the crash lands
// mid-period so strong has substantial rework.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{Work: 100, Tau: 20, Delta: 1, Recovery: 2, CrashAt: 33, SampleDt: 0.5}
}

// Fig4Series is the sampled progress of both replicas for one scheme.
type Fig4Series struct {
	Scheme     model.Scheme
	Times      []float64
	Progress1  []float64 // healthy replica
	Progress2  []float64 // crashed replica
	Completion float64   // time both replicas finish Work
	Rework     float64   // progress units re-executed by replica 2
}

// fig4state integrates one scheme's dynamics with explicit piecewise
// simulation. Progress advances at rate 1 except during checkpoint pauses,
// recovery idle windows, and post-rollback re-execution (which IS progress,
// but repeated — accounted as rework).
func fig4run(cfg Fig4Config, scheme model.Scheme) Fig4Series {
	s := Fig4Series{Scheme: scheme}
	type rep struct {
		progress float64
		idleTill float64 // absolute time until which the replica is paused
	}
	r1 := &rep{}
	r2 := &rep{}
	lastCkptProgress := 0.0
	nextCkptProgress := cfg.Tau
	crashed := false
	recovered := true
	var crashHandledAt float64
	_ = crashHandledAt

	dt := cfg.SampleDt
	record := func(t float64) {
		s.Times = append(s.Times, t)
		s.Progress1 = append(s.Progress1, r1.progress)
		s.Progress2 = append(s.Progress2, r2.progress)
	}
	record(0)
	for t := dt; t < 100000; t += dt {
		// Crash event.
		if !crashed && t >= cfg.CrashAt {
			crashed = true
			recovered = false
			switch scheme {
			case model.Strong:
				// Replica 2 rolls back to the last checkpoint and
				// restarts after Recovery (one buddy-to-spare message).
				s.Rework += r2.progress - lastCkptProgress
				r2.progress = lastCkptProgress
				r2.idleTill = t + cfg.Recovery
				recovered = true // re-executes on its own from here
			case model.Medium:
				// Replica 1 checkpoints immediately; replica 2 resumes
				// from replica 1's progress after delta + Recovery.
				r1.idleTill = t + cfg.Delta
				lastCkptProgress = r1.progress
				r2.progress = r1.progress
				r2.idleTill = t + cfg.Delta + cfg.Recovery
				recovered = true
			case model.Weak:
				// Replica 2 idles; recovery happens at the next
				// periodic checkpoint of replica 1.
				r2.idleTill = 1e18
			}
		}
		// Weak-scheme deferred recovery: when replica 1 reaches the next
		// checkpoint boundary, it ships the checkpoint.
		if crashed && !recovered && scheme == model.Weak && r1.progress >= nextCkptProgress {
			r1.idleTill = t + cfg.Delta
			lastCkptProgress = r1.progress
			r2.progress = r1.progress
			r2.idleTill = t + cfg.Delta + cfg.Recovery
			recovered = true
			nextCkptProgress += cfg.Tau
		}
		// Periodic coordinated checkpoints: both replicas must reach the
		// boundary; the slower one gates the cut (replica 1 waits parked
		// at the boundary — the strong scheme's "replica 1 waits").
		if recovered && r1.progress >= nextCkptProgress && r2.progress >= nextCkptProgress {
			lastCkptProgress = nextCkptProgress
			nextCkptProgress += cfg.Tau
			r1.idleTill = t + cfg.Delta
			r2.idleTill = t + cfg.Delta
		}
		// Advance.
		advance := func(r *rep, gate bool) {
			if t < r.idleTill {
				return
			}
			// Parked at the checkpoint boundary waiting for the buddy.
			if gate && recovered && r.progress >= nextCkptProgress {
				return
			}
			if r.progress < cfg.Work {
				r.progress += dt
			}
		}
		advance(r1, true)
		advance(r2, true)
		record(t)
		if r1.progress >= cfg.Work && r2.progress >= cfg.Work {
			s.Completion = t
			break
		}
	}
	return s
}

// Fig4 produces the three progress charts.
func Fig4() []Fig4Series {
	cfg := DefaultFig4Config()
	out := make([]Fig4Series, 0, 3)
	for _, sch := range model.Schemes() {
		out = append(out, fig4run(cfg, sch))
	}
	return out
}

// sparkline renders a progress series as an ASCII strip of height 1 using
// eighth steps.
func sparkline(vals []float64, maxVal float64, width int) string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	step := len(vals) / width
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(vals); i += step {
		frac := vals[i] / maxVal
		idx := int(frac * float64(len(glyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// FprintFig4 renders the three progress charts.
func FprintFig4(w io.Writer) {
	writeHeader(w, "Figure 4: replica progress around one hard error (crash in replica 2)")
	cfg := DefaultFig4Config()
	for _, s := range Fig4() {
		fmt.Fprintf(w, "%-7s completion=%.1f rework=%.1f\n", s.Scheme, s.Completion, s.Rework)
		fmt.Fprintf(w, "  replica1 %s\n", sparkline(s.Progress1, cfg.Work, 100))
		fmt.Fprintf(w, "  replica2 %s\n", sparkline(s.Progress2, cfg.Work, 100))
	}
}

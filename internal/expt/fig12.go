package expt

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"acr/internal/apps"
	"acr/internal/failure"
	"acr/internal/netsim"
	"acr/internal/sim"
	"acr/internal/topology"
	"acr/internal/trace"
)

// Fig12Config parameterizes the adaptivity experiment: a 30-minute
// Jacobi3D run on 512 cores with 19 failures injected from a
// decreasing-rate Weibull-class process (shape 0.6), §6.4.
type Fig12Config struct {
	Horizon         float64 // seconds (paper: 1800)
	Failures        int     // paper: 19
	Shape           float64 // paper: 0.6
	CoresPerReplica int     // paper: 512 cores total -> 256 per replica
	Seed            int64
	MinInterval     float64
	MaxInterval     float64
}

// DefaultFig12Config returns the paper's run configuration.
func DefaultFig12Config() Fig12Config {
	return Fig12Config{
		Horizon:         1800,
		Failures:        19,
		Shape:           0.6,
		CoresPerReplica: 256,
		Seed:            7,
		MinInterval:     1,
		MaxInterval:     120,
	}
}

// TauPoint records the adaptive checkpoint period in effect from a given
// time on.
type TauPoint struct {
	Time float64
	Tau  float64
}

// Fig12Result summarizes the adaptivity run.
type Fig12Result struct {
	Timeline        *trace.Timeline
	Delta           float64   // per-checkpoint cost used
	CheckpointTimes []float64 // absolute times of checkpoints
	FailureTimes    []float64
	TauTrace        []TauPoint // the adapted interval after each failure
	FirstInterval   float64    // interval in effect early in the run
	LastInterval    float64    // interval in effect at the end
	UsefulFraction  float64
}

// Fig12 runs the adaptivity experiment on the discrete-event clock: ACR
// checkpoints Jacobi3D at an interval re-derived from the fitted current
// MTBF after every failure. Failures early in the run are dense, so the
// interval starts short and stretches as the observed rate falls — the
// Figure 12 behaviour.
func Fig12(cfg Fig12Config) (*Fig12Result, error) {
	spec, err := apps.SpecByName("Jacobi3D Charm++")
	if err != nil {
		return nil, err
	}
	alloc, err := topology.NewAllocation(cfg.CoresPerReplica)
	if err != nil {
		return nil, err
	}
	mapping, err := topology.NewMapping(alloc.Torus, topology.DefaultScheme, 0)
	if err != nil {
		return nil, err
	}
	nm := netsim.New(mapping, netsim.BGPParams())
	bytesPerNode := spec.CheckpointBytesPerCore * topology.CoresPerNode
	delta := nm.Checkpoint(bytesPerNode, netsim.FullCheckpoint, spec.Scattered).Total()
	recovery := nm.Restart(bytesPerNode, netsim.MediumRestart, spec.Scattered).Total()

	rng := rand.New(rand.NewSource(cfg.Seed))
	schedule := failure.FixedCountPowerLawSchedule(cfg.Shape, cfg.Failures, cfg.Horizon, rng)

	res := &Fig12Result{Timeline: &trace.Timeline{}, Delta: delta}
	var hist failure.History
	interval := cfg.MaxInterval / 4 // initial guess before any failure data

	clamp := func(tau float64) float64 {
		return math.Min(cfg.MaxInterval, math.Max(cfg.MinInterval, tau))
	}

	eng := sim.NewEngine()
	eng.Horizon = cfg.Horizon
	overhead := 0.0
	var ckptEv *sim.Event
	var scheduleNext func(e *sim.Engine)
	checkpoint := func(e *sim.Engine) {
		res.Timeline.Add(e.Now(), trace.Checkpoint, "")
		res.CheckpointTimes = append(res.CheckpointTimes, e.Now())
		overhead += delta
		scheduleNext(e)
	}
	scheduleNext = func(e *sim.Engine) {
		if e.Now()+interval+delta > cfg.Horizon {
			return
		}
		ckptEv = e.After(interval+delta, checkpoint)
	}
	scheduleNext(eng)
	for _, ft := range schedule {
		ft := ft
		eng.At(ft, func(e *sim.Engine) {
			res.Timeline.Add(e.Now(), trace.Failure, "")
			res.FailureTimes = append(res.FailureTimes, e.Now())
			hist.Record(e.Now())
			if m, ok := hist.CurrentMTBF(e.Now()); ok {
				interval = clamp(math.Sqrt(2 * delta * m))
				res.TauTrace = append(res.TauTrace, TauPoint{Time: e.Now(), Tau: interval})
			}
			overhead += recovery
			res.Timeline.Add(e.Now()+recovery, trace.Restart, "")
			// Recovery (medium scheme) forces a fresh checkpoint of the
			// healthy replica and restarts the cadence from here.
			res.Timeline.Add(e.Now()+recovery, trace.Checkpoint, "recovery")
			res.CheckpointTimes = append(res.CheckpointTimes, e.Now()+recovery)
			overhead += delta
			e.Cancel(ckptEv)
			scheduleNext(e)
		})
	}
	eng.Run()

	// The paper reports the interval ACR *schedules*: dense at the start
	// (small tau while the observed rate is high), sparse at the end.
	if len(res.TauTrace) > 0 {
		k := 3
		if len(res.TauTrace) < k {
			k = len(res.TauTrace)
		}
		s := 0.0
		for _, tp := range res.TauTrace[:k] {
			s += tp.Tau
		}
		res.FirstInterval = s / float64(k)
		res.LastInterval = res.TauTrace[len(res.TauTrace)-1].Tau
	}
	res.UsefulFraction = (cfg.Horizon - overhead) / cfg.Horizon
	return res, nil
}

// FprintFig12 renders the adaptivity timeline in the style of Figure 12.
func FprintFig12(w io.Writer) error {
	cfg := DefaultFig12Config()
	res, err := Fig12(cfg)
	if err != nil {
		return err
	}
	writeHeader(w, "Figure 12: adaptivity of ACR to a decreasing failure rate (Jacobi3D, 30 min, 19 Weibull(0.6) failures)")
	fmt.Fprintf(w, "timeline ('=' work, '|' checkpoint, 'X' failure, 'R' restart):\n%s\n",
		res.Timeline.Render(cfg.Horizon, 120))
	fmt.Fprintf(w, "checkpoints=%d failures=%d delta=%.2fs\n",
		len(res.CheckpointTimes), len(res.FailureTimes), res.Delta)
	fmt.Fprintf(w, "checkpoint interval: %.1fs at the beginning -> %.1fs at the end (useful fraction %.1f%%)\n",
		res.FirstInterval, res.LastInterval, res.UsefulFraction*100)
	return nil
}

package expt

import (
	"fmt"
	"io"

	"acr/internal/model"
)

// Fig7Row is one x-axis point of Figure 7: per-scheme utilization and
// undetected-SDC probability for one socket count and checkpoint time.
type Fig7Row struct {
	SocketsPerReplica int
	Delta             float64 // seconds

	Tau        map[model.Scheme]float64
	Util       map[model.Scheme]float64
	Undetected map[model.Scheme]float64
}

// Fig7Sockets are the x-axis values (1K to 256K sockets per replica).
func Fig7Sockets() []int {
	return []int{1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144}
}

// Fig7Deltas are the two checkpoint times of Figure 7 (15 s and 180 s).
func Fig7Deltas() []float64 { return []float64{15, 180} }

// Fig7 evaluates the §5 model at every Figure 7 point: MH = 50 years per
// socket, SDC rate 100 FIT per socket, 24-hour job.
func Fig7() ([]Fig7Row, error) {
	var out []Fig7Row
	for _, delta := range Fig7Deltas() {
		for _, s := range Fig7Sockets() {
			p := model.Params{
				W:                   24 * 3600,
				Delta:               delta,
				RH:                  30,
				RS:                  10,
				SocketsPerReplica:   s,
				HardMTBFSocketYears: 50,
				SDCFITPerSocket:     100,
			}
			row := Fig7Row{
				SocketsPerReplica: s,
				Delta:             delta,
				Tau:               map[model.Scheme]float64{},
				Util:              map[model.Scheme]float64{},
				Undetected:        map[model.Scheme]float64{},
			}
			for _, sch := range model.Schemes() {
				tau, util, err := p.Utilization(sch)
				if err != nil {
					return nil, fmt.Errorf("fig7 at %d sockets delta %.0f: %w", s, delta, err)
				}
				und, err := p.UndetectedSDCProb(sch, tau)
				if err != nil {
					return nil, err
				}
				row.Tau[sch] = tau
				row.Util[sch] = util
				row.Undetected[sch] = und
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// FprintFig7 renders both panels of Figure 7.
func FprintFig7(w io.Writer) error {
	rows, err := Fig7()
	if err != nil {
		return err
	}
	writeHeader(w, "Figure 7a: utilization at the optimal checkpoint period (MH=50y/socket, SDC=100 FIT)")
	fmt.Fprintf(w, "%8s %6s | %8s %8s %8s\n", "sockets", "delta", "strong", "medium", "weak")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %5.0fs | %8.3f %8.3f %8.3f\n",
			r.SocketsPerReplica, r.Delta, r.Util[model.Strong], r.Util[model.Medium], r.Util[model.Weak])
	}
	writeHeader(w, "Figure 7b: probability of undetected SDC (24 h job)")
	fmt.Fprintf(w, "%8s %6s | %10s %10s %10s\n", "sockets", "delta", "strong", "medium", "weak")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %5.0fs | %10.4f %10.4f %10.4f\n",
			r.SocketsPerReplica, r.Delta, r.Undetected[model.Strong], r.Undetected[model.Medium], r.Undetected[model.Weak])
	}
	return nil
}

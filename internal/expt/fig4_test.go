package expt

import (
	"bytes"
	"strings"
	"testing"

	"acr/internal/model"
)

func fig4ByScheme(t *testing.T) map[model.Scheme]Fig4Series {
	t.Helper()
	out := map[model.Scheme]Fig4Series{}
	for _, s := range Fig4() {
		if s.Completion == 0 {
			t.Fatalf("%v never completed", s.Scheme)
		}
		out[s.Scheme] = s
	}
	if len(out) != 3 {
		t.Fatal("missing schemes")
	}
	return out
}

// The Figure 4 narrative: strong re-executes the most and finishes last;
// weak does no rework and (with large rework times) finishes first;
// medium sits between, also with no re-execution.
func TestFig4SchemeOrdering(t *testing.T) {
	s := fig4ByScheme(t)
	if s[model.Strong].Rework <= 0 {
		t.Error("strong must re-execute work")
	}
	if s[model.Medium].Rework != 0 || s[model.Weak].Rework != 0 {
		t.Error("medium and weak must avoid re-execution")
	}
	if !(s[model.Strong].Completion > s[model.Medium].Completion) {
		t.Errorf("strong (%.1f) should finish after medium (%.1f)",
			s[model.Strong].Completion, s[model.Medium].Completion)
	}
	if s[model.Weak].Completion > s[model.Strong].Completion {
		t.Errorf("weak (%.1f) should not finish after strong (%.1f)",
			s[model.Weak].Completion, s[model.Strong].Completion)
	}
}

// Progress curves are monotone except for the strong scheme's single
// rollback of replica 2.
func TestFig4ProgressShape(t *testing.T) {
	s := fig4ByScheme(t)
	countDrops := func(vals []float64) int {
		drops := 0
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1]-1e-12 {
				drops++
			}
		}
		return drops
	}
	for sch, ser := range s {
		if countDrops(ser.Progress1) != 0 {
			t.Errorf("%v: healthy replica progress must be monotone", sch)
		}
	}
	if countDrops(s[model.Strong].Progress2) != 1 {
		t.Error("strong: crashed replica must roll back exactly once")
	}
	if countDrops(s[model.Medium].Progress2) != 0 {
		t.Error("medium: crashed replica resumes from the healthy replica's progress (no visible drop below it)")
	}
	// Weak: replica 2 flatlines between the crash and the next periodic
	// checkpoint of replica 1.
	weak := s[model.Weak]
	cfg := DefaultFig4Config()
	flat := 0
	for i := 1; i < len(weak.Times); i++ {
		if weak.Times[i] > cfg.CrashAt && weak.Progress2[i] == weak.Progress2[i-1] && weak.Progress2[i] < cfg.Work {
			flat++
		}
	}
	if float64(flat)*cfg.SampleDt < cfg.Tau/4 {
		t.Errorf("weak: crashed replica should idle a substantial window, flat samples = %d", flat)
	}
	// Both replicas end at full progress everywhere.
	for sch, ser := range s {
		if ser.Progress1[len(ser.Progress1)-1] < cfg.Work || ser.Progress2[len(ser.Progress2)-1] < cfg.Work {
			t.Errorf("%v: replicas did not both finish", sch)
		}
	}
}

func TestFprintFig4(t *testing.T) {
	var buf bytes.Buffer
	FprintFig4(&buf)
	out := buf.String()
	for _, want := range []string{"strong", "medium", "weak", "replica1", "replica2", "rework"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 4 output missing %q", want)
		}
	}
}

package expt

import (
	"fmt"
	"io"

	"acr/internal/model"
)

// Fig1Point is one cell of the Figure 1 surfaces: utilization and
// SDC vulnerability for a 120-hour job at a given machine size and
// per-socket SDC rate, under the three protection regimes.
type Fig1Point struct {
	Sockets int
	FIT     float64

	NoFTUtil float64
	NoFTVuln float64
	CkptUtil float64
	CkptVuln float64
	ACRUtil  float64
	ACRVuln  float64 // always 0: strong resilience detects everything
}

// Fig1Sockets are the x-axis socket counts of Figure 1 (4K to 1M).
func Fig1Sockets() []int { return []int{4096, 16384, 65536, 262144, 1048576} }

// Fig1FITs are the SDC-rate axis values of Figure 1 (1 to 10000 FIT).
func Fig1FITs() []float64 { return []float64{1, 100, 10000} }

// Fig1 computes the three Figure 1 surfaces for a 120-hour job.
func Fig1() []Fig1Point {
	var out []Fig1Point
	for _, s := range Fig1Sockets() {
		for _, fit := range Fig1FITs() {
			b := model.BaselineParams{
				W:                   120 * 3600,
				Delta:               60,
				RH:                  30,
				Sockets:             s,
				HardMTBFSocketYears: 50,
				SDCFITPerSocket:     fit,
			}
			noftT := b.NoFTTime()
			_, ckptT := b.CheckpointOnlyTime()
			out = append(out, Fig1Point{
				Sockets:  s,
				FIT:      fit,
				NoFTUtil: b.NoFTUtilization(),
				NoFTVuln: b.Vulnerability(noftT),
				CkptUtil: b.CheckpointOnlyUtilization(),
				CkptVuln: b.Vulnerability(ckptT),
				ACRUtil:  b.ACRUtilization(),
				ACRVuln:  0,
			})
		}
	}
	return out
}

// FprintFig1 renders the Figure 1 surfaces.
func FprintFig1(w io.Writer) {
	writeHeader(w, "Figure 1: utilization and vulnerability, 120 h job (no FT / ckpt-only / ACR)")
	fmt.Fprintf(w, "%10s %8s | %9s %9s | %9s %9s | %9s %9s\n",
		"sockets", "FIT", "noFT-util", "noFT-vuln", "ckpt-util", "ckpt-vuln", "acr-util", "acr-vuln")
	for _, p := range Fig1() {
		fmt.Fprintf(w, "%10d %8.0f | %9.3f %9.3f | %9.3f %9.3f | %9.3f %9.3f\n",
			p.Sockets, p.FIT, p.NoFTUtil, p.NoFTVuln, p.CkptUtil, p.CkptVuln, p.ACRUtil, p.ACRVuln)
	}
}

package expt

import (
	"fmt"
	"io"
	"sort"

	"acr/internal/topology"
)

// Fig6Row summarizes the inter-replica checkpoint traffic of one mapping
// scheme on the 512-node (8x8x8) torus of Figure 6.
type Fig6Row struct {
	Scheme        topology.Scheme
	Chunk         int
	MaxLinkLoad   int
	TotalLinkHops int
	// Histogram maps a per-link message count to the number of links
	// carrying exactly that count (the link labels of Figure 6).
	Histogram map[int]int
}

// Fig6 computes the link-load structure of the three mappings.
func Fig6() []Fig6Row {
	tr, err := topology.NewTorus(8, 8, 8)
	if err != nil {
		panic(err) // static dimensions
	}
	cases := []struct {
		scheme topology.Scheme
		chunk  int
	}{
		{topology.DefaultScheme, 0},
		{topology.ColumnScheme, 0},
		{topology.MixedScheme, 2},
	}
	var out []Fig6Row
	for _, c := range cases {
		m, err := topology.NewMapping(tr, c.scheme, c.chunk)
		if err != nil {
			panic(err)
		}
		loads := m.BuddyLoads(1)
		out = append(out, Fig6Row{
			Scheme:        c.scheme,
			Chunk:         c.chunk,
			MaxLinkLoad:   loads.Max(),
			TotalLinkHops: loads.Total(),
			Histogram:     loads.Histogram(),
		})
	}
	return out
}

// FprintFig6 renders the mapping comparison.
func FprintFig6(w io.Writer) {
	writeHeader(w, "Figure 6: inter-replica link loads on an 8x8x8 torus (512 nodes)")
	for _, r := range Fig6() {
		fmt.Fprintf(w, "%-8s mapping: max link load %d, total link-hops %d, link-load histogram:",
			r.Scheme, r.MaxLinkLoad, r.TotalLinkHops)
		keys := make([]int, 0, len(r.Histogram))
		for k := range r.Histogram {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Fprintf(w, " %dx%d", r.Histogram[k], k)
		}
		fmt.Fprintln(w)
	}
}

package expt

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

// parseCSV reads back an emitted CSV and returns header + rows.
func parseCSV(t *testing.T, buf *bytes.Buffer) ([]string, [][]string) {
	t.Helper()
	r := csv.NewReader(buf)
	all, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatal("CSV has no data rows")
	}
	return all[0], all[1:]
}

func TestCSVAllFigures(t *testing.T) {
	wantRows := map[int]int{
		1:  len(Fig1Sockets()) * len(Fig1FITs()),
		6:  3,
		7:  len(Fig7Sockets()) * len(Fig7Deltas()) * 3,
		8:  6 * len(Fig8Cores()) * len(Fig8Variants()),
		9:  len(Fig9Apps()) * len(Fig9Sockets()) * len(Fig9Variants()) * 3,
		10: 6 * len(Fig8Cores()) * 4,
		11: len(Fig9Apps()) * len(Fig9Sockets()) * len(Fig9Variants()) * 3,
	}
	for fig, want := range wantRows {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, fig); err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
		header, rows := parseCSV(t, &buf)
		if len(rows) != want {
			t.Errorf("fig %d: %d rows, want %d", fig, len(rows), want)
		}
		for i, row := range rows {
			if len(row) != len(header) {
				t.Fatalf("fig %d row %d: %d fields, header has %d", fig, i, len(row), len(header))
			}
		}
	}
}

func TestCSVFig1Parseable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFig1CSV(&buf); err != nil {
		t.Fatal(err)
	}
	_, rows := parseCSV(t, &buf)
	for _, row := range rows {
		for col := 2; col < 8; col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("column %d not numeric: %q", col, row[col])
			}
			if v < 0 || v > 1 {
				t.Fatalf("utilization/vulnerability %v out of [0,1]", v)
			}
		}
	}
}

func TestCSVFig12Events(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 12); err != nil {
		t.Fatal(err)
	}
	_, rows := parseCSV(t, &buf)
	kinds := map[string]int{}
	for _, row := range rows {
		kinds[row[0]]++
	}
	if kinds["failure"] != 19 {
		t.Errorf("failures in CSV = %d, want 19", kinds["failure"])
	}
	if kinds["checkpoint"] < 10 || kinds["tau"] == 0 {
		t.Errorf("CSV incomplete: %v", kinds)
	}
}

func TestCSVFig4Series(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 4); err != nil {
		t.Fatal(err)
	}
	_, rows := parseCSV(t, &buf)
	schemes := map[string]int{}
	for _, row := range rows {
		schemes[row[0]]++
	}
	if len(schemes) != 3 {
		t.Fatalf("expected three schemes, got %v", schemes)
	}
	for sch, n := range schemes {
		if n < 50 {
			t.Errorf("%s series too short: %d samples", sch, n)
		}
	}
}

func TestCSVUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 99); err == nil {
		t.Fatal("unknown figure should error")
	}
	if err := WriteCSV(&buf, 5); err == nil {
		t.Fatal("figure 5 has no CSV form")
	}
}

package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"acr/internal/model"
)

// CSV emitters: machine-readable counterparts of the Fprint renderers, one
// row per plotted point, suitable for gnuplot/pandas. Only the
// deterministic (model/network) figures have CSV forms; the live Figure 5
// runs are event logs, not series.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// WriteFig1CSV emits the Figure 1 surfaces.
func WriteFig1CSV(w io.Writer) error {
	var rows [][]string
	for _, p := range Fig1() {
		rows = append(rows, []string{
			strconv.Itoa(p.Sockets), f(p.FIT),
			f(p.NoFTUtil), f(p.NoFTVuln),
			f(p.CkptUtil), f(p.CkptVuln),
			f(p.ACRUtil), f(p.ACRVuln),
		})
	}
	return writeCSV(w, []string{"sockets", "fit", "noft_util", "noft_vuln", "ckpt_util", "ckpt_vuln", "acr_util", "acr_vuln"}, rows)
}

// WriteFig4CSV emits the per-scheme progress series.
func WriteFig4CSV(w io.Writer) error {
	var rows [][]string
	for _, s := range Fig4() {
		for i := range s.Times {
			rows = append(rows, []string{
				s.Scheme.String(), f(s.Times[i]), f(s.Progress1[i]), f(s.Progress2[i]),
			})
		}
	}
	return writeCSV(w, []string{"scheme", "time", "progress_replica1", "progress_replica2"}, rows)
}

// WriteFig6CSV emits the mapping link-load summary.
func WriteFig6CSV(w io.Writer) error {
	var rows [][]string
	for _, r := range Fig6() {
		rows = append(rows, []string{r.Scheme.String(), strconv.Itoa(r.MaxLinkLoad), strconv.Itoa(r.TotalLinkHops)})
	}
	return writeCSV(w, []string{"mapping", "max_link_load", "total_link_hops"}, rows)
}

// WriteFig7CSV emits both Figure 7 panels.
func WriteFig7CSV(w io.Writer) error {
	rows7, err := Fig7()
	if err != nil {
		return err
	}
	var rows [][]string
	for _, r := range rows7 {
		for _, sch := range model.Schemes() {
			rows = append(rows, []string{
				strconv.Itoa(r.SocketsPerReplica), f(r.Delta), sch.String(),
				f(r.Tau[sch]), f(r.Util[sch]), f(r.Undetected[sch]),
			})
		}
	}
	return writeCSV(w, []string{"sockets_per_replica", "delta_s", "scheme", "tau_s", "utilization", "undetected_sdc_prob"}, rows)
}

// WriteFig8CSV emits the checkpoint-overhead decomposition.
func WriteFig8CSV(w io.Writer) error {
	rows8, err := Fig8()
	if err != nil {
		return err
	}
	var rows [][]string
	for _, r := range rows8 {
		rows = append(rows, []string{
			r.App, strconv.Itoa(r.CoresPerReplica), r.Variant,
			f(r.Cost.Local), f(r.Cost.Transfer), f(r.Cost.Compare), f(r.Cost.Total()),
		})
	}
	return writeCSV(w, []string{"app", "cores_per_replica", "variant", "local_s", "transfer_s", "compare_s", "total_s"}, rows)
}

// WriteFig9CSV emits the forward-path overheads.
func WriteFig9CSV(w io.Writer) error {
	return writeOverheadCSV(w, Fig9)
}

// WriteFig11CSV emits the overall overheads.
func WriteFig11CSV(w io.Writer) error {
	return writeOverheadCSV(w, Fig11)
}

func writeOverheadCSV(w io.Writer, gen func() ([]OverheadRow, error)) error {
	data, err := gen()
	if err != nil {
		return err
	}
	var rows [][]string
	for _, r := range data {
		rows = append(rows, []string{
			r.App, strconv.Itoa(r.SocketsPerReplica), r.Scheme.String(), r.Variant,
			f(r.Delta), f(r.Tau), f(r.OverheadPct),
		})
	}
	return writeCSV(w, []string{"app", "sockets_per_replica", "scheme", "variant", "delta_s", "tau_s", "overhead_pct"}, rows)
}

// WriteFig10CSV emits the restart-overhead decomposition.
func WriteFig10CSV(w io.Writer) error {
	rows10, err := Fig10()
	if err != nil {
		return err
	}
	var rows [][]string
	for _, r := range rows10 {
		rows = append(rows, []string{
			r.App, strconv.Itoa(r.CoresPerReplica), r.Variant,
			f(r.Cost.Transfer), f(r.Cost.Reconstruction), f(r.Cost.Total()),
		})
	}
	return writeCSV(w, []string{"app", "cores_per_replica", "variant", "transfer_s", "reconstruction_s", "total_s"}, rows)
}

// WriteFig12CSV emits the adaptivity run's checkpoint/failure series.
func WriteFig12CSV(w io.Writer) error {
	res, err := Fig12(DefaultFig12Config())
	if err != nil {
		return err
	}
	var rows [][]string
	for _, t := range res.CheckpointTimes {
		rows = append(rows, []string{"checkpoint", f(t), ""})
	}
	for _, t := range res.FailureTimes {
		rows = append(rows, []string{"failure", f(t), ""})
	}
	for _, tp := range res.TauTrace {
		rows = append(rows, []string{"tau", f(tp.Time), f(tp.Tau)})
	}
	return writeCSV(w, []string{"event", "time_s", "value"}, rows)
}

// WriteCSV dispatches a figure number to its CSV emitter.
func WriteCSV(w io.Writer, fig int) error {
	switch fig {
	case 1:
		return WriteFig1CSV(w)
	case 4:
		return WriteFig4CSV(w)
	case 6:
		return WriteFig6CSV(w)
	case 7:
		return WriteFig7CSV(w)
	case 8:
		return WriteFig8CSV(w)
	case 9:
		return WriteFig9CSV(w)
	case 10:
		return WriteFig10CSV(w)
	case 11:
		return WriteFig11CSV(w)
	case 12:
		return WriteFig12CSV(w)
	default:
		return fmt.Errorf("expt: no CSV form for figure %d", fig)
	}
}

// Package expt regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Each FigN function
// computes the underlying data and each FprintFigN renders it as the rows
// or series the paper plots; shapes — who wins, by what factor, where the
// knees fall — are asserted by this package's tests.
package expt

import (
	"fmt"
	"io"
)

// writeHeader prints a figure banner.
func writeHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "=== %s ===\n", title)
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

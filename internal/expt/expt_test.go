package expt

import (
	"bytes"
	"strings"
	"testing"

	"acr/internal/model"
	"acr/internal/trace"
)

func TestFig1Shapes(t *testing.T) {
	pts := Fig1()
	if len(pts) != len(Fig1Sockets())*len(Fig1FITs()) {
		t.Fatalf("got %d points", len(pts))
	}
	byKey := map[[2]int]Fig1Point{}
	for _, p := range pts {
		byKey[[2]int{p.Sockets, int(p.FIT)}] = p
	}
	// Figure 1a: no-FT utilization collapses between 4K and 16K sockets.
	if byKey[[2]int{16384, 100}].NoFTUtil > 0.15 || byKey[[2]int{4096, 100}].NoFTUtil < 0.3 {
		t.Error("no-FT utilization collapse shape broken")
	}
	// Figure 1b: checkpointing lifts utilization but vulnerability stays.
	p := byKey[[2]int{65536, 10000}]
	if p.CkptUtil <= p.NoFTUtil {
		t.Error("checkpoint-only should beat no FT")
	}
	if p.CkptVuln < 0.9 {
		t.Errorf("checkpoint-only vulnerability at 10K FIT should be ~1, got %v", p.CkptVuln)
	}
	// Figure 1c: ACR kills vulnerability and stays roughly flat.
	for _, pt := range pts {
		if pt.ACRVuln != 0 {
			t.Error("ACR vulnerability must be zero")
		}
	}
	if flat := byKey[[2]int{1048576, 100}].ACRUtil / byKey[[2]int{4096, 100}].ACRUtil; flat < 0.75 {
		t.Errorf("ACR utilization should stay nearly constant, ratio %v", flat)
	}
	var buf bytes.Buffer
	FprintFig1(&buf)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("missing banner")
	}
}

func TestFig6Shapes(t *testing.T) {
	rows := Fig6()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	loads := map[string]int{}
	for _, r := range rows {
		loads[r.Scheme.String()] = r.MaxLinkLoad
	}
	if loads["default"] != 4 || loads["column"] != 1 || loads["mixed"] != 2 {
		t.Fatalf("Figure 6 link loads wrong: %v", loads)
	}
	var buf bytes.Buffer
	FprintFig6(&buf)
	if !strings.Contains(buf.String(), "column") {
		t.Error("render incomplete")
	}
}

func TestFig7Shapes(t *testing.T) {
	rows, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	find := func(sockets int, delta float64) Fig7Row {
		for _, r := range rows {
			if r.SocketsPerReplica == sockets && r.Delta == delta {
				return r
			}
		}
		t.Fatalf("row %d/%v missing", sockets, delta)
		return Fig7Row{}
	}
	// Paper anchors: delta=15s keeps every scheme above 45% at 256K.
	r := find(262144, 15)
	for _, sch := range model.Schemes() {
		if r.Util[sch] < 0.45 {
			t.Errorf("delta=15 %v utilization %.3f < 0.45", sch, r.Util[sch])
		}
	}
	// delta=180s: strong drops toward 37%, weak/medium stay above 43%.
	r = find(262144, 180)
	if r.Util[model.Strong] > 0.42 || r.Util[model.Strong] < 0.3 {
		t.Errorf("strong delta=180 utilization %.3f, want ~0.37", r.Util[model.Strong])
	}
	if r.Util[model.Weak] < 0.43 || r.Util[model.Medium] < 0.43 {
		t.Errorf("weak/medium delta=180 should stay above 0.43: %.3f/%.3f",
			r.Util[model.Weak], r.Util[model.Medium])
	}
	// 7b: strong detects everything; medium halves weak.
	for _, row := range rows {
		if row.Undetected[model.Strong] != 0 {
			t.Fatal("strong must have zero undetected probability")
		}
		if row.Undetected[model.Weak] < row.Undetected[model.Medium] {
			t.Fatal("weak must be at least as exposed as medium")
		}
	}
	// Growth with sockets for weak delta=180.
	if find(262144, 180).Undetected[model.Weak] <= find(1024, 180).Undetected[model.Weak] {
		t.Error("undetected probability should grow with machine size")
	}
	var buf bytes.Buffer
	if err := FprintFig7(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 7b") {
		t.Error("render incomplete")
	}
}

func TestFig8Shapes(t *testing.T) {
	rows, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	get := func(app, variant string, cores int) Fig8Row {
		for _, r := range rows {
			if r.App == app && r.Variant == variant && r.CoresPerReplica == cores {
				return r
			}
		}
		t.Fatalf("row %s/%s/%d missing", app, variant, cores)
		return Fig8Row{}
	}
	// §6.2: roughly fourfold growth of the default-mapping total from 1K
	// to 64K cores per replica for Jacobi3D, driven by transfer.
	j1 := get("Jacobi3D Charm++", "default", 1024)
	j64 := get("Jacobi3D Charm++", "default", 65536)
	if ratio := j64.Cost.Total() / j1.Cost.Total(); ratio < 2.5 || ratio > 6 {
		t.Errorf("default-mapping growth = %.2fx, want ~4x", ratio)
	}
	if j64.Cost.Transfer <= j1.Cost.Transfer {
		t.Error("transfer must drive the growth")
	}
	if j64.Cost.Local != j1.Cost.Local {
		t.Error("local checkpoint time must stay constant")
	}
	// Growth happens by 4K cores (Z reaches 32) and then flattens.
	j4 := get("Jacobi3D Charm++", "default", 4096)
	j16 := get("Jacobi3D Charm++", "default", 16384)
	if rel := j16.Cost.Total()/j4.Cost.Total() - 1; rel > 0.05 {
		t.Errorf("default-mapping cost should flatten beyond 4K cores, grew %.1f%%", rel*100)
	}
	// Column and mixed mappings remove the growth.
	c1 := get("Jacobi3D Charm++", "column", 1024)
	c64 := get("Jacobi3D Charm++", "column", 65536)
	if rel := c64.Cost.Total()/c1.Cost.Total() - 1; rel > 0.05 {
		t.Errorf("column mapping should be flat, grew %.1f%%", rel*100)
	}
	// Checksum: constant, mapping-free, but more expensive than column
	// for high-memory-pressure apps (§6.2).
	k64 := get("Jacobi3D Charm++", "checksum", 65536)
	if k64.Cost.Total() <= c64.Cost.Total() {
		t.Error("checksum should cost more than column mapping for Jacobi3D")
	}
	if k64.Cost.Transfer > 0.001 {
		t.Error("checksum transfer should be negligible")
	}
	// For the scattered MD apps the checksum method wins (§6.2).
	l64k := get("LeanMD", "checksum", 65536)
	l64d := get("LeanMD", "default", 65536)
	if l64k.Cost.Total() >= l64d.Cost.Total() {
		t.Error("checksum should beat the default exchange for LeanMD")
	}
	// MD apps are an order of magnitude cheaper overall (Figure 8c/8f
	// axis scale).
	if l64d.Cost.Total()*5 > j64.Cost.Total() {
		t.Error("LeanMD checkpoints should be far cheaper than Jacobi3D's")
	}
	var buf bytes.Buffer
	if err := FprintFig8(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LULESH") {
		t.Error("render incomplete")
	}
}

func TestFig10Shapes(t *testing.T) {
	rows, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	get := func(app, variant string, cores int) Fig10Row {
		for _, r := range rows {
			if r.App == app && r.Variant == variant && r.CoresPerReplica == cores {
				return r
			}
		}
		t.Fatalf("row %s/%s/%d missing", app, variant, cores)
		return Fig10Row{}
	}
	// Strong restart is cheapest and mapping-insensitive (§6.3).
	s := get("Jacobi3D Charm++", "strong", 65536)
	md := get("Jacobi3D Charm++", "medium (default)", 65536)
	mc := get("Jacobi3D Charm++", "medium (column)", 65536)
	if s.Cost.Total() >= md.Cost.Total() {
		t.Error("strong restart should beat medium (default)")
	}
	// Topology-aware mapping cuts the medium restart cost severalfold
	// (the paper's 2s -> 0.41s for Jacobi3D).
	if ratio := md.Cost.Total() / mc.Cost.Total(); ratio < 2 {
		t.Errorf("column mapping should cut medium restart severalfold, got %.2fx", ratio)
	}
	// The gain comes from the transfer stage.
	if md.Cost.Transfer <= mc.Cost.Transfer {
		t.Error("transfer must explain the medium-restart gap")
	}
	if md.Cost.Reconstruction != mc.Cost.Reconstruction {
		t.Error("reconstruction should not depend on the mapping")
	}
	// LeanMD: restart dominated by synchronization, growing slowly with
	// scale (Figure 10c).
	l1 := get("LeanMD", "strong", 1024)
	l64 := get("LeanMD", "strong", 65536)
	if l64.Cost.Reconstruction <= l1.Cost.Reconstruction {
		t.Error("LeanMD reconstruction should grow with core count")
	}
	var buf bytes.Buffer
	if err := FprintFig10(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "medium (column)") {
		t.Error("render incomplete")
	}
}

func TestFig9Shapes(t *testing.T) {
	rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	get := func(app, variant string, sockets int, sch model.Scheme) OverheadRow {
		for _, r := range rows {
			if r.App == app && r.Variant == variant && r.SocketsPerReplica == sockets && r.Scheme == sch {
				return r
			}
		}
		t.Fatalf("row missing")
		return OverheadRow{}
	}
	// Optimizations halve the default-mapping overhead (§6.2: "by 50%").
	jd := get("Jacobi3D Charm++", "default", 16384, model.Weak)
	jc := get("Jacobi3D Charm++", "column", 16384, model.Weak)
	if jc.OverheadPct >= jd.OverheadPct*0.75 {
		t.Errorf("column should cut Jacobi3D forward overhead: %.3f vs %.3f", jc.OverheadPct, jd.OverheadPct)
	}
	// Strong checkpoints more often, so its forward overhead is highest.
	js := get("Jacobi3D Charm++", "default", 16384, model.Strong)
	jw := get("Jacobi3D Charm++", "default", 16384, model.Weak)
	if js.OverheadPct <= jw.OverheadPct {
		t.Error("strong forward overhead should exceed weak")
	}
	if js.Tau >= jw.Tau {
		t.Error("strong must checkpoint more frequently")
	}
	// Overheads are small: Jacobi3D default ~1.5%, LeanMD far lower.
	if jd.OverheadPct > 5 || jd.OverheadPct <= 0 {
		t.Errorf("Jacobi3D default overhead %.2f%% out of the expected range", jd.OverheadPct)
	}
	ld := get("LeanMD", "default", 16384, model.Weak)
	if ld.OverheadPct >= jd.OverheadPct {
		t.Error("LeanMD forward overhead should be far below Jacobi3D's")
	}
	// Overheads grow with socket count (failure rate rises).
	if get("Jacobi3D Charm++", "default", 1024, model.Weak).OverheadPct >= jd.OverheadPct {
		t.Error("forward overhead should grow with sockets")
	}
	var buf bytes.Buffer
	if err := FprintFig9(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("render incomplete")
	}
}

func TestFig11Shapes(t *testing.T) {
	rows, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	get := func(app, variant string, sockets int, sch model.Scheme) OverheadRow {
		for _, r := range rows {
			if r.App == app && r.Variant == variant && r.SocketsPerReplica == sockets && r.Scheme == sch {
				return r
			}
		}
		t.Fatalf("row missing")
		return OverheadRow{}
	}
	// §6.3: overall overhead of strong stays below ~3% for Jacobi3D and
	// optimization cuts it further; strong > weak/medium despite its
	// faster restart, because of rework and denser checkpoints.
	js := get("Jacobi3D Charm++", "default", 16384, model.Strong)
	jw := get("Jacobi3D Charm++", "default", 16384, model.Weak)
	jsCol := get("Jacobi3D Charm++", "column+checksum", 16384, model.Strong)
	if js.OverheadPct > 4 {
		t.Errorf("Jacobi3D strong overall overhead %.2f%%, paper says < 3%%", js.OverheadPct)
	}
	if js.OverheadPct <= jw.OverheadPct {
		t.Error("strong overall overhead should exceed weak")
	}
	if jsCol.OverheadPct >= js.OverheadPct {
		t.Error("optimizations should reduce the overall overhead")
	}
	// Overall overhead exceeds the forward-path overhead alone.
	fwd, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.OverheadPct+1e-9 < fwd[i].OverheadPct {
			t.Fatalf("overall overhead below forward-path overhead at %+v", r)
		}
	}
	// LeanMD's overall overhead is a fraction of Jacobi3D's (paper: 0.45%
	// vs 3%).
	ls := get("LeanMD", "default", 16384, model.Strong)
	if ls.OverheadPct >= js.OverheadPct/2 {
		t.Errorf("LeanMD overhead %.2f%% should be well below Jacobi3D's %.2f%%", ls.OverheadPct, js.OverheadPct)
	}
	var buf bytes.Buffer
	if err := FprintFig11(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Error("render incomplete")
	}
}

func TestTable2Render(t *testing.T) {
	var buf bytes.Buffer
	FprintTable2(&buf)
	out := buf.String()
	for _, name := range []string{"Jacobi3D Charm++", "HPCCG", "LULESH", "LeanMD", "miniMD"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 2 missing %s", name)
		}
	}
}

func TestFig12Adaptivity(t *testing.T) {
	res, err := Fig12(DefaultFig12Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailureTimes) != 19 {
		t.Fatalf("injected %d failures, want 19", len(res.FailureTimes))
	}
	if len(res.CheckpointTimes) < 10 {
		t.Fatalf("only %d checkpoints", len(res.CheckpointTimes))
	}
	// The headline: the scheduled interval stretches as the failure rate
	// falls (the paper's 6 s -> 17 s).
	if res.LastInterval <= res.FirstInterval*1.5 {
		t.Fatalf("interval should grow markedly: %.1fs -> %.1fs", res.FirstInterval, res.LastInterval)
	}
	// More checkpoints land in the first half of the run than the second.
	firstHalfCk := 0
	for _, ct := range res.CheckpointTimes {
		if ct < 900 {
			firstHalfCk++
		}
	}
	if firstHalfCk <= len(res.CheckpointTimes)/2 {
		t.Errorf("checkpoints should be denser early: %d of %d in the first half",
			firstHalfCk, len(res.CheckpointTimes))
	}
	// Failures are front-loaded (power law, k < 1).
	firstHalf := 0
	for _, ft := range res.FailureTimes {
		if ft < 900 {
			firstHalf++
		}
	}
	if firstHalf <= len(res.FailureTimes)/2 {
		t.Error("failures should be front-loaded")
	}
	if res.UsefulFraction < 0.5 || res.UsefulFraction > 1 {
		t.Errorf("useful fraction %v implausible", res.UsefulFraction)
	}
	if res.Timeline.Count(trace.Checkpoint) != len(res.CheckpointTimes) {
		t.Error("timeline inconsistent")
	}
	var buf bytes.Buffer
	if err := FprintFig12(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "checkpoint interval") {
		t.Error("render incomplete")
	}
}

func TestFig12Deterministic(t *testing.T) {
	a, err := Fig12(DefaultFig12Config())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig12(DefaultFig12Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.CheckpointTimes) != len(b.CheckpointTimes) {
		t.Fatal("virtual-time run not reproducible")
	}
	for i := range a.CheckpointTimes {
		if a.CheckpointTimes[i] != b.CheckpointTimes[i] {
			t.Fatal("checkpoint times differ between identical runs")
		}
	}
}

func TestFig5ControlFlow(t *testing.T) {
	runs, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("got %d scenarios", len(runs))
	}
	for _, r := range runs {
		if r.Stats.HardErrors != 1 {
			t.Errorf("%s: hard errors = %d, want 1", r.Scenario.Name, r.Stats.HardErrors)
		}
		if r.Stats.Rollbacks == 0 {
			t.Errorf("%s: no restart recorded", r.Scenario.Name)
		}
		if r.Scenario.Periodic && r.Stats.Checkpoints == 0 {
			t.Errorf("%s: no checkpoints", r.Scenario.Name)
		}
		if !r.Scenario.Periodic && r.Stats.Checkpoints != 1 {
			t.Errorf("%s: hard-error-only mode should checkpoint exactly once (the recovery), got %d",
				r.Scenario.Name, r.Stats.Checkpoints)
		}
	}
	var buf bytes.Buffer
	if err := FprintFig5(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "weak resilience") {
		t.Error("render incomplete")
	}
}

package pup

import (
	"bytes"
	"testing"
)

// trackedProg is the test shape for dirty packing: two scalars, a bulk
// float field, and a bulk byte field, all labelled.
type trackedProg struct {
	WriteSet
	Iter  int
	Scale float64
	Vals  []float64
	Blob  []byte
}

func (t *trackedProg) Pup(p *PUPer) {
	p.Label("iter")
	p.Int(&t.Iter)
	p.Label("scale")
	p.Float64(&t.Scale)
	p.Label("vals")
	p.Float64s(&t.Vals)
	p.Label("blob")
	p.Bytes(&t.Blob)
}

func newTrackedProg(nVals, nBlob int) *trackedProg {
	tp := &trackedProg{Iter: 7, Scale: 1.25}
	tp.Vals = make([]float64, nVals)
	for i := range tp.Vals {
		tp.Vals[i] = float64(i) * 0.5
	}
	tp.Blob = make([]byte, nBlob)
	for i := range tp.Blob {
		tp.Blob[i] = byte(i * 13)
	}
	return tp
}

// covered reports whether [lo, hi) lies inside one of the ranges.
func covered(rs []Range, lo, hi int) bool {
	for _, r := range rs {
		if r.Lo <= lo && hi <= r.Hi {
			return true
		}
	}
	return false
}

// checkSpliceInvariant asserts the contract CaptureDirtyInto relies on:
// every byte where the spliced stream differs from prev is inside the
// returned dirty set.
func checkSpliceInvariant(t *testing.T, res DirtyPackResult, prev []byte) {
	t.Helper()
	if !res.Spliced {
		t.Fatalf("expected spliced result")
	}
	if len(res.Data) != len(prev) {
		t.Fatalf("spliced stream length %d != prev %d", len(res.Data), len(prev))
	}
	for i := range res.Data {
		if res.Data[i] != prev[i] && !covered(res.Dirty, i, i+1) {
			t.Fatalf("byte %d differs from prev but is not in dirty set %v", i, res.Dirty)
		}
	}
}

func TestPackDirtyIntoTable(t *testing.T) {
	type testCase struct {
		name string
		// mutate changes the program between the base capture and the
		// dirty capture, marking ranges via the tracker as a real app
		// would. spans are the field spans of the base shape.
		mutate func(tp *trackedProg, spans map[string]Range)
		// wantSpliced is whether the second capture may reuse clean-chunk
		// sums.
		wantSpliced bool
		// wantFreshEqual is whether the output must equal a from-scratch
		// Pack of the mutated state (false only for the documented lying-
		// tracker hazard).
		wantFreshEqual bool
	}
	cases := []testCase{
		{
			name:           "all-clean",
			mutate:         func(tp *trackedProg, spans map[string]Range) {},
			wantSpliced:    true,
			wantFreshEqual: true,
		},
		{
			name: "all-dirty",
			mutate: func(tp *trackedProg, spans map[string]Range) {
				for i := range tp.Vals {
					tp.Vals[i] += 3
				}
				for i := range tp.Blob {
					tp.Blob[i] ^= 0xff
				}
				tp.Iter++
				tp.MarkAll()
			},
			wantSpliced:    true,
			wantFreshEqual: true,
		},
		{
			name: "single-element",
			mutate: func(tp *trackedProg, spans map[string]Range) {
				tp.Vals[3] = -42
				tp.MarkSpan(spans["vals"].Slice(3, 4, 8))
			},
			wantSpliced:    true,
			wantFreshEqual: true,
		},
		{
			name: "element-boundary-straddling",
			mutate: func(tp *trackedProg, spans map[string]Range) {
				tp.Vals[2] = 99
				tp.Vals[3] = 100
				// One mark covering the back half of element 2 and the
				// front half of element 3: both must be re-encoded.
				s := spans["vals"].Slice(2, 4, 8)
				tp.MarkRange(s.Lo+4, s.Hi-4)
			},
			wantSpliced:    true,
			wantFreshEqual: true,
		},
		{
			name: "mark-spans-two-fields",
			mutate: func(tp *trackedProg, spans map[string]Range) {
				tp.Vals[len(tp.Vals)-1] = 7.5
				tp.Blob[0] = 0xaa
				// A single range from the tail of vals into the head of
				// blob, crossing the length prefix between them.
				tp.MarkRange(spans["vals"].Hi-8, spans["blob"].Lo+5)
			},
			wantSpliced:    true,
			wantFreshEqual: true,
		},
		{
			name: "unmarked-scalar-self-detected",
			mutate: func(tp *trackedProg, spans map[string]Range) {
				tp.Iter = 1234 // no mark: noteScalar must catch it
				tp.Scale = 9.75
			},
			wantSpliced:    true,
			wantFreshEqual: true,
		},
		{
			name: "shape-change-forces-rebase",
			mutate: func(tp *trackedProg, spans map[string]Range) {
				tp.Vals = append(tp.Vals, 1, 2, 3)
				tp.MarkAll()
			},
			wantSpliced:    false,
			wantFreshEqual: true,
		},
		{
			name: "shape-shrink-forces-rebase",
			mutate: func(tp *trackedProg, spans map[string]Range) {
				tp.Vals = tp.Vals[:2]
				tp.MarkAll()
			},
			wantSpliced:    false,
			wantFreshEqual: true,
		},
		{
			name: "lying-tracker-produces-stale-bulk",
			mutate: func(tp *trackedProg, spans map[string]Range) {
				tp.Vals[5] = 1e9 // bulk write, deliberately unmarked
			},
			wantSpliced:    true,
			wantFreshEqual: false, // the documented hazard: stale splice
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := newTrackedProg(8, 32)
			spans := FieldSpans(tp)
			prev, err := Pack(tp)
			if err != nil {
				t.Fatal(err)
			}
			tp.ResetDirty()
			tc.mutate(tp, spans)
			var scratch []Range
			marks, ok := tp.DirtyRanges(scratch)
			if !ok {
				t.Fatal("tracker should be armed after ResetDirty")
			}
			buf := make([]byte, 0, len(prev))
			res, err := PackDirtyInto(tp, buf, prev, marks)
			if err != nil {
				t.Fatal(err)
			}
			if res.Spliced != tc.wantSpliced {
				t.Fatalf("spliced = %v, want %v", res.Spliced, tc.wantSpliced)
			}
			fresh, err := Pack(tp)
			if err != nil {
				t.Fatal(err)
			}
			if got := bytes.Equal(res.Data, fresh); got != tc.wantFreshEqual {
				t.Fatalf("data == fresh pack: %v, want %v", got, tc.wantFreshEqual)
			}
			if res.Spliced {
				checkSpliceInvariant(t, res, prev)
			}
			// Round-trip: whatever was packed must restore consistently.
			var back trackedProg
			if err := Unpack(res.Data, &back); err != nil {
				t.Fatalf("unpack: %v", err)
			}
		})
	}
}

func TestPackDirtyIntoAllCleanReusesBulkBytes(t *testing.T) {
	tp := newTrackedProg(64, 128)
	prev, err := Pack(tp)
	if err != nil {
		t.Fatal(err)
	}
	tp.ResetDirty()
	res, err := PackDirtyInto(tp, make([]byte, 0, len(prev)), prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spliced || !res.Fast {
		t.Fatalf("expected spliced fast pack, got %+v", res)
	}
	wantReused := 64*8 + 128 // both bulk bodies spliced wholesale
	if res.Reused != wantReused {
		t.Fatalf("reused %d bytes, want %d", res.Reused, wantReused)
	}
	if !bytes.Equal(res.Data, prev) {
		t.Fatal("all-clean splice must reproduce the previous stream")
	}
}

func TestPackDirtyIntoOverflowFallsBack(t *testing.T) {
	tp := newTrackedProg(8, 8)
	prev, err := Pack(tp)
	if err != nil {
		t.Fatal(err)
	}
	tp.ResetDirty()
	tp.Vals = append(tp.Vals, 5, 6) // grows past the buffer capacity
	tp.MarkAll()
	res, err := PackDirtyInto(tp, make([]byte, 0, len(prev)), prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fast || res.Spliced {
		t.Fatalf("growth past capacity must take the two-pass fallback, got %+v", res)
	}
	fresh, err := Pack(tp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, fresh) {
		t.Fatal("fallback pack differs from a fresh pack")
	}
}

func TestPackDirtyIntoNilPrevMatchesPackInto(t *testing.T) {
	tp := newTrackedProg(8, 8)
	want, err := Pack(tp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PackDirtyInto(tp, make([]byte, 0, len(want)), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fast || res.Spliced {
		t.Fatalf("nil prev should fast-pack without splicing, got %+v", res)
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatal("pack mismatch")
	}
}

func TestWriteSetZeroValueIsBlind(t *testing.T) {
	var ws WriteSet
	ws.MarkRange(0, 100) // must be ignored while blind
	if _, ok := ws.DirtyRanges(nil); ok {
		t.Fatal("zero-value WriteSet must report not-tracking")
	}
	ws.ResetDirty()
	if rs, ok := ws.DirtyRanges(nil); !ok || len(rs) != 0 {
		t.Fatalf("armed empty set: got %v ok=%v", rs, ok)
	}
	ws.MarkRange(10, 20)
	ws.MarkRange(20, 30) // adjacent: merges
	ws.MarkRange(50, 60)
	rs, ok := ws.DirtyRanges(nil)
	if !ok || len(rs) != 2 || rs[0] != (Range{10, 30}) || rs[1] != (Range{50, 60}) {
		t.Fatalf("got %v ok=%v", rs, ok)
	}
}

func TestNormalizeRanges(t *testing.T) {
	rs := NormalizeRanges([]Range{{30, 40}, {5, 10}, {8, 12}, {12, 20}, {25, 25}})
	want := []Range{{5, 20}, {30, 40}}
	if len(rs) != len(want) {
		t.Fatalf("got %v, want %v", rs, want)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("got %v, want %v", rs, want)
		}
	}
}

func TestFieldSpans(t *testing.T) {
	tp := newTrackedProg(4, 16)
	spans := FieldSpans(tp)
	if spans["iter"] != (Range{0, 8}) {
		t.Fatalf("iter span %v", spans["iter"])
	}
	if spans["scale"] != (Range{8, 16}) {
		t.Fatalf("scale span %v", spans["scale"])
	}
	valsWant := Range{16, 16 + 4 + 4*8}
	if spans["vals"] != valsWant {
		t.Fatalf("vals span %v, want %v", spans["vals"], valsWant)
	}
	blobWant := Range{valsWant.Hi, valsWant.Hi + 4 + 16}
	if spans["blob"] != blobWant {
		t.Fatalf("blob span %v, want %v", spans["blob"], blobWant)
	}
	if total := Size(tp); blobWant.Hi != total {
		t.Fatalf("spans end %d, stream size %d", blobWant.Hi, total)
	}
}

package pup

import (
	"math"
	"testing"
	"testing/quick"
)

// extended exercises the additional wire types.
type extended struct {
	F32     float32
	F32s    []float32
	U16     uint16
	Names   []string
	Metrics map[string]float64
	Counts  map[string]int64
	Kids    []*inner
}

func (e *extended) Pup(p *PUPer) {
	p.Label("f32")
	p.Float32(&e.F32)
	p.Label("f32s")
	p.Float32s(&e.F32s)
	p.Label("u16")
	p.Uint16(&e.U16)
	p.Label("names")
	p.Strings(&e.Names)
	p.Label("metrics")
	p.MapStringFloat64(&e.Metrics)
	p.Label("counts")
	p.MapStringInt64(&e.Counts)
	p.Label("kids")
	Objects(p, &e.Kids, func() *inner { return &inner{} })
}

func sampleExtended() *extended {
	return &extended{
		F32:     3.5,
		F32s:    []float32{1, -2.25, float32(math.Inf(1))},
		U16:     65535,
		Names:   []string{"alpha", "", "gamma"},
		Metrics: map[string]float64{"x": 1.5, "y": -2, "z": 0},
		Counts:  map[string]int64{"a": 1, "b": -9},
		Kids:    []*inner{{A: 1, B: 2}, {A: -3, B: 4}},
	}
}

func TestExtendedRoundTrip(t *testing.T) {
	e := sampleExtended()
	data, err := Pack(e)
	if err != nil {
		t.Fatal(err)
	}
	var back extended
	if err := Unpack(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.F32 != e.F32 || back.U16 != e.U16 {
		t.Fatal("scalar round trip failed")
	}
	if len(back.F32s) != 3 || back.F32s[1] != -2.25 || !math.IsInf(float64(back.F32s[2]), 1) {
		t.Fatalf("f32s = %v", back.F32s)
	}
	if len(back.Names) != 3 || back.Names[0] != "alpha" || back.Names[1] != "" {
		t.Fatalf("names = %v", back.Names)
	}
	if len(back.Metrics) != 3 || back.Metrics["y"] != -2 {
		t.Fatalf("metrics = %v", back.Metrics)
	}
	if len(back.Counts) != 2 || back.Counts["b"] != -9 {
		t.Fatalf("counts = %v", back.Counts)
	}
	if len(back.Kids) != 2 || *back.Kids[1] != (inner{A: -3, B: 4}) {
		t.Fatalf("kids = %v", back.Kids)
	}
}

func TestMapPackingDeterministic(t *testing.T) {
	// Two maps built in different insertion orders must pack identically.
	a := &extended{Metrics: map[string]float64{}, Counts: map[string]int64{}}
	b := &extended{Metrics: map[string]float64{}, Counts: map[string]int64{}}
	keys := []string{"k3", "k1", "k9", "k2", "k7", "k5"}
	for i, k := range keys {
		a.Metrics[k] = float64(i)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Metrics[keys[i]] = float64(i)
	}
	da, err := Pack(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Pack(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("map packing depends on insertion order")
	}
}

func TestExtendedCheckDetectsMutations(t *testing.T) {
	base := sampleExtended()
	data, err := Pack(base)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*extended){
		"f32":     func(e *extended) { e.F32 = 99 },
		"f32s":    func(e *extended) { e.F32s[0] = 7 },
		"u16":     func(e *extended) { e.U16-- },
		"names":   func(e *extended) { e.Names[2] = "delta" },
		"metrics": func(e *extended) { e.Metrics["x"] = 9 },
		"counts":  func(e *extended) { e.Counts["a"] = 2 },
		"kids":    func(e *extended) { e.Kids[0].A = 42 },
	}
	for label, mutate := range mutations {
		e := sampleExtended()
		mutate(e)
		res, err := Check(e, data, 0)
		if err != nil {
			// Structural divergence (e.g. changed string length) is an
			// acceptable stronger detection.
			continue
		}
		if res.Match {
			t.Errorf("mutation of %s not detected", label)
		}
	}
}

func TestExtendedSizeMatchesPack(t *testing.T) {
	e := sampleExtended()
	data, err := Pack(e)
	if err != nil {
		t.Fatal(err)
	}
	if Size(e) != len(data) {
		t.Fatalf("Size %d != packed %d", Size(e), len(data))
	}
}

func TestFloat32Tolerance(t *testing.T) {
	a := &extended{F32: 1.0, Metrics: map[string]float64{}, Counts: map[string]int64{}}
	data, err := Pack(a)
	if err != nil {
		t.Fatal(err)
	}
	b := &extended{F32: 1.0000001, Metrics: map[string]float64{}, Counts: map[string]int64{}}
	if res, _ := Check(b, data, 0); res.Match {
		t.Fatal("exact compare should flag the difference")
	}
	if res, err := Check(b, data, 1e-5); err != nil || !res.Match {
		t.Fatalf("tolerant compare should accept: %v %v", res, err)
	}
}

func TestMapRoundTripProperty(t *testing.T) {
	f := func(m map[string]float64) bool {
		// NaN values break equality comparison semantics of the test
		// itself (not of pup); normalize them.
		for k, v := range m {
			if math.IsNaN(v) {
				m[k] = 0
			}
		}
		e := &extended{Metrics: m, Counts: map[string]int64{}}
		data, err := Pack(e)
		if err != nil {
			return false
		}
		var back extended
		if err := Unpack(data, &back); err != nil {
			return false
		}
		if len(back.Metrics) != len(m) {
			return false
		}
		for k, v := range m {
			if back.Metrics[k] != v {
				return false
			}
		}
		res, err := Check(&back, data, 0)
		return err == nil && res.Match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyCollections(t *testing.T) {
	e := &extended{}
	data, err := Pack(e)
	if err != nil {
		t.Fatal(err)
	}
	var back extended
	if err := Unpack(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.F32s) != 0 || len(back.Names) != 0 || len(back.Metrics) != 0 || len(back.Kids) != 0 {
		t.Fatal("empty collections should stay empty")
	}
}

// Package pup is a Go rendition of Charm++'s Pack/UnPack (PUP) framework,
// the serialization layer ACR uses for checkpointing (§4.1).
//
// An application type implements Pupable with a single Pup method that
// "pipes" every field through a PUPer. The same method then serves four
// purposes, selected by the PUPer's mode:
//
//   - Sizing:    measure the packed size without copying.
//   - Packing:   serialize the state into a buffer (a local checkpoint).
//   - Unpacking: restore the state from a buffer (restart).
//   - Checking:  compare live state against a buddy's checkpoint to detect
//     silent data corruption — the "checker PUPer" of §4.1, with a
//     configurable relative tolerance for floating-point data and Skip
//     regions for replica-variant data that must not be compared.
//
// Encoding is little-endian with fixed-width scalars and uint32 length
// prefixes, so packed size is deterministic for a given structure shape.
package pup

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Mode identifies what a PUPer traversal does.
type Mode int

// Traversal modes.
const (
	Sizing Mode = iota
	Packing
	Unpacking
	Checking
)

func (m Mode) String() string {
	switch m {
	case Sizing:
		return "sizing"
	case Packing:
		return "packing"
	case Unpacking:
		return "unpacking"
	case Checking:
		return "checking"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Pupable is implemented by any type that can be checkpointed. Pup must
// traverse the same fields in the same order in every mode.
type Pupable interface {
	Pup(p *PUPer)
}

// Mismatch records one field-level difference found in Checking mode.
type Mismatch struct {
	Label  string  // the label active when the mismatch was found
	Offset int     // byte offset in the checkpoint stream
	Local  float64 // local value (best-effort numeric rendering)
	Remote float64 // remote value
}

func (m Mismatch) String() string {
	return fmt.Sprintf("%s@%d: local %v != remote %v", m.Label, m.Offset, m.Local, m.Remote)
}

// ChunkIndex attributes the mismatch to a chunk of the packed stream at
// the given chunk size, aligning the checker PUPer's field-level
// diagnostics with the chunked checkpoint store's localization: a
// FullCompare mismatch and a ChecksumCompare mismatch of the same
// corruption name the same chunk. Offset points just past the mismatched
// field, so the chunk is derived from the last byte of the field.
func (m Mismatch) ChunkIndex(chunkSize int) int {
	if chunkSize <= 0 || m.Offset <= 0 {
		return 0
	}
	return (m.Offset - 1) / chunkSize
}

// MaxMismatches bounds how many mismatches a checker records; one is enough
// to trigger a rollback, more are kept only for diagnostics.
const MaxMismatches = 16

// PUPer carries a traversal. Create one with NewSizer, NewPacker,
// NewUnpacker, or NewChecker; the zero value is not usable.
type PUPer struct {
	mode Mode
	buf  []byte
	off  int
	err  error
	// overflow distinguishes a Packing buffer that was merely too small
	// (PackInto's fast path falls back to the two-pass path) from a
	// structural error.
	overflow bool

	// Checking state.
	relTol     float64
	skipDepth  int
	mismatches []Mismatch
	label      string

	// Dirty-splice state (PackDirtyInto, dirty.go): prev is the previous
	// capture's packed stream, dirty the normalized marked ranges with
	// dirtyIdx a monotonic cursor into them, diverged the "offsets no
	// longer line up" latch, reused the bytes spliced instead of
	// re-encoded, and extra the unmarked scalar changes detected while
	// packing.
	prev     []byte
	dirty    []Range
	dirtyIdx int
	diverged bool
	reused   int
	extra    []Range
	// patch marks a PackDirtyPatch traversal: buf already holds a stream
	// that matches prev outside p.dirty, so spliceBulk skips the clean-byte
	// copy entirely, and noteScalar reports every changed scalar (p.dirty is
	// the re-encode set, not the caller's marks, so coverage by it proves
	// nothing about prev).
	patch bool

	// Field-span recording (FieldSpans, dirty.go).
	spans     map[string]Range
	spanLabel string
	spanStart int
}

// NewSizer returns a PUPer that measures packed size.
func NewSizer() *PUPer { return &PUPer{mode: Sizing} }

// NewPacker returns a PUPer that packs into buf, which must be at least
// Size(obj) bytes (use Pack for automatic allocation).
func NewPacker(buf []byte) *PUPer { return &PUPer{mode: Packing, buf: buf} }

// NewUnpacker returns a PUPer that restores state from data.
func NewUnpacker(data []byte) *PUPer { return &PUPer{mode: Unpacking, buf: data} }

// NewChecker returns a PUPer that compares live state against the packed
// checkpoint in remote. relTol is the relative tolerance applied to
// floating-point comparisons (§4.1: "a programmer can set the relative
// error a program can tolerate"); zero demands exact equality.
func NewChecker(remote []byte, relTol float64) *PUPer {
	return &PUPer{mode: Checking, buf: remote, relTol: relTol}
}

// Mode returns the traversal mode.
func (p *PUPer) Mode() Mode { return p.mode }

// Offset returns the number of bytes traversed so far.
func (p *PUPer) Offset() int { return p.off }

// Err returns the first structural error encountered (buffer overrun,
// length mismatch). Mismatched *values* in Checking mode are not errors;
// see Mismatches.
func (p *PUPer) Err() error { return p.err }

// Mismatches returns the value differences found in Checking mode.
func (p *PUPer) Mismatches() []Mismatch { return p.mismatches }

// Label sets the diagnostic label attached to subsequently found
// mismatches, typically a field name. When field spans are being recorded
// (FieldSpans) it also closes the previous field's span.
func (p *PUPer) Label(s string) {
	if p.spans != nil {
		p.flushSpan()
		p.spanLabel, p.spanStart = s, p.off
	}
	p.label = s
}

// flushSpan closes the currently open field span.
func (p *PUPer) flushSpan() {
	if p.spanLabel != "" && p.off > p.spanStart {
		p.spans[p.spanLabel] = Range{Lo: p.spanStart, Hi: p.off}
	}
	p.spanLabel = ""
}

// Skip runs body with comparison disabled: in Checking mode the traversed
// bytes are consumed but not compared. Use it for data that legitimately
// differs between replicas (timestamps, RNG state, profiling counters) but
// must still round-trip through checkpoints. Skip nests.
func (p *PUPer) Skip(body func(*PUPer)) {
	p.skipDepth++
	body(p)
	p.skipDepth--
}

func (p *PUPer) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("pup: "+format, args...)
	}
}

func (p *PUPer) addMismatch(local, remote float64) {
	if len(p.mismatches) < MaxMismatches {
		p.mismatches = append(p.mismatches, Mismatch{
			Label:  p.label,
			Offset: p.off,
			Local:  local,
			Remote: remote,
		})
	} else {
		// Keep counting implicitly by noting saturation in the last slot.
		p.mismatches[MaxMismatches-1].Label = "...more"
	}
}

// raw processes n bytes: returns the destination (Packing) or source
// (Unpacking/Checking) window, or nil in Sizing mode or on error.
func (p *PUPer) raw(n int) []byte {
	switch p.mode {
	case Sizing:
		p.off += n
		return nil
	case Packing:
		if p.off+n > len(p.buf) {
			p.overflow = true
			p.fail("pack overflow at %d (+%d, buffer %d)", p.off, n, len(p.buf))
			return nil
		}
	case Unpacking, Checking:
		if p.off+n > len(p.buf) {
			p.fail("%s underrun at %d (+%d, buffer %d)", p.mode, p.off, n, len(p.buf))
			return nil
		}
	}
	w := p.buf[p.off : p.off+n]
	p.off += n
	return w
}

func (p *PUPer) floatEqual(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if p.relTol <= 0 {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= p.relTol*scale
}

// Uint64 pipes a uint64.
func (p *PUPer) Uint64(v *uint64) {
	w := p.raw(8)
	if w == nil {
		return
	}
	switch p.mode {
	case Packing:
		binary.LittleEndian.PutUint64(w, *v)
		p.noteScalar(8)
	case Unpacking:
		*v = binary.LittleEndian.Uint64(w)
	case Checking:
		if p.skipDepth == 0 {
			r := binary.LittleEndian.Uint64(w)
			if r != *v {
				p.addMismatch(float64(*v), float64(r))
			}
		}
	}
}

// Int64 pipes an int64.
func (p *PUPer) Int64(v *int64) {
	u := uint64(*v)
	p.Uint64(&u)
	if p.mode == Unpacking {
		*v = int64(u)
	}
}

// Int pipes an int (as 64-bit on the wire).
func (p *PUPer) Int(v *int) {
	u := uint64(int64(*v))
	p.Uint64(&u)
	if p.mode == Unpacking {
		*v = int(int64(u))
	}
}

// Uint32 pipes a uint32.
func (p *PUPer) Uint32(v *uint32) {
	w := p.raw(4)
	if w == nil {
		return
	}
	switch p.mode {
	case Packing:
		binary.LittleEndian.PutUint32(w, *v)
		p.noteScalar(4)
	case Unpacking:
		*v = binary.LittleEndian.Uint32(w)
	case Checking:
		if p.skipDepth == 0 {
			r := binary.LittleEndian.Uint32(w)
			if r != *v {
				p.addMismatch(float64(*v), float64(r))
			}
		}
	}
}

// Bool pipes a bool as one byte.
func (p *PUPer) Bool(v *bool) {
	w := p.raw(1)
	if w == nil {
		return
	}
	switch p.mode {
	case Packing:
		w[0] = 0
		if *v {
			w[0] = 1
		}
		p.noteScalar(1)
	case Unpacking:
		*v = w[0] != 0
	case Checking:
		if p.skipDepth == 0 {
			local := byte(0)
			if *v {
				local = 1
			}
			if w[0] != local {
				p.addMismatch(float64(local), float64(w[0]))
			}
		}
	}
}

// Float64 pipes a float64 with tolerance-aware comparison in Checking mode.
func (p *PUPer) Float64(v *float64) {
	w := p.raw(8)
	if w == nil {
		return
	}
	switch p.mode {
	case Packing:
		binary.LittleEndian.PutUint64(w, math.Float64bits(*v))
		p.noteScalar(8)
	case Unpacking:
		*v = math.Float64frombits(binary.LittleEndian.Uint64(w))
	case Checking:
		if p.skipDepth == 0 {
			r := math.Float64frombits(binary.LittleEndian.Uint64(w))
			if !p.floatEqual(*v, r) {
				p.addMismatch(*v, r)
			}
		}
	}
}

// length pipes a collection length prefix and returns the agreed length
// (the local length in Sizing/Packing/Checking, the stored length when
// Unpacking). A negative return means a structural error occurred.
func (p *PUPer) length(local int) int {
	n := uint32(local)
	w := p.raw(4)
	if p.err != nil {
		return -1
	}
	switch p.mode {
	case Sizing:
		return local
	case Packing:
		binary.LittleEndian.PutUint32(w, n)
		p.notePrefix()
		return local
	case Unpacking:
		return int(binary.LittleEndian.Uint32(w))
	case Checking:
		stored := int(binary.LittleEndian.Uint32(w))
		if stored != local {
			// A length difference means the structures diverged; the
			// stream can no longer be aligned, so this is structural.
			p.fail("length mismatch at %d: local %d, remote %d (label %q)", p.off, local, stored, p.label)
			return -1
		}
		return local
	}
	return -1
}

// Float64s pipes a []float64, resizing on unpack.
func (p *PUPer) Float64s(v *[]float64) {
	n := p.length(len(*v))
	if n < 0 {
		return
	}
	if p.mode == Unpacking && len(*v) != n {
		*v = make([]float64, n)
	}
	if p.mode == Sizing {
		p.off += 8 * n
		return
	}
	if p.spliceBulk(n, 8, func(i int, w []byte) {
		binary.LittleEndian.PutUint64(w, math.Float64bits((*v)[i]))
	}) {
		return
	}
	for i := range *v {
		if p.err != nil {
			return
		}
		p.Float64(&(*v)[i])
	}
}

// Int64s pipes a []int64, resizing on unpack.
func (p *PUPer) Int64s(v *[]int64) {
	n := p.length(len(*v))
	if n < 0 {
		return
	}
	if p.mode == Unpacking && len(*v) != n {
		*v = make([]int64, n)
	}
	if p.mode == Sizing {
		p.off += 8 * n
		return
	}
	if p.spliceBulk(n, 8, func(i int, w []byte) {
		binary.LittleEndian.PutUint64(w, uint64((*v)[i]))
	}) {
		return
	}
	for i := range *v {
		if p.err != nil {
			return
		}
		p.Int64(&(*v)[i])
	}
}

// Ints pipes a []int, resizing on unpack.
func (p *PUPer) Ints(v *[]int) {
	n := p.length(len(*v))
	if n < 0 {
		return
	}
	if p.mode == Unpacking && len(*v) != n {
		*v = make([]int, n)
	}
	if p.mode == Sizing {
		p.off += 8 * n
		return
	}
	if p.spliceBulk(n, 8, func(i int, w []byte) {
		binary.LittleEndian.PutUint64(w, uint64(int64((*v)[i])))
	}) {
		return
	}
	for i := range *v {
		if p.err != nil {
			return
		}
		p.Int(&(*v)[i])
	}
}

// Bytes pipes a []byte, resizing on unpack.
func (p *PUPer) Bytes(v *[]byte) {
	n := p.length(len(*v))
	if n < 0 {
		return
	}
	if p.mode == Packing && p.spliceBulk(n, 1, func(i int, w []byte) {
		w[0] = (*v)[i]
	}) {
		return
	}
	w := p.raw(n)
	if p.mode == Sizing || p.err != nil {
		return
	}
	switch p.mode {
	case Packing:
		copy(w, *v)
	case Unpacking:
		if len(*v) != n {
			*v = make([]byte, n)
		}
		copy(*v, w)
	case Checking:
		if p.skipDepth == 0 {
			for i := 0; i < n; i++ {
				if (*v)[i] != w[i] {
					p.addMismatch(float64((*v)[i]), float64(w[i]))
					break // one mismatch per byte slice is enough detail
				}
			}
		}
	}
}

// String pipes a string.
func (p *PUPer) String(v *string) {
	b := []byte(*v)
	p.Bytes(&b)
	if p.mode == Unpacking {
		*v = string(b)
	}
}

// Object pipes a nested Pupable.
func (p *PUPer) Object(v Pupable) { v.Pup(p) }

// Size returns the packed size of obj in bytes.
func Size(obj Pupable) int {
	p := NewSizer()
	obj.Pup(p)
	return p.Offset()
}

// Pack serializes obj into a fresh buffer.
func Pack(obj Pupable) ([]byte, error) {
	buf := make([]byte, Size(obj))
	p := NewPacker(buf)
	obj.Pup(p)
	if p.Err() != nil {
		return nil, p.Err()
	}
	if p.Offset() != len(buf) {
		return nil, fmt.Errorf("pup: pack wrote %d of %d bytes (inconsistent Pup method)", p.Offset(), len(buf))
	}
	return buf, nil
}

// PackInto serializes obj reusing buf's capacity when it suffices,
// skipping the Sizing traversal entirely — the size-hint fast path: callers
// keep the buffer from the previous checkpoint round (state sizes are
// usually stable between rounds) and pay a single traversal instead of two.
//
// It packs optimistically into buf[:cap(buf)]; if the state grew past the
// hint, it falls back to the two-pass Pack path. The returned slice aliases
// buf on the fast path (fast=true) and is freshly allocated on the fallback
// (fast=false). A zero-capacity buf always takes the fallback.
func PackInto(obj Pupable, buf []byte) (data []byte, fast bool, err error) {
	if cap(buf) > 0 {
		b := buf[:cap(buf)]
		// Recycle the PUPer itself: obj.Pup is an interface call, so a
		// fresh PUPer always escapes to the heap — the one allocation that
		// would otherwise survive on the zero-allocation capture path.
		p := packerPool.Get().(*PUPer)
		*p = PUPer{mode: Packing, buf: b}
		obj.Pup(p)
		off, overflow, perr := p.off, p.overflow, p.err
		*p = PUPer{}
		packerPool.Put(p)
		switch {
		case perr == nil:
			return b[:off], true, nil
		case !overflow:
			// Structural error, not a too-small buffer: growing won't help.
			return nil, false, perr
		}
	}
	data, err = Pack(obj)
	return data, false, err
}

var packerPool = sync.Pool{New: func() any { return new(PUPer) }}

// Unpack restores obj from data produced by Pack.
func Unpack(data []byte, obj Pupable) error {
	p := NewUnpacker(data)
	obj.Pup(p)
	if p.Err() != nil {
		return p.Err()
	}
	if p.Offset() != len(data) {
		return fmt.Errorf("pup: unpack consumed %d of %d bytes", p.Offset(), len(data))
	}
	return nil
}

// CheckResult reports the outcome of comparing live state with a remote
// checkpoint.
type CheckResult struct {
	Match      bool
	Mismatches []Mismatch
}

// Check compares the live state of obj against the packed checkpoint in
// remote with the given relative float tolerance. A structural divergence
// (different lengths, short buffer) is returned as an error; value
// differences are reported in the result.
func Check(obj Pupable, remote []byte, relTol float64) (CheckResult, error) {
	p := NewChecker(remote, relTol)
	obj.Pup(p)
	if p.Err() != nil {
		return CheckResult{}, p.Err()
	}
	if p.Offset() != len(remote) {
		return CheckResult{}, fmt.Errorf("pup: check consumed %d of %d bytes", p.Offset(), len(remote))
	}
	ms := p.Mismatches()
	return CheckResult{Match: len(ms) == 0, Mismatches: ms}, nil
}

// Dirty-region tracking for incremental checkpoint capture.
//
// The paper's blocked checkpoint window scales with checkpoint *size*;
// AutoCheck-style dependency analysis shows the cost should instead track
// the *changed* state. The Go analogue implemented here is write tracking
// at packed-stream granularity: applications mark the byte ranges of the
// pup stream they touched since the previous capture, and PackDirtyInto
// re-encodes only elements overlapping those ranges, splicing everything
// else from the previous epoch's packed bytes with memcpy.
//
// Correctness never depends on tracking. A program that does not implement
// DirtyTracker — or whose tracker reports "not tracking" — is packed with
// the ordinary full traversal (the conservative all-dirty fallback), and
// any structural change (a length prefix that differs from the previous
// stream, a stream that grew or shrank) disables splicing for the rest of
// the traversal. Scalars are always re-encoded from live state and their
// bytes compared against the previous stream, so an unmarked scalar change
// is self-detected and folded into the dirty set. The only trust placed in
// the application is that *unmarked bulk elements* (entries of Float64s /
// Int64s / Ints / Bytes collections) are unchanged; a tracker that lies
// about those produces a stale capture — the failure mode the chaos
// oracle's blinded-tracking sensitivity check exercises.
package pup

import (
	"bytes"
	"sort"
)

// Range is a half-open [Lo, Hi) byte interval of the packed stream.
type Range struct {
	Lo, Hi int
}

// rangeMax is the Hi used by MarkAll: past any real stream offset.
const rangeMax = int(^uint(0) >> 1)

// Slice returns the sub-range of a bulk field's span covering elements
// [lo, hi) of elemSize-byte elements. It assumes the span starts with the
// field's 4-byte length prefix, which holds for a field labelled
// immediately before a Float64s/Int64s/Ints/Bytes call (FieldSpans).
func (r Range) Slice(lo, hi, elemSize int) Range {
	base := r.Lo + 4
	return Range{Lo: base + lo*elemSize, Hi: base + hi*elemSize}
}

// NormalizeRanges sorts ranges by Lo and merges overlapping or adjacent
// ones in place, returning the compacted slice. Empty ranges are dropped.
func NormalizeRanges(rs []Range) []Range {
	if len(rs) == 0 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:0]
	for _, r := range rs {
		if r.Hi <= r.Lo {
			continue
		}
		if n := len(out); n > 0 && r.Lo <= out[n-1].Hi {
			if r.Hi > out[n-1].Hi {
				out[n-1].Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// DirtyTracker is the write-tracking capability a Program may implement.
// The runtime queries it at capture time (while the task is quiescent) and
// resets it after every successful capture; the application marks ranges
// from its own goroutine between captures, so no synchronization beyond
// the task's quiescence contract is needed.
type DirtyTracker interface {
	// DirtyRanges appends the ranges written since the last ResetDirty to
	// dst[:0] and returns them. ok is false while the tracker is blind
	// (before its first ResetDirty, i.e. in a fresh incarnation), which
	// callers must treat as all-dirty.
	DirtyRanges(dst []Range) (rs []Range, ok bool)
	// ResetDirty clears the write set and arms tracking.
	ResetDirty()
}

// WriteSet is an embeddable DirtyTracker. The zero value is blind
// (DirtyRanges reports ok=false), so a freshly constructed or
// checkpoint-restored program is conservatively captured in full until the
// first capture arms it. WriteSet must NOT be pupped: it is bookkeeping
// about the stream, not part of the stream.
type WriteSet struct {
	tracking bool
	ranges   []Range
}

// ResetDirty implements DirtyTracker.
func (w *WriteSet) ResetDirty() {
	w.tracking = true
	w.ranges = w.ranges[:0]
}

// Tracking reports whether the set has been armed by ResetDirty.
func (w *WriteSet) Tracking() bool { return w.tracking }

// MarkRange records a write to stream bytes [lo, hi). It is a no-op while
// blind. Adjacent or overlapping appends merge with the previous mark, so
// sweeping writes stay O(1) in memory.
func (w *WriteSet) MarkRange(lo, hi int) {
	if !w.tracking || hi <= lo {
		return
	}
	if n := len(w.ranges); n > 0 && lo <= w.ranges[n-1].Hi && w.ranges[n-1].Lo <= hi {
		if hi > w.ranges[n-1].Hi {
			w.ranges[n-1].Hi = hi
		}
		if lo < w.ranges[n-1].Lo {
			w.ranges[n-1].Lo = lo
		}
		return
	}
	w.ranges = append(w.ranges, Range{Lo: lo, Hi: hi})
}

// MarkSpan marks a whole field span (prefix included).
func (w *WriteSet) MarkSpan(r Range) { w.MarkRange(r.Lo, r.Hi) }

// MarkAll marks the entire stream dirty — the honest choice for an
// iteration that rewrote everything.
func (w *WriteSet) MarkAll() {
	if !w.tracking {
		return
	}
	w.ranges = append(w.ranges[:0], Range{Lo: 0, Hi: rangeMax})
}

// DirtyRanges implements DirtyTracker.
func (w *WriteSet) DirtyRanges(dst []Range) ([]Range, bool) {
	if !w.tracking {
		return dst[:0], false
	}
	return append(dst[:0], w.ranges...), true
}

// FieldSpans measures the stream span of every labelled field of obj with
// a Sizing traversal: spans[label] covers the bytes from that Label call
// to the next one (or the end of the stream). Applications use the spans
// to translate "I wrote field u" into stream ranges for a WriteSet. Spans
// depend on the current collection lengths; recompute after a shape
// change. Repeated labels keep the last occurrence.
func FieldSpans(obj Pupable) map[string]Range {
	p := &PUPer{mode: Sizing, spans: make(map[string]Range)}
	obj.Pup(p)
	p.flushSpan()
	return p.spans
}

// DirtyPackResult reports how PackDirtyInto produced its stream.
type DirtyPackResult struct {
	// Data is the packed stream (aliases the caller's buffer when Fast).
	Data []byte
	// Dirty is the effective normalized dirty set — the marked ranges plus
	// any scalar changes detected during packing. Valid only when Spliced;
	// nil otherwise (treat as all-dirty).
	Dirty []Range
	// Reused counts bytes spliced from prev instead of re-encoded.
	Reused int
	// Spliced reports that Data is offset-aligned with prev end to end:
	// every byte outside Dirty is byte-identical to prev, so per-chunk
	// checksums of clean chunks may be reused.
	Spliced bool
	// Fast reports the single-pass pack into the caller's buffer (as in
	// PackInto); false means the two-pass fallback allocated Data.
	Fast bool
}

// PackDirtyInto packs obj like PackInto, but when prev (the previous
// capture's packed stream for the same task) is supplied, bulk collection
// bodies are copied from prev with memcpy and only elements overlapping
// dirty are re-encoded from live state. dirty is normalized in place.
//
// The all-dirty fallback is automatic: a nil prev, a zero-capacity buf, a
// structural divergence from prev, or a buffer overflow all degrade to the
// ordinary full pack; the result is then correct but unspliced.
func PackDirtyInto(obj Pupable, buf, prev []byte, dirty []Range) (DirtyPackResult, error) {
	dirty = NormalizeRanges(dirty)
	if prev == nil || cap(buf) == 0 {
		data, fast, err := PackInto(obj, buf)
		return DirtyPackResult{Data: data, Fast: fast}, err
	}
	b := buf[:cap(buf)]
	p := packerPool.Get().(*PUPer)
	*p = PUPer{mode: Packing, buf: b, prev: prev, dirty: dirty}
	obj.Pup(p)
	off, overflow, perr := p.off, p.overflow, p.err
	diverged, reused, extra := p.diverged, p.reused, p.extra
	p.extra = nil // detach before reset; extra may be returned to the caller
	*p = PUPer{}
	packerPool.Put(p)
	switch {
	case perr == nil:
		res := DirtyPackResult{Data: b[:off], Fast: true}
		if !diverged && off == len(prev) {
			if len(extra) > 0 {
				dirty = NormalizeRanges(append(dirty, extra...))
			}
			res.Dirty, res.Reused, res.Spliced = dirty, reused, true
		}
		return res, nil
	case !overflow:
		return DirtyPackResult{}, perr
	}
	data, err := Pack(obj)
	return DirtyPackResult{Data: data}, err
}

// PackDirtyPatch packs obj by patching a retained older stream in place:
// buf's backing array must already hold a "base" stream (typically the
// capture from two epochs ago) that differs from prev — the previous
// capture's stream — only on bytes covered by reencode. Elements
// overlapping reencode are re-encoded from live state directly into buf;
// everything else is left untouched, so clean bytes cost nothing at all,
// not even the memcpy PackDirtyInto pays. reencode must therefore be a
// superset of dirty (the ranges written since prev) unioned with the
// ranges by which base differs from prev.
//
// Scalars and length prefixes are always re-encoded and compared against
// prev exactly as in PackDirtyInto, so the result's Dirty set — dirty plus
// every detected change — is relative to prev and valid for per-chunk
// checksum splicing against the previous capture. All the same fallbacks
// apply (divergence, overflow, short buffers); an unspliced result is
// still a correct stream, because bytes the traversal skipped are, by the
// caller's precondition, identical in base, prev, and live state.
func PackDirtyPatch(obj Pupable, buf, prev []byte, dirty, reencode []Range) (DirtyPackResult, error) {
	if prev == nil || cap(buf) == 0 {
		data, fast, err := PackInto(obj, buf)
		return DirtyPackResult{Data: data, Fast: fast}, err
	}
	dirty = NormalizeRanges(dirty)
	reencode = NormalizeRanges(reencode)
	b := buf[:cap(buf)]
	p := packerPool.Get().(*PUPer)
	*p = PUPer{mode: Packing, buf: b, prev: prev, dirty: reencode, patch: true}
	obj.Pup(p)
	off, overflow, perr := p.off, p.overflow, p.err
	diverged, reused, extra := p.diverged, p.reused, p.extra
	p.extra = nil // detach before reset; extra may be returned to the caller
	*p = PUPer{}
	packerPool.Put(p)
	switch {
	case perr == nil:
		res := DirtyPackResult{Data: b[:off], Fast: true}
		if !diverged && off == len(prev) {
			if len(extra) > 0 {
				dirty = NormalizeRanges(append(dirty, extra...))
			}
			res.Dirty, res.Reused, res.Spliced = dirty, reused, true
		}
		return res, nil
	case !overflow:
		return DirtyPackResult{}, perr
	}
	data, err := Pack(obj)
	return DirtyPackResult{Data: data}, err
}

// splicing reports whether the current Packing traversal is still aligned
// with a previous stream.
func (p *PUPer) splicing() bool {
	return p.mode == Packing && p.prev != nil && !p.diverged
}

// spliceBulk packs the body of a bulk collection (n elements of elemSize
// bytes at the current offset) by copying the previous stream's body and
// re-encoding only elements that overlap a dirty range. encode writes
// element i into its wire window. Returns true when it handled the body
// (including by failing on overflow); false means the caller must encode
// every element normally.
func (p *PUPer) spliceBulk(n, elemSize int, encode func(i int, w []byte)) bool {
	if !p.splicing() || p.err != nil {
		return false
	}
	body := n * elemSize
	lo := p.off
	hi := lo + body
	if hi > len(p.buf) {
		p.overflow = true
		p.fail("pack overflow at %d (+%d, buffer %d)", lo, body, len(p.buf))
		return true
	}
	if hi > len(p.prev) {
		// The previous stream is too short for this body: the structure
		// grew, offsets no longer line up. Encode normally from here on.
		p.diverged = true
		return false
	}
	if !p.patch {
		copy(p.buf[lo:hi], p.prev[lo:hi])
	}
	encoded := 0
	last := -1 // last re-encoded element index
	for p.dirtyIdx < len(p.dirty) {
		r := p.dirty[p.dirtyIdx]
		if r.Hi <= lo {
			p.dirtyIdx++
			continue
		}
		if r.Lo >= hi {
			break
		}
		rlo, rhi := r.Lo, r.Hi
		if rlo < lo {
			rlo = lo
		}
		if rhi > hi {
			rhi = hi
		}
		first := (rlo - lo) / elemSize
		lastEl := (rhi - 1 - lo) / elemSize
		if first <= last {
			first = last + 1
		}
		for i := first; i <= lastEl; i++ {
			encode(i, p.buf[lo+i*elemSize:lo+(i+1)*elemSize])
		}
		if lastEl >= first {
			encoded += lastEl - first + 1
			last = lastEl
			// Re-encoding is whole-element: where the mark cut into an
			// element, the bytes outside the mark were rewritten too, so
			// widen the effective dirty set to the element boundaries.
			if encStart := lo + first*elemSize; encStart < rlo {
				p.appendExtra(encStart, rlo)
			}
			if encEnd := lo + (lastEl+1)*elemSize; encEnd > rhi {
				p.appendExtra(rhi, encEnd)
			}
		}
		if r.Hi > hi {
			break // the range continues into later fields
		}
		p.dirtyIdx++
	}
	p.off = hi
	p.reused += body - encoded*elemSize
	return true
}

// noteScalar runs after a scalar's n bytes were packed at p.off-n: while
// splicing, it compares them against the previous stream and records an
// unmarked change in the extra dirty set, keeping chunk checksums
// consistent with the data even when the application never marks its
// scalars. Adjacent changed scalars merge into one range.
func (p *PUPer) noteScalar(n int) {
	if !p.splicing() {
		return
	}
	hi := p.off
	lo := hi - n
	if hi > len(p.prev) {
		p.diverged = true
		return
	}
	if bytes.Equal(p.buf[lo:hi], p.prev[lo:hi]) {
		return
	}
	// Already covered by a marked range? The cursor only ever moves
	// forward: offsets are monotonic, so ranges ending at or before lo are
	// behind us for every later field too. In patch mode p.dirty is the
	// re-encode set (it includes the previous epoch's dirt), so coverage by
	// it does not imply the caller's dirty set covers this scalar — record
	// the change unconditionally and let normalization dedupe.
	if !p.patch {
		for p.dirtyIdx < len(p.dirty) && p.dirty[p.dirtyIdx].Hi <= lo {
			p.dirtyIdx++
		}
		if p.dirtyIdx < len(p.dirty) && p.dirty[p.dirtyIdx].Lo <= lo && hi <= p.dirty[p.dirtyIdx].Hi {
			return
		}
	}
	p.appendExtra(lo, hi)
}

// appendExtra records [lo, hi) in the detected-dirty set, merging with the
// previous entry when adjacent or overlapping (appends arrive in stream
// order because offsets are monotonic).
func (p *PUPer) appendExtra(lo, hi int) {
	if k := len(p.extra); k > 0 && p.extra[k-1].Hi >= lo {
		if hi > p.extra[k-1].Hi {
			p.extra[k-1].Hi = hi
		}
		return
	}
	p.extra = append(p.extra, Range{Lo: lo, Hi: hi})
}

// notePrefix runs after a 4-byte length prefix was packed: a prefix that
// differs from the previous stream means the collection changed shape and
// every later offset shifts, so splicing is disabled for the rest of the
// traversal.
func (p *PUPer) notePrefix() {
	if !p.splicing() {
		return
	}
	if p.off > len(p.prev) || !bytes.Equal(p.buf[p.off-4:p.off], p.prev[p.off-4:p.off]) {
		p.diverged = true
	}
}

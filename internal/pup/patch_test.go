package pup

import (
	"bytes"
	"testing"
)

// packPatchEpochs drives the three-epoch patch protocol the runtime uses:
// epoch 0 is a full pack (the retained base buffer), epoch 1 a copy-splice
// against it (PackDirtyInto), and epoch 2 a patch-in-place capture that
// re-encodes the union of both epochs' dirty sets directly into the base
// buffer. It returns the patch result, the epoch-1 stream it was spliced
// against, and a from-scratch pack of the final state for comparison.
func packPatchEpochs(t *testing.T, tp *trackedProg, mut1, mut2 func(tp *trackedProg, spans map[string]Range)) (res DirtyPackResult, prev, fresh []byte) {
	t.Helper()
	base, err := Pack(tp)
	if err != nil {
		t.Fatal(err)
	}
	tp.ResetDirty()
	spans := FieldSpans(tp)

	mut1(tp, spans)
	d1, ok := tp.DirtyRanges(nil)
	if !ok {
		t.Fatal("tracker blind after ResetDirty")
	}
	r1, err := PackDirtyInto(tp, make([]byte, 0, len(base)), base, d1)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Spliced {
		t.Fatal("epoch-1 capture must splice for the patch protocol to arm")
	}
	tp.ResetDirty()

	mut2(tp, spans)
	d2, ok := tp.DirtyRanges(nil)
	if !ok {
		t.Fatal("tracker blind after second ResetDirty")
	}
	union := append(append([]Range(nil), d2...), r1.Dirty...)
	res, err = PackDirtyPatch(tp, base[:0], r1.Data, d2, union)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err = Pack(tp)
	if err != nil {
		t.Fatal(err)
	}
	return res, r1.Data, fresh
}

func TestPackDirtyPatchTable(t *testing.T) {
	type testCase struct {
		name        string
		mut1, mut2  func(tp *trackedProg, spans map[string]Range)
		wantSpliced bool
	}
	mark := func(tp *trackedProg, spans map[string]Range, el int, v float64) {
		tp.Vals[el] = v
		tp.MarkSpan(spans["vals"].Slice(el, el+1, 8))
	}
	cases := []testCase{
		{
			// Nothing written in epoch 2: the patch only re-encodes epoch
			// 1's stale bytes, restoring nothing is dirty vs prev.
			name:        "second-epoch-clean",
			mut1:        func(tp *trackedProg, spans map[string]Range) { mark(tp, spans, 3, -1) },
			mut2:        func(tp *trackedProg, spans map[string]Range) {},
			wantSpliced: true,
		},
		{
			// Disjoint writes: the base buffer is stale at element 3 (epoch
			// 1's write) and element 9 (epoch 2's); both must re-encode.
			name: "disjoint-elements",
			mut1: func(tp *trackedProg, spans map[string]Range) { mark(tp, spans, 3, -1) },
			mut2: func(tp *trackedProg, spans map[string]Range) { mark(tp, spans, 9, -2) },
			wantSpliced: true,
		},
		{
			// The same element written in both epochs: the union collapses.
			name: "overlapping-elements",
			mut1: func(tp *trackedProg, spans map[string]Range) { mark(tp, spans, 5, 10) },
			mut2: func(tp *trackedProg, spans map[string]Range) { mark(tp, spans, 5, 20) },
			wantSpliced: true,
		},
		{
			// An unmarked scalar change in epoch 2 must be self-detected and
			// land in the result's dirty set even though the scalar's offset
			// is nowhere in the marks.
			name: "unmarked-scalar",
			mut1: func(tp *trackedProg, spans map[string]Range) { mark(tp, spans, 1, 7) },
			mut2: func(tp *trackedProg, spans map[string]Range) { tp.Scale = 9.75 },
			wantSpliced: true,
		},
		{
			// Writes to both bulk fields across the two epochs.
			name: "both-bulk-fields",
			mut1: func(tp *trackedProg, spans map[string]Range) {
				tp.Blob[4] ^= 0xaa
				tp.MarkSpan(spans["blob"].Slice(4, 5, 1))
			},
			mut2: func(tp *trackedProg, spans map[string]Range) { mark(tp, spans, 0, 123) },
			wantSpliced: true,
		},
		{
			// A shape change in epoch 2 shifts every later offset: the patch
			// must fall back, and the fallback stream must still be correct.
			name: "shape-change-falls-back",
			mut1: func(tp *trackedProg, spans map[string]Range) { mark(tp, spans, 2, 5) },
			mut2: func(tp *trackedProg, spans map[string]Range) {
				tp.Vals = append(tp.Vals, 777)
				tp.MarkAll()
			},
			wantSpliced: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := newTrackedProg(16, 32)
			res, prev, fresh := packPatchEpochs(t, tp, tc.mut1, tc.mut2)
			if !bytes.Equal(res.Data, fresh) {
				t.Fatalf("patched stream differs from a fresh pack\n got %x\nwant %x", res.Data, fresh)
			}
			if res.Spliced != tc.wantSpliced {
				t.Fatalf("Spliced = %v, want %v", res.Spliced, tc.wantSpliced)
			}
			if res.Spliced {
				checkSpliceInvariant(t, res, prev)
			}
		})
	}
}

// TestPackDirtyPatchSkipsCleanBytes pins the point of the patch path: a
// clean bulk byte is neither copied nor re-encoded, which shows up as the
// base buffer's untouched garbage surviving anywhere we deliberately
// corrupt it OUTSIDE the re-encode set's chunks... rather than poke at
// internals, assert the reuse accounting: with one dirty element per
// epoch, nearly the whole bulk body must be reported reused.
func TestPackDirtyPatchSkipsCleanBytes(t *testing.T) {
	tp := newTrackedProg(256, 0)
	res, _, _ := packPatchEpochs(t, tp,
		func(tp *trackedProg, spans map[string]Range) {
			tp.Vals[7] = -7
			tp.MarkSpan(spans["vals"].Slice(7, 8, 8))
		},
		func(tp *trackedProg, spans map[string]Range) {
			tp.Vals[100] = -100
			tp.MarkSpan(spans["vals"].Slice(100, 101, 8))
		})
	if !res.Spliced {
		t.Fatal("expected spliced patch")
	}
	// 256 elements, 2 re-encoded (epoch-1's stale one and epoch-2's dirty
	// one): at least 253 elements' worth of bytes must be reused.
	if want := 253 * 8; res.Reused < want {
		t.Fatalf("Reused = %d, want >= %d", res.Reused, want)
	}
	// Only epoch-2's write (and possibly scalar noise) may be dirty vs
	// prev; epoch-1's element re-encodes to exactly its prev bytes.
	for _, r := range res.Dirty {
		if r.Hi-r.Lo > 64 {
			t.Fatalf("dirty range %v suspiciously wide for a single-element write", r)
		}
	}
}

// TestPackDirtyPatchStaleScalar exercises the noteScalar difference in
// patch mode: a scalar whose offset lies inside the re-encode set (because
// epoch 1 changed it) but which ALSO changed in epoch 2 must still be
// reported dirty vs prev — coverage by the re-encode set proves nothing.
func TestPackDirtyPatchStaleScalar(t *testing.T) {
	tp := newTrackedProg(8, 0)
	res, prev, fresh := packPatchEpochs(t, tp,
		func(tp *trackedProg, spans map[string]Range) {
			tp.Scale = 2.5
			tp.MarkSpan(spans["scale"])
		},
		func(tp *trackedProg, spans map[string]Range) {
			tp.Scale = 3.5 // unmarked: must be self-detected
		})
	if !bytes.Equal(res.Data, fresh) {
		t.Fatal("patched stream differs from a fresh pack")
	}
	if !res.Spliced {
		t.Fatal("expected spliced patch")
	}
	checkSpliceInvariant(t, res, prev)
}

package pup

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// demo is a representative application state with every supported kind.
type demo struct {
	Iter    int
	Count   uint64
	Flag    bool
	Temp    float64
	Grid    []float64
	IDs     []int64
	Tags    []int
	Raw     []byte
	Name    string
	Nested  inner
	Scratch float64 // replica-variant; excluded from comparison
}

type inner struct {
	A, B float64
}

func (in *inner) Pup(p *PUPer) {
	p.Label("inner.A")
	p.Float64(&in.A)
	p.Label("inner.B")
	p.Float64(&in.B)
}

func (d *demo) Pup(p *PUPer) {
	p.Label("iter")
	p.Int(&d.Iter)
	p.Label("count")
	p.Uint64(&d.Count)
	p.Label("flag")
	p.Bool(&d.Flag)
	p.Label("temp")
	p.Float64(&d.Temp)
	p.Label("grid")
	p.Float64s(&d.Grid)
	p.Label("ids")
	p.Int64s(&d.IDs)
	p.Label("tags")
	p.Ints(&d.Tags)
	p.Label("raw")
	p.Bytes(&d.Raw)
	p.Label("name")
	p.String(&d.Name)
	p.Object(&d.Nested)
	p.Skip(func(p *PUPer) {
		p.Label("scratch")
		p.Float64(&d.Scratch)
	})
}

func sampleDemo() *demo {
	return &demo{
		Iter:    42,
		Count:   1 << 40,
		Flag:    true,
		Temp:    3.14159,
		Grid:    []float64{1, 2.5, -3, math.Inf(1)},
		IDs:     []int64{-9, 0, 1 << 50},
		Tags:    []int{7, -8},
		Raw:     []byte{0xde, 0xad, 0xbe, 0xef},
		Name:    "jacobi3d",
		Nested:  inner{A: 1.5, B: -2.5},
		Scratch: 99.9,
	}
}

func TestRoundTrip(t *testing.T) {
	orig := sampleDemo()
	data, err := Pack(orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != Size(orig) {
		t.Fatalf("pack size %d != Size %d", len(data), Size(orig))
	}
	var back demo
	if err := Unpack(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Iter != orig.Iter || back.Count != orig.Count || back.Flag != orig.Flag ||
		back.Temp != orig.Temp || back.Name != orig.Name || back.Nested != orig.Nested ||
		back.Scratch != orig.Scratch {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, orig)
	}
	for i := range orig.Grid {
		if back.Grid[i] != orig.Grid[i] {
			t.Fatalf("grid[%d] = %v, want %v", i, back.Grid[i], orig.Grid[i])
		}
	}
	for i := range orig.IDs {
		if back.IDs[i] != orig.IDs[i] {
			t.Fatal("ids mismatch")
		}
	}
	for i := range orig.Tags {
		if back.Tags[i] != orig.Tags[i] {
			t.Fatal("tags mismatch")
		}
	}
	if string(back.Raw) != string(orig.Raw) {
		t.Fatal("raw mismatch")
	}
}

func TestCheckMatches(t *testing.T) {
	obj := sampleDemo()
	data, err := Pack(obj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(obj, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatalf("identical state reported mismatch: %v", res.Mismatches)
	}
}

func TestCheckDetectsEveryFieldKind(t *testing.T) {
	base := sampleDemo()
	data, err := Pack(base)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*demo){
		"iter":    func(d *demo) { d.Iter++ },
		"count":   func(d *demo) { d.Count ^= 1 },
		"flag":    func(d *demo) { d.Flag = !d.Flag },
		"temp":    func(d *demo) { d.Temp += 1 },
		"grid":    func(d *demo) { d.Grid[2] = 7 },
		"ids":     func(d *demo) { d.IDs[0] = 8 },
		"tags":    func(d *demo) { d.Tags[1] = 0 },
		"raw":     func(d *demo) { d.Raw[3] ^= 0x80 },
		"name":    func(d *demo) { d.Name = "jacobi3e" },
		"inner.B": func(d *demo) { d.Nested.B = 0 },
	}
	for label, mutate := range mutations {
		d := sampleDemo()
		mutate(d)
		res, err := Check(d, data, 0)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Match {
			t.Errorf("mutation of %s not detected", label)
			continue
		}
		if res.Mismatches[0].Label != label {
			t.Errorf("mutation of %s attributed to %s", label, res.Mismatches[0].Label)
		}
	}
}

func TestSkipRegionNotCompared(t *testing.T) {
	base := sampleDemo()
	data, err := Pack(base)
	if err != nil {
		t.Fatal(err)
	}
	d := sampleDemo()
	d.Scratch = -123456 // differs, but inside Skip
	res, err := Check(d, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatalf("skip region was compared: %v", res.Mismatches)
	}
	// But the skipped field still round-trips.
	var back demo
	if err := Unpack(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scratch != base.Scratch {
		t.Fatal("skip region did not round trip")
	}
}

func TestRelativeTolerance(t *testing.T) {
	base := sampleDemo()
	data, err := Pack(base)
	if err != nil {
		t.Fatal(err)
	}
	d := sampleDemo()
	d.Temp *= 1 + 1e-9 // tiny round-off style difference
	if res, _ := Check(d, data, 0); res.Match {
		t.Fatal("exact compare should flag 1e-9 relative difference")
	}
	if res, _ := Check(d, data, 1e-6); !res.Match {
		t.Fatal("1e-6 tolerance should accept 1e-9 relative difference")
	}
	d.Temp = base.Temp * 1.01
	if res, _ := Check(d, data, 1e-6); res.Match {
		t.Fatal("1%% difference should exceed 1e-6 tolerance")
	}
}

func TestNaNEqualsNaN(t *testing.T) {
	d := &demo{Grid: []float64{math.NaN()}, Temp: math.NaN()}
	data, err := Pack(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(d, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatal("NaN should compare equal to itself in checkpoints")
	}
}

func TestStructuralLengthMismatch(t *testing.T) {
	base := sampleDemo()
	data, err := Pack(base)
	if err != nil {
		t.Fatal(err)
	}
	d := sampleDemo()
	d.Grid = append(d.Grid, 5)
	if _, err := Check(d, data, 0); err == nil {
		t.Fatal("length divergence must be a structural error")
	}
}

func TestUnpackShortBuffer(t *testing.T) {
	base := sampleDemo()
	data, err := Pack(base)
	if err != nil {
		t.Fatal(err)
	}
	var back demo
	if err := Unpack(data[:len(data)-3], &back); err == nil {
		t.Fatal("short buffer must fail")
	}
	if err := Unpack(append(data, 0), &back); err == nil {
		t.Fatal("trailing garbage must fail")
	}
}

func TestPackOverflowDetected(t *testing.T) {
	d := sampleDemo()
	p := NewPacker(make([]byte, 4)) // far too small
	d.Pup(p)
	if p.Err() == nil {
		t.Fatal("pack into tiny buffer must error")
	}
}

func TestBitFlipAnywhereDetected(t *testing.T) {
	d := sampleDemo()
	data, err := Pack(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(data))
		bit := byte(1) << rng.Intn(8)
		data[i] ^= bit
		res, err := Check(d, data, 0)
		// Flips in length prefixes produce structural errors; flips in
		// the Skip region are legitimately invisible; everything else
		// must surface as a mismatch.
		if err == nil && res.Match {
			if !flipInSkipRegion(d, i) {
				t.Fatalf("bit flip at byte %d undetected", i)
			}
		}
		data[i] ^= bit
	}
}

// flipInSkipRegion reports whether byte offset i of the packed demo lies in
// the Scratch field (the final 8 bytes, inside Skip).
func flipInSkipRegion(d *demo, i int) bool {
	return i >= Size(d)-8
}

func TestMismatchSaturation(t *testing.T) {
	a := &demo{Grid: make([]float64, 100)}
	b := &demo{Grid: make([]float64, 100)}
	for i := range b.Grid {
		b.Grid[i] = 1
	}
	data, err := Pack(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(b, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Match {
		t.Fatal("expected mismatches")
	}
	if len(res.Mismatches) > MaxMismatches {
		t.Fatalf("mismatch list not bounded: %d", len(res.Mismatches))
	}
}

func TestMismatchString(t *testing.T) {
	m := Mismatch{Label: "grid", Offset: 12, Local: 1, Remote: 2}
	if !strings.Contains(m.String(), "grid") {
		t.Fatal("Mismatch.String should include the label")
	}
}

func TestModeString(t *testing.T) {
	for m, s := range map[Mode]string{Sizing: "sizing", Packing: "packing", Unpacking: "unpacking", Checking: "checking"} {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should format")
	}
}

// Property: pack/unpack round-trips arbitrary payloads.
func TestRoundTripProperty(t *testing.T) {
	f := func(iter int, count uint64, flag bool, temp float64, grid []float64, raw []byte, name string) bool {
		d := &demo{Iter: iter, Count: count, Flag: flag, Temp: temp, Grid: grid, Raw: raw, Name: name}
		data, err := Pack(d)
		if err != nil {
			return false
		}
		var back demo
		if err := Unpack(data, &back); err != nil {
			return false
		}
		if back.Iter != d.Iter || back.Count != d.Count || back.Flag != d.Flag || back.Name != d.Name {
			return false
		}
		if len(back.Grid) != len(d.Grid) || len(back.Raw) != len(d.Raw) {
			return false
		}
		for i := range d.Grid {
			if back.Grid[i] != d.Grid[i] && !(math.IsNaN(back.Grid[i]) && math.IsNaN(d.Grid[i])) {
				return false
			}
		}
		for i := range d.Raw {
			if back.Raw[i] != d.Raw[i] {
				return false
			}
		}
		// Temp: NaN-aware compare.
		if back.Temp != d.Temp && !(math.IsNaN(back.Temp) && math.IsNaN(d.Temp)) {
			return false
		}
		// Self-check always matches.
		res, err := Check(&back, data, 0)
		return err == nil && res.Match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPack(b *testing.B) {
	d := &demo{Grid: make([]float64, 1<<16), Raw: make([]byte, 1<<16)}
	b.SetBytes(int64(Size(d)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheck(b *testing.B) {
	d := &demo{Grid: make([]float64, 1<<16), Raw: make([]byte, 1<<16)}
	data, err := Pack(d)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Check(d, data, 0)
		if err != nil || !res.Match {
			b.Fatal("check failed")
		}
	}
}

package pup

import (
	"bytes"
	"testing"
)

func demoState() *demo {
	return &demo{
		Iter:   7,
		Count:  42,
		Flag:   true,
		Temp:   3.25,
		Grid:   []float64{1, 2, 3, 4.5},
		IDs:    []int64{-9, 9},
		Tags:   []int{1, 2, 3},
		Raw:    []byte("raw-bytes"),
		Name:   "packinto",
		Nested: inner{A: 0.5, B: -0.5},
	}
}

func TestPackIntoMatchesPack(t *testing.T) {
	d := demoState()
	want, err := Pack(d)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	buf := make([]byte, 0, len(want))
	got, fast, err := PackInto(d, buf)
	if err != nil {
		t.Fatalf("PackInto: %v", err)
	}
	if !fast {
		t.Fatalf("PackInto with exact-capacity buffer took the slow path")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("PackInto bytes differ from Pack:\n got %x\nwant %x", got, want)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatalf("PackInto fast path did not reuse the caller's buffer")
	}
	var back demo
	if err := Unpack(got, &back); err != nil {
		t.Fatalf("Unpack of fast-packed data: %v", err)
	}
}

func TestPackIntoOverflowFallsBack(t *testing.T) {
	d := demoState()
	want, err := Pack(d)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	// One byte short: the single-pass attempt must overflow and fall back
	// to the two-pass path, returning correct bytes with fast=false.
	short := make([]byte, 0, len(want)-1)
	got, fast, err := PackInto(d, short)
	if err != nil {
		t.Fatalf("PackInto: %v", err)
	}
	if fast {
		t.Fatalf("PackInto reported fast path despite a too-small buffer")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("PackInto fallback bytes differ from Pack")
	}
}

func TestPackIntoNilAndOversizedBuffers(t *testing.T) {
	d := demoState()
	want, _ := Pack(d)

	got, fast, err := PackInto(d, nil)
	if err != nil || fast {
		t.Fatalf("PackInto(nil): fast=%v err=%v, want slow path, no error", fast, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("PackInto(nil) bytes differ from Pack")
	}

	big := make([]byte, 0, 4*len(want))
	got, fast, err = PackInto(d, big)
	if err != nil || !fast {
		t.Fatalf("PackInto(oversized): fast=%v err=%v, want fast path, no error", fast, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("PackInto(oversized) bytes differ from Pack")
	}
}

func TestPackIntoGrowingState(t *testing.T) {
	// The size-hint protocol: pack once, grow the state, pack again into
	// the stale-sized buffer. The second call must fall back (overflow),
	// still produce correct bytes, and the returned length then serves as
	// a valid hint for the third call.
	d := demoState()
	first, _, err := PackInto(d, nil)
	if err != nil {
		t.Fatalf("PackInto: %v", err)
	}
	d.Grid = append(d.Grid, 5, 6, 7, 8)
	buf := make([]byte, 0, len(first))
	second, fast, err := PackInto(d, buf)
	if err != nil {
		t.Fatalf("PackInto after growth: %v", err)
	}
	if fast {
		t.Fatalf("PackInto reported fast path despite grown state")
	}
	want, _ := Pack(d)
	if !bytes.Equal(second, want) {
		t.Fatalf("PackInto after growth differs from Pack")
	}
	third, fast, err := PackInto(d, make([]byte, 0, len(second)))
	if err != nil || !fast {
		t.Fatalf("PackInto with refreshed hint: fast=%v err=%v", fast, err)
	}
	if !bytes.Equal(third, want) {
		t.Fatalf("PackInto with refreshed hint differs from Pack")
	}
}

package pup

import (
	"encoding/binary"
	"math"
	"sort"
)

// Additional wire types beyond the core set in pup.go: single-precision
// floats (common in mixed-precision HPC codes), 16-bit integers, nested
// Pupable slices, and string-keyed maps (serialized in sorted key order so
// packing stays deterministic — a requirement for replica comparison).

// Float32 pipes a float32 with tolerance-aware comparison.
func (p *PUPer) Float32(v *float32) {
	w := p.raw(4)
	if w == nil {
		return
	}
	switch p.mode {
	case Packing:
		binary.LittleEndian.PutUint32(w, math.Float32bits(*v))
	case Unpacking:
		*v = math.Float32frombits(binary.LittleEndian.Uint32(w))
	case Checking:
		if p.skipDepth == 0 {
			r := math.Float32frombits(binary.LittleEndian.Uint32(w))
			if !p.floatEqual(float64(*v), float64(r)) {
				p.addMismatch(float64(*v), float64(r))
			}
		}
	}
}

// Float32s pipes a []float32, resizing on unpack.
func (p *PUPer) Float32s(v *[]float32) {
	n := p.length(len(*v))
	if n < 0 {
		return
	}
	if p.mode == Unpacking && len(*v) != n {
		*v = make([]float32, n)
	}
	if p.mode == Sizing {
		p.off += 4 * n
		return
	}
	for i := range *v {
		if p.err != nil {
			return
		}
		p.Float32(&(*v)[i])
	}
}

// Uint16 pipes a uint16.
func (p *PUPer) Uint16(v *uint16) {
	w := p.raw(2)
	if w == nil {
		return
	}
	switch p.mode {
	case Packing:
		binary.LittleEndian.PutUint16(w, *v)
	case Unpacking:
		*v = binary.LittleEndian.Uint16(w)
	case Checking:
		if p.skipDepth == 0 {
			r := binary.LittleEndian.Uint16(w)
			if r != *v {
				p.addMismatch(float64(*v), float64(r))
			}
		}
	}
}

// Strings pipes a []string, resizing on unpack.
func (p *PUPer) Strings(v *[]string) {
	n := p.length(len(*v))
	if n < 0 {
		return
	}
	if p.mode == Unpacking && len(*v) != n {
		*v = make([]string, n)
	}
	for i := range *v {
		if p.err != nil {
			return
		}
		p.String(&(*v)[i])
	}
}

// Objects pipes a slice of nested Pupables, using mk to allocate elements
// on unpack.
func Objects[T Pupable](p *PUPer, v *[]T, mk func() T) {
	n := p.length(len(*v))
	if n < 0 {
		return
	}
	if p.Mode() == Unpacking && len(*v) != n {
		*v = make([]T, n)
		for i := range *v {
			(*v)[i] = mk()
		}
	}
	for i := range *v {
		if p.Err() != nil {
			return
		}
		p.Object((*v)[i])
	}
}

// MapStringFloat64 pipes a map[string]float64 in sorted key order, so two
// replicas holding equal maps always produce byte-identical checkpoints
// regardless of Go's map iteration order.
func (p *PUPer) MapStringFloat64(v *map[string]float64) {
	n := p.length(len(*v))
	if n < 0 {
		return
	}
	switch p.mode {
	case Unpacking:
		*v = make(map[string]float64, n)
		for i := 0; i < n; i++ {
			if p.err != nil {
				return
			}
			var k string
			var val float64
			p.String(&k)
			p.Float64(&val)
			(*v)[k] = val
		}
	default:
		keys := make([]string, 0, len(*v))
		for k := range *v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if p.err != nil {
				return
			}
			kk := k
			val := (*v)[k]
			p.String(&kk)
			p.Float64(&val)
			if p.mode == Checking && p.err != nil {
				return
			}
		}
	}
}

// MapStringInt64 pipes a map[string]int64 in sorted key order.
func (p *PUPer) MapStringInt64(v *map[string]int64) {
	n := p.length(len(*v))
	if n < 0 {
		return
	}
	switch p.mode {
	case Unpacking:
		*v = make(map[string]int64, n)
		for i := 0; i < n; i++ {
			if p.err != nil {
				return
			}
			var k string
			var val int64
			p.String(&k)
			p.Int64(&val)
			(*v)[k] = val
		}
	default:
		keys := make([]string, 0, len(*v))
		for k := range *v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if p.err != nil {
				return
			}
			kk := k
			val := (*v)[k]
			p.String(&kk)
			p.Int64(&val)
		}
	}
}

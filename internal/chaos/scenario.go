// Package chaos is ACR's deterministic fault-injection campaign engine:
// the systematic counterpart of the paper's §6.1 injection experiments.
//
// Where internal/failure replays a time-ordered plan against the wall
// clock, chaos aims faults at *protocol-phase boundaries* — mid-consensus,
// during capture, inside the medium/weak recovery window, on the store's
// read/write paths — which is exactly where checkpoint/restart protocols
// break. A Scenario describes a fault campaign (kinds, targets, and
// phase-aware triggers); the Engine arms it against labeled injection
// points threaded through internal/runtime, internal/core, and
// internal/ckptstore; the Oracle checks every run against the scheme's
// guarantees; and the campaign runner (cmd/acrsoak) sweeps seed ranges with
// same-seed→identical-report determinism plus ddmin-style fault-schedule
// minimization.
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"acr/internal/chaos/point"
	"acr/internal/core"
)

// FaultKind is the action a fault performs when its trigger fires.
type FaultKind string

// Fault kinds.
const (
	// MsgBitFlip flips one random bit of a scalar message payload in
	// flight (point.RuntimeDeliver). Non-scalar payloads are left intact
	// and the fault stays armed for the next matching delivery.
	MsgBitFlip FaultKind = "msg_bitflip"
	// CkptCorrupt flips one random bit in the user-data tail of a
	// checkpoint just accepted by the store (point.StoreWrite). On a disk
	// tier the flip lands in the file — true at-rest corruption that the
	// tier's read-path verification catches; on the memory tier it lands
	// in the resident payload, which the buddy comparison catches.
	CkptCorrupt FaultKind = "ckpt_corrupt"
	// Crash fail-stops the target node.
	Crash FaultKind = "crash"
	// BuddyDoubleCrash fail-stops the target node and its buddy (the same
	// node index in the other replica) in one firing.
	BuddyDoubleCrash FaultKind = "buddy_double_crash"
	// HeartbeatDelay stalls the target physical node's heartbeat refresh
	// by Fault.Delay once (point.RuntimeHeartbeat).
	HeartbeatDelay FaultKind = "heartbeat_delay"
	// FrameDrop discards one exchange frame before it reaches the link
	// (point.NetFrame, via Info.Drop) — a targeted loss on top of the
	// link's probabilistic faults, forcing a deterministic retransmission.
	// Requires the scenario to enable the hardened exchange (loss/dup/
	// reorder rates, which may be zero-but-set via a FrameDrop fault).
	FrameDrop FaultKind = "frame_drop"
	// TrackerBlind mutes the target task's dirty-write marks in BOTH
	// replicas (point.CoreCapture, where the machine is quiescent). The
	// task keeps writing its pad but stops reporting the writes, so every
	// later capture splices stale pad bytes — the lying-tracker failure
	// mode the incremental capture path's trust model cannot detect.
	// Because both replicas lie identically, the buddy comparison passes
	// and the stale checkpoint commits; a later restore from it loses pad
	// increments permanently, which the golden-pad invariant must report.
	// Requires PadFloats >= 2 (scalar fields self-detect; only a bulk
	// field can go stale).
	TrackerBlind FaultKind = "tracker_blind"
	// RemoteOpFail force-fails one remote-store operation in flight via
	// Info.Drop (point.RemotePut / point.RemoteGet) — a deterministic
	// transient the Resilient wrapper must absorb with a retry. Requires
	// Scenario.RemoteEvery > 0.
	RemoteOpFail FaultKind = "remote_op_fail"
	// RemoteDark takes the remote tier fully dark: every later remote
	// operation fails with ErrRemoteUnavailable until Fault.Count ops have
	// been burned (Count <= 0 keeps it dark for the rest of the run). The
	// ladder's local tiers and the Resilient fallback must absorb the
	// outage — a dark remote may never abort a job. Requires
	// Scenario.RemoteEvery > 0.
	RemoteDark FaultKind = "remote_dark"
)

// validKind reports whether k is a known fault kind.
func validKind(k FaultKind) bool {
	switch k {
	case MsgBitFlip, CkptCorrupt, Crash, BuddyDoubleCrash, HeartbeatDelay, FrameDrop, TrackerBlind,
		RemoteOpFail, RemoteDark:
		return true
	}
	return false
}

// Target names the fault's victim. A -1 field is resolved to a uniformly
// random legal value from the run seed when the scenario is armed, so the
// resolved campaign is still deterministic per seed.
type Target struct {
	Replica int `json:"replica"`
	Node    int `json:"node"`
	Task    int `json:"task"`
}

func (t Target) String() string {
	f := func(v int) string {
		if v < 0 {
			return "*"
		}
		return fmt.Sprint(v)
	}
	return "r" + f(t.Replica) + "/n" + f(t.Node) + "/t" + f(t.Task)
}

// Trigger is a protocol-phase-aware firing condition: the fault executes on
// the Occurrence-th firing of Point whose context matches the fault target.
// Occurrence <= 0 means the first matching firing.
type Trigger struct {
	Point      point.ID `json:"point"`
	Occurrence int      `json:"occurrence"`
}

// Fault is one planned injection.
type Fault struct {
	Kind    FaultKind `json:"kind"`
	Target  Target    `json:"target"`
	Trigger Trigger   `json:"trigger"`
	// Both (CkptCorrupt only) corrupts the target's checkpoint AND its
	// buddy's checkpoint of the same epoch with the identical bit flip —
	// the corruption the buddy comparison is structurally blind to. This
	// is the oracle-sensitivity mode: it emulates a disabled comparison,
	// and a correct oracle must report the resulting SDC escape.
	Both bool `json:"both,omitempty"`
	// Delay is the heartbeat stall for HeartbeatDelay.
	Delay Duration `json:"delay,omitempty"`
	// Count (RemoteDark only) is the failed-op budget of the outage: the
	// remote self-heals after Count operations fail dark. <= 0 keeps the
	// remote dark for the rest of the run.
	Count int `json:"count,omitempty"`
}

// Duration is a time.Duration that marshals as a string ("8ms") so
// scenario JSON stays human-editable.
type Duration time.Duration

// MarshalJSON encodes the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or integer nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("chaos: bad duration %s", data)
	}
	*d = Duration(n)
	return nil
}

// Scenario is one fault campaign against one machine shape and scheme. The
// zero value is not runnable; fill the fields or parse JSON.
type Scenario struct {
	Name string `json:"name"`
	// Machine shape and workload length.
	Nodes  int `json:"nodes"`
	Tasks  int `json:"tasks"`
	Spares int `json:"spares"`
	Iters  int `json:"iters"`
	// Scheme is "strong" | "medium" | "weak"; Comparison "full" |
	// "checksum"; Store "mem" | "disk".
	Scheme     string `json:"scheme"`
	Comparison string `json:"comparison"`
	Store      string `json:"store"`
	// PaceEvery forces a checkpoint round every N progress reports —
	// deterministic, progress-based pacing instead of the wall-clock
	// interval, so the same seed schedules the same number of faults
	// against the same protocol phases regardless of host speed.
	PaceEvery int `json:"pace_every"`
	// FlushEvery enables the durable flush tier (core.Config.FlushEvery):
	// every K-th commit is flushed to an owned disk tier, the escalation
	// target for buddy-pair double faults. Zero disables it.
	FlushEvery int `json:"flush_every,omitempty"`
	// RemoteEvery enables the remote checkpoint tier
	// (core.Config.RemoteFlushEvery): every K-th commit is uploaded to a
	// simulated object store wrapped in the Resilient retry/breaker layer
	// with a local fallback, and recovery gains the tier-3 rung. The
	// campaign remote runs with zero latency and zero probabilistic fault
	// rates; all remote faults are scheduled through the engine.
	RemoteEvery int `json:"remote_every,omitempty"`
	// Degraded enables spare-exhaustion folding (core.Config.Degraded).
	Degraded bool `json:"degraded,omitempty"`
	// Loss / Dup / Reorder enable the hardened checkpoint exchange with
	// the given link fault probabilities (core.Config.Exchange). All zero
	// (and no FrameDrop fault) keeps the direct in-process path.
	Loss    float64 `json:"loss,omitempty"`
	Dup     float64 `json:"dup,omitempty"`
	Reorder float64 `json:"reorder,omitempty"`
	// PadFloats sizes RingProg's write-tracked bulk pad (see workload.go).
	// Zero keeps the historical scalar-only workload; >= 2 routes every
	// capture through the dirty splice/patch path with a mostly-clean bulk
	// body, including a trailing sentinel element the workload never
	// writes. 1 is rejected (a one-element pad is all sentinel, so no
	// iteration could write it).
	PadFloats int `json:"pad_floats,omitempty"`
	// ChunkSize overrides the checkpoint chunk granularity
	// (core.Config.ChunkSize). Zero keeps the default; pad scenarios set
	// it small so the clean pad tail occupies its own chunks, separate
	// from the per-iteration scalar churn.
	ChunkSize int `json:"chunk_size,omitempty"`
	// Faults is the campaign schedule.
	Faults []Fault `json:"faults"`
}

// exchangeEnabled reports whether the scenario routes the checkpoint
// exchange through the lossy link (explicit rates, or a FrameDrop fault
// that needs NetFrame firings to trigger on).
func (s *Scenario) exchangeEnabled() bool {
	if s.Loss > 0 || s.Dup > 0 || s.Reorder > 0 {
		return true
	}
	for _, f := range s.Faults {
		if f.Kind == FrameDrop {
			return true
		}
	}
	return false
}

// Validate checks the scenario is runnable.
func (s *Scenario) Validate() error {
	switch {
	case s.Nodes <= 0 || s.Tasks <= 0:
		return fmt.Errorf("chaos: invalid machine shape %dx%d", s.Nodes, s.Tasks)
	case s.Iters <= 0:
		return fmt.Errorf("chaos: Iters must be positive")
	case s.PaceEvery <= 0:
		return fmt.Errorf("chaos: PaceEvery must be positive (deterministic pacing is required)")
	}
	if _, err := schemeOf(s.Scheme); err != nil {
		return err
	}
	if _, err := comparisonOf(s.Comparison); err != nil {
		return err
	}
	if s.Store != "" && s.Store != "mem" && s.Store != "disk" {
		return fmt.Errorf("chaos: unknown store tier %q", s.Store)
	}
	if s.FlushEvery < 0 {
		return fmt.Errorf("chaos: negative FlushEvery")
	}
	if s.RemoteEvery < 0 {
		return fmt.Errorf("chaos: negative RemoteEvery")
	}
	if s.PadFloats < 0 || s.PadFloats == 1 {
		return fmt.Errorf("chaos: PadFloats must be 0 or >= 2 (the final element is a never-written sentinel)")
	}
	if s.ChunkSize < 0 {
		return fmt.Errorf("chaos: negative ChunkSize")
	}
	if s.Loss < 0 || s.Dup < 0 || s.Reorder < 0 || s.Loss+s.Dup+s.Reorder >= 1 {
		return fmt.Errorf("chaos: link fault rates must be non-negative and sum below 1")
	}
	known := map[point.ID]bool{}
	for _, id := range point.All() {
		known[id] = true
	}
	for i, f := range s.Faults {
		if !validKind(f.Kind) {
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
		if !known[f.Trigger.Point] {
			return fmt.Errorf("chaos: fault %d: unknown injection point %q", i, f.Trigger.Point)
		}
		if f.Both && f.Kind != CkptCorrupt {
			return fmt.Errorf("chaos: fault %d: Both applies only to %s", i, CkptCorrupt)
		}
		if f.Kind == FrameDrop && f.Trigger.Point != point.NetFrame {
			return fmt.Errorf("chaos: fault %d: %s triggers only at %s", i, FrameDrop, point.NetFrame)
		}
		if f.Kind == RemoteOpFail || f.Kind == RemoteDark {
			if s.RemoteEvery <= 0 {
				return fmt.Errorf("chaos: fault %d: %s needs RemoteEvery > 0 (no remote tier to fault)", i, f.Kind)
			}
		}
		if f.Kind == RemoteOpFail && f.Trigger.Point != point.RemotePut && f.Trigger.Point != point.RemoteGet {
			return fmt.Errorf("chaos: fault %d: %s triggers only at %s or %s", i, RemoteOpFail, point.RemotePut, point.RemoteGet)
		}
		if f.Count != 0 && f.Kind != RemoteDark {
			return fmt.Errorf("chaos: fault %d: Count applies only to %s", i, RemoteDark)
		}
		if f.Kind == TrackerBlind {
			if f.Trigger.Point != point.CoreCapture {
				return fmt.Errorf("chaos: fault %d: %s triggers only at %s (quiescent task state)", i, TrackerBlind, point.CoreCapture)
			}
			if s.PadFloats < 2 {
				return fmt.Errorf("chaos: fault %d: %s needs PadFloats >= 2 (scalars self-detect; staleness needs a bulk field)", i, TrackerBlind)
			}
		}
	}
	return nil
}

func schemeOf(s string) (core.Scheme, error) {
	switch s {
	case "strong", "":
		return core.Strong, nil
	case "medium":
		return core.Medium, nil
	case "weak":
		return core.Weak, nil
	}
	return 0, fmt.Errorf("chaos: unknown scheme %q", s)
}

func comparisonOf(s string) (core.Comparison, error) {
	switch s {
	case "full", "":
		return core.FullCompare, nil
	case "checksum":
		return core.ChecksumCompare, nil
	}
	return 0, fmt.Errorf("chaos: unknown comparison %q", s)
}

// ParseScenario decodes and validates a JSON scenario.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("chaos: parse scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// resolveFaults returns a copy of the scenario's faults with every wildcard
// target field fixed to a concrete value drawn from rng, and occurrences
// normalized to >= 1. Resolution order is fault order, so the resolved
// schedule is deterministic for a fixed seed.
func (s *Scenario) resolveFaults(rng *rand.Rand) []Fault {
	out := make([]Fault, len(s.Faults))
	for i, f := range s.Faults {
		if f.Trigger.Point == point.NetFrame || f.Kind == RemoteOpFail || f.Kind == RemoteDark {
			// Frame-level and remote faults keep wildcard targets: a -1
			// field matches any firing dimension (matches treats the
			// context wildcards symmetrically), so "the Nth frame/remote
			// op, whatever it is" stays expressible and consumes no rng
			// draws — remote faults victimize the shared store, not a node.
			if f.Trigger.Occurrence <= 0 {
				f.Trigger.Occurrence = 1
			}
			out[i] = f
			continue
		}
		if f.Target.Replica < 0 {
			f.Target.Replica = rng.Intn(2)
		}
		if f.Target.Node < 0 {
			f.Target.Node = rng.Intn(s.Nodes)
		}
		if f.Target.Task < 0 {
			f.Target.Task = rng.Intn(s.Tasks)
		}
		if f.Kind == CkptCorrupt && f.Both {
			// The engine corrupts the replica-0 copy first and mirrors
			// the flip onto the buddy write that follows it (capture
			// stores replica 0 before replica 1).
			f.Target.Replica = 0
		}
		if f.Trigger.Occurrence <= 0 {
			f.Trigger.Occurrence = 1
		}
		out[i] = f
	}
	return out
}

// Package point defines ACR's labeled fault-injection points: the named
// places in the runtime, controller, and checkpoint store where the chaos
// engine (internal/chaos) may observe or perturb an execution. It is a
// dependency-free leaf so that internal/runtime, internal/core, and
// internal/ckptstore can fire points without importing the engine.
//
// A point firing is synchronous: the instrumented code calls Hook.Fire at
// the point and continues when it returns. Hooks must therefore be fast on
// the non-injecting path and safe for concurrent use (message delivery and
// heartbeat points fire from many goroutines).
package point

import "sort"

// ID names one injection point. The catalog below is the complete set; a
// campaign coverage map reports which of these a run exercised.
type ID string

// The injection-point catalog. Quiescence per point:
//
//   - Quiescent points (CorePostConsensus, CoreCapture, CoreRecovery) fire
//     while every task in scope is parked by the consensus gate; hooks may
//     mutate task or checkpoint state race-free.
//   - All other points fire while the application is running; hooks must
//     restrict themselves to actions that are safe against live state
//     (node crashes, heartbeat delays, payload value replacement).
const (
	// RuntimeDeliver fires on every message delivery attempt, before the
	// payload is enqueued at the destination. Info carries the destination
	// address and the payload; a hook may replace Info.Payload to corrupt
	// the message in flight.
	RuntimeDeliver ID = "runtime.deliver"
	// RuntimeProgress fires when a task reports iteration progress, before
	// the consensus gate sees the report. Info.Iter is the iteration.
	RuntimeProgress ID = "runtime.progress"
	// RuntimeHeartbeat fires on every heartbeat refresh of a physical
	// node, before the beat is recorded. Info.Node is the physical node
	// id; a hook that sleeps here delays the node's heartbeat.
	RuntimeHeartbeat ID = "runtime.heartbeat"
	// CorePreConsensus fires when the controller begins a periodic
	// checkpoint round, before the consensus cut is requested.
	CorePreConsensus ID = "core.pre_consensus"
	// CorePostConsensus fires once the cut is ready: every task in scope
	// is parked, nothing has been captured yet. Quiescent.
	CorePostConsensus ID = "core.post_consensus"
	// CoreCapture fires per replica inside captureScope, immediately
	// before the replica's state is packed into the store. Quiescent.
	CoreCapture ID = "core.capture"
	// CoreRecovery fires at the start of recoveryCheckpoint, before the
	// healthy replica's trusted checkpoint is requested — the medium/weak
	// recovery window of §2.3.
	CoreRecovery ID = "core.recovery"
	// CoreRestart fires in restartReplicaFromEpoch before the crashed
	// replica is restored from a stored epoch.
	CoreRestart ID = "core.restart"
	// CoreCommit fires after a checkpoint epoch is committed (verified or
	// trusted). Info.Epoch is the committed epoch.
	CoreCommit ID = "core.commit"
	// CoreFlush fires after a committed epoch has been flushed completely
	// to the durable tier of the recovery ladder (core.Config.FlushEvery).
	// Info.Epoch is the flushed epoch. The epoch is restorable from the
	// durable tier from this firing on.
	CoreFlush ID = "core.flush"
	// CoreFold fires when spare exhaustion folds a failed logical node's
	// tasks onto a surviving physical node of the same replica (degraded
	// mode). Info.Replica/Info.Node identify the folded logical node;
	// Info.Task is the logical node it was folded onto.
	CoreFold ID = "core.fold"
	// NetFrame fires per simulated link frame of the hardened checkpoint
	// exchange, before the frame enters the lossy link model. Info.Epoch /
	// Node / Task address the transfer, Info.Iter is the chunk index (-1
	// for control frames); a hook may set Info.Drop to force-drop the
	// frame regardless of the link's loss probability.
	NetFrame ID = "net.frame"
	// StoreWrite fires after a checkpoint is accepted by Store.Put; a hook
	// may corrupt the stored copy (at-rest corruption).
	StoreWrite ID = "ckptstore.write"
	// StoreRead fires after a checkpoint is materialized by Store.Get.
	StoreRead ID = "ckptstore.read"
	// RemotePut fires before the simulated remote object store accepts an
	// upload (ckptstore.Remote.Put). Info carries the key; a hook may set
	// Info.Drop to force-fail this one operation with a transient error.
	RemotePut ID = "remote.put"
	// RemoteGet fires before the simulated remote object store serves a
	// download (ckptstore.Remote.Get). Info carries the key; a hook may set
	// Info.Drop to force-fail this one operation with a transient error.
	RemoteGet ID = "remote.get"
	// RemoteDark fires when the simulated remote transitions into or out of
	// dark mode (total unavailability). Info.Iter is the remaining dark op
	// budget on entry (0 = dark until further notice) and -1 on recovery.
	RemoteDark ID = "remote.dark"
)

// All returns the complete point catalog, sorted by ID.
func All() []ID {
	ids := []ID{
		RuntimeDeliver, RuntimeProgress, RuntimeHeartbeat,
		CorePreConsensus, CorePostConsensus, CoreCapture,
		CoreRecovery, CoreRestart, CoreCommit,
		CoreFlush, CoreFold, NetFrame,
		StoreWrite, StoreRead,
		RemotePut, RemoteGet, RemoteDark,
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Quiescent reports whether the point fires while every task in scope is
// parked, making state mutation race-free.
func (id ID) Quiescent() bool {
	switch id {
	case CorePostConsensus, CoreCapture, CoreRecovery:
		return true
	}
	return false
}

// Info carries the context of one firing. Field validity depends on the
// point; unused fields are zero. Replica/Node/Task default to -1 where the
// firing has no task context.
type Info struct {
	Replica int
	Node    int
	Task    int
	Epoch   uint64
	Iter    int
	// Payload is point-specific: the message payload at RuntimeDeliver
	// (hooks may replace it), the *ckptstore.Checkpoint at StoreWrite /
	// StoreRead. Nil elsewhere.
	Payload any
	// Drop is set by hooks at NetFrame to force-drop the frame before it
	// reaches the link model (exchange loss injection), and at RemotePut /
	// RemoteGet to force-fail the remote operation with a transient error.
	// Ignored elsewhere.
	Drop bool
}

// Hook receives point firings. A nil Hook everywhere means chaos is off;
// instrumented code must nil-check before firing.
type Hook interface {
	Fire(id ID, info *Info)
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(id ID, info *Info)

// Fire implements Hook.
func (f HookFunc) Fire(id ID, info *Info) { f(id, info) }

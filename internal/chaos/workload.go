package chaos

import (
	"math"

	"acr/internal/pup"
	"acr/internal/runtime"
)

// RingProg is the campaign workload: every task holds one float64 and each
// iteration sends it to its right ring neighbour, receives from the left,
// and folds the two values with a nonlinear mix. The fold makes any
// injected bit flip spread through the whole ring within N iterations, so
// an escaped corruption is always visible in the final state — exactly the
// property the golden-result invariant needs.
//
// With Scenario.PadFloats > 0 the task also carries Pad, a write-tracked
// bulk array updated one element per iteration. It is the dirty-capture
// surface: the embedded WriteSet makes every mem-tier campaign run through
// the splice/patch capture path, and the pad's mostly-clean body is where
// clean-chunk corruption and blinded-tracker staleness live. The final pad
// element is a sentinel the workload never writes — bytes that stay clean
// (spliced forward verbatim) for the whole run.
//
// The Pup layout puts Val last when there is no pad: the trailing 8 bytes
// of a packed RingProg are the float payload, which lets CkptCorrupt flip
// checkpoint bits that always unpack cleanly (a wrong value, never a
// structural error). With a pad, the trailing 8 bytes are the sentinel
// element instead — still a float payload, still structurally clean, but
// now one the dirty tracker never marks.
type RingProg struct {
	pup.WriteSet

	Iter  int
	Iters int
	Val   float64
	// Pad is the bulk dirty-tracking surface; see the type comment. Its
	// length is fixed for the whole run (Scenario.PadFloats), so the pack
	// layout never shifts.
	Pad []float64

	// self is the task's dense global index; set by the factory, derived
	// (not checkpointed).
	self int
	// muted suppresses write marks (TrackerBlind): the task keeps writing
	// but stops telling the tracker. Derived, not checkpointed — a restored
	// incarnation marks honestly again.
	muted bool
}

// Pup implements pup.Pupable. Keep Val the final scalar and Pad the final
// field (see type comment); the pad is gated on its length so padless
// scenarios keep the historical byte layout, and every unpack site sizes
// Pad from the same Scenario.PadFloats the packer used.
func (r *RingProg) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&r.Iter)
	p.Label("iters")
	p.Int(&r.Iters)
	p.Label("val")
	p.Float64(&r.Val)
	if len(r.Pad) > 0 {
		p.Label("pad")
		p.Float64s(&r.Pad)
	}
}

// initialVal seeds task g's value; distinct per task so a misrouted or
// corrupted exchange cannot cancel out.
func initialVal(g int) float64 { return 1 + 0.5*float64(g) }

// fold mixes the local value with the left neighbour's. Nonlinear in the
// difference, so single-bit perturbations never converge back to the
// fault-free trajectory.
func fold(local, left float64, iter int) float64 {
	return (local+left)/2 + 0.25*math.Sin(local-left) + 1e-3*float64(iter%7)
}

// padInc is the increment task g adds to its pad at iteration it. Distinct
// per (task, iteration) so a lost or replayed increment can never cancel
// out, and cumulative (+=) so a checkpoint that missed an increment stays
// wrong forever.
func padInc(g, it int) float64 { return 1 + 1e-3*float64(g) + 1e-6*float64(it) }

// Run implements runtime.Program.
func (r *RingProg) Run(ctx *runtime.Ctx) error {
	me := ctx.GlobalTask()
	right := ctx.AddrOfGlobal((me + 1) % ctx.NumTasks())
	spans := pup.FieldSpans(r)
	for r.Iter < r.Iters {
		if err := ctx.Send(right, r.Iter, r.Val); err != nil {
			return err
		}
		msg, err := ctx.Recv()
		if err != nil {
			return err
		}
		left := msg.Data.(float64)
		if n := len(r.Pad); n > 1 {
			// One cumulative pad write per iteration, cycling over every
			// element except the trailing sentinel.
			w := r.Iter % (n - 1)
			r.Pad[w] += padInc(r.self, r.Iter)
			if !r.muted {
				r.MarkSpan(spans["pad"].Slice(w, w+1, 8))
			}
		}
		r.Val = fold(r.Val, left, r.Iter)
		r.Iter++ // advance before yielding, per the Progress contract
		if !r.muted {
			r.MarkSpan(spans["val"])
			r.MarkSpan(spans["iter"])
		}
		if err := ctx.Progress(r.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

// RingFactory builds the ring-workload task factory for a replica shape —
// the same self-spreading workload the campaign engine uses, exported for
// the fleet scheduler's multi-job golden verification.
func RingFactory(tasksPerNode, iters, padFloats int) runtime.Factory {
	return ringFactory(tasksPerNode, iters, padFloats)
}

// ringFactory builds the campaign's task factory for a replica shape.
func ringFactory(tasksPerNode, iters, padFloats int) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program {
		g := addr.Node*tasksPerNode + addr.Task
		p := &RingProg{Iters: iters, Val: initialVal(g), self: g}
		if padFloats > 0 {
			p.Pad = make([]float64, padFloats)
		}
		return p
	}
}

// GoldenFinal computes the fault-free final values serially: the reference
// the oracle compares recovered runs against, bit for bit.
func GoldenFinal(numTasks, iters int) []float64 {
	vals := make([]float64, numTasks)
	for g := range vals {
		vals[g] = initialVal(g)
	}
	next := make([]float64, numTasks)
	for it := 0; it < iters; it++ {
		for g := range vals {
			left := (g - 1 + numTasks) % numTasks
			next[g] = fold(vals[g], vals[left], it)
		}
		vals, next = next, vals
	}
	return vals
}

// GoldenPad computes every task's fault-free final pad serially. Pad
// evolution is local to each task and deterministic in (task, iteration),
// so correct recovery replays it bit for bit; a checkpoint that spliced
// stale pad bytes (a blinded tracker) loses increments permanently and
// diverges.
func GoldenPad(numTasks, iters, padFloats int) [][]float64 {
	pads := make([][]float64, numTasks)
	for g := range pads {
		pads[g] = make([]float64, padFloats)
		if padFloats <= 1 {
			continue
		}
		for it := 0; it < iters; it++ {
			pads[g][it%(padFloats-1)] += padInc(g, it)
		}
	}
	return pads
}

package chaos

import (
	"math"

	"acr/internal/pup"
	"acr/internal/runtime"
)

// RingProg is the campaign workload: every task holds one float64 and each
// iteration sends it to its right ring neighbour, receives from the left,
// and folds the two values with a nonlinear mix. The fold makes any
// injected bit flip spread through the whole ring within N iterations, so
// an escaped corruption is always visible in the final state — exactly the
// property the golden-result invariant needs.
//
// The Pup layout puts Val last: the trailing 8 bytes of a packed RingProg
// are the float payload, which lets CkptCorrupt flip checkpoint bits that
// always unpack cleanly (a wrong value, never a structural error).
type RingProg struct {
	Iter  int
	Iters int
	Val   float64

	// self is the task's dense global index; set by the factory, derived
	// (not checkpointed).
	self int
}

// Pup implements pup.Pupable. Keep Val the final field (see type comment).
func (r *RingProg) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&r.Iter)
	p.Label("iters")
	p.Int(&r.Iters)
	p.Label("val")
	p.Float64(&r.Val)
}

// initialVal seeds task g's value; distinct per task so a misrouted or
// corrupted exchange cannot cancel out.
func initialVal(g int) float64 { return 1 + 0.5*float64(g) }

// fold mixes the local value with the left neighbour's. Nonlinear in the
// difference, so single-bit perturbations never converge back to the
// fault-free trajectory.
func fold(local, left float64, iter int) float64 {
	return (local+left)/2 + 0.25*math.Sin(local-left) + 1e-3*float64(iter%7)
}

// Run implements runtime.Program.
func (r *RingProg) Run(ctx *runtime.Ctx) error {
	me := ctx.GlobalTask()
	right := ctx.AddrOfGlobal((me + 1) % ctx.NumTasks())
	for r.Iter < r.Iters {
		if err := ctx.Send(right, r.Iter, r.Val); err != nil {
			return err
		}
		msg, err := ctx.Recv()
		if err != nil {
			return err
		}
		left := msg.Data.(float64)
		r.Val = fold(r.Val, left, r.Iter)
		r.Iter++ // advance before yielding, per the Progress contract
		if err := ctx.Progress(r.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

// ringFactory builds the campaign's task factory for a replica shape.
func ringFactory(tasksPerNode, iters int) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program {
		g := addr.Node*tasksPerNode + addr.Task
		return &RingProg{Iters: iters, Val: initialVal(g), self: g}
	}
}

// GoldenFinal computes the fault-free final values serially: the reference
// the oracle compares recovered runs against, bit for bit.
func GoldenFinal(numTasks, iters int) []float64 {
	vals := make([]float64, numTasks)
	for g := range vals {
		vals[g] = initialVal(g)
	}
	next := make([]float64, numTasks)
	for it := 0; it < iters; it++ {
		for g := range vals {
			left := (g - 1 + numTasks) % numTasks
			next[g] = fold(vals[g], vals[left], it)
		}
		vals, next = next, vals
	}
	return vals
}

package chaos

import (
	"errors"
	"fmt"
	"math"

	"acr/internal/ckptstore"
	"acr/internal/core"
	"acr/internal/pup"
	"acr/internal/runtime"
)

// Invariant names one property the oracle checks. Each one is a guarantee
// the paper's protocol claims (or a sanity property of this
// implementation); a Violation is evidence the run broke it.
type Invariant string

// Oracle invariants.
const (
	// InvGoldenResult: a run that completes must converge to the bit-exact
	// fault-free result — recovery loses time, never answers.
	InvGoldenResult Invariant = "golden-result"
	// InvSDCEscape: under the strong scheme no resident checkpoint
	// corruption may reach a committed epoch undetected (§2.1: every
	// commit is buddy-verified). Fires when a corrupted epoch commits —
	// which is exactly what disabling or blinding the buddy comparison
	// (Fault.Both) produces.
	InvSDCEscape Invariant = "sdc-escape"
	// InvProgressMonotonic: a task's reported iteration never decreases
	// except across an explicit replica restart.
	InvProgressMonotonic Invariant = "progress-monotonic"
	// InvCommitMonotonic: committed checkpoint epochs strictly increase.
	InvCommitMonotonic Invariant = "commit-monotonic"
	// InvNoDeadlock: the run finishes before the watchdog budget; a
	// controller that hangs mid-protocol is a liveness bug, whatever the
	// fault schedule.
	InvNoDeadlock Invariant = "no-deadlock"
	// InvNoPhantomFailure: the controller recovers at most as many hard
	// errors as the schedule actually killed nodes — false suspicions must
	// be filtered, not repaired.
	InvNoPhantomFailure Invariant = "no-phantom-failure"
	// InvRunError: the run failed with an error that is neither detected
	// at-rest corruption nor a typed unrecoverable verdict.
	InvRunError Invariant = "run-error"
)

// Violation is one broken invariant with human-readable evidence.
type Violation struct {
	Invariant Invariant `json:"invariant"`
	Detail    string    `json:"detail"`
}

// Run outcomes.
const (
	// OutcomeOK: the run completed, every invariant held.
	OutcomeOK = "ok"
	// OutcomeDetectedAtRest: the run stopped because a restore read
	// at-rest corruption the store's verification caught
	// (ckptstore.ErrCorrupt) — detection worked; not a violation.
	OutcomeDetectedAtRest = "detected-at-rest"
	// OutcomeUnrecoverable: the scheme ran out of recovery options and
	// said so with the typed core.ErrUnrecoverable — an accepted verdict,
	// not a hang or a wrong answer.
	OutcomeUnrecoverable = "unrecoverable"
	// OutcomeViolation: at least one invariant fired.
	OutcomeViolation = "violation"
)

// oracleInput is everything Verify needs about a finished (or hung) run.
type oracleInput struct {
	scn      *Scenario
	ctrl     *core.Controller
	stats    core.Stats
	runErr   error
	timedOut bool
	records  []Record
	commits  []uint64
	corrupt  map[uint64]bool
	liveViol []Violation
}

// verdict is the oracle's output: the outcome plus the evidence.
type verdict struct {
	Outcome    string
	Violations []Violation
}

// verify applies every invariant to one finished run.
func verify(in oracleInput) verdict {
	var v []Violation
	v = append(v, in.liveViol...)

	// Liveness first: a hung run yields no trustworthy final state.
	if in.timedOut {
		v = append(v, Violation{InvNoDeadlock, "watchdog expired before the run finished"})
		return verdict{Outcome: OutcomeViolation, Violations: v}
	}

	// SDC escape: a commit of an epoch whose resident bytes were
	// corrupted means the buddy comparison let corruption through.
	for _, epoch := range in.commits {
		if in.corrupt[epoch] {
			v = append(v, Violation{InvSDCEscape,
				fmt.Sprintf("epoch %d committed with resident corruption", epoch)})
			break
		}
	}

	// Phantom failures: every recovered hard error must map to a node the
	// schedule killed.
	if kills := killsScheduled(in.records); in.stats.HardErrors > kills {
		v = append(v, Violation{InvNoPhantomFailure,
			fmt.Sprintf("recovered %d hard errors but the schedule killed %d nodes", in.stats.HardErrors, kills)})
	}

	if in.runErr != nil {
		switch {
		case errors.Is(in.runErr, ckptstore.ErrCorrupt):
			if len(v) > 0 {
				return verdict{Outcome: OutcomeViolation, Violations: v}
			}
			return verdict{Outcome: OutcomeDetectedAtRest}
		case errors.Is(in.runErr, core.ErrUnrecoverable):
			if len(v) > 0 {
				return verdict{Outcome: OutcomeViolation, Violations: v}
			}
			return verdict{Outcome: OutcomeUnrecoverable}
		default:
			v = append(v, Violation{InvRunError, in.runErr.Error()})
			return verdict{Outcome: OutcomeViolation, Violations: v}
		}
	}

	// Golden result: both replicas, every task, bit for bit.
	v = append(v, checkGolden(in.scn, in.ctrl)...)

	if len(v) > 0 {
		return verdict{Outcome: OutcomeViolation, Violations: v}
	}
	return verdict{Outcome: OutcomeOK}
}

// killsScheduled counts the nodes the executed schedule fail-stopped.
func killsScheduled(records []Record) int {
	n := 0
	for _, r := range records {
		if !r.Executed {
			continue
		}
		switch r.Kind {
		case Crash:
			n++
		case BuddyDoubleCrash:
			n += 2
		}
	}
	return n
}

// checkGolden compares every task's final state against the serial
// fault-free reference: the ring value always, and the pad bit for bit
// when the scenario carries one. The pad comparison is what makes the
// oracle sensitive to blinded dirty tracking — a stale splice restored
// mid-run loses pad increments that Val alone never reflects.
func checkGolden(scn *Scenario, ctrl *core.Controller) []Violation {
	golden := GoldenFinal(scn.Nodes*scn.Tasks, scn.Iters)
	var goldenPad [][]float64
	if scn.PadFloats > 0 {
		goldenPad = GoldenPad(scn.Nodes*scn.Tasks, scn.Iters, scn.PadFloats)
	}
	var v []Violation
	for rep := 0; rep < 2; rep++ {
		for n := 0; n < scn.Nodes; n++ {
			for t := 0; t < scn.Tasks; t++ {
				g := n*scn.Tasks + t
				data, err := ctrl.Machine().PackTask(runtime.Addr{Replica: rep, Node: n, Task: t})
				if err != nil {
					v = append(v, Violation{InvGoldenResult,
						fmt.Sprintf("pack final state r%d/n%d/t%d: %v", rep, n, t, err)})
					continue
				}
				// Pad is pup-gated on its length, so the unpack target must
				// be pre-sized to the scenario's shape or the field would be
				// silently skipped.
				final := RingProg{Pad: make([]float64, scn.PadFloats)}
				if err := pup.Unpack(data, &final); err != nil {
					v = append(v, Violation{InvGoldenResult,
						fmt.Sprintf("unpack final state r%d/n%d/t%d: %v", rep, n, t, err)})
					continue
				}
				if final.Iter != scn.Iters {
					v = append(v, Violation{InvGoldenResult,
						fmt.Sprintf("task r%d/n%d/t%d finished at iteration %d, want %d", rep, n, t, final.Iter, scn.Iters)})
					continue
				}
				if math.Float64bits(final.Val) != math.Float64bits(golden[g]) {
					v = append(v, Violation{InvGoldenResult,
						fmt.Sprintf("task r%d/n%d/t%d final value %v, golden %v", rep, n, t, final.Val, golden[g])})
				}
				for w := range final.Pad {
					if w < len(goldenPad[g]) && math.Float64bits(final.Pad[w]) != math.Float64bits(goldenPad[g][w]) {
						v = append(v, Violation{InvGoldenResult,
							fmt.Sprintf("task r%d/n%d/t%d pad[%d] %v, golden %v", rep, n, t, w, final.Pad[w], goldenPad[g][w])})
						break
					}
				}
			}
		}
	}
	return v
}

package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"acr/internal/chaos/point"
	"acr/internal/ckptstore"
	"acr/internal/core"
	"acr/internal/pup"
	"acr/internal/runtime"
	"acr/internal/trace"
)

// Record is the post-run account of one armed fault: the resolved schedule
// entry plus whether its trigger ever fired. Records contain only
// seed-deterministic facts, so campaign reports built from them are
// byte-identical across same-seed runs.
type Record struct {
	Kind       FaultKind `json:"kind"`
	Target     string    `json:"target"`
	Point      point.ID  `json:"point"`
	Occurrence int       `json:"occurrence"`
	Executed   bool      `json:"executed"`
}

// iterDelay is the per-iteration throttle applied to every task (see
// Fire's RuntimeProgress handling). It also stretches each run across many
// heartbeat periods, so heartbeat-triggered faults have room to fire.
const iterDelay = 50 * time.Microsecond

// armedFault is a resolved fault plus its live trigger state.
type armedFault struct {
	Fault
	seen     int // matching firings so far
	executed bool
}

// pendingFlip remembers a Both-mode corruption so the buddy's write of the
// same {node, task, epoch} gets the identical bit flip.
type pendingFlip struct {
	node, task int
	epoch      uint64
	offEnd     int // byte offset counted back from the payload end (1..8)
	bit        int
}

// Engine arms a resolved fault schedule against the injection points and
// implements point.Hook. One Engine drives exactly one run: it also tracks
// point coverage, paces the controller's checkpoint rounds off progress
// reports, and performs the live-path invariant bookkeeping the Oracle
// reads back after the run (progress monotonicity, commit monotonicity,
// which epochs carry resident corruption).
type Engine struct {
	scn    *Scenario
	tl     *trace.Timeline
	faults []*armedFault

	mu  sync.Mutex
	rng *rand.Rand
	// ctrl is bound before the run starts and only read afterwards.
	ctrl *core.Controller
	// remote is the run's simulated object store, bound when the scenario
	// enables the remote tier (RemoteEvery > 0); RemoteDark faults act on
	// it.
	remote *ckptstore.Remote

	coverage  map[point.ID]int
	progressN int

	// Invariant bookkeeping (see Oracle).
	commits []uint64 // CoreCommit epochs, in order
	// corruptEpochs lists epochs whose *resident* checkpoint bytes were
	// corrupted (mem-tier flips); committing one of these is an SDC escape.
	corruptEpochs map[uint64]bool
	// lastIter / restartGen detect non-monotonic progress: a task's
	// reported iteration may only decrease after its replica restarted.
	lastIter   map[[3]int]int
	restartGen [2]int
	iterGen    map[[3]int]int
	liveViol   []Violation

	pending *pendingFlip
}

// NewEngine resolves the scenario's fault schedule with the seed and
// returns an engine ready to bind to a controller. tl may be nil.
func NewEngine(scn *Scenario, seed int64, tl *trace.Timeline) *Engine {
	rng := rand.New(rand.NewSource(seed))
	resolved := scn.resolveFaults(rng)
	e := &Engine{
		scn:           scn,
		tl:            tl,
		rng:           rng,
		coverage:      make(map[point.ID]int, len(point.All())),
		corruptEpochs: make(map[uint64]bool),
		lastIter:      make(map[[3]int]int),
		iterGen:       make(map[[3]int]int),
	}
	for i := range resolved {
		e.faults = append(e.faults, &armedFault{Fault: resolved[i]})
	}
	return e
}

// Bind attaches the controller the engine acts on (kills, pacing, store
// access). Must be called before the controller runs.
func (e *Engine) Bind(ctrl *core.Controller) { e.ctrl = ctrl }

// BindRemote attaches the simulated remote store RemoteDark faults darken.
// Must be called before the controller runs when the scenario has remote
// faults.
func (e *Engine) BindRemote(rm *ckptstore.Remote) { e.remote = rm }

// Fire implements point.Hook. It never blocks under the engine mutex:
// actions that sleep or re-enter the controller are collected and run after
// unlock, on the firing goroutine.
func (e *Engine) Fire(id point.ID, info *point.Info) {
	var actions []func()
	e.mu.Lock()
	e.coverage[id]++
	e.observe(id, info)
	if id == point.RuntimeProgress && e.scn.PaceEvery > 0 {
		e.progressN++
		if e.progressN%e.scn.PaceEvery == 0 {
			ctrl := e.ctrl
			actions = append(actions, func() { ctrl.PredictFailure() })
		}
		// Throttle the reporting task so the controller's round processing
		// keeps pace with the application: without this, a fast workload
		// finishes all its iterations before the event loop serves even one
		// paced round, and phase-triggered faults never reach their
		// occurrence. The delay runs after unlock, on the task goroutine.
		actions = append(actions, func() { time.Sleep(iterDelay) })
	}
	if id == point.StoreWrite {
		if act := e.applyPendingFlip(info); act != nil {
			actions = append(actions, act)
		}
	}
	for _, f := range e.faults {
		if f.executed || f.Trigger.Point != id || !e.matches(f.Target, id, info) {
			continue
		}
		f.seen++
		if f.seen < f.Trigger.Occurrence {
			continue
		}
		if act, ok := e.execute(f, id, info); ok {
			f.executed = true
			if act != nil {
				actions = append(actions, act)
			}
		} else {
			f.seen-- // not executable at this firing; stay armed
		}
	}
	e.mu.Unlock()
	for _, act := range actions {
		act()
	}
}

// observe maintains the live-path invariant state. Engine mutex held.
func (e *Engine) observe(id point.ID, info *point.Info) {
	switch id {
	case point.CoreCommit:
		if n := len(e.commits); n > 0 && info.Epoch <= e.commits[n-1] {
			e.liveViol = append(e.liveViol, Violation{
				Invariant: InvCommitMonotonic,
				Detail:    fmt.Sprintf("commit epoch %d after %d", info.Epoch, e.commits[n-1]),
			})
		}
		e.commits = append(e.commits, info.Epoch)
	case point.CoreRestart:
		if info.Replica >= 0 && info.Replica < 2 {
			e.restartGen[info.Replica]++
		}
	case point.RuntimeProgress:
		key := [3]int{info.Replica, info.Node, info.Task}
		gen := e.restartGen[info.Replica]
		if last, ok := e.lastIter[key]; ok && e.iterGen[key] == gen && info.Iter < last {
			e.liveViol = append(e.liveViol, Violation{
				Invariant: InvProgressMonotonic,
				Detail: fmt.Sprintf("task r%d/n%d/t%d regressed %d -> %d without a restart",
					info.Replica, info.Node, info.Task, last, info.Iter),
			})
		}
		e.lastIter[key] = info.Iter
		e.iterGen[key] = gen
	}
}

// matches reports whether the firing context satisfies the fault target.
// Resolved targets are fully concrete except for NetFrame faults, which
// keep wildcards; a -1 on either side (the point does not carry that
// dimension, or the fault matches any frame) matches anything.
// RuntimeHeartbeat carries a *physical* node id, compared against the
// target's launch-time mapping (replica*Nodes + node).
func (e *Engine) matches(tgt Target, id point.ID, info *point.Info) bool {
	if id == point.RuntimeHeartbeat {
		return info.Node == tgt.Replica*e.scn.Nodes+tgt.Node
	}
	if info.Replica >= 0 && tgt.Replica >= 0 && info.Replica != tgt.Replica {
		return false
	}
	if info.Node >= 0 && tgt.Node >= 0 && info.Node != tgt.Node {
		return false
	}
	if info.Task >= 0 && tgt.Task >= 0 && info.Task != tgt.Task {
		return false
	}
	return true
}

// execute performs one fault. It returns the deferred action to run after
// unlock (nil when everything happened inline) and whether the fault
// actually executed at this firing. Engine mutex held.
func (e *Engine) execute(f *armedFault, id point.ID, info *point.Info) (func(), bool) {
	switch f.Kind {
	case Crash:
		ctrl, rep, node := e.ctrl, f.Target.Replica, f.Target.Node
		e.mark("inject crash r%d/n%d at %s", rep, node, id)
		return func() { ctrl.KillNode(rep, node) }, true
	case BuddyDoubleCrash:
		ctrl, rep, node := e.ctrl, f.Target.Replica, f.Target.Node
		e.mark("inject buddy double crash n%d at %s", node, id)
		return func() {
			ctrl.KillNode(rep, node)
			ctrl.KillNode(1-rep, node)
		}, true
	case MsgBitFlip:
		return nil, e.flipMessage(f, info)
	case CkptCorrupt:
		return e.corruptCheckpoint(f, info)
	case HeartbeatDelay:
		d := time.Duration(f.Delay)
		if d <= 0 {
			d = time.Millisecond
		}
		e.mark("inject heartbeat delay %s at phys node %d", d, info.Node)
		return func() { time.Sleep(d) }, true
	case FrameDrop:
		// Inline: the exchange reads Info.Drop right after the hook
		// returns and discards the frame before the link sees it.
		info.Drop = true
		e.mark("inject frame drop n%d/t%d@e%d chunk %d", info.Node, info.Task, info.Epoch, info.Iter)
		return nil, true
	case RemoteOpFail:
		// Inline: the remote reads Info.Drop right after the hook returns
		// and fails the operation with ErrRemoteUnavailable before touching
		// the object map.
		info.Drop = true
		e.mark("inject remote op fail at %s e%d", id, info.Epoch)
		return nil, true
	case RemoteDark:
		rm := e.remote
		if rm == nil {
			return nil, false
		}
		count := f.Count
		if count <= 0 {
			e.mark("inject remote dark (until end of run) at %s", id)
			return func() { rm.SetDark(true) }, true
		}
		e.mark("inject remote dark for %d ops at %s", count, id)
		// Deferred: SetDarkFor fires point.RemoteDark, which re-enters this
		// hook.
		return func() { rm.SetDarkFor(count) }, true
	case TrackerBlind:
		// Mute the task's dirty-write marks in BOTH replicas so the
		// buddies keep lying identically: a one-sided blind would make the
		// next comparison catch the divergence, which is the detectable
		// case, not the one this fault emulates. CoreCapture fires under
		// quiescence before any task of the round is packed, so the mute
		// lands symmetrically ahead of both replicas' captures. The
		// deferred action re-enters the machine, so it must run after
		// unlock.
		ctrl, tgt := e.ctrl, f.Target
		e.mark("inject tracker blind n%d/t%d at %s", tgt.Node, tgt.Task, id)
		return func() {
			for rep := 0; rep < 2; rep++ {
				ctrl.Machine().CorruptTask(runtime.Addr{Replica: rep, Node: tgt.Node, Task: tgt.Task}, func(p pup.Pupable) {
					if r, ok := p.(*RingProg); ok {
						r.muted = true
					}
				})
			}
		}, true
	}
	return nil, false
}

// flipMessage flips one random bit of a scalar payload in flight. Only
// scalars are touched: the payload is replaced by value, never mutated
// through a shared reference, so concurrent senders stay race-free.
func (e *Engine) flipMessage(f *armedFault, info *point.Info) bool {
	bit := uint(e.rng.Intn(64))
	switch v := info.Payload.(type) {
	case float64:
		info.Payload = math.Float64frombits(math.Float64bits(v) ^ 1<<bit)
	case int64:
		info.Payload = v ^ 1<<bit
	case int:
		info.Payload = v ^ 1<<(bit&63)
	default:
		return false // non-scalar payload: stay armed for the next delivery
	}
	e.mark("inject msg bit flip bit %d -> %s", bit, f.Target)
	return true
}

// corruptCheckpoint flips one bit inside the trailing 8 bytes of the
// checkpoint just stored — the workload's float payload, so the corruption
// always unpacks as a wrong value. On a disk tier the flip is applied to
// the backing file (at rest); on the memory tier to the resident bytes.
func (e *Engine) corruptCheckpoint(f *armedFault, info *point.Info) (func(), bool) {
	ck, ok := info.Payload.(*ckptstore.Checkpoint)
	if !ok || ck.Len() < 8 {
		return nil, false
	}
	offEnd := 1 + e.rng.Intn(8)
	bit := e.rng.Intn(8)
	if f.Both {
		e.pending = &pendingFlip{node: info.Node, task: info.Task, epoch: info.Epoch, offEnd: offEnd, bit: bit}
	}
	e.mark("inject ckpt corruption r%d/n%d/t%d@e%d byte -%d bit %d (both=%v)",
		info.Replica, info.Node, info.Task, info.Epoch, offEnd, bit, f.Both)
	return e.flipStored(info, offEnd, bit), true
}

// applyPendingFlip mirrors a Both-mode corruption onto the buddy write of
// the same {node, task, epoch}. Engine mutex held.
func (e *Engine) applyPendingFlip(info *point.Info) func() {
	p := e.pending
	if p == nil || info.Replica != 1 || info.Node != p.node || info.Task != p.task || info.Epoch != p.epoch {
		return nil
	}
	e.pending = nil
	e.mark("mirror ckpt corruption onto buddy r1/n%d/t%d@e%d byte -%d bit %d",
		p.node, p.task, p.epoch, p.offEnd, p.bit)
	return e.flipStored(info, p.offEnd, p.bit)
}

// flipStored flips the chosen bit of the stored checkpoint the StoreWrite
// firing describes. Memory tiers are flipped inline (the resident bytes ARE
// the stored copy, and the epoch is remembered as carrying resident
// corruption); disk tiers get a deferred file-level flip through
// Disk.CorruptAtRest.
func (e *Engine) flipStored(info *point.Info, offEnd, bit int) func() {
	ck := info.Payload.(*ckptstore.Checkpoint)
	if d := e.diskTier(); d != nil {
		k := ckptstore.Key{Replica: info.Replica, Node: info.Node, Task: info.Task, Epoch: info.Epoch}
		return func() { _ = d.CorruptAtRest(k, -offEnd, bit) }
	}
	data := ck.MutableBytes()
	data[len(data)-offEnd] ^= 1 << uint(bit)
	e.corruptEpochs[info.Epoch] = true
	return nil
}

// diskTier unwraps the controller's store down to a *ckptstore.Disk, nil
// when the run uses another tier.
func (e *Engine) diskTier() *ckptstore.Disk {
	st := e.ctrl.Store()
	if h, ok := st.(*ckptstore.Hooked); ok {
		st = h.Inner()
	}
	d, _ := st.(*ckptstore.Disk)
	return d
}

// mark emits an injection event on the timeline, if one is attached.
func (e *Engine) mark(format string, args ...any) {
	if e.tl != nil {
		e.tl.Add(0, trace.Inject, fmt.Sprintf(format, args...))
	}
}

// Records returns the resolved schedule with execution flags, in spec
// order.
func (e *Engine) Records() []Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Record, len(e.faults))
	for i, f := range e.faults {
		out[i] = Record{
			Kind:       f.Kind,
			Target:     f.Target.String(),
			Point:      f.Trigger.Point,
			Occurrence: f.Trigger.Occurrence,
			Executed:   f.executed,
		}
	}
	return out
}

// Coverage returns the fired count per registered injection point (zero
// entries included), sorted by point id.
func (e *Engine) Coverage() []PointCoverage {
	e.mu.Lock()
	defer e.mu.Unlock()
	all := point.All()
	out := make([]PointCoverage, 0, len(all))
	for _, id := range all {
		out = append(out, PointCoverage{Point: id, Fired: e.coverage[id]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// PointCoverage is one injection point's firing count for a run.
type PointCoverage struct {
	Point point.ID `json:"point"`
	Fired int      `json:"fired"`
}

// snapshot returns the invariant bookkeeping for the oracle.
func (e *Engine) snapshot() (commits []uint64, corrupt map[uint64]bool, live []Violation) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]uint64(nil), e.commits...), e.corruptEpochs, append([]Violation(nil), e.liveViol...)
}

package chaos

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"acr/internal/chaos/point"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	scn := DefaultCampaign()[0]
	scn.Faults = append(scn.Faults, Fault{
		Kind:    HeartbeatDelay,
		Target:  Target{Replica: 1, Node: 1, Task: 0},
		Trigger: Trigger{Point: point.RuntimeHeartbeat, Occurrence: 3},
		Delay:   Duration(4 * time.Millisecond),
	})
	data, err := json.Marshal(&scn)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := ParseScenario(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip changed the scenario:\n%s\n%s", data, data2)
	}
	if back.Faults[1].Delay != Duration(4*time.Millisecond) {
		t.Fatalf("delay did not round-trip: %v", back.Faults[1].Delay)
	}
}

func TestScenarioValidation(t *testing.T) {
	base := DefaultCampaign()[0]
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"zero nodes", func(s *Scenario) { s.Nodes = 0 }},
		{"zero pace", func(s *Scenario) { s.PaceEvery = 0 }},
		{"bad scheme", func(s *Scenario) { s.Scheme = "heroic" }},
		{"bad comparison", func(s *Scenario) { s.Comparison = "vibes" }},
		{"bad store", func(s *Scenario) { s.Store = "tape" }},
		{"bad kind", func(s *Scenario) { s.Faults[0].Kind = "gamma_ray" }},
		{"bad point", func(s *Scenario) { s.Faults[0].Trigger.Point = "core.nonsense" }},
		{"both on crash", func(s *Scenario) { s.Faults[0].Both = true }},
		{"one-element pad", func(s *Scenario) { s.PadFloats = 1 }},
		{"negative chunk size", func(s *Scenario) { s.ChunkSize = -1 }},
		{"tracker blind without pad", func(s *Scenario) {
			s.Faults[0] = Fault{
				Kind:    TrackerBlind,
				Target:  Target{Replica: 0, Node: 0, Task: 0},
				Trigger: Trigger{Point: point.CoreCapture, Occurrence: 1},
			}
		}},
		{"remote fault without remote tier", func(s *Scenario) {
			s.Faults[0] = Fault{
				Kind:    RemoteDark,
				Target:  Target{Replica: -1, Node: -1, Task: -1},
				Trigger: Trigger{Point: point.CoreCommit, Occurrence: 1},
			}
		}},
		{"remote op fail off remote point", func(s *Scenario) {
			s.RemoteEvery = 1
			s.Faults[0] = Fault{
				Kind:    RemoteOpFail,
				Target:  Target{Replica: -1, Node: -1, Task: -1},
				Trigger: Trigger{Point: point.CoreCommit, Occurrence: 1},
			}
		}},
		{"count on non-dark fault", func(s *Scenario) { s.Faults[0].Count = 3 }},
		{"negative remote every", func(s *Scenario) { s.RemoteEvery = -1 }},
		{"tracker blind off capture point", func(s *Scenario) {
			s.PadFloats = 8
			s.Faults[0] = Fault{
				Kind:    TrackerBlind,
				Target:  Target{Replica: 0, Node: 0, Task: 0},
				Trigger: Trigger{Point: point.CoreCommit, Occurrence: 1},
			}
		}},
	}
	for _, tc := range cases {
		scn := base
		scn.Faults = append([]Fault(nil), base.Faults...)
		tc.mutate(&scn)
		if err := scn.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
}

func TestGoldenFinalMatchesFaultFreeRun(t *testing.T) {
	scn := Scenario{
		Name: "fault-free", Nodes: 2, Tasks: 2, Spares: 0, Iters: 40,
		Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
	}
	res, err := RunScenario(scn, 1, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Report.Outcome != OutcomeOK {
		t.Fatalf("fault-free run outcome %q, violations %v", res.Report.Outcome, res.Report.Violations)
	}
}

// TestDefaultCampaignCleanAndCovered is the acceptance gate: the stock
// campaign must stay violation-free while exercising every registered
// injection point.
func TestDefaultCampaignCleanAndCovered(t *testing.T) {
	rep, err := RunCampaign(CampaignConfig{
		Name:      "default",
		Scenarios: DefaultCampaign(),
		SeedBase:  1,
		Seeds:     2,
		Parallel:  4,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	for _, run := range rep.Runs {
		if run.Outcome != OutcomeOK && run.Outcome != OutcomeDetectedAtRest {
			t.Errorf("%s seed %d: outcome %q, violations %v", run.Scenario, run.Seed, run.Outcome, run.Violations)
		}
		for _, f := range run.Faults {
			if !f.Executed {
				t.Errorf("%s seed %d: fault %s@%s never executed", run.Scenario, run.Seed, f.Kind, f.Point)
			}
		}
	}
	if rep.Violations != 0 {
		t.Errorf("campaign reported %d violations, want 0", rep.Violations)
	}
	if len(rep.Coverage) != len(point.All()) {
		t.Fatalf("coverage has %d entries, want %d", len(rep.Coverage), len(point.All()))
	}
	for _, c := range rep.Coverage {
		if !c.Exercised {
			t.Errorf("injection point %s never exercised by the default campaign", c.Point)
		}
	}
}

// TestCampaignReportDeterministic: same seed range twice, byte-identical
// JSON.
func TestCampaignReportDeterministic(t *testing.T) {
	run := func() []byte {
		rep, err := RunCampaign(CampaignConfig{
			Name:      "determinism",
			Scenarios: DefaultCampaign(),
			SeedBase:  7,
			Seeds:     2,
			Parallel:  4,
		})
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		out, err := rep.JSON()
		if err != nil {
			t.Fatalf("json: %v", err)
		}
		return out
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed range produced different reports:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestOracleSensitivity: blinding the buddy comparison (identical
// corruption in both buddies) MUST fire the sdc-escape invariant. If this
// fails, the oracle can no longer see escaped corruption.
func TestOracleSensitivity(t *testing.T) {
	res, err := RunScenario(SensitivityScenario(), 3, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Report.Outcome != OutcomeViolation {
		t.Fatalf("outcome %q, want %q (violations: %v)", res.Report.Outcome, OutcomeViolation, res.Report.Violations)
	}
	var escaped bool
	for _, v := range res.Report.Violations {
		if v.Invariant == InvSDCEscape {
			escaped = true
		}
	}
	if !escaped {
		t.Fatalf("sdc-escape invariant did not fire; violations: %v", res.Report.Violations)
	}
}

// TestBlindTrackerSensitivity: a dirty tracker that stops marking pad
// writes in both buddies makes every later capture splice stale pad bytes,
// identically on both sides, so the comparison commits them; the crash
// then restores from a stale epoch and loses increments permanently. The
// golden-pad invariant MUST fire. If this run ever comes back clean, the
// capture path has stopped consulting the tracker (e.g. silently reverted
// to full packs) and the oracle can no longer see incremental-capture
// staleness.
func TestBlindTrackerSensitivity(t *testing.T) {
	res, err := RunScenario(BlindTrackerScenario(), 3, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Report.Outcome != OutcomeViolation {
		t.Fatalf("outcome %q, want %q (violations: %v)", res.Report.Outcome, OutcomeViolation, res.Report.Violations)
	}
	var golden bool
	for _, v := range res.Report.Violations {
		if v.Invariant == InvGoldenResult {
			golden = true
		}
	}
	if !golden {
		t.Fatalf("golden-result invariant did not fire on a blinded tracker; violations: %v", res.Report.Violations)
	}
	for _, f := range res.Report.Faults {
		if !f.Executed {
			t.Fatalf("fault %s@%s never executed", f.Kind, f.Point)
		}
	}
}

// TestCleanChunkCorruptionSensitivity: a Both-mode flip in the pad's
// never-written sentinel element — bytes every incremental capture only
// splices forward, in a chunk the scalar churn never dirties — must still
// count as an SDC escape when the epoch commits. Clean-chunk reuse is a
// capture optimization, not a blind spot in the corruption accounting.
func TestCleanChunkCorruptionSensitivity(t *testing.T) {
	res, err := RunScenario(CleanChunkSensitivityScenario(), 3, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Report.Outcome != OutcomeViolation {
		t.Fatalf("outcome %q, want %q (violations: %v)", res.Report.Outcome, OutcomeViolation, res.Report.Violations)
	}
	var escaped bool
	for _, v := range res.Report.Violations {
		if v.Invariant == InvSDCEscape {
			escaped = true
		}
	}
	if !escaped {
		t.Fatalf("sdc-escape invariant did not fire; violations: %v", res.Report.Violations)
	}
}

// TestGoldenPadFaultFree: a pad-carrying scenario with no faults must
// finish golden — pins that the tracked pad, the dirty splice/patch
// capture, and the golden-pad reference all agree when nothing goes wrong.
func TestGoldenPadFaultFree(t *testing.T) {
	scn := Scenario{
		Name: "pad-fault-free", Nodes: 2, Tasks: 2, Spares: 0, Iters: 40,
		Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
		PadFloats: 8, ChunkSize: 32,
	}
	res, err := RunScenario(scn, 1, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Report.Outcome != OutcomeOK {
		t.Fatalf("fault-free pad run outcome %q, violations %v", res.Report.Outcome, res.Report.Violations)
	}
}

// TestRemoteDarkNeverAbortsJob: the ISSUE's headline robustness claim. A
// fully dark remote must cost nothing but the remote tier itself: the job
// completes golden through the local ladder (tier <= 2), the breaker trips,
// and the epochs the remote refused land on the Resilient fallback.
func TestRemoteDarkNeverAbortsJob(t *testing.T) {
	var scn Scenario
	for _, s := range DefaultCampaign() {
		if s.Name == "remote-dark-failover" {
			scn = s
		}
	}
	if scn.Name == "" {
		t.Fatal("default campaign lost the remote-dark scenario")
	}
	res, err := RunScenario(scn, 2, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Report.Outcome != OutcomeOK {
		t.Fatalf("dark remote aborted the job: outcome %q, violations %v",
			res.Report.Outcome, res.Report.Violations)
	}
	if res.Stats.TierRecoveries[3] != 0 {
		t.Fatalf("recovery touched the dark remote tier: %v", res.Stats.TierRecoveries)
	}
	if got := res.Stats.TierRecoveries[1] + res.Stats.TierRecoveries[2]; got == 0 {
		t.Fatalf("buddy double crash never climbed to a local durable tier: %v", res.Stats.TierRecoveries)
	}
	if res.Stats.Remote.Trips == 0 {
		t.Fatalf("breaker never tripped against a dark remote: %+v", res.Stats.Remote)
	}
	if res.Stats.Remote.Failovers == 0 {
		t.Fatalf("no epoch failed over to the local fallback: %+v", res.Stats.Remote)
	}
	if res.Stats.RemoteFlushErrors == 0 {
		t.Fatalf("dark remote produced no flush errors: %+v", res.Stats)
	}
}

// TestRemoteTierRecovery: with no local durable tier, a buddy double crash
// must climb all the way to tier 3 and restore from the remote object
// store, absorbing a force-failed read with a retry on the way.
func TestRemoteTierRecovery(t *testing.T) {
	var scn Scenario
	for _, s := range DefaultCampaign() {
		if s.Name == "remote-tier-recovery" {
			scn = s
		}
	}
	if scn.Name == "" {
		t.Fatal("default campaign lost the remote-tier-recovery scenario")
	}
	res, err := RunScenario(scn, 2, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Report.Outcome != OutcomeOK {
		t.Fatalf("outcome %q, violations %v", res.Report.Outcome, res.Report.Violations)
	}
	if res.Stats.TierRecoveries[3] == 0 {
		t.Fatalf("recovery never reached the remote tier: %v", res.Stats.TierRecoveries)
	}
	if res.Stats.Remote.Retries == 0 {
		t.Fatalf("force-failed remote read was not retried: %+v", res.Stats.Remote)
	}
}

// TestRemoteFlappingBreakerConverges: a bounded outage trips the breaker;
// background probes burn the outage budget, the breaker re-closes, and
// remote flushes resume — trip AND re-close both observable in the stats.
func TestRemoteFlappingBreakerConverges(t *testing.T) {
	var scn Scenario
	for _, s := range DefaultCampaign() {
		if s.Name == "remote-flapping-breaker" {
			scn = s
		}
	}
	if scn.Name == "" {
		t.Fatal("default campaign lost the remote-flapping scenario")
	}
	res, err := RunScenario(scn, 2, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Report.Outcome != OutcomeOK {
		t.Fatalf("outcome %q, violations %v", res.Report.Outcome, res.Report.Violations)
	}
	rs := res.Stats.Remote
	if rs.Trips == 0 {
		t.Fatalf("outage never tripped the breaker: %+v", rs)
	}
	if rs.Recloses == 0 {
		t.Fatalf("breaker never re-closed after the outage healed: %+v", rs)
	}
	if rs.State != "closed" {
		t.Fatalf("breaker finished %q, want closed: %+v", rs.State, rs)
	}
	if res.Stats.RemoteFlushedEpochs == 0 {
		t.Fatalf("no epoch ever landed on the remote tier: %+v", res.Stats)
	}
}

// TestMinimizeSchedule: ddmin strips decoy faults down to the single
// corruption that causes the violation.
func TestMinimizeSchedule(t *testing.T) {
	scn := SensitivityScenario()
	// Pad the schedule with harmless decoys the minimizer must discard.
	// (A msg bit flip would NOT be harmless here: by desynchronizing the
	// buddies it makes the comparison catch the round the Both-corruption
	// was built to sneak through, masking the violation.)
	scn.Faults = append(scn.Faults,
		Fault{
			Kind:    HeartbeatDelay,
			Target:  Target{Replica: 1, Node: 1, Task: 0},
			Trigger: Trigger{Point: point.RuntimeHeartbeat, Occurrence: 2},
			Delay:   Duration(time.Millisecond),
		},
		Fault{
			Kind:    Crash,
			Target:  Target{Replica: 1, Node: 0, Task: -1},
			Trigger: Trigger{Point: point.CoreCapture, Occurrence: 5},
		},
	)
	res, err := MinimizeSchedule(scn, 3, 0)
	if err != nil {
		t.Fatalf("minimize: %v", err)
	}
	if len(res.Scenario.Faults) >= len(scn.Faults) {
		t.Fatalf("minimization did not shrink the schedule: %d faults", len(res.Scenario.Faults))
	}
	var hasCorrupt bool
	for _, f := range res.Scenario.Faults {
		if f.Kind == CkptCorrupt {
			hasCorrupt = true
		}
	}
	if !hasCorrupt {
		t.Fatalf("minimal schedule lost the corruption fault: %+v", res.Scenario.Faults)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("minimal schedule reports no violations")
	}
	if res.Runs < 2 {
		t.Fatalf("minimization claims %d runs", res.Runs)
	}
}

// TestDiskAtRestDetection: at-rest corruption on the disk tier must
// surface as the detected-at-rest outcome, never as a silent restore.
func TestDiskAtRestDetection(t *testing.T) {
	var scn Scenario
	for _, s := range DefaultCampaign() {
		if s.Store == "disk" {
			scn = s
		}
	}
	if scn.Name == "" {
		t.Fatal("default campaign has no disk scenario")
	}
	res, err := RunScenario(scn, 5, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Report.Outcome != OutcomeDetectedAtRest {
		t.Fatalf("outcome %q, want %q (violations: %v)", res.Report.Outcome, OutcomeDetectedAtRest, res.Report.Violations)
	}
}

package chaos

import (
	"fmt"
	"time"
)

// MinimizeResult is the outcome of a fault-schedule minimization.
type MinimizeResult struct {
	// Scenario is the input scenario with the minimized (and pre-resolved)
	// fault schedule.
	Scenario Scenario
	// Violations is what the minimal schedule still provokes.
	Violations []Violation
	// Runs counts the oracle-checked executions minimization spent.
	Runs int
}

// MinimizeSchedule reduces a violating scenario's fault schedule to a
// 1-minimal subset — removing any single remaining fault makes the
// violation disappear — using ddmin-style delta debugging. The schedule is
// resolved once up front (same resolution NewEngine would apply for the
// seed), so dropping faults never shifts the wildcard targets of the
// survivors. Returns an error when the full schedule does not violate.
func MinimizeSchedule(scn Scenario, seed int64, watchdog time.Duration) (MinimizeResult, error) {
	if err := scn.Validate(); err != nil {
		return MinimizeResult{}, err
	}
	resolved := resolvedCopy(scn, seed)
	runs := 0
	var lastViol []Violation
	test := func(faults []Fault) (bool, error) {
		trial := resolved
		trial.Faults = faults
		runs++
		res, err := RunScenario(trial, seed, watchdog, nil)
		if err != nil {
			return false, err
		}
		if len(res.Report.Violations) > 0 {
			lastViol = res.Report.Violations
			return true, nil
		}
		return false, nil
	}

	ok, err := test(resolved.Faults)
	if err != nil {
		return MinimizeResult{}, err
	}
	if !ok {
		return MinimizeResult{}, fmt.Errorf("chaos: scenario %q seed %d does not violate; nothing to minimize", scn.Name, seed)
	}
	baseline := lastViol

	current := append([]Fault(nil), resolved.Faults...)
	n := 2
	for len(current) >= 2 {
		chunk := (len(current) + n - 1) / n
		reduced := false
		// Try each complement: the schedule minus one chunk.
		for lo := 0; lo < len(current); lo += chunk {
			hi := lo + chunk
			if hi > len(current) {
				hi = len(current)
			}
			complement := make([]Fault, 0, len(current)-(hi-lo))
			complement = append(complement, current[:lo]...)
			complement = append(complement, current[hi:]...)
			if len(complement) == 0 {
				continue
			}
			ok, err := test(complement)
			if err != nil {
				return MinimizeResult{}, err
			}
			if ok {
				current = complement
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(current) {
			break // granularity exhausted: 1-minimal
		}
		n *= 2
		if n > len(current) {
			n = len(current)
		}
	}

	out := resolved
	out.Faults = current
	viol := lastViol
	if len(viol) == 0 {
		viol = baseline
	}
	return MinimizeResult{Scenario: out, Violations: viol, Runs: runs}, nil
}

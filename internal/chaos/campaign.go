package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"acr/internal/chaos/point"
	"acr/internal/ckptstore"
	"acr/internal/core"
	"acr/internal/trace"
)

// DefaultWatchdog bounds one run's wall time; expiry is the no-deadlock
// invariant firing.
const DefaultWatchdog = 20 * time.Second

// RunReport is the deterministic account of one scenario × seed run. It
// deliberately contains no wall-clock-dependent fields (durations, round
// counts): everything here is a function of the seed and the schedule, so
// two runs of the same seed produce byte-identical reports.
type RunReport struct {
	Scenario   string      `json:"scenario"`
	Seed       int64       `json:"seed"`
	Outcome    string      `json:"outcome"`
	Faults     []Record    `json:"faults"`
	Violations []Violation `json:"violations,omitempty"`
}

// RunResult pairs the report with the non-deterministic run diagnostics
// (kept out of the report on purpose).
type RunResult struct {
	Report   RunReport
	Coverage []PointCoverage
	Stats    core.Stats
}

// RunScenario executes one campaign run: build the machine, arm the
// engine, race the controller against the watchdog, and put the outcome to
// the oracle. A nil timeline skips injection tracing.
func RunScenario(scn Scenario, seed int64, watchdog time.Duration, tl *trace.Timeline) (RunResult, error) {
	if err := scn.Validate(); err != nil {
		return RunResult{}, err
	}
	if watchdog <= 0 {
		watchdog = DefaultWatchdog
	}
	scheme, _ := schemeOf(scn.Scheme)
	cmp, _ := comparisonOf(scn.Comparison)

	var store ckptstore.Store
	if scn.Store == "disk" {
		d, err := ckptstore.NewDisk("", nil)
		if err != nil {
			return RunResult{}, fmt.Errorf("chaos: %w", err)
		}
		defer d.Close()
		store = d
	}

	var exch *core.ExchangeConfig
	if scn.exchangeEnabled() {
		// The link's fault pattern is a pure function of the run seed, so
		// same-seed runs see the same loss/duplication/reorder schedule.
		exch = &core.ExchangeConfig{Loss: scn.Loss, Dup: scn.Dup, Reorder: scn.Reorder, Seed: seed}
	}
	engine := NewEngine(&scn, seed, tl)
	cfg := core.Config{
		NodesPerReplica: scn.Nodes,
		TasksPerNode:    scn.Tasks,
		Spares:          scn.Spares,
		Factory:         ringFactory(scn.Tasks, scn.Iters, scn.PadFloats),
		Scheme:          scheme,
		Comparison:      cmp,
		ChunkSize:       scn.ChunkSize,
		// No wall-clock checkpoint timer: the engine paces rounds off
		// progress reports (Scenario.PaceEvery), so the protocol phases a
		// fault schedule triggers on do not depend on host speed.
		CheckpointInterval: 0,
		HeartbeatInterval:  500 * time.Microsecond,
		HeartbeatTimeout:   5 * time.Millisecond,
		Store:              store,
		FlushEvery:         scn.FlushEvery,
		Degraded:           scn.Degraded,
		Exchange:           exch,
		Timeline:           tl,
		Chaos:              engine,
	}
	if scn.RemoteEvery > 0 {
		// The campaign remote is fault-free on its own (zero latency, zero
		// rates): every remote failure is scheduled by the engine through
		// the remote.put/remote.get points and dark mode, so the fault
		// pattern stays a pure function of the schedule. The Resilient
		// wrapper runs with no backoff sleeps and a fast probe so a flapping
		// scenario converges within the run.
		remote := ckptstore.NewRemote(ckptstore.RemoteOptions{Hook: engine})
		resil := ckptstore.NewResilient(remote, ckptstore.ResilientOptions{
			MaxRetries:       1,
			BreakerThreshold: 3,
			ProbeInterval:    time.Millisecond,
			Fallback:         ckptstore.NewMem(),
		})
		defer resil.Close()
		engine.BindRemote(remote)
		cfg.RemoteStore = resil
		cfg.RemoteFlushEvery = scn.RemoteEvery
	}
	ctrl, err := core.New(cfg)
	if err != nil {
		return RunResult{}, fmt.Errorf("chaos: %w", err)
	}
	engine.Bind(ctrl)

	type outcome struct {
		stats core.Stats
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		s, e := ctrl.Run()
		ch <- outcome{s, e}
	}()
	var stats core.Stats
	var runErr error
	timedOut := false
	select {
	case o := <-ch:
		stats, runErr = o.stats, o.err
	case <-time.After(watchdog):
		timedOut = true
		// Force the machine down so the run goroutine can exit; if the
		// hang survives even that, abandon it (the report already says
		// deadlock).
		ctrl.Machine().Stop()
		select {
		case o := <-ch:
			stats, runErr = o.stats, o.err
		case <-time.After(2 * time.Second):
		}
	}

	records := engine.Records()
	commits, corrupt, liveViol := engine.snapshot()
	vd := verify(oracleInput{
		scn:      &scn,
		ctrl:     ctrl,
		stats:    stats,
		runErr:   runErr,
		timedOut: timedOut,
		records:  records,
		commits:  commits,
		corrupt:  corrupt,
		liveViol: liveViol,
	})
	return RunResult{
		Report: RunReport{
			Scenario:   scn.Name,
			Seed:       seed,
			Outcome:    vd.Outcome,
			Faults:     records,
			Violations: vd.Violations,
		},
		Coverage: engine.Coverage(),
		Stats:    stats,
	}, nil
}

// CoverageEntry is the campaign-level view of one injection point.
type CoverageEntry struct {
	Point     point.ID `json:"point"`
	Exercised bool     `json:"exercised"`
}

// Report is a full campaign's deterministic output.
type Report struct {
	Campaign   string          `json:"campaign"`
	SeedBase   int64           `json:"seed_base"`
	Seeds      int             `json:"seeds"`
	Runs       []RunReport     `json:"runs"`
	Coverage   []CoverageEntry `json:"coverage"`
	Violations int             `json:"violations"`
	// Truncated counts runs skipped because the wall-clock budget ran out
	// (budget-limited campaigns trade the byte-identical guarantee for a
	// bounded runtime; run without a budget when diffing reports).
	Truncated int `json:"truncated,omitempty"`
}

// JSON renders the report with a stable field order and trailing newline.
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CSV renders one row per run.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,seed,outcome,violations,faults_executed\n")
	for _, run := range r.Runs {
		executed := 0
		for _, f := range run.Faults {
			if f.Executed {
				executed++
			}
		}
		fmt.Fprintf(&b, "%s,%d,%s,%d,%d\n", run.Scenario, run.Seed, run.Outcome, len(run.Violations), executed)
	}
	return b.String()
}

// CampaignConfig parameterizes RunCampaign.
type CampaignConfig struct {
	Name      string
	Scenarios []Scenario
	SeedBase  int64 // first seed; seeds are SeedBase..SeedBase+Seeds-1
	Seeds     int   // seeds per scenario
	Parallel  int   // concurrent runs; <= 0 means 4
	Budget    time.Duration
	Watchdog  time.Duration
	// OnRun, if non-nil, is called after each finished run (from worker
	// goroutines; must be safe for concurrent use).
	OnRun func(RunResult)
}

// RunCampaign sweeps every scenario across the seed range with a worker
// pool. Results land at fixed positions (scenario-major, seed-minor), so
// the report is independent of completion order; with no budget it is
// byte-identical across invocations of the same configuration.
func RunCampaign(cfg CampaignConfig) (*Report, error) {
	if len(cfg.Scenarios) == 0 {
		return nil, fmt.Errorf("chaos: campaign has no scenarios")
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 4
	}
	for i := range cfg.Scenarios {
		if err := cfg.Scenarios[i].Validate(); err != nil {
			return nil, err
		}
	}

	type job struct {
		scn  int
		seed int64
		idx  int
	}
	jobs := make([]job, 0, len(cfg.Scenarios)*cfg.Seeds)
	for s := range cfg.Scenarios {
		for k := 0; k < cfg.Seeds; k++ {
			jobs = append(jobs, job{scn: s, seed: cfg.SeedBase + int64(k), idx: len(jobs)})
		}
	}

	deadline := time.Time{}
	if cfg.Budget > 0 {
		deadline = time.Now().Add(cfg.Budget)
	}
	results := make([]*RunResult, len(jobs))
	var firstErr error
	var truncated int
	var mu sync.Mutex
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				if !deadline.IsZero() && time.Now().After(deadline) {
					mu.Lock()
					truncated++
					mu.Unlock()
					continue
				}
				res, err := RunScenario(cfg.Scenarios[j.scn], j.seed, cfg.Watchdog, nil)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					results[j.idx] = &res
				}
				mu.Unlock()
				if err == nil && cfg.OnRun != nil {
					cfg.OnRun(res)
				}
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	rep := &Report{Campaign: cfg.Name, SeedBase: cfg.SeedBase, Seeds: cfg.Seeds, Truncated: truncated}
	fired := make(map[point.ID]bool)
	for _, res := range results {
		if res == nil {
			continue
		}
		rep.Runs = append(rep.Runs, res.Report)
		rep.Violations += len(res.Report.Violations)
		for _, pc := range res.Coverage {
			if pc.Fired > 0 {
				fired[pc.Point] = true
			}
		}
	}
	for _, id := range point.All() {
		rep.Coverage = append(rep.Coverage, CoverageEntry{Point: id, Exercised: fired[id]})
	}
	return rep, nil
}

// DefaultCampaign is the stock scenario set: together the six scenarios
// exercise every registered injection point, all three schemes, both
// comparison modes, and both storage tiers, while staying violation-free —
// the soak baseline a regression breaks loudly.
func DefaultCampaign() []Scenario {
	return []Scenario{
		{
			// Crash immediately before a capture; strong scheme rolls the
			// replica back through the store's read path.
			Name: "strong-crash-capture", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
			Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
			Faults: []Fault{{
				Kind:    Crash,
				Target:  Target{Replica: 1, Node: 0, Task: -1},
				Trigger: Trigger{Point: point.CoreCapture, Occurrence: 2},
			}},
		},
		{
			// One in-flight message bit flip early in the run; buddy
			// comparison must catch the divergence and replay cleanly.
			Name: "strong-msg-bitflip", Nodes: 2, Tasks: 2, Spares: 1, Iters: 60,
			Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
			Faults: []Fault{{
				Kind:    MsgBitFlip,
				Target:  Target{Replica: -1, Node: -1, Task: -1},
				Trigger: Trigger{Point: point.RuntimeDeliver, Occurrence: 5},
			}},
		},
		{
			// Medium scheme: crash during a commit, forced recovery
			// checkpoint by the healthy replica.
			Name: "medium-crash-recovery", Nodes: 2, Tasks: 2, Spares: 3, Iters: 60,
			Scheme: "medium", Comparison: "checksum", Store: "mem", PaceEvery: 40,
			Faults: []Fault{{
				Kind:    Crash,
				Target:  Target{Replica: 0, Node: -1, Task: -1},
				Trigger: Trigger{Point: point.CoreCommit, Occurrence: 2},
			}},
		},
		{
			// Both buddies of one node die at a consensus cut, which
			// destroys every in-memory copy of that node's checkpoints in
			// both replicas. The durable flush tier (every 2nd commit) is
			// the escalation target: recovery must climb the ladder to the
			// flushed epoch and complete without ErrUnrecoverable.
			Name: "strong-buddy-double-crash", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
			Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
			FlushEvery: 2,
			Faults: []Fault{{
				Kind:    BuddyDoubleCrash,
				Target:  Target{Replica: 0, Node: 1, Task: -1},
				Trigger: Trigger{Point: point.CorePostConsensus, Occurrence: 3},
			}},
		},
		{
			// Spare pool empty at the first crash: degraded mode folds the
			// dead node onto the least-loaded survivor and the job finishes
			// shrunk, with the same final result.
			Name: "degraded-spare-exhaustion", Nodes: 2, Tasks: 2, Spares: 0, Iters: 60,
			Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
			Degraded: true,
			Faults: []Fault{{
				Kind:    Crash,
				Target:  Target{Replica: 1, Node: 1, Task: -1},
				Trigger: Trigger{Point: point.CorePostConsensus, Occurrence: 2},
			}},
		},
		{
			// A lossy, duplicating link under the hardened exchange: the
			// medium recovery's checkpoint transfer and every round's
			// compare-result message must complete via per-chunk acks and
			// retransmission, never tripping the watchdog.
			Name: "medium-lossy-exchange", Nodes: 2, Tasks: 2, Spares: 3, Iters: 60,
			Scheme: "medium", Comparison: "checksum", Store: "mem", PaceEvery: 40,
			Loss: 0.08, Dup: 0.04,
			Faults: []Fault{{
				Kind:    Crash,
				Target:  Target{Replica: 0, Node: -1, Task: -1},
				Trigger: Trigger{Point: point.CoreCommit, Occurrence: 2},
			}},
		},
		{
			// Deterministic frame loss on an otherwise clean link: the Nth
			// exchange frame is discarded before the link, forcing exactly
			// one retransmission cycle.
			Name: "exchange-frame-drop", Nodes: 2, Tasks: 2, Spares: 1, Iters: 60,
			Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
			Faults: []Fault{{
				Kind:    FrameDrop,
				Target:  Target{Replica: -1, Node: -1, Task: -1},
				Trigger: Trigger{Point: point.NetFrame, Occurrence: 2},
			}},
		},
		{
			// Weak scheme: a crash plus a stalled heartbeat; recovery waits
			// for the next periodic checkpoint.
			Name: "weak-crash-heartbeat-delay", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
			Scheme: "weak", Comparison: "checksum", Store: "mem", PaceEvery: 40,
			Faults: []Fault{
				{
					Kind:    HeartbeatDelay,
					Target:  Target{Replica: 1, Node: 0, Task: 0},
					Trigger: Trigger{Point: point.RuntimeHeartbeat, Occurrence: 4},
					Delay:   Duration(2 * time.Millisecond),
				},
				{
					Kind:    Crash,
					Target:  Target{Replica: 0, Node: 1, Task: -1},
					Trigger: Trigger{Point: point.CorePostConsensus, Occurrence: 2},
				},
			},
		},
		{
			// Checkpoint corruption on the write path (memory tier): the
			// full comparison must flag the round as SDC and roll back.
			Name: "strong-ckpt-corrupt-mem", Nodes: 2, Tasks: 2, Spares: 1, Iters: 60,
			Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
			Faults: []Fault{{
				Kind:    CkptCorrupt,
				Target:  Target{Replica: 0, Node: -1, Task: -1},
				Trigger: Trigger{Point: point.StoreWrite, Occurrence: 2},
			}},
		},
		{
			// Write-tracked pad under crash recovery: every capture runs
			// the dirty splice/patch path (the pad body is mostly clean
			// each round), the small chunk size puts the clean pad tail in
			// its own chunks, and a mid-run crash forces a restore plus
			// replay. The restored pad must replay to the golden pad bit
			// for bit — any splice of a byte the tracker marked, or any
			// skipped re-encode, surfaces as a golden-result violation.
			Name: "strong-dirty-pad-crash", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
			Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
			PadFloats: 8, ChunkSize: 32,
			Faults: []Fault{{
				Kind:    Crash,
				Target:  Target{Replica: 1, Node: 0, Task: -1},
				Trigger: Trigger{Point: point.CoreCapture, Occurrence: 3},
			}},
		},
		{
			// The remote tier goes fully dark at the first commit and stays
			// dark. Every remote upload fails, the breaker trips, later
			// epochs fail over to the Resilient wrapper's local fallback —
			// and when both buddies of a node die, recovery must complete
			// through the LOCAL tiers (durable flush, tier <= 2): a dark
			// remote may never abort a job.
			Name: "remote-dark-failover", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
			Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
			FlushEvery: 2, RemoteEvery: 2,
			Faults: []Fault{
				{
					Kind:    RemoteDark,
					Target:  Target{Replica: -1, Node: -1, Task: -1},
					Trigger: Trigger{Point: point.CoreCommit, Occurrence: 1},
				},
				{
					Kind:    BuddyDoubleCrash,
					Target:  Target{Replica: 0, Node: 1, Task: -1},
					Trigger: Trigger{Point: point.CorePostConsensus, Occurrence: 3},
				},
			},
		},
		{
			// No local durable tier at all: when both buddies of a node die,
			// the ladder's only escalation target is the remote object store
			// (tier 3). The first remote read is force-failed in flight, so
			// the restore also proves the Resilient retry path end to end.
			Name: "remote-tier-recovery", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
			Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
			RemoteEvery: 2,
			Faults: []Fault{
				{
					Kind:    RemoteOpFail,
					Target:  Target{Replica: -1, Node: -1, Task: -1},
					Trigger: Trigger{Point: point.RemoteGet, Occurrence: 1},
				},
				{
					Kind:    BuddyDoubleCrash,
					Target:  Target{Replica: 0, Node: 1, Task: -1},
					Trigger: Trigger{Point: point.CorePostConsensus, Occurrence: 3},
				},
			},
		},
		{
			// A flapping remote: one in-flight upload force-failed (absorbed
			// by a retry), then a bounded outage long enough to trip the
			// breaker. Probes burn the remaining outage budget, the breaker
			// re-closes, and later epochs land on the remote again — the
			// job converges with no violations.
			Name: "remote-flapping-breaker", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
			Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
			RemoteEvery: 1,
			Faults: []Fault{
				{
					Kind:    RemoteOpFail,
					Target:  Target{Replica: -1, Node: -1, Task: -1},
					Trigger: Trigger{Point: point.RemotePut, Occurrence: 1},
				},
				{
					Kind:    RemoteDark,
					Target:  Target{Replica: -1, Node: -1, Task: -1},
					Trigger: Trigger{Point: point.CoreCommit, Occurrence: 2},
					Count:   8,
				},
			},
		},
		{
			// At-rest corruption on the disk tier followed by a crash: the
			// restore path's re-verification must report ErrCorrupt
			// instead of silently restoring bad state.
			Name: "strong-ckpt-corrupt-disk", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
			Scheme: "strong", Comparison: "checksum", Store: "disk", PaceEvery: 40,
			Faults: []Fault{
				{
					Kind:    CkptCorrupt,
					Target:  Target{Replica: 0, Node: 0, Task: 0},
					Trigger: Trigger{Point: point.StoreWrite, Occurrence: 1},
				},
				{
					Kind:    Crash,
					Target:  Target{Replica: 0, Node: 1, Task: -1},
					Trigger: Trigger{Point: point.CoreCommit, Occurrence: 1},
				},
			},
		},
	}
}

// SensitivityScenario is the oracle's own regression check: a Both-mode
// corruption plants the identical bit flip in both buddies' stored
// checkpoints — semantically, a disabled buddy comparison — and a later
// crash forces a restore from the corrupted epoch. A healthy oracle MUST
// report an sdc-escape (and golden-result) violation here; if this
// scenario ever comes back clean, the oracle has gone blind.
func SensitivityScenario() Scenario {
	return Scenario{
		Name: "oracle-sensitivity-both-corrupt", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
		Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
		Faults: []Fault{
			{
				Kind:    CkptCorrupt,
				Target:  Target{Replica: 0, Node: 0, Task: 0},
				Trigger: Trigger{Point: point.StoreWrite, Occurrence: 1},
				Both:    true,
			},
			{
				Kind:    Crash,
				Target:  Target{Replica: 0, Node: 1, Task: -1},
				Trigger: Trigger{Point: point.CoreCommit, Occurrence: 1},
			},
		},
	}
}

// BlindTrackerScenario is the incremental-capture counterpart of
// SensitivityScenario: instead of corrupting stored bytes, it makes the
// dirty tracker LIE. Both buddies' target task stops marking its pad
// writes right before the first capture, so every later checkpoint splices
// stale pad bytes — identically in both replicas, which the comparison is
// structurally blind to. The crash then forces a restore from a committed
// stale checkpoint, losing pad increments permanently. A healthy oracle
// MUST report a golden-result violation here; if this scenario ever comes
// back clean, the capture path has stopped consulting the tracker (for
// example by quietly reverting to full packs) and the incremental path has
// lost its staleness check.
func BlindTrackerScenario() Scenario {
	return Scenario{
		Name: "oracle-sensitivity-blind-tracker", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
		Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
		PadFloats: 8, ChunkSize: 32,
		Faults: []Fault{
			{
				Kind:    TrackerBlind,
				Target:  Target{Replica: 0, Node: 0, Task: 0},
				Trigger: Trigger{Point: point.CoreCapture, Occurrence: 1},
			},
			{
				Kind:    Crash,
				Target:  Target{Replica: 0, Node: 1, Task: -1},
				Trigger: Trigger{Point: point.CoreCommit, Occurrence: 2},
			},
		},
	}
}

// CleanChunkSensitivityScenario plants a Both-mode bit flip in the stored
// checkpoint's trailing bytes — with a pad, that is the never-written
// sentinel element, bytes the dirty capture has only ever spliced forward,
// in a chunk the per-round scalar churn never touches. Committing that
// epoch must still count as an SDC escape: clean-chunk reuse is a capture
// optimization, never an excuse to stop accounting for resident
// corruption. The crash then restores from the corrupted epoch, so the
// golden-pad comparison fires too.
func CleanChunkSensitivityScenario() Scenario {
	return Scenario{
		Name: "oracle-sensitivity-clean-chunk-corrupt", Nodes: 2, Tasks: 2, Spares: 2, Iters: 60,
		Scheme: "strong", Comparison: "full", Store: "mem", PaceEvery: 40,
		PadFloats: 8, ChunkSize: 32,
		Faults: []Fault{
			{
				Kind:    CkptCorrupt,
				Target:  Target{Replica: 0, Node: 0, Task: 0},
				Trigger: Trigger{Point: point.StoreWrite, Occurrence: 2},
				Both:    true,
			},
			{
				Kind:    Crash,
				Target:  Target{Replica: 0, Node: 1, Task: -1},
				Trigger: Trigger{Point: point.CoreCommit, Occurrence: 2},
			},
		},
	}
}

// resolvedCopy returns the scenario with its fault schedule pre-resolved
// for the seed, exactly as NewEngine would resolve it. Minimization uses
// this so removing faults from the schedule cannot shift the wildcard
// resolution of the survivors.
func resolvedCopy(scn Scenario, seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	out := scn
	out.Faults = scn.resolveFaults(rng)
	return out
}

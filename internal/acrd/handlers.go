package acrd

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"acr/internal/buildinfo"
	"acr/internal/ckptstore"
	"acr/internal/core"
	"acr/internal/fleet"
)

// Handler builds the daemon's HTTP API. Routes use Go 1.22 method+wildcard
// patterns; every response body is JSON except /metrics (Prometheus text).
// Mutating routes (submit, flush, restore) require the configured auth
// token; read routes stay open so scrapers and dashboards need no write
// credential.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("POST /api/v1/jobs", s.requireAuth(s.handleSubmit))
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /api/v1/jobs/{id}/inventory", s.handleInventory)
	mux.HandleFunc("GET /api/v1/jobs/{id}/verify", s.handleVerify)
	mux.HandleFunc("POST /api/v1/jobs/{id}/flush", s.requireAuth(s.handleFlush))
	mux.HandleFunc("POST /api/v1/jobs/{id}/restore", s.requireAuth(s.handleRestore))
	mux.HandleFunc("GET /api/v1/fleet", s.handleFleet)
	mux.HandleFunc("GET /api/v1/resume", s.handleResume)
	return mux
}

// requireAuth gates a mutating handler behind Config.AuthToken. The token
// rides either "Authorization: Bearer <token>" or "X-ACRD-Token: <token>";
// comparison is constant-time. An empty configured token leaves the route
// open (single-user dev daemons).
func (s *Server) requireAuth(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.AuthToken == "" {
		return h
	}
	want := []byte(s.cfg.AuthToken)
	return func(w http.ResponseWriter, r *http.Request) {
		tok := r.Header.Get("X-ACRD-Token")
		if tok == "" {
			if ah := r.Header.Get("Authorization"); strings.HasPrefix(ah, "Bearer ") {
				tok = strings.TrimPrefix(ah, "Bearer ")
			}
		}
		if subtle.ConstantTimeCompare([]byte(tok), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="acrd"`)
			writeErr(w, http.StatusUnauthorized, "missing or invalid auth token")
			return
		}
		h(w, r)
	}
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// pathJob resolves the {id} wildcard to a registry entry, writing the 404
// itself on failure.
func (s *Server) pathJob(w http.ResponseWriter, r *http.Request) (*jobRecord, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return nil, false
	}
	rec, ok := s.lookup(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job id %d", id)
		return nil, false
	}
	return rec, true
}

// GET /healthz — liveness plus build identity and uptime.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status    string         `json:"status"`
		Build     buildinfo.Info `json:"build"`
		UptimeSec float64        `json:"uptime_sec"`
	}{
		Status:    "ok",
		Build:     s.info,
		UptimeSec: time.Since(s.start).Seconds(),
	})
}

// POST /api/v1/jobs — submit. 400 on malformed or invalid specs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed job spec: %v", err)
		return
	}
	id, err := s.Submit(req)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, fleet.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, "%v", err)
		return
	}
	rec, _ := s.lookup(id)
	writeJSON(w, http.StatusCreated, s.status(rec))
}

// GET /api/v1/jobs — list all jobs in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.Statuses()})
}

// GET /api/v1/jobs/{id} — one job's status.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.status(rec))
}

// progressEvent is one SSE payload / poll response.
type progressEvent struct {
	ID       int              `json:"id"`
	State    string           `json:"state"`
	Progress *core.Progress   `json:"progress,omitempty"`
	Result   *fleet.JobResult `json:"result,omitempty"`
}

func (s *Server) progressEvent(rec *jobRecord) progressEvent {
	st := s.status(rec)
	return progressEvent{ID: st.ID, State: st.State, Progress: st.Progress, Result: st.Result}
}

// GET /api/v1/jobs/{id}/progress — one snapshot by default; with
// ?stream=1 (or Accept: text/event-stream) an SSE stream of snapshots
// every interval_ms (default 100) until the job settles or the client
// disconnects.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	stream := r.URL.Query().Get("stream") == "1" || r.Header.Get("Accept") == "text/event-stream"
	if !stream {
		writeJSON(w, http.StatusOK, s.progressEvent(rec))
		return
	}
	interval := 100 * time.Millisecond
	if ms, err := strconv.ParseFloat(r.URL.Query().Get("interval_ms"), 64); err == nil && ms > 0 {
		interval = time.Duration(ms * float64(time.Millisecond))
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeErr(w, http.StatusNotImplemented, "streaming unsupported by transport")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	emit := func(ev progressEvent) bool {
		blob, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", blob); err != nil {
			return false
		}
		fl.Flush()
		return ev.State != "completed" && ev.State != "failed"
	}
	if !emit(s.progressEvent(rec)) {
		return
	}
	var done <-chan struct{}
	s.mu.Lock()
	if rec.job != nil {
		done = rec.job.Done()
	}
	s.mu.Unlock()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-done:
			emit(s.progressEvent(rec)) // terminal snapshot carries the result
			return
		case <-ticker.C:
			if !emit(s.progressEvent(rec)) {
				return
			}
		}
	}
}

// tierInventory is one storage tier's epoch census.
type tierInventory struct {
	Name string `json:"name"`
	// Epochs maps epoch → resident task-checkpoint count; Complete lists
	// epochs holding the full 2×nodes×tasks complement.
	Epochs   map[uint64]int     `json:"epochs"`
	Complete []uint64           `json:"complete_epochs,omitempty"`
	Counters ckptstore.Counters `json:"counters"`
}

func tierView(st ckptstore.Store, want int) tierInventory {
	return tierInventory{
		Name:     st.Name(),
		Epochs:   ckptstore.EpochInventory(st),
		Complete: ckptstore.CompleteEpochs(st, want),
		Counters: st.Counters(),
	}
}

// GET /api/v1/jobs/{id}/inventory — per-tier checkpoint census. Running
// jobs report their live hot and durable tiers; settled or prior-life
// jobs report a fresh read-only audit of the on-disk tier.
func (s *Server) handleInventory(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	resp := struct {
		ID            int             `json:"id"`
		Want          int             `json:"want"`
		Tiers         []tierInventory `json:"tiers"`
		DurableEpochs []uint64        `json:"durable_epochs,omitempty"`
	}{ID: rec.id, Want: rec.want}

	s.mu.Lock()
	job := rec.job
	s.mu.Unlock()
	var ctrl *core.Controller
	if job != nil {
		ctrl = job.Controller()
	}
	if ctrl != nil {
		resp.Tiers = append(resp.Tiers, tierView(ctrl.Store(), rec.want))
		if fs := ctrl.FlushStore(); fs != nil {
			resp.Tiers = append(resp.Tiers, tierView(fs, rec.want))
		}
		if rs := ctrl.RemoteStore(); rs != nil {
			resp.Tiers = append(resp.Tiers, tierView(rs, rec.want))
		}
		resp.DurableEpochs = ctrl.DurableEpochs()
	} else {
		// No live machine: audit the directory itself.
		disk, err := ckptstore.NewDisk(rec.dir, nil)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "audit durable tier: %v", err)
			return
		}
		defer disk.Close()
		resp.Tiers = append(resp.Tiers, tierView(disk, rec.want))
		resp.DurableEpochs = ckptstore.CompleteEpochs(disk, rec.want)
	}
	writeJSON(w, http.StatusOK, resp)
}

// GET /api/v1/jobs/{id}/verify — golden-ring oracle for a completed job:
// every task of both replicas compared bit for bit against the serial
// reference. 409 while the job is still running; prior-life jobs have no
// machine left to inspect.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	st := s.status(rec)
	if st.PriorLife {
		writeErr(w, http.StatusConflict, "job %d finished in a prior daemon life; no machine to verify", rec.id)
		return
	}
	if st.State != "completed" {
		writeErr(w, http.StatusConflict, "job %d is %s; verify needs a completed job", rec.id, st.State)
		return
	}
	s.mu.Lock()
	job := rec.job
	s.mu.Unlock()
	var errStrs []string
	for _, e := range fleet.VerifyRing(job) {
		errStrs = append(errStrs, e.Error())
	}
	writeJSON(w, http.StatusOK, struct {
		ID     int      `json:"id"`
		OK     bool     `json:"ok"`
		Errors []string `json:"errors,omitempty"`
	}{ID: rec.id, OK: len(errStrs) == 0, Errors: errStrs})
}

// liveController resolves a running job's controller, writing the 409
// itself when the job is queued or settled.
func (s *Server) liveController(w http.ResponseWriter, rec *jobRecord) (*core.Controller, bool) {
	s.mu.Lock()
	job := rec.job
	s.mu.Unlock()
	if job == nil {
		writeErr(w, http.StatusConflict, "job %d has no live machine", rec.id)
		return nil, false
	}
	if _, settled := job.Result(); settled {
		writeErr(w, http.StatusConflict, "job %d already settled", rec.id)
		return nil, false
	}
	ctrl := job.Controller()
	if ctrl == nil {
		writeErr(w, http.StatusConflict, "job %d still queued", rec.id)
		return nil, false
	}
	return ctrl, true
}

// POST /api/v1/jobs/{id}/flush — force a durable flush of the committed
// epoch, off the FlushEvery cadence.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	ctrl, ok := s.liveController(w, rec)
	if !ok {
		return
	}
	epoch, err := ctrl.FlushCommitted(s.cfg.OpTimeout)
	if err != nil {
		status := http.StatusConflict
		if !errors.Is(err, core.ErrNotRunning) {
			status = http.StatusUnprocessableEntity
		}
		writeErr(w, status, "flush job %d: %v", rec.id, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID    int    `json:"id"`
		Epoch uint64 `json:"epoch"`
	}{ID: rec.id, Epoch: epoch})
}

// POST /api/v1/jobs/{id}/restore?epoch=N — rewind the running job to a
// durable epoch. 404 when the epoch is not in the durable index.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "restore needs ?epoch=N: %v", err)
		return
	}
	ctrl, ok := s.liveController(w, rec)
	if !ok {
		return
	}
	durable := ctrl.DurableEpochs()
	known := false
	for _, e := range durable {
		if e == epoch {
			known = true
			break
		}
	}
	if !known {
		writeErr(w, http.StatusNotFound, "job %d holds no durable epoch %d (have %v)", rec.id, epoch, durable)
		return
	}
	if err := ctrl.RestoreEpoch(epoch, s.cfg.OpTimeout); err != nil {
		status := http.StatusConflict
		if !errors.Is(err, core.ErrNotRunning) {
			status = http.StatusUnprocessableEntity
		}
		writeErr(w, status, "restore job %d epoch %d: %v", rec.id, epoch, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID    int    `json:"id"`
		Epoch uint64 `json:"epoch"`
	}{ID: rec.id, Epoch: epoch})
}

// GET /api/v1/fleet — scheduler-level accounting.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}

// GET /api/v1/resume — the last resume audit.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ResumeReport())
}

package acrd

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"acr/internal/fleet"
)

// waitDurable polls until the job's durable index holds at least n epochs.
func waitDurable(t *testing.T, rec *jobRecord, n int) []uint64 {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		<-rec.job.Admitted()
		if ctrl := rec.job.Controller(); ctrl != nil {
			if durable := ctrl.DurableEpochs(); len(durable) >= n {
				return durable
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached %d durable epochs", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResumeAfterAbruptDeath is the daemon's own checkpoint/restart story
// end to end: a first daemon life runs a job and dies with the job
// unfinished; a second life with Resume replays the journal, audits the
// claims against the bytes actually on disk, readmits the job warm, and
// the job still finishes bit-identical to the golden serial ring.
//
// The death is made adversarial before the second life starts:
//   - a torn half-record is appended to the journal (kill -9 mid-append),
//   - one task-checkpoint file of the newest flushed epoch is deleted, so
//     the journal claims an epoch the store cannot restore.
func TestResumeAfterAbruptDeath(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{DataDir: dir, Fleet: fleet.Config{Nodes: 8}})
	if err != nil {
		t.Fatal(err)
	}
	// Long enough to flush several epochs before the "crash", short enough
	// to finish promptly in the second life even under the race detector.
	id, err := s1.Submit(SubmitRequest{
		Name: "phoenix", Nodes: 2, Tasks: 1, Iters: 300_000, FlushEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec1, _ := s1.lookup(id)
	waitDurable(t, rec1, 2)
	// Close settles the job with fleet.ErrClosed, which watch deliberately
	// does NOT journal as done — the journal now looks exactly like a
	// crash: a submit record, flush records, no outcome.
	s1.Close()
	// What actually survived on disk (retention kept evicting while the
	// job ran, so only a post-mortem audit is authoritative).
	durable, err := auditJobDir(rec1.dir, rec1.want)
	if err != nil {
		t.Fatal(err)
	}
	if len(durable) < 2 {
		t.Fatalf("need >= 2 surviving durable epochs, have %v", durable)
	}
	if _, ok := rec1.job.Result(); !ok {
		t.Fatal("job not settled by close")
	}

	// Sanity: no done record was journaled for the unfinished job.
	blob, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), `"kind":"done"`) {
		t.Fatalf("shutdown-settled job was journaled done:\n%s", blob)
	}

	// Adversarial damage. Deleting one file of the newest flushed epoch
	// makes that journal claim unrestorable; the audit must skip it and
	// salvage an older epoch.
	newest := durable[len(durable)-1]
	victim := filepath.Join(dir, "jobs", fmt.Sprintf("%04d", id), fmt.Sprintf("r0_n0_t0_e%d.ckpt", newest))
	if err := os.Remove(victim); err != nil {
		t.Fatalf("damage newest epoch: %v", err)
	}
	jf, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteString(`{"kind":"flu`); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	// A fresh start over this state must be refused without Resume.
	if _, err := New(Config{DataDir: dir, Fleet: fleet.Config{Nodes: 8}}); err == nil {
		t.Fatal("New without Resume accepted a non-empty journal")
	}

	// Second life.
	s2, err := New(Config{DataDir: dir, Fleet: fleet.Config{Nodes: 8}, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s2.Handler())
	defer func() {
		ts.Close()
		s2.Close()
	}()

	rep := s2.ResumeReport()
	if !rep.Resumed || rep.Readmitted != 1 {
		t.Fatalf("resume report: %+v, want 1 readmitted", rep)
	}
	if rep.TornRecords != 1 {
		t.Fatalf("torn records = %d, want 1", rep.TornRecords)
	}
	if len(rep.Jobs) != 1 {
		t.Fatalf("resume jobs = %+v", rep.Jobs)
	}
	jr := rep.Jobs[0]
	if jr.State != "readmitted" {
		t.Fatalf("job state = %q", jr.State)
	}
	// The damaged epoch was claimed but must not be salvaged.
	for _, e := range jr.Salvaged {
		if e == newest {
			t.Fatalf("damaged epoch %d salvaged: %+v", newest, jr)
		}
	}
	found := false
	for _, e := range jr.Skipped {
		if e == newest {
			found = true
		}
	}
	if !found {
		t.Fatalf("damaged epoch %d not reported skipped: %+v", newest, jr)
	}
	if len(jr.Salvaged) == 0 {
		t.Fatalf("nothing salvaged: %+v", jr)
	}

	// The readmitted job must warm-start from a salvaged epoch, finish,
	// and still match the golden serial ring bit for bit.
	rec2, ok := s2.lookup(id)
	if !ok {
		t.Fatalf("job %d missing after resume", id)
	}
	select {
	case <-rec2.job.Done():
	case <-time.After(180 * time.Second):
		t.Fatal("resumed job did not finish")
	}
	res := rec2.job.Wait()
	if !res.Completed {
		t.Fatalf("resumed job failed: %s", res.Err)
	}
	if res.Stats.ResumedEpoch == 0 {
		t.Fatal("resumed job cold-started; want warm start from a salvaged epoch")
	}
	if res.Stats.ResumedEpoch == newest {
		t.Fatalf("resumed from the damaged epoch %d", newest)
	}
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%d/verify", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok": true`) {
		t.Fatalf("verify after resume: %d %s", resp.StatusCode, body)
	}

	// The API reports the resume provenance on the job itself.
	resp, err = http.Get(fmt.Sprintf("%s/api/v1/jobs/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	resp.Body.Close()
	if !strings.Contains(body, `"resumed": true`) || !strings.Contains(body, `"salvaged_epochs"`) {
		t.Fatalf("job status missing resume provenance: %s", body)
	}
}

// TestResumeCarriesPriorResults: jobs that finished before the restart are
// listed with their journaled result and are not resubmitted; their
// checkpoints are not re-audited.
func TestResumeCarriesPriorResults(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{DataDir: dir, Fleet: fleet.Config{Nodes: 8}})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Submit(SubmitRequest{Name: "ancestor", Nodes: 1, Tasks: 1, Iters: 500, FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := s1.lookup(id)
	select {
	case <-rec.job.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("job did not finish")
	}
	// Let watch journal the done record before closing.
	s1.Close()

	s2, err := New(Config{DataDir: dir, Fleet: fleet.Config{Nodes: 8}, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep := s2.ResumeReport()
	if rep.Finished != 1 || rep.Readmitted != 0 {
		t.Fatalf("resume report: %+v, want 1 finished, 0 readmitted", rep)
	}
	st := s2.Statuses()
	if len(st) != 1 || st[0].State != "completed" || !st[0].PriorLife {
		t.Fatalf("statuses after resume: %+v", st)
	}
	if st[0].Result == nil || !st[0].Result.Completed {
		t.Fatalf("prior-life result missing: %+v", st[0])
	}
	// Daemon ids continue past the prior life's.
	id2, err := s2.Submit(SubmitRequest{Name: "descendant", Nodes: 1, Iters: 200})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id+1 {
		t.Fatalf("next id = %d, want %d", id2, id+1)
	}
}

// The acrd control-plane journal: an append-only JSONL file under the
// daemon's data directory recording every event the daemon must survive a
// kill -9 to remember — job submissions, durable-flush completions, and
// final results. Each record is one JSON object on one line, fsynced
// before the append returns, so a record's presence implies it reached
// stable storage before anything that observed it.
//
// The journal is a *claim log*, not ground truth: a flush record says an
// epoch was completely written at the time, but retention eviction or
// partial-file damage can invalidate it later. Resume therefore treats
// journal claims only as hints and re-derives the usable-epoch set from
// the on-disk checkpoint store itself (see resume.go).
package acrd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"acr/internal/fleet"
)

// recordKind discriminates journal records.
type recordKind string

const (
	// recSubmit: a job was accepted; carries the external spec and the
	// daemon-assigned id. Exactly one per job, ever.
	recSubmit recordKind = "submit"
	// recFlush: the job's durable tier holds a complete copy of the epoch
	// (every task checkpoint of both replicas was accepted by the disk).
	recFlush recordKind = "flush"
	// recResume: a later daemon life readmitted the job; carries what the
	// disk scan salvaged and what journaled claims it had to skip.
	recResume recordKind = "resume"
	// recDone: the job finished; carries the full fleet result. Jobs
	// settled by a graceful daemon shutdown are deliberately NOT journaled
	// done — they are unfinished work the next life must readmit.
	recDone recordKind = "done"
)

// record is the union journal line. Kind selects which fields are live.
type record struct {
	Kind recordKind `json:"kind"`
	ID   int        `json:"id"`

	Spec     *SubmitRequest   `json:"spec,omitempty"`     // submit
	Epoch    uint64           `json:"epoch,omitempty"`    // flush
	Salvaged []uint64         `json:"salvaged,omitempty"` // resume
	Skipped  []uint64         `json:"skipped,omitempty"`  // resume
	Result   *fleet.JobResult `json:"result,omitempty"`   // done
}

// journal is the append handle. Appends are serialized and fsynced.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	closed bool
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("acrd: open journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append writes one record line and fsyncs it. Appends after Close are
// dropped with an error — they race the daemon teardown and lose.
func (j *journal) append(r record) error {
	blob, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("acrd: journal marshal: %w", err)
	}
	blob = append(blob, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("acrd: journal closed")
	}
	if _, err := j.f.Write(blob); err != nil {
		return fmt.Errorf("acrd: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("acrd: journal sync: %w", err)
	}
	return nil
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// rewriteJournal atomically replaces the journal at path with exactly recs
// (the compacted equivalent of its replayed state). The rewrite goes
// through a temp file in the same directory — write, fsync, rename, fsync
// the directory — so a crash at any instant leaves either the old journal
// or the complete new one, never a truncated hybrid. Callers must hold no
// open append handle on path.
func rewriteJournal(path string, recs []record) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("acrd: compact journal: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		blob, err := json.Marshal(r)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("acrd: compact journal marshal: %w", err)
		}
		blob = append(blob, '\n')
		if _, err := w.Write(blob); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("acrd: compact journal write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("acrd: compact journal flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("acrd: compact journal sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("acrd: compact journal close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("acrd: compact journal rename: %w", err)
	}
	// Fsync the directory so the rename itself is durable.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// readJournal loads every parseable record from path. A process killed
// mid-append leaves a torn final line; torn or otherwise unparseable lines
// are counted and skipped, never fatal — the disk scan downstream decides
// what is actually usable. A missing file is an empty journal.
func readJournal(path string) (recs []record, torn int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("acrd: read journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			torn++
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return recs, torn, fmt.Errorf("acrd: scan journal: %w", err)
	}
	return recs, torn, nil
}

// Package acrd is the checkpoint/restart control plane as a long-running
// service: a daemon owning one fleet.Scheduler, accepting jobs over an
// HTTP/JSON API, journaling every control-plane decision durably, and
// exposing the protocol's accounting as scrapeable metrics.
//
// The daemon applies ACR's own medicine to itself. Every job it runs
// flushes checkpoints to a per-job on-disk tier, and every submission,
// completed flush, and final result is fsynced into a JSONL journal before
// it is acknowledged. When the daemon process itself is the failed
// component — kill -9, OOM, node crash — a restarted daemon with --resume
// replays the journal, audits each claim against what actually survived in
// the checkpoint stores, and re-admits unfinished jobs warm from their
// newest usable durable epoch (core.Config.ResumeEpochs). The job picks up
// mid-computation and still finishes bit-identical to the golden serial
// reference.
//
// Layout: server.go (state + lifecycle), journal.go (durable record log),
// tracker.go (flush-completion observer), resume.go (journal-vs-disk
// audit), handlers.go (HTTP API), metrics.go (Prometheus exposition).
package acrd

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"acr/internal/buildinfo"
	"acr/internal/ckptstore"
	"acr/internal/core"
	"acr/internal/fleet"
)

// Config shapes one daemon instance.
type Config struct {
	// DataDir roots the daemon's durable state: the control-plane journal
	// (DataDir/journal.jsonl) and one checkpoint directory per job
	// (DataDir/jobs/<id>). Required.
	DataDir string
	// Fleet configures the scheduler's shared pools (see fleet.Config).
	Fleet fleet.Config
	// Resume replays an existing journal and readmits unfinished jobs. A
	// non-empty journal with Resume false is refused — silently starting
	// fresh over prior state would orphan resumable work.
	Resume bool
	// OpTimeout bounds on-demand flush/restore operations; <= 0 selects 30s.
	OpTimeout time.Duration
	// AuthToken, when non-empty, is required on every mutating API route
	// (job submit, on-demand flush, on-demand restore) as either
	// "Authorization: Bearer <token>" or "X-ACRD-Token: <token>". Read
	// routes stay open: scraping metrics and watching progress must not
	// need write credentials.
	AuthToken string
	// Remote configures the per-job remote object-store flush tier.
	Remote RemoteConfig
}

// RemoteConfig shapes the daemon's remote checkpoint tier: each job whose
// spec (or the daemon default) sets a remote cadence gets its own simulated
// object store wrapped in the ckptstore.Resilient retry/breaker layer. The
// resilient fallback is the job's tracked disk tier, so a dark or flapping
// remote degrades uploads to local durability instead of losing them.
type RemoteConfig struct {
	// Enabled turns the tier on; without it remote cadences in job specs
	// are rejected so callers are not silently ignored.
	Enabled bool
	// Every is the default flush cadence (committed epochs per upload) for
	// jobs that do not set remote_every themselves; <= 0 selects 4.
	Every int
	// Latency and PerKB shape the simulated store's transfer time.
	Latency time.Duration
	PerKB   time.Duration
	// FaultRate is the per-op transient failure probability (split between
	// timeouts and throttling); Seed feeds the store's fault schedule,
	// offset per job id so jobs see independent schedules.
	FaultRate float64
	Seed      int64
}

// SubmitRequest is the external job spec — the POST /api/v1/jobs body and
// the journaled submit payload. Schemes and comparisons are names and the
// interval is milliseconds, matching the acrfleet file-spec idiom.
type SubmitRequest struct {
	Name       string  `json:"name"`
	Priority   int     `json:"priority"`
	Nodes      int     `json:"nodes"`
	Tasks      int     `json:"tasks"`
	Spares     int     `json:"spares"`
	Iters      int     `json:"iters"`
	Scheme     string  `json:"scheme"`
	Comparison string  `json:"comparison"`
	IntervalMs float64 `json:"interval_ms"`
	// FlushEvery is the durable-flush cadence; <= 0 selects 1. Daemon jobs
	// always flush — durability is what makes them resumable.
	FlushEvery int `json:"flush_every"`
	// FlushRetain bounds retained durable epochs; <= 0 selects the core
	// default.
	FlushRetain int `json:"flush_retain"`
	// RemoteEvery is the remote-tier upload cadence in committed epochs.
	// Zero inherits the daemon's default cadence when the remote tier is
	// enabled; negative disables the remote tier for this job even then.
	RemoteEvery int `json:"remote_every,omitempty"`
	// RemoteRetain bounds retained remote epochs; <= 0 selects the core
	// default.
	RemoteRetain int `json:"remote_retain,omitempty"`
}

// validate normalizes the request and rejects what the fleet would choke
// on, so API callers get a 400 instead of a failed job.
func (r *SubmitRequest) validate() error {
	if r.Nodes <= 0 {
		return fmt.Errorf("nodes must be positive, got %d", r.Nodes)
	}
	if r.Tasks < 0 || r.Spares < 0 || r.Iters < 0 {
		return fmt.Errorf("tasks, spares, and iters must be non-negative")
	}
	switch r.Scheme {
	case "", "strong", "medium", "weak":
	default:
		return fmt.Errorf("unknown scheme %q", r.Scheme)
	}
	switch r.Comparison {
	case "", "full", "checksum":
	default:
		return fmt.Errorf("unknown comparison %q", r.Comparison)
	}
	if r.FlushEvery <= 0 {
		r.FlushEvery = 1
	}
	return nil
}

// toJobSpec lowers the external request to a fleet spec. The durable and
// remote stores and resume epochs are wired by launch, not here.
func (r SubmitRequest) toJobSpec() fleet.JobSpec {
	js := fleet.JobSpec{
		Name:         r.Name,
		Priority:     r.Priority,
		Nodes:        r.Nodes,
		Tasks:        r.Tasks,
		Spares:       r.Spares,
		Iters:        r.Iters,
		Interval:     time.Duration(r.IntervalMs * float64(time.Millisecond)),
		FlushEvery:   r.FlushEvery,
		FlushRetain:  r.FlushRetain,
		RemoteRetain: r.RemoteRetain,
	}
	switch r.Scheme {
	case "medium":
		js.Scheme = core.Medium
	case "weak":
		js.Scheme = core.Weak
	default:
		js.Scheme = core.Strong
	}
	if r.Comparison == "checksum" {
		js.Comparison = core.ChecksumCompare
	} else {
		js.Comparison = core.FullCompare
	}
	return js
}

// jobRecord is the daemon's view of one job across process lives.
type jobRecord struct {
	id   int
	req  SubmitRequest
	dir  string // durable checkpoint directory
	want int    // task checkpoints per complete epoch: 2 × nodes × tasks

	// job is the live fleet handle; nil for jobs that finished in a prior
	// daemon life (then prior holds the journaled result).
	job   *fleet.Job
	prior *fleet.JobResult
	// remote is this life's resilient remote-tier handle; closed (stopping
	// its health prober) when the job settles.
	remote *ckptstore.Resilient

	// Resume accounting for this life (empty for fresh submissions).
	resumed  bool
	salvaged []uint64
	skipped  []uint64
}

// Server is the daemon: scheduler + journal + job registry.
type Server struct {
	cfg   Config
	info  buildinfo.Info
	sched *fleet.Scheduler
	jour  *journal
	start time.Time

	// newRemote builds a job's remote backend; tests substitute a handle
	// they can darken and heal on cue.
	newRemote func(id int) *ckptstore.Remote

	mu     sync.Mutex
	closed bool
	jobs   map[int]*jobRecord
	order  []int
	nextID int

	report ResumeReport

	watchers sync.WaitGroup
}

// New builds a daemon over DataDir. With cfg.Resume it replays the journal
// and readmits unfinished jobs; without it, it refuses a non-empty journal.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("acrd: DataDir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("acrd: data dir: %w", err)
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	if cfg.Remote.Enabled && cfg.Remote.Every <= 0 {
		cfg.Remote.Every = 4
	}
	jpath := filepath.Join(cfg.DataDir, "journal.jsonl")
	recs, torn, err := readJournal(jpath)
	if err != nil {
		return nil, err
	}
	if len(recs) > 0 && !cfg.Resume {
		return nil, fmt.Errorf("acrd: %s holds %d journal records from a previous run; restart with resume enabled or point at a fresh data dir", cfg.DataDir, len(recs))
	}

	sched, err := fleet.New(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		info:  buildinfo.Get("acrd"),
		sched: sched,
		start: time.Now(),
		jobs:  make(map[int]*jobRecord),
	}
	s.newRemote = func(id int) *ckptstore.Remote {
		rc := s.cfg.Remote
		return ckptstore.NewRemote(ckptstore.RemoteOptions{
			Latency:      rc.Latency,
			PerKB:        rc.PerKB,
			TimeoutRate:  rc.FaultRate / 2,
			ThrottleRate: rc.FaultRate / 2,
			Seed:         rc.Seed + int64(id),
		})
	}

	if cfg.Resume {
		// Replay and audit BEFORE the journal reopens for appends, then
		// rewrite it compacted: one submit per job plus only the claims the
		// disk audit confirmed (or the final result). Stale flush claims,
		// torn tail lines, and superseded resume records all vanish, so the
		// journal stays O(live state) instead of O(history) across lives.
		if err := s.replay(recs, torn); err != nil {
			sched.Close()
			return nil, err
		}
		if err := rewriteJournal(jpath, s.compactedRecords()); err != nil {
			sched.Close()
			return nil, err
		}
	}
	jour, err := openJournal(jpath)
	if err != nil {
		sched.Close()
		return nil, err
	}
	s.jour = jour
	if cfg.Resume {
		if err := s.readmit(); err != nil {
			jour.Close()
			sched.Close()
			return nil, err
		}
	}
	return s, nil
}

// Close shuts the daemon down: the scheduler settles unfinished jobs with
// fleet.ErrClosed (deliberately not journaled as done — see watch), then
// the journal closes. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.sched.Close()
	s.watchers.Wait()
	s.jour.Close()
}

// Scheduler exposes the underlying fleet scheduler (tests, metrics).
func (s *Server) Scheduler() *fleet.Scheduler { return s.sched }

// ResumeReport returns the audit of the last resume (zero value when the
// daemon started fresh).
func (s *Server) ResumeReport() ResumeReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Submit accepts a fresh job: assign an id, journal the submission, then
// launch it. The journal append happens before the scheduler sees the job,
// so a job the API acknowledged is always in the journal.
func (s *Server) Submit(req SubmitRequest) (int, error) {
	if err := req.validate(); err != nil {
		return 0, err
	}
	if req.RemoteEvery > 0 && !s.cfg.Remote.Enabled {
		return 0, fmt.Errorf("job requests remote_every %d but the daemon's remote tier is disabled (start acrd with -remote)", req.RemoteEvery)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fleet.ErrClosed
	}
	id := s.nextID
	s.nextID++
	rec := &jobRecord{
		id:   id,
		req:  req,
		dir:  s.jobDir(id),
		want: 2 * req.Nodes * max(1, req.Tasks),
	}
	if rec.req.Name == "" {
		rec.req.Name = fmt.Sprintf("job-%03d", id)
	}
	s.jobs[id] = rec
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := s.jour.append(record{Kind: recSubmit, ID: id, Spec: &rec.req}); err != nil {
		s.dropRecord(id)
		return 0, err
	}
	if err := s.launch(rec, nil); err != nil {
		// Compensate the journaled submit so a later resume does not
		// readmit a job the caller was told failed.
		_ = s.jour.append(record{Kind: recDone, ID: id,
			Result: &fleet.JobResult{Name: rec.req.Name, Err: err.Error()}})
		s.dropRecord(id)
		return 0, err
	}
	return id, nil
}

// dropRecord removes a registry entry whose submit never took effect.
func (s *Server) dropRecord(id int) {
	s.mu.Lock()
	delete(s.jobs, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

func (s *Server) jobDir(id int) string {
	return filepath.Join(s.cfg.DataDir, "jobs", fmt.Sprintf("%04d", id))
}

// remoteEvery resolves a job's effective remote cadence: the spec's own
// when positive, the daemon default when the tier is enabled and the spec
// is silent, zero (tier off) when the spec is negative or the daemon's
// remote is disabled.
func (s *Server) remoteEvery(req SubmitRequest) int {
	switch {
	case !s.cfg.Remote.Enabled || req.RemoteEvery < 0:
		return 0
	case req.RemoteEvery > 0:
		return req.RemoteEvery
	default:
		return s.cfg.Remote.Every
	}
}

// launch opens the job's durable tier, wires the flush tracker and (when
// configured) the resilient remote tier, and submits to the fleet.
// resumeEpochs, when non-nil, warm-starts the job from the newest usable
// of those epochs.
func (s *Server) launch(rec *jobRecord, resumeEpochs []uint64) error {
	disk, err := ckptstore.NewDisk(rec.dir, nil)
	if err != nil {
		return fmt.Errorf("acrd: job %d durable tier: %w", rec.id, err)
	}
	id := rec.id
	tracker := newFlushTracker(disk, rec.want, func(epoch uint64) {
		// Journal errors here are unrecoverable mid-flush; the claim is
		// simply absent and resume falls back to the disk scan.
		_ = s.jour.append(record{Kind: recFlush, ID: id, Epoch: epoch})
	})
	js := rec.req.toJobSpec()
	js.FlushStore = tracker
	js.ResumeEpochs = resumeEpochs
	if every := s.remoteEvery(rec.req); every > 0 {
		// The resilient fallback is the job's own tracked disk tier: when
		// the breaker opens, uploads degrade to local durability (and their
		// epochs are journaled as flushed by the tracker), so a dark remote
		// costs redundancy depth, never checkpoints. The fleet's remote
		// bandwidth arbiter wraps this store at admission.
		resil := ckptstore.NewResilient(s.newRemote(id), ckptstore.ResilientOptions{
			Fallback: tracker,
		})
		js.RemoteEvery = every
		js.RemoteStore = resil
		s.mu.Lock()
		rec.remote = resil
		s.mu.Unlock()
	}
	job, err := s.sched.Submit(js)
	if err != nil {
		s.mu.Lock()
		remote := rec.remote
		rec.remote = nil
		s.mu.Unlock()
		if remote != nil {
			remote.Close()
		}
		return err
	}
	s.mu.Lock()
	rec.job = job
	s.mu.Unlock()
	s.watchers.Add(1)
	go s.watch(rec, job)
	return nil
}

// watch journals the job's final result. Jobs settled by scheduler Close
// (fleet.ErrClosed) are NOT journaled done: a graceful shutdown leaves
// them unfinished on purpose, so the next life's resume readmits them.
func (s *Server) watch(rec *jobRecord, job *fleet.Job) {
	defer s.watchers.Done()
	res := job.Wait()
	s.mu.Lock()
	remote := rec.remote
	s.mu.Unlock()
	if remote != nil {
		// The job has settled; stop the remote tier's health prober.
		remote.Close()
	}
	if !res.Completed && res.Err == fleet.ErrClosed.Error() {
		return
	}
	_ = s.jour.append(record{Kind: recDone, ID: rec.id, Result: &res})
}

// JobStatus is the API view of one job.
type JobStatus struct {
	ID    int           `json:"id"`
	Name  string        `json:"name"`
	State string        `json:"state"` // queued | running | completed | failed
	Spec  SubmitRequest `json:"spec"`
	// PriorLife marks a job that finished in a previous daemon process;
	// its result comes from the journal and its machine no longer exists.
	PriorLife bool             `json:"prior_life,omitempty"`
	Resumed   bool             `json:"resumed,omitempty"`
	Salvaged  []uint64         `json:"salvaged_epochs,omitempty"`
	Skipped   []uint64         `json:"skipped_epochs,omitempty"`
	Progress  *core.Progress   `json:"progress,omitempty"`
	Result    *fleet.JobResult `json:"result,omitempty"`
}

// lookup returns the registry entry for id.
func (s *Server) lookup(id int) (*jobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	return rec, ok
}

// status assembles the API view of one record.
func (s *Server) status(rec *jobRecord) JobStatus {
	s.mu.Lock()
	job, prior := rec.job, rec.prior
	st := JobStatus{
		ID:       rec.id,
		Name:     rec.req.Name,
		Spec:     rec.req,
		Resumed:  rec.resumed,
		Salvaged: rec.salvaged,
		Skipped:  rec.skipped,
	}
	s.mu.Unlock()
	switch {
	case job == nil && prior != nil:
		st.PriorLife = true
		st.Result = prior
		if prior.Completed {
			st.State = "completed"
		} else {
			st.State = "failed"
		}
	case job == nil:
		st.State = "queued" // launch in flight
	default:
		if res, ok := job.Result(); ok {
			st.Result = &res
			if res.Completed {
				st.State = "completed"
			} else {
				st.State = "failed"
			}
			// The progress atomics outlive Run; keep serving them so the
			// metrics series stays continuous across settlement.
			if ctrl := job.Controller(); ctrl != nil {
				p := ctrl.Progress()
				st.Progress = &p
			}
		} else if ctrl := job.Controller(); ctrl != nil {
			st.State = "running"
			p := ctrl.Progress()
			st.Progress = &p
		} else {
			st.State = "queued"
		}
	}
	return st
}

// Statuses lists every job in submission order.
func (s *Server) Statuses() []JobStatus {
	s.mu.Lock()
	ids := append([]int(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if rec, ok := s.lookup(id); ok {
			out = append(out, s.status(rec))
		}
	}
	return out
}

func dedupSortUint64(in []uint64) []uint64 {
	if len(in) == 0 {
		return nil
	}
	out := append([]uint64(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

package acrd

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// GET /metrics — Prometheus text exposition (format 0.0.4), hand-rolled so
// the daemon stays dependency-free. Three metric families:
//
//   - acrd_*: daemon-level gauges (identity, uptime, job-state census,
//     resume audit).
//   - acr_fleet_*: the scheduler's FleetStats and the I/O arbiter's
//     counters, as monotonic totals.
//   - acr_job_*: per-job protocol counters from core.Progress, labeled
//     {id, job}. Live jobs report their atomics; settled jobs report the
//     final Stats frozen in their result, so counters do not vanish from
//     the scrape when a job finishes.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	meta := func(name, typ, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	meta("acrd_info", "gauge", "Build identity of the running daemon.")
	fmt.Fprintf(&b, "acrd_info{version=%q,go_version=%q,revision=%q} 1\n",
		s.info.Version, s.info.GoVersion, s.info.VCSRevision)
	meta("acrd_uptime_seconds", "gauge", "Seconds since the daemon started.")
	fmt.Fprintf(&b, "acrd_uptime_seconds %g\n", time.Since(s.start).Seconds())

	statuses := s.Statuses()
	counts := map[string]int{"queued": 0, "running": 0, "completed": 0, "failed": 0}
	for _, st := range statuses {
		counts[st.State]++
	}
	meta("acrd_jobs", "gauge", "Jobs by state.")
	for _, state := range []string{"queued", "running", "completed", "failed"} {
		fmt.Fprintf(&b, "acrd_jobs{state=%q} %d\n", state, counts[state])
	}

	rep := s.ResumeReport()
	meta("acrd_resume_salvaged_epochs", "gauge", "Durable epochs the last resume audit confirmed usable.")
	fmt.Fprintf(&b, "acrd_resume_salvaged_epochs %d\n", rep.SalvagedEpochs)
	meta("acrd_resume_skipped_epochs", "gauge", "Journal-claimed epochs the last resume audit could not confirm.")
	fmt.Fprintf(&b, "acrd_resume_skipped_epochs %d\n", rep.SkippedEpochs)
	meta("acrd_resume_readmitted_jobs", "gauge", "Jobs readmitted warm by the last resume.")
	fmt.Fprintf(&b, "acrd_resume_readmitted_jobs %d\n", rep.Readmitted)

	fs := s.sched.Stats()
	meta("acr_fleet_submitted_total", "counter", "Jobs submitted to the fleet.")
	fmt.Fprintf(&b, "acr_fleet_submitted_total %d\n", fs.Submitted)
	meta("acr_fleet_admissions_total", "counter", "Jobs admitted to resources.")
	fmt.Fprintf(&b, "acr_fleet_admissions_total %d\n", fs.Admissions)
	meta("acr_fleet_completed_total", "counter", "Jobs completed.")
	fmt.Fprintf(&b, "acr_fleet_completed_total %d\n", fs.Completed)
	meta("acr_fleet_failed_total", "counter", "Jobs failed.")
	fmt.Fprintf(&b, "acr_fleet_failed_total %d\n", fs.Failed)
	meta("acr_fleet_preemptions_total", "counter", "Spares preempted between jobs.")
	fmt.Fprintf(&b, "acr_fleet_preemptions_total %d\n", fs.Preemptions)
	meta("acr_fleet_spare_grants_total", "counter", "Spares granted to degraded jobs.")
	fmt.Fprintf(&b, "acr_fleet_spare_grants_total %d\n", fs.SpareGrants)
	meta("acr_fleet_queue_wait_seconds_total", "counter", "Cumulative admission queue wait.")
	fmt.Fprintf(&b, "acr_fleet_queue_wait_seconds_total %g\n", fs.QueueWait.Seconds())
	meta("acr_fleet_degraded_seconds_total", "counter", "Cumulative time jobs ran degraded.")
	fmt.Fprintf(&b, "acr_fleet_degraded_seconds_total %g\n", fs.DegradedTime.Seconds())

	meta("acr_fleet_arbiter_write_waits_total", "counter", "Flush writes that waited for bandwidth tokens.")
	fmt.Fprintf(&b, "acr_fleet_arbiter_write_waits_total %d\n", fs.Arbiter.WriteWaits)
	meta("acr_fleet_arbiter_write_wait_seconds_total", "counter", "Cumulative flush-write wait time.")
	fmt.Fprintf(&b, "acr_fleet_arbiter_write_wait_seconds_total %g\n", fs.Arbiter.WriteWait.Seconds())
	meta("acr_fleet_arbiter_write_bytes_total", "counter", "Flush bytes admitted through the arbiter.")
	fmt.Fprintf(&b, "acr_fleet_arbiter_write_bytes_total %d\n", fs.Arbiter.WriteBytes)
	meta("acr_fleet_arbiter_read_bypasses_total", "counter", "Recovery reads bypassing the write budget.")
	fmt.Fprintf(&b, "acr_fleet_arbiter_read_bypasses_total %d\n", fs.Arbiter.ReadBypasses)

	// Per-job counters: one stable label set {id, job}. Progress and final
	// Stats share the update sites, so the series stays monotonic across
	// the running → settled transition.
	type jobSample struct {
		labels string
		vals   map[string]float64
	}
	names := []string{
		"acr_job_committed_epoch",
		"acr_job_checkpoints_total",
		"acr_job_hard_errors_total",
		"acr_job_sdc_detected_total",
		"acr_job_rollbacks_total",
		"acr_job_flushed_epochs_total",
		"acr_job_folds_total",
		"acr_job_degraded_nodes",
		"acr_job_resumed_epoch",
		"acr_remote_flushed_epochs_total",
		"acr_remote_retries_total",
		"acr_remote_breaker_trips_total",
		"acr_remote_breaker_recloses_total",
		"acr_remote_failovers_total",
		"acr_remote_breaker_open",
	}
	help := map[string]string{
		"acr_job_committed_epoch":      "Newest committed checkpoint epoch.",
		"acr_job_checkpoints_total":    "Committed checkpoint rounds.",
		"acr_job_hard_errors_total":    "Hard (fail-stop) errors recovered.",
		"acr_job_sdc_detected_total":   "Silent data corruptions detected by buddy compare.",
		"acr_job_rollbacks_total":      "Replica rollbacks.",
		"acr_job_flushed_epochs_total": "Epochs flushed to the durable tier.",
		"acr_job_folds_total":          "Degraded-mode folds.",
		"acr_job_degraded_nodes":       "Logical nodes currently folded.",
		"acr_job_resumed_epoch":        "Durable epoch this job warm-started from (0 = cold).",

		"acr_remote_flushed_epochs_total":   "Epochs landed on the remote tier (including failovers).",
		"acr_remote_retries_total":          "Remote store operations retried after transient faults.",
		"acr_remote_breaker_trips_total":    "Circuit breaker open transitions on the remote store.",
		"acr_remote_breaker_recloses_total": "Circuit breaker close transitions after successful probes.",
		"acr_remote_failovers_total":        "Remote puts diverted to the local fallback store.",
		"acr_remote_breaker_open":           "1 while the remote circuit breaker is open or half-open.",
	}
	typ := func(name string) string {
		if strings.HasSuffix(name, "_total") {
			return "counter"
		}
		return "gauge"
	}
	var samples []jobSample
	var tierSamples []struct {
		labels string
		tier   int
		v      float64
	}
	for _, st := range statuses {
		labels := fmt.Sprintf(`id="%d",job=%q`, st.ID, st.Name)
		var p *progressView
		switch {
		case st.Progress != nil:
			pv := progressView{
				committed: float64(st.Progress.CommittedEpoch), checkpoints: float64(st.Progress.Checkpoints),
				hard: float64(st.Progress.HardErrors), sdc: float64(st.Progress.SDCDetected),
				rollbacks: float64(st.Progress.Rollbacks), flushed: float64(st.Progress.FlushedEpochs),
				folds: float64(st.Progress.Folds), degraded: float64(st.Progress.DegradedNodes),
				resumed:       float64(st.Progress.ResumedEpoch),
				remoteFlushed: float64(st.Progress.RemoteFlushedEpochs), remoteRetries: float64(st.Progress.RemoteRetries),
				remoteTrips: float64(st.Progress.RemoteTrips), remoteRecloses: float64(st.Progress.RemoteRecloses),
				remoteFailovers: float64(st.Progress.RemoteFailovers), remoteOpen: float64(st.Progress.RemoteBreakerOpen),
			}
			for i, n := range st.Progress.TierRecoveries {
				pv.tiers[i] = float64(n)
			}
			p = &pv
		case st.Result != nil:
			// Prior-life jobs: the frozen final Stats (no committed-epoch
			// or degraded gauge there — those die with the machine).
			r := st.Result.Stats
			pv := progressView{
				checkpoints: float64(r.Checkpoints),
				hard:        float64(r.HardErrors), sdc: float64(r.SDCDetected),
				rollbacks: float64(r.Rollbacks), flushed: float64(r.FlushedEpochs),
				folds:         float64(r.Folds),
				resumed:       float64(r.ResumedEpoch),
				remoteFlushed: float64(r.RemoteFlushedEpochs), remoteRetries: float64(r.Remote.Retries),
				remoteTrips: float64(r.Remote.Trips), remoteRecloses: float64(r.Remote.Recloses),
				remoteFailovers: float64(r.Remote.Failovers),
			}
			if r.Remote.State != "" && r.Remote.State != "closed" {
				pv.remoteOpen = 1
			}
			for i, n := range r.TierRecoveries {
				pv.tiers[i] = float64(n)
			}
			p = &pv
		}
		if p == nil {
			continue
		}
		samples = append(samples, jobSample{labels: labels, vals: map[string]float64{
			"acr_job_committed_epoch":      p.committed,
			"acr_job_checkpoints_total":    p.checkpoints,
			"acr_job_hard_errors_total":    p.hard,
			"acr_job_sdc_detected_total":   p.sdc,
			"acr_job_rollbacks_total":      p.rollbacks,
			"acr_job_flushed_epochs_total": p.flushed,
			"acr_job_folds_total":          p.folds,
			"acr_job_degraded_nodes":       p.degraded,
			"acr_job_resumed_epoch":        p.resumed,

			"acr_remote_flushed_epochs_total":   p.remoteFlushed,
			"acr_remote_retries_total":          p.remoteRetries,
			"acr_remote_breaker_trips_total":    p.remoteTrips,
			"acr_remote_breaker_recloses_total": p.remoteRecloses,
			"acr_remote_failovers_total":        p.remoteFailovers,
			"acr_remote_breaker_open":           p.remoteOpen,
		}})
		for tier, n := range p.tiers {
			tierSamples = append(tierSamples, struct {
				labels string
				tier   int
				v      float64
			}{labels, tier, float64(n)})
		}
	}
	for _, name := range names {
		meta(name, typ(name), help[name])
		for _, smp := range samples {
			fmt.Fprintf(&b, "%s{%s} %g\n", name, smp.labels, smp.vals[name])
		}
	}
	meta("acr_job_tier_recoveries_total", "counter", "Recoveries by ladder tier (0 buddy memory, 1 durable flush, 2 older durable epoch, 3 remote object store).")
	sort.SliceStable(tierSamples, func(i, j int) bool { return tierSamples[i].tier < tierSamples[j].tier })
	for _, ts := range tierSamples {
		fmt.Fprintf(&b, "acr_job_tier_recoveries_total{%s,tier=\"%d\"} %g\n", ts.labels, ts.tier, ts.v)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// progressView flattens live Progress and frozen Stats into one shape for
// the exporter.
type progressView struct {
	committed, checkpoints, hard, sdc, rollbacks, flushed, folds, degraded, resumed float64
	remoteFlushed, remoteRetries, remoteTrips, remoteRecloses, remoteFailovers      float64
	remoteOpen                                                                      float64
	tiers                                                                           [4]float64
}

package acrd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acr/internal/fleet"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		DataDir: t.TempDir(),
		Fleet:   fleet.Config{Nodes: 16, Spares: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decode body: %v", method, url, err)
	}
	return resp, m
}

// submitAndWait posts a small job and waits for its completion via the
// daemon registry, returning the id.
func submitAndWait(t *testing.T, s *Server, ts *httptest.Server, name string, iters int) int {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"nodes":2,"tasks":1,"iters":%d,"flush_every":1}`, name, iters)
	resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d, body %v", resp.StatusCode, m)
	}
	id := int(m["id"].(float64))
	rec, ok := s.lookup(id)
	if !ok {
		t.Fatalf("submitted job %d not in registry", id)
	}
	select {
	case <-rec.job.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %d did not finish", id)
	}
	return id
}

// TestRoutesTable drives every route through httptest, including the
// malformed-spec, unknown-id, and bad-epoch error paths.
func TestRoutesTable(t *testing.T) {
	s, ts := newTestServer(t)
	// ~20k ring laps run long enough (~100ms) to commit and flush several
	// checkpoint epochs, so the inventory and verify routes have substance.
	doneID := submitAndWait(t, s, ts, "routes", 20000)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantSub    string // substring that must appear in the body
	}{
		{"healthz", "GET", "/healthz", "", 200, `"name": "acrd"`},
		{"metrics", "GET", "/metrics", "", 200, "acr_fleet_submitted_total"},
		{"metrics job series", "GET", "/metrics", "", 200, "acr_job_checkpoints_total"},
		{"list", "GET", "/api/v1/jobs", "", 200, `"routes"`},
		{"fleet stats", "GET", "/api/v1/fleet", "", 200, `"admissions"`},
		{"resume report fresh", "GET", "/api/v1/resume", "", 200, `"resumed": false`},
		{"job detail", "GET", fmt.Sprintf("/api/v1/jobs/%d", doneID), "", 200, `"state": "completed"`},
		{"job detail keeps progress", "GET", fmt.Sprintf("/api/v1/jobs/%d", doneID), "", 200, `"committed_epoch"`},
		{"progress snapshot", "GET", fmt.Sprintf("/api/v1/jobs/%d/progress", doneID), "", 200, `"state": "completed"`},
		{"inventory", "GET", fmt.Sprintf("/api/v1/jobs/%d/inventory", doneID), "", 200, `"complete_epochs"`},
		{"verify completed", "GET", fmt.Sprintf("/api/v1/jobs/%d/verify", doneID), "", 200, `"ok": true`},

		{"submit malformed JSON", "POST", "/api/v1/jobs", `{"nodes":`, 400, "malformed job spec"},
		{"submit unknown field", "POST", "/api/v1/jobs", `{"nodes":2,"bogus":1}`, 400, "malformed job spec"},
		{"submit zero nodes", "POST", "/api/v1/jobs", `{"nodes":0}`, 400, "nodes must be positive"},
		{"submit bad scheme", "POST", "/api/v1/jobs", `{"nodes":2,"scheme":"psychic"}`, 400, "unknown scheme"},
		{"submit bad comparison", "POST", "/api/v1/jobs", `{"nodes":2,"comparison":"vibes"}`, 400, "unknown comparison"},
		{"submit negative iters", "POST", "/api/v1/jobs", `{"nodes":2,"iters":-5}`, 400, "non-negative"},

		{"unknown job id", "GET", "/api/v1/jobs/9999", "", 404, "unknown job id"},
		{"non-numeric job id", "GET", "/api/v1/jobs/banana", "", 400, "bad job id"},
		{"progress unknown id", "GET", "/api/v1/jobs/9999/progress", "", 404, "unknown job id"},
		{"inventory unknown id", "GET", "/api/v1/jobs/9999/inventory", "", 404, "unknown job id"},
		{"verify unknown id", "GET", "/api/v1/jobs/9999/verify", "", 404, "unknown job id"},
		{"flush unknown id", "POST", "/api/v1/jobs/9999/flush", "", 404, "unknown job id"},
		{"restore unknown id", "POST", "/api/v1/jobs/9999/restore?epoch=1", "", 404, "unknown job id"},
		{"flush settled job", "POST", fmt.Sprintf("/api/v1/jobs/%d/flush", doneID), "", 409, "already settled"},
		{"restore settled job", "POST", fmt.Sprintf("/api/v1/jobs/%d/restore?epoch=1", doneID), "", 409, "already settled"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body := readAll(t, resp)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, tc.wantStatus, body)
			}
			if !strings.Contains(body, tc.wantSub) {
				t.Fatalf("body missing %q:\n%s", tc.wantSub, body)
			}
		})
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestOnDemandFlushRestoreOverHTTP exercises the operator loop against a
// live job: force a flush, rewind to it, reject a restore of an epoch the
// durable tier does not hold, and confirm the job still finishes
// bit-identical to the golden ring.
func TestOnDemandFlushRestoreOverHTTP(t *testing.T) {
	s, ts := newTestServer(t)
	resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs",
		`{"name":"ops","nodes":2,"tasks":1,"iters":400000,"flush_every":1000000}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %v", resp.StatusCode, m)
	}
	id := int(m["id"].(float64))
	rec, _ := s.lookup(id)
	<-rec.job.Admitted()

	// Wait for a committed checkpoint so the forced flush has something
	// to persist.
	deadline := time.Now().Add(30 * time.Second)
	for rec.job.Controller().Progress().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint committed in time")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, m = doJSON(t, "POST", fmt.Sprintf("%s/api/v1/jobs/%d/flush", ts.URL, id), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d %v", resp.StatusCode, m)
	}
	epoch := uint64(m["epoch"].(float64))
	if epoch == 0 {
		t.Fatal("flush returned epoch 0")
	}

	resp, m = doJSON(t, "POST", fmt.Sprintf("%s/api/v1/jobs/%d/restore?epoch=%d", ts.URL, id, epoch+999), "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("restore of non-existent epoch: status %d (%v), want 404", resp.StatusCode, m)
	}

	resp, m = doJSON(t, "POST", fmt.Sprintf("%s/api/v1/jobs/%d/restore?epoch=%d", ts.URL, id, epoch), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: %d %v", resp.StatusCode, m)
	}

	// Missing ?epoch= is a 400.
	resp, _ = doJSON(t, "POST", fmt.Sprintf("%s/api/v1/jobs/%d/restore", ts.URL, id), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("restore without epoch: status %d, want 400", resp.StatusCode)
	}

	select {
	case <-rec.job.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("job did not finish after restore")
	}
	resp, m = doJSON(t, "GET", fmt.Sprintf("%s/api/v1/jobs/%d/verify", ts.URL, id), "")
	if resp.StatusCode != http.StatusOK || m["ok"] != true {
		t.Fatalf("verify after restore: %d %v", resp.StatusCode, m)
	}
	// The rewind must show up in the progress counters as rollbacks.
	p := rec.job.Controller().Progress()
	if p.Rollbacks < 2 {
		t.Fatalf("rollbacks = %d after on-demand restore, want >= 2", p.Rollbacks)
	}
}

// TestProgressSSE streams a short job to completion and checks the final
// event carries the terminal state and result.
func TestProgressSSE(t *testing.T) {
	s, ts := newTestServer(t)
	resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs",
		`{"name":"sse","nodes":1,"tasks":1,"iters":2000,"flush_every":1}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %v", resp.StatusCode, m)
	}
	id := int(m["id"].(float64))

	sresp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%d/progress?stream=1&interval_ms=10", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var events []progressEvent
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev progressEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	last := events[len(events)-1]
	if last.State != "completed" {
		t.Fatalf("final event state = %q, want completed", last.State)
	}
	if last.Result == nil || !last.Result.Completed {
		t.Fatalf("final event missing completed result: %+v", last)
	}
	_ = s
}

// TestSubmitAfterClose maps the scheduler's typed error to 503.
func TestSubmitAfterCloseHTTP(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), Fleet: fleet.Config{Nodes: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs", `{"nodes":1,"iters":100}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: status %d (%v), want 503", resp.StatusCode, m)
	}
}

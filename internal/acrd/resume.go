package acrd

import (
	"fmt"

	"acr/internal/ckptstore"
)

// Resume: rebuilding the control plane after the daemon itself died.
//
// The validation ladder has three rungs, each trusting the previous one
// less:
//
//  1. Journal claims — the replayed submit/flush/done records say which
//     jobs existed, which finished, and which epochs were flushed. Claims
//     only: an epoch journaled as flushed may since have been evicted by
//     retention, half-written by a dying flush, or corrupted at rest.
//  2. Disk audit — each unfinished job's checkpoint directory is reopened
//     (ckptstore.NewDisk rebuilds its index from the files actually
//     present) and ckptstore.CompleteEpochs derives the epochs with a full
//     complement of task checkpoints. Epochs the journal claimed but the
//     disk cannot fully produce are reported skipped; complete epochs are
//     salvaged — including ones whose flush record was torn off the
//     journal tail by the crash.
//  3. Payload verification — salvaged epochs are only candidates. The
//     core's warm start (resumeFromDurable → adoptEpoch) re-reads every
//     task checkpoint, and the disk tier re-verifies each payload against
//     its stored root on Get, walking to the next-older epoch on any
//     corruption. A job whose every candidate fails verification cold
//     starts from factory state.
//
// Rung 3 lives in internal/core; this file implements rungs 1 and 2.

// ResumeReport is the audit of one resume pass.
type ResumeReport struct {
	// Resumed is true when the daemon started with resume enabled.
	Resumed bool `json:"resumed"`
	// JournalRecords / TornRecords count parseable and unparseable journal
	// lines (a kill -9 mid-append leaves at most one torn tail line).
	JournalRecords int `json:"journal_records"`
	TornRecords    int `json:"torn_records"`
	// Readmitted / Finished / ColdStarted count unfinished jobs resubmitted
	// warm, jobs that finished in a prior life, and readmitted jobs that
	// had no usable durable epoch at all.
	Readmitted  int `json:"readmitted"`
	Finished    int `json:"finished"`
	ColdStarted int `json:"cold_started"`
	// SalvagedEpochs / SkippedEpochs total the per-job audit counts.
	SalvagedEpochs int `json:"salvaged_epochs"`
	SkippedEpochs  int `json:"skipped_epochs"`
	// CompactedRecords counts the records the rewritten (compacted)
	// journal was reduced to: one submit per job plus only audit-confirmed
	// flush claims and final results. Stale claims, torn lines, and prior
	// resume records are dropped by the rewrite.
	CompactedRecords int `json:"compacted_records"`

	Jobs []ResumeJobReport `json:"jobs,omitempty"`
}

// ResumeJobReport is the per-job audit line.
type ResumeJobReport struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// State: "readmitted" (warm), "cold" (readmitted with nothing usable),
	// or "finished" (done record found; not resubmitted).
	State string `json:"state"`
	// Claimed lists epochs the journal asserts were flushed; Salvaged the
	// complete epochs the disk audit confirmed; Skipped the claims the
	// audit could not confirm (evicted, partial, or unreadable).
	Claimed  []uint64 `json:"claimed_epochs,omitempty"`
	Salvaged []uint64 `json:"salvaged_epochs,omitempty"`
	Skipped  []uint64 `json:"skipped_epochs,omitempty"`
}

// replay loads journal records into the registry and audits every
// unfinished job's disk tier (rungs 1 and 2), filling s.report. It writes
// nothing: the journal is not even open for appends yet — New compacts it
// from the replayed state before reopening. Called from New before the API
// is reachable, so it needs no locking discipline beyond the registry
// mutex.
func (s *Server) replay(recs []record, torn int) error {
	report := ResumeReport{Resumed: true, JournalRecords: len(recs), TornRecords: torn}

	claimed := make(map[int][]uint64)
	for _, r := range recs {
		switch r.Kind {
		case recSubmit:
			if r.Spec == nil {
				continue
			}
			req := *r.Spec
			rec := &jobRecord{
				id:   r.ID,
				req:  req,
				dir:  s.jobDir(r.ID),
				want: 2 * req.Nodes * max(1, req.Tasks),
			}
			s.jobs[r.ID] = rec
			s.order = append(s.order, r.ID)
			if r.ID >= s.nextID {
				s.nextID = r.ID + 1
			}
		case recFlush:
			claimed[r.ID] = append(claimed[r.ID], r.Epoch)
		case recResume:
			// A previous life's audit; informational only — this life
			// re-audits the disk from scratch.
		case recDone:
			if rec, ok := s.jobs[r.ID]; ok && r.Result != nil {
				rec.prior = r.Result
			}
		}
	}

	for _, id := range s.order {
		rec := s.jobs[id]
		jr := ResumeJobReport{ID: id, Name: rec.req.Name, Claimed: dedupSortUint64(claimed[id])}
		if rec.prior != nil {
			jr.State = "finished"
			report.Finished++
			report.Jobs = append(report.Jobs, jr)
			continue
		}

		// Rung 2: audit the disk. The reopen rebuilds the index from the
		// files actually present; CompleteEpochs keeps only epochs with a
		// full 2×nodes×tasks complement.
		salvaged, err := auditJobDir(rec.dir, rec.want)
		if err != nil {
			return fmt.Errorf("acrd: resume job %d: %w", id, err)
		}
		jr.Salvaged = salvaged
		onDisk := make(map[uint64]bool, len(salvaged))
		for _, e := range salvaged {
			onDisk[e] = true
		}
		for _, e := range jr.Claimed {
			if !onDisk[e] {
				jr.Skipped = append(jr.Skipped, e)
			}
		}

		if len(salvaged) > 0 {
			jr.State = "readmitted"
			report.Readmitted++
		} else {
			jr.State = "cold"
			report.ColdStarted++
		}
		report.SalvagedEpochs += len(jr.Salvaged)
		report.SkippedEpochs += len(jr.Skipped)

		rec.resumed = true
		rec.salvaged = jr.Salvaged
		rec.skipped = jr.Skipped
		report.Jobs = append(report.Jobs, jr)
	}

	s.report = report
	return nil
}

// compactedRecords rebuilds the journal's minimal equivalent from the
// replayed registry: per job, its submit record, then either the final
// result (finished jobs) or one flush record per audit-confirmed epoch.
// Everything else — stale claims the audit skipped, prior resume records,
// flush records for since-evicted epochs — is history the next resume
// would re-derive anyway, so the rewrite drops it.
func (s *Server) compactedRecords() []record {
	var out []record
	for _, id := range s.order {
		rec := s.jobs[id]
		req := rec.req
		out = append(out, record{Kind: recSubmit, ID: id, Spec: &req})
		if rec.prior != nil {
			out = append(out, record{Kind: recDone, ID: id, Result: rec.prior})
			continue
		}
		for _, e := range rec.salvaged {
			out = append(out, record{Kind: recFlush, ID: id, Epoch: e})
		}
	}
	s.report.CompactedRecords = len(out)
	return out
}

// readmit journals a resume record for every unfinished job and relaunches
// it warm from its salvaged epochs. Runs after the compacted journal has
// reopened for appends, so a crash between compaction and here replays the
// same compacted state again.
func (s *Server) readmit() error {
	for _, id := range s.order {
		rec := s.jobs[id]
		if rec.prior != nil {
			continue
		}
		if err := s.jour.append(record{Kind: recResume, ID: id, Salvaged: rec.salvaged, Skipped: rec.skipped}); err != nil {
			return err
		}
		if err := s.launch(rec, rec.salvaged); err != nil {
			return fmt.Errorf("acrd: readmit job %d: %w", id, err)
		}
	}
	return nil
}

// auditJobDir reopens a job's checkpoint directory and returns its
// complete (restorable) epochs, ascending. The transient handle is closed
// again — launch opens its own.
func auditJobDir(dir string, want int) ([]uint64, error) {
	disk, err := ckptstore.NewDisk(dir, nil)
	if err != nil {
		return nil, err
	}
	defer disk.Close()
	return ckptstore.CompleteEpochs(disk, want), nil
}

package acrd

import (
	"sync"

	"acr/internal/ckptstore"
)

// flushTracker wraps a job's durable tier to observe when an epoch becomes
// completely resident: once `want` distinct task checkpoints of one epoch
// have been accepted by the inner store, onComplete fires exactly once for
// that epoch. The daemon uses it to journal flush records at the moment
// the claim becomes true on disk — counting is done *after* the inner Put
// succeeds, so a journaled epoch was really accepted by the store.
//
// It sits between the fleet's bandwidth arbiter and the disk tier
// (core → hooked → arbiter → tracker → disk) and forwards the Enumerator
// capability so inventory endpoints still see through to the disk.
type flushTracker struct {
	inner      ckptstore.Store
	want       int
	onComplete func(epoch uint64)

	mu   sync.Mutex
	seen map[uint64]map[ckptstore.Key]struct{}
	done map[uint64]bool
}

func newFlushTracker(inner ckptstore.Store, want int, onComplete func(uint64)) *flushTracker {
	return &flushTracker{
		inner:      inner,
		want:       want,
		onComplete: onComplete,
		seen:       make(map[uint64]map[ckptstore.Key]struct{}),
		done:       make(map[uint64]bool),
	}
}

func (t *flushTracker) Put(k ckptstore.Key, ck *ckptstore.Checkpoint) error {
	if err := t.inner.Put(k, ck); err != nil {
		return err
	}
	var fire bool
	t.mu.Lock()
	if !t.done[k.Epoch] {
		set := t.seen[k.Epoch]
		if set == nil {
			set = make(map[ckptstore.Key]struct{}, t.want)
			t.seen[k.Epoch] = set
		}
		set[k] = struct{}{}
		if len(set) >= t.want {
			t.done[k.Epoch] = true
			delete(t.seen, k.Epoch)
			fire = true
		}
	}
	t.mu.Unlock()
	if fire && t.onComplete != nil {
		t.onComplete(k.Epoch)
	}
	return nil
}

func (t *flushTracker) Get(k ckptstore.Key) (*ckptstore.Checkpoint, error) {
	return t.inner.Get(k)
}

func (t *flushTracker) Compare(a, b ckptstore.Key) (ckptstore.CompareResult, error) {
	return t.inner.Compare(a, b)
}

// Evict forwards retention eviction. Journaled flush records for evicted
// epochs become stale claims on purpose — resume's disk scan is what
// weeds them out.
func (t *flushTracker) Evict(olderThan uint64) int {
	t.mu.Lock()
	for e := range t.seen {
		if e < olderThan {
			delete(t.seen, e)
		}
	}
	for e := range t.done {
		if e < olderThan {
			delete(t.done, e)
		}
	}
	t.mu.Unlock()
	return t.inner.Evict(olderThan)
}

func (t *flushTracker) Counters() ckptstore.Counters { return t.inner.Counters() }

func (t *flushTracker) Name() string { return t.inner.Name() + "(tracked)" }

// Keys forwards enumeration when the inner tier supports it.
func (t *flushTracker) Keys() []ckptstore.Key {
	if e, ok := t.inner.(ckptstore.Enumerator); ok {
		return e.Keys()
	}
	return nil
}

package acrd

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"acr/internal/ckptstore"
	"acr/internal/fleet"
)

// TestAuthTokenGatesMutatingRoutes: with an auth token configured, every
// mutating POST route demands it (Bearer or X-ACRD-Token) and answers 401
// otherwise, while read routes stay open for scrapers.
func TestAuthTokenGatesMutatingRoutes(t *testing.T) {
	s, err := New(Config{
		DataDir:   t.TempDir(),
		Fleet:     fleet.Config{Nodes: 8},
		AuthToken: "open-sesame",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	spec := `{"name":"auth","nodes":2,"tasks":1,"iters":2000,"flush_every":1}`
	do := func(method, path, body string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		hdr    map[string]string
		want   int
	}{
		{"submit no token", "POST", "/api/v1/jobs", spec, nil, 401},
		{"submit wrong bearer", "POST", "/api/v1/jobs", spec,
			map[string]string{"Authorization": "Bearer nope"}, 401},
		{"submit wrong header token", "POST", "/api/v1/jobs", spec,
			map[string]string{"X-ACRD-Token": "nope"}, 401},
		{"flush no token", "POST", "/api/v1/jobs/0/flush", "", nil, 401},
		{"restore no token", "POST", "/api/v1/jobs/0/restore?epoch=1", "", nil, 401},
		{"submit bearer", "POST", "/api/v1/jobs", spec,
			map[string]string{"Authorization": "Bearer open-sesame"}, 201},
		{"submit header token", "POST", "/api/v1/jobs", spec,
			map[string]string{"X-ACRD-Token": "open-sesame"}, 201},
		// Read routes need no credential.
		{"list open", "GET", "/api/v1/jobs", "", nil, 200},
		{"healthz open", "GET", "/healthz", "", nil, 200},
		{"metrics open", "GET", "/metrics", "", nil, 200},
		{"fleet open", "GET", "/api/v1/fleet", "", nil, 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := do(tc.method, tc.path, tc.body, tc.hdr).StatusCode; got != tc.want {
				t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, got, tc.want)
			}
		})
	}

	// 401 responses must advertise the challenge scheme.
	resp := do("POST", "/api/v1/jobs", spec, nil)
	if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
		t.Fatalf("WWW-Authenticate = %q, want a Bearer challenge", got)
	}
}

// TestRemoteEveryRejectedWithoutRemoteTier: a spec asking for remote
// uploads on a daemon without the tier is a 400, not a silent ignore.
func TestRemoteEveryRejectedWithoutRemoteTier(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), Fleet: fleet.Config{Nodes: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(SubmitRequest{Nodes: 2, Iters: 100, RemoteEvery: 2}); err == nil {
		t.Fatal("submit with remote_every accepted by a daemon without a remote tier")
	}
}

// metricValue extracts the first sample whose series name (including any
// label block) starts with prefix.
func metricValue(t *testing.T, body, prefix string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

// TestRemoteBreakerLifecycleInMetrics drives the full breaker arc through
// the daemon and watches it in /metrics: a job uploads to a dark remote,
// the resilient wrapper trips its breaker and fails uploads over to the
// job's local disk tier (visible as acr_remote_breaker_trips_total and
// acr_remote_failovers_total), the remote heals, background probes
// re-close the breaker (acr_remote_breaker_recloses_total), and the job
// still finishes with a clean golden ring.
func TestRemoteBreakerLifecycleInMetrics(t *testing.T) {
	s, err := New(Config{
		DataDir: t.TempDir(),
		Fleet:   fleet.Config{Nodes: 8, RemoteBytesPerSec: 256 << 20},
		Remote:  RemoteConfig{Enabled: true, Every: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Substitute the remote factory for one whose handle the test keeps:
	// born dark, healed on cue.
	var mu sync.Mutex
	var remotes []*ckptstore.Remote
	s.newRemote = func(id int) *ckptstore.Remote {
		r := ckptstore.NewRemote(ckptstore.RemoteOptions{})
		r.SetDark(true)
		mu.Lock()
		remotes = append(remotes, r)
		mu.Unlock()
		return r
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	id, err := s.Submit(SubmitRequest{
		Name: "breaker", Nodes: 2, Tasks: 1, Iters: 600_000, FlushEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := s.lookup(id)

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		resp.Body.Close()
		return body
	}
	waitFor := func(what, prefix string, min float64) string {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			body := scrape()
			if v, ok := metricValue(t, body, prefix); ok && v >= min {
				return body
			}
			if _, settled := rec.job.Result(); settled {
				t.Fatalf("job settled before %s reached %g:\n%s", what, min, body)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached %g:\n%s", what, min, body)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Dark remote: uploads fail, the breaker trips, and later uploads fail
	// over to the local tier.
	body := waitFor("breaker trips", `acr_remote_breaker_trips_total{`, 1)
	if v, ok := metricValue(t, body, `acr_remote_breaker_open`); !ok || v != 1 {
		t.Fatalf("breaker tripped but acr_remote_breaker_open != 1:\n%s", body)
	}
	waitFor("failovers", `acr_remote_failovers_total{`, 1)

	// Heal the backend; the wrapper's background probes must re-close.
	mu.Lock()
	if len(remotes) != 1 {
		mu.Unlock()
		t.Fatalf("expected 1 remote backend, factory built %d", len(remotes))
	}
	remotes[0].SetDark(false)
	mu.Unlock()
	body = waitFor("breaker recloses", `acr_remote_breaker_recloses_total{`, 1)
	if v, _ := metricValue(t, body, `acr_remote_breaker_open`); v != 0 {
		t.Fatalf("breaker re-closed but acr_remote_breaker_open = %g:\n%s", v, body)
	}

	select {
	case <-rec.job.Done():
	case <-time.After(180 * time.Second):
		t.Fatal("job did not finish")
	}
	res := rec.job.Wait()
	if !res.Completed {
		t.Fatalf("job failed: %s", res.Err)
	}
	if res.Stats.RemoteFlushedEpochs == 0 {
		t.Fatalf("no epochs landed on the remote tier (or its fallback): %+v", res.Stats)
	}
	if res.Stats.Remote.Trips == 0 || res.Stats.Remote.Recloses == 0 {
		t.Fatalf("final stats missing breaker lifecycle: %+v", res.Stats.Remote)
	}
	if errs := fleet.VerifyRing(rec.job); len(errs) > 0 {
		t.Fatalf("golden violation after remote outage: %v", errs)
	}
	// The settled job's frozen stats keep the series alive in /metrics.
	body = scrape()
	if v, _ := metricValue(t, body, `acr_remote_breaker_trips_total{`); v < 1 {
		t.Fatalf("settled job lost its trip count in /metrics:\n%s", body)
	}
	// The remote tier shows up in the inventory census alongside hot and
	// durable tiers.
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%d/inventory", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	inv := readAll(t, resp)
	resp.Body.Close()
	if !strings.Contains(inv, "resilient(") {
		t.Fatalf("inventory missing the remote tier: %s", inv)
	}
}

// TestJournalCompactionAcrossLives: each resume rewrites the journal to
// its compacted equivalent (submit + audit-confirmed flushes + results),
// dropping torn tail lines and stale claims — and a kill -9 straddling
// that compaction boundary must still resume cleanly in the next life.
func TestJournalCompactionAcrossLives(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	tear := func() {
		jf, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jf.WriteString(`{"kind":"flu`); err != nil {
			t.Fatal(err)
		}
		jf.Close()
	}

	// Life 1: run long enough to journal several flush claims, then die
	// with the job unfinished.
	s1, err := New(Config{DataDir: dir, Fleet: fleet.Config{Nodes: 8}})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Submit(SubmitRequest{Name: "compact", Nodes: 2, Tasks: 1, Iters: 400_000, FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec1, _ := s1.lookup(id)
	waitDurable(t, rec1, 2)
	s1.Close()
	before, _, err := readJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	tear()

	// Life 2: resume compacts the journal, then dies mid-run too — the
	// kill -9 across the compaction boundary.
	s2, err := New(Config{DataDir: dir, Fleet: fleet.Config{Nodes: 8}, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := s2.ResumeReport()
	if rep.TornRecords != 1 || rep.Readmitted != 1 {
		t.Fatalf("life 2 resume report: %+v", rep)
	}
	if rep.CompactedRecords == 0 || rep.CompactedRecords >= len(before) {
		t.Fatalf("compaction kept %d records from %d; want a strictly smaller non-empty journal", rep.CompactedRecords, len(before))
	}
	rec2, _ := s2.lookup(id)
	waitDurable(t, rec2, 2)
	s2.Close()

	// The rewritten journal has no torn line left, exactly one submit
	// record, and no spurious done record for the unfinished job.
	recs, torn, err := readJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("compacted journal still holds %d torn lines", torn)
	}
	submits, dones := 0, 0
	for _, r := range recs {
		switch r.Kind {
		case recSubmit:
			submits++
		case recDone:
			dones++
		}
	}
	if submits != 1 || dones != 0 {
		t.Fatalf("compacted journal: %d submits, %d dones; want 1 and 0", submits, dones)
	}
	tear()

	// Life 3: resume across the compaction boundary; the job must finish
	// warm and bit-identical to the golden ring.
	s3, err := New(Config{DataDir: dir, Fleet: fleet.Config{Nodes: 8}, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	rep3 := s3.ResumeReport()
	if rep3.TornRecords != 1 || rep3.Readmitted != 1 {
		t.Fatalf("life 3 resume report: %+v", rep3)
	}
	rec3, ok := s3.lookup(id)
	if !ok {
		t.Fatalf("job %d missing in life 3", id)
	}
	select {
	case <-rec3.job.Done():
	case <-time.After(180 * time.Second):
		t.Fatal("job did not finish in life 3")
	}
	res := rec3.job.Wait()
	if !res.Completed {
		t.Fatalf("job failed in life 3: %s", res.Err)
	}
	if res.Stats.ResumedEpoch == 0 {
		t.Fatal("life 3 cold-started; want a warm start from a salvaged epoch")
	}
	if errs := fleet.VerifyRing(rec3.job); len(errs) > 0 {
		t.Fatalf("golden violation after double resume: %v", errs)
	}
}

package loadgen

import (
	"net/http/httptest"
	"testing"
	"time"

	"acr/internal/acrd"
	"acr/internal/fleet"
)

func newDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := acrd.New(acrd.Config{
		DataDir: t.TempDir(),
		Fleet:   fleet.Config{Nodes: 16, Spares: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// TestClosedLoopRun drives a seeded profile end to end: every job must
// complete and verify bit-identical, and the latency summaries must be
// populated.
func TestClosedLoopRun(t *testing.T) {
	ts := newDaemon(t)
	rep, err := Run(Config{
		BaseURL:     ts.URL,
		Jobs:        4,
		Concurrency: 2,
		Seed:        7,
		ItersMin:    2000,
		ItersMax:    8000,
		Verify:      true,
		Timeout:     3 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 4 || rep.Completed != 4 || rep.Failed != 0 {
		t.Fatalf("census: %+v (errors %v)", rep, rep.Errors)
	}
	if rep.Verified != 4 || rep.VerifyBad != 0 {
		t.Fatalf("verification: %+v", rep)
	}
	if rep.SubmitMs == nil || rep.SubmitMs.N != 4 || rep.SubmitMs.P99 < rep.SubmitMs.P50 {
		t.Fatalf("submit percentiles: %+v", rep.SubmitMs)
	}
	if rep.CompleteMs == nil || rep.CompleteMs.N != 4 {
		t.Fatalf("completion percentiles: %+v", rep.CompleteMs)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("errors: %v", rep.Errors)
	}
}

// TestSeedDeterminism: the same seed must derive the same job shapes.
func TestSeedDeterminism(t *testing.T) {
	a := Config{Seed: 42}
	a.setDefaults()
	b := Config{Seed: 42}
	b.setDefaults()
	for i := 0; i < 10; i++ {
		sa := a.jobShape(i)
		sb := b.jobShape(i)
		for _, k := range []string{"name", "nodes", "tasks", "iters"} {
			if sa[k] != sb[k] {
				t.Fatalf("job %d field %s: %v vs %v", i, k, sa[k], sb[k])
			}
		}
	}
	if a.jobShape(0)["iters"] == a.jobShape(1)["iters"] &&
		a.jobShape(1)["iters"] == a.jobShape(2)["iters"] {
		t.Fatal("shapes show no variation across indices")
	}
}

// TestSubmitOnlyLeavesDurableJobs: SubmitOnly must return with every job
// holding at least one durable epoch and still listed by the daemon.
func TestSubmitOnlyLeavesDurableJobs(t *testing.T) {
	ts := newDaemon(t)
	rep, err := Run(Config{
		BaseURL:    ts.URL,
		Jobs:       2,
		Seed:       3,
		ItersMin:   200000,
		ItersMax:   200000,
		SubmitOnly: true,
		Timeout:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 2 || len(rep.Errors) != 0 {
		t.Fatalf("%+v", rep)
	}
	if rep.DurableMs == nil || rep.DurableMs.N != 2 {
		t.Fatalf("durable percentiles: %+v", rep.DurableMs)
	}
	// Adopt-and-finish: the WaitExisting mode drives the leftovers home.
	rep2, err := Run(Config{BaseURL: ts.URL, WaitExisting: true, Verify: true, Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Completed != 2 || rep2.Verified != 2 || rep2.VerifyBad != 0 {
		t.Fatalf("wait-existing census: %+v (errors %v)", rep2, rep2.Errors)
	}
}

package loadgen

import (
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"acr/internal/acrd"
	"acr/internal/fleet"
)

func newDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := acrd.New(acrd.Config{
		DataDir: t.TempDir(),
		Fleet:   fleet.Config{Nodes: 16, Spares: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// TestClosedLoopRun drives a seeded profile end to end: every job must
// complete and verify bit-identical, and the latency summaries must be
// populated.
func TestClosedLoopRun(t *testing.T) {
	ts := newDaemon(t)
	rep, err := Run(Config{
		BaseURL:     ts.URL,
		Jobs:        4,
		Concurrency: 2,
		Seed:        7,
		ItersMin:    2000,
		ItersMax:    8000,
		Verify:      true,
		Timeout:     3 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 4 || rep.Completed != 4 || rep.Failed != 0 {
		t.Fatalf("census: %+v (errors %v)", rep, rep.Errors)
	}
	if rep.Verified != 4 || rep.VerifyBad != 0 {
		t.Fatalf("verification: %+v", rep)
	}
	if rep.SubmitMs == nil || rep.SubmitMs.N != 4 || rep.SubmitMs.P99 < rep.SubmitMs.P50 {
		t.Fatalf("submit percentiles: %+v", rep.SubmitMs)
	}
	if rep.CompleteMs == nil || rep.CompleteMs.N != 4 {
		t.Fatalf("completion percentiles: %+v", rep.CompleteMs)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("errors: %v", rep.Errors)
	}
}

// TestPctiles pins the quantile math against hand-computed values on
// known sample sets: nearest ranks where the quantile lands on an order
// statistic, linear interpolation between them otherwise, and — the bug
// this pins against — a distinct p99 above p90 on small samples like n=8,
// where the old truncate-to-index rank collapsed both onto sorted[6].
func TestPctiles(t *testing.T) {
	ms := func(vs ...float64) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v * float64(time.Millisecond))
		}
		return out
	}
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

	if pctiles(nil) != nil {
		t.Fatal("empty sample must summarize to nil")
	}

	// n=1: every quantile is the single sample.
	p := pctiles(ms(7))
	if p.N != 1 || !approx(p.P50, 7) || !approx(p.P90, 7) || !approx(p.P99, 7) || !approx(p.Max, 7) {
		t.Fatalf("n=1: %+v", p)
	}

	// n=2: ranks fall between the two samples; p50 = midpoint,
	// p90/p99 interpolate toward the max.
	p = pctiles(ms(10, 20))
	if !approx(p.P50, 15) || !approx(p.P90, 19) || !approx(p.P99, 19.9) || !approx(p.Max, 20) {
		t.Fatalf("n=2: %+v", p)
	}

	// n=5 over 0..40 in steps of 10: p50 lands exactly on sorted[2].
	p = pctiles(ms(40, 0, 30, 10, 20)) // order must not matter
	if !approx(p.P50, 20) || !approx(p.P90, 36) || !approx(p.P99, 39.6) {
		t.Fatalf("n=5: %+v", p)
	}

	// n=8, distinct samples: the old rank math reported p99 == p90
	// (both truncated to index 6). Interpolated: p90 = rank 6.3,
	// p99 = rank 6.93.
	p = pctiles(ms(1, 2, 3, 4, 5, 6, 7, 100))
	if !approx(p.P90, 7+0.3*93) || !approx(p.P99, 7+0.93*93) {
		t.Fatalf("n=8: %+v", p)
	}
	if p.P99 <= p.P90 {
		t.Fatalf("n=8 tail collapsed: p99 %v <= p90 %v", p.P99, p.P90)
	}

	// n=101: quantile ranks are integral, so the percentiles are exactly
	// the classic order statistics.
	vs := make([]float64, 101)
	for i := range vs {
		vs[i] = float64(i)
	}
	p = pctiles(ms(vs...))
	if !approx(p.P50, 50) || !approx(p.P90, 90) || !approx(p.P99, 99) || !approx(p.Max, 100) {
		t.Fatalf("n=101: %+v", p)
	}
}

// TestSeedDeterminism: the same seed must derive the same job shapes.
func TestSeedDeterminism(t *testing.T) {
	a := Config{Seed: 42}
	a.setDefaults()
	b := Config{Seed: 42}
	b.setDefaults()
	for i := 0; i < 10; i++ {
		sa := a.jobShape(i)
		sb := b.jobShape(i)
		for _, k := range []string{"name", "nodes", "tasks", "iters"} {
			if sa[k] != sb[k] {
				t.Fatalf("job %d field %s: %v vs %v", i, k, sa[k], sb[k])
			}
		}
	}
	if a.jobShape(0)["iters"] == a.jobShape(1)["iters"] &&
		a.jobShape(1)["iters"] == a.jobShape(2)["iters"] {
		t.Fatal("shapes show no variation across indices")
	}
}

// TestSubmitOnlyLeavesDurableJobs: SubmitOnly must return with every job
// holding at least one durable epoch and still listed by the daemon.
func TestSubmitOnlyLeavesDurableJobs(t *testing.T) {
	ts := newDaemon(t)
	rep, err := Run(Config{
		BaseURL:    ts.URL,
		Jobs:       2,
		Seed:       3,
		ItersMin:   200000,
		ItersMax:   200000,
		SubmitOnly: true,
		Timeout:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 2 || len(rep.Errors) != 0 {
		t.Fatalf("%+v", rep)
	}
	if rep.DurableMs == nil || rep.DurableMs.N != 2 {
		t.Fatalf("durable percentiles: %+v", rep.DurableMs)
	}
	// Adopt-and-finish: the WaitExisting mode drives the leftovers home.
	rep2, err := Run(Config{BaseURL: ts.URL, WaitExisting: true, Verify: true, Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Completed != 2 || rep2.Verified != 2 || rep2.VerifyBad != 0 {
		t.Fatalf("wait-existing census: %+v (errors %v)", rep2, rep2.Errors)
	}
}

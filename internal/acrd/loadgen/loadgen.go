// Package loadgen is a seeded closed-loop client for the acrd daemon: it
// submits N ring jobs over the HTTP API at a target rate, follows each to
// completion, optionally verifies the golden-ring result, and reports
// latency percentiles. It doubles as the smoke-test driver: with
// SubmitOnly it leaves jobs running (but provably durable — each must
// reach one flushed epoch before it counts), and with WaitExisting it
// adopts whatever a restarted daemon resumed and drives it home.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config shapes one load run. Zero values pick small defaults.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7946".
	BaseURL string `json:"base_url"`
	// Jobs is the number of jobs to submit (default 4).
	Jobs int `json:"jobs"`
	// Concurrency bounds in-flight jobs per closed loop (default 2).
	Concurrency int `json:"concurrency"`
	// RatePerSec caps the submit rate; <= 0 submits as fast as the loop
	// allows.
	RatePerSec float64 `json:"rate_per_sec"`
	// Seed makes the job-parameter stream reproducible: job i's shape
	// derives from Seed and i alone, independent of worker scheduling.
	Seed int64 `json:"seed"`

	// Job-shape ranges, inclusive. Zero values select {1,2} nodes,
	// {1,2} tasks, {10000,30000} iters.
	NodesMin int `json:"nodes_min,omitempty"`
	NodesMax int `json:"nodes_max,omitempty"`
	TasksMin int `json:"tasks_min,omitempty"`
	TasksMax int `json:"tasks_max,omitempty"`
	ItersMin int `json:"iters_min,omitempty"`
	ItersMax int `json:"iters_max,omitempty"`
	// FlushEvery is the durable cadence for submitted jobs (default 1).
	FlushEvery int `json:"flush_every,omitempty"`

	// SubmitOnly returns once every submitted job has at least one durable
	// epoch on disk, leaving the jobs running — the state a crash test
	// wants to kill the daemon in.
	SubmitOnly bool `json:"submit_only,omitempty"`
	// WaitExisting skips submission and instead adopts every job the
	// daemon already knows, driving each to a terminal state.
	WaitExisting bool `json:"wait_existing,omitempty"`
	// Verify runs the golden-ring check on every completed job that still
	// has a live machine (prior-life completions are skipped).
	Verify bool `json:"verify,omitempty"`

	// PollInterval spaces status polls (default 25ms).
	PollInterval time.Duration `json:"-"`
	// Timeout bounds the whole run (default 5m).
	Timeout time.Duration `json:"-"`

	Client *http.Client `json:"-"`
}

// Percentiles summarizes a latency sample in milliseconds.
type Percentiles struct {
	N   int     `json:"n"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Report is the run's accounting, JSON-serializable for CI artifacts.
type Report struct {
	Config     Config   `json:"config"`
	IDs        []int    `json:"ids"`
	Submitted  int      `json:"submitted"`
	Completed  int      `json:"completed"`
	Failed     int      `json:"failed"`
	Verified   int      `json:"verified"`
	VerifyBad  int      `json:"verify_failures"`
	Errors     []string `json:"errors,omitempty"`
	ElapsedSec float64  `json:"elapsed_sec"`
	// SubmitMs measures POST /api/v1/jobs round trips; CompleteMs the
	// submit-to-terminal-state wall time per job (absent with SubmitOnly);
	// DurableMs the submit-to-first-durable-epoch time (SubmitOnly only).
	SubmitMs   *Percentiles `json:"submit_ms,omitempty"`
	CompleteMs *Percentiles `json:"complete_ms,omitempty"`
	DurableMs  *Percentiles `json:"durable_ms,omitempty"`
}

// pctiles summarizes a latency sample with linearly interpolated
// quantiles (the numpy/Prometheus convention): the q-th quantile sits at
// rank q*(n-1), interpolating between the two straddling order statistics.
// The previous truncate-to-index rank collapsed the tail on small samples
// — at n=8, int(0.99*7) == int(0.90*7) == 6, so p99 silently reported
// p90's value; interpolation keeps p99 above p90 whenever the underlying
// samples differ.
func pctiles(samples []time.Duration) *Percentiles {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		r := q * float64(len(sorted)-1)
		lo := int(math.Floor(r))
		hi := int(math.Ceil(r))
		v := float64(sorted[lo])
		if hi > lo {
			frac := r - float64(lo)
			v += frac * float64(sorted[hi]-sorted[lo])
		}
		return v / float64(time.Millisecond)
	}
	return &Percentiles{
		N: len(sorted), P50: at(0.50), P90: at(0.90), P99: at(0.99),
		Max: float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
	}
}

func (c *Config) setDefaults() {
	if c.Jobs <= 0 {
		c.Jobs = 4
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.NodesMax <= 0 {
		c.NodesMin, c.NodesMax = 1, 2
	}
	if c.NodesMin <= 0 {
		c.NodesMin = 1
	}
	if c.TasksMax <= 0 {
		c.TasksMin, c.TasksMax = 1, 2
	}
	if c.TasksMin <= 0 {
		c.TasksMin = 1
	}
	if c.ItersMax <= 0 {
		c.ItersMin, c.ItersMax = 10000, 30000
	}
	if c.ItersMin <= 0 {
		c.ItersMin = 1
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 1
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Minute
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
}

// jobShape derives job i's parameters from the seed alone, so a rerun with
// the same seed submits byte-identical specs regardless of thread timing.
func (c *Config) jobShape(i int) map[string]any {
	rng := rand.New(rand.NewSource(c.Seed<<20 + int64(i)))
	span := func(lo, hi int) int {
		if hi <= lo {
			return lo
		}
		return lo + rng.Intn(hi-lo+1)
	}
	return map[string]any{
		"name":        fmt.Sprintf("lg-%d-%03d", c.Seed, i),
		"nodes":       span(c.NodesMin, c.NodesMax),
		"tasks":       span(c.TasksMin, c.TasksMax),
		"iters":       span(c.ItersMin, c.ItersMax),
		"flush_every": c.FlushEvery,
	}
}

type jobView struct {
	ID        int    `json:"id"`
	State     string `json:"state"`
	PriorLife bool   `json:"prior_life"`
}

// Run executes the load profile and returns the report.
func Run(cfg Config) (*Report, error) {
	cfg.setDefaults()
	rep := &Report{Config: cfg}
	start := time.Now()
	deadline := start.Add(cfg.Timeout)

	var ids []int
	var mu sync.Mutex
	var submitSamples, completeSamples, durableSamples []time.Duration
	addErr := func(format string, args ...any) {
		mu.Lock()
		rep.Errors = append(rep.Errors, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	if cfg.WaitExisting {
		existing, err := listJobs(cfg)
		if err != nil {
			return nil, err
		}
		ids = existing
	} else {
		// Closed-loop submit: Concurrency workers claim indices; pacing
		// holds submit i until its scheduled slot when a rate is set.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= cfg.Jobs || time.Now().After(deadline) {
						return
					}
					if cfg.RatePerSec > 0 {
						slot := start.Add(time.Duration(float64(i) / cfg.RatePerSec * float64(time.Second)))
						time.Sleep(time.Until(slot))
					}
					began := time.Now()
					id, err := submit(cfg, cfg.jobShape(i))
					submitLat := time.Since(began)
					if err != nil {
						addErr("submit %d: %v", i, err)
						continue
					}
					mu.Lock()
					ids = append(ids, id)
					submitSamples = append(submitSamples, submitLat)
					mu.Unlock()
					switch {
					case cfg.SubmitOnly:
						// Durability barrier: the job must not count until
						// something of it would survive a daemon kill.
						if err := waitDurable(cfg, id, deadline); err != nil {
							addErr("job %d: %v", id, err)
						} else {
							mu.Lock()
							durableSamples = append(durableSamples, time.Since(began))
							mu.Unlock()
						}
					default:
						if err := waitTerminal(cfg, id, deadline); err != nil {
							addErr("job %d: %v", id, err)
						} else {
							mu.Lock()
							completeSamples = append(completeSamples, time.Since(began))
							mu.Unlock()
						}
					}
				}
			}()
		}
		wg.Wait()
	}

	sort.Ints(ids)
	rep.IDs = ids
	rep.Submitted = len(ids)

	if cfg.WaitExisting {
		for _, id := range ids {
			if err := waitTerminal(cfg, id, deadline); err != nil {
				addErr("job %d: %v", id, err)
			}
		}
	}

	// Final census + optional verification.
	if !cfg.SubmitOnly {
		for _, id := range ids {
			jv, err := getJob(cfg, id)
			if err != nil {
				addErr("job %d: %v", id, err)
				continue
			}
			switch jv.State {
			case "completed":
				rep.Completed++
				if cfg.Verify && !jv.PriorLife {
					ok, verr := verify(cfg, id)
					if verr != nil {
						addErr("verify %d: %v", id, verr)
					} else if ok {
						rep.Verified++
					} else {
						rep.VerifyBad++
					}
				}
			case "failed":
				rep.Failed++
			default:
				addErr("job %d ended in state %q", id, jv.State)
			}
		}
	}

	rep.SubmitMs = pctiles(submitSamples)
	rep.CompleteMs = pctiles(completeSamples)
	rep.DurableMs = pctiles(durableSamples)
	rep.ElapsedSec = time.Since(start).Seconds()
	return rep, nil
}

func submit(cfg Config, shape map[string]any) (int, error) {
	blob, err := json.Marshal(shape)
	if err != nil {
		return 0, err
	}
	resp, err := cfg.Client.Post(cfg.BaseURL+"/api/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var jv jobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusCreated {
		return 0, fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	return jv.ID, nil
}

func getJob(cfg Config, id int) (jobView, error) {
	var jv jobView
	resp, err := cfg.Client.Get(fmt.Sprintf("%s/api/v1/jobs/%d", cfg.BaseURL, id))
	if err != nil {
		return jv, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jv, fmt.Errorf("status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&jv)
	return jv, err
}

func listJobs(cfg Config) ([]int, error) {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/api/v1/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	ids := make([]int, 0, len(body.Jobs))
	for _, j := range body.Jobs {
		ids = append(ids, j.ID)
	}
	return ids, nil
}

func waitTerminal(cfg Config, id int, deadline time.Time) error {
	for {
		jv, err := getJob(cfg, id)
		if err != nil {
			return err
		}
		if jv.State == "completed" || jv.State == "failed" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("still %q at deadline", jv.State)
		}
		time.Sleep(cfg.PollInterval)
	}
}

// waitDurable blocks until the job's durable tier holds a complete epoch.
func waitDurable(cfg Config, id int, deadline time.Time) error {
	for {
		resp, err := cfg.Client.Get(fmt.Sprintf("%s/api/v1/jobs/%d/inventory", cfg.BaseURL, id))
		if err != nil {
			return err
		}
		var body struct {
			DurableEpochs []uint64 `json:"durable_epochs"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if derr != nil {
			return derr
		}
		if len(body.DurableEpochs) > 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no durable epoch at deadline")
		}
		time.Sleep(cfg.PollInterval)
	}
}

func verify(cfg Config, id int) (bool, error) {
	resp, err := cfg.Client.Get(fmt.Sprintf("%s/api/v1/jobs/%d/verify", cfg.BaseURL, id))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("verify: status %d", resp.StatusCode)
	}
	var body struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, err
	}
	return body.OK, nil
}

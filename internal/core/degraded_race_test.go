package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"acr/internal/chaos/point"
)

// TestFreeSpareConcurrentWithFailures drives the fleet scheduler's exact
// interleaving under the race detector: hard errors fold nodes on the
// controller goroutine while FreeSpare — the spare-grant entry point — is
// called from foreign goroutines, racing AddSpare/ExpandFolded against the
// in-flight recovery restart. Every fold is answered by one asynchronous
// grant, so the job must end fully re-expanded with a bit-identical result.
func TestFreeSpareConcurrentWithFailures(t *testing.T) {
	cfg := baseConfig(3, 2, 8000)
	cfg.Spares = 0
	cfg.Degraded = true
	var ctrl *Controller
	var commits atomic.Int64
	var grants sync.WaitGroup
	cfg.Chaos = point.HookFunc(func(id point.ID, info *point.Info) {
		if id != point.CoreCommit {
			return
		}
		switch commits.Add(1) {
		case 2:
			ctrl.KillNode(0, 1)
		case 4:
			ctrl.KillNode(1, 2)
		}
	})
	// The grant arrives off the controller goroutine, like a fleet
	// scheduler brokering a preempted spare.
	cfg.OnFold = func() {
		grants.Add(1)
		go func() {
			defer grants.Done()
			ctrl.FreeSpare()
		}()
	}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	grants.Wait()

	if stats.HardErrors != 2 {
		t.Errorf("hard errors = %d, want 2", stats.HardErrors)
	}
	// An early grant can turn the second failure into a plain spare
	// replacement; either way both failures were absorbed.
	if stats.Folds < 1 || stats.Folds+stats.SparesUsed != 2 {
		t.Errorf("folds = %d, spares used = %d, want folds >= 1 summing to 2", stats.Folds, stats.SparesUsed)
	}
	// Post-join the machine must be fully re-expanded: one grant per fold.
	if folded := ctrl.Machine().FoldedCount(); folded != 0 {
		t.Errorf("folded nodes after all grants = %d, want 0", folded)
	}
	if expands := ctrl.Machine().ExpandCount(); expands != int64(stats.Folds) {
		t.Errorf("expands = %d, want one per fold (%d)", expands, stats.Folds)
	}
	verifyFinalState(t, ctrl, 3, 2, 8000)
}

// TestFreeSpareStorm hammers FreeSpare from many goroutines while failures
// are being recovered — gratuitous grants (more spares than folds) must be
// harmless, never deadlock, and leave the machine healthy.
func TestFreeSpareStorm(t *testing.T) {
	cfg := baseConfig(2, 2, 8000)
	cfg.Spares = 0
	cfg.Degraded = true
	var ctrl *Controller
	var commits atomic.Int64
	var storm sync.WaitGroup
	cfg.Chaos = point.HookFunc(func(id point.ID, info *point.Info) {
		if id != point.CoreCommit {
			return
		}
		if commits.Add(1) == 2 {
			ctrl.KillNode(1, 0)
			for i := 0; i < 8; i++ {
				storm.Add(1)
				go func() {
					defer storm.Done()
					ctrl.FreeSpare()
				}()
			}
		}
	})
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	storm.Wait()
	if stats.HardErrors != 1 {
		t.Errorf("hard errors = %d, want 1", stats.HardErrors)
	}
	if folded := ctrl.Machine().FoldedCount(); folded != 0 {
		t.Errorf("folded nodes at end = %d, want 0", folded)
	}
	verifyFinalState(t, ctrl, 2, 2, 8000)
}

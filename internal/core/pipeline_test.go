package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"acr/internal/chaos/point"
	"acr/internal/ckptstore"
	"acr/internal/consensus"
	"acr/internal/runtime"
)

// TestPipelinePins asserts the determinism contract: chaos hooks,
// SerialCommitPath, and SemiBlocking pin the barrier path no matter what
// Pipeline mode says, and Auto engages the pipeline exactly when a
// hardened exchange link is attached. Chaos campaigns' byte-identical
// reports depend on this — a regression here silently reorders their
// hook firings.
func TestPipelinePins(t *testing.T) {
	noop := point.HookFunc(func(point.ID, *point.Info) {})
	exch := func() *ExchangeConfig { return &ExchangeConfig{} }
	cases := []struct {
		name string
		mut  func(*Config)
		want bool
	}{
		{"auto with exchange", func(c *Config) { c.Exchange = exch() }, true},
		{"auto without exchange", func(c *Config) {}, false},
		{"forced on without exchange", func(c *Config) { c.Pipeline = PipelineOn }, true},
		{"forced off with exchange", func(c *Config) { c.Exchange = exch(); c.Pipeline = PipelineOff }, false},
		{"chaos pins", func(c *Config) { c.Exchange = exch(); c.Pipeline = PipelineOn; c.Chaos = noop }, false},
		{"serial commit path pins", func(c *Config) { c.Exchange = exch(); c.Pipeline = PipelineOn; c.SerialCommitPath = true }, false},
		{"semi-blocking pins", func(c *Config) { c.Exchange = exch(); c.Pipeline = PipelineOn; c.SemiBlocking = true }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(2, 2, 1000)
			tc.mut(&cfg)
			ctrl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := ctrl.pipelined(); got != tc.want {
				t.Errorf("pipelined() = %v, want %v", got, tc.want)
			}
		})
	}
}

// pipelinePair builds two idle controllers over the same quiescent bench
// workload: one pinned to the barrier path, one running the per-task
// pipeline, both shipping live-round checkpoints through the same seeded
// lossy link geometry. The machines are never started, so both hold
// bit-identical factory state.
func pipelinePair(t *testing.T, nodes, tasks int, comparison Comparison) (barrier, piped *Controller) {
	t.Helper()
	mk := func(mode PipelineMode) *Controller {
		ctrl, err := New(Config{
			NodesPerReplica: nodes,
			TasksPerNode:    tasks,
			Factory:         benchFactory(64),
			Comparison:      comparison,
			Exchange:        &ExchangeConfig{Loss: 0.05, Dup: 0.05, Reorder: 0.1, Seed: 11, ShipCheckpoints: true},
			Pipeline:        mode,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return ctrl
	}
	barrier, piped = mk(PipelineOff), mk(PipelineAuto)
	if barrier.pipelined() {
		t.Fatal("PipelineOff controller reports pipelined")
	}
	if !piped.pipelined() {
		t.Fatal("exchange-attached Auto controller not pipelined")
	}
	return barrier, piped
}

// barrierVerdict runs one barrier-path round body (capture, serial ship,
// compare) and returns its verdict.
func barrierVerdict(t *testing.T, ctrl *Controller, epoch uint64) (string, int, error) {
	t.Helper()
	ctrl.resetPhases()
	if err := ctrl.captureScope(consensus.BothReplicas, epoch); err != nil {
		t.Fatalf("captureScope: %v", err)
	}
	if err := ctrl.shipEpochBarrier(epoch); err != nil {
		t.Fatalf("shipEpochBarrier: %v", err)
	}
	return ctrl.compare(epoch)
}

// TestPipelinedRoundMatchesBarrierVerdict plants identical seeded SDC into
// the live task state of a barrier-path controller and a pipelined one
// (same injection seed, same quiescent factory state), runs one round body
// on each, and requires bit-identical verdicts: same mismatch string, same
// localized chunk, same error — with the corruption at every (node, task)
// in turn, and on a clean machine. This is the equivalence the pipeline's
// in-order outcome resolution exists to preserve.
func TestPipelinedRoundMatchesBarrierVerdict(t *testing.T) {
	const nodes, tasks = 2, 2
	for _, mode := range []struct {
		name       string
		comparison Comparison
	}{{"checksum", ChecksumCompare}, {"full", FullCompare}} {
		t.Run(mode.name, func(t *testing.T) {
			// spot {-1,-1} is the clean round: both paths must agree
			// there is nothing to find.
			spots := [][2]int{{-1, -1}}
			for n := 0; n < nodes; n++ {
				for task := 0; task < tasks; task++ {
					spots = append(spots, [2]int{n, task})
				}
			}
			for _, spot := range spots {
				name := "clean"
				if spot[0] >= 0 {
					name = fmt.Sprintf("sdc-n%d-t%d", spot[0], spot[1])
				}
				t.Run(name, func(t *testing.T) {
					barrier, piped := pipelinePair(t, nodes, tasks, mode.comparison)
					if spot[0] >= 0 {
						for _, ctrl := range []*Controller{barrier, piped} {
							ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 0, Node: spot[0], Task: spot[1]})
							ctrl.applyPendingSDC(consensus.BothReplicas)
						}
					}
					sMsg, sChunk, sErr := barrierVerdict(t, barrier, 1)
					piped.resetPhases()
					pMsg, pChunk, pErr := piped.pipelinedRound(1)
					if pMsg != sMsg || pChunk != sChunk || !errEq(pErr, sErr) {
						t.Fatalf("pipelined = (%q, %d, %v), barrier = (%q, %d, %v)",
							pMsg, pChunk, pErr, sMsg, sChunk, sErr)
					}
					if spot[0] >= 0 && sMsg == "" {
						t.Fatal("barrier path missed the injected corruption")
					}
					if piped.roundBusy == nil {
						t.Fatal("pipelined round recorded no busy-time accounting")
					}
					// Both paths must also have stored identical checkpoint
					// bytes — the pipeline's per-task capture is the same
					// capture, just scheduled differently.
					for n := 0; n < nodes; n++ {
						for task := 0; task < tasks; task++ {
							for rep := 0; rep < 2; rep++ {
								b, err := barrier.store.Get(barrier.key(rep, n, task, 1))
								if err != nil {
									t.Fatal(err)
								}
								p, err := piped.store.Get(piped.key(rep, n, task, 1))
								if err != nil {
									t.Fatal(err)
								}
								if !bytes.Equal(b.Bytes(), p.Bytes()) {
									t.Fatalf("stored checkpoint r%d/n%d/t%d differs between paths", rep, n, task)
								}
							}
						}
					}
				})
			}
		})
	}
}

// TestPipelinedRunEndToEnd drives a full live run through the pipelined
// path — hardened exchange with live-round checkpoint shipping, an
// injected SDC, and the resulting rollback — and checks the round verdicts
// and final state match the serial semantics, with the overlap-aware phase
// accounting filled in.
func TestPipelinedRunEndToEnd(t *testing.T) {
	cfg := baseConfig(2, 2, 8000)
	cfg.Exchange = &ExchangeConfig{Loss: 0.02, Dup: 0.02, Seed: 5, ShipCheckpoints: true}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ctrl.pipelined() {
		t.Fatal("exchange-attached run not pipelined")
	}
	ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 1, Node: 1, Task: 0})
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SDCDetected != 1 {
		t.Errorf("sdc detected = %d, want 1", stats.SDCDetected)
	}
	if len(stats.LocalizedChunks) != 1 {
		t.Errorf("localized chunks = %v, want one entry", stats.LocalizedChunks)
	}
	if stats.Rollbacks != 2 {
		t.Errorf("rollbacks = %d, want 2 (both replicas)", stats.Rollbacks)
	}
	if stats.ExchangeFrames == 0 || stats.ExchangeChunksShipped == 0 {
		t.Errorf("live rounds shipped nothing: frames=%d chunks=%d",
			stats.ExchangeFrames, stats.ExchangeChunksShipped)
	}
	// The busy arrays ride along with the wall arrays, one entry per
	// committed round, and a pipelined capture phase's busy time can
	// never undercut by more than measurement noise the barrier
	// invariant busy >= 0; what is structural is the lengths matching.
	if len(stats.CaptureBusyTimes) != len(stats.CaptureTimes) ||
		len(stats.ExchangeBusyTimes) != len(stats.ExchangeTimes) ||
		len(stats.CompareBusyTimes) != len(stats.CompareTimes) {
		t.Errorf("busy arrays out of step with wall arrays: %d/%d %d/%d %d/%d",
			len(stats.CaptureBusyTimes), len(stats.CaptureTimes),
			len(stats.ExchangeBusyTimes), len(stats.ExchangeTimes),
			len(stats.CompareBusyTimes), len(stats.CompareTimes))
	}
	verifyFinalState(t, ctrl, 2, 2, 8000)
}

// TestShipCheckpointConcurrentNoCrossContamination runs many transfers
// through one exchanger at once — distinct (node, task) checkpoints with
// distinctive payloads, over a seeded lossy/duplicating/reordering link,
// half of them delta-shipping against a partially matching base — and
// requires every reassembled checkpoint to be byte-identical to its
// source. Duplicate or late frames of one transfer landing in another's
// assembly buffer would fail the per-transfer root check; run under -race
// this also proves the protocol state's locking. (CI runs the bench smoke
// with -race; `go test -race ./internal/core` covers it directly.)
func TestShipCheckpointConcurrentNoCrossContamination(t *testing.T) {
	cfg := baseConfig(2, 2, 1000)
	cfg.Exchange = &ExchangeConfig{
		Loss: 0.05, Dup: 0.10, Reorder: 0.20, Seed: 17,
		// Tiny latency keeps many transfers genuinely in flight at once
		// without slowing the test measurably.
		Latency: 50 * time.Microsecond,
	}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := ctrl.exch

	const transfers = 24
	const chunkSize = 256
	const chunks = 16
	srcs := make([]*ckptstore.Checkpoint, transfers)
	bases := make([]*ckptstore.Checkpoint, transfers)
	for i := range srcs {
		data := make([]byte, chunkSize*chunks)
		for j := range data {
			// Distinctive per-transfer pattern: any cross-written chunk
			// makes the reassembled bytes (and root) differ.
			data[j] = byte(i*31 + j)
		}
		srcs[i] = ckptstore.Capture(data, chunkSize, 1)
		if i%2 == 1 {
			// Half the transfers are delta-aware: the base shares the
			// first half of the chunks, so only the rest cross the link.
			bdata := append([]byte(nil), data...)
			for j := len(bdata) / 2; j < len(bdata); j++ {
				bdata[j] ^= 0xA5
			}
			bases[i] = ckptstore.Capture(bdata, chunkSize, 1)
		}
	}

	got := make([]*ckptstore.Checkpoint, transfers)
	errs := make([]error, transfers)
	var wg sync.WaitGroup
	wg.Add(transfers)
	for i := 0; i < transfers; i++ {
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = x.shipCheckpoint(1, i/4, i%4, srcs[i], bases[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < transfers; i++ {
		if errs[i] != nil {
			t.Fatalf("transfer %d: %v", i, errs[i])
		}
		if got[i].Root != srcs[i].Root || !bytes.Equal(got[i].Bytes(), srcs[i].Bytes()) {
			t.Fatalf("transfer %d reassembled bytes differ from source", i)
		}
		if &got[i].Bytes()[0] == &srcs[i].Bytes()[0] {
			t.Fatalf("transfer %d aliases its source buffer", i)
		}
	}
	shipped, reused := x.chunksShipped.Load(), x.chunksReused.Load()
	if shipped+reused != transfers*chunks {
		t.Errorf("chunk accounting: shipped %d + reused %d != %d total", shipped, reused, transfers*chunks)
	}
	// Every odd transfer's base matched exactly its first half.
	if wantReused := int64(transfers / 2 * chunks / 2); reused != wantReused {
		t.Errorf("chunks reused = %d, want %d", reused, wantReused)
	}
	if x.retries.Load() == 0 {
		t.Error("lossy link produced no retries")
	}
}

package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"acr/internal/chaos/point"
	"acr/internal/ckptstore"
	"acr/internal/netsim"
	"acr/internal/runtime"
)

// killPairAtCommit returns a hook that fail-stops both buddies of the
// given logical node on the n-th commit — the correlated double fault the
// escalation ladder exists for. Driving the kill from the commit point
// keeps the test deterministic under scheduler load.
func killPairAtCommit(ctrl **Controller, node, nth int) point.Hook {
	var commits atomic.Int64
	return point.HookFunc(func(id point.ID, info *point.Info) {
		if id != point.CoreCommit {
			return
		}
		if commits.Add(1) == int64(nth) {
			(*ctrl).KillNode(0, node)
			(*ctrl).KillNode(1, node)
		}
	})
}

// TestLadderDiskFallback: a buddy-pair double fault after an unflushed
// commit destroys both in-memory copies of the node's checkpoints; both
// replicas must escalate past tier 0 to the durable flush tier, roll back
// one committed epoch of work, and still produce the bit-identical final
// state.
func TestLadderDiskFallback(t *testing.T) {
	cfg := baseConfig(2, 2, 8000)
	cfg.Spares = 4
	cfg.FlushEvery = 2 // durable epochs: 2, 4, ...
	var ctrl *Controller
	// Kill at commit 3: committed epoch 3 is in memory only, the durable
	// tier holds epoch 2 — recovery must land on tier 2 with depth 1.
	cfg.Chaos = killPairAtCommit(&ctrl, 1, 3)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.BuddyPairLosses != 1 {
		t.Errorf("buddy pair losses = %d, want 1", stats.BuddyPairLosses)
	}
	if stats.HardErrors != 2 {
		t.Errorf("hard errors = %d, want 2", stats.HardErrors)
	}
	if stats.FlushedEpochs < 1 {
		t.Errorf("flushed epochs = %d, want >= 1", stats.FlushedEpochs)
	}
	if stats.FlushErrors != 0 {
		t.Errorf("flush errors = %d, want 0", stats.FlushErrors)
	}
	// Both replicas lost the node's tier-0 copies, so both restores must
	// have come from the durable tier at an older epoch.
	if stats.TierRecoveries[0] != 0 || stats.TierRecoveries[2] != 2 {
		t.Errorf("tier recoveries = %v, want [0 0 2]", stats.TierRecoveries)
	}
	if stats.MaxRollbackDepth != 1 {
		t.Errorf("max rollback depth = %d, want 1", stats.MaxRollbackDepth)
	}
	verifyFinalState(t, ctrl, 2, 2, 8000)
}

// TestLadderEmptyIsUnrecoverable: the same double fault without a durable
// tier leaves the ladder genuinely empty — the run must fail with
// ErrUnrecoverable (and not misreport spare exhaustion as the cause).
func TestLadderEmptyIsUnrecoverable(t *testing.T) {
	cfg := baseConfig(2, 2, 200000)
	cfg.Spares = 4
	var ctrl *Controller
	cfg.Chaos = killPairAtCommit(&ctrl, 0, 2)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("expected ErrUnrecoverable, got %v", err)
	}
	if errors.Is(err, runtime.ErrSpareExhausted) {
		t.Fatalf("spare exhaustion misreported as cause: %v", err)
	}
	if stats.BuddyPairLosses != 1 {
		t.Errorf("buddy pair losses = %d, want 1", stats.BuddyPairLosses)
	}
}

// TestDegradedFold: with the spare pool empty and Degraded enabled, a hard
// error folds the dead node onto the least-loaded survivor of its replica
// and the job completes shrunk — with the same bit-identical result.
func TestDegradedFold(t *testing.T) {
	cfg := baseConfig(2, 2, 8000)
	cfg.Spares = 0
	cfg.Degraded = true
	var ctrl *Controller
	var commits atomic.Int64
	cfg.Chaos = point.HookFunc(func(id point.ID, info *point.Info) {
		if id == point.CoreCommit && commits.Add(1) == 2 {
			ctrl.KillNode(1, 0)
		}
	})
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Folds != 1 {
		t.Errorf("folds = %d, want 1", stats.Folds)
	}
	if stats.DegradedNodes != 1 {
		t.Errorf("degraded nodes at end = %d, want 1", stats.DegradedNodes)
	}
	if stats.SparesUsed != 0 {
		t.Errorf("spares used = %d, want 0", stats.SparesUsed)
	}
	if stats.HardErrors != 1 {
		t.Errorf("hard errors = %d, want 1", stats.HardErrors)
	}
	verifyFinalState(t, ctrl, 2, 2, 8000)
}

// TestDegradedReExpand: a spare freed after a fold (FreeSpare) re-expands
// the folded node onto it before its tasks restart, so the job ends with
// no degraded nodes.
func TestDegradedReExpand(t *testing.T) {
	cfg := baseConfig(2, 2, 8000)
	cfg.Spares = 0
	cfg.Degraded = true
	var ctrl *Controller
	var commits atomic.Int64
	cfg.Chaos = point.HookFunc(func(id point.ID, info *point.Info) {
		switch id {
		case point.CoreCommit:
			if commits.Add(1) == 2 {
				ctrl.KillNode(0, 1)
			}
		case point.CoreFold:
			// A repaired node rejoins right after the fold; the recovery
			// restart below it picks up the re-expanded mapping.
			ctrl.FreeSpare()
		}
	})
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Folds != 1 {
		t.Errorf("folds = %d, want 1", stats.Folds)
	}
	if stats.Expands != 1 {
		t.Errorf("expands = %d, want 1", stats.Expands)
	}
	if stats.DegradedNodes != 0 {
		t.Errorf("degraded nodes at end = %d, want 0", stats.DegradedNodes)
	}
	verifyFinalState(t, ctrl, 2, 2, 8000)
}

// TestDegradedDisabledStaysFatal: without Degraded, spare exhaustion is
// still fatal and the typed cause survives the wrap.
func TestDegradedDisabledStaysFatal(t *testing.T) {
	cfg := baseConfig(2, 2, 200000)
	cfg.Spares = 0
	var ctrl *Controller
	var commits atomic.Int64
	cfg.Chaos = point.HookFunc(func(id point.ID, info *point.Info) {
		if id == point.CoreCommit && commits.Add(1) == 1 {
			ctrl.KillNode(0, 0)
		}
	})
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ctrl.Run()
	if !errors.Is(err, ErrUnrecoverable) || !errors.Is(err, runtime.ErrSpareExhausted) {
		t.Fatalf("want ErrUnrecoverable wrapping ErrSpareExhausted, got %v", err)
	}
}

// lossySeed finds a link seed whose very first frame is lost, so a run
// using it is guaranteed at least one retransmission regardless of how
// many frames the run sends.
func lossySeed(t *testing.T, p netsim.LinkParams) int64 {
	t.Helper()
	for seed := int64(0); seed < 1000; seed++ {
		p.Seed = seed
		if out := netsim.NewLink(p).Send(0); len(out) == 0 {
			return seed
		}
	}
	t.Fatal("no seed loses the first frame")
	return 0
}

// TestExchangeLossyLink: with checkpoint exchange and compare results
// routed through a 10%-loss, 5%-duplication link, every round still
// completes — the per-chunk ack/retry protocol absorbs the faults — and
// the recovery transfer after a crash delivers byte-identical state.
func TestExchangeLossyLink(t *testing.T) {
	cfg := baseConfig(2, 2, 8000)
	cfg.Scheme = Medium
	exch := ExchangeConfig{Loss: 0.10, Dup: 0.05}
	exch.Seed = lossySeed(t, netsim.LinkParams{Loss: exch.Loss, Dup: exch.Dup})
	cfg.Exchange = &exch
	var ctrl *Controller
	var commits atomic.Int64
	cfg.Chaos = point.HookFunc(func(id point.ID, info *point.Info) {
		if id == point.CoreCommit && commits.Add(1) == 2 {
			ctrl.KillNode(0, 1) // medium recovery ships checkpoints over the link
		}
	})
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.HardErrors != 1 {
		t.Errorf("hard errors = %d, want 1", stats.HardErrors)
	}
	if stats.ExchangeFrames == 0 {
		t.Error("no frames crossed the link")
	}
	if stats.ExchangeRetries == 0 {
		t.Error("lossy link produced no retries")
	}
	if stats.Link.Lost == 0 {
		t.Errorf("link lost no frames: %+v", stats.Link)
	}
	if stats.Link.Sent == 0 || stats.Link.Delivered == 0 {
		t.Errorf("link stats empty: %+v", stats.Link)
	}
	verifyFinalState(t, ctrl, 2, 2, 8000)
}

// TestExchangeCleanLinkTransparent: a fault-free exchange changes no
// results and needs no retries.
func TestExchangeCleanLinkTransparent(t *testing.T) {
	cfg := baseConfig(2, 2, 4000)
	cfg.Exchange = &ExchangeConfig{}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExchangeRetries != 0 {
		t.Errorf("clean link retried %d times", stats.ExchangeRetries)
	}
	if stats.ExchangeFrames == 0 {
		t.Error("exchange enabled but no frames sent")
	}
	verifyFinalState(t, ctrl, 2, 2, 4000)
}

// TestFlushRetention: the durable tier keeps only FlushRetain epochs; the
// background flusher's view stays consistent with the stats.
func TestFlushRetention(t *testing.T) {
	cfg := baseConfig(2, 2, 8000)
	cfg.FlushEvery = 1
	cfg.FlushRetain = 2
	fs := ckptstore.NewMem()
	cfg.FlushStore = fs
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FlushedEpochs < 3 {
		t.Fatalf("flushed epochs = %d, want >= 3 (raise iters?)", stats.FlushedEpochs)
	}
	// Only the newest FlushRetain epochs may remain in the flush store.
	epochs := map[uint64]bool{}
	for e := uint64(1); e < uint64(stats.FlushedEpochs)+8; e++ {
		if _, err := fs.Get(ckptstore.Key{Replica: 0, Node: 0, Task: 0, Epoch: e}); err == nil {
			epochs[e] = true
		}
	}
	if len(epochs) > cfg.FlushRetain {
		t.Errorf("flush store retains %d epochs %v, want <= %d", len(epochs), epochs, cfg.FlushRetain)
	}
}

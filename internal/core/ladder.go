package core

import (
	"fmt"
	stdruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"

	"acr/internal/chaos/point"
	"acr/internal/ckptstore"
	"acr/internal/trace"
)

// This file implements the recovery escalation ladder. The buddy
// in-memory checkpoint (tier 0) survives any single node failure, but a
// buddy-pair double fault destroys both physical copies of a logical
// node's checkpoints at once. The ladder adds a durable second tier:
// every Config.FlushEvery-th committed epoch is cloned and written to a
// background flush store (a disk tier by default), and recovery escalates
// through the tiers in order:
//
//	tier 0  buddy in-memory checkpoint at the committed epoch
//	tier 1  the durable flush of the committed epoch
//	tier 2  the newest complete older durable epoch (bounded rework:
//	        the rollback depth is recorded per restore)
//	tier 3  the newest complete epoch on the remote tier
//	        (Config.RemoteStore) — the last resort when the machine lost
//	        both in-memory copies AND the local durable tier is unusable
//
// ErrUnrecoverable is reserved for a genuinely empty ladder — every tier
// exhausted — instead of the first in-memory miss. The remote tier is
// deliberately below every local tier: it is the slowest and least
// reliable path, so recovery only pays its cost (and its failure modes)
// when nothing local survives, and a dark remote can never abort a job
// that still has a local tier to climb to.

// flushClone carries one cloned task checkpoint to the durable writer.
type flushClone struct {
	rep, n, t int
	ck        *ckptstore.Checkpoint
}

// maybeFlush runs on the commit path: it counts the commit toward the
// flush period and, when due, clones the committed epoch's checkpoints
// and hands them to the durable writer. Cloning is synchronous — the
// commit path's buffer recycling (the next commit's Evict) must never
// race the flush — but the durable Puts run on a background goroutine so
// the hot path does not absorb disk latency. Chaos runs and the pinned
// serial path flush synchronously: campaign reports depend on a
// deterministic hook order.
func (c *Controller) maybeFlush(epoch uint64) {
	if c.flushStore == nil {
		return
	}
	c.commitsSinceFlush++
	if c.commitsSinceFlush < c.cfg.FlushEvery {
		return
	}
	c.commitsSinceFlush = 0
	clones, err := c.cloneEpoch(epoch)
	if err != nil {
		c.flushErrs.Add(1)
		c.mark(trace.Store, fmt.Sprintf("flush of epoch %d aborted: %v", epoch, err))
		return
	}
	write := func() {
		if err := c.writeFlush(epoch, clones); err != nil {
			c.flushErrs.Add(1)
			c.mark(trace.Store, fmt.Sprintf("flush of epoch %d failed: %v", epoch, err))
		}
	}
	if c.cfg.Chaos != nil || c.cfg.SerialCommitPath {
		write()
		return
	}
	c.flushWG.Add(1)
	go func() {
		defer c.flushWG.Done()
		write()
	}()
}

// maybeFlushRemote is maybeFlush's remote-tier counterpart, running on
// the same commit path with its own cadence (Config.RemoteFlushEvery) and
// retention. A remote flush failure is booked and traced but never
// propagates: the remote tier is best-effort by design — local tiers
// carry the recovery guarantee.
func (c *Controller) maybeFlushRemote(epoch uint64) {
	if c.remoteStore == nil {
		return
	}
	c.commitsSinceRemote++
	if c.commitsSinceRemote < c.cfg.RemoteFlushEvery {
		return
	}
	c.commitsSinceRemote = 0
	clones, err := c.cloneEpoch(epoch)
	if err != nil {
		c.remoteErrs.Add(1)
		c.mark(trace.Remote, fmt.Sprintf("remote flush of epoch %d aborted: %v", epoch, err))
		return
	}
	write := func() {
		if err := c.writeRemote(epoch, clones); err != nil {
			c.remoteErrs.Add(1)
			c.mark(trace.Remote, fmt.Sprintf("remote flush of epoch %d failed: %v", epoch, err))
		}
	}
	if c.cfg.Chaos != nil || c.cfg.SerialCommitPath || c.cfg.SyncRemoteFlush {
		write()
		return
	}
	c.remoteWG.Add(1)
	go func() {
		defer c.remoteWG.Done()
		write()
	}()
}

// cloneEpoch deep-copies every task checkpoint of the epoch out of the hot
// store, detaching the flush from the commit path's buffer recycling. The
// copies are independent, so under the pipelined commit path they run on a
// bounded worker pool — the clone barrier is commit-path latency exactly
// like the phases pipeline.go overlaps. Output order (and therefore the
// durable Put order downstream) stays the serial walk's: workers fill a
// dense pre-indexed slice, first error in index order wins.
func (c *Controller) cloneEpoch(epoch uint64) ([]flushClone, error) {
	nodes, tasks := c.cfg.NodesPerReplica, c.cfg.TasksPerNode
	total := 2 * nodes * tasks
	cloneAt := func(i int) (flushClone, error) {
		rep, n, t := i/(nodes*tasks), i/tasks%nodes, i%tasks
		ck, err := c.store.Get(c.key(rep, n, t, epoch))
		if err != nil {
			return flushClone{}, err
		}
		return flushClone{rep, n, t, ck.Clone()}, nil
	}
	clones := make([]flushClone, total)
	if !c.pipelined() || total == 1 {
		for i := 0; i < total; i++ {
			var err error
			if clones[i], err = cloneAt(i); err != nil {
				return nil, err
			}
		}
		return clones, nil
	}
	workers := stdruntime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	errs := make([]error, total)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				clones[i], errs[i] = cloneAt(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return clones, nil
}

// writeFlush lands one cloned epoch on the durable tier, registers it in
// the ladder's durable-epoch index, and applies the retention bound.
func (c *Controller) writeFlush(epoch uint64, clones []flushClone) error {
	for _, cl := range clones {
		if err := c.flushStore.Put(c.key(cl.rep, cl.n, cl.t, epoch), cl.ck); err != nil {
			return err
		}
	}
	c.flushMu.Lock()
	i := sort.Search(len(c.flushedEpochs), func(i int) bool { return c.flushedEpochs[i] >= epoch })
	if i == len(c.flushedEpochs) || c.flushedEpochs[i] != epoch {
		c.flushedEpochs = append(c.flushedEpochs, 0)
		copy(c.flushedEpochs[i+1:], c.flushedEpochs[i:])
		c.flushedEpochs[i] = epoch
	}
	if keep := c.cfg.FlushRetain; len(c.flushedEpochs) > keep {
		oldest := c.flushedEpochs[len(c.flushedEpochs)-keep]
		c.flushedEpochs = append(c.flushedEpochs[:0], c.flushedEpochs[len(c.flushedEpochs)-keep:]...)
		c.flushStore.Evict(oldest)
	}
	c.flushMu.Unlock()
	c.flushedCount.Add(1)
	c.fire(point.CoreFlush, point.Info{Replica: -1, Node: -1, Task: -1, Epoch: epoch})
	c.mark(trace.Store, fmt.Sprintf("epoch %d flushed to durable tier (%s)", epoch, c.flushStore.Name()))
	return nil
}

// writeRemote lands one cloned epoch on the remote tier and registers it
// in the remote-epoch index. A resilient wrapper under us may be
// degrading Puts to its local fallback — that still counts as landed: the
// epoch is readable back through the same wrapper.
func (c *Controller) writeRemote(epoch uint64, clones []flushClone) error {
	for _, cl := range clones {
		if err := c.remoteStore.Put(c.key(cl.rep, cl.n, cl.t, epoch), cl.ck); err != nil {
			return err
		}
	}
	c.remoteMu.Lock()
	i := sort.Search(len(c.remoteEpochs), func(i int) bool { return c.remoteEpochs[i] >= epoch })
	if i == len(c.remoteEpochs) || c.remoteEpochs[i] != epoch {
		c.remoteEpochs = append(c.remoteEpochs, 0)
		copy(c.remoteEpochs[i+1:], c.remoteEpochs[i:])
		c.remoteEpochs[i] = epoch
	}
	if keep := c.cfg.RemoteRetain; len(c.remoteEpochs) > keep {
		oldest := c.remoteEpochs[len(c.remoteEpochs)-keep]
		c.remoteEpochs = append(c.remoteEpochs[:0], c.remoteEpochs[len(c.remoteEpochs)-keep:]...)
		c.remoteStore.Evict(oldest)
	}
	c.remoteMu.Unlock()
	c.remoteCount.Add(1)
	c.mark(trace.Remote, fmt.Sprintf("epoch %d flushed to remote tier (%s)", epoch, c.remoteStore.Name()))
	return nil
}

// remoteEpochsNewestFirst snapshots the complete remote epochs at or below
// the committed epoch, newest first — the ladder's tier-3 candidates.
func (c *Controller) remoteEpochsNewestFirst() []uint64 {
	c.remoteMu.Lock()
	defer c.remoteMu.Unlock()
	out := make([]uint64, 0, len(c.remoteEpochs))
	for i := len(c.remoteEpochs) - 1; i >= 0; i-- {
		if e := c.remoteEpochs[i]; e <= c.committedEpoch {
			out = append(out, e)
		}
	}
	return out
}

// durableEpochsNewestFirst snapshots the complete durable epochs at or
// below the committed epoch, newest first — the ladder's tier-1/tier-2
// candidates.
func (c *Controller) durableEpochsNewestFirst() []uint64 {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	out := make([]uint64, 0, len(c.flushedEpochs))
	for i := len(c.flushedEpochs) - 1; i >= 0; i-- {
		if e := c.flushedEpochs[i]; e <= c.committedEpoch {
			out = append(out, e)
		}
	}
	return out
}

// recordLadderRestore books one successful ladder restore: the tier it
// landed on and how many committed epochs of work the restore point lies
// behind the newest commit.
func (c *Controller) recordLadderRestore(tier int, epoch uint64) {
	c.stats.TierRecoveries[tier]++
	c.prog.tierRecoveries[tier].Add(1)
	depth := 0
	for i := len(c.commitLog) - 1; i >= 0 && c.commitLog[i] > epoch; i-- {
		depth++
	}
	c.stats.RollbackDepths = append(c.stats.RollbackDepths, depth)
	if depth > c.stats.MaxRollbackDepth {
		c.stats.MaxRollbackDepth = depth
	}
}

// restartFromCommitted launches the replica from the newest usable
// checkpoint the ladder can find, or from factory state when nothing has
// committed yet. Restoration reads every task checkpoint back out of a
// storage tier — the restart path, like commit and compare, goes
// exclusively through stores.
func (c *Controller) restartFromCommitted(rep int) error {
	c.fire(point.CoreRestart, point.Info{Replica: rep, Node: -1, Task: -1, Epoch: c.committedEpoch})
	if c.committedEpoch == 0 {
		if err := c.machine.RestartReplica(rep, emptySet(c.cfg.NodesPerReplica, c.cfg.TasksPerNode)); err != nil {
			return fmt.Errorf("core: restart replica %d: %w", rep, err)
		}
		return nil
	}
	// Tier 0: the buddy in-memory checkpoint at the committed epoch.
	err0 := c.machine.RestartReplicaFromStore(rep, c.committedEpoch, c.store)
	if err0 == nil {
		c.recordLadderRestore(0, c.committedEpoch)
		return nil
	}
	if c.flushStore == nil && c.remoteStore == nil {
		// Wrap err0 too: an at-rest corruption verdict (ckptstore.ErrCorrupt)
		// must stay visible to errors.Is even when the ladder has no lower
		// tier — detection succeeded even though recovery cannot.
		return fmt.Errorf("%w: replica %d: committed epoch %d unusable (%w) and no durable tier configured",
			ErrUnrecoverable, rep, c.committedEpoch, err0)
	}
	// Escalate. Settle any in-flight flush first so the durable view is
	// complete, then walk the durable epochs newest-first; a corrupt or
	// incomplete durable epoch is skipped, not fatal.
	c.flushWG.Wait()
	c.mark(trace.Restart, fmt.Sprintf("replica %d escalating past committed epoch %d: %v", rep, c.committedEpoch, err0))
	var lastErr error
	if c.flushStore != nil {
		for _, epoch := range c.durableEpochsNewestFirst() {
			if err := c.machine.RestartReplicaFromStore(rep, epoch, c.flushStore); err != nil {
				lastErr = err
				c.mark(trace.Restart, fmt.Sprintf("replica %d: durable epoch %d unusable: %v", rep, epoch, err))
				continue
			}
			tier := 1
			if epoch != c.committedEpoch {
				tier = 2
			}
			c.recordLadderRestore(tier, epoch)
			c.mark(trace.Restart, fmt.Sprintf("replica %d restored from durable epoch %d (tier %d, rollback depth %d)",
				rep, epoch, tier, c.stats.RollbackDepths[len(c.stats.RollbackDepths)-1]))
			return nil
		}
	}
	// Tier 3: the remote tier, last — the slowest, least reliable path.
	// A dark or flaky remote only adds skipped candidates here; it can
	// never make recovery worse than the local-only ladder.
	if c.remoteStore != nil {
		c.remoteWG.Wait()
		for _, epoch := range c.remoteEpochsNewestFirst() {
			if err := c.machine.RestartReplicaFromStore(rep, epoch, c.remoteStore); err != nil {
				lastErr = err
				c.mark(trace.Restart, fmt.Sprintf("replica %d: remote epoch %d unusable: %v", rep, epoch, err))
				continue
			}
			c.recordLadderRestore(3, epoch)
			c.mark(trace.Restart, fmt.Sprintf("replica %d restored from remote epoch %d (tier 3, rollback depth %d)",
				rep, epoch, c.stats.RollbackDepths[len(c.stats.RollbackDepths)-1]))
			return nil
		}
	}
	if lastErr == nil {
		lastErr = err0
	}
	return fmt.Errorf("%w: replica %d: recovery ladder exhausted (last tier error: %v)", ErrUnrecoverable, rep, lastErr)
}

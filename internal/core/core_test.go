package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"acr/internal/pup"
	"acr/internal/runtime"
	"acr/internal/trace"
)

// diffProg is a deterministic 1D three-point diffusion kernel distributed
// over all tasks of a replica: task g owns Cells cells of a global array,
// exchanges single-cell halos with its neighbours every iteration, and
// relaxes u[i] = (u[i-1]+u[i]+u[i+1])/3 with zero boundaries. Its final
// state is bit-reproducible, so tests verify recovered runs against a
// serial reference.
type diffProg struct {
	Iter  int
	Iters int
	U     []float64
}

const diffCells = 8

type halo struct {
	Iter int
	Side int // 0 = sender's left edge, 1 = sender's right edge
	Val  float64
}

func (d *diffProg) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&d.Iter)
	p.Label("iters")
	p.Int(&d.Iters)
	p.Label("u")
	p.Float64s(&d.U)
}

func initialCell(globalIdx int) float64 {
	return math.Sin(float64(globalIdx)*0.7) + 2
}

func (d *diffProg) Run(ctx *runtime.Ctx) error {
	g := ctx.GlobalTask()
	n := ctx.NumTasks()
	if d.U == nil {
		d.U = make([]float64, diffCells)
		for i := range d.U {
			d.U[i] = initialCell(g*diffCells + i)
		}
	}
	var pending []runtime.Message
	recvHalo := func(iter int) (left, right float64, err error) {
		needLeft := g > 0
		needRight := g < n-1
		take := func(m runtime.Message) bool {
			h := m.Data.(halo)
			if h.Iter != iter {
				return false
			}
			if needLeft && h.Side == 1 && m.From == ctx.AddrOfGlobal(g-1) {
				left = h.Val
				needLeft = false
				return true
			}
			if needRight && h.Side == 0 && m.From == ctx.AddrOfGlobal(g+1) {
				right = h.Val
				needRight = false
				return true
			}
			return false
		}
		for i := 0; i < len(pending); {
			if take(pending[i]) {
				pending = append(pending[:i], pending[i+1:]...)
			} else {
				i++
			}
		}
		for needLeft || needRight {
			m, err := ctx.Recv()
			if err != nil {
				return 0, 0, err
			}
			if !take(m) {
				pending = append(pending, m)
			}
		}
		return left, right, nil
	}

	for d.Iter < d.Iters {
		it := d.Iter
		if g > 0 {
			if err := ctx.Send(ctx.AddrOfGlobal(g-1), 0, halo{Iter: it, Side: 0, Val: d.U[0]}); err != nil {
				return err
			}
		}
		if g < n-1 {
			if err := ctx.Send(ctx.AddrOfGlobal(g+1), 0, halo{Iter: it, Side: 1, Val: d.U[len(d.U)-1]}); err != nil {
				return err
			}
		}
		left, right, err := recvHalo(it)
		if err != nil {
			return err
		}
		next := make([]float64, len(d.U))
		for i := range d.U {
			lo := left
			if i > 0 {
				lo = d.U[i-1]
			} else if g == 0 {
				lo = 0
			}
			hi := right
			if i < len(d.U)-1 {
				hi = d.U[i+1]
			} else if g == n-1 {
				hi = 0
			}
			next[i] = (lo + d.U[i] + hi) / 3
		}
		d.U = next
		d.Iter++
		if err := ctx.Progress(d.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

// diffReference computes the expected global array after iters sweeps.
func diffReference(tasks, iters int) []float64 {
	n := tasks * diffCells
	u := make([]float64, n)
	for i := range u {
		u[i] = initialCell(i)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		for i := range u {
			lo, hi := 0.0, 0.0
			if i > 0 {
				lo = u[i-1]
			}
			if i < n-1 {
				hi = u[i+1]
			}
			next[i] = (lo + u[i] + hi) / 3
		}
		u = next
	}
	return u
}

func diffFactory(iters int) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program { return &diffProg{Iters: iters} }
}

// verifyFinalState checks every task of both replicas against the serial
// reference.
func verifyFinalState(t *testing.T, ctrl *Controller, nodes, tasks, iters int) {
	t.Helper()
	ref := diffReference(nodes*tasks, iters)
	for rep := 0; rep < 2; rep++ {
		for n := 0; n < nodes; n++ {
			for tk := 0; tk < tasks; tk++ {
				addr := runtime.Addr{Replica: rep, Node: n, Task: tk}
				data, err := ctrl.Machine().PackTask(addr)
				if err != nil {
					t.Fatal(err)
				}
				var got diffProg
				if err := pup.Unpack(data, &got); err != nil {
					t.Fatal(err)
				}
				if got.Iter != iters {
					t.Fatalf("%v stopped at iteration %d, want %d", addr, got.Iter, iters)
				}
				g := n*tasks + tk
				for i, v := range got.U {
					want := ref[g*diffCells+i]
					if math.Float64bits(v) != math.Float64bits(want) {
						t.Fatalf("%v cell %d = %v, want %v (not bit-identical)", addr, i, v, want)
					}
				}
			}
		}
	}
}

func baseConfig(nodes, tasks, iters int) Config {
	return Config{
		NodesPerReplica:    nodes,
		TasksPerNode:       tasks,
		Spares:             2,
		Factory:            diffFactory(iters),
		Scheme:             Strong,
		Comparison:         FullCompare,
		CheckpointInterval: 5 * time.Millisecond,
		HeartbeatInterval:  time.Millisecond,
		HeartbeatTimeout:   8 * time.Millisecond,
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{NodesPerReplica: 1, TasksPerNode: 1},
		{NodesPerReplica: 1, TasksPerNode: 1, Factory: diffFactory(1), Scheme: Scheme(9)},
		{NodesPerReplica: 1, TasksPerNode: 1, Factory: diffFactory(1), RelTol: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFailureFreeRunWithCheckpoints(t *testing.T) {
	cfg := baseConfig(2, 2, 4000)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints == 0 {
		t.Error("expected at least one committed checkpoint")
	}
	if stats.SDCDetected != 0 || stats.HardErrors != 0 || stats.Rollbacks != 0 {
		t.Errorf("failure-free run reported failures: %+v", stats)
	}
	verifyFinalState(t, ctrl, 2, 2, 4000)
}

func TestSDCDetectionAndRecovery(t *testing.T) {
	for _, cmp := range []Comparison{FullCompare, ChecksumCompare} {
		cmp := cmp
		t.Run(cmp.String(), func(t *testing.T) {
			cfg := baseConfig(2, 2, 4000)
			cfg.Comparison = cmp
			ctrl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 0, Node: 1, Task: 0})
			stats, err := ctrl.Run()
			if err != nil {
				t.Fatal(err)
			}
			if stats.SDCDetected == 0 {
				t.Fatal("injected SDC was not detected")
			}
			if stats.Rollbacks < 2 {
				t.Fatalf("SDC must roll back both replicas, rollbacks = %d", stats.Rollbacks)
			}
			verifyFinalState(t, ctrl, 2, 2, 4000)
		})
	}
}

func TestHardErrorRecoveryAllSchemes(t *testing.T) {
	for _, scheme := range []Scheme{Strong, Medium, Weak} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := baseConfig(2, 2, 8000)
			cfg.Scheme = scheme
			ctrl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tl := &trace.Timeline{}
			ctrl.cfg.Timeline = tl
			go func() {
				time.Sleep(12 * time.Millisecond)
				ctrl.KillNode(1, 0)
			}()
			stats, err := ctrl.Run()
			if err != nil {
				t.Fatal(err)
			}
			if stats.HardErrors != 1 {
				t.Fatalf("hard errors = %d, want 1", stats.HardErrors)
			}
			if stats.SparesUsed != 1 {
				t.Fatalf("spares used = %d, want 1", stats.SparesUsed)
			}
			if stats.Rollbacks == 0 {
				t.Fatal("recovery must restart the crashed replica")
			}
			if tl.Count(trace.Failure) == 0 || tl.Count(trace.Restart) == 0 {
				t.Error("timeline missing failure/restart events")
			}
			verifyFinalState(t, ctrl, 2, 2, 8000)
		})
	}
}

func TestHardErrorWithoutSparesIsFatal(t *testing.T) {
	cfg := baseConfig(2, 1, 100000)
	cfg.Spares = 0
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		ctrl.KillNode(0, 0)
	}()
	_, err = ctrl.Run()
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("expected ErrUnrecoverable, got %v", err)
	}
	if !errors.Is(err, runtime.ErrSpareExhausted) {
		t.Fatalf("cause should be spare exhaustion, got %v", err)
	}
}

func TestHardErrorOnlyMode(t *testing.T) {
	// Figure 5a: no periodic checkpointing; a hard error triggers an
	// immediate recovery checkpoint by the healthy replica.
	cfg := baseConfig(2, 1, 20000)
	cfg.Scheme = Medium
	cfg.CheckpointInterval = 0
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		ctrl.KillNode(0, 1)
	}()
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.HardErrors != 1 {
		t.Fatalf("hard errors = %d, want 1", stats.HardErrors)
	}
	if stats.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want exactly the recovery checkpoint", stats.Checkpoints)
	}
	verifyFinalState(t, ctrl, 2, 1, 20000)
}

func TestMultipleFailures(t *testing.T) {
	cfg := baseConfig(2, 2, 12000)
	cfg.Scheme = Strong
	cfg.Spares = 3
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		ctrl.KillNode(0, 0)
		time.Sleep(25 * time.Millisecond)
		ctrl.KillNode(1, 1)
	}()
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.HardErrors != 2 {
		t.Fatalf("hard errors = %d, want 2", stats.HardErrors)
	}
	verifyFinalState(t, ctrl, 2, 2, 12000)
}

func TestSDCPlusHardError(t *testing.T) {
	cfg := baseConfig(2, 2, 10000)
	cfg.Scheme = Medium
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 1, Node: 0, Task: 1})
	go func() {
		time.Sleep(20 * time.Millisecond)
		ctrl.KillNode(0, 1)
	}()
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SDCDetected == 0 {
		t.Fatal("SDC missed")
	}
	if stats.HardErrors != 1 {
		t.Fatalf("hard errors = %d, want 1", stats.HardErrors)
	}
	verifyFinalState(t, ctrl, 2, 2, 10000)
}

func TestRelToleranceAcceptsInjectedRoundoff(t *testing.T) {
	// A tolerant comparison must not flag a tiny relative perturbation.
	cfg := baseConfig(1, 2, 4000)
	cfg.RelTol = 1e-2 // very loose: a random bit flip usually lands below this? No —
	// bit flips can be enormous; instead verify the clean path works with
	// tolerance enabled (checker PUPer path).
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SDCDetected != 0 {
		t.Fatal("clean run flagged SDC under tolerance")
	}
	if stats.Checkpoints == 0 {
		t.Fatal("no checkpoints committed")
	}
	verifyFinalState(t, ctrl, 1, 2, 4000)
}

func TestAdaptiveIntervalReactsToFailures(t *testing.T) {
	cfg := baseConfig(2, 1, 60000)
	cfg.Scheme = Medium
	cfg.Adaptive = true
	cfg.Spares = 4
	cfg.MinInterval = time.Millisecond
	cfg.MaxInterval = 100 * time.Millisecond
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 3; i++ {
			time.Sleep(12 * time.Millisecond)
			ctrl.KillNode(i%2, i%2)
		}
	}()
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.HardErrors < 2 {
		t.Fatalf("hard errors = %d, want >= 2", stats.HardErrors)
	}
	if stats.FinalInterval == cfg.CheckpointInterval {
		t.Error("adaptive mode never changed the interval")
	}
	verifyFinalState(t, ctrl, 2, 1, 60000)
}

func TestSchemeAndComparisonStrings(t *testing.T) {
	if Strong.String() != "strong" || Medium.String() != "medium" || Weak.String() != "weak" {
		t.Fatal("Scheme.String broken")
	}
	if FullCompare.String() != "full" || ChecksumCompare.String() != "checksum" {
		t.Fatal("Comparison.String broken")
	}
	if Scheme(9).String() == "" || Comparison(9).String() == "" {
		t.Fatal("unknown values should format")
	}
}

func TestStatsElapsedPositive(t *testing.T) {
	ctrl, err := New(baseConfig(1, 1, 50))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

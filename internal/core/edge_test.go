package core

import (
	"testing"
	"time"

	"acr/internal/runtime"
)

// TestWeakDoubleFailure: under the weak scheme, a failure in the healthy
// replica while the first crashed replica still awaits recovery forces a
// rollback of both replicas to the previous checkpoint (§2.3's weak-scheme
// hazard). The run must still finish correctly.
func TestWeakDoubleFailure(t *testing.T) {
	cfg := baseConfig(2, 2, 12000)
	cfg.Scheme = Weak
	cfg.Spares = 2
	// Stretch the period so the second failure lands before the next
	// periodic checkpoint performs the weak recovery.
	cfg.CheckpointInterval = 60 * time.Millisecond
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(15 * time.Millisecond)
		ctrl.KillNode(0, 0) // first crash: replica 0 pends weak recovery
		time.Sleep(20 * time.Millisecond)
		ctrl.KillNode(1, 1) // healthy replica crashes before recovery
	}()
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.HardErrors != 2 {
		t.Fatalf("hard errors = %d, want 2", stats.HardErrors)
	}
	if stats.Rollbacks < 2 {
		t.Fatalf("double failure must roll back both replicas, rollbacks = %d", stats.Rollbacks)
	}
	verifyFinalState(t, ctrl, 2, 2, 12000)
}

// TestSecondFailureOnCrashedReplica: another node of an already-crashed
// replica dies before the weak recovery runs; the single pending recovery
// must restore everything.
func TestSecondFailureOnCrashedReplica(t *testing.T) {
	cfg := baseConfig(2, 2, 12000)
	cfg.Scheme = Weak
	cfg.Spares = 2
	cfg.CheckpointInterval = 40 * time.Millisecond
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(12 * time.Millisecond)
		ctrl.KillNode(0, 0)
		time.Sleep(10 * time.Millisecond)
		ctrl.KillNode(0, 1) // same replica, different node
	}()
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.HardErrors != 2 {
		t.Fatalf("hard errors = %d, want 2", stats.HardErrors)
	}
	if stats.SparesUsed != 2 {
		t.Fatalf("spares used = %d, want 2", stats.SparesUsed)
	}
	verifyFinalState(t, ctrl, 2, 2, 12000)
}

// TestFailureDuringCheckpointRound: a kill racing the consensus cut must
// abort the round (AbortedRounds) and still recover.
func TestFailureDuringCheckpointRound(t *testing.T) {
	cfg := baseConfig(2, 2, 30000)
	cfg.Scheme = Strong
	cfg.CheckpointInterval = 2 * time.Millisecond // rounds nearly always active
	cfg.Spares = 3
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 3; i++ {
			time.Sleep(8 * time.Millisecond)
			ctrl.KillNode(i%2, i%2)
		}
	}()
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.HardErrors == 0 {
		t.Fatal("no failures landed")
	}
	verifyFinalState(t, ctrl, 2, 2, 30000)
}

// TestSDCOnBothReplicas: corrupting BOTH replicas' buddies still yields a
// detectable mismatch only if the corruptions differ; identical state with
// two different flips mismatches with near certainty. Either way the run
// must end with the correct answer.
func TestSDCOnBothReplicas(t *testing.T) {
	cfg := baseConfig(2, 2, 6000)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 0, Node: 0, Task: 0})
	ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 1, Node: 0, Task: 0})
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SDCDetected == 0 {
		t.Fatal("differing corruptions on the buddy pair must mismatch")
	}
	verifyFinalState(t, ctrl, 2, 2, 6000)
}

// TestManySDCInjections: repeated corruption across different rounds keeps
// being caught and rolled back.
func TestManySDCInjections(t *testing.T) {
	cfg := baseConfig(2, 1, 12000)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			time.Sleep(9 * time.Millisecond)
			ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: i % 2, Node: i % 2, Task: 0})
		}
	}()
	stats, err := ctrl.Run()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if stats.SDCDetected < 2 {
		t.Fatalf("SDC detected = %d, want >= 2", stats.SDCDetected)
	}
	verifyFinalState(t, ctrl, 2, 1, 12000)
}

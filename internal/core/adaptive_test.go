package core

import (
	"testing"
	"time"
)

// Before the first round commits there is no measured checkpoint cost, so
// the adaptive path must not invent one: it falls back to the most
// protective legal interval, MinInterval, until a real measurement exists.
func TestAdaptiveIntervalFallsBackToMinIntervalUnmeasured(t *testing.T) {
	cfg := baseConfig(1, 1, 100)
	cfg.Adaptive = true
	cfg.Estimator = MeanEstimator
	cfg.MinInterval = 2 * time.Millisecond
	cfg.MaxInterval = 500 * time.Millisecond
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two failures so the MTBF estimate is available; the missing piece is
	// the checkpoint cost delta.
	ctrl.history.Record(1.0)
	ctrl.history.Record(3.0)
	if len(ctrl.stats.CheckpointTimes) != 0 {
		t.Fatal("precondition: no committed checkpoint rounds")
	}
	ctrl.interval = cfg.CheckpointInterval
	ctrl.adaptInterval()
	if ctrl.interval != cfg.MinInterval {
		t.Fatalf("unmeasured adaptInterval set %v, want MinInterval %v", ctrl.interval, cfg.MinInterval)
	}

	// Once a round has committed, Young/Daly takes over: delta = 4 ms,
	// MTBF = 2 s gives tau = sqrt(2*0.004*2) ~ 126 ms, inside the clamp.
	ctrl.stats.CheckpointTimes = []time.Duration{4 * time.Millisecond}
	ctrl.adaptInterval()
	if ctrl.interval == cfg.MinInterval || ctrl.interval == cfg.MaxInterval {
		t.Fatalf("measured adaptInterval hit a clamp: %v", ctrl.interval)
	}
	if got, want := ctrl.interval, 126*time.Millisecond; got < want-5*time.Millisecond || got > want+5*time.Millisecond {
		t.Fatalf("measured adaptInterval = %v, want ~%v", got, want)
	}
}

// avgCheckpointSeconds reports measured=false only on an empty history.
func TestAvgCheckpointSeconds(t *testing.T) {
	ctrl, err := New(baseConfig(1, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if d, measured := ctrl.avgCheckpointSeconds(); measured || d != 0 {
		t.Fatalf("empty history: got (%v, %v), want (0, false)", d, measured)
	}
	ctrl.stats.CheckpointTimes = []time.Duration{2 * time.Millisecond, 4 * time.Millisecond}
	d, measured := ctrl.avgCheckpointSeconds()
	if !measured || d != 0.003 {
		t.Fatalf("got (%v, %v), want (0.003, true)", d, measured)
	}
}

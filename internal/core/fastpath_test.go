package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"acr/internal/ckptstore"
	"acr/internal/runtime"
)

// fastpathController builds an idle controller over the bench workload. The
// machine is never started: every task sits quiescent at its deterministic
// factory state, which satisfies the capture/compare quiescence contract.
func fastpathController(t *testing.T, nodes, tasks int, comparison Comparison, relTol float64) *Controller {
	t.Helper()
	ctrl, err := New(Config{
		NodesPerReplica: nodes,
		TasksPerNode:    tasks,
		Factory:         benchFactory(64),
		Comparison:      comparison,
		RelTol:          relTol,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return ctrl
}

func captureBoth(t *testing.T, ctrl *Controller, epoch uint64) {
	t.Helper()
	opts := ctrl.captureOptions()
	for rep := 0; rep < 2; rep++ {
		if err := ctrl.machine.CaptureReplica(rep, epoch, ctrl.store, opts); err != nil {
			t.Fatalf("capture replica %d: %v", rep, err)
		}
	}
}

// corrupt replaces the stored checkpoint at (rep, n, task) with a copy whose
// payload has one flipped exponent bit in the last float — non-structural,
// outside any length prefix — and returns a restore function.
func corrupt(t *testing.T, ctrl *Controller, rep, n, task int, epoch uint64) func() {
	t.Helper()
	key := ctrl.key(rep, n, task, epoch)
	orig, err := ctrl.store.Get(key)
	if err != nil {
		t.Fatalf("get %v: %v", key, err)
	}
	data := append([]byte(nil), orig.Bytes()...)
	data[len(data)-1] ^= 0x40
	if err := ctrl.store.Put(key, ckptstore.Capture(data, ctrl.cfg.ChunkSize, 1)); err != nil {
		t.Fatalf("put corrupted %v: %v", key, err)
	}
	return func() {
		if err := ctrl.store.Put(key, orig); err != nil {
			t.Fatalf("restore %v: %v", key, err)
		}
	}
}

// TestCompareParallelMatchesSerial plants an SDC at every single (node,
// task) in turn and checks that the parallel comparison reproduces the
// serial walk's outcome bit for bit — same mismatch string, same localized
// chunk — at several worker counts and for every comparison mode.
func TestCompareParallelMatchesSerial(t *testing.T) {
	const nodes, tasks = 3, 2
	modes := []struct {
		name       string
		comparison Comparison
		relTol     float64
	}{
		{"full", FullCompare, 0},
		{"checksum", ChecksumCompare, 0},
		{"reltol", FullCompare, 1e-12},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			ctrl := fastpathController(t, nodes, tasks, mode.comparison, mode.relTol)
			captureBoth(t, ctrl, 1)

			// Clean store: both paths must agree there is nothing to find.
			sMsg, sChunk, sErr := ctrl.compareSerial(1)
			if sMsg != "" || sErr != nil {
				t.Fatalf("clean compare: %q, %v", sMsg, sErr)
			}
			for _, workers := range []int{2, 8} {
				pMsg, pChunk, pErr := ctrl.compareParallel(1, workers)
				if pMsg != sMsg || pChunk != sChunk || !errEq(pErr, sErr) {
					t.Fatalf("clean parallel(%d) = (%q, %d, %v), serial = (%q, %d, %v)",
						workers, pMsg, pChunk, pErr, sMsg, sChunk, sErr)
				}
			}

			for n := 0; n < nodes; n++ {
				for task := 0; task < tasks; task++ {
					restore := corrupt(t, ctrl, 0, n, task, 1)
					sMsg, sChunk, sErr := ctrl.compareSerial(1)
					if sMsg == "" {
						t.Fatalf("serial compare missed corruption at n%d/t%d", n, task)
					}
					for _, workers := range []int{2, 8} {
						pMsg, pChunk, pErr := ctrl.compareParallel(1, workers)
						if pMsg != sMsg || pChunk != sChunk || !errEq(pErr, sErr) {
							t.Fatalf("corruption at n%d/t%d, %d workers: parallel = (%q, %d, %v), serial = (%q, %d, %v)",
								n, task, workers, pMsg, pChunk, pErr, sMsg, sChunk, sErr)
						}
					}
					restore()
				}
			}
		})
	}
}

// TestCompareParallelLowestIndexWins corrupts several buddy pairs at once:
// regardless of which worker finds which mismatch first, the reported one
// must be the lowest (node, task) — the serial walk's answer.
func TestCompareParallelLowestIndexWins(t *testing.T) {
	const nodes, tasks = 4, 2
	ctrl := fastpathController(t, nodes, tasks, FullCompare, 0)
	captureBoth(t, ctrl, 1)
	for _, spot := range [][2]int{{0, 1}, {1, 0}, {3, 1}} {
		defer corrupt(t, ctrl, 0, spot[0], spot[1], 1)()
	}
	sMsg, sChunk, sErr := ctrl.compareSerial(1)
	if sErr != nil || sMsg == "" {
		t.Fatalf("serial compare: (%q, %v)", sMsg, sErr)
	}
	want := fmt.Sprintf("at n%d/t%d", 0, 1)
	if !bytes.Contains([]byte(sMsg), []byte(want)) {
		t.Fatalf("serial compare reported %q, want the lowest pair %s", sMsg, want)
	}
	for _, workers := range []int{2, 3, 8} {
		for round := 0; round < 20; round++ { // rerun: racy schedules must not leak through
			pMsg, pChunk, pErr := ctrl.compareParallel(1, workers)
			if pMsg != sMsg || pChunk != sChunk || !errEq(pErr, sErr) {
				t.Fatalf("%d workers round %d: parallel = (%q, %d, %v), serial = (%q, %d, %v)",
					workers, round, pMsg, pChunk, pErr, sMsg, sChunk, sErr)
			}
		}
	}
}

func errEq(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// TestFastCaptureMatchesSerialCapture checks the whole fast path —
// size-hint single-pass packing, pooled buffers, recycled sum slices —
// against the pinned two-pass baseline, byte for byte.
func TestFastCaptureMatchesSerialCapture(t *testing.T) {
	const nodes, tasks = 3, 2
	ctrl := fastpathController(t, nodes, tasks, FullCompare, 0)
	if ctrl.pool == nil {
		t.Fatalf("controller-owned store did not get a recycling pool")
	}
	serialOpts := runtime.CaptureOptions{ForceTwoPass: true, ChunkWorkers: 1}
	fastOpts := ctrl.captureOptions()
	if err := ctrl.machine.CaptureReplica(0, 1, ctrl.store, serialOpts); err != nil {
		t.Fatalf("serial capture: %v", err)
	}
	if err := ctrl.machine.CaptureReplica(0, 2, ctrl.store, fastOpts); err != nil {
		t.Fatalf("fast capture: %v", err)
	}
	snapshot := make(map[ckptstore.Key][]byte)
	for n := 0; n < nodes; n++ {
		for task := 0; task < tasks; task++ {
			ref, err := ctrl.store.Get(ctrl.key(0, n, task, 1))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ctrl.store.Get(ctrl.key(0, n, task, 2))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref.Bytes(), got.Bytes()) {
				t.Fatalf("n%d/t%d: fast capture bytes differ from two-pass capture", n, task)
			}
			if ref.Root != got.Root || !reflect.DeepEqual(ref.Sums, got.Sums) {
				t.Fatalf("n%d/t%d: fast capture checksums differ from two-pass capture", n, task)
			}
			// Copy: epoch 1/2 buffers are about to be recycled.
			snapshot[ctrl.key(0, n, task, 3)] = append([]byte(nil), ref.Bytes()...)
		}
	}
	// Retire both epochs into the pool and capture again through recycled
	// buffers: contents must still be exact, nothing may alias.
	ctrl.store.Evict(3)
	if err := ctrl.machine.CaptureReplica(0, 3, ctrl.store, fastOpts); err != nil {
		t.Fatalf("recycled capture: %v", err)
	}
	for key, want := range snapshot {
		got, err := ctrl.store.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("%v: recycled capture bytes differ", key)
		}
	}
	if ctrs := ctrl.pool.Counters(); ctrs.Hits == 0 {
		t.Fatalf("recycled capture never hit the pool: %+v", ctrs)
	}
	if fast, _ := ctrl.machine.PackCounters(); fast == 0 {
		t.Fatalf("fast capture never took the single-pass packing path")
	}
}

// TestPoolRecyclingNoAliasing mutates a buffer handed out by the pool and
// re-captures: the corruption must land only in the new capture, never
// bleed into a previously stored epoch.
func TestPoolRecyclingNoAliasing(t *testing.T) {
	pool := ckptstore.NewPool(4)
	first := ckptstore.Capture(bytes.Repeat([]byte{0xAA}, 256), 64, 1)
	firstBytes := append([]byte(nil), first.Bytes()...)
	keep := ckptstore.Capture(bytes.Repeat([]byte{0xBB}, 256), 64, 1)
	pool.Put(first)

	ck := pool.Get(256)
	if ck != first {
		t.Fatalf("pool did not hand back the retired checkpoint")
	}
	buf := append(ck.Scratch(), bytes.Repeat([]byte{0xCC}, 256)...)
	recaptured := ckptstore.CaptureInto(ck, buf, 64, 1)
	if !bytes.Equal(recaptured.Bytes(), bytes.Repeat([]byte{0xCC}, 256)) {
		t.Fatalf("recaptured payload wrong")
	}
	// The retired buffer was legitimately overwritten; the still-live
	// checkpoint must be untouched.
	if !bytes.Equal(keep.Bytes(), bytes.Repeat([]byte{0xBB}, 256)) {
		t.Fatalf("recycling corrupted an unrelated live checkpoint")
	}
	// And the recycled object is the same allocation — that's the point —
	// so the old epoch's bytes are gone, which is why stores must evict
	// before recycling.
	if bytes.Equal(recaptured.Bytes(), firstBytes) {
		t.Fatalf("recycled capture kept stale bytes")
	}
}

// TestFirstDiffChunk pins the localization helper, including the unequal
// length case that used to slice out of range: a corrupted length prefix
// shifts every later byte, and the old code indexed the shorter buffer with
// the longer one's length.
func TestFirstDiffChunk(t *testing.T) {
	const cs = 4
	cases := []struct {
		name string
		a, b []byte
		want int
	}{
		{"equal", []byte("abcdefgh"), []byte("abcdefgh"), -1},
		{"both empty", nil, nil, -1},
		{"first byte", []byte("Xbcdefgh"), []byte("abcdefgh"), 0},
		{"second chunk", []byte("abcdXfgh"), []byte("abcdefgh"), 1},
		{"a short prefix of b", []byte("abcd"), []byte("abcdefgh"), 1},
		{"b short prefix of a", []byte("abcdefgh"), []byte("ab"), 0},
		{"empty vs non-empty", nil, []byte("abcd"), 0},
		{"diff before length diff", []byte("Xbcd"), []byte("abcdefgh"), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := firstDiffChunk(tc.a, tc.b, cs); got != tc.want {
				t.Fatalf("firstDiffChunk(%q, %q, %d) = %d, want %d", tc.a, tc.b, cs, got, tc.want)
			}
		})
	}
	// chunkSize <= 0 selects the default without dividing by zero.
	if got := firstDiffChunk([]byte{1}, []byte{2}, 0); got != 0 {
		t.Fatalf("default chunk size: got %d, want 0", got)
	}
}

package core

import (
	"errors"
	"testing"
	"time"

	"acr/internal/ckptstore"
)

// TestWarmResumeFromDurable: a first job flushes epochs to a persistent
// disk tier; a second process (a fresh controller over the same directory)
// warm-starts from the newest durable epoch and finishes with the
// bit-identical final state. The newest epoch is then corrupted at rest to
// prove the resume walk skips it and lands on an older candidate.
func TestWarmResumeFromDurable(t *testing.T) {
	const nodes, tasks, iters = 2, 2, 8000
	dir := t.TempDir()
	d1, err := ckptstore.NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(nodes, tasks, iters)
	cfg.FlushEvery = 1
	cfg.FlushRetain = 4
	cfg.FlushStore = d1
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2 * nodes * tasks

	// A fresh process reopens the directory and rebuilds the inventory
	// from the files themselves.
	d2, err := ckptstore.NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	epochs := ckptstore.CompleteEpochs(d2, want)
	if len(epochs) < 2 {
		t.Fatalf("durable epochs after run = %v, want >= 2", epochs)
	}

	resume := baseConfig(nodes, tasks, iters)
	resume.ResumeEpochs = epochs
	resume.ResumeStore = d2
	ctrl2, err := New(resume)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResumedEpoch != epochs[len(epochs)-1] {
		t.Errorf("resumed epoch = %d, want newest durable %d", stats.ResumedEpoch, epochs[len(epochs)-1])
	}
	if stats.TierRecoveries[1] != 1 {
		t.Errorf("tier recoveries = %v, want one tier-1 resume", stats.TierRecoveries)
	}
	verifyFinalState(t, ctrl2, nodes, tasks, iters)

	// Corrupt the newest durable epoch at rest: the resume walk must skip
	// it (detection via the payload root) and land on the next candidate.
	newest := epochs[len(epochs)-1]
	if err := d2.CorruptAtRest(ckptstore.Key{Replica: 0, Node: 0, Task: 0, Epoch: newest}, 16, 2); err != nil {
		t.Fatal(err)
	}
	resume2 := baseConfig(nodes, tasks, iters)
	resume2.ResumeEpochs = epochs
	resume2.ResumeStore = d2
	ctrl3, err := New(resume2)
	if err != nil {
		t.Fatal(err)
	}
	stats3, err := ctrl3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats3.ResumedEpoch != epochs[len(epochs)-2] {
		t.Errorf("resumed epoch with corrupt newest = %d, want %d", stats3.ResumedEpoch, epochs[len(epochs)-2])
	}
	if stats3.TierRecoveries[2] != 1 || stats3.MaxRollbackDepth != 1 {
		t.Errorf("tier recoveries = %v, max depth = %d; want one tier-2 resume at depth 1",
			stats3.TierRecoveries, stats3.MaxRollbackDepth)
	}
	verifyFinalState(t, ctrl3, nodes, tasks, iters)
}

// TestResumeAllUnusableColdStarts: when every resume candidate is garbage
// the job must fall back to a cold start and still complete correctly.
func TestResumeAllUnusableColdStarts(t *testing.T) {
	const nodes, tasks, iters = 1, 2, 4000
	cfg := baseConfig(nodes, tasks, iters)
	cfg.ResumeEpochs = []uint64{41, 42}
	cfg.ResumeStore = ckptstore.NewMem() // empty: every Get fails
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResumedEpoch != 0 {
		t.Errorf("resumed epoch = %d, want 0 (cold start)", stats.ResumedEpoch)
	}
	verifyFinalState(t, ctrl, nodes, tasks, iters)
}

// TestOnDemandFlushAndRestore drives the acrd control-plane surface
// against a live job: force a durable flush of the committed epoch, rewind
// the job to it, reject a restore of a non-existent epoch, and observe it
// all through the live Progress snapshot — then let the job finish and
// check the result is still bit-identical.
func TestOnDemandFlushAndRestore(t *testing.T) {
	const nodes, tasks, iters = 2, 2, 60000
	cfg := baseConfig(nodes, tasks, iters)
	cfg.FlushEvery = 1 << 30 // durable tier present, periodic cadence never fires
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	var stats Stats
	go func() {
		var rerr error
		stats, rerr = ctrl.Run()
		runDone <- rerr
	}()

	deadline := time.Now().Add(10 * time.Second)
	for ctrl.Progress().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint committed within 10s")
		}
		time.Sleep(time.Millisecond)
	}

	epoch, err := ctrl.FlushCommitted(10 * time.Second)
	if err != nil {
		t.Fatalf("FlushCommitted: %v", err)
	}
	if epoch == 0 {
		t.Fatal("FlushCommitted returned epoch 0")
	}
	if got := ctrl.DurableEpochs(); len(got) != 1 || got[0] != epoch {
		t.Fatalf("durable epochs = %v, want [%d]", got, epoch)
	}
	// Idempotent: a second forced flush of the same epoch is a no-op.
	if again, err := ctrl.FlushCommitted(10 * time.Second); err != nil || again != epoch {
		t.Fatalf("second FlushCommitted = (%d, %v), want (%d, nil)", again, err, epoch)
	}

	if err := ctrl.RestoreEpoch(epoch+999, 10*time.Second); err == nil {
		t.Fatal("restore of non-existent epoch succeeded, want error")
	}
	if err := ctrl.RestoreEpoch(epoch, 10*time.Second); err != nil {
		t.Fatalf("RestoreEpoch(%d): %v", epoch, err)
	}
	p := ctrl.Progress()
	if p.Rollbacks < 2 {
		t.Errorf("progress rollbacks = %d, want >= 2 after on-demand restore", p.Rollbacks)
	}
	if p.FlushedEpochs < 1 {
		t.Errorf("progress flushed epochs = %d, want >= 1", p.FlushedEpochs)
	}

	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	if stats.FlushedEpochs < 1 {
		t.Errorf("stats flushed epochs = %d, want >= 1", stats.FlushedEpochs)
	}
	verifyFinalState(t, ctrl, nodes, tasks, iters)

	// The loop has exited: control-plane operations now time out with the
	// typed sentinel instead of hanging.
	if _, err := ctrl.FlushCommitted(50 * time.Millisecond); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("FlushCommitted after run = %v, want ErrNotRunning", err)
	}
}

package core

import (
	"math/rand"
	"testing"
	"time"

	"acr/internal/failure"
	"acr/internal/runtime"
)

// TestChaosPlan drives a full randomized failure plan (merged hard-error
// and SDC schedules from internal/failure) against a live ACR run and
// verifies the final state is still bit-exact. This is the closest live
// analogue of the paper's injection campaigns (§6.1) at laptop scale.
func TestChaosPlan(t *testing.T) {
	const nodes, tasks, iters = 2, 2, 30000
	for _, scheme := range []Scheme{Strong, Medium, Weak} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(33))
			// Times in milliseconds of wall clock, scaled to the run.
			hard := failure.Schedule{12e-3, 40e-3}
			sdc := failure.Schedule{8e-3, 25e-3, 55e-3}
			plan := failure.NewPlan(hard, sdc, nodes, rng)

			cfg := baseConfig(nodes, tasks, iters)
			cfg.Scheme = scheme
			cfg.Spares = len(hard) + 1
			ctrl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				start := time.Now()
				for _, ev := range plan {
					delay := time.Duration(ev.Time*float64(time.Second)) - time.Since(start)
					if delay > 0 {
						time.Sleep(delay)
					}
					switch ev.Kind {
					case failure.Hard:
						ctrl.KillNode(ev.Replica, ev.Node)
					case failure.SDC:
						ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{
							Replica: ev.Replica, Node: ev.Node, Task: rng.Intn(tasks),
						})
					}
				}
			}()
			stats, err := ctrl.Run()
			if err != nil {
				t.Fatal(err)
			}
			if stats.HardErrors == 0 && stats.SDCDetected == 0 {
				t.Skip("run finished before any injection landed (machine too fast)")
			}
			verifyFinalState(t, ctrl, nodes, tasks, iters)
			t.Logf("%v: hard=%d sdc=%d rollbacks=%d checkpoints=%d",
				scheme, stats.HardErrors, stats.SDCDetected, stats.Rollbacks, stats.Checkpoints)
		})
	}
}

// TestEstimators: every estimator choice adapts the interval and finishes
// correctly.
func TestEstimators(t *testing.T) {
	for _, est := range []Estimator{TrendEstimator, MeanEstimator, WeibullEstimator} {
		est := est
		t.Run(est.String(), func(t *testing.T) {
			cfg := baseConfig(2, 1, 60000)
			cfg.Scheme = Medium
			cfg.Adaptive = true
			cfg.Estimator = est
			cfg.Spares = 4
			cfg.MinInterval = time.Millisecond
			cfg.MaxInterval = 100 * time.Millisecond
			ctrl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				for i := 0; i < 3; i++ {
					time.Sleep(10 * time.Millisecond)
					ctrl.KillNode(i%2, i%2)
				}
			}()
			stats, err := ctrl.Run()
			if err != nil {
				t.Fatal(err)
			}
			if stats.HardErrors < 2 {
				t.Skipf("only %d failures landed", stats.HardErrors)
			}
			if est != WeibullEstimator || stats.HardErrors >= 3 {
				// Weibull needs >= 3 failures to engage; others adapt
				// from 2.
				if stats.FinalInterval == cfg.CheckpointInterval {
					t.Error("estimator never changed the interval")
				}
			}
			verifyFinalState(t, ctrl, 2, 1, 60000)
		})
	}
}

func TestEstimatorString(t *testing.T) {
	if TrendEstimator.String() != "trend" || MeanEstimator.String() != "mean" || WeibullEstimator.String() != "weibull" {
		t.Fatal("Estimator.String broken")
	}
	if Estimator(9).String() == "" {
		t.Fatal("unknown estimator should format")
	}
}

package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"acr/internal/chaos/point"
	"acr/internal/ckptstore"
	"acr/internal/netsim"
	"acr/internal/trace"
)

// This file hardens the buddy checkpoint exchange against a lossy
// interconnect. The direct path (Config.Exchange == nil) mirrors recovery
// checkpoints and learns compare outcomes through in-process store calls —
// implicitly a perfectly reliable network. With an ExchangeConfig, the
// recovery-checkpoint mirror and the per-round compare-result message
// instead travel as frames through a netsim.Link that loses, duplicates,
// and reorders them, and a small ack/retry protocol makes the exchange
// reliable again:
//
//   - checkpoints are shipped chunk by chunk; every data frame is
//     identified by (epoch, node, task, chunk) and acknowledged per chunk,
//     and acks themselves cross the same lossy link;
//   - unacknowledged frames are resent with capped exponential backoff
//     plus deterministic jitter, bounded by MaxAttempts per frame and a
//     per-round deadline;
//   - the receive side is idempotent: duplicate or late deliveries are
//     deduplicated by frame id, and payload bytes are copied into the
//     frame at send time, so a straggler delivered after its transfer
//     completed can never scribble on recycled checkpoint-pool buffers.
//
// A failed exchange (attempts or deadline exhausted) aborts the recovery
// round with an error instead of hanging — the watchdog never has to fire.

// ErrExchange reports a hardened-exchange transfer that exhausted its
// retry budget or round deadline.
var ErrExchange = errors.New("core: checkpoint exchange failed")

// ExchangeConfig parameterizes the hardened exchange.
type ExchangeConfig struct {
	// Loss / Dup / Reorder are the link fault probabilities (see
	// netsim.LinkParams).
	Loss    float64
	Dup     float64
	Reorder float64
	// Seed drives the link's fault draws and the backoff jitter; the
	// whole exchange schedule is a pure function of it.
	Seed int64
	// MaxAttempts bounds transmissions per frame (<= 0 selects 16).
	MaxAttempts int
	// BaseBackoff / MaxBackoff bound the capped exponential backoff
	// between retransmissions (<= 0 selects 50µs / 1ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RoundDeadline bounds one transfer's total wall time (<= 0 selects
	// 5s). It exists so a pathological link fails the round visibly
	// rather than tripping the campaign watchdog.
	RoundDeadline time.Duration
	// Latency is the modeled one-way frame propagation delay: a reliable
	// delivery costs one full round trip (data frame out, ack back) per
	// attempt. Zero keeps the link instantaneous — the pre-latency
	// behavior every chaos campaign is pinned to. A positive latency is
	// what the pipelined commit path overlaps across tasks; on the serial
	// path it is dead time for every task behind the one in flight.
	Latency time.Duration
	// ShipCheckpoints routes every live round's buddy checkpoints through
	// the link as well — per task, delta-aware against the last committed
	// epoch — instead of only recovery mirrors and compare-result
	// messages. The shipped copy is root-verified against the source, so
	// comparison outcomes are unchanged; the link cost (and its overlap
	// under the pipelined round) becomes part of every round.
	ShipCheckpoints bool
}

func (e *ExchangeConfig) validate() error {
	if e.Loss < 0 || e.Dup < 0 || e.Reorder < 0 || e.Loss+e.Dup+e.Reorder >= 1 {
		return fmt.Errorf("core: exchange fault probabilities must be non-negative and sum below 1 (loss=%v dup=%v reorder=%v)",
			e.Loss, e.Dup, e.Reorder)
	}
	if e.Latency < 0 {
		return fmt.Errorf("core: negative exchange latency %v", e.Latency)
	}
	if e.MaxAttempts <= 0 {
		e.MaxAttempts = 16
	}
	if e.BaseBackoff <= 0 {
		e.BaseBackoff = 50 * time.Microsecond
	}
	if e.MaxBackoff <= 0 {
		e.MaxBackoff = time.Millisecond
	}
	if e.RoundDeadline <= 0 {
		e.RoundDeadline = 5 * time.Second
	}
	return nil
}

// frameID identifies one exchange frame. Chunk -1 marks a control frame
// (the compare-result message); data frames carry one checkpoint chunk.
type frameID struct {
	epoch uint64
	node  int
	task  int
	chunk int
}

// frame is what crosses the link: a chunk payload (copied at send time)
// or an acknowledgement for one.
type frame struct {
	id      frameID
	ack     bool
	payload []byte
	off     int // payload offset in the assembled buffer
}

// assemblyKey addresses one in-flight checkpoint reassembly.
type assemblyKey struct {
	epoch uint64
	node  int
	task  int
}

// exchanger drives the ack/retry protocol over one lossy link. Chaos runs
// drive it from the controller's event-loop goroutine alone (the serial
// pin), but the pipelined commit path runs several transfers in flight at
// once, so the protocol state is mutex-guarded: map mutations and frame
// arbitration serialize on mu (the wire is serial), while propagation
// delay and backoff sleeps happen outside it (flight time is concurrent).
type exchanger struct {
	c    *Controller
	cfg  ExchangeConfig
	link *netsim.Link
	// mu guards seen/acked/assembling, the rng, and transmit's worklist
	// loop. Acquiring it on the final ack check also publishes every
	// assembly-buffer write (they happen under the same mutex) to the
	// transfer's goroutine.
	mu  sync.Mutex
	rng *rand.Rand // backoff jitter
	// seen deduplicates delivered data frames; acked records received
	// acks. Both persist across transfers so late duplicates of a
	// finished transfer stay inert.
	seen  map[frameID]bool
	acked map[frameID]bool
	// assembling maps in-flight reassemblies to their destination
	// buffers; a data frame whose transfer already finalized finds no
	// buffer and is dropped (counted, never written). Distinct transfers
	// own distinct buffers keyed by (epoch, node, task), so concurrent
	// in-flight transfers can never cross-contaminate.
	assembling map[assemblyKey][]byte
	// chunksShipped / chunksReused split transferred checkpoints into
	// chunks that crossed the link versus chunks reconstructed from the
	// receiver's retained base (matching per-chunk sums). frames / retries
	// mirror Stats.ExchangeFrames / ExchangeRetries; all four are atomics
	// because pipelined transfers update them concurrently, and are
	// harvested into Stats at Run end.
	chunksShipped atomic.Int64
	chunksReused  atomic.Int64
	frames        atomic.Int64
	retries       atomic.Int64
}

func newExchanger(c *Controller, cfg ExchangeConfig) *exchanger {
	return &exchanger{
		c:          c,
		cfg:        cfg,
		link:       netsim.NewLink(netsim.LinkParams{Loss: cfg.Loss, Dup: cfg.Dup, Reorder: cfg.Reorder, Seed: cfg.Seed}),
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0x657863)),
		seen:       make(map[frameID]bool),
		acked:      make(map[frameID]bool),
		assembling: make(map[assemblyKey][]byte),
	}
}

// shipCheckpoint transfers one task checkpoint through the link and
// returns the reassembled (freshly captured) checkpoint. When the
// receiver retains a compatible base checkpoint (same chunk geometry and
// length — normally the last committed epoch), only the chunks whose
// per-chunk sums differ from the base cross the link; the rest are
// reconstructed from the base's bytes. A nil or incompatible base ships
// everything. The returned checkpoint owns its buffer — it never aliases
// src or base, so the receiver's copy is safe against later recycling.
func (x *exchanger) shipCheckpoint(epoch uint64, node, task int, src, base *ckptstore.Checkpoint) (*ckptstore.Checkpoint, error) {
	deadline := time.Now().Add(x.cfg.RoundDeadline)
	key := assemblyKey{epoch: epoch, node: node, task: task}
	buf := make([]byte, src.Len())
	baseOK := base != nil && base.ChunkSize == src.ChunkSize &&
		base.Len() == src.Len() && len(base.Sums) == len(src.Sums)
	if baseOK {
		// Prefill from the base; shipped chunks overwrite their slots.
		copy(buf, base.Bytes())
	}
	x.mu.Lock()
	x.assembling[key] = buf
	x.mu.Unlock()
	defer func() {
		x.mu.Lock()
		delete(x.assembling, key)
		x.mu.Unlock()
	}()
	var transferRetries int64
	shipped, reused := 0, 0
	for i := 0; i < src.NumChunks(); i++ {
		if baseOK && src.Sums[i] == base.Sums[i] {
			reused++
			continue
		}
		shipped++
		chunk := src.Chunk(i)
		// Copy the payload out of the store-owned buffer: a duplicate of
		// this frame may be delivered after the transfer (and the source
		// epoch) is long gone.
		payload := append([]byte(nil), chunk...)
		f := frame{
			id:      frameID{epoch: epoch, node: node, task: task, chunk: i},
			payload: payload,
			off:     i * src.ChunkSize,
		}
		if err := x.sendReliable(f, deadline, &transferRetries); err != nil {
			return nil, fmt.Errorf("transfer r?/n%d/t%d@e%d chunk %d/%d: %w", node, task, epoch, i, src.NumChunks(), err)
		}
	}
	x.chunksShipped.Add(int64(shipped))
	x.chunksReused.Add(int64(reused))
	ck := ckptstore.Capture(buf, src.ChunkSize, 1)
	if ck.Root != src.Root {
		// Load-bearing with base reuse: a base whose stored bytes diverged
		// from its recorded sums (e.g. in-place corruption) would prefill
		// wrong bytes under a matching sum, and only this full-buffer root
		// check catches it — loud error, not silent SDC.
		return nil, fmt.Errorf("%w: reassembled checkpoint n%d/t%d@e%d root mismatch", ErrExchange, node, task, epoch)
	}
	if transferRetries > 0 {
		x.c.mark(trace.Net, fmt.Sprintf("exchange n%d/t%d@e%d: %d chunks shipped, %d reused, %d retransmissions", node, task, epoch, shipped, reused, transferRetries))
	}
	return ck, nil
}

// shipResult sends the round's compare-result message (match/mismatch)
// reliably through the link. The receiving side of the protocol acts on
// the result only after this returns, so a lossy link can delay a commit
// or rollback but never desynchronize the replicas' view of it.
func (x *exchanger) shipResult(epoch uint64, mismatch bool) error {
	deadline := time.Now().Add(x.cfg.RoundDeadline)
	f := frame{id: frameID{epoch: epoch, node: -1, task: -1, chunk: -1}}
	_ = mismatch // the verdict rides in the controller; the frame carries agreement
	var retries int64
	if err := x.sendReliable(f, deadline, &retries); err != nil {
		return fmt.Errorf("compare-result message e%d: %w", epoch, err)
	}
	return nil
}

// sendReliable transmits one frame until it is acknowledged, with capped
// exponential backoff plus jitter between attempts. retries accumulates
// this transfer's retransmission count (for the caller's trace mark);
// the exchanger-wide total lands in x.retries.
func (x *exchanger) sendReliable(f frame, deadline time.Time, retries *int64) error {
	backoff := x.cfg.BaseBackoff
	for attempt := 0; ; attempt++ {
		if attempt >= x.cfg.MaxAttempts {
			return fmt.Errorf("%w: frame %+v unacknowledged after %d attempts", ErrExchange, f.id, attempt)
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("%w: frame %+v missed the round deadline", ErrExchange, f.id)
		}
		if attempt > 0 {
			x.retries.Add(1)
			*retries++
			// Full jitter on the capped exponential: sleep in
			// [backoff/2, backoff), deterministically from the seed.
			x.mu.Lock()
			jitter := time.Duration(x.rng.Int63n(int64(backoff/2) + 1))
			x.mu.Unlock()
			time.Sleep(backoff/2 + jitter)
			backoff *= 2
			if backoff > x.cfg.MaxBackoff {
				backoff = x.cfg.MaxBackoff
			}
		}
		x.transmit(f)
		if x.cfg.Latency > 0 {
			// One round trip per attempt: the data frame propagates out,
			// the ack propagates back. This flight time is what the
			// pipelined round overlaps across concurrent transfers — the
			// sleep deliberately happens outside mu.
			time.Sleep(2 * x.cfg.Latency)
		}
		x.mu.Lock()
		ok := x.acked[f.id]
		x.mu.Unlock()
		if ok {
			return nil
		}
	}
}

// transmit pushes one frame (and any protocol frames it provokes) through
// the link. Delivered data frames are written into their transfer's
// assembly buffer exactly once and acknowledged; the acks cross the same
// lossy link. The worklist bounds: every delivery of a data frame enqueues
// at most one ack, ack deliveries enqueue nothing, and the link's held
// queue only drains, so the loop terminates. The whole exchange runs
// under mu — the wire is serial even when many transfers are in flight —
// and that same mutex is what publishes assembly-buffer writes to the
// owning transfer's final ack check.
func (x *exchanger) transmit(f frame) {
	x.mu.Lock()
	defer x.mu.Unlock()
	queue := []frame{f}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		info := point.Info{Replica: -1, Node: cur.id.node, Task: cur.id.task, Epoch: cur.id.epoch, Iter: cur.id.chunk}
		if x.c.cfg.Chaos != nil {
			// Chaos campaigns are pinned to the serial commit path, so Fire
			// never races here even though it runs under mu.
			x.c.cfg.Chaos.Fire(point.NetFrame, &info)
		}
		x.frames.Add(1)
		if info.Drop {
			// An injected drop: the frame dies before the link sees it.
			continue
		}
		for _, o := range x.link.Send(cur) {
			g := o.(frame)
			if g.ack {
				x.acked[g.id] = true
				continue
			}
			if !x.seen[g.id] {
				x.seen[g.id] = true
				if buf, ok := x.assembling[assemblyKey{epoch: g.id.epoch, node: g.id.node, task: g.id.task}]; ok && g.payload != nil {
					copy(buf[g.off:], g.payload)
				}
			}
			// Ack every delivery, duplicate or not: the sender may have
			// missed the previous ack.
			queue = append(queue, frame{id: g.id, ack: true})
		}
	}
}

package core

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"acr/internal/ckptstore"
	"acr/internal/trace"
)

// This file is the controller's control plane: the pieces a long-running
// service (cmd/acrd) needs to observe and steer a job without racing the
// protocol. Three mechanisms:
//
//   - Progress: the protocol counters mirrored into atomics at their
//     update sites, so pollers get live snapshots without touching the
//     controller goroutine's unsynchronized state.
//   - opCh: on-demand operations (forced flush, epoch restore) shipped as
//     closures onto the controller goroutine, where they run between
//     rounds with exclusive access to the protocol state.
//   - resumeFromDurable: Config.ResumeEpochs warm start — the recovery
//     ladder's newest-first escalation walk applied at job start, against
//     a durable store left behind by an earlier process.

// ErrNotRunning reports a control-plane operation that could not reach the
// controller goroutine: the event loop has exited (job finished or failed)
// or stayed busy past the caller's timeout.
var ErrNotRunning = errors.New("core: controller event loop not accepting operations")

// progressCounters mirrors protocol counters into atomics. Written on the
// controller goroutine at the same sites that update Stats; read from any
// goroutine via Progress().
type progressCounters struct {
	committedEpoch atomic.Uint64
	checkpoints    atomic.Int64
	hardErrors     atomic.Int64
	sdcDetected    atomic.Int64
	rollbacks      atomic.Int64
	folds          atomic.Int64
	tierRecoveries [4]atomic.Int64
	resumedEpoch   atomic.Uint64
}

// Progress is a live snapshot of a running job's protocol counters. The
// JSON tags are the stable lower_snake schema of the acrd API.
type Progress struct {
	CommittedEpoch uint64   `json:"committed_epoch"`
	Checkpoints    int64    `json:"checkpoints"`
	HardErrors     int64    `json:"hard_errors"`
	SDCDetected    int64    `json:"sdc_detected"`
	Rollbacks      int64    `json:"rollbacks"`
	FlushedEpochs  int64    `json:"flushed_epochs"`
	FlushErrors    int64    `json:"flush_errors"`
	TierRecoveries [4]int64 `json:"tier_recoveries"`
	Folds          int64    `json:"folds"`
	Expands        int64    `json:"expands"`
	DegradedNodes  int      `json:"degraded_nodes"`
	ResumedEpoch   uint64   `json:"resumed_epoch"`
	// Remote-tier counters: flush completions/failures plus the resilient
	// wrapper's live retry/breaker/failover accounting. All zero when the
	// job has no remote tier; RemoteBreakerOpen is 1 while the breaker is
	// open or half-open.
	RemoteFlushedEpochs int64 `json:"remote_flushed_epochs"`
	RemoteFlushErrors   int64 `json:"remote_flush_errors"`
	RemoteRetries       int64 `json:"remote_retries"`
	RemoteTrips         int64 `json:"remote_breaker_trips"`
	RemoteRecloses      int64 `json:"remote_breaker_recloses"`
	RemoteFailovers     int64 `json:"remote_failovers"`
	RemoteBreakerOpen   int64 `json:"remote_breaker_open"`
}

// Progress returns a live snapshot of the job's counters. Safe to call from
// any goroutine, before, during, and after Run.
func (c *Controller) Progress() Progress {
	var p Progress
	p.CommittedEpoch = c.prog.committedEpoch.Load()
	p.Checkpoints = c.prog.checkpoints.Load()
	p.HardErrors = c.prog.hardErrors.Load()
	p.SDCDetected = c.prog.sdcDetected.Load()
	p.Rollbacks = c.prog.rollbacks.Load()
	p.FlushedEpochs = c.flushedCount.Load()
	p.FlushErrors = c.flushErrs.Load()
	for i := range p.TierRecoveries {
		p.TierRecoveries[i] = c.prog.tierRecoveries[i].Load()
	}
	p.Folds = c.prog.folds.Load()
	p.Expands = c.machine.ExpandCount()
	p.DegradedNodes = c.machine.FoldedCount()
	p.ResumedEpoch = c.prog.resumedEpoch.Load()
	p.RemoteFlushedEpochs = c.remoteCount.Load()
	p.RemoteFlushErrors = c.remoteErrs.Load()
	if c.remoteStore != nil {
		if rs, ok := ckptstore.ResilientStatsOf(c.remoteStore); ok {
			p.RemoteRetries = rs.Retries
			p.RemoteTrips = rs.Trips
			p.RemoteRecloses = rs.Recloses
			p.RemoteFailovers = rs.Failovers
			if rs.State != ckptstore.BreakerClosed.String() {
				p.RemoteBreakerOpen = 1
			}
		}
	}
	return p
}

// FlushStore exposes the durable flush tier (nil when Config.FlushEvery is
// zero and no FlushStore was supplied). The acrd inventory endpoints
// enumerate it through ckptstore.Enumerator.
func (c *Controller) FlushStore() ckptstore.Store { return c.flushStore }

// DurableEpochs returns the ladder's current durable-epoch index,
// ascending. Safe to call from any goroutine.
func (c *Controller) DurableEpochs() []uint64 {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	return append([]uint64(nil), c.flushedEpochs...)
}

// RemoteStore exposes the remote checkpoint tier (nil when
// Config.RemoteStore was not set). The acrd inventory endpoints enumerate
// it through ckptstore.Enumerator; ckptstore.ResilientStatsOf reads the
// breaker counters off it.
func (c *Controller) RemoteStore() ckptstore.Store { return c.remoteStore }

// RemoteEpochs returns the ladder's current remote-epoch index, ascending.
// Safe to call from any goroutine.
func (c *Controller) RemoteEpochs() []uint64 {
	c.remoteMu.Lock()
	defer c.remoteMu.Unlock()
	return append([]uint64(nil), c.remoteEpochs...)
}

// runOp ships an operation onto the controller goroutine and waits for it
// to complete. The send blocks until the event loop is between rounds;
// timeout bounds that wait (<= 0 selects 30s). Once accepted the operation
// always runs to completion.
func (c *Controller) runOp(timeout time.Duration, op func()) error {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	done := make(chan struct{})
	wrapped := func() {
		defer close(done)
		op()
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case c.opCh <- wrapped:
	case <-t.C:
		return ErrNotRunning
	}
	<-done
	return nil
}

// FlushCommitted forces an immediate durable flush of the committed epoch,
// regardless of the FlushEvery cadence, and returns the epoch flushed. It
// is the acrd "flush now" endpoint: a fleet operator checkpointing a job
// to disk before draining a machine. Returns ErrNotRunning when the event
// loop is not accepting operations within the timeout.
func (c *Controller) FlushCommitted(timeout time.Duration) (uint64, error) {
	var epoch uint64
	var opErr error
	err := c.runOp(timeout, func() {
		epoch = c.committedEpoch
		switch {
		case c.flushStore == nil:
			opErr = fmt.Errorf("core: no durable tier configured")
			return
		case epoch == 0:
			opErr = fmt.Errorf("core: nothing committed yet")
			return
		}
		// Settle in-flight periodic flushes first; if one already landed
		// this epoch, the forced flush is a no-op.
		c.flushWG.Wait()
		c.flushMu.Lock()
		i := sort.Search(len(c.flushedEpochs), func(i int) bool { return c.flushedEpochs[i] >= epoch })
		already := i < len(c.flushedEpochs) && c.flushedEpochs[i] == epoch
		c.flushMu.Unlock()
		if already {
			return
		}
		clones, err := c.cloneEpoch(epoch)
		if err != nil {
			opErr = fmt.Errorf("core: clone committed epoch %d: %w", epoch, err)
			return
		}
		if err := c.writeFlush(epoch, clones); err != nil {
			c.flushErrs.Add(1)
			opErr = fmt.Errorf("core: flush committed epoch %d: %w", epoch, err)
			return
		}
		c.mark(trace.Store, fmt.Sprintf("epoch %d flushed on demand", epoch))
	})
	if err != nil {
		return 0, err
	}
	return epoch, opErr
}

// RestoreEpoch rewinds the running job to a durable epoch on demand: both
// replicas restart from the flush tier's copy of the epoch, which becomes
// the committed checkpoint. The epoch must be completely readable from the
// durable tier before any replica is touched; a partial restore failure
// falls back to the recovery ladder so the job is never left stopped.
// Returns ErrNotRunning when the event loop is not accepting operations
// within the timeout.
func (c *Controller) RestoreEpoch(epoch uint64, timeout time.Duration) error {
	var opErr error
	err := c.runOp(timeout, func() {
		if c.flushStore == nil {
			opErr = fmt.Errorf("core: no durable tier configured")
			return
		}
		c.flushWG.Wait()
		touched, err := c.adoptEpoch(c.flushStore, epoch)
		if err != nil {
			if touched {
				// Replicas were stopped mid-restore: climb the ladder back
				// to the committed checkpoint rather than leave them dead.
				for rep := 0; rep < 2; rep++ {
					if rerr := c.rollbackReplica(rep); rerr != nil {
						opErr = fmt.Errorf("core: restore epoch %d failed (%v) and ladder fallback failed: %w", epoch, err, rerr)
						return
					}
				}
			}
			opErr = fmt.Errorf("core: restore epoch %d: %w", epoch, err)
			return
		}
		tier := 1
		if epoch != c.committedEpoch {
			tier = 2
		}
		c.recordLadderRestore(tier, epoch)
		c.committedEpoch = epoch
		if c.epochSeq < epoch {
			c.epochSeq = epoch
		}
		c.stats.Rollbacks += 2
		c.prog.rollbacks.Add(2)
		c.prog.committedEpoch.Store(epoch)
		c.mark(trace.Restart, fmt.Sprintf("both replicas restored from durable epoch %d on demand", epoch))
	})
	if err != nil {
		return err
	}
	return opErr
}

// adoptEpoch restores both replicas from a durable store's copy of the
// epoch. Verification comes first: every task checkpoint of both replicas
// must read back intact (payload root re-verified by the store) before any
// replica is touched, so an incomplete or corrupt epoch fails with
// touched=false and the job keeps running. The verified checkpoints are
// mirrored into the hot store under the same epoch, making them the
// ladder's tier-0 copy for later failures.
func (c *Controller) adoptEpoch(st ckptstore.Store, epoch uint64) (touched bool, err error) {
	clones := make([]flushClone, 0, 2*c.cfg.NodesPerReplica*c.cfg.TasksPerNode)
	for rep := 0; rep < 2; rep++ {
		for n := 0; n < c.cfg.NodesPerReplica; n++ {
			for t := 0; t < c.cfg.TasksPerNode; t++ {
				ck, gerr := st.Get(c.key(rep, n, t, epoch))
				if gerr != nil {
					return false, fmt.Errorf("durable checkpoint r%d/n%d/t%d@%d: %w", rep, n, t, epoch, gerr)
				}
				clones = append(clones, flushClone{rep, n, t, ck.Clone()})
			}
		}
	}
	for _, cl := range clones {
		if perr := c.store.Put(c.key(cl.rep, cl.n, cl.t, epoch), cl.ck); perr != nil {
			return false, fmt.Errorf("mirror into hot store: %w", perr)
		}
	}
	for rep := 0; rep < 2; rep++ {
		c.machine.StopReplica(rep)
		c.coord.ForgetProgress(rep)
		c.coord.Undone(rep)
		if rerr := c.machine.RestartReplicaFromStore(rep, epoch, c.store); rerr != nil {
			return true, fmt.Errorf("restart replica %d from epoch %d: %w", rep, epoch, rerr)
		}
	}
	return true, nil
}

// resumeFromDurable implements Config.ResumeEpochs: a warm start from the
// newest usable durable epoch, walking to older candidates when one turns
// out corrupt or incomplete — the recovery ladder's escalation applied at
// job start, against state a previous process left behind. Run calls it
// after the machine starts (cold, factory state) and before the event
// loop; when every candidate is unusable the job falls back to the cold
// start it already has.
func (c *Controller) resumeFromDurable() error {
	if len(c.cfg.ResumeEpochs) == 0 {
		return nil
	}
	st := c.cfg.ResumeStore
	if st == nil {
		st = c.flushStore
	}
	if st == nil {
		return fmt.Errorf("core: ResumeEpochs set but no durable store to resume from")
	}
	epochs := append([]uint64(nil), c.cfg.ResumeEpochs...)
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	epochs = dedupeUint64(epochs)
	// Burn the whole candidate range: fresh captures must never collide
	// with stray mirrored keys from a failed adoption attempt.
	c.epochSeq = epochs[len(epochs)-1]
	for i := len(epochs) - 1; i >= 0; i-- {
		epoch := epochs[i]
		touched, err := c.adoptEpoch(st, epoch)
		if err != nil {
			c.mark(trace.Restart, fmt.Sprintf("resume: durable epoch %d unusable: %v", epoch, err))
			_ = touched // older candidates (or the cold fallback) restart the replicas
			continue
		}
		c.committedEpoch = epoch
		c.commitLog = append(c.commitLog, epoch)
		c.stats.ResumedEpoch = epoch
		depth := len(epochs) - 1 - i
		tier := 1
		if depth > 0 {
			tier = 2
		}
		c.stats.TierRecoveries[tier]++
		c.stats.RollbackDepths = append(c.stats.RollbackDepths, depth)
		if depth > c.stats.MaxRollbackDepth {
			c.stats.MaxRollbackDepth = depth
		}
		c.prog.tierRecoveries[tier].Add(1)
		c.prog.committedEpoch.Store(epoch)
		c.prog.resumedEpoch.Store(epoch)
		c.seedDurableIndex(epochs[:i+1])
		c.mark(trace.Restart, fmt.Sprintf("warm resume from durable epoch %d (tier %d, %d newer epoch(s) skipped)", epoch, tier, depth))
		return nil
	}
	// Every candidate unusable: cold start. Adoption attempts may have
	// left replicas stopped, so restart both from factory state explicitly.
	c.mark(trace.Restart, fmt.Sprintf("resume: all %d durable epoch(s) unusable, cold start", len(epochs)))
	for rep := 0; rep < 2; rep++ {
		c.machine.StopReplica(rep)
		c.coord.ForgetProgress(rep)
		c.coord.Undone(rep)
		if err := c.machine.RestartReplica(rep, emptySet(c.cfg.NodesPerReplica, c.cfg.TasksPerNode)); err != nil {
			return fmt.Errorf("core: cold-start fallback replica %d: %w", rep, err)
		}
	}
	return nil
}

// seedDurableIndex registers resumed epochs in the ladder's durable-epoch
// index, but only when the job resumes from its own flush tier — a later
// buddy-pair double fault can then land on the pre-resume flushes. Resuming
// from a foreign store seeds nothing: that store is not the escalation
// target.
func (c *Controller) seedDurableIndex(epochs []uint64) {
	if c.flushStore == nil {
		return
	}
	if c.cfg.ResumeStore != nil && c.cfg.ResumeStore != c.cfg.FlushStore {
		return
	}
	c.flushMu.Lock()
	c.flushedEpochs = append([]uint64(nil), epochs...)
	c.flushMu.Unlock()
}

func dedupeUint64(sorted []uint64) []uint64 {
	out := sorted[:0]
	for i, e := range sorted {
		if i == 0 || e != sorted[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// Package core implements ACR itself: the automatic checkpoint/restart
// framework of the paper. It drives a replicated application on the
// message-driven runtime, takes coordinated in-memory checkpoints through
// the §2.2 consensus protocol, detects silent data corruption by comparing
// buddy checkpoints (byte-for-byte or by Fletcher checksum, §4.2), recovers
// from fail-stop hard errors under the strong / medium / weak resilience
// schemes (§2.3), and adapts the checkpoint interval to the observed
// failure stream (§2.2).
//
// The Controller is application- and user-oblivious: applications only
// implement runtime.Program (a Run loop plus a Pup method) and call
// ctx.Progress once per iteration.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"acr/internal/chaos/point"
	"acr/internal/ckptstore"
	"acr/internal/consensus"
	"acr/internal/failure"
	"acr/internal/netsim"
	"acr/internal/runtime"
	"acr/internal/trace"
)

// ErrUnrecoverable reports a hard error the recovery escalation ladder
// cannot climb out of: every tier — buddy in-memory checkpoint, durable
// flush of the committed epoch, older durable epochs — was empty or
// unusable, and (when degraded mode is off) no spare was available. The
// job cannot continue, but the controller returns instead of hanging.
var ErrUnrecoverable = errors.New("core: unrecoverable hard error")

// Scheme is one of ACR's three resilience levels (§2.3).
type Scheme int

// Resilience schemes.
const (
	// Strong rolls the crashed replica back to the previous verified
	// checkpoint: 100% SDC protection, maximal rework.
	Strong Scheme = iota
	// Medium forces an immediate checkpoint of the healthy replica and
	// restarts the crashed replica from it: no rework, but SDC between
	// the previous and the forced checkpoint goes undetected.
	Medium
	// Weak waits for the next periodic checkpoint and recovers the
	// crashed replica from it: zero recovery overhead, a full checkpoint
	// period without SDC protection.
	Weak
)

func (s Scheme) String() string {
	switch s {
	case Strong:
		return "strong"
	case Medium:
		return "medium"
	case Weak:
		return "weak"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Comparison selects the SDC-detection data exchange (§4.2).
type Comparison int

// Comparison methods.
const (
	// FullCompare ships the whole checkpoint to the buddy and compares
	// byte by byte (precise mismatch attribution, mapping-sensitive
	// network cost at scale).
	FullCompare Comparison = iota
	// ChecksumCompare ships only a position-dependent Fletcher checksum.
	ChecksumCompare
)

func (c Comparison) String() string {
	switch c {
	case FullCompare:
		return "full"
	case ChecksumCompare:
		return "checksum"
	}
	return fmt.Sprintf("Comparison(%d)", int(c))
}

// PipelineMode selects how a live checkpoint round schedules its capture,
// exchange, and compare work across tasks.
type PipelineMode int

// Pipeline modes.
const (
	// PipelineAuto pipelines whenever a hardened-exchange link is
	// attached (Config.Exchange != nil) — the configuration where phase
	// barriers turn link latency into dead time — and keeps the barrier
	// schedule otherwise. The default.
	PipelineAuto PipelineMode = iota
	// PipelineOff always runs the three-phase barrier schedule.
	PipelineOff
	// PipelineOn always pipelines (still overridden by the chaos /
	// SerialCommitPath / SemiBlocking pins).
	PipelineOn
)

func (p PipelineMode) String() string {
	switch p {
	case PipelineAuto:
		return "auto"
	case PipelineOff:
		return "off"
	case PipelineOn:
		return "on"
	}
	return fmt.Sprintf("PipelineMode(%d)", int(p))
}

// Estimator selects the failure-rate model behind the adaptive interval
// (§2.2: "fit the actual observed failures during application execution to
// a certain distribution").
type Estimator int

// Estimators.
const (
	// TrendEstimator fits a power-law (Crow-AMSAA) trend to the failure
	// times and uses the current intensity — responsive to a globally
	// decreasing or increasing rate. The default.
	TrendEstimator Estimator = iota
	// MeanEstimator uses the plain average inter-failure time — the
	// classical stationary assumption.
	MeanEstimator
	// WeibullEstimator fits an i.i.d. Weibull renewal process to the
	// gaps and uses the reciprocal hazard at the current failure-free
	// age.
	WeibullEstimator
)

func (e Estimator) String() string {
	switch e {
	case TrendEstimator:
		return "trend"
	case MeanEstimator:
		return "mean"
	case WeibullEstimator:
		return "weibull"
	}
	return fmt.Sprintf("Estimator(%d)", int(e))
}

// Config describes an ACR job.
type Config struct {
	// Machine shape.
	NodesPerReplica int
	TasksPerNode    int
	Spares          int
	// Factory builds the application tasks.
	Factory runtime.Factory
	// Scheme is the resilience level.
	Scheme Scheme
	// Comparison is the SDC-detection method.
	Comparison Comparison
	// RelTol is the relative float tolerance for FullCompare (§4.1);
	// ignored by ChecksumCompare, which is exact by construction.
	RelTol float64
	// CheckpointInterval is the base period between automatic
	// checkpoints. Zero disables periodic checkpointing (hard-error-only
	// mode, Figure 5a).
	CheckpointInterval time.Duration
	// Adaptive re-derives the interval from the observed failure rate
	// after every failure (§2.2): tau = sqrt(2 * delta * MTBF_current),
	// clamped to [MinInterval, MaxInterval].
	Adaptive    bool
	MinInterval time.Duration
	MaxInterval time.Duration
	// Estimator selects how the current MTBF is derived from the failure
	// history in Adaptive mode.
	Estimator Estimator
	// SemiBlocking releases the application as soon as the local
	// checkpoint capture completes and performs the inter-replica
	// comparison while the application runs — the asynchronous
	// checkpointing optimization of §4.2 [27]. Corruption found by the
	// overlapped comparison still rolls both replicas back to the
	// previous verified checkpoint; the application merely loses the
	// work it did during the comparison window.
	SemiBlocking bool
	// Heartbeat failure detection parameters (see runtime.Config).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Timeline, if non-nil, receives checkpoint/failure/restart events.
	Timeline *trace.Timeline
	// MailboxCap forwards to runtime.Config.
	MailboxCap int
	// Store is the checkpoint storage tier holding every committed (and
	// in-flight) checkpoint, keyed by {replica, node, task, epoch}. Nil
	// selects the in-memory buddy tier (ckptstore.NewMem), the paper's
	// double in-memory checkpoint; a disk or delta tier composes with any
	// scheme/comparison combination.
	Store ckptstore.Store
	// ChunkSize is the checkpoint chunk granularity for parallel
	// checksumming and corruption localization; <= 0 selects
	// checksum.DefaultChunkSize (64 KiB).
	ChunkSize int
	// ChecksumWorkers bounds the per-replica capture worker pool (the
	// outer, task-parallel level); <= 0 selects GOMAXPROCS.
	ChecksumWorkers int
	// ChunkChecksumWorkers bounds the inner chunk-checksum parallelism of
	// each task capture; <= 0 auto-sizes against the outer pool (1 when
	// the outer pool saturates GOMAXPROCS, more for single-task-per-node
	// shapes). See runtime.CaptureOptions.
	ChunkChecksumWorkers int
	// CompareWorkers bounds the parallel buddy-comparison worker pool;
	// <= 0 selects GOMAXPROCS. The parallel compare cancels early on the
	// first mismatch but always reports the lowest (node, task) mismatch,
	// so its outcome is identical to the serial walk.
	CompareWorkers int
	// FlushEvery, when positive, flushes every K-th committed epoch to a
	// durable second tier — the escalation target when a buddy-pair double
	// fault destroys both in-memory copies of a node's checkpoints. The
	// flush clones the committed checkpoints synchronously (so the hot
	// commit path's buffer recycling is unaffected) and writes them on a
	// background goroutine; chaos runs write synchronously for
	// deterministic reports. Zero disables the durable tier.
	FlushEvery int
	// FlushRetain bounds how many complete flushed epochs the durable
	// tier keeps (older ones are evicted after each successful flush);
	// <= 0 selects 2. Deeper retention buys deeper rollback at more disk.
	FlushRetain int
	// FlushStore is the durable tier behind FlushEvery. Nil with
	// FlushEvery > 0 selects a controller-owned ckptstore.Disk in a
	// temporary directory, removed at Run end.
	FlushStore ckptstore.Store
	// RemoteStore, when non-nil, attaches a remote checkpoint tier — tier 3
	// of the recovery ladder, below buddy memory and the local durable
	// flush. Every RemoteFlushEvery-th committed epoch is cloned and
	// written to it; recovery walks its complete epochs newest-first only
	// after every local tier failed. The store is used as given (wrap it in
	// ckptstore.NewResilient for retry/backoff/breaker hardening against an
	// unreliable backend); a dark or failing remote costs remote flush
	// errors, never job progress.
	RemoteStore ckptstore.Store
	// RemoteFlushEvery is the remote tier's flush cadence in committed
	// epochs. Zero with RemoteStore set inherits max(FlushEvery, 1) —
	// remote bandwidth is usually the scarcer resource, so a sparser
	// explicit cadence is typical.
	RemoteFlushEvery int
	// RemoteRetain bounds how many complete remote epochs are kept
	// (older ones evicted after each successful remote flush); <= 0
	// selects 2.
	RemoteRetain int
	// SyncRemoteFlush forces remote uploads to run inline on the commit
	// path instead of on the background writer. Chaos runs and the pinned
	// serial commit path already imply it; the knob exists for benchmarks
	// that baseline the cost of absorbing remote latency synchronously.
	SyncRemoteFlush bool
	// ResumeEpochs, when non-empty, warm-starts the job from durable
	// checkpoints instead of factory state: Run restores both replicas
	// from the newest usable epoch in the list (read from ResumeStore,
	// falling back to FlushStore), walking to older epochs when a restore
	// fails — the same escalation the recovery ladder uses, applied at
	// job start. Epochs that turn out corrupt or incomplete are skipped;
	// if every one is unusable the job falls back to a cold start. When
	// resuming from the flush tier itself, the epochs also seed the
	// ladder's durable-epoch index so later double faults can land on
	// them. The outcome is reported in Stats.ResumedEpoch.
	ResumeEpochs []uint64
	// ResumeStore is the durable store ResumeEpochs are read from. Nil
	// selects FlushStore.
	ResumeStore ckptstore.Store
	// Degraded enables Charm++-style shrink on spare exhaustion: instead
	// of failing with ErrUnrecoverable, the failed node's tasks are folded
	// onto the least-loaded survivor in the same replica and the job
	// continues degraded. Controller.FreeSpare re-expands folded nodes
	// when capacity returns.
	Degraded bool
	// OnFold, if non-nil, is called (on the controller goroutine) after a
	// failed node has been folded onto a survivor — i.e. each time the job
	// enters or deepens degraded mode. A fleet scheduler uses it to broker
	// a replacement spare from the shared pool (Controller.FreeSpare); the
	// callback must not block on the controller itself.
	OnFold func()
	// Exchange, when non-nil, routes the recovery-checkpoint mirror and
	// the per-round compare-result message through a lossy netsim link
	// with per-chunk acknowledgements, bounded-retry resend with capped
	// exponential backoff, and idempotent receive. Nil keeps the direct
	// in-process store path.
	Exchange *ExchangeConfig
	// Pipeline selects whether live checkpoint rounds run as three barrier
	// phases (capture all → exchange all → compare all) or as a bounded
	// per-task pipeline where each (node, task) flows into exchange and
	// compare as soon as its own capture finishes. PipelineAuto (the zero
	// value) pipelines exactly when an Exchange link is attached — that is
	// where barrier stalls are link latency, the cost overlap recovers.
	// Chaos runs, SerialCommitPath, and SemiBlocking always pin the
	// barrier path regardless of this setting (see Controller.pipelined).
	Pipeline PipelineMode
	// SerialCommitPath pins the pre-fast-path commit behavior: replicas
	// captured one after the other with two-pass packing and no buffer
	// recycling, and buddies compared serially. It exists as the measured
	// baseline for the benchmark harness (cmd/acrbench) and as an escape
	// hatch. Chaos runs (Chaos != nil) pin the serial schedule implicitly
	// so fault-injection campaign reports stay byte-identical.
	SerialCommitPath bool
	// Chaos, if non-nil, receives fault-injection point firings at the
	// controller's protocol-phase boundaries (consensus, capture,
	// recovery, restart, commit) and is forwarded to the runtime and the
	// checkpoint store. See internal/chaos.
	Chaos point.Hook
}

func (c *Config) validate() error {
	switch {
	case c.NodesPerReplica <= 0 || c.TasksPerNode <= 0:
		return fmt.Errorf("core: invalid machine shape %dx%d", c.NodesPerReplica, c.TasksPerNode)
	case c.Factory == nil:
		return fmt.Errorf("core: Factory is required")
	case c.Scheme < Strong || c.Scheme > Weak:
		return fmt.Errorf("core: unknown scheme %d", c.Scheme)
	case c.RelTol < 0:
		return fmt.Errorf("core: negative RelTol")
	}
	if c.MinInterval <= 0 {
		c.MinInterval = c.CheckpointInterval / 8
		if c.MinInterval <= 0 {
			c.MinInterval = time.Millisecond
		}
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 8 * c.CheckpointInterval
		if c.MaxInterval <= 0 {
			c.MaxInterval = time.Hour
		}
	}
	if c.FlushEvery < 0 {
		return fmt.Errorf("core: negative FlushEvery")
	}
	if c.FlushEvery > 0 && c.FlushRetain <= 0 {
		c.FlushRetain = 2
	}
	if c.RemoteFlushEvery < 0 {
		return fmt.Errorf("core: negative RemoteFlushEvery")
	}
	if c.RemoteFlushEvery > 0 && c.RemoteStore == nil {
		return fmt.Errorf("core: RemoteFlushEvery set but no RemoteStore")
	}
	if c.RemoteStore != nil {
		if c.RemoteFlushEvery == 0 {
			c.RemoteFlushEvery = c.FlushEvery
			if c.RemoteFlushEvery <= 0 {
				c.RemoteFlushEvery = 1
			}
		}
		if c.RemoteRetain <= 0 {
			c.RemoteRetain = 2
		}
	}
	if len(c.ResumeEpochs) > 0 && c.ResumeStore == nil && c.FlushEvery <= 0 {
		return fmt.Errorf("core: ResumeEpochs set but no durable store to resume from (set ResumeStore or FlushEvery)")
	}
	if c.Exchange != nil {
		if err := c.Exchange.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes a completed run. The JSON tags are a stable
// lower_snake schema — the acrd HTTP API and metrics exporter serve these
// fields verbatim, so renaming a tag is a breaking API change; the
// golden-encoding test (stats_json_test.go) pins the schema.
type Stats struct {
	Checkpoints     int             `json:"checkpoints"`  // committed checkpoint rounds
	SDCDetected     int             `json:"sdc_detected"` // mismatches that forced a double rollback
	HardErrors      int             `json:"hard_errors"`  // fail-stop failures recovered
	Rollbacks       int             `json:"rollbacks"`    // replica restarts from a checkpoint (any cause)
	SparesUsed      int             `json:"spares_used"`
	AbortedRounds   int             `json:"aborted_rounds"` // checkpoint rounds interrupted by failures
	Predicted       int             `json:"predicted"`      // checkpoints taken on failure predictions (§2.2)
	FinalInterval   time.Duration   `json:"final_interval_ns"`
	CheckpointTimes []time.Duration `json:"checkpoint_times_ns"` // wall duration of each committed round
	// BlockedTimes is the wall duration the application was actually
	// paused per round; equals CheckpointTimes when blocking, and only
	// the capture time under SemiBlocking.
	BlockedTimes []time.Duration `json:"blocked_times_ns"`
	// CaptureTimes / ExchangeTimes / CompareTimes split each committed
	// round's cost into its phases (parallel arrays with CheckpointTimes):
	// packing+checksumming the replicas, moving checkpoint bytes through
	// the store (Get/Put on the compare and recovery-mirror paths), and
	// deciding match/mismatch. Exchange time is also contained in compare
	// time when the exchange happens inside the comparison loop.
	CaptureTimes  []time.Duration `json:"capture_times_ns"`
	ExchangeTimes []time.Duration `json:"exchange_times_ns"`
	CompareTimes  []time.Duration `json:"compare_times_ns"`
	// CaptureBusyTimes / ExchangeBusyTimes / CompareBusyTimes record, per
	// round, each phase's summed per-task time (parallel arrays with the
	// wall spans above). Under the pipelined round the wall arrays become
	// first-entry→last-exit spans that overlap each other, so per-phase
	// busy > wall means tasks overlapped inside the phase, and
	// wall(capture)+wall(exchange)+wall(compare) > round wall means the
	// phases themselves overlapped — the two signatures of pipelining. On
	// the barrier path busy simply mirrors the wall entries, so existing
	// consumers of the wall arrays see unchanged numbers.
	CaptureBusyTimes  []time.Duration `json:"capture_busy_times_ns"`
	ExchangeBusyTimes []time.Duration `json:"exchange_busy_times_ns"`
	CompareBusyTimes  []time.Duration `json:"compare_busy_times_ns"`
	// PackFastPath / PackSlowPath count task packs that skipped the
	// Sizing traversal via the size-hint fast path versus two-pass packs.
	PackFastPath int64 `json:"pack_fast_path"`
	PackSlowPath int64 `json:"pack_slow_path"`
	// CaptureChunksPacked / CaptureChunksReused split the chunks of every
	// tracked (dirty-spliced) capture into recomputed-and-repacked versus
	// spliced from the previous epoch; CaptureBytesReused counts the packed
	// bytes memcpy'd from the previous stream instead of re-encoded.
	// Untracked captures contribute to neither side (they never splice).
	CaptureChunksPacked int64 `json:"capture_chunks_packed"`
	CaptureChunksReused int64 `json:"capture_chunks_reused"`
	CaptureBytesReused  int64 `json:"capture_bytes_reused"`
	// DirtyRatio is CaptureChunksPacked over the total chunks tracked
	// captures handled — the fraction of state that actually changed per
	// round, the quantity the incremental path's cost is proportional to.
	// 1 when no capture ever spliced (all-dirty fallback throughout).
	DirtyRatio float64 `json:"dirty_ratio"`
	// ExchangeChunksShipped / ExchangeChunksReused count recovery-mirror
	// chunks that crossed the hardened exchange versus chunks the receiver
	// spliced from its retained base checkpoint (same chunk sum). Zero when
	// Config.Exchange is nil.
	ExchangeChunksShipped int64 `json:"exchange_chunks_shipped"`
	ExchangeChunksReused  int64 `json:"exchange_chunks_reused"`
	// Pool is the checkpoint-recycling pool's counter snapshot (zero when
	// no pool was attached).
	Pool    ckptstore.PoolCounters `json:"pool"`
	Elapsed time.Duration          `json:"elapsed_ns"`
	// StoreName identifies the checkpoint-store backend the run used.
	StoreName string `json:"store_name"`
	// Store is the checkpoint store's counter snapshot at run end: bytes
	// written/read, chunks reused by the delta tier, cumulative compare
	// time, and the last localized corrupted chunk.
	Store ckptstore.Counters `json:"store"`
	// LocalizedChunks records, per detected SDC, the chunk index the
	// two-phase comparison attributed the corruption to (-1 when the
	// mismatch could not be localized to one chunk).
	LocalizedChunks []int `json:"localized_chunks"`
	// TierRecoveries counts replica restores per escalation-ladder tier:
	// [0] buddy in-memory checkpoint at the committed epoch, [1] durable
	// flush of the committed epoch, [2] an older complete durable epoch,
	// [3] a remote-tier epoch (every local tier exhausted first).
	TierRecoveries [4]int `json:"tier_recoveries"`
	// RollbackDepths records, per ladder restore, how many committed
	// epochs the restore point lies behind the newest commit (0 for
	// tiers 0 and 1); MaxRollbackDepth is its maximum.
	RollbackDepths   []int `json:"rollback_depths"`
	MaxRollbackDepth int   `json:"max_rollback_depth"`
	// FlushedEpochs / FlushErrors count durable-tier flush completions
	// and failures; BuddyPairLosses counts buddy pairs whose in-memory
	// checkpoints were both destroyed by a double fault.
	FlushedEpochs   int `json:"flushed_epochs"`
	FlushErrors     int `json:"flush_errors"`
	BuddyPairLosses int `json:"buddy_pair_losses"`
	// RemoteFlushedEpochs / RemoteFlushErrors count remote-tier (tier 3)
	// flush completions and failures; Remote is the resilient remote
	// wrapper's retry/breaker/failover counter snapshot (zero when
	// Config.RemoteStore is nil or unwrapped).
	RemoteFlushedEpochs int                      `json:"remote_flushed_epochs"`
	RemoteFlushErrors   int                      `json:"remote_flush_errors"`
	Remote              ckptstore.ResilientStats `json:"remote"`
	// Folds counts spare-exhaustion folds onto a survivor; Expands counts
	// folded nodes later re-expanded onto freed spares; DegradedNodes is
	// how many logical nodes were still folded at run end.
	Folds         int `json:"folds"`
	Expands       int `json:"expands"`
	DegradedNodes int `json:"degraded_nodes"`
	// ResumedEpoch is the durable epoch the job warm-started from via
	// Config.ResumeEpochs (0 = cold start from factory state).
	ResumedEpoch uint64 `json:"resumed_epoch"`
	// ExchangeFrames / ExchangeRetries count frames offered to the lossy
	// link (data, acks, and resends) and frame-level retransmissions;
	// Link is the link's own loss/duplication/reorder accounting. All
	// zero when Config.Exchange is nil.
	ExchangeFrames  int64            `json:"exchange_frames"`
	ExchangeRetries int64            `json:"exchange_retries"`
	Link            netsim.LinkStats `json:"link"`
}

// Controller runs an ACR job.
type Controller struct {
	cfg     Config
	machine *runtime.Machine
	coord   *consensus.Coordinator
	store   ckptstore.Store
	// pool recycles retired checkpoints from Evict back into capture; nil
	// when the store does not support recycling or the serial path is
	// pinned.
	pool *ckptstore.Pool

	// flushStore is the hooked durable tier behind Config.FlushEvery; nil
	// when flushing is disabled. ownedFlush is set when the controller
	// created (and must close) the tier itself.
	flushStore ckptstore.Store
	ownedFlush *ckptstore.Disk
	// flushMu guards flushedEpochs (ascending, complete durable epochs);
	// flushWG tracks in-flight asynchronous flush writes. flushedCount /
	// flushErrs are written by the async writer, harvested at Run end.
	flushMu       sync.Mutex
	flushedEpochs []uint64
	flushWG       sync.WaitGroup
	flushedCount  atomic.Int64
	flushErrs     atomic.Int64
	// commitLog lists committed epochs in commit order (eventLoop only);
	// commitsSinceFlush counts commits toward the next flush.
	commitLog         []uint64
	commitsSinceFlush int

	// remoteStore is the remote checkpoint tier (tier 3 of the ladder);
	// nil when Config.RemoteStore is nil. The remote flush machinery
	// mirrors the local flush machinery above.
	remoteStore        ckptstore.Store
	remoteMu           sync.Mutex
	remoteEpochs       []uint64
	remoteWG           sync.WaitGroup
	remoteCount        atomic.Int64
	remoteErrs         atomic.Int64
	commitsSinceRemote int

	// exch is the hardened exchange protocol driver; nil when
	// Config.Exchange is nil.
	exch *exchanger

	// roundCapture / roundCompare accumulate the current round's phase
	// wall times; roundExchange totals store Get/Put time observed inside
	// capture-adjacent paths (recovery mirroring) and the comparison loop.
	// They are reset as each phase starts and harvested by commit.
	roundCapture  time.Duration
	roundCompare  time.Duration
	roundExchange atomicDuration
	// roundBusy holds the pipelined round's overlap-aware phase
	// accounting (wall spans + summed per-task busy time). Barrier rounds
	// leave it unset and commit mirrors the wall times into the busy
	// arrays instead. Reset alongside the fields above.
	roundBusy *pipePhaseTimes

	// committedEpoch is the last verified (or trusted) checkpoint epoch in
	// the store; 0 = job start, nothing committed. epochSeq is the last
	// epoch handed out to a capture (aborted rounds burn epochs; they are
	// reclaimed by the eviction at the next commit).
	committedEpoch uint64
	epochSeq       uint64

	history  failure.History
	interval time.Duration
	start    time.Time
	stats    Stats

	// pendingWeak[rep] marks a crashed replica awaiting weak-scheme
	// recovery at the next periodic checkpoint.
	pendingWeak [2]bool
	// pendingSDC queues safe-point corruption injections: at the next
	// checkpoint round, just before packing, one random bit of the
	// task's user data is flipped (§6.1). Guarded by sdcMu: injections
	// may arrive from other goroutines while the run loop drains them.
	sdcMu      sync.Mutex
	pendingSDC []runtime.Addr
	// injectSeed drives deterministic corruption placement.
	injectSeed int64

	waitErr   chan error
	predictCh chan struct{}
	// opCh carries control-plane operations (forced flush, on-demand
	// restore) onto the controller goroutine, where they run between
	// rounds with exclusive access to the protocol state. See ops.go.
	opCh chan func()

	// prog mirrors the protocol counters into atomics so Progress() can
	// serve live snapshots to pollers (the acrd API) without touching the
	// controller goroutine's unsynchronized stats.
	prog progressCounters
}

// New builds a controller. Call Run to execute the job.
func New(cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	coord := consensus.New(cfg.NodesPerReplica, cfg.TasksPerNode)
	m, err := runtime.NewMachine(runtime.Config{
		NodesPerReplica:   cfg.NodesPerReplica,
		TasksPerNode:      cfg.TasksPerNode,
		Spares:            cfg.Spares,
		Factory:           cfg.Factory,
		Gate:              coord,
		MailboxCap:        cfg.MailboxCap,
		HeartbeatInterval: cfg.HeartbeatInterval,
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
		Chaos:             cfg.Chaos,
	})
	if err != nil {
		return nil, err
	}
	st := cfg.Store
	var pool *ckptstore.Pool
	if st == nil {
		st = ckptstore.NewMem()
		// The controller owns this store exclusively, so recycling evicted
		// checkpoints back into capture is safe: nothing outside the commit
		// path can hold Bytes() of an evictable epoch. A caller-supplied
		// store is left unpooled — the caller may retain checkpoint views —
		// but can opt in through ckptstore.Recycler before passing it.
		if !cfg.SerialCommitPath {
			if rec, ok := st.(ckptstore.Recycler); ok {
				pool = ckptstore.NewPool(0)
				rec.SetPool(pool)
			}
		}
	}
	// Interpose the injection hook on the store's read/write paths so
	// at-rest corruption campaigns see every checkpoint that lands.
	st = ckptstore.WithHook(st, cfg.Chaos)
	ctrl := &Controller{
		pool:       pool,
		cfg:        cfg,
		machine:    m,
		coord:      coord,
		store:      st,
		interval:   cfg.CheckpointInterval,
		injectSeed: 1,
		waitErr:    make(chan error, 1),
		predictCh:  make(chan struct{}, 8),
		opCh:       make(chan func()),
	}
	if cfg.FlushEvery > 0 {
		fs := cfg.FlushStore
		if fs == nil {
			d, err := ckptstore.NewDisk("", nil)
			if err != nil {
				return nil, fmt.Errorf("core: create durable flush tier: %w", err)
			}
			ctrl.ownedFlush = d
			fs = d
		}
		ctrl.flushStore = ckptstore.WithHook(fs, cfg.Chaos)
	}
	// The remote tier is used as configured, without the store-level
	// corruption hook: it fires its own remote.put / remote.get points
	// (ckptstore.Remote), and interposing StoreWrite here would shift the
	// occurrence counts existing at-rest corruption scenarios trigger on.
	ctrl.remoteStore = cfg.RemoteStore
	if cfg.Exchange != nil {
		ctrl.exch = newExchanger(ctrl, *cfg.Exchange)
	}
	return ctrl, nil
}

// PredictFailure notifies ACR of an anticipated hard error (an online
// failure predictor's output, §2.2): the controller schedules an immediate
// dynamic checkpoint, so that if the predicted failure materializes the
// rework window is nearly empty. Safe to call from any goroutine.
func (c *Controller) PredictFailure() {
	select {
	case c.predictCh <- struct{}{}:
	default: // a prediction is already queued; one checkpoint suffices
	}
}

// Machine exposes the underlying runtime machine (for tests and demos).
func (c *Controller) Machine() *runtime.Machine { return c.machine }

// Store exposes the checkpoint store the controller commits through (for
// tests and demos).
func (c *Controller) Store() ckptstore.Store { return c.store }

// InjectSDCAtNextCheckpoint schedules a single-bit corruption of the given
// task's user data at the next checkpoint round (applied at the quiescent
// point just before packing, which makes the injection race-free while
// preserving the paper's semantics: corrupted state enters the local
// checkpoint and is caught — or missed — by the comparison).
func (c *Controller) InjectSDCAtNextCheckpoint(addr runtime.Addr) {
	c.sdcMu.Lock()
	c.pendingSDC = append(c.pendingSDC, addr)
	c.sdcMu.Unlock()
}

// KillNode injects a fail-stop error (for tests/demos without an external
// failure plan).
func (c *Controller) KillNode(rep, node int) { c.machine.Kill(rep, node) }

func (c *Controller) now() float64 { return time.Since(c.start).Seconds() }

func (c *Controller) mark(k trace.Kind, detail string) {
	if c.cfg.Timeline != nil {
		c.cfg.Timeline.Add(c.now(), k, detail)
	}
}

// fire notifies the chaos hook of a protocol-phase injection point.
func (c *Controller) fire(id point.ID, info point.Info) {
	if c.cfg.Chaos != nil {
		c.cfg.Chaos.Fire(id, &info)
	}
}

// Run executes the job to completion, handling failures per the configured
// scheme. It returns the run statistics and the first unrecoverable error,
// if any.
func (c *Controller) Run() (Stats, error) {
	c.start = time.Now()
	c.machine.Start()
	err := c.resumeFromDurable()
	go func() { c.waitErr <- c.machine.Wait() }()

	if err == nil {
		err = c.eventLoop()
	}
	c.machine.Stop()
	c.flushWG.Wait()
	c.remoteWG.Wait()
	if c.ownedFlush != nil {
		if cerr := c.ownedFlush.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("core: close durable flush tier: %w", cerr)
		}
	}
	c.stats.FinalInterval = c.interval
	c.stats.Elapsed = time.Since(c.start)
	c.stats.StoreName = c.store.Name()
	c.stats.Store = c.store.Counters()
	c.stats.PackFastPath, c.stats.PackSlowPath = c.machine.PackCounters()
	c.stats.CaptureChunksPacked, c.stats.CaptureChunksReused, c.stats.CaptureBytesReused = c.machine.DirtyCounters()
	c.stats.DirtyRatio = 1
	if total := c.stats.CaptureChunksPacked + c.stats.CaptureChunksReused; total > 0 {
		c.stats.DirtyRatio = float64(c.stats.CaptureChunksPacked) / float64(total)
	}
	if c.pool != nil {
		c.stats.Pool = c.pool.Counters()
	}
	c.stats.FlushedEpochs = int(c.flushedCount.Load())
	c.stats.FlushErrors = int(c.flushErrs.Load())
	c.stats.RemoteFlushedEpochs = int(c.remoteCount.Load())
	c.stats.RemoteFlushErrors = int(c.remoteErrs.Load())
	if c.remoteStore != nil {
		if rs, ok := ckptstore.ResilientStatsOf(c.remoteStore); ok {
			c.stats.Remote = rs
		}
	}
	c.stats.DegradedNodes = c.machine.FoldedCount()
	c.stats.Expands = int(c.machine.ExpandCount())
	if c.exch != nil {
		c.stats.Link = c.exch.link.Stats()
		c.stats.ExchangeChunksShipped = c.exch.chunksShipped.Load()
		c.stats.ExchangeChunksReused = c.exch.chunksReused.Load()
		c.stats.ExchangeFrames = c.exch.frames.Load()
		c.stats.ExchangeRetries = c.exch.retries.Load()
	}
	return c.stats, err
}

// FreeSpare models a repaired node rejoining the job: a fresh spare is
// added to the pool and, if the job is running degraded, folded nodes are
// re-expanded onto it (oldest fold first). Safe to call from any
// goroutine.
func (c *Controller) FreeSpare() {
	c.machine.AddSpare()
	if n := c.machine.ExpandFolded(); n > 0 {
		c.mark(trace.Fold, fmt.Sprintf("%d folded node(s) re-expanded onto freed spare", n))
	}
}

// atomicDuration is a duration accumulated from concurrent workers.
type atomicDuration struct{ ns atomic.Int64 }

func (d *atomicDuration) Reset()              { d.ns.Store(0) }
func (d *atomicDuration) Add(x time.Duration) { d.ns.Add(int64(x)) }
func (d *atomicDuration) Load() time.Duration { return time.Duration(d.ns.Load()) }

func (c *Controller) eventLoop() error {
	var timer *time.Timer
	var timerC <-chan time.Time
	arm := func() {
		if c.cfg.CheckpointInterval <= 0 {
			return
		}
		if timer != nil {
			timer.Stop()
		}
		timer = time.NewTimer(c.interval)
		timerC = timer.C
	}
	arm()
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()

	for {
		select {
		case err := <-c.waitErr:
			if err != nil {
				return err
			}
			if c.machine.Done() {
				return nil
			}
			// Stale completion: the job finished but was rolled back
			// since; re-arm the waiter.
			go func() { c.waitErr <- c.machine.Wait() }()
		case f := <-c.machine.Failures():
			if err := c.handleFailure(f); err != nil {
				return err
			}
			arm()
		case <-timerC:
			if err := c.checkpointRound(); err != nil {
				return err
			}
			arm()
		case <-c.predictCh:
			c.stats.Predicted++
			c.mark(trace.Progress, "failure predicted: dynamic checkpoint")
			if err := c.checkpointRound(); err != nil {
				return err
			}
			arm()
		case op := <-c.opCh:
			// Control-plane operation (forced flush, on-demand restore):
			// runs with the protocol quiescent between rounds.
			op()
			arm()
		}
	}
}

// adaptInterval re-derives the checkpoint period from the failure history
// using the Young/Daly first-order optimum with the *current* fitted MTBF.
func (c *Controller) adaptInterval() {
	if !c.cfg.Adaptive {
		return
	}
	var mtbf float64
	var ok bool
	switch c.cfg.Estimator {
	case MeanEstimator:
		mtbf, ok = c.history.MeanMTBF()
	case WeibullEstimator:
		mtbf, ok = c.history.WeibullMTBF(c.now())
	default:
		mtbf, ok = c.history.CurrentMTBF(c.now())
	}
	if !ok {
		return
	}
	delta, measured := c.avgCheckpointSeconds()
	if !measured {
		// No committed round yet, so no delta to plug into Young/Daly.
		// Fall back to the most protective legal interval — checkpoint at
		// MinInterval until a real measurement exists — instead of
		// guessing the cost from the configured interval.
		c.interval = c.cfg.MinInterval
		return
	}
	tau := math.Sqrt(2 * delta * mtbf)
	d := time.Duration(tau * float64(time.Second))
	if d < c.cfg.MinInterval {
		d = c.cfg.MinInterval
	}
	if d > c.cfg.MaxInterval {
		d = c.cfg.MaxInterval
	}
	c.interval = d
}

// avgCheckpointSeconds returns the mean wall duration of the committed
// checkpoint rounds; measured is false while no round has committed.
func (c *Controller) avgCheckpointSeconds() (delta float64, measured bool) {
	if len(c.stats.CheckpointTimes) == 0 {
		return 0, false
	}
	var sum time.Duration
	for _, d := range c.stats.CheckpointTimes {
		sum += d
	}
	return (sum / time.Duration(len(c.stats.CheckpointTimes))).Seconds(), true
}

package core

import (
	"testing"

	"acr/internal/ckptstore"
	"acr/internal/runtime"
)

// The controller must commit, compare and restart exclusively through the
// configured store backend, and surface its counters in Stats.
func TestRunThroughConfiguredStoreBackends(t *testing.T) {
	backends := map[string]func(t *testing.T) ckptstore.Store{
		"mem":   func(t *testing.T) ckptstore.Store { return ckptstore.NewMem() },
		"delta": func(t *testing.T) ckptstore.Store { return ckptstore.NewDelta() },
		"disk": func(t *testing.T) ckptstore.Store {
			st, err := ckptstore.NewDisk(t.TempDir(), nil)
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
	}
	for name, mk := range backends {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig(2, 2, 3000)
			cfg.Comparison = ChecksumCompare
			cfg.Store = mk(t)
			ctrl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 1, Node: 0, Task: 1})
			stats, err := ctrl.Run()
			if err != nil {
				t.Fatal(err)
			}
			if stats.StoreName != name {
				t.Fatalf("StoreName = %q, want %q", stats.StoreName, name)
			}
			if stats.SDCDetected == 0 {
				t.Fatal("injected SDC was not detected")
			}
			// The two-phase compare must have localized the corruption to a
			// concrete chunk.
			if len(stats.LocalizedChunks) == 0 {
				t.Fatal("no localized chunk recorded for the detected SDC")
			}
			for _, chunk := range stats.LocalizedChunks {
				if chunk < 0 {
					t.Fatalf("unlocalized chunk index %d in %v", chunk, stats.LocalizedChunks)
				}
			}
			if stats.Store.Puts == 0 || stats.Store.BytesWritten == 0 {
				t.Fatalf("store counters not populated: %+v", stats.Store)
			}
			if stats.Store.Compares == 0 || stats.Store.Mismatches == 0 {
				t.Fatalf("compare counters not populated: %+v", stats.Store)
			}
			if stats.Store.CompareTime <= 0 {
				t.Fatalf("compare time not accrued: %+v", stats.Store)
			}
			verifyFinalState(t, ctrl, 2, 2, 3000)
		})
	}
}

package core

import (
	"fmt"
	"math"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"acr/internal/ckptstore"
	"acr/internal/runtime"
	"acr/internal/trace"
)

// This file implements the pipelined live checkpoint round. The barrier
// schedule in rounds.go runs capture → exchange → compare as three strict
// phases over the whole machine, so with a hardened exchange link every
// task behind the one in flight spends the link's round trips idle. The
// pipeline keeps the same three stages but connects them with channels and
// bounded worker pools: each (node, task) flows into exchange the moment
// both of its replica captures land in the store, and into compare the
// moment its shipped copy is verified — capture CPU, link flight time, and
// compare CPU for different tasks overlap.
//
// Determinism contract: the pipeline never runs under chaos hooks,
// SerialCommitPath, or SemiBlocking (Controller.pipelined pins those to
// the barrier path), and its commit/mismatch decisions are bit-identical
// to the serial walk anyway — per-task outcomes are recorded in a dense
// array and resolved in (node, task) order after the stages drain, with no
// early cancellation, so the lowest-(node, task) outcome wins exactly as
// in compareSerial. Shipped checkpoints are root-verified against their
// source and then discarded; comparison always reads the store's
// canonical bytes.

// pipePhaseTimes is one round's overlap-aware phase accounting: per phase,
// the wall-clock span from its first task entering to its last task
// leaving, and the summed per-task busy time. Spans of different phases
// overlap each other under the pipeline; busy > wall within a phase means
// tasks overlapped inside it.
type pipePhaseTimes struct {
	captureWall, captureBusy   time.Duration
	exchangeWall, exchangeBusy time.Duration
	compareWall, compareBusy   time.Duration
}

// stageClock accumulates one stage's busy time and wall span from
// concurrent workers. first/last hold nanosecond offsets from the round
// base, CAS-min/maxed per observation.
type stageClock struct {
	busy  atomicDuration
	first atomic.Int64
	last  atomic.Int64
}

func (s *stageClock) init() {
	s.first.Store(math.MaxInt64)
	s.last.Store(math.MinInt64)
}

// observe folds one task's stage occupancy [start, now) into the clock.
func (s *stageClock) observe(base, start time.Time) {
	end := time.Now()
	s.busy.Add(end.Sub(start))
	so, eo := start.Sub(base).Nanoseconds(), end.Sub(base).Nanoseconds()
	for {
		cur := s.first.Load()
		if so >= cur || s.first.CompareAndSwap(cur, so) {
			break
		}
	}
	for {
		cur := s.last.Load()
		if eo <= cur || s.last.CompareAndSwap(cur, eo) {
			break
		}
	}
}

// wall is the stage's first-entry→last-exit span (0 when nothing ran).
func (s *stageClock) wall() time.Duration {
	f, l := s.first.Load(), s.last.Load()
	if f == math.MaxInt64 || l < f {
		return 0
	}
	return time.Duration(l - f)
}

// pipelined reports whether live rounds (and the recovery mirror) run the
// per-task pipeline. Chaos campaigns and SerialCommitPath pin the barrier
// path unconditionally — hook firing order, store-op order, and frame
// schedules are part of their byte-identical-report contract. SemiBlocking
// pins too: its release point is "after capture, before compare", a
// boundary the pipeline deliberately dissolves.
func (c *Controller) pipelined() bool {
	if c.cfg.Chaos != nil || c.cfg.SerialCommitPath || c.cfg.SemiBlocking {
		return false
	}
	switch c.cfg.Pipeline {
	case PipelineOff:
		return false
	case PipelineOn:
		return true
	default:
		return c.exch != nil
	}
}

// pipeOutcome records one (node, task)'s results across the stages. An
// item that fails a stage never enters the next one; its later fields
// stay zero.
type pipeOutcome struct {
	capErr   error
	exErr    error
	mismatch string
	chunk    int
	cmpErr   error
}

// pipelineExchangeWorkers bounds the exchange stage's concurrency. The
// stage is latency-bound, not CPU-bound — its workers spend their time in
// link round-trip sleeps — so the bound is about not flooding the wire
// arbitration mutex, not about cores.
const pipelineExchangeWorkers = 32

// pipelinedRound runs capture → exchange → compare for every (node, task)
// as a channel-connected pipeline and returns the round's verdict with
// the exact semantics of the barrier path: first (lowest node, task)
// mismatch or error wins. It fills the controller's phase accumulators
// (roundCapture/roundExchange/roundCompare as wall spans, roundBusy with
// the busy sums) before returning.
func (c *Controller) pipelinedRound(epoch uint64) (string, int, error) {
	nodes, tasks := c.cfg.NodesPerReplica, c.cfg.TasksPerNode
	total := nodes * tasks
	out := make([]pipeOutcome, total)
	base := time.Now()
	var capClock, exClock, cmpClock stageClock
	capClock.init()
	exClock.init()
	cmpClock.init()

	opts := c.captureOptions()
	ship := c.exch != nil && c.cfg.Exchange.ShipCheckpoints

	capWorkers := c.cfg.ChecksumWorkers
	if capWorkers <= 0 {
		capWorkers = stdruntime.GOMAXPROCS(0)
	}
	if capWorkers > total {
		capWorkers = total
	}
	cmpWorkers := c.compareWorkers()
	if cmpWorkers > total {
		cmpWorkers = total
	}

	toCmp := make(chan int, total)
	capOut := toCmp
	var toEx chan int
	if ship {
		toEx = make(chan int, total)
		capOut = toEx
	}

	// Stage 1: capture. Workers claim dense item indices and capture both
	// replicas of the task back to back — once the consensus cut parked
	// everything, the two replicas of one task share nothing, and the
	// runtime's capture path is already safe for concurrent distinct
	// addresses (CaptureReplica's own pool does the same).
	var capWG sync.WaitGroup
	var next atomic.Int64
	capWG.Add(capWorkers)
	for w := 0; w < capWorkers; w++ {
		go func() {
			defer capWG.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				n, t := i/tasks, i%tasks
				began := time.Now()
				err := c.machine.CaptureTask(runtime.Addr{Replica: 0, Node: n, Task: t}, epoch, c.store, opts)
				if err == nil {
					err = c.machine.CaptureTask(runtime.Addr{Replica: 1, Node: n, Task: t}, epoch, c.store, opts)
				}
				capClock.observe(base, began)
				if err != nil {
					out[i].capErr = err
					continue
				}
				capOut <- i
			}
		}()
	}
	go func() {
		capWG.Wait()
		close(capOut)
	}()

	// Stage 2: exchange (only when checkpoints ride the link). Each item
	// ships its freshly captured checkpoint chunk-by-chunk with acks and
	// retries; the workers overlap their round-trip sleeps, which is
	// where the pipeline's speedup lives.
	if ship {
		exWorkers := pipelineExchangeWorkers
		if exWorkers > total {
			exWorkers = total
		}
		var exWG sync.WaitGroup
		exWG.Add(exWorkers)
		for w := 0; w < exWorkers; w++ {
			go func() {
				defer exWG.Done()
				for i := range toEx {
					began := time.Now()
					err := c.shipTask(epoch, i/tasks, i%tasks)
					exClock.observe(base, began)
					if err != nil {
						out[i].exErr = err
						continue
					}
					toCmp <- i
				}
			}()
		}
		go func() {
			exWG.Wait()
			close(toCmp)
		}()
	}

	// Stage 3: compare. No early cancellation — every forwarded item is
	// compared and its outcome recorded; order resolution happens below.
	var cmpWG sync.WaitGroup
	cmpWG.Add(cmpWorkers)
	for w := 0; w < cmpWorkers; w++ {
		go func() {
			defer cmpWG.Done()
			for i := range toCmp {
				began := time.Now()
				mismatch, chunk, err := c.compareTask(i/tasks, i%tasks, epoch)
				cmpClock.observe(base, began)
				out[i].mismatch, out[i].chunk, out[i].cmpErr = mismatch, chunk, err
			}
		}()
	}
	cmpWG.Wait()

	// Harvest overlap-aware phase times. compareTask billed its store
	// fetches to roundExchange (the bytes a real machine ships between
	// buddies); fold that into exchange busy and let the wall arrays
	// carry the true stage spans.
	storeExch := c.roundExchange.Load()
	c.roundCapture = capClock.wall()
	c.roundCompare = cmpClock.wall()
	c.roundExchange.Reset()
	c.roundExchange.Add(exClock.wall())
	c.roundBusy = &pipePhaseTimes{
		captureWall:  capClock.wall(),
		captureBusy:  capClock.busy.Load(),
		exchangeWall: exClock.wall(),
		exchangeBusy: exClock.busy.Load() + storeExch,
		compareWall:  cmpClock.wall(),
		compareBusy:  cmpClock.busy.Load() + storeExch,
	}
	c.mark(trace.Pipeline, fmt.Sprintf(
		"pipelined round e%d: capture %v/%v exchange %v/%v compare %v/%v (busy/wall, %d tasks)",
		epoch, c.roundBusy.captureBusy, c.roundBusy.captureWall,
		c.roundBusy.exchangeBusy, c.roundBusy.exchangeWall,
		c.roundBusy.compareBusy, c.roundBusy.compareWall, total))

	// Resolve outcomes in (node, task) order — identical verdict to the
	// serial walk. Capture errors outrank exchange errors outrank compare
	// outcomes, mirroring the barrier phases' abort order.
	for i := range out {
		if out[i].capErr != nil {
			return "", -1, fmt.Errorf("core: capture n%d/t%d: %w", i/tasks, i%tasks, out[i].capErr)
		}
	}
	for i := range out {
		if out[i].exErr != nil {
			return "", -1, out[i].exErr
		}
	}
	for i := range out {
		if out[i].mismatch != "" || out[i].cmpErr != nil {
			return out[i].mismatch, out[i].chunk, out[i].cmpErr
		}
	}
	return "", -1, nil
}

// shipTask ships one task's freshly captured checkpoint (replica 0's
// copy, the one compare treats as "shipped over") through the hardened
// link, delta-aware against the receiver's retained last committed epoch.
// The reassembled copy is root-verified inside shipCheckpoint and then
// discarded: the wire cost is fully modeled, while comparison keeps
// reading the store's canonical bytes, so round verdicts stay
// bit-identical to the direct path.
func (c *Controller) shipTask(epoch uint64, n, t int) error {
	src, err := c.store.Get(c.key(0, n, t, epoch))
	if err != nil {
		return fmt.Errorf("core: ship checkpoint n%d/t%d@e%d: %w", n, t, epoch, err)
	}
	var base *ckptstore.Checkpoint
	if ce := c.committedEpoch; ce > 0 {
		// The buddy usually still holds this task's last committed
		// checkpoint; chunks with matching sums need not cross the link
		// again. A miss (nil) degrades to a full ship.
		base, _ = c.store.Get(c.key(0, n, t, ce))
	}
	if _, err := c.exch.shipCheckpoint(epoch, n, t, src, base); err != nil {
		return fmt.Errorf("core: ship checkpoint n%d/t%d@e%d: %w", n, t, epoch, err)
	}
	return nil
}

// shipEpochBarrier is the barrier path's exchange phase when live rounds
// ship checkpoints over the link (ExchangeConfig.ShipCheckpoints) but the
// pipeline is off: every task ships serially, one after the other — the
// schedule whose dead time the pipeline exists to reclaim. Billed to the
// round's exchange phase.
func (c *Controller) shipEpochBarrier(epoch uint64) error {
	if c.exch == nil || !c.cfg.Exchange.ShipCheckpoints {
		return nil
	}
	began := time.Now()
	defer func() { c.roundExchange.Add(time.Since(began)) }()
	for n := 0; n < c.cfg.NodesPerReplica; n++ {
		for t := 0; t < c.cfg.TasksPerNode; t++ {
			if err := c.shipTask(epoch, n, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// mirrorEpoch implements the recovery round's exchange phase: the healthy
// replica's stored checkpoints are mirrored under the crashed replica's
// keys — through the hardened link (delta-aware, reassembled copy stored)
// when one is attached, by shared reference otherwise. When the pipeline
// is enabled the per-task transfers run on a bounded worker pool so their
// link round trips overlap; error resolution is by lowest (node, task),
// matching the serial walk.
func (c *Controller) mirrorEpoch(crashed, healthy int, epoch uint64) error {
	nodes, tasks := c.cfg.NodesPerReplica, c.cfg.TasksPerNode
	total := nodes * tasks
	mirrorOne := func(n, t int) error {
		ck, err := c.store.Get(c.key(healthy, n, t, epoch))
		if err != nil {
			return fmt.Errorf("core: mirror recovery checkpoint: %w", err)
		}
		if c.exch != nil {
			// The crashed side usually still holds the last committed
			// epoch's checkpoint for this task; chunks whose sums match
			// need not cross the lossy link again. A miss (nil base)
			// degrades to a full ship.
			var base *ckptstore.Checkpoint
			if c.committedEpoch > 0 {
				base, _ = c.store.Get(c.key(crashed, n, t, c.committedEpoch))
			}
			ck, err = c.exch.shipCheckpoint(epoch, n, t, ck, base)
			if err != nil {
				return fmt.Errorf("core: exchange recovery checkpoint: %w", err)
			}
		}
		if err := c.store.Put(c.key(crashed, n, t, epoch), ck); err != nil {
			return fmt.Errorf("core: mirror recovery checkpoint: %w", err)
		}
		return nil
	}
	if !c.pipelined() || total == 1 {
		for n := 0; n < nodes; n++ {
			for t := 0; t < tasks; t++ {
				if err := mirrorOne(n, t); err != nil {
					return err
				}
			}
		}
		return nil
	}
	workers := pipelineExchangeWorkers
	if workers > total {
		workers = total
	}
	errs := make([]error, total)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				errs[i] = mirrorOne(i/tasks, i%tasks)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"acr/internal/checksum"
	"acr/internal/consensus"
	"acr/internal/failure"
	"acr/internal/pup"
	"acr/internal/runtime"
	"acr/internal/trace"
)

// checkpointRound performs one automatic checkpoint: weak-scheme recovery
// if one is pending, otherwise a coordinated two-replica checkpoint with
// SDC detection.
func (c *Controller) checkpointRound() error {
	switch {
	case c.pendingWeak[0] && c.pendingWeak[1]:
		// Both replicas lost nodes before recovery: fall back to the
		// previous checkpoint (§2.3, weak scheme's failure case).
		c.pendingWeak[0], c.pendingWeak[1] = false, false
		c.mark(trace.Restart, "double failure: rollback to previous checkpoint")
		return c.rollbackBoth()
	case c.pendingWeak[0]:
		return c.recoveryCheckpoint(0)
	case c.pendingWeak[1]:
		return c.recoveryCheckpoint(1)
	}
	return c.normalRound()
}

// normalRound checkpoints both replicas and cross-checks buddies.
func (c *Controller) normalRound() error {
	began := time.Now()
	ready, err := c.coord.Request(consensus.BothReplicas)
	if err != nil {
		return fmt.Errorf("core: checkpoint request: %w", err)
	}
	ok, err := c.awaitReady(ready)
	if err != nil || !ok {
		return err
	}
	// All tasks are parked (or done): apply any scheduled SDC
	// injections, then capture both replicas.
	c.applyPendingSDC(consensus.BothReplicas)
	snap, err := c.captureBoth()
	if err != nil {
		c.coord.Release()
		return err
	}
	blocked := time.Since(began)
	if c.cfg.SemiBlocking {
		// Asynchronous checkpointing (§4.2 [27]): the application
		// resumes as soon as the local capture is done; the exchange
		// and comparison overlap with execution. The tolerance-aware
		// live-state comparison is unavailable here (the state is
		// moving again), so the captured bytes are compared directly.
		c.coord.Release()
	}
	mismatch, err := c.compare(snap)
	if err != nil {
		if !c.cfg.SemiBlocking {
			c.coord.Release()
		}
		return err
	}
	if mismatch != "" {
		// Silent data corruption: both replicas roll back to the
		// previous safely stored checkpoint (§2.1). Under semi-blocking
		// the application also loses the overlap window it just ran.
		c.stats.SDCDetected++
		c.mark(trace.Failure, "sdc detected: "+mismatch)
		if !c.cfg.SemiBlocking {
			c.coord.Release()
		}
		return c.rollbackBoth()
	}
	c.commit(snap, began)
	c.stats.BlockedTimes = append(c.stats.BlockedTimes, blocked)
	if !c.cfg.SemiBlocking {
		c.coord.Release()
	}
	return nil
}

// recoveryCheckpoint is the weak-scheme recovery: the healthy replica
// checkpoints, and the crashed replica is restored from it (Figure 5d).
// The same path implements the medium scheme's forced checkpoint when
// called directly from handleFailure (Figure 5c).
func (c *Controller) recoveryCheckpoint(crashed int) error {
	healthy := 1 - crashed
	began := time.Now()
	ready, err := c.coord.Request(consensus.OnlyReplica(healthy))
	if err != nil {
		return fmt.Errorf("core: recovery checkpoint request: %w", err)
	}
	ok, err := c.awaitReady(ready)
	if err != nil || !ok {
		return err
	}
	c.applyPendingSDC(consensus.OnlyReplica(healthy))
	snap := newSnapshotShell(c.cfg.NodesPerReplica, c.cfg.TasksPerNode)
	snap.when = time.Now()
	for n := 0; n < c.cfg.NodesPerReplica; n++ {
		for t := 0; t < c.cfg.TasksPerNode; t++ {
			data, err := c.machine.PackTask(runtime.Addr{Replica: healthy, Node: n, Task: t})
			if err != nil {
				c.coord.Release()
				return fmt.Errorf("core: pack healthy replica: %w", err)
			}
			// The healthy node's local checkpoint is simultaneously the
			// remote checkpoint of its buddy in the crashed replica:
			// "sends the checkpoint to the crashed replica" (§2.3).
			snap.data[healthy][n][t] = data
			snap.data[crashed][n][t] = data
		}
	}
	// This checkpoint is trusted without comparison: SDC that struck the
	// healthy replica since the last verified checkpoint is undetectable
	// here — the medium/weak vulnerability window of §2.3 and Figure 7b.
	c.committed = snap
	c.stats.Checkpoints++
	c.stats.CheckpointTimes = append(c.stats.CheckpointTimes, time.Since(began))
	c.mark(trace.Checkpoint, fmt.Sprintf("recovery checkpoint by replica %d", healthy))
	// Restore the crashed replica from the fresh checkpoint.
	if err := c.restartReplicaFrom(crashed, snap); err != nil {
		c.coord.Release()
		return err
	}
	c.mark(trace.Restart, fmt.Sprintf("replica %d restored from replica %d's checkpoint", crashed, healthy))
	c.pendingWeak[crashed] = false
	c.coord.Release()
	return nil
}

// awaitReady waits for the consensus cut while staying responsive to
// failures and job completion. It returns ok=false when the round was
// aborted (a failure won the race and was handled).
func (c *Controller) awaitReady(ready <-chan int) (bool, error) {
	wait := c.waitErr
	for {
		select {
		case <-ready:
			return true, nil
		case f := <-c.machine.Failures():
			// A hard error interrupts the round: abort, recover, retry
			// at the next period.
			c.stats.AbortedRounds++
			c.coord.Release()
			if err := c.handleFailure(f); err != nil {
				return false, err
			}
			return false, nil
		case err := <-wait:
			if err != nil {
				c.coord.Release()
				return false, err
			}
			// Job completed: the cut is trivially ready (completed
			// tasks count as parked), so it will fire momentarily.
			// Hand the completion signal back for the event loop and
			// stop watching it here.
			go func() { c.waitErr <- c.machine.Wait() }()
			wait = nil
		}
	}
}

// captureBoth packs every task of both replicas while parked.
func (c *Controller) captureBoth() (*snapshot, error) {
	snap := newSnapshotShell(c.cfg.NodesPerReplica, c.cfg.TasksPerNode)
	snap.when = time.Now()
	for rep := 0; rep < 2; rep++ {
		for n := 0; n < c.cfg.NodesPerReplica; n++ {
			for t := 0; t < c.cfg.TasksPerNode; t++ {
				data, err := c.machine.PackTask(runtime.Addr{Replica: rep, Node: n, Task: t})
				if err != nil {
					return nil, fmt.Errorf("core: pack r%d/n%d/t%d: %w", rep, n, t, err)
				}
				snap.data[rep][n][t] = data
			}
		}
	}
	return snap, nil
}

// compare cross-checks buddy checkpoints and returns a description of the
// first mismatch ("" when clean).
func (c *Controller) compare(snap *snapshot) (string, error) {
	for n := 0; n < c.cfg.NodesPerReplica; n++ {
		for t := 0; t < c.cfg.TasksPerNode; t++ {
			local := snap.data[1][n][t]  // replica 2's local checkpoint
			remote := snap.data[0][n][t] // buddy's checkpoint, shipped over
			switch c.cfg.Comparison {
			case ChecksumCompare:
				if checksum.Fletcher64(remote) != checksum.Fletcher64(local) {
					return fmt.Sprintf("checksum mismatch at n%d/t%d", n, t), nil
				}
			case FullCompare:
				if c.cfg.RelTol == 0 || c.cfg.SemiBlocking {
					// Exact comparison on the captured bytes. The
					// tolerance-aware checker needs the live state to
					// be quiescent, so semi-blocking mode always
					// compares captures.
					if !bytes.Equal(remote, local) {
						return fmt.Sprintf("byte mismatch at n%d/t%d", n, t), nil
					}
					continue
				}
				// Tolerance-aware comparison via the checker PUPer
				// against replica 2's live (parked) state.
				res, err := c.machine.CheckTask(runtime.Addr{Replica: 1, Node: n, Task: t}, remote, c.cfg.RelTol)
				if err != nil {
					return fmt.Sprintf("structural divergence at n%d/t%d: %v", n, t, err), nil
				}
				if !res.Match {
					return fmt.Sprintf("mismatch at n%d/t%d: %v", n, t, res.Mismatches[0]), nil
				}
			}
		}
	}
	return "", nil
}

func (c *Controller) commit(snap *snapshot, began time.Time) {
	c.committed = snap
	c.stats.Checkpoints++
	c.stats.CheckpointTimes = append(c.stats.CheckpointTimes, time.Since(began))
	c.mark(trace.Checkpoint, fmt.Sprintf("checkpoint %d committed", c.stats.Checkpoints))
}

// handleFailure recovers from one detected fail-stop error per the
// configured scheme.
func (c *Controller) handleFailure(f runtime.Failure) error {
	if c.machine.Alive(f.Replica, f.Node) {
		// False suspicion (the node answered after all): ignore.
		return nil
	}
	c.stats.HardErrors++
	c.history.Record(c.now())
	c.mark(trace.Failure, fmt.Sprintf("hard error r%d/n%d", f.Replica, f.Node))
	c.adaptInterval()

	if err := c.machine.ReplaceWithSpare(f.Replica, f.Node); err != nil {
		return fmt.Errorf("core: unrecoverable hard error at r%d/n%d: %w", f.Replica, f.Node, err)
	}
	c.stats.SparesUsed++

	other := 1 - f.Replica
	if c.pendingWeak[f.Replica] {
		// Another node of an already-crashed replica: the pending
		// recovery will restore the whole replica anyway.
		return nil
	}
	if c.pendingWeak[other] {
		// Both replicas have now lost nodes before recovery completed:
		// roll everything back to the previous checkpoint (§2.3).
		c.pendingWeak[other] = false
		c.mark(trace.Restart, "failure in healthy replica during pending recovery")
		return c.rollbackBoth()
	}

	switch c.cfg.Scheme {
	case Strong:
		// Roll the crashed replica back to the previous checkpoint; the
		// restarting node's state comes from its buddy's local
		// checkpoint, every other node uses its own (§2.3). The healthy
		// replica keeps running and waits at the next checkpoint for
		// the crashed replica to catch up (Figure 4a).
		c.mark(trace.Restart, fmt.Sprintf("strong: replica %d rolls back", f.Replica))
		return c.rollbackReplica(f.Replica)
	case Medium:
		// Force an immediate checkpoint in the healthy replica and
		// restart the crashed replica from it (Figure 4b).
		c.mark(trace.Restart, fmt.Sprintf("medium: immediate checkpoint by replica %d", other))
		c.pendingWeak[f.Replica] = true // reuse the recovery path
		return c.recoveryCheckpoint(f.Replica)
	case Weak:
		// Do nothing now; the next periodic checkpoint doubles as the
		// recovery source (Figure 4c).
		c.pendingWeak[f.Replica] = true
		return nil
	}
	return fmt.Errorf("core: unknown scheme %v", c.cfg.Scheme)
}

// rollbackReplica restarts one replica from the committed checkpoint (or
// from the beginning when none exists).
func (c *Controller) rollbackReplica(rep int) error {
	c.machine.StopReplica(rep)
	c.coord.ForgetProgress(rep)
	c.coord.Undone(rep)
	var ckpts [][][]byte
	if c.committed != nil {
		ckpts = c.committed.data[rep]
	} else {
		ckpts = emptySet(c.cfg.NodesPerReplica, c.cfg.TasksPerNode)
	}
	if err := c.machine.RestartReplica(rep, ckpts); err != nil {
		return fmt.Errorf("core: restart replica %d: %w", rep, err)
	}
	c.stats.Rollbacks++
	return nil
}

// restartReplicaFrom restarts a replica from a specific snapshot (the
// medium/weak recovery transfer).
func (c *Controller) restartReplicaFrom(rep int, snap *snapshot) error {
	c.machine.StopReplica(rep)
	c.coord.ForgetProgress(rep)
	c.coord.Undone(rep)
	if err := c.machine.RestartReplica(rep, snap.data[rep]); err != nil {
		return fmt.Errorf("core: restart replica %d: %w", rep, err)
	}
	c.stats.Rollbacks++
	return nil
}

func (c *Controller) rollbackBoth() error {
	for rep := 0; rep < 2; rep++ {
		if err := c.rollbackReplica(rep); err != nil {
			return err
		}
	}
	return nil
}

func emptySet(nodes, tasks int) [][][]byte {
	out := make([][][]byte, nodes)
	for n := range out {
		out[n] = make([][]byte, tasks)
	}
	return out
}

// applyPendingSDC flips one random bit in each scheduled task's user data.
// Injection happens at the quiescent point just before packing, emulating
// the paper's injector (§6.1) without racing the application.
func (c *Controller) applyPendingSDC(scope consensus.Scope) {
	c.sdcMu.Lock()
	pending := c.pendingSDC
	c.pendingSDC = nil
	c.sdcMu.Unlock()
	var rest []runtime.Addr
	for _, addr := range pending {
		if !scope[addr.Replica] {
			rest = append(rest, addr)
			continue
		}
		c.corruptTask(addr)
	}
	if len(rest) > 0 {
		c.sdcMu.Lock()
		c.pendingSDC = append(rest, c.pendingSDC...)
		c.sdcMu.Unlock()
	}
}

// corruptTask flips one random non-structural bit in the task's pup'd
// state: pack, flip, verify the flip still unpacks (retrying bits that land
// in length prefixes), then write the corrupted state back into the live
// program.
func (c *Controller) corruptTask(addr runtime.Addr) {
	rng := rand.New(rand.NewSource(c.injectSeed))
	c.injectSeed++
	c.machine.CorruptTask(addr, func(p pup.Pupable) {
		data, err := pup.Pack(p)
		if err != nil || len(data) == 0 {
			return
		}
		probe := c.cfg.Factory(addr)
		for attempt := 0; attempt < 64; attempt++ {
			i, b := failure.FlipBit(data, rng)
			if pup.Unpack(data, probe) == nil {
				_ = pup.Unpack(data, p)
				c.mark(trace.Progress, fmt.Sprintf("sdc injected at %v byte %d bit %d", addr, i, b))
				return
			}
			data[i] ^= 1 << b // structural hit: restore and retry
		}
	})
}

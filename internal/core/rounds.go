package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"acr/internal/chaos/point"
	"acr/internal/checksum"
	"acr/internal/ckptstore"
	"acr/internal/consensus"
	"acr/internal/failure"
	"acr/internal/pup"
	"acr/internal/runtime"
	"acr/internal/trace"
)

// checkpointRound performs one automatic checkpoint: weak-scheme recovery
// if one is pending, otherwise a coordinated two-replica checkpoint with
// SDC detection.
func (c *Controller) checkpointRound() error {
	switch {
	case c.pendingWeak[0] && c.pendingWeak[1]:
		// Both replicas lost nodes before recovery: fall back to the
		// previous checkpoint (§2.3, weak scheme's failure case).
		c.pendingWeak[0], c.pendingWeak[1] = false, false
		c.mark(trace.Restart, "double failure: rollback to previous checkpoint")
		return c.rollbackBoth()
	case c.pendingWeak[0]:
		return c.recoveryCheckpoint(0)
	case c.pendingWeak[1]:
		return c.recoveryCheckpoint(1)
	}
	return c.normalRound()
}

// nextEpoch allocates a fresh checkpoint epoch. Epochs burnt by aborted
// or corrupted rounds are reclaimed by the eviction at the next commit.
func (c *Controller) nextEpoch() uint64 {
	c.epochSeq++
	return c.epochSeq
}

// key addresses one task's checkpoint at an epoch.
func (c *Controller) key(rep, n, t int, epoch uint64) ckptstore.Key {
	return ckptstore.Key{Replica: rep, Node: n, Task: t, Epoch: epoch}
}

// normalRound checkpoints both replicas and cross-checks buddies.
func (c *Controller) normalRound() error {
	began := time.Now()
	c.fire(point.CorePreConsensus, point.Info{Replica: -1, Node: -1, Task: -1})
	ready, err := c.coord.Request(consensus.BothReplicas)
	if err != nil {
		return fmt.Errorf("core: checkpoint request: %w", err)
	}
	ok, err := c.awaitReady(ready)
	if err != nil || !ok {
		return err
	}
	// All tasks are parked (or done): apply any scheduled SDC
	// injections, then capture both replicas into the store under a
	// fresh epoch — chunked, checksummed, one key per task.
	c.fire(point.CorePostConsensus, point.Info{Replica: -1, Node: -1, Task: -1})
	c.applyPendingSDC(consensus.BothReplicas)
	c.resetPhases()
	epoch := c.nextEpoch()
	var blocked time.Duration
	var mismatch string
	var chunk int
	if c.pipelined() {
		// Per-task pipeline: each (node, task) flows through capture →
		// exchange → compare as soon as its predecessor stage completes
		// (pipeline.go). Never taken under SemiBlocking, so the whole
		// round blocks the application.
		var perr error
		mismatch, chunk, perr = c.pipelinedRound(epoch)
		if perr != nil {
			c.coord.Release()
			return perr
		}
		blocked = time.Since(began)
	} else {
		if err := c.captureScope(consensus.BothReplicas, epoch); err != nil {
			c.coord.Release()
			return err
		}
		blocked = time.Since(began)
		if c.cfg.SemiBlocking {
			// Asynchronous checkpointing (§4.2 [27]): the application
			// resumes as soon as the local capture is done; the exchange
			// and comparison overlap with execution. The tolerance-aware
			// live-state comparison is unavailable here (the state is
			// moving again), so the captured bytes are compared directly.
			c.coord.Release()
		}
		// When live rounds ship checkpoints over the link, the barrier
		// path pays for every task's transfer serially before any
		// comparison starts.
		if err := c.shipEpochBarrier(epoch); err != nil {
			if !c.cfg.SemiBlocking {
				c.coord.Release()
			}
			return err
		}
		var err error
		mismatch, chunk, err = c.compare(epoch)
		if err != nil {
			if !c.cfg.SemiBlocking {
				c.coord.Release()
			}
			return err
		}
	}
	if c.exch != nil {
		// The round's verdict is itself a message between the replicas
		// (§4.2's result exchange): under the hardened exchange it must
		// cross the lossy link reliably before either side acts on it.
		if rerr := c.exch.shipResult(epoch, mismatch != ""); rerr != nil {
			if !c.cfg.SemiBlocking {
				c.coord.Release()
			}
			return fmt.Errorf("core: exchange compare result: %w", rerr)
		}
	}
	if mismatch != "" {
		// Silent data corruption: both replicas roll back to the
		// previous safely stored checkpoint (§2.1). Under semi-blocking
		// the application also loses the overlap window it just ran.
		c.stats.SDCDetected++
		c.prog.sdcDetected.Add(1)
		c.stats.LocalizedChunks = append(c.stats.LocalizedChunks, chunk)
		c.mark(trace.Failure, "sdc detected: "+mismatch)
		if !c.cfg.SemiBlocking {
			c.coord.Release()
		}
		return c.rollbackBoth()
	}
	c.commit(epoch, began)
	c.stats.BlockedTimes = append(c.stats.BlockedTimes, blocked)
	if !c.cfg.SemiBlocking {
		c.coord.Release()
	}
	return nil
}

// captureScope captures every replica in scope into the store under the
// epoch, through the chunked-parallel capture path. Once the consensus cut
// has parked every task, the two replicas share nothing — their captures
// run concurrently on the fast path. Chaos runs and SerialCommitPath pin
// the original one-after-the-other schedule: hook firing order (capture
// points, store writes) is part of a fault campaign's deterministic
// contract, and the Both-mode corruption hooks rely on replica 0's store
// writes preceding replica 1's.
func (c *Controller) captureScope(scope consensus.Scope, epoch uint64) error {
	began := time.Now()
	defer func() { c.roundCapture = time.Since(began) }()
	opts := c.captureOptions()
	if scope[0] && scope[1] && c.cfg.Chaos == nil && !c.cfg.SerialCommitPath {
		var wg sync.WaitGroup
		var errs [2]error
		for rep := 0; rep < 2; rep++ {
			rep := rep
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[rep] = c.machine.CaptureReplica(rep, epoch, c.store, opts)
			}()
		}
		wg.Wait()
		for rep, err := range errs {
			if err != nil {
				return fmt.Errorf("core: capture replica %d: %w", rep, err)
			}
		}
		return nil
	}
	for rep := 0; rep < 2; rep++ {
		if !scope[rep] {
			continue
		}
		// Quiescent: every task in scope is parked, so hooks may mutate
		// task state here and the corruption lands in this capture.
		c.fire(point.CoreCapture, point.Info{Replica: rep, Node: -1, Task: -1, Epoch: epoch})
		if err := c.machine.CaptureReplica(rep, epoch, c.store, opts); err != nil {
			return fmt.Errorf("core: capture replica %d: %w", rep, err)
		}
	}
	return nil
}

// captureOptions derives the runtime capture parameters from the config:
// the fast path recycles buffers through the pool and packs single-pass;
// the pinned serial path reproduces the original two-pass, inner-serial
// behavior exactly.
func (c *Controller) captureOptions() runtime.CaptureOptions {
	opts := runtime.CaptureOptions{
		ChunkSize:    c.cfg.ChunkSize,
		Workers:      c.cfg.ChecksumWorkers,
		ChunkWorkers: c.cfg.ChunkChecksumWorkers,
	}
	if c.cfg.SerialCommitPath {
		opts.ForceTwoPass = true
		opts.ChunkWorkers = 1
	} else {
		opts.Pool = c.pool
		// A non-nil pool means the controller created the store and owns
		// its eviction lifecycle exclusively — the same ownership guarantee
		// patch-in-place capture needs (no reader retains Bytes() of an
		// evicted epoch). A caller-supplied store gets neither.
		opts.PatchCapture = c.pool != nil
	}
	return opts
}

// resetPhases clears the per-round phase accumulators; called when a round
// passes its consensus cut.
func (c *Controller) resetPhases() {
	c.roundCapture, c.roundCompare = 0, 0
	c.roundExchange.Reset()
	c.roundBusy = nil
}

// recoveryCheckpoint is the weak-scheme recovery: the healthy replica
// checkpoints, and the crashed replica is restored from it (Figure 5d).
// The same path implements the medium scheme's forced checkpoint when
// called directly from handleFailure (Figure 5c).
func (c *Controller) recoveryCheckpoint(crashed int) error {
	healthy := 1 - crashed
	began := time.Now()
	// The recovery window of §2.3 opens here: what happens between this
	// point and the trusted commit is invisible to SDC detection. A hook
	// that crashes the healthy replica here exercises the double-fault
	// path; the firing precedes the consensus request, so the crash races
	// the cut exactly as a real mid-recovery failure would.
	c.fire(point.CoreRecovery, point.Info{Replica: crashed, Node: -1, Task: -1})
	ready, err := c.coord.Request(consensus.OnlyReplica(healthy))
	if err != nil {
		return fmt.Errorf("core: recovery checkpoint request: %w", err)
	}
	ok, err := c.awaitReady(ready)
	if err != nil || !ok {
		return err
	}
	c.applyPendingSDC(consensus.OnlyReplica(healthy))
	c.resetPhases()
	epoch := c.nextEpoch()
	if err := c.captureScope(consensus.OnlyReplica(healthy), epoch); err != nil {
		c.coord.Release()
		return err
	}
	// The healthy node's local checkpoint is simultaneously the remote
	// checkpoint of its buddy in the crashed replica: "sends the
	// checkpoint to the crashed replica" (§2.3). Mirror the stored
	// checkpoints under the crashed replica's keys; on the direct path
	// the chunked capture is shared, not recomputed, while the hardened
	// exchange ships it chunk-by-chunk through the lossy link and stores
	// the reassembled copy. This mirroring is the recovery round's
	// exchange phase; under the pipeline the per-task transfers overlap
	// their link round trips (see mirrorEpoch).
	exchBegan := time.Now()
	if err := c.mirrorEpoch(crashed, healthy, epoch); err != nil {
		c.coord.Release()
		return err
	}
	c.roundExchange.Add(time.Since(exchBegan))
	// This checkpoint is trusted without comparison: SDC that struck the
	// healthy replica since the last verified checkpoint is undetectable
	// here — the medium/weak vulnerability window of §2.3 and Figure 7b.
	c.commitTrusted(epoch, began)
	c.mark(trace.Checkpoint, fmt.Sprintf("recovery checkpoint by replica %d", healthy))
	// Restore the crashed replica from the fresh checkpoint.
	if err := c.restartReplicaFromEpoch(crashed, epoch); err != nil {
		c.coord.Release()
		return err
	}
	c.mark(trace.Restart, fmt.Sprintf("replica %d restored from replica %d's checkpoint", crashed, healthy))
	c.pendingWeak[crashed] = false
	c.coord.Release()
	return nil
}

// awaitReady waits for the consensus cut while staying responsive to
// failures and job completion. It returns ok=false when the round was
// aborted (a failure won the race and was handled).
func (c *Controller) awaitReady(ready <-chan int) (bool, error) {
	wait := c.waitErr
	for {
		select {
		case <-ready:
			return true, nil
		case f := <-c.machine.Failures():
			// A hard error interrupts the round: abort, recover, retry
			// at the next period.
			c.stats.AbortedRounds++
			c.coord.Release()
			if err := c.handleFailure(f); err != nil {
				return false, err
			}
			return false, nil
		case err := <-wait:
			if err != nil {
				c.coord.Release()
				return false, err
			}
			// Job completed: the cut is trivially ready (completed
			// tasks count as parked), so it will fire momentarily.
			// Hand the completion signal back for the event loop and
			// stop watching it here.
			go func() { c.waitErr <- c.machine.Wait() }()
			wait = nil
		}
	}
}

// compare cross-checks the buddy checkpoints stored under the epoch and
// returns a description of the first mismatch ("" when clean) plus the
// chunk index the mismatch was localized to (-1 when not localized).
// "First" means lowest (node, task) in the serial walk order, regardless
// of how many workers ran the comparison — the parallel path cancels
// early but reproduces the serial outcome bit for bit (see DESIGN.md §10).
func (c *Controller) compare(epoch uint64) (string, int, error) {
	began := time.Now()
	defer func() { c.roundCompare = time.Since(began) }()
	workers := c.compareWorkers()
	if workers <= 1 {
		return c.compareSerial(epoch)
	}
	return c.compareParallel(epoch, workers)
}

// parallelCompareThreshold is the replica state size below which the
// parallel comparison path loses to the serial walk outright: goroutine
// spin-up, the claim counter, and cancellation checks cost more than
// comparing a few hundred KiB of bytes. Measured on the
// 2x2nodes-4tasks-96KB bench shape, where the parallel path ran at 0.82x
// of serial.
const parallelCompareThreshold = 1 << 20

// parallelComparePerWorkerBytes is the payload each comparison worker
// needs to amortize its share of the fan-out overhead. Above the absolute
// threshold the pool is shrunk so every worker compares at least this
// much — the 96KB and 192KB committed bench cases showed 0.87–0.99x when
// GOMAXPROCS workers each got only a few tens of KiB.
const parallelComparePerWorkerBytes = 512 << 10

// compareWorkers sizes the comparison pool. Chaos runs pin the serial
// walk: the hooked store fires a StoreRead point per fetched checkpoint,
// and a campaign's occurrence-counted faults depend on those firings'
// order and count, which early cancellation would perturb. Small states
// pin it too — fan-out overhead dominates below the threshold — as does a
// single-core box, where parallel compare is pure scheduling overhead.
// Explicit Config.CompareWorkers bypasses the heuristics (not the pins).
func (c *Controller) compareWorkers() int {
	if c.cfg.SerialCommitPath || c.cfg.Chaos != nil {
		return 1
	}
	total := c.cfg.NodesPerReplica * c.cfg.TasksPerNode
	if w := c.cfg.CompareWorkers; w > 0 {
		if w > total {
			w = total
		}
		return w
	}
	procs := stdruntime.GOMAXPROCS(0)
	if procs <= 1 {
		return 1
	}
	hint := c.machine.ReplicaStateHint(0)
	if hint > 0 && hint < parallelCompareThreshold {
		return 1
	}
	w := procs
	if hint > 0 {
		// Shrink until every worker has a crossover-sized share of the
		// replica's bytes; comparing 2MB across 16 workers is slower than
		// across 4.
		if byBytes := hint / parallelComparePerWorkerBytes; byBytes < w {
			w = byBytes
		}
		if w < 1 {
			w = 1
		}
	}
	if w > total {
		w = total
	}
	return w
}

func (c *Controller) compareSerial(epoch uint64) (string, int, error) {
	for n := 0; n < c.cfg.NodesPerReplica; n++ {
		for t := 0; t < c.cfg.TasksPerNode; t++ {
			mismatch, chunk, err := c.compareTask(n, t, epoch)
			if mismatch != "" || err != nil {
				return mismatch, chunk, err
			}
		}
	}
	return "", -1, nil
}

// compareParallel fans compareTask over a bounded worker pool with early
// cancellation. Determinism argument: workers claim dense indices from an
// atomic counter, so when some index i yields an outcome (mismatch or
// error), every j < i has already been claimed; those comparisons run to
// completion and report before the pool drains, and the lowest-index
// outcome wins. cutoff only ever decreases to a new outcome's index, so
// no comparison below the winner is skipped — skipping starts strictly
// above it, where outcomes can't win anyway.
func (c *Controller) compareParallel(epoch uint64, workers int) (string, int, error) {
	tasks := c.cfg.TasksPerNode
	total := c.cfg.NodesPerReplica * tasks
	var next atomic.Int64
	var cutoff atomic.Int64
	cutoff.Store(int64(total))
	var (
		mu        sync.Mutex
		bestIdx   = total
		bestMsg   string
		bestChunk int
		bestErr   error
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || int64(i) >= cutoff.Load() {
					return
				}
				mismatch, chunk, err := c.compareTask(i/tasks, i%tasks, epoch)
				if mismatch == "" && err == nil {
					continue
				}
				mu.Lock()
				if i < bestIdx {
					bestIdx, bestMsg, bestChunk, bestErr = i, mismatch, chunk, err
				}
				mu.Unlock()
				for {
					cur := cutoff.Load()
					if int64(i) >= cur || cutoff.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if bestIdx == total {
		return "", -1, nil
	}
	return bestMsg, bestChunk, bestErr
}

// compareTask cross-checks one buddy pair. Store fetches are counted as
// exchange time — the bytes a real machine would ship between buddies.
func (c *Controller) compareTask(n, t int, epoch uint64) (string, int, error) {
	switch c.cfg.Comparison {
	case ChecksumCompare:
		// Two-phase Merkle-style compare inside the store: roots
		// first (the 32-byte exchange of §4.2), per-chunk sums
		// only on mismatch, which names the corrupted chunk.
		exchBegan := time.Now()
		res, err := c.store.Compare(c.key(0, n, t, epoch), c.key(1, n, t, epoch))
		c.roundExchange.Add(time.Since(exchBegan))
		if err != nil {
			return "", -1, fmt.Errorf("core: checksum compare n%d/t%d: %w", n, t, err)
		}
		if !res.Match {
			return fmt.Sprintf("checksum %v at n%d/t%d", res, n, t), res.Chunk, nil
		}
	case FullCompare:
		exchBegan := time.Now()
		remote, err := c.store.Get(c.key(0, n, t, epoch)) // buddy's checkpoint, shipped over
		c.roundExchange.Add(time.Since(exchBegan))
		if err != nil {
			return "", -1, fmt.Errorf("core: fetch remote checkpoint n%d/t%d: %w", n, t, err)
		}
		if c.cfg.RelTol == 0 || c.cfg.SemiBlocking {
			// Exact comparison on the captured bytes. The
			// tolerance-aware checker needs the live state to
			// be quiescent, so semi-blocking mode always
			// compares captures.
			exchBegan := time.Now()
			local, err := c.store.Get(c.key(1, n, t, epoch)) // replica 2's local checkpoint
			c.roundExchange.Add(time.Since(exchBegan))
			if err != nil {
				return "", -1, fmt.Errorf("core: fetch local checkpoint n%d/t%d: %w", n, t, err)
			}
			if !bytes.Equal(remote.Bytes(), local.Bytes()) {
				chunk := firstDiffChunk(remote.Bytes(), local.Bytes(), remote.ChunkSize)
				return fmt.Sprintf("byte mismatch at n%d/t%d chunk %d", n, t, chunk), chunk, nil
			}
			return "", -1, nil
		}
		// Tolerance-aware comparison via the checker PUPer
		// against replica 2's live (parked) state.
		res, err := c.machine.CheckTask(runtime.Addr{Replica: 1, Node: n, Task: t}, remote.Bytes(), c.cfg.RelTol)
		if err != nil {
			return fmt.Sprintf("structural divergence at n%d/t%d: %v", n, t, err), -1, nil
		}
		if !res.Match {
			m := res.Mismatches[0]
			chunk := m.ChunkIndex(remote.ChunkSize)
			return fmt.Sprintf("mismatch at n%d/t%d chunk %d: %v", n, t, chunk, m), chunk, nil
		}
	}
	return "", -1, nil
}

// firstDiffChunk localizes the first differing byte of two buffers to its
// chunk. Unequal lengths (a corrupted slice-length header can shift every
// later byte) are a mismatch at the first chunk past the common prefix —
// never a panic.
func firstDiffChunk(a, b []byte, chunkSize int) int {
	if chunkSize <= 0 {
		chunkSize = checksum.DefaultChunkSize
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i / chunkSize
		}
	}
	if len(a) != len(b) {
		return n / chunkSize
	}
	return -1
}

// commit marks the epoch as the verified checkpoint, evicts every older
// epoch (including ones burnt by aborted rounds), and publishes the
// store's counters to the timeline.
func (c *Controller) commit(epoch uint64, began time.Time) {
	c.committedEpoch = epoch
	c.commitLog = append(c.commitLog, epoch)
	c.stats.Checkpoints++
	c.prog.checkpoints.Add(1)
	c.prog.committedEpoch.Store(epoch)
	c.stats.CheckpointTimes = append(c.stats.CheckpointTimes, time.Since(began))
	c.appendPhaseTimes()
	c.store.Evict(epoch)
	c.mark(trace.Checkpoint, fmt.Sprintf("checkpoint %d committed (epoch %d)", c.stats.Checkpoints, epoch))
	c.fire(point.CoreCommit, point.Info{Replica: -1, Node: -1, Task: -1, Epoch: epoch})
	c.maybeFlush(epoch)
	c.maybeFlushRemote(epoch)
	c.markStore()
}

// commitTrusted is commit for recovery checkpoints, which are trusted
// without buddy comparison (medium/weak schemes).
func (c *Controller) commitTrusted(epoch uint64, began time.Time) {
	c.committedEpoch = epoch
	c.commitLog = append(c.commitLog, epoch)
	c.stats.Checkpoints++
	c.prog.checkpoints.Add(1)
	c.prog.committedEpoch.Store(epoch)
	c.stats.CheckpointTimes = append(c.stats.CheckpointTimes, time.Since(began))
	c.appendPhaseTimes()
	c.store.Evict(epoch)
	c.fire(point.CoreCommit, point.Info{Replica: -1, Node: -1, Task: -1, Epoch: epoch})
	c.maybeFlush(epoch)
	c.maybeFlushRemote(epoch)
	c.markStore()
}

// appendPhaseTimes records the committed round's capture/exchange/compare
// split, keeping the phase arrays parallel with CheckpointTimes. Barrier
// rounds mirror their wall times into the busy arrays (the phases neither
// overlap each other nor themselves); pipelined rounds supply real
// overlap-aware accounting via roundBusy.
func (c *Controller) appendPhaseTimes() {
	c.stats.CaptureTimes = append(c.stats.CaptureTimes, c.roundCapture)
	c.stats.ExchangeTimes = append(c.stats.ExchangeTimes, c.roundExchange.Load())
	c.stats.CompareTimes = append(c.stats.CompareTimes, c.roundCompare)
	if b := c.roundBusy; b != nil {
		c.stats.CaptureBusyTimes = append(c.stats.CaptureBusyTimes, b.captureBusy)
		c.stats.ExchangeBusyTimes = append(c.stats.ExchangeBusyTimes, b.exchangeBusy)
		c.stats.CompareBusyTimes = append(c.stats.CompareBusyTimes, b.compareBusy)
		return
	}
	c.stats.CaptureBusyTimes = append(c.stats.CaptureBusyTimes, c.roundCapture)
	c.stats.ExchangeBusyTimes = append(c.stats.ExchangeBusyTimes, c.roundExchange.Load())
	c.stats.CompareBusyTimes = append(c.stats.CompareBusyTimes, c.roundCompare)
}

// markStore emits a trace.Store event carrying the store's counters.
func (c *Controller) markStore() {
	if c.cfg.Timeline == nil {
		return
	}
	ctr := c.store.Counters()
	c.mark(trace.Store, fmt.Sprintf(
		"store=%s written=%dB read=%dB chunks-stored=%d chunks-reused=%d compares=%d compare-time=%s localized-chunk=%d",
		c.store.Name(), ctr.BytesWritten, ctr.BytesRead, ctr.ChunksStored, ctr.ChunksReused,
		ctr.Compares, ctr.CompareTime, ctr.LastLocalizedChunk))
}

// handleFailure recovers from one detected fail-stop error per the
// configured scheme.
func (c *Controller) handleFailure(f runtime.Failure) error {
	if c.machine.Alive(f.Replica, f.Node) {
		// False suspicion (the node answered after all): ignore.
		return nil
	}
	c.stats.HardErrors++
	c.prog.hardErrors.Add(1)
	c.history.Record(c.now())
	c.mark(trace.Failure, fmt.Sprintf("hard error r%d/n%d", f.Replica, f.Node))
	c.adaptInterval()

	other := 1 - f.Replica
	if !c.machine.Alive(other, f.Node) {
		// Buddy-pair double fault: both physical holders of logical node
		// f.Node's in-memory checkpoints are dead, so every epoch of that
		// node's tier-0 copies is gone (in both replicas — each side held
		// the other's remote copy). Model the loss in the volatile tier;
		// recovery escalates down the ladder. The drop is idempotent
		// across the two failure events, so the pair is counted once.
		if v, ok := c.store.(ckptstore.Volatile); ok {
			if n := v.DropNode(0, f.Node) + v.DropNode(1, f.Node); n > 0 {
				c.stats.BuddyPairLosses++
				c.mark(trace.Failure, fmt.Sprintf("buddy pair n%d lost both in-memory copies (%d checkpoints dropped)", f.Node, n))
			}
		}
	}

	if err := c.machine.ReplaceWithSpare(f.Replica, f.Node); err != nil {
		if !errors.Is(err, runtime.ErrSpareExhausted) || !c.cfg.Degraded {
			// Keep the cause wrapped: callers branch on ErrUnrecoverable for
			// the verdict and on ErrSpareExhausted for the reason.
			return fmt.Errorf("%w at r%d/n%d: %w", ErrUnrecoverable, f.Replica, f.Node, err)
		}
		// Degraded mode: shrink instead of dying. The failed node's tasks
		// fold onto the least-loaded survivor of the same replica; the
		// per-scheme recovery below restarts them there from a checkpoint
		// exactly as it would on a spare.
		host, foldErr := c.machine.FoldOntoSurvivor(f.Replica, f.Node)
		if foldErr != nil {
			return fmt.Errorf("%w at r%d/n%d: %v", ErrUnrecoverable, f.Replica, f.Node, foldErr)
		}
		c.stats.Folds++
		c.prog.folds.Add(1)
		c.fire(point.CoreFold, point.Info{Replica: f.Replica, Node: f.Node, Task: host})
		c.mark(trace.Fold, fmt.Sprintf("spares exhausted: r%d/n%d folded onto survivor n%d (degraded)", f.Replica, f.Node, host))
		if c.cfg.OnFold != nil {
			c.cfg.OnFold()
		}
	} else {
		c.stats.SparesUsed++
	}
	if c.pendingWeak[f.Replica] {
		// Another node of an already-crashed replica: the pending
		// recovery will restore the whole replica anyway.
		return nil
	}
	if c.pendingWeak[other] {
		// Both replicas have now lost nodes before recovery completed:
		// roll everything back to the previous checkpoint (§2.3).
		c.pendingWeak[other] = false
		c.mark(trace.Restart, "failure in healthy replica during pending recovery")
		return c.rollbackBoth()
	}

	switch c.cfg.Scheme {
	case Strong:
		// Roll the crashed replica back to the previous checkpoint; the
		// restarting node's state comes from its buddy's local
		// checkpoint, every other node uses its own (§2.3). The healthy
		// replica keeps running and waits at the next checkpoint for
		// the crashed replica to catch up (Figure 4a).
		c.mark(trace.Restart, fmt.Sprintf("strong: replica %d rolls back", f.Replica))
		return c.rollbackReplica(f.Replica)
	case Medium:
		// Force an immediate checkpoint in the healthy replica and
		// restart the crashed replica from it (Figure 4b).
		c.mark(trace.Restart, fmt.Sprintf("medium: immediate checkpoint by replica %d", other))
		c.pendingWeak[f.Replica] = true // reuse the recovery path
		return c.recoveryCheckpoint(f.Replica)
	case Weak:
		// Do nothing now; the next periodic checkpoint doubles as the
		// recovery source (Figure 4c).
		c.pendingWeak[f.Replica] = true
		return nil
	}
	return fmt.Errorf("core: unknown scheme %v", c.cfg.Scheme)
}

// rollbackReplica restarts one replica from the committed checkpoint
// epoch in the store (or from the beginning when none exists).
func (c *Controller) rollbackReplica(rep int) error {
	c.machine.StopReplica(rep)
	c.coord.ForgetProgress(rep)
	c.coord.Undone(rep)
	if err := c.restartFromCommitted(rep); err != nil {
		return err
	}
	c.stats.Rollbacks++
	c.prog.rollbacks.Add(1)
	return nil
}

// restartReplicaFromEpoch restarts a replica from a specific stored epoch
// (the medium/weak recovery transfer).
func (c *Controller) restartReplicaFromEpoch(rep int, epoch uint64) error {
	c.machine.StopReplica(rep)
	// Fire only once the replica is quiescent: hooks use this firing as the
	// boundary after which task progress legitimately regresses, so no
	// stale pre-stop progress report may follow it.
	c.fire(point.CoreRestart, point.Info{Replica: rep, Node: -1, Task: -1, Epoch: epoch})
	c.coord.ForgetProgress(rep)
	c.coord.Undone(rep)
	if err := c.machine.RestartReplicaFromStore(rep, epoch, c.store); err != nil {
		return fmt.Errorf("core: restart replica %d: %w", rep, err)
	}
	c.stats.Rollbacks++
	c.prog.rollbacks.Add(1)
	return nil
}

func (c *Controller) rollbackBoth() error {
	for rep := 0; rep < 2; rep++ {
		if err := c.rollbackReplica(rep); err != nil {
			return err
		}
	}
	return nil
}

func emptySet(nodes, tasks int) [][][]byte {
	out := make([][][]byte, nodes)
	for n := range out {
		out[n] = make([][]byte, tasks)
	}
	return out
}

// applyPendingSDC flips one random bit in each scheduled task's user data.
// Injection happens at the quiescent point just before packing, emulating
// the paper's injector (§6.1) without racing the application.
func (c *Controller) applyPendingSDC(scope consensus.Scope) {
	c.sdcMu.Lock()
	pending := c.pendingSDC
	c.pendingSDC = nil
	c.sdcMu.Unlock()
	var rest []runtime.Addr
	for _, addr := range pending {
		if !scope[addr.Replica] {
			rest = append(rest, addr)
			continue
		}
		c.corruptTask(addr)
	}
	if len(rest) > 0 {
		c.sdcMu.Lock()
		c.pendingSDC = append(rest, c.pendingSDC...)
		c.sdcMu.Unlock()
	}
}

// corruptTask flips one random non-structural bit in the task's pup'd
// state: pack, flip, verify the flip still unpacks (retrying bits that land
// in length prefixes), then write the corrupted state back into the live
// program.
func (c *Controller) corruptTask(addr runtime.Addr) {
	rng := rand.New(rand.NewSource(c.injectSeed))
	c.injectSeed++
	c.machine.CorruptTask(addr, func(p pup.Pupable) {
		data, err := pup.Pack(p)
		if err != nil || len(data) == 0 {
			return
		}
		probe := c.cfg.Factory(addr)
		for attempt := 0; attempt < 64; attempt++ {
			i, b := failure.FlipBit(data, rng)
			if pup.Unpack(data, probe) == nil {
				_ = pup.Unpack(data, p)
				c.mark(trace.Progress, fmt.Sprintf("sdc injected at %v byte %d bit %d", addr, i, b))
				return
			}
			data[i] ^= 1 << b // structural hit: restore and retry
		}
	})
}

package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"acr/internal/ckptstore"
	"acr/internal/pup"
	"acr/internal/runtime"
)

// This file is the live benchmark harness behind cmd/acrbench: it measures
// the checkpoint commit path — capture, buddy comparison, and the full
// round — on a real Machine + Controller, in two variants per machine
// shape: the pinned serial baseline (SerialCommitPath: the pre-fast-path
// behavior) and the fast path (concurrent replica capture, size-hint
// single-pass packing, pooled buffers, parallel compare). The harness
// lives in package core so it can drive checkpointRound/compare directly,
// without the event loop's timers adding noise.

// benchParticle is one MD-style particle: six doubles piped field by
// field. The per-object Pup traversal is deliberate — it is the shape
// (apps.MD, any struct-of-structs state) where the Sizing pass costs as
// much as the Packing pass, which is exactly what the size-hint fast path
// eliminates. A flat []float64 state would make Sizing O(1) and hide the
// effect.
type benchParticle struct {
	X, Y, Z, VX, VY, VZ float64
}

func (a *benchParticle) Pup(p *pup.PUPer) {
	p.Float64(&a.X)
	p.Float64(&a.Y)
	p.Float64(&a.Z)
	p.Float64(&a.VX)
	p.Float64(&a.VY)
	p.Float64(&a.VZ)
}

// benchProgram advances a deterministic function of (initial state,
// iteration count), so the two replicas' tasks are byte-identical whenever
// the consensus cut parks them at the same iteration — which it always
// does. It never completes on its own; the harness stops the machine.
type benchProgram struct {
	iter  int64
	atoms []benchParticle
}

func (b *benchProgram) Pup(p *pup.PUPer) {
	p.Int64(&b.iter)
	n := len(b.atoms)
	p.Int(&n)
	if p.Mode() == pup.Unpacking && len(b.atoms) != n {
		b.atoms = make([]benchParticle, n)
	}
	for i := range b.atoms {
		p.Object(&b.atoms[i])
	}
}

func (b *benchProgram) step() {
	i := int(b.iter) % len(b.atoms)
	b.atoms[i].X += 0.25
	b.atoms[i].VX = -b.atoms[i].VX
	b.iter++
}

// Run circulates tokens around a task ring, one hop per iteration. The
// communication is not decoration: it keeps the replica's tasks in lock
// step, like a halo-exchanging HPC app. A compute-only loop would let the
// scheduler run one task thousands of iterations ahead, and every
// checkpoint round would start with a long catch-up march to the consensus
// target — measuring scheduler skew, not the commit path.
func (b *benchProgram) Run(ctx *runtime.Ctx) error {
	next := ctx.AddrOfGlobal((ctx.GlobalTask() + 1) % ctx.NumTasks())
	for {
		// Contract: state advances before Progress, so a checkpoint taken
		// while parked resumes at the next iteration.
		b.step()
		// nil payload: a boxed value would allocate per hop and charge
		// task-side noise to whichever benchmark op is running.
		if err := ctx.Send(next, 0, nil); err != nil {
			return err
		}
		if _, err := ctx.Recv(); err != nil {
			return err
		}
		if err := ctx.Progress(int(b.iter)); err != nil {
			return err
		}
	}
}

// benchFactory seeds particles deterministically from (node, task) only —
// never the replica — so buddy tasks start identical.
func benchFactory(particles int) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program {
		atoms := make([]benchParticle, particles)
		for i := range atoms {
			v := float64(addr.Node*1000+addr.Task*100+i) * 0.001
			atoms[i] = benchParticle{X: v, Y: v + 1, Z: v + 2, VX: -v, VY: v * 2, VZ: 1 - v}
		}
		return &benchProgram{atoms: atoms}
	}
}

// BenchSpec is one benchmarked machine shape.
type BenchSpec struct {
	Name      string `json:"name"`
	Nodes     int    `json:"nodes"`     // nodes per replica
	Tasks     int    `json:"tasks"`     // tasks per node
	Particles int    `json:"particles"` // per task; state ≈ 48 B/particle
	// Dirty > 0 selects the dirty-ratio axis: a flat-vector program whose
	// tasks rewrite only the first Dirty percent of their state between
	// rounds. Particles then counts float64 elements (8 B each), the
	// "serial" leg is the untracked program (blind tracker, full re-pack
	// every round) and the "fast" leg the write-tracked one (dirty-chunk
	// splice), and only the round op is measured — capture in isolation is
	// degenerate on an unstarted machine (no writes, everything clean).
	Dirty int `json:"dirty,omitempty"`
	// LinkLatencyMs > 0 (or LinkLossPct > 0) selects the pipeline axis:
	// live rounds ship every task's checkpoint through a hardened
	// exchange link with this one-way latency and loss percentage
	// (ExchangeConfig.ShipCheckpoints). Both legs then run the default
	// fast commit path over the same program — the "serial" leg with the
	// barrier schedule (PipelineOff: capture all, ship every task one
	// after the other, compare all) and the "fast" leg with the per-task
	// pipeline — so the measured difference is stage overlap alone.
	// Combines with Dirty (both legs tracked: delta-aware shipping).
	// Only the round op is measured.
	LinkLatencyMs int     `json:"link_latency_ms,omitempty"`
	LinkLossPct   float64 `json:"link_loss_pct,omitempty"`
	// RemoteLatencyMs > 0 selects the remote-flush axis: every committed
	// round additionally uploads its epoch to a simulated object store
	// with this per-op latency (no fault injection — the axis isolates
	// latency absorption, not resilience). The "serial" leg uploads
	// synchronously on the commit path (SyncRemoteFlush) and pays the
	// store's latency per round; the "fast" leg is the default background
	// remote writer, which overlaps uploads with computation. Only the
	// round op is measured.
	RemoteLatencyMs int `json:"remote_latency_ms,omitempty"`
}

// linked reports whether the spec runs on the pipeline (lossy-link) axis.
func (s BenchSpec) linked() bool { return s.LinkLatencyMs > 0 || s.LinkLossPct > 0 }

// DefaultBenchSpecs returns the benchmarked shapes. Quick mode keeps the
// subset CI smoke-runs; names are stable, so a quick run can be checked
// against a full baseline.
func DefaultBenchSpecs(quick bool) []BenchSpec {
	specs := []BenchSpec{
		{Name: "2x2nodes-4tasks-96KB", Nodes: 2, Tasks: 2, Particles: 2048},
		{Name: "2x1node-1task-16MB-dirty10", Nodes: 1, Tasks: 1, Particles: 2097152, Dirty: 10},
		// The pipeline case: 8 tasks of 256KB each rewriting a quarter of
		// their state per round, shipped over a 2ms / 1%-loss link. The
		// barrier leg pays every task's round trips serially; the
		// pipelined leg overlaps them, and the dirty tracking keeps the
		// steady-state frame count low enough that capture and compare
		// meaningfully overlap the flight time too.
		{Name: "2x4nodes-8tasks-2MB-link2ms-dirty25", Nodes: 4, Tasks: 2, Particles: 32768, Dirty: 25, LinkLatencyMs: 2, LinkLossPct: 1},
		// The remote-flush case: every round uploads 4 task checkpoints to
		// a 2ms-latency object store. The sync leg pays ~8ms of upload per
		// round inline; the async leg hides it behind the next rounds.
		{Name: "2x2nodes-4tasks-96KB-remote2ms", Nodes: 2, Tasks: 2, Particles: 2048, RemoteLatencyMs: 2},
	}
	if !quick {
		specs = append(specs,
			BenchSpec{Name: "2x4nodes-16tasks-192KB", Nodes: 4, Tasks: 4, Particles: 4096},
			BenchSpec{Name: "2x8nodes-8tasks-384KB", Nodes: 8, Tasks: 1, Particles: 8192},
			// Large-state compare shape: 4 tasks of ~1MB. Above the
			// parallel-compare crossover, so this is the case where the
			// parallel walk must beat serial on a multicore box (on one
			// core the heuristic now pins serial and the ratio is ~1x).
			BenchSpec{Name: "2x2nodes-4tasks-4MB", Nodes: 2, Tasks: 2, Particles: 21845},
		)
	}
	return specs
}

// BenchMeasurement is one variant's measured cost per operation.
type BenchMeasurement struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// BenchPhases is one round-op variant's mean per-round phase split:
// wall-clock span and summed per-task busy time for capture, exchange,
// and compare (core.Stats busy arrays, averaged over the measured
// rounds). On a barrier leg busy == wall per phase and the wall spans sum
// to roughly the round; on a pipelined leg the spans overlap, which is
// exactly what the breakdown exists to show.
type BenchPhases struct {
	CaptureWallNs  int64 `json:"capture_wall_ns"`
	CaptureBusyNs  int64 `json:"capture_busy_ns"`
	ExchangeWallNs int64 `json:"exchange_wall_ns"`
	ExchangeBusyNs int64 `json:"exchange_busy_ns"`
	CompareWallNs  int64 `json:"compare_wall_ns"`
	CompareBusyNs  int64 `json:"compare_busy_ns"`
}

// BenchCase compares the serial baseline against the fast path for one
// (shape, operation) pair.
type BenchCase struct {
	Name string `json:"name"` // "<spec>/<op>"
	// Serial is the pinned pre-fast-path behavior (SerialCommitPath), or
	// the barrier schedule on the pipeline axis; Fast is the default
	// commit path.
	Serial BenchMeasurement `json:"serial"`
	Fast   BenchMeasurement `json:"fast"`
	// Speedup is Serial ns / Fast ns; AllocRatio is Serial allocs / Fast
	// allocs (capped denominators at 1).
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"alloc_ratio"`
	// SerialPhases / FastPhases carry the round op's per-phase breakdown
	// (nil for capture/compare ops, whose measurement is a single phase).
	SerialPhases *BenchPhases `json:"serial_phases,omitempty"`
	FastPhases   *BenchPhases `json:"fast_phases,omitempty"`
}

// BenchReport is the serialized benchmark trajectory (BENCH_checkpoint.json).
type BenchReport struct {
	Version  int         `json:"version"`
	Quick    bool        `json:"quick"`
	MaxProcs int         `json:"maxprocs"`
	Cases    []BenchCase `json:"cases"`
}

// Find returns the case with the given name, or nil.
func (r *BenchReport) Find(name string) *BenchCase {
	for i := range r.Cases {
		if r.Cases[i].Name == name {
			return &r.Cases[i]
		}
	}
	return nil
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

func measurement(r testing.BenchmarkResult) BenchMeasurement {
	return BenchMeasurement{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func benchCase(name string, serial, fast testing.BenchmarkResult) BenchCase {
	s, f := measurement(serial), measurement(fast)
	spd := 0.0
	if f.NsPerOp > 0 {
		spd = round2(float64(s.NsPerOp) / float64(f.NsPerOp))
	}
	fAllocs := f.AllocsPerOp
	if fAllocs < 1 {
		fAllocs = 1
	}
	return BenchCase{
		Name:       name,
		Serial:     s,
		Fast:       f,
		Speedup:    spd,
		AllocRatio: round2(float64(s.AllocsPerOp) / float64(fAllocs)),
	}
}

// benchDirtyProgram is the dirty-ratio-axis workload: a flat float vector
// plus an iteration counter, where every iteration rewrites the same hot
// window (the first dirtyPct percent of the vector). The tracked variant
// marks exactly that window; the untracked variant holds its WriteSet as
// a named field and keeps it blind, so the runtime's ResetDirty cannot
// arm it behind the program's back — an armed-but-unmarked tracker would
// silently corrupt captures, blind means full re-pack, which is the
// pre-incremental behavior this axis baselines against.
type benchDirtyProgram struct {
	ws       pup.WriteSet
	tracked  bool
	dirtyPct int
	iter     int64
	vals     []float64
}

// DirtyRanges / ResetDirty forward to the write set only on the tracked
// leg; the untracked leg always reports blind.
func (b *benchDirtyProgram) DirtyRanges(dst []pup.Range) ([]pup.Range, bool) {
	if !b.tracked {
		return dst, false
	}
	return b.ws.DirtyRanges(dst)
}

func (b *benchDirtyProgram) ResetDirty() {
	if b.tracked {
		b.ws.ResetDirty()
	}
}

func (b *benchDirtyProgram) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int64(&b.iter)
	p.Label("vals")
	p.Float64s(&b.vals)
}

func (b *benchDirtyProgram) hotN() int {
	n := len(b.vals) * b.dirtyPct / 100
	if n < 1 {
		n = 1
	}
	return n
}

// Run is the same lock-step token ring as benchProgram; the fixed hot
// window keeps the dirty set deterministic regardless of how many
// iterations land between two checkpoint rounds.
func (b *benchDirtyProgram) Run(ctx *runtime.Ctx) error {
	next := ctx.AddrOfGlobal((ctx.GlobalTask() + 1) % ctx.NumTasks())
	spans := pup.FieldSpans(b)
	hot := spans["vals"].Slice(0, b.hotN(), 8)
	for {
		for i := 0; i < b.hotN(); i++ {
			b.vals[i] += 0.5
		}
		b.iter++
		if b.tracked {
			b.ws.MarkSpan(hot)
			b.ws.MarkSpan(spans["iter"])
		}
		if err := ctx.Send(next, 0, nil); err != nil {
			return err
		}
		if _, err := ctx.Recv(); err != nil {
			return err
		}
		if err := ctx.Progress(int(b.iter)); err != nil {
			return err
		}
	}
}

func benchDirtyFactory(floats, dirtyPct int, tracked bool) runtime.Factory {
	return func(addr runtime.Addr) runtime.Program {
		vals := make([]float64, floats)
		for i := range vals {
			vals[i] = float64(addr.Node*1000+addr.Task*100+i) * 0.001
		}
		return &benchDirtyProgram{tracked: tracked, dirtyPct: dirtyPct, vals: vals}
	}
}

// benchController builds an idle controller for the spec. The machine is
// not started: every task sits quiescent at its factory state, which
// satisfies the capture/compare quiescence contract without consensus.
// On the dirty axis the serial flag selects the untracked program rather
// than SerialCommitPath — both legs run the default commit path, so the
// measured difference is dirty-chunk splice versus full re-pack alone.
// On the pipeline (link) axis both legs run the same program and the same
// default commit path through the same kind of lossy link; the serial
// flag only selects the barrier schedule versus the per-task pipeline.
func benchController(spec BenchSpec, serial bool) (*Controller, error) {
	if spec.RemoteLatencyMs > 0 {
		return New(Config{
			NodesPerReplica: spec.Nodes,
			TasksPerNode:    spec.Tasks,
			Factory:         benchFactory(spec.Particles),
			Comparison:      ChecksumCompare,
			RemoteStore: ckptstore.NewRemote(ckptstore.RemoteOptions{
				Latency: time.Duration(spec.RemoteLatencyMs) * time.Millisecond,
			}),
			RemoteFlushEvery: 1,
			SyncRemoteFlush:  serial,
		})
	}
	if spec.linked() {
		factory := benchFactory(spec.Particles)
		if spec.Dirty > 0 {
			factory = benchDirtyFactory(spec.Particles, spec.Dirty, true)
		}
		mode := PipelineAuto
		if serial {
			mode = PipelineOff
		}
		return New(Config{
			NodesPerReplica: spec.Nodes,
			TasksPerNode:    spec.Tasks,
			Factory:         factory,
			Comparison:      ChecksumCompare,
			Pipeline:        mode,
			Exchange: &ExchangeConfig{
				Latency:         time.Duration(spec.LinkLatencyMs) * time.Millisecond,
				Loss:            spec.LinkLossPct / 100,
				Seed:            42,
				ShipCheckpoints: true,
			},
		})
	}
	if spec.Dirty > 0 {
		return New(Config{
			NodesPerReplica: spec.Nodes,
			TasksPerNode:    spec.Tasks,
			Factory:         benchDirtyFactory(spec.Particles, spec.Dirty, !serial),
			Comparison:      ChecksumCompare,
		})
	}
	return New(Config{
		NodesPerReplica:  spec.Nodes,
		TasksPerNode:     spec.Tasks,
		Factory:          benchFactory(spec.Particles),
		Comparison:       FullCompare,
		SerialCommitPath: serial,
	})
}

// benchCapture measures one steady-state replica capture: capture under a
// fresh epoch, then evict the previous epoch — exactly the commit path's
// lifecycle, so on the fast path eviction feeds the pool that the next
// capture draws from (the zero-allocation steady state).
func benchCapture(spec BenchSpec, serial bool) (testing.BenchmarkResult, *BenchPhases, error) {
	ctrl, err := benchController(spec, serial)
	if err != nil {
		return testing.BenchmarkResult{}, nil, err
	}
	opts := ctrl.captureOptions()
	epoch := uint64(0)
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			epoch++
			if err := ctrl.machine.CaptureReplica(0, epoch, ctrl.store, opts); err != nil {
				benchErr = fmt.Errorf("capture: %w", err)
				b.FailNow()
			}
			ctrl.store.Evict(epoch)
		}
	})
	return res, nil, benchErr
}

// benchCompare measures the buddy comparison of one committed epoch, both
// replicas captured once up front.
func benchCompare(spec BenchSpec, serial bool) (testing.BenchmarkResult, *BenchPhases, error) {
	ctrl, err := benchController(spec, serial)
	if err != nil {
		return testing.BenchmarkResult{}, nil, err
	}
	opts := ctrl.captureOptions()
	for rep := 0; rep < 2; rep++ {
		if err := ctrl.machine.CaptureReplica(rep, 1, ctrl.store, opts); err != nil {
			return testing.BenchmarkResult{}, nil, err
		}
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mismatch, _, err := ctrl.compare(1)
			if err != nil || mismatch != "" {
				benchErr = fmt.Errorf("compare: mismatch=%q err=%v", mismatch, err)
				b.FailNow()
			}
		}
	})
	return res, nil, benchErr
}

// benchRound measures the full live checkpoint round — consensus cut,
// two-replica capture, buddy comparison, commit + eviction — against a
// running machine whose tasks are mid-iteration when each round begins.
func benchRound(spec BenchSpec, serial bool) (testing.BenchmarkResult, *BenchPhases, error) {
	ctrl, err := benchController(spec, serial)
	if err != nil {
		return testing.BenchmarkResult{}, nil, err
	}
	ctrl.start = time.Now()
	ctrl.machine.Start()
	defer ctrl.machine.Stop()
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ctrl.checkpointRound(); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr == nil && ctrl.stats.SDCDetected > 0 {
		benchErr = fmt.Errorf("round: spurious SDC detected (%d)", ctrl.stats.SDCDetected)
	}
	return res, roundPhases(&ctrl.stats), benchErr
}

// roundPhases averages the controller's per-round phase arrays (every
// committed round across the measurement, warmups included) into one
// BenchPhases breakdown. Nil when no round committed.
func roundPhases(s *Stats) *BenchPhases {
	n := len(s.CaptureTimes)
	if n == 0 || len(s.CaptureBusyTimes) != n || len(s.ExchangeTimes) != n ||
		len(s.ExchangeBusyTimes) != n || len(s.CompareTimes) != n || len(s.CompareBusyTimes) != n {
		return nil
	}
	mean := func(xs []time.Duration) int64 {
		var sum time.Duration
		for _, x := range xs {
			sum += x
		}
		return int64(sum) / int64(len(xs))
	}
	return &BenchPhases{
		CaptureWallNs:  mean(s.CaptureTimes),
		CaptureBusyNs:  mean(s.CaptureBusyTimes),
		ExchangeWallNs: mean(s.ExchangeTimes),
		ExchangeBusyNs: mean(s.ExchangeBusyTimes),
		CompareWallNs:  mean(s.CompareTimes),
		CompareBusyNs:  mean(s.CompareBusyTimes),
	}
}

// RunCheckpointBench runs the full serial-vs-fast matrix and assembles the
// report. Each (shape, operation, variant) cell is measured count times and
// the fastest run is kept — live rounds share the CPU with the replicas'
// task goroutines, so the minimum is the measurement least polluted by
// scheduler noise. only, when non-empty, restricts the matrix to specs
// whose name contains it as a substring (for targeted smoke runs). logf
// (may be nil) receives one progress line per case, plus a phase
// breakdown for round ops.
func RunCheckpointBench(quick bool, count, maxProcs int, only string, logf func(format string, args ...any)) (*BenchReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if count < 1 {
		count = 1
	}
	type op struct {
		name string
		run  func(BenchSpec, bool) (testing.BenchmarkResult, *BenchPhases, error)
	}
	ops := []op{
		{"capture", benchCapture},
		{"compare", benchCompare},
		{"round", benchRound},
	}
	best := func(spec BenchSpec, o op, serial bool) (testing.BenchmarkResult, *BenchPhases, error) {
		var min testing.BenchmarkResult
		var minPhases *BenchPhases
		for i := 0; i < count; i++ {
			r, ph, err := o.run(spec, serial)
			if err != nil {
				return testing.BenchmarkResult{}, nil, err
			}
			if i == 0 || r.NsPerOp() < min.NsPerOp() {
				min, minPhases = r, ph
			}
		}
		return min, minPhases, nil
	}
	report := &BenchReport{Version: 1, Quick: quick, MaxProcs: maxProcs}
	for _, spec := range DefaultBenchSpecs(quick) {
		if only != "" && !strings.Contains(spec.Name, only) {
			continue
		}
		for _, o := range ops {
			if (spec.Dirty > 0 || spec.linked() || spec.RemoteLatencyMs > 0) && o.name != "round" {
				continue
			}
			serial, serialPhases, err := best(spec, o, true)
			if err != nil {
				return nil, fmt.Errorf("%s/%s serial: %w", spec.Name, o.name, err)
			}
			fast, fastPhases, err := best(spec, o, false)
			if err != nil {
				return nil, fmt.Errorf("%s/%s fast: %w", spec.Name, o.name, err)
			}
			cs := benchCase(spec.Name+"/"+o.name, serial, fast)
			cs.SerialPhases, cs.FastPhases = serialPhases, fastPhases
			report.Cases = append(report.Cases, cs)
			logf("%-28s serial %10d ns/op %7d allocs/op | fast %10d ns/op %7d allocs/op | %.2fx, %.1fx fewer allocs",
				cs.Name, cs.Serial.NsPerOp, cs.Serial.AllocsPerOp, cs.Fast.NsPerOp, cs.Fast.AllocsPerOp,
				cs.Speedup, cs.AllocRatio)
			logPhases(logf, "serial", cs.SerialPhases)
			logPhases(logf, "fast", cs.FastPhases)
		}
	}
	return report, nil
}

// logPhases emits one variant's per-round phase breakdown, busy vs wall,
// so stage overlap is visible in the report rather than only in the total
// speedup. Silent for ops without phase data.
func logPhases(logf func(format string, args ...any), leg string, p *BenchPhases) {
	if p == nil {
		return
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	logf("  %-6s phases (busy/wall ms): capture %.2f/%.2f  exchange %.2f/%.2f  compare %.2f/%.2f",
		leg, ms(p.CaptureBusyNs), ms(p.CaptureWallNs),
		ms(p.ExchangeBusyNs), ms(p.ExchangeWallNs),
		ms(p.CompareBusyNs), ms(p.CompareWallNs))
}

package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"acr/internal/chaos/point"
)

// recoveryKiller is an inline injection hook that fail-stops a node of the
// HEALTHY replica the instant the controller opens the medium/weak
// recovery window (point.CoreRecovery fires with the crashed replica; the
// hook kills the other one). This is the §2.3 double-fault: the recovery
// source itself dies mid-recovery.
type recoveryKiller struct {
	ctrl *Controller

	mu    sync.Mutex
	armed bool
	fired bool
}

func (k *recoveryKiller) Fire(id point.ID, info *point.Info) {
	if id != point.CoreRecovery {
		return
	}
	k.mu.Lock()
	fire := k.armed && !k.fired
	k.fired = k.fired || fire
	k.mu.Unlock()
	if fire {
		k.ctrl.KillNode(1-info.Replica, 0)
	}
}

// runWithWatchdog runs the controller with a hang detector: the double
// fault may legitimately fail the job, but it must never deadlock it.
func runWithWatchdog(t *testing.T, ctrl *Controller) (Stats, error) {
	t.Helper()
	type result struct {
		stats Stats
		err   error
	}
	ch := make(chan result, 1)
	go func() {
		stats, err := ctrl.Run()
		ch <- result{stats, err}
	}()
	select {
	case r := <-ch:
		return r.stats, r.err
	case <-time.After(30 * time.Second):
		t.Fatal("controller hung after buddy double fault during recoveryCheckpoint")
		return Stats{}, nil
	}
}

// TestDoubleFaultDuringRecoveryCheckpoint: the healthy replica crashes
// inside recoveryCheckpoint. With spares available the controller must
// fall back to a full rollback and still produce the golden result.
func TestDoubleFaultDuringRecoveryCheckpoint(t *testing.T) {
	const nodes, tasks, iters = 2, 2, 3000
	cfg := baseConfig(nodes, tasks, iters)
	cfg.Scheme = Medium
	cfg.Spares = 3
	killer := &recoveryKiller{}
	cfg.Chaos = killer
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	killer.ctrl = ctrl
	killer.mu.Lock()
	killer.armed = true
	killer.mu.Unlock()

	// The first fault: kill a replica-0 node mid-run; the medium scheme
	// responds with recoveryCheckpoint(0), whose CoreRecovery firing makes
	// the hook kill replica 1's node 0 — the double fault.
	go func() {
		time.Sleep(6 * time.Millisecond)
		ctrl.KillNode(0, 1)
	}()

	stats, err := runWithWatchdog(t, ctrl)
	if err != nil {
		t.Fatalf("double fault with spares must recover, got: %v", err)
	}
	if !killer.fired {
		t.Fatal("hook never fired: the run ended before the recovery window opened")
	}
	if stats.HardErrors < 2 {
		t.Fatalf("expected both hard errors recovered, got %d", stats.HardErrors)
	}
	verifyFinalState(t, ctrl, nodes, tasks, iters)
}

// TestDoubleFaultWithoutSparesIsTyped: with an empty spare pool the second
// crash is unrecoverable — the controller must return ErrUnrecoverable,
// not hang and not panic.
func TestDoubleFaultWithoutSparesIsTyped(t *testing.T) {
	const nodes, tasks, iters = 2, 2, 200000
	cfg := baseConfig(nodes, tasks, iters)
	cfg.Scheme = Medium
	cfg.Spares = 1 // consumed by the first fault; none left for the second
	killer := &recoveryKiller{}
	cfg.Chaos = killer
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	killer.ctrl = ctrl
	killer.mu.Lock()
	killer.armed = true
	killer.mu.Unlock()

	go func() {
		time.Sleep(6 * time.Millisecond)
		ctrl.KillNode(0, 1)
	}()

	_, err = runWithWatchdog(t, ctrl)
	if err == nil {
		t.Fatal("expected an unrecoverable error, run succeeded")
	}
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("error is not typed ErrUnrecoverable: %v", err)
	}
}

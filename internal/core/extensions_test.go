package core

import (
	"sync/atomic"
	"testing"
	"time"

	"acr/internal/chaos/point"
	"acr/internal/runtime"
)

// TestSemiBlockingCheckpointing: the §4.2 asynchronous-checkpointing
// extension must preserve all correctness properties — SDC detection,
// rollback, exact recovery — while pausing the application only for the
// local capture.
func TestSemiBlockingCheckpointing(t *testing.T) {
	cfg := baseConfig(2, 2, 4000)
	cfg.SemiBlocking = true
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 0, Node: 0, Task: 1})
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SDCDetected == 0 {
		t.Fatal("semi-blocking comparison missed the injected corruption")
	}
	if stats.Checkpoints == 0 {
		t.Fatal("no checkpoints committed")
	}
	if len(stats.BlockedTimes) != stats.Checkpoints {
		t.Fatalf("blocked-time records %d != checkpoints %d", len(stats.BlockedTimes), stats.Checkpoints)
	}
	for i, bt := range stats.BlockedTimes {
		if bt > stats.CheckpointTimes[i] {
			t.Fatalf("round %d: blocked %v exceeds total %v", i, bt, stats.CheckpointTimes[i])
		}
	}
	verifyFinalState(t, ctrl, 2, 2, 4000)
}

func TestSemiBlockingWithHardError(t *testing.T) {
	cfg := baseConfig(2, 2, 8000)
	cfg.SemiBlocking = true
	cfg.Scheme = Weak
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(12 * time.Millisecond)
		ctrl.KillNode(0, 0)
	}()
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.HardErrors != 1 {
		t.Fatalf("hard errors = %d, want 1", stats.HardErrors)
	}
	verifyFinalState(t, ctrl, 2, 2, 8000)
}

// TestPredictedCheckpoint: a failure prediction triggers an immediate
// dynamic checkpoint even with periodic checkpointing disabled, so the
// subsequent failure loses (almost) no work. The scenario is driven from
// injection points, not wall-clock sleeps: the prediction fires on an
// early progress report, and it "comes true" the moment its dynamic
// checkpoint commits — deterministic under arbitrary scheduler load,
// where a sleep-based kill can overshoot the whole run.
func TestPredictedCheckpoint(t *testing.T) {
	cfg := baseConfig(2, 1, 20000)
	cfg.Scheme = Strong
	cfg.CheckpointInterval = 0 // no periodic cadence at all
	var ctrl *Controller
	var predicted, killed atomic.Bool
	cfg.Chaos = point.HookFunc(func(id point.ID, info *point.Info) {
		switch id {
		case point.RuntimeProgress:
			if predicted.CompareAndSwap(false, true) {
				ctrl.PredictFailure()
			}
		case point.CoreCommit:
			// With no periodic cadence, the only possible commit is the
			// prediction's dynamic checkpoint.
			if killed.CompareAndSwap(false, true) {
				ctrl.KillNode(1, 0) // the prediction comes true
			}
		}
	})
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Predicted != 1 {
		t.Fatalf("predicted checkpoints = %d, want 1", stats.Predicted)
	}
	if stats.Checkpoints < 1 {
		t.Fatal("prediction should have produced a committed checkpoint")
	}
	if stats.HardErrors != 1 {
		t.Fatalf("hard errors = %d, want 1", stats.HardErrors)
	}
	verifyFinalState(t, ctrl, 2, 1, 20000)
}

func TestPredictionCoalesces(t *testing.T) {
	ctrl, err := New(baseConfig(1, 1, 100))
	if err != nil {
		t.Fatal(err)
	}
	// Flooding predictions before Run must not panic or block; the
	// channel coalesces beyond its buffer.
	for i := 0; i < 100; i++ {
		ctrl.PredictFailure()
	}
	stats, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Predicted == 0 {
		t.Fatal("queued predictions were lost entirely")
	}
}

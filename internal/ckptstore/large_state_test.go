package ckptstore_test

// Round-trip coverage for large (≥ 1 MiB) real application states through
// the chunked capture path: pack a Jacobi3D block and a LeanMD cell, push
// them through every store backend, restore, and unpack — then corrupt one
// float and assert the two-phase compare localizes the right chunk.

import (
	"math"
	"testing"

	"acr/internal/apps"
	"acr/internal/checksum"
	"acr/internal/ckptstore"
	"acr/internal/pup"
)

func bigJacobi(t testing.TB) *apps.Jacobi {
	t.Helper()
	// 64^3 cells of float64 = 2 MiB of interior state.
	j := &apps.Jacobi{Iter: 41, Iters: 100, BX: 64, BY: 64, BZ: 64}
	j.U = make([]float64, j.BX*j.BY*j.BZ)
	for i := range j.U {
		j.U[i] = math.Sin(float64(i)*0.013) + 2
	}
	return j
}

func bigLeanMD(t testing.TB) *apps.LeanMD {
	t.Helper()
	// 40k atoms x 4 float64 = 1.25 MiB scattered across per-atom objects.
	m := &apps.LeanMD{Iter: 7, Iters: 50, K: 40000}
	m.Atoms = make([]apps.Atom, m.K)
	for i := range m.Atoms {
		f := float64(i)
		m.Atoms[i] = apps.Atom{X: f * 0.001, Y: f * 0.002, VX: math.Cos(f), VY: math.Sin(f)}
	}
	return m
}

func storesUnderTest(t *testing.T) map[string]ckptstore.Store {
	t.Helper()
	disk, err := ckptstore.NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]ckptstore.Store{"mem": ckptstore.NewMem(), "disk": disk, "delta": ckptstore.NewDelta()}
}

func TestLargeStateRoundTripThroughChunkedCapture(t *testing.T) {
	progs := map[string]struct {
		state  pup.Pupable
		fresh  func() pup.Pupable
		digest func(pup.Pupable) float64
	}{
		"jacobi2MiB": {
			state: bigJacobi(t),
			fresh: func() pup.Pupable { return &apps.Jacobi{} },
			digest: func(p pup.Pupable) float64 {
				return p.(*apps.Jacobi).Norm()
			},
		},
		"leanmd1.25MiB": {
			state: bigLeanMD(t),
			fresh: func() pup.Pupable { return &apps.LeanMD{} },
			digest: func(p pup.Pupable) float64 {
				return p.(*apps.LeanMD).KineticEnergy()
			},
		},
	}
	for name, tc := range progs {
		t.Run(name, func(t *testing.T) {
			data, err := pup.Pack(tc.state)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) < 1<<20 {
				t.Fatalf("state packs to %d bytes; test requires >= 1 MiB", len(data))
			}
			for backend, st := range storesUnderTest(t) {
				k := ckptstore.Key{Replica: 0, Node: 1, Task: 2, Epoch: 5}
				ck := ckptstore.Capture(append([]byte(nil), data...), 0, 0)
				if want := checksum.NumChunks(len(data), checksum.DefaultChunkSize); ck.NumChunks() != want {
					t.Fatalf("%s: %d chunks, want %d", backend, ck.NumChunks(), want)
				}
				if err := st.Put(k, ck); err != nil {
					t.Fatalf("%s: %v", backend, err)
				}
				got, err := st.Get(k)
				if err != nil {
					t.Fatalf("%s: %v", backend, err)
				}
				restored := tc.fresh()
				if err := pup.Unpack(got.Bytes(), restored); err != nil {
					t.Fatalf("%s: unpack restored state: %v", backend, err)
				}
				if w, g := tc.digest(tc.state), tc.digest(restored); w != g {
					t.Fatalf("%s: digest diverged after round-trip: %v != %v", backend, g, w)
				}
			}
		})
	}
}

// Corrupt one float of a 2 MiB Jacobi block and assert the compare
// localizes exactly the chunk holding that float.
func TestLargeStateCorruptionLocalizedToChunk(t *testing.T) {
	j := bigJacobi(t)
	clean, err := pup.Pack(j)
	if err != nil {
		t.Fatal(err)
	}
	const cellIdx = 200000
	j.U[cellIdx] += 1e-9 // a silent single-cell corruption
	dirty, err := pup.Pack(j)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the corrupted byte range in the packed stream to derive the
	// expected chunk index independently of the compare.
	firstDiff := -1
	for i := range clean {
		if clean[i] != dirty[i] {
			firstDiff = i
			break
		}
	}
	if firstDiff < 0 {
		t.Fatal("corruption did not change the packed stream")
	}
	wantChunk := firstDiff / checksum.DefaultChunkSize

	for backend, st := range storesUnderTest(t) {
		a := ckptstore.Key{Replica: 0, Epoch: 1}
		b := ckptstore.Key{Replica: 1, Epoch: 1}
		if err := st.Put(a, ckptstore.Capture(clean, 0, 0)); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if err := st.Put(b, ckptstore.Capture(dirty, 0, 0)); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		res, err := st.Compare(a, b)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Match {
			t.Fatalf("%s: corrupted buddy matched", backend)
		}
		if res.Chunk != wantChunk {
			t.Fatalf("%s: localized chunk %d, want %d", backend, res.Chunk, wantChunk)
		}
		// The pup-level mismatch (FullCompare diagnostics) attributes to
		// the same chunk.
		resCheck, err := pup.Check(j, clean, 0)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if resCheck.Match || len(resCheck.Mismatches) == 0 {
			t.Fatalf("%s: checker missed the corruption", backend)
		}
		if got := resCheck.Mismatches[0].ChunkIndex(checksum.DefaultChunkSize); got != wantChunk {
			t.Fatalf("%s: pup mismatch attributed to chunk %d, want %d", backend, got, wantChunk)
		}
	}
}

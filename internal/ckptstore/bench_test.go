package ckptstore

// Benchmarks backing the tentpole claims: chunked-parallel checksum
// capture beats the serial Fletcher64Writer on multi-MiB checkpoints, and
// the delta tier stores a fraction of the bytes a full-checkpoint tier
// stores for iterative states that only touch part of their footprint.

import (
	"testing"

	"acr/internal/checksum"
)

const benchSize = 8 << 20 // 8 MiB checkpoint

func BenchmarkCaptureSerialWriter8MiB(b *testing.B) {
	data := randData(b, 1, benchSize)
	b.SetBytes(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var f checksum.Fletcher64Writer
		f.Write(data)
		if f.Sum64() == 0 {
			b.Fatal("degenerate checksum")
		}
	}
}

func BenchmarkCaptureChunkedParallel8MiB(b *testing.B) {
	data := randData(b, 1, benchSize)
	b.SetBytes(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck := Capture(data, 0, 0)
		if ck.Root == 0 {
			b.Fatal("degenerate root")
		}
	}
}

// Two-phase compare on the fast path (identical buddies): roots only,
// independent of checkpoint size once captured.
func BenchmarkCompareTwoPhaseMatch(b *testing.B) {
	st := NewMem()
	data := randData(b, 2, benchSize)
	a := Key{Replica: 0, Epoch: 1}
	bb := Key{Replica: 1, Epoch: 1}
	st.Put(a, Capture(append([]byte(nil), data...), 0, 0))
	st.Put(bb, Capture(append([]byte(nil), data...), 0, 0))
	b.SetBytes(benchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Compare(a, bb)
		if err != nil || !res.Match {
			b.Fatalf("compare: %v %v", res, err)
		}
	}
}

// Delta versus full storage bytes across epochs where 1/64 of the state
// changes per epoch — the iterative-application shape. Reported metrics:
// bytes written per epoch by each tier.
func BenchmarkDeltaVsFullBytes(b *testing.B) {
	const size = 4 << 20
	const epochs = 8
	data := randData(b, 3, size)
	run := func(st Store) Counters {
		buf := append([]byte(nil), data...)
		for e := uint64(1); e <= epochs; e++ {
			// Touch one chunk-aligned 64th of the state per epoch.
			lo := (int(e) % 64) * (size / 64)
			buf[lo] ^= byte(e)
			st.Put(Key{Epoch: e}, Capture(append([]byte(nil), buf...), 0, 0))
		}
		return st.Counters()
	}
	b.Run("full", func(b *testing.B) {
		var c Counters
		for i := 0; i < b.N; i++ {
			c = run(NewMem())
		}
		b.ReportMetric(float64(c.BytesWritten)/epochs, "bytes/epoch")
	})
	b.Run("delta", func(b *testing.B) {
		var c Counters
		for i := 0; i < b.N; i++ {
			c = run(NewDelta())
		}
		b.ReportMetric(float64(c.BytesWritten)/epochs, "bytes/epoch")
		b.ReportMetric(float64(c.ChunksReused), "chunks-reused")
	})
}

package ckptstore

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// scriptStore wraps a Mem with a programmable failure schedule: each
// Put/Get consumes the next scripted error (nil = let the op through).
// When the schedule is exhausted, `down` decides: healthy pass-through or
// unconditional ErrRemoteUnavailable.
type scriptStore struct {
	mem *Mem

	mu     sync.Mutex
	script []error
	down   bool
	puts   int // Put attempts observed, scripted failures included
	gets   int
}

func newScriptStore(script ...error) *scriptStore {
	return &scriptStore{mem: NewMem(), script: script}
}

func (s *scriptStore) next() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.script) > 0 {
		err := s.script[0]
		s.script = s.script[1:]
		return err
	}
	if s.down {
		return ErrRemoteUnavailable
	}
	return nil
}

func (s *scriptStore) setDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

func (s *scriptStore) Put(k Key, ck *Checkpoint) error {
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	if err := s.next(); err != nil {
		return err
	}
	return s.mem.Put(k, ck)
}

func (s *scriptStore) Get(k Key) (*Checkpoint, error) {
	s.mu.Lock()
	s.gets++
	s.mu.Unlock()
	if err := s.next(); err != nil {
		return nil, err
	}
	return s.mem.Get(k)
}

func (s *scriptStore) Compare(a, b Key) (CompareResult, error) { return s.mem.Compare(a, b) }
func (s *scriptStore) Evict(olderThan uint64) int              { return s.mem.Evict(olderThan) }
func (s *scriptStore) Counters() Counters                      { return s.mem.Counters() }
func (s *scriptStore) Name() string                            { return "script" }

func (s *scriptStore) putAttempts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts
}

// Retry policy vs seeded fault schedules, table-driven: each case scripts
// the inner store's failures and pins the resulting outcome and counter
// state.
func TestResilientRetrySchedules(t *testing.T) {
	permanent := errors.New("disk on fire")
	cases := []struct {
		name        string
		script      []error
		maxRetries  int
		wantErr     error // nil = success
		wantAttempt int
		wantRetries int64
	}{
		{
			name:        "clean first try",
			script:      []error{nil},
			wantAttempt: 1,
		},
		{
			name:        "timeout then success",
			script:      []error{ErrRemoteTimeout, nil},
			wantAttempt: 2,
			wantRetries: 1,
		},
		{
			name:        "throttle timeout success",
			script:      []error{ErrRemoteThrottled, ErrRemoteTimeout, nil},
			wantAttempt: 3,
			wantRetries: 2,
		},
		{
			name:        "budget exhausted",
			script:      []error{ErrRemoteTimeout, ErrRemoteTimeout, ErrRemoteTimeout, ErrRemoteTimeout},
			wantErr:     ErrRemoteTimeout,
			wantAttempt: 4, // first try + MaxRetries(3)
			wantRetries: 3,
		},
		{
			name:        "retries disabled",
			script:      []error{ErrRemoteTimeout, nil},
			maxRetries:  -1,
			wantErr:     ErrRemoteTimeout,
			wantAttempt: 1,
		},
		{
			name:        "permanent error not retried",
			script:      []error{permanent, nil},
			wantErr:     permanent,
			wantAttempt: 1,
		},
	}
	ck := remoteCk(t, 10)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inner := newScriptStore(tc.script...)
			// BreakerThreshold -1: retry behavior in isolation.
			r := NewResilient(inner, ResilientOptions{MaxRetries: tc.maxRetries, BreakerThreshold: -1})
			defer r.Close()
			err := r.Put(Key{Epoch: 1}, ck)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err: got %v, want %v", err, tc.wantErr)
			}
			if got := inner.putAttempts(); got != tc.wantAttempt {
				t.Fatalf("inner attempts: got %d, want %d", got, tc.wantAttempt)
			}
			if st := r.ResilientStats(); st.Retries != tc.wantRetries {
				t.Fatalf("retries counter: got %d, want %d", st.Retries, tc.wantRetries)
			}
		})
	}
}

// An op whose backoff budget overruns OpDeadline must fail with the typed,
// errors.Is-able deadline error rather than the raw transient.
func TestResilientDeadlineTyped(t *testing.T) {
	inner := newScriptStore(ErrRemoteTimeout, ErrRemoteTimeout, ErrRemoteTimeout, ErrRemoteTimeout)
	r := NewResilient(inner, ResilientOptions{
		BaseBackoff:      30 * time.Millisecond,
		OpDeadline:       5 * time.Millisecond,
		BreakerThreshold: -1,
	})
	defer r.Close()
	err := r.Put(Key{Epoch: 1}, remoteCk(t, 11))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	if st := r.ResilientStats(); st.Deadlines != 1 {
		t.Fatalf("deadlines counter: got %d, want 1", st.Deadlines)
	}
}

// Idempotent re-Put: a second Put of the same checkpoint root is a no-op,
// but a failed upload must NOT record the root — the retry after a torn
// write has to overwrite the partial object.
func TestResilientPutDedupe(t *testing.T) {
	ck := remoteCk(t, 12)
	k := Key{Epoch: 1}

	inner := newScriptStore()
	r := NewResilient(inner, ResilientOptions{BreakerThreshold: -1})
	defer r.Close()
	if err := r.Put(k, ck); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(k, ck); err != nil {
		t.Fatal(err)
	}
	if got := inner.putAttempts(); got != 1 {
		t.Fatalf("dedupe leaked a Put: %d inner attempts", got)
	}
	if st := r.ResilientStats(); st.DedupedPuts != 1 {
		t.Fatalf("deduped counter: got %d, want 1", st.DedupedPuts)
	}
	// A different payload under the same key is not a duplicate.
	if err := r.Put(k, remoteCk(t, 13)); err != nil {
		t.Fatal(err)
	}
	if got := inner.putAttempts(); got != 2 {
		t.Fatalf("changed root should write through: %d inner attempts", got)
	}

	// Failure path: all attempts fail, so no root is recorded and the
	// next Put writes through instead of deduping.
	inner2 := newScriptStore(ErrRemoteTimeout, ErrRemoteTimeout, ErrRemoteTimeout, ErrRemoteTimeout, nil)
	r2 := NewResilient(inner2, ResilientOptions{BreakerThreshold: -1})
	defer r2.Close()
	if err := r2.Put(k, ck); !errors.Is(err, ErrRemoteTimeout) {
		t.Fatalf("scripted failure: got %v", err)
	}
	if err := r2.Put(k, ck); err != nil {
		t.Fatalf("re-put after failed upload: %v", err)
	}
	if st := r2.ResilientStats(); st.DedupedPuts != 0 {
		t.Fatal("failed upload must not seed the dedupe index")
	}
}

// Breaker lifecycle: trip after N consecutive failed ops, fail Puts over
// to the fallback while open, half-open via the background probe, and
// re-close once the inner store heals.
func TestResilientBreakerLifecycle(t *testing.T) {
	inner := newScriptStore()
	inner.setDown(true)
	fb := NewMem()
	r := NewResilient(inner, ResilientOptions{
		MaxRetries:       -1,
		BreakerThreshold: 3,
		ProbeInterval:    2 * time.Millisecond,
		Fallback:         fb,
	})
	defer r.Close()
	ck := remoteCk(t, 14)

	// Two failures: breaker still closed, errors surface.
	for i := 1; i <= 2; i++ {
		if err := r.Put(Key{Epoch: uint64(i)}, ck); !errors.Is(err, ErrRemoteUnavailable) {
			t.Fatalf("put %d: got %v, want ErrRemoteUnavailable", i, err)
		}
	}
	if r.State() != BreakerClosed {
		t.Fatalf("breaker tripped early: %v", r.State())
	}
	// Third failure trips it — and the tripping Put itself lands on the
	// fallback rather than losing the epoch.
	if err := r.Put(Key{Epoch: 3}, ck); err != nil {
		t.Fatalf("tripping put should fail over: %v", err)
	}
	if _, err := fb.Get(Key{Epoch: 3}); err != nil {
		t.Fatalf("epoch 3 missing from fallback: %v", err)
	}
	st := r.ResilientStats()
	if st.Trips != 1 || st.Failovers != 1 {
		t.Fatalf("after trip: %+v", st)
	}

	// While open (inner still down, probes keep failing): Puts and Gets
	// ride the fallback.
	if err := r.Put(Key{Epoch: 4}, ck); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(Key{Epoch: 4}); err != nil {
		t.Fatalf("open-breaker get via fallback: %v", err)
	}

	// Heal the inner store; a probe must re-close the breaker.
	inner.setDown(false)
	deadline := time.Now().Add(2 * time.Second)
	for r.State() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed; stats %+v", r.ResilientStats())
		}
		time.Sleep(time.Millisecond)
	}
	st = r.ResilientStats()
	if st.Recloses != 1 || st.Probes == 0 {
		t.Fatalf("after heal: %+v", st)
	}
	if st.State != "closed" {
		t.Fatalf("state string: %q", st.State)
	}
	// Closed again: traffic flows to the inner store.
	if err := r.Put(Key{Epoch: 5}, ck); err != nil {
		t.Fatal(err)
	}
	if _, err := inner.mem.Get(Key{Epoch: 5}); err != nil {
		t.Fatalf("post-reclose put did not reach inner store: %v", err)
	}
}

// With no fallback configured, an open breaker fails fast with the typed
// ErrBreakerOpen.
func TestResilientBreakerOpenNoFallback(t *testing.T) {
	inner := newScriptStore()
	inner.setDown(true)
	r := NewResilient(inner, ResilientOptions{
		MaxRetries:       -1,
		BreakerThreshold: 1,
		ProbeInterval:    time.Hour, // keep it open for the test's duration
	})
	defer r.Close()
	ck := remoteCk(t, 15)
	if err := r.Put(Key{Epoch: 1}, ck); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("tripping put: got %v, want ErrBreakerOpen", err)
	}
	if err := r.Put(Key{Epoch: 2}, ck); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open put: got %v, want ErrBreakerOpen", err)
	}
	if _, err := r.Get(Key{Epoch: 1}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open get: got %v, want ErrBreakerOpen", err)
	}
}

// ResilientStatsOf must find the reporter through wrapper layers exposing
// Inner().
func TestResilientStatsOfUnwraps(t *testing.T) {
	r := NewResilient(NewMem(), ResilientOptions{})
	defer r.Close()
	wrapped := WithHook(r, nil)
	st, ok := ResilientStatsOf(wrapped)
	if !ok {
		t.Fatal("ResilientStatsOf failed to unwrap Hooked")
	}
	if st.State != "closed" {
		t.Fatalf("state: %q", st.State)
	}
	if _, ok := ResilientStatsOf(NewMem()); ok {
		t.Fatal("bare Mem should not report resilient stats")
	}
}

// A Resilient over a Remote: the remote's Probe capability drives the
// half-open check, and dark mode heals through it.
func TestResilientOverRemoteDarkOutage(t *testing.T) {
	remote := NewRemote(RemoteOptions{})
	fb := NewMem()
	r := NewResilient(remote, ResilientOptions{
		MaxRetries:       -1,
		BreakerThreshold: 2,
		ProbeInterval:    2 * time.Millisecond,
		Fallback:         fb,
	})
	defer r.Close()
	ck := remoteCk(t, 16)

	remote.SetDark(true)
	for i := 1; i <= 2; i++ {
		_ = r.Put(Key{Epoch: uint64(i)}, ck)
	}
	if r.State() == BreakerClosed {
		t.Fatal("breaker should be open after consecutive dark failures")
	}
	remote.SetDark(false)
	deadline := time.Now().Add(2 * time.Second)
	for r.State() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed over healed remote; stats %+v", r.ResilientStats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.Put(Key{Epoch: 3}, ck); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Get(Key{Epoch: 3}); err != nil {
		t.Fatalf("post-heal put did not reach the remote: %v", err)
	}
}

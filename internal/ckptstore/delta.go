package ckptstore

import (
	"fmt"
	"sync"
	"time"
)

// Delta is the incremental tier: per task identity it keeps one base
// epoch in full plus, for later epochs, only the chunks whose Fletcher-64
// sums changed. Iterative HPC states (Jacobi interiors near convergence,
// MD cells with settled atoms, metadata-heavy prefixes) re-store only the
// chunks that moved, which is the incremental-capture shape that lets
// checkpointing scale past toy sizes — and the per-chunk sums computed at
// capture double as the change detector, so the diff costs no extra
// hashing.
type Delta struct {
	mu      sync.Mutex
	entries map[Key]*deltaEntry
	base    map[ident]uint64 // current base epoch per task identity
	ctrs    *counters
}

type deltaEntry struct {
	chunkSize int
	size      int
	root      uint64
	sums      []uint64
	// full holds the whole payload for base entries; diff entries leave
	// it nil and carry baseEpoch + patches instead.
	full      []byte
	baseEpoch uint64
	patches   map[int][]byte
}

// NewDelta returns an empty delta store.
func NewDelta() *Delta {
	return &Delta{
		entries: make(map[Key]*deltaEntry),
		base:    make(map[ident]uint64),
		ctrs:    newCounters(),
	}
}

// Name implements Store.
func (s *Delta) Name() string { return "delta" }

// Keys implements Enumerator.
func (s *Delta) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	return out
}

// Put implements Store. The first epoch of a task identity (or any epoch
// whose chunk structure no longer lines up with the base) is stored in
// full and becomes the base; subsequent epochs store only changed chunks.
func (s *Delta) Put(k Key, ck *Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrs.puts.Add(1)

	id := k.ident()
	baseEpoch, haveBase := s.base[id]
	var be *deltaEntry
	if haveBase {
		be = s.entries[Key{id.Replica, id.Node, id.Task, baseEpoch}]
	}
	compatible := be != nil && be.full != nil && k.Epoch != baseEpoch &&
		be.chunkSize == ck.ChunkSize && be.size == ck.Len() && len(be.sums) == len(ck.Sums)
	if !compatible {
		// Rebase: store in full. The payload is retained by reference
		// (capture hands ownership over), like the mem tier.
		s.entries[k] = &deltaEntry{
			chunkSize: ck.ChunkSize,
			size:      ck.Len(),
			root:      ck.Root,
			sums:      append([]uint64(nil), ck.Sums...),
			full:      ck.Bytes(),
		}
		s.base[id] = k.Epoch
		s.ctrs.bytesWritten.Add(int64(ck.Len()))
		s.ctrs.chunksStored.Add(int64(ck.NumChunks()))
		return nil
	}
	patches := make(map[int][]byte)
	var patched int64
	for i, sum := range ck.Sums {
		if sum == be.sums[i] {
			continue
		}
		// Copy the chunk: the delta tier must not pin the whole capture
		// buffer alive just to reference a few windows of it.
		patches[i] = append([]byte(nil), ck.Chunk(i)...)
		patched += int64(len(patches[i]))
	}
	s.entries[k] = &deltaEntry{
		chunkSize: ck.ChunkSize,
		size:      ck.Len(),
		root:      ck.Root,
		sums:      append([]uint64(nil), ck.Sums...),
		baseEpoch: baseEpoch,
		patches:   patches,
	}
	s.ctrs.bytesWritten.Add(patched)
	s.ctrs.chunksStored.Add(int64(len(patches)))
	s.ctrs.chunksReused.Add(int64(ck.NumChunks() - len(patches)))
	return nil
}

// materializeLocked reconstructs the full payload of an entry. The caller
// holds s.mu.
func (s *Delta) materializeLocked(k Key, e *deltaEntry) ([]byte, error) {
	if e.full != nil {
		return e.full, nil
	}
	bk := Key{k.Replica, k.Node, k.Task, e.baseEpoch}
	be, ok := s.entries[bk]
	if !ok || be.full == nil {
		return nil, fmt.Errorf("ckptstore: delta base %v missing for %v", bk, k)
	}
	data := append([]byte(nil), be.full...)
	for i, patch := range e.patches {
		copy(data[i*e.chunkSize:], patch)
	}
	return data, nil
}

// Get implements Store, reconstructing diff epochs as base + patches.
func (s *Delta) Get(k Key) (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		return nil, ErrNotFound
	}
	data, err := s.materializeLocked(k, e)
	if err != nil {
		return nil, err
	}
	s.ctrs.gets.Add(1)
	s.ctrs.bytesRead.Add(int64(len(data)))
	return &Checkpoint{ChunkSize: e.chunkSize, Root: e.root, Sums: e.sums, data: data}, nil
}

// Compare implements Store on metadata alone — no reconstruction.
func (s *Delta) Compare(a, b Key) (CompareResult, error) {
	s.mu.Lock()
	ea, oka := s.entries[a]
	eb, okb := s.entries[b]
	s.mu.Unlock()
	if !oka {
		return CompareResult{}, fmt.Errorf("ckptstore: compare %v: %w", a, ErrNotFound)
	}
	if !okb {
		return CompareResult{}, fmt.Errorf("ckptstore: compare %v: %w", b, ErrNotFound)
	}
	meta := func(e *deltaEntry) *Checkpoint {
		return &Checkpoint{ChunkSize: e.chunkSize, Root: e.root, Sums: e.sums}
	}
	if ea.size != eb.size {
		res := CompareResult{Chunk: -1, Structural: true}
		s.ctrs.recordCompare(res, 0)
		return res, nil
	}
	began := time.Now()
	res := CompareCheckpoints(meta(ea), meta(eb))
	s.ctrs.recordCompare(res, time.Since(began))
	return res, nil
}

// Evict implements Store. Evicting a base while later diffs still
// reference it first re-anchors every surviving epoch of that identity as
// a full base, so reconstruction never chases a dropped epoch.
func (s *Delta) Evict(olderThan uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Re-anchor survivors whose base is about to go away.
	for k, e := range s.entries {
		if e.full != nil || k.Epoch < olderThan || e.baseEpoch >= olderThan {
			continue
		}
		data, err := s.materializeLocked(k, e)
		if err != nil {
			// Base already lost: drop the orphan below by aging it out.
			continue
		}
		e.full = data
		e.patches = nil
		e.baseEpoch = 0
		if cur, ok := s.base[k.ident()]; !ok || cur < olderThan || cur < k.Epoch {
			s.base[k.ident()] = k.Epoch
		}
	}
	n := 0
	for k, e := range s.entries {
		if k.Epoch >= olderThan {
			continue
		}
		if e.full != nil {
			s.ctrs.bytesEvicted.Add(int64(e.size))
		} else {
			for _, p := range e.patches {
				s.ctrs.bytesEvicted.Add(int64(len(p)))
			}
		}
		delete(s.entries, k)
		if s.base[k.ident()] == k.Epoch {
			delete(s.base, k.ident())
		}
		n++
	}
	return n
}

// Counters implements Store.
func (s *Delta) Counters() Counters { return s.ctrs.snapshot() }

package ckptstore

import "sync"

// This file implements checkpoint recycling, the allocation half of the
// commit fast path: double in-memory checkpointing retires one full epoch
// of checkpoints every time a new epoch commits, and at a steady state the
// retiring epoch's buffers are exactly the right size for the next round's
// captures. Feeding Evict's output back into capture turns the per-round
// cost from "allocate + zero + pack" into just "pack", and keeps the
// garbage collector out of the checkpoint critical path entirely.

// PoolCounters is a snapshot of a Pool's activity. The JSON tags are the
// stable lower_snake schema of the acrd API.
type PoolCounters struct {
	// Gets / Puts count the calls; Hits counts Gets that found a buffer
	// with enough capacity, Misses the ones that did not (the caller
	// allocates or grows).
	Gets   int64 `json:"gets"`
	Puts   int64 `json:"puts"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Drops counts Puts rejected because the pool was full or the
	// checkpoint was already pooled (mirrored under two keys).
	Drops int64 `json:"drops"`
	// BytesRecycled is the total payload capacity handed back out by hits.
	BytesRecycled int64 `json:"bytes_recycled"`
}

// DefaultPoolCap bounds how many retired checkpoints a Pool retains. Two
// replicas' worth of one epoch for a sizable machine fits comfortably;
// beyond that, holding more buffers than a round can consume is just
// memory pressure.
const DefaultPoolCap = 256

// Pool recycles retired *Checkpoint objects — the payload buffer AND the
// per-chunk sum slice — between checkpoint epochs. It is safe for
// concurrent use.
//
// Ownership protocol: a checkpoint handed to Put must no longer be
// reachable through any Store (Mem.SetPool wires Evict to do exactly
// this). A checkpoint returned by Get is exclusively the caller's until it
// is Put back or re-captured into a store.
type Pool struct {
	mu   sync.Mutex
	free []*Checkpoint
	max  int
	ctrs PoolCounters
}

// NewPool returns a pool retaining at most max retired checkpoints
// (DefaultPoolCap when max <= 0).
func NewPool(max int) *Pool {
	if max <= 0 {
		max = DefaultPoolCap
	}
	return &Pool{max: max}
}

// Get returns a retired checkpoint whose payload capacity is at least
// hint bytes, preferring the most recently retired one (warmest). When no
// pooled buffer is large enough it still returns the most recent retiree —
// its Sums slice and struct are reusable even if the payload must grow —
// or a fresh zero Checkpoint when the pool is empty. Use Scratch to obtain
// the reusable payload window.
func (p *Pool) Get(hint int) *Checkpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ctrs.Gets++
	n := len(p.free)
	if n == 0 {
		p.ctrs.Misses++
		return &Checkpoint{}
	}
	pick := -1
	for i := n - 1; i >= 0; i-- {
		if cap(p.free[i].data) >= hint {
			pick = i
			break
		}
	}
	if pick < 0 {
		p.ctrs.Misses++
		pick = n - 1 // reuse struct + Sums; payload will grow
	} else {
		p.ctrs.Hits++
		p.ctrs.BytesRecycled += int64(cap(p.free[pick].data))
	}
	ck := p.free[pick]
	p.free[pick] = p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	return ck
}

// Put hands a retired checkpoint back for reuse. Nil checkpoints, retained
// checkpoints (a capture path still holds the buffer as its patch-in-place
// splice base), a full pool, and checkpoints already in the pool (the
// recovery path mirrors one *Checkpoint under two keys, so one eviction
// pass can retire the same pointer twice) are dropped — silently creating
// two captures that alias one buffer would corrupt a later epoch.
func (p *Pool) Put(ck *Checkpoint) {
	if ck == nil {
		return
	}
	if ck.retained {
		p.mu.Lock()
		p.ctrs.Puts++
		p.ctrs.Drops++
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ctrs.Puts++
	if len(p.free) >= p.max {
		p.ctrs.Drops++
		return
	}
	for _, have := range p.free {
		if have == ck {
			p.ctrs.Drops++
			return
		}
	}
	p.free = append(p.free, ck)
}

// Len returns the number of pooled checkpoints.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Counters returns a snapshot of the pool's activity.
func (p *Pool) Counters() PoolCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ctrs
}

// Recycler is implemented by stores whose Evict can feed retired
// checkpoints into a Pool instead of leaving them to the garbage
// collector. Attaching a pool is only safe when the attaching party owns
// the store exclusively: recycling invalidates evicted checkpoints'
// payloads, so no one may hold Bytes() of an evicted epoch.
type Recycler interface {
	SetPool(*Pool)
}

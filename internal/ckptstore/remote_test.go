package ckptstore

import (
	"errors"
	"fmt"
	"testing"

	"acr/internal/chaos/point"
)

func remoteCk(t testing.TB, seed int64) *Checkpoint {
	t.Helper()
	return Capture(randData(t, seed, 64<<10+9), testChunk, 2)
}

func TestRemotePerfectRoundTrip(t *testing.T) {
	r := NewRemote(RemoteOptions{})
	ck := remoteCk(t, 1)
	k := Key{Replica: 1, Node: 2, Task: 3, Epoch: 7}
	if err := r.Put(k, ck); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root != ck.Root {
		t.Fatalf("root mismatch: %#x != %#x", got.Root, ck.Root)
	}
	if _, err := r.Get(Key{Epoch: 99}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: got %v, want ErrNotFound", err)
	}
	if n := r.Evict(8); n != 1 {
		t.Fatalf("evict: got %d, want 1", n)
	}
	if keys := r.Keys(); len(keys) != 0 {
		t.Fatalf("keys after evict: %v", keys)
	}
	c := r.Counters()
	if c.Puts != 1 || c.Gets != 1 || c.BytesEvicted == 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// Identical options must yield an identical fault schedule for an
// identical op sequence — the property the deterministic soak campaigns
// lean on.
func TestRemoteSeededFaultScheduleDeterministic(t *testing.T) {
	opts := RemoteOptions{TimeoutRate: 0.3, ThrottleRate: 0.2, TornWriteRate: 0.1, Seed: 42}
	ck := remoteCk(t, 2)
	schedule := func() []string {
		r := NewRemote(opts)
		var out []string
		for i := 0; i < 40; i++ {
			k := Key{Epoch: uint64(i)}
			if err := r.Put(k, ck); err != nil {
				out = append(out, fmt.Sprintf("put%d:%v", i, errors.Unwrap(err)))
				continue
			}
			if _, err := r.Get(k); err != nil {
				out = append(out, fmt.Sprintf("get%d:%v", i, errors.Unwrap(err)))
			}
		}
		return out
	}
	a, b := schedule(), schedule()
	if len(a) == 0 {
		t.Fatal("schedule produced no faults; rates too low for the test to mean anything")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("fault schedule not reproducible:\n a: %v\n b: %v", a, b)
	}
}

// A torn write reports a transient timeout but leaves a partial object
// shadowing the key; the read path must surface it as detected damage
// (ErrCorrupt), and a successful re-Put must overwrite it.
func TestRemoteTornWriteShadowsKeyUntilRePut(t *testing.T) {
	r := NewRemote(RemoteOptions{TornWriteRate: 1})
	ck := remoteCk(t, 3)
	k := Key{Epoch: 1}
	err := r.Put(k, ck)
	if !errors.Is(err, ErrRemoteTimeout) || !IsTransientRemote(err) {
		t.Fatalf("torn put: got %v, want transient ErrRemoteTimeout", err)
	}
	if _, gerr := r.Get(k); !errors.Is(gerr, ErrCorrupt) {
		t.Fatalf("read of torn object: got %v, want ErrCorrupt", gerr)
	}
	r.opts.TornWriteRate = 0 // the retry lands cleanly this time
	if err := r.Put(k, ck); err != nil {
		t.Fatal(err)
	}
	got, gerr := r.Get(k)
	if gerr != nil || got.Root != ck.Root {
		t.Fatalf("re-put did not overwrite the torn object: %v", gerr)
	}
}

// At-rest corruption discovered by a read is sticky: once damaged, the
// object stays damaged even if no further corruption rolls hit.
func TestRemoteReadCorruptionSticky(t *testing.T) {
	r := NewRemote(RemoteOptions{ReadCorruptRate: 1})
	k := Key{Epoch: 1}
	if err := r.Put(k, remoteCk(t, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(k); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("first read: got %v, want ErrCorrupt", err)
	}
	r.opts.ReadCorruptRate = 0
	if _, err := r.Get(k); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit rot healed itself: got %v, want sticky ErrCorrupt", err)
	}
}

func TestRemoteDarkModes(t *testing.T) {
	r := NewRemote(RemoteOptions{})
	ck := remoteCk(t, 5)
	k := Key{Epoch: 1}

	r.SetDark(true)
	if err := r.Put(k, ck); !errors.Is(err, ErrRemoteUnavailable) || !IsTransientRemote(err) {
		t.Fatalf("dark put: got %v, want transient ErrRemoteUnavailable", err)
	}
	if _, err := r.Get(k); !errors.Is(err, ErrRemoteUnavailable) {
		t.Fatalf("dark get: got %v, want ErrRemoteUnavailable", err)
	}
	if err := r.Probe(); !errors.Is(err, ErrRemoteUnavailable) {
		t.Fatalf("dark probe: got %v, want ErrRemoteUnavailable", err)
	}
	r.SetDark(false)
	if err := r.Put(k, ck); err != nil {
		t.Fatalf("healed put: %v", err)
	}

	// Bounded outage: exactly n ops fail, then the remote self-heals.
	r.SetDarkFor(2)
	if err := r.Probe(); err == nil {
		t.Fatal("probe 1 during bounded outage should fail")
	}
	if err := r.Put(k, ck); err == nil {
		t.Fatal("op 2 during bounded outage should fail")
	}
	if r.Dark() {
		t.Fatal("remote should have self-healed after 2 dark ops")
	}
	if err := r.Put(k, ck); err != nil {
		t.Fatalf("post-outage put: %v", err)
	}
}

// The injection hook sees remote.put / remote.get before each op and can
// force-fail one via Info.Drop; dark transitions fire remote.dark with the
// op budget (entry) and -1 (recovery).
func TestRemoteInjectionHook(t *testing.T) {
	type fired struct {
		id   point.ID
		iter int
	}
	var log []fired
	dropNext := false
	hook := point.HookFunc(func(id point.ID, info *point.Info) {
		log = append(log, fired{id, info.Iter})
		if dropNext {
			info.Drop = true
			dropNext = false
		}
	})
	r := NewRemote(RemoteOptions{Hook: hook})
	ck := remoteCk(t, 6)
	k := Key{Epoch: 1}

	dropNext = true
	if err := r.Put(k, ck); !errors.Is(err, ErrRemoteUnavailable) {
		t.Fatalf("dropped put: got %v, want ErrRemoteUnavailable", err)
	}
	if err := r.Put(k, ck); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(k); err != nil {
		t.Fatal(err)
	}
	r.SetDarkFor(1)
	_ = r.Probe() // burns the outage, fires the heal transition

	want := []fired{
		{point.RemotePut, 0}, {point.RemotePut, 0}, {point.RemoteGet, 0},
		{point.RemoteDark, 1}, {point.RemoteDark, -1},
	}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("hook log:\n got  %v\n want %v", log, want)
	}
}

package ckptstore

import (
	"os"
	"path/filepath"
	"testing"
)

func ckptOf(t *testing.T, fill byte, n int) *Checkpoint {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = fill
	}
	return Capture(data, 64, 1)
}

// putEpoch stores a complete epoch for a 2-replica, nodes×tasks shape.
func putEpoch(t *testing.T, s Store, epoch uint64, nodes, tasks int) {
	t.Helper()
	for rep := 0; rep < 2; rep++ {
		for n := 0; n < nodes; n++ {
			for tk := 0; tk < tasks; tk++ {
				k := Key{Replica: rep, Node: n, Task: tk, Epoch: epoch}
				if err := s.Put(k, ckptOf(t, byte(epoch), 200)); err != nil {
					t.Fatalf("put %v: %v", k, err)
				}
			}
		}
	}
}

func TestEpochInventory(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(t *testing.T) Store
	}{
		{"mem", func(t *testing.T) Store { return NewMem() }},
		{"delta", func(t *testing.T) Store { return NewDelta() }},
		{"disk", func(t *testing.T) Store {
			d, err := NewDisk(t.TempDir(), nil)
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk(t)
			putEpoch(t, s, 3, 2, 2)
			putEpoch(t, s, 5, 2, 2)
			// Epoch 7 is incomplete: one checkpoint only.
			if err := s.Put(Key{Replica: 0, Node: 0, Task: 0, Epoch: 7}, ckptOf(t, 7, 200)); err != nil {
				t.Fatal(err)
			}
			inv := EpochInventory(s)
			if inv[3] != 8 || inv[5] != 8 || inv[7] != 1 {
				t.Fatalf("inventory = %v, want 8/8/1 at epochs 3/5/7", inv)
			}
			complete := CompleteEpochs(s, 8)
			if len(complete) != 2 || complete[0] != 3 || complete[1] != 5 {
				t.Fatalf("complete epochs = %v, want [3 5]", complete)
			}
		})
	}
}

func TestHookedForwardsKeys(t *testing.T) {
	mem := NewMem()
	putEpoch(t, mem, 1, 1, 1)
	h := &Hooked{inner: mem}
	if got := len(h.Keys()); got != 2 {
		t.Fatalf("hooked keys = %d, want 2", got)
	}
}

// TestDiskReopenRebuildsIndex is the resume-path contract: a Disk opened
// over a directory left behind by a killed process must see every intact
// checkpoint, skip garbage, and still catch payload corruption on Get.
func TestDiskReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	putEpoch(t, d1, 4, 2, 2)
	putEpoch(t, d1, 6, 2, 2)
	// Corrupt one payload at rest and drop garbage files in the directory.
	badKey := Key{Replica: 1, Node: 1, Task: 1, Epoch: 6}
	if err := d1.CorruptAtRest(badKey, 10, 3); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "not-a-checkpoint.txt"), []byte("noise"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "r0_n0_t0_e99.ckpt"), []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := NewDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	complete := CompleteEpochs(d2, 8)
	if len(complete) != 2 || complete[0] != 4 || complete[1] != 6 {
		t.Fatalf("complete epochs after reopen = %v, want [4 6]", complete)
	}
	// Every intact checkpoint round-trips with identical bytes.
	good, err := d2.Get(Key{Replica: 0, Node: 0, Task: 0, Epoch: 4})
	if err != nil {
		t.Fatalf("get after reopen: %v", err)
	}
	want, err := d1.Get(Key{Replica: 0, Node: 0, Task: 0, Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if string(good.Bytes()) != string(want.Bytes()) {
		t.Fatal("reopened payload differs from original")
	}
	// The at-rest corruption is still detected by the rebuilt index.
	if _, err := d2.Get(badKey); err == nil {
		t.Fatal("corrupted checkpoint readable after reopen, want ErrCorrupt")
	}
}

package ckptstore

import "testing"

func poolCkpt(size int) *Checkpoint {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	return Capture(data, 64, 1)
}

func TestPoolGetReturnsDistinctBuffers(t *testing.T) {
	p := NewPool(4)
	p.Put(poolCkpt(128))
	p.Put(poolCkpt(128))
	a := p.Get(64)
	b := p.Get(64)
	if a == b {
		t.Fatalf("two Gets returned the same checkpoint")
	}
	as, bs := a.Scratch(), b.Scratch()
	as = append(as, 1)
	bs = append(bs, 2)
	if &as[0] == &bs[0] {
		t.Fatalf("two Gets returned aliased payload buffers")
	}
	c := p.Get(64) // pool empty: fresh zero checkpoint
	if c == nil || c.Len() != 0 {
		t.Fatalf("Get on empty pool: got %+v, want fresh empty checkpoint", c)
	}
}

func TestPoolCapacityFit(t *testing.T) {
	p := NewPool(4)
	small := poolCkpt(32)
	large := poolCkpt(4096)
	p.Put(large)
	p.Put(small)
	// The most recent retiree (small) cannot hold 1024 bytes; the pool must
	// reach past it to the large one.
	got := p.Get(1024)
	if got != large {
		t.Fatalf("Get(1024) returned the small buffer (cap %d)", cap(got.Scratch()))
	}
	// With only the small one left, a too-big hint still returns it: the
	// struct and Sums are reusable even when the payload must grow.
	got = p.Get(1024)
	if got != small {
		t.Fatalf("Get(1024) on undersized pool: got %+v, want the small checkpoint", got)
	}
	ctrs := p.Counters()
	if ctrs.Hits != 1 || ctrs.Misses != 1 {
		t.Fatalf("counters after one fit and one forced reuse: %+v", ctrs)
	}
}

func TestPoolPutDedupesAndBounds(t *testing.T) {
	p := NewPool(2)
	ck := poolCkpt(64)
	p.Put(ck)
	p.Put(ck) // mirrored under two keys: same pointer retired twice
	if p.Len() != 1 {
		t.Fatalf("double Put of one pointer pooled %d entries, want 1", p.Len())
	}
	p.Put(poolCkpt(64))
	p.Put(poolCkpt(64)) // full
	if p.Len() != 2 {
		t.Fatalf("pool exceeded its bound: %d entries", p.Len())
	}
	p.Put(nil)
	ctrs := p.Counters()
	if ctrs.Drops != 2 { // one dedupe, one overflow; nil is not counted as a Put
		t.Fatalf("drops = %d, want 2 (%+v)", ctrs.Drops, ctrs)
	}
}

func TestMemEvictRecyclesIntoPool(t *testing.T) {
	s := NewMem()
	pool := NewPool(8)
	s.SetPool(pool)
	mirrored := poolCkpt(64)
	// The recovery path mirrors one checkpoint under both replicas' keys.
	if err := s.Put(Key{Replica: 0, Node: 0, Task: 0, Epoch: 1}, mirrored); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key{Replica: 1, Node: 0, Task: 0, Epoch: 1}, mirrored); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key{Replica: 0, Node: 0, Task: 1, Epoch: 1}, poolCkpt(64)); err != nil {
		t.Fatal(err)
	}
	if n := s.Evict(2); n != 3 {
		t.Fatalf("Evict removed %d entries, want 3", n)
	}
	// Three store entries, but the mirrored pointer must be pooled once.
	if pool.Len() != 2 {
		t.Fatalf("pool holds %d checkpoints after evicting a mirrored pair + one, want 2", pool.Len())
	}
	a, b := pool.Get(0), pool.Get(0)
	if a == b {
		t.Fatalf("pooled mirrored checkpoint handed out twice")
	}
}

func TestPoolPutDropsRetained(t *testing.T) {
	p := NewPool(4)
	ck := poolCkpt(128)
	ck.SetRetained(true)
	p.Put(ck)
	if p.Len() != 0 {
		t.Fatalf("retained checkpoint entered the pool (len %d)", p.Len())
	}
	if ctrs := p.Counters(); ctrs.Drops != 1 || ctrs.Puts != 1 {
		t.Fatalf("counters = %+v, want Puts=1 Drops=1", ctrs)
	}
	ck.SetRetained(false)
	p.Put(ck)
	if p.Len() != 1 {
		t.Fatalf("released checkpoint rejected (len %d)", p.Len())
	}
	// Every capture-into resets the flag: a retained struct recycled by its
	// owner re-enters the normal lifecycle.
	ck.SetRetained(true)
	reborn := CaptureInto(ck, make([]byte, 64), 64, 1)
	if reborn.Retained() {
		t.Fatal("CaptureInto must clear the retained flag")
	}
}

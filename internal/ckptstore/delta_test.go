package ckptstore

import (
	"os"
	"testing"

	"acr/internal/pup"
)

func corruptFileByte(t *testing.T, path string, off int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[off] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Consecutive epochs of a mostly-unchanged state must reuse the unchanged
// chunks: only the touched chunk is stored again.
func TestDeltaReusesUnchangedChunks(t *testing.T) {
	st := NewDelta()
	const size = 128 << 10 // 32 chunks of 4 KiB
	base := randData(t, 1, size)
	k1 := Key{Epoch: 1}
	if err := st.Put(k1, Capture(append([]byte(nil), base...), testChunk, 2)); err != nil {
		t.Fatal(err)
	}
	// Epoch 2: a single chunk changes (one cell of an iterative state).
	next := append([]byte(nil), base...)
	next[17*testChunk+123]++
	k2 := Key{Epoch: 2}
	if err := st.Put(k2, Capture(next, testChunk, 2)); err != nil {
		t.Fatal(err)
	}
	c := st.Counters()
	wantChunks := int64(size / testChunk)
	if c.ChunksReused != wantChunks-1 {
		t.Fatalf("reused %d chunks, want %d", c.ChunksReused, wantChunks-1)
	}
	if c.ChunksStored != wantChunks+1 { // base chunks + 1 patch
		t.Fatalf("stored %d chunks, want %d", c.ChunksStored, wantChunks+1)
	}
	if c.BytesWritten != int64(size)+testChunk {
		t.Fatalf("wrote %d bytes, want %d (full base + one patch)", c.BytesWritten, size+testChunk)
	}
	// Both epochs reconstruct correctly.
	got1, err := st.Get(k1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := st.Get(k2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got1.Bytes()) != string(base) || string(got2.Bytes()) != string(next) {
		t.Fatal("delta reconstruction diverged from originals")
	}
}

// The live incremental producer (CaptureDirtyInto, with sums spliced from
// the previous epoch rather than recomputed) must feed the delta tier the
// exact same diffs a from-scratch capture would: BytesWritten counts only
// stored patch bytes, never base-reused chunks, and the
// ChunksStored/ChunksReused split matches the dirty set. This is what lets
// commit trust the counters when it routes spliced captures into a Delta
// flush tier.
func TestDeltaAccountingWithDirtySpliceProducer(t *testing.T) {
	st := NewDelta()
	const size = 64 << 10 // 16 chunks of 4 KiB
	base := randData(t, 11, size)
	prev := Capture(append([]byte(nil), base...), testChunk, 1)
	if err := st.Put(Key{Epoch: 1}, prev); err != nil {
		t.Fatal(err)
	}

	// Epoch 2 comes from the dirty-splice path: two chunks touched, the
	// other fourteen sums copied from prev by CaptureDirtyInto.
	next := append([]byte(nil), base...)
	next[3*testChunk+7] ^= 1
	next[9*testChunk+100] ^= 2
	dirty := []pup.Range{
		{Lo: 3*testChunk + 7, Hi: 3*testChunk + 8},
		{Lo: 9*testChunk + 100, Hi: 9*testChunk + 101},
	}
	ck, reused := CaptureDirtyInto(nil, next, testChunk, 1, prev, dirty)
	if reused != 14 {
		t.Fatalf("splice reused %d sums, want 14", reused)
	}
	before := st.Counters()
	if err := st.Put(Key{Epoch: 2}, ck); err != nil {
		t.Fatal(err)
	}
	c := st.Counters()
	if got := c.ChunksStored - before.ChunksStored; got != 2 {
		t.Fatalf("stored %d chunks for the diff epoch, want 2", got)
	}
	if got := c.ChunksReused - before.ChunksReused; got != 14 {
		t.Fatalf("reused %d chunks for the diff epoch, want 14", got)
	}
	if got := c.BytesWritten - before.BytesWritten; got != 2*testChunk {
		t.Fatalf("wrote %d bytes for the diff epoch, want %d (two patches only)", got, 2*testChunk)
	}
	// The diff epoch must reconstruct to the spliced payload exactly.
	got, err := st.Get(Key{Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Bytes()) != string(next) {
		t.Fatal("delta reconstruction of a spliced capture diverged")
	}
}

// A shape change (the packed state grew) must force a transparent rebase.
func TestDeltaRebaseOnShapeChange(t *testing.T) {
	st := NewDelta()
	if err := st.Put(Key{Epoch: 1}, Capture(randData(t, 1, 64<<10), testChunk, 1)); err != nil {
		t.Fatal(err)
	}
	grown := randData(t, 2, 96<<10)
	if err := st.Put(Key{Epoch: 2}, Capture(grown, testChunk, 1)); err != nil {
		t.Fatal(err)
	}
	if c := st.Counters(); c.ChunksReused != 0 {
		t.Fatalf("shape change reused %d chunks", c.ChunksReused)
	}
	got, err := st.Get(Key{Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Bytes()) != string(grown) {
		t.Fatal("rebase lost data")
	}
	// Epoch 3 diffs against the new base.
	if err := st.Put(Key{Epoch: 3}, Capture(append([]byte(nil), grown...), testChunk, 1)); err != nil {
		t.Fatal(err)
	}
	if c := st.Counters(); c.ChunksReused != int64((96<<10)/testChunk) {
		t.Fatalf("reused %d chunks after rebase, want all %d", c.ChunksReused, (96<<10)/testChunk)
	}
}

// Evicting the base epoch while diffs survive must re-anchor them, and a
// later Put must keep working against the re-anchored base.
func TestDeltaEvictReanchorsThenDiffs(t *testing.T) {
	st := NewDelta()
	data := randData(t, 5, 64<<10)
	for epoch := uint64(1); epoch <= 3; epoch++ {
		buf := append([]byte(nil), data...)
		buf[int(epoch)*testChunk] ^= byte(epoch) // one chunk differs per epoch
		if err := st.Put(Key{Epoch: epoch}, Capture(buf, testChunk, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.Evict(3); n != 2 {
		t.Fatalf("evicted %d, want 2", n)
	}
	got, err := st.Get(Key{Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	want[3*testChunk] ^= 3
	if string(got.Bytes()) != string(want) {
		t.Fatal("re-anchored epoch corrupted")
	}
	// New epoch diffs against the re-anchored base (identical payload:
	// everything reused).
	before := st.Counters().ChunksReused
	if err := st.Put(Key{Epoch: 4}, Capture(append([]byte(nil), want...), testChunk, 1)); err != nil {
		t.Fatal(err)
	}
	if c := st.Counters(); c.ChunksReused-before != int64((64<<10)/testChunk) {
		t.Fatalf("post-evict put reused %d chunks, want all", c.ChunksReused-before)
	}
}

package ckptstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Resilient hardens an unreliable Store (typically a Remote) for use as a
// checkpoint tier:
//
//   - transient failures (IsTransientRemote) are retried with
//     capped-exponential backoff and seeded jitter;
//   - each operation carries an optional deadline budget covering all its
//     attempts, expiring as the typed ErrDeadlineExceeded;
//   - Put is idempotent: re-Putting a checkpoint whose root already landed
//     under the key is skipped (torn uploads do not count — only a
//     confirmed success records the root, so a retry after a torn write
//     correctly overwrites the partial object);
//   - a circuit breaker trips after BreakerThreshold consecutive failed
//     operations. While open, Put traffic fails over to the configured
//     local Fallback store (graceful degradation — the flush cadence keeps
//     landing epochs somewhere durable) and Get is served from the
//     fallback. A background probe half-opens the breaker every
//     ProbeInterval; the first healthy probe re-closes it.
//
// Resilient is safe for concurrent use. Close stops the background prober.
type Resilient struct {
	inner Store
	opts  ResilientOptions

	mu     sync.Mutex
	rng    *rand.Rand // backoff jitter
	state  BreakerState
	consec int // consecutive failed ops while closed
	// lastRoot records the root of the last confirmed-successful Put per
	// key — the idempotent re-Put dedupe index.
	lastRoot map[Key]uint64
	probeT   *time.Timer
	closed   bool

	retries     atomic.Int64
	transients  atomic.Int64
	deadlines   atomic.Int64
	trips       atomic.Int64
	recloses    atomic.Int64
	probes      atomic.Int64
	probeFails  atomic.Int64
	failovers   atomic.Int64
	dedupedPuts atomic.Int64
}

// BreakerState is the circuit breaker's position.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed: traffic flows to the inner store.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the inner store is presumed down; Put fails over to the
	// fallback, Get is served from it.
	BreakerOpen
	// BreakerHalfOpen: a probe is in flight deciding whether to re-close.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// ErrDeadlineExceeded reports a resilient operation whose retry budget ran
// past its per-op deadline. errors.Is-able.
var ErrDeadlineExceeded = errors.New("ckptstore: resilient op deadline exceeded")

// ErrBreakerOpen reports an operation rejected because the circuit breaker
// is open and no fallback store is configured.
var ErrBreakerOpen = errors.New("ckptstore: remote circuit breaker open")

// ResilientOptions parameterizes the wrapper. The zero value is usable:
// 3 retries, no backoff sleep, no deadline, breaker threshold 3, 50ms
// probes, no fallback.
type ResilientOptions struct {
	// MaxRetries bounds re-attempts after the first try (default 3; < 0
	// disables retries).
	MaxRetries int
	// BaseBackoff is the first retry's sleep, doubling per attempt and
	// capped at MaxBackoff, scaled by jitter in [0.5, 1). Zero sleeps not
	// at all — required in deterministic chaos campaigns.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the backoff jitter rng.
	JitterSeed int64
	// OpDeadline bounds one operation including all its retries and
	// backoff sleeps; exceeding it returns ErrDeadlineExceeded. Zero
	// disables the deadline.
	OpDeadline time.Duration
	// BreakerThreshold is the consecutive failed-op count that trips the
	// breaker (default 3; < 0 disables the breaker).
	BreakerThreshold int
	// ProbeInterval is the background half-open probe cadence while the
	// breaker is open (default 50ms).
	ProbeInterval time.Duration
	// Fallback, if non-nil, receives Put traffic (and serves Get) while
	// the breaker is open.
	Fallback Store
}

func (o *ResilientOptions) normalize() {
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 3
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 64 * o.BaseBackoff
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 50 * time.Millisecond
	}
}

// ResilientStats is the wrapper's cumulative counter snapshot. The JSON
// tags are a stable lower_snake schema served by the acrd API and metrics
// exporter.
type ResilientStats struct {
	Retries       int64  `json:"retries"`        // re-attempts after a transient failure
	Transients    int64  `json:"transients"`     // transient attempt failures observed
	Deadlines     int64  `json:"deadlines"`      // ops expired by OpDeadline
	Trips         int64  `json:"trips"`          // breaker closed -> open transitions
	Recloses      int64  `json:"recloses"`       // breaker open -> closed transitions
	Probes        int64  `json:"probes"`         // half-open probes attempted
	ProbeFailures int64  `json:"probe_failures"` // probes that kept the breaker open
	Failovers     int64  `json:"failovers"`      // Puts/Gets served by the fallback store
	DedupedPuts   int64  `json:"deduped_puts"`   // idempotent re-Puts skipped
	State         string `json:"state"`          // current breaker state
}

// ResilientReporter is the capability interface ResilientStatsOf discovers
// through wrapper layers.
type ResilientReporter interface {
	ResilientStats() ResilientStats
}

// ResilientStatsOf unwraps hooked/arbitrated/other layered stores (via
// their Inner() accessors) looking for a ResilientReporter.
func ResilientStatsOf(s Store) (ResilientStats, bool) {
	for s != nil {
		if r, ok := s.(ResilientReporter); ok {
			return r.ResilientStats(), true
		}
		u, ok := s.(interface{ Inner() Store })
		if !ok {
			return ResilientStats{}, false
		}
		s = u.Inner()
	}
	return ResilientStats{}, false
}

// NewResilient wraps inner.
func NewResilient(inner Store, opts ResilientOptions) *Resilient {
	opts.normalize()
	return &Resilient{
		inner:    inner,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.JitterSeed)),
		lastRoot: make(map[Key]uint64),
	}
}

// Inner returns the wrapped store.
func (r *Resilient) Inner() Store { return r.inner }

// Name implements Store.
func (r *Resilient) Name() string { return "resilient(" + r.inner.Name() + ")" }

// Close stops the background prober. The wrapper stays usable (the
// breaker just never half-opens again).
func (r *Resilient) Close() {
	r.mu.Lock()
	r.closed = true
	if r.probeT != nil {
		r.probeT.Stop()
		r.probeT = nil
	}
	r.mu.Unlock()
}

// State returns the breaker's current position.
func (r *Resilient) State() BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// ResilientStats implements ResilientReporter.
func (r *Resilient) ResilientStats() ResilientStats {
	return ResilientStats{
		Retries:       r.retries.Load(),
		Transients:    r.transients.Load(),
		Deadlines:     r.deadlines.Load(),
		Trips:         r.trips.Load(),
		Recloses:      r.recloses.Load(),
		Probes:        r.probes.Load(),
		ProbeFailures: r.probeFails.Load(),
		Failovers:     r.failovers.Load(),
		DedupedPuts:   r.dedupedPuts.Load(),
		State:         r.State().String(),
	}
}

// open reports whether traffic should bypass the inner store right now.
func (r *Resilient) open() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state != BreakerClosed
}

// noteSuccess resets the breaker's consecutive-failure count.
func (r *Resilient) noteSuccess() {
	r.mu.Lock()
	r.consec = 0
	r.mu.Unlock()
}

// noteFailure books one failed op and trips the breaker at the threshold.
func (r *Resilient) noteFailure() {
	r.mu.Lock()
	if r.state != BreakerClosed || r.opts.BreakerThreshold < 0 {
		r.mu.Unlock()
		return
	}
	r.consec++
	if r.consec < r.opts.BreakerThreshold {
		r.mu.Unlock()
		return
	}
	r.state = BreakerOpen
	r.consec = 0
	r.armProbeLocked()
	r.mu.Unlock()
	r.trips.Add(1)
}

// armProbeLocked schedules the next background probe. r.mu held.
func (r *Resilient) armProbeLocked() {
	if r.closed {
		return
	}
	if r.probeT != nil {
		r.probeT.Stop()
	}
	r.probeT = time.AfterFunc(r.opts.ProbeInterval, r.probe)
}

// prober is the optional cheap health check of the inner store.
type prober interface{ Probe() error }

// probe half-opens the breaker and decides: a healthy inner store
// re-closes it, a failed probe re-opens and re-arms.
func (r *Resilient) probe() {
	r.mu.Lock()
	if r.closed || r.state == BreakerClosed {
		r.mu.Unlock()
		return
	}
	r.state = BreakerHalfOpen
	r.mu.Unlock()
	r.probes.Add(1)

	var err error
	if p, ok := r.inner.(prober); ok {
		err = p.Probe()
	} else {
		// No probe capability: a Get of an impossible key doubles as the
		// health check. Absence is health; only transport failure is not.
		_, gerr := r.inner.Get(Key{Replica: -1, Node: -1, Task: -1, Epoch: 0})
		if gerr != nil && !errors.Is(gerr, ErrNotFound) && !errors.Is(gerr, ErrCorrupt) {
			err = gerr
		}
	}

	r.mu.Lock()
	if r.closed || r.state != BreakerHalfOpen {
		r.mu.Unlock()
		return
	}
	if err == nil {
		r.state = BreakerClosed
		r.consec = 0
		if r.probeT != nil {
			r.probeT.Stop()
			r.probeT = nil
		}
		r.mu.Unlock()
		r.recloses.Add(1)
		return
	}
	r.state = BreakerOpen
	r.armProbeLocked()
	r.mu.Unlock()
	r.probeFails.Add(1)
}

// backoff sleeps before retry attempt (1-based), honoring the deadline
// budget. It reports false when the sleep would overrun the deadline.
func (r *Resilient) backoff(attempt int, start time.Time) bool {
	d := time.Duration(0)
	if r.opts.BaseBackoff > 0 {
		d = r.opts.BaseBackoff << uint(attempt-1)
		if d > r.opts.MaxBackoff {
			d = r.opts.MaxBackoff
		}
		r.mu.Lock()
		d = d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
		r.mu.Unlock()
	}
	if r.opts.OpDeadline > 0 && time.Since(start)+d > r.opts.OpDeadline {
		return false
	}
	if d > 0 {
		time.Sleep(d)
	}
	return true
}

// attempt runs op with the retry/backoff/deadline policy. Transient
// failures are retried; anything else returns immediately.
func (r *Resilient) attempt(op func() error) error {
	start := time.Now()
	var err error
	for try := 0; ; try++ {
		err = op()
		if err == nil || !IsTransientRemote(err) {
			return err
		}
		r.transients.Add(1)
		if try >= r.opts.MaxRetries {
			return err
		}
		if !r.backoff(try+1, start) {
			r.deadlines.Add(1)
			return fmt.Errorf("%w: %v", ErrDeadlineExceeded, err)
		}
		r.retries.Add(1)
	}
}

// Put implements Store. While the breaker is open the write fails over to
// the fallback store; with no fallback it fails fast with ErrBreakerOpen.
func (r *Resilient) Put(k Key, ck *Checkpoint) error {
	if r.open() {
		return r.failoverPut(k, ck)
	}
	r.mu.Lock()
	dup := r.lastRoot[k] == ck.Root && ck.Root != 0
	r.mu.Unlock()
	if dup {
		r.dedupedPuts.Add(1)
		return nil
	}
	err := r.attempt(func() error { return r.inner.Put(k, ck) })
	if err != nil {
		r.noteFailure()
		if r.open() {
			// The op that tripped the breaker still deserves degradation:
			// land it on the fallback rather than losing the epoch.
			return r.failoverPut(k, ck)
		}
		return err
	}
	r.noteSuccess()
	r.mu.Lock()
	r.lastRoot[k] = ck.Root
	r.mu.Unlock()
	return nil
}

func (r *Resilient) failoverPut(k Key, ck *Checkpoint) error {
	if r.opts.Fallback == nil {
		return fmt.Errorf("%w: put %v", ErrBreakerOpen, k)
	}
	if err := r.opts.Fallback.Put(k, ck); err != nil {
		return err
	}
	r.failovers.Add(1)
	return nil
}

// Get implements Store. While the breaker is open the read is served from
// the fallback (where failed-over epochs live); with no fallback it fails
// fast with ErrBreakerOpen.
func (r *Resilient) Get(k Key) (*Checkpoint, error) {
	if r.open() {
		return r.failoverGet(k)
	}
	var ck *Checkpoint
	err := r.attempt(func() error {
		var e error
		ck, e = r.inner.Get(k)
		return e
	})
	if err != nil {
		if IsTransientRemote(err) || errors.Is(err, ErrDeadlineExceeded) {
			r.noteFailure()
			if r.open() {
				return r.failoverGet(k)
			}
		}
		return nil, err
	}
	r.noteSuccess()
	return ck, nil
}

func (r *Resilient) failoverGet(k Key) (*Checkpoint, error) {
	if r.opts.Fallback == nil {
		return nil, fmt.Errorf("%w: get %v", ErrBreakerOpen, k)
	}
	ck, err := r.opts.Fallback.Get(k)
	if err != nil {
		return nil, err
	}
	r.failovers.Add(1)
	return ck, nil
}

// Compare implements Store through the resilient Get path, so an open
// breaker compares fallback copies.
func (r *Resilient) Compare(a, b Key) (CompareResult, error) {
	ca, err := r.Get(a)
	if err != nil {
		return CompareResult{}, fmt.Errorf("ckptstore: compare %v: %w", a, err)
	}
	cb, err := r.Get(b)
	if err != nil {
		return CompareResult{}, fmt.Errorf("ckptstore: compare %v: %w", b, err)
	}
	return CompareCheckpoints(ca, cb), nil
}

// Evict implements Store, forwarding to both the inner store and the
// fallback so failed-over epochs obey the same retention bound.
func (r *Resilient) Evict(olderThan uint64) int {
	n := 0
	if !r.open() {
		n += r.inner.Evict(olderThan)
	}
	if r.opts.Fallback != nil {
		n += r.opts.Fallback.Evict(olderThan)
	}
	r.mu.Lock()
	for k := range r.lastRoot {
		if k.Epoch < olderThan {
			delete(r.lastRoot, k)
		}
	}
	r.mu.Unlock()
	return n
}

// Keys implements Enumerator: the union of inner and fallback residency
// (an epoch failed over during an outage is still inventory).
func (r *Resilient) Keys() []Key {
	seen := make(map[Key]bool)
	var out []Key
	add := func(s Store) {
		e, ok := s.(Enumerator)
		if !ok {
			return
		}
		for _, k := range e.Keys() {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	add(r.inner)
	if r.opts.Fallback != nil {
		add(r.opts.Fallback)
	}
	return out
}

// Counters implements Store.
func (r *Resilient) Counters() Counters { return r.inner.Counters() }

// Package ckptstore is ACR's tiered checkpoint storage subsystem.
//
// The paper's protection scheme (§2.1, §4.2) lives or dies by how fast
// buddy checkpoints can be produced, shipped, and compared. The original
// core treated a checkpoint as one opaque byte blob: serial Fletcher-64
// over the whole buffer, whole-blob byte comparison, one in-memory copy.
// This package replaces that with a storage abstraction in the spirit of
// multilevel checkpointing systems (CRAFT, FTI, SCR):
//
//   - Checkpoints are chunked: capture splits the pup buffer into
//     fixed-size chunks and computes per-chunk Fletcher-64 sums with a
//     worker pool (checksum.Fletcher64Chunks), folded into a
//     position-dependent root.
//   - Comparison is a Merkle-style two-phase check: roots first (the
//     32-byte exchange of §4.2), then — only on mismatch — per-chunk sums
//     to localize the corrupted chunk. SDC diagnostics name the chunk,
//     not just the task.
//   - Storage is pluggable behind the Store interface, keyed by
//     {replica, node, task, epoch}: an in-memory buddy tier (Mem), a
//     disk tier wired to the parallel-file-system cost model of
//     internal/model (Disk), and a delta tier that keeps a base epoch
//     plus per-chunk diffs (Delta).
//
// Every backend maintains Counters (bytes written/read, chunks reused,
// compare time, last localized chunk) that internal/core surfaces through
// core.Stats and trace events.
package ckptstore

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"acr/internal/checksum"
)

// Key identifies one task's checkpoint at one epoch. Epochs are assigned
// by the controller and increase monotonically; epoch 0 is reserved for
// "no checkpoint".
type Key struct {
	Replica int
	Node    int
	Task    int
	Epoch   uint64
}

func (k Key) String() string {
	return fmt.Sprintf("r%d/n%d/t%d@e%d", k.Replica, k.Node, k.Task, k.Epoch)
}

// ident is the epoch-less task identity, used by backends that track
// per-task history (the delta tier).
type ident struct {
	Replica, Node, Task int
}

func (k Key) ident() ident { return ident{k.Replica, k.Node, k.Task} }

// ErrNotFound reports a Get/Compare against a key the store does not hold.
var ErrNotFound = errors.New("ckptstore: checkpoint not found")

// ErrCorrupt reports a stored checkpoint whose payload no longer matches
// its resident metadata — corruption at rest, caught by a tier's read-path
// re-verification. Callers distinguish it with errors.Is: a corrupt
// checkpoint is *detected* damage (restore from an older epoch, count an
// SDC), where ErrNotFound is merely absence.
var ErrCorrupt = errors.New("ckptstore: checkpoint corrupted at rest")

// Checkpoint is one chunked, checksummed task checkpoint. The zero value
// is not useful; build one with Capture.
type Checkpoint struct {
	// ChunkSize is the chunk granularity the sums were computed at.
	ChunkSize int
	// Root is the position-dependent fold of Sums (checksum.ChunkRoot).
	Root uint64
	// Sums holds the per-chunk Fletcher-64 sums.
	Sums []uint64
	// data is the full packed task state. Backends may share it; callers
	// must treat Bytes() as read-only.
	data []byte
	// retained marks a checkpoint a capture path still holds a reference to
	// beyond its store residency (the patch-in-place splice base). Pool.Put
	// drops retained checkpoints instead of recycling them: handing the
	// buffer to another capture while its owner plans to patch it would
	// corrupt both. Every Capture*Into resets the flag; the owner re-arms it
	// each epoch.
	retained bool
}

// SetRetained marks (or clears) the checkpoint as privately retained by a
// capture path, excluding it from pool recycling. See the field doc.
func (c *Checkpoint) SetRetained(v bool) { c.retained = v }

// Retained reports whether the checkpoint is excluded from pool recycling.
func (c *Checkpoint) Retained() bool { return c.retained }

// Capture chunks data and computes its checksums on up to workers
// goroutines. The data slice is retained (not copied); the caller must not
// mutate it afterwards — checkpoint capture hands ownership to the store,
// mirroring how a real runtime would hand the buffer to the checkpoint
// transport.
func Capture(data []byte, chunkSize, workers int) *Checkpoint {
	if chunkSize <= 0 {
		chunkSize = checksum.DefaultChunkSize
	}
	root, sums := checksum.Fletcher64Chunks(data, chunkSize, workers)
	return &Checkpoint{ChunkSize: chunkSize, Root: root, Sums: sums, data: data}
}

// CaptureInto is Capture reusing a retired checkpoint's Sums slice and
// struct (typically obtained from a Pool). ck == nil behaves exactly like
// Capture. The previous contents of ck are overwritten; its payload is NOT
// reused here — pack into ck.Scratch() first and pass the result as data.
func CaptureInto(ck *Checkpoint, data []byte, chunkSize, workers int) *Checkpoint {
	if ck == nil {
		return Capture(data, chunkSize, workers)
	}
	if chunkSize <= 0 {
		chunkSize = checksum.DefaultChunkSize
	}
	root, sums := checksum.Fletcher64ChunksInto(ck.Sums, data, chunkSize, workers)
	*ck = Checkpoint{ChunkSize: chunkSize, Root: root, Sums: sums, data: data}
	return ck
}

// Bytes returns the full packed state. Read-only.
func (c *Checkpoint) Bytes() []byte { return c.data }

// Clone returns a deep copy of the checkpoint: payload and sums live in
// fresh buffers, so the clone stays valid after the original is evicted
// and recycled by a pool. The flush path of the recovery ladder clones
// committed checkpoints before handing them to the asynchronous durable
// writer.
func (c *Checkpoint) Clone() *Checkpoint {
	data := make([]byte, len(c.data))
	copy(data, c.data)
	sums := make([]uint64, len(c.Sums))
	copy(sums, c.Sums)
	return &Checkpoint{ChunkSize: c.ChunkSize, Root: c.Root, Sums: sums, data: data}
}

// Scratch returns the checkpoint's payload buffer truncated to zero
// length, for reuse as a pack destination. Only call it on a retired
// checkpoint obtained from a Pool — on a live stored checkpoint the
// returned window aliases data other readers still trust.
func (c *Checkpoint) Scratch() []byte { return c.data[:0] }

// Len returns the packed state size in bytes.
func (c *Checkpoint) Len() int { return len(c.data) }

// NumChunks returns the chunk count.
func (c *Checkpoint) NumChunks() int { return len(c.Sums) }

// Chunk returns the i-th chunk window (shorter at the tail).
func (c *Checkpoint) Chunk(i int) []byte {
	lo := i * c.ChunkSize
	if lo >= len(c.data) {
		return nil
	}
	hi := lo + c.ChunkSize
	if hi > len(c.data) {
		hi = len(c.data)
	}
	return c.data[lo:hi]
}

// CompareResult is the outcome of a two-phase buddy comparison.
type CompareResult struct {
	// Match is true when the roots agree.
	Match bool
	// Chunk is the first mismatching chunk index when Match is false and
	// the chunk structure agrees; -1 otherwise. This is the localization
	// the Merkle-style compare buys: rollback diagnostics can attribute
	// the SDC to a byte range instead of a whole task.
	Chunk int
	// Structural is true when the two checkpoints cannot be aligned
	// (different lengths, chunk sizes, or chunk counts) — divergence, not
	// a bit flip.
	Structural bool
}

func (r CompareResult) String() string {
	switch {
	case r.Match:
		return "match"
	case r.Structural:
		return "structural divergence"
	case r.Chunk >= 0:
		return fmt.Sprintf("mismatch at chunk %d", r.Chunk)
	}
	return "mismatch"
}

// CompareCheckpoints runs the two-phase comparison on two captured
// checkpoints: roots first (cheap, what the buddies actually exchange),
// then per-chunk sums to localize the first corrupted chunk.
func CompareCheckpoints(a, b *Checkpoint) CompareResult {
	if a.ChunkSize != b.ChunkSize || len(a.Sums) != len(b.Sums) || a.Len() != b.Len() {
		return CompareResult{Chunk: -1, Structural: true}
	}
	if a.Root == b.Root {
		return CompareResult{Match: true, Chunk: -1}
	}
	for i := range a.Sums {
		if a.Sums[i] != b.Sums[i] {
			return CompareResult{Chunk: i}
		}
	}
	// Roots differ but every chunk sum agrees: impossible unless the root
	// fold itself was corrupted in flight; report without localization.
	return CompareResult{Chunk: -1}
}

// Store is the pluggable checkpoint tier. Implementations must be safe
// for concurrent use: capture Puts per-task checkpoints from a worker
// pool.
type Store interface {
	// Put stores a checkpoint under the key, overwriting any previous
	// value at the same key.
	Put(k Key, ck *Checkpoint) error
	// Get retrieves the checkpoint stored under the key, or ErrNotFound.
	Get(k Key) (*Checkpoint, error)
	// Compare runs the two-phase buddy comparison between two stored
	// checkpoints without materializing either one's data.
	Compare(a, b Key) (CompareResult, error)
	// Evict drops every checkpoint with epoch < olderThan and returns
	// the number of task checkpoints removed. Backends with internal
	// bases (the delta tier) re-anchor surviving epochs first.
	Evict(olderThan uint64) int
	// Counters returns a snapshot of the store's activity counters.
	Counters() Counters
	// Name identifies the backend in stats and trace events.
	Name() string
}

// Enumerator is the optional capability of tiers that can list their
// resident checkpoints — the inventory introspection the acrd control
// plane serves and validates resume journals against. The returned keys
// are a snapshot in no particular order.
type Enumerator interface {
	// Keys lists every resident task checkpoint.
	Keys() []Key
}

// EpochInventory summarizes an enumerable store's resident epochs as a map
// from epoch to resident task-checkpoint count. It returns nil when the
// store cannot enumerate.
func EpochInventory(s Store) map[uint64]int {
	e, ok := s.(Enumerator)
	if !ok {
		return nil
	}
	out := make(map[uint64]int)
	for _, k := range e.Keys() {
		out[k.Epoch]++
	}
	return out
}

// CompleteEpochs returns, ascending, the epochs for which the store holds
// exactly want task checkpoints — the restorable epochs of a job whose
// machine shape needs want (= 2 replicas × nodes × tasks) checkpoints per
// epoch. Nil when the store cannot enumerate or nothing is complete.
func CompleteEpochs(s Store, want int) []uint64 {
	if want <= 0 {
		return nil
	}
	inv := EpochInventory(s)
	var out []uint64
	for epoch, n := range inv {
		if n == want {
			out = append(out, epoch)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Volatile is the optional capability of tiers whose contents live in
// node memory and die with the nodes holding them. DropNode models the
// memory loss of a buddy-pair double fault: every epoch of the logical
// node's checkpoints is discarded. Non-volatile tiers (disk) simply do
// not implement it. Dropped checkpoints are never recycled into a pool:
// a recovery-mirrored checkpoint is stored under two keys, and the buddy
// key may still be live when one side is dropped.
type Volatile interface {
	// DropNode discards every stored checkpoint of the logical node
	// (all tasks, all epochs) and returns how many were dropped.
	DropNode(replica, node int) int
}

// Counters aggregates a store's activity. All fields are cumulative. The
// JSON tags are a stable lower_snake schema consumed by the acrd API and
// metrics exporter; renaming a tag is a breaking API change.
type Counters struct {
	Puts         int64 `json:"puts"`
	Gets         int64 `json:"gets"`
	Compares     int64 `json:"compares"`
	Mismatches   int64 `json:"mismatches"`    // compares that found a difference
	BytesWritten int64 `json:"bytes_written"` // payload bytes accepted by Put (after dedup/delta)
	BytesRead    int64 `json:"bytes_read"`    // payload bytes materialized by Get
	BytesEvicted int64 `json:"bytes_evicted"`
	// ChunksStored / ChunksReused split each Put's chunks into freshly
	// stored versus reused-from-base (delta tier; other tiers store all).
	ChunksStored int64 `json:"chunks_stored"`
	ChunksReused int64 `json:"chunks_reused"`
	// CompareTime is the cumulative wall time spent in Compare.
	CompareTime time.Duration `json:"compare_time_ns"`
	// LastLocalizedChunk is the chunk index of the most recent localized
	// mismatch, -1 when no mismatch has been localized yet.
	LastLocalizedChunk int64 `json:"last_localized_chunk"`
}

// counters is the embeddable atomic implementation behind Counters.
type counters struct {
	puts, gets, compares, mismatches      atomic.Int64
	bytesWritten, bytesRead, bytesEvicted atomic.Int64
	chunksStored, chunksReused            atomic.Int64
	compareNanos                          atomic.Int64
	lastLocalized                         atomic.Int64
}

func newCounters() *counters {
	c := &counters{}
	c.lastLocalized.Store(-1)
	return c
}

func (c *counters) snapshot() Counters {
	return Counters{
		Puts:               c.puts.Load(),
		Gets:               c.gets.Load(),
		Compares:           c.compares.Load(),
		Mismatches:         c.mismatches.Load(),
		BytesWritten:       c.bytesWritten.Load(),
		BytesRead:          c.bytesRead.Load(),
		BytesEvicted:       c.bytesEvicted.Load(),
		ChunksStored:       c.chunksStored.Load(),
		ChunksReused:       c.chunksReused.Load(),
		CompareTime:        time.Duration(c.compareNanos.Load()),
		LastLocalizedChunk: c.lastLocalized.Load(),
	}
}

// recordCompare folds one comparison outcome into the counters.
func (c *counters) recordCompare(res CompareResult, elapsed time.Duration) {
	c.compares.Add(1)
	c.compareNanos.Add(int64(elapsed))
	if !res.Match {
		c.mismatches.Add(1)
		if res.Chunk >= 0 {
			c.lastLocalized.Store(int64(res.Chunk))
		}
	}
}

// compareVia is the shared Compare implementation for backends that can
// hand out *Checkpoint views cheaply.
func compareVia(c *counters, get func(Key) (*Checkpoint, error), a, b Key) (CompareResult, error) {
	ca, err := get(a)
	if err != nil {
		return CompareResult{}, fmt.Errorf("ckptstore: compare %v: %w", a, err)
	}
	cb, err := get(b)
	if err != nil {
		return CompareResult{}, fmt.Errorf("ckptstore: compare %v: %w", b, err)
	}
	began := time.Now()
	res := CompareCheckpoints(ca, cb)
	c.recordCompare(res, time.Since(began))
	return res, nil
}

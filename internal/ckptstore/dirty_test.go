package ckptstore

import (
	"testing"

	"acr/internal/pup"
)

func dirtyTestData(n int, seed byte) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7) ^ seed
	}
	return data
}

// mustMatchFresh asserts ck carries exactly the sums and root a
// from-scratch capture of data computes.
func mustMatchFresh(t *testing.T, ck *Checkpoint, data []byte, chunkSize int) {
	t.Helper()
	fresh := Capture(append([]byte(nil), data...), chunkSize, 1)
	if ck.Root != fresh.Root {
		t.Fatalf("root %x != fresh root %x", ck.Root, fresh.Root)
	}
	if len(ck.Sums) != len(fresh.Sums) {
		t.Fatalf("%d sums, fresh has %d", len(ck.Sums), len(fresh.Sums))
	}
	for i := range ck.Sums {
		if ck.Sums[i] != fresh.Sums[i] {
			t.Fatalf("sum[%d] %x != fresh %x", i, ck.Sums[i], fresh.Sums[i])
		}
	}
}

func TestCaptureDirtyIntoTable(t *testing.T) {
	const chunkSize = 64
	const size = chunkSize*7 + 13 // 8 chunks, ragged tail
	cases := []struct {
		name string
		// mutate edits the new payload and returns the dirty ranges the
		// packer would report (they must cover every changed byte).
		mutate     func(data []byte) []pup.Range
		wantReused int
	}{
		{
			name:       "all-clean",
			mutate:     func(data []byte) []pup.Range { return nil },
			wantReused: 8,
		},
		{
			name: "all-dirty",
			mutate: func(data []byte) []pup.Range {
				for i := range data {
					data[i] ^= 0x5a
				}
				return []pup.Range{{Lo: 0, Hi: int(^uint(0) >> 1)}}
			},
			wantReused: 0,
		},
		{
			name: "single-chunk",
			mutate: func(data []byte) []pup.Range {
				data[3*chunkSize+5] ^= 1
				return []pup.Range{{Lo: 3*chunkSize + 5, Hi: 3*chunkSize + 6}}
			},
			wantReused: 7,
		},
		{
			name: "chunk-boundary-straddling",
			mutate: func(data []byte) []pup.Range {
				for i := 2*chunkSize - 4; i < 2*chunkSize+4; i++ {
					data[i] ^= 0xff
				}
				return []pup.Range{{Lo: 2*chunkSize - 4, Hi: 2*chunkSize + 4}}
			},
			wantReused: 6, // chunks 1 and 2 recomputed
		},
		{
			name: "ragged-tail-chunk",
			mutate: func(data []byte) []pup.Range {
				data[len(data)-1] ^= 0x80
				return []pup.Range{{Lo: len(data) - 1, Hi: len(data)}}
			},
			wantReused: 7,
		},
		{
			name: "clean-range-beyond-data",
			mutate: func(data []byte) []pup.Range {
				// A mark past the payload (e.g. a widened scalar range on a
				// later field that shrank) must not disturb real chunks.
				return []pup.Range{{Lo: size + 100, Hi: size + 200}}
			},
			wantReused: 8,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := dirtyTestData(size, 0)
			prev := Capture(base, chunkSize, 1)
			prevSums := append([]uint64(nil), prev.Sums...)

			next := append([]byte(nil), base...)
			dirty := pup.NormalizeRanges(tc.mutate(next))
			ck, reused := CaptureDirtyInto(nil, next, chunkSize, 1, prev, dirty)
			if reused != tc.wantReused {
				t.Fatalf("reused %d chunks, want %d", reused, tc.wantReused)
			}
			mustMatchFresh(t, ck, next, chunkSize)

			// prev must never be aliased or mutated by the splice.
			for i := range ck.Sums {
				ck.Sums[i] ^= 0xdeadbeef
			}
			for i, s := range prev.Sums {
				if s != prevSums[i] {
					t.Fatalf("prev.Sums[%d] changed: splice aliased the base", i)
				}
			}
		})
	}
}

func TestCaptureDirtyIntoIncompatiblePrevFallsBack(t *testing.T) {
	const chunkSize = 64
	base := dirtyTestData(chunkSize*4, 0)
	prev := Capture(base, chunkSize, 1)

	// Different payload length: full recompute, nothing reused.
	grown := dirtyTestData(chunkSize*5, 1)
	ck, reused := CaptureDirtyInto(nil, grown, chunkSize, 1, prev, nil)
	if reused != 0 {
		t.Fatalf("shape change reused %d chunks, want 0", reused)
	}
	mustMatchFresh(t, ck, grown, chunkSize)

	// Different chunk size: likewise.
	ck, reused = CaptureDirtyInto(nil, append([]byte(nil), base...), chunkSize/2, 1, prev, nil)
	if reused != 0 {
		t.Fatalf("chunk-size change reused %d chunks, want 0", reused)
	}
	mustMatchFresh(t, ck, base, chunkSize/2)

	// Nil prev: plain capture.
	ck, reused = CaptureDirtyInto(nil, append([]byte(nil), base...), chunkSize, 1, nil, nil)
	if reused != 0 {
		t.Fatalf("nil prev reused %d chunks, want 0", reused)
	}
	mustMatchFresh(t, ck, base, chunkSize)
}

func TestCaptureDirtyIntoReusesRecycledSums(t *testing.T) {
	const chunkSize = 64
	base := dirtyTestData(chunkSize*4, 0)
	prev := Capture(base, chunkSize, 1)
	recycled := Capture(dirtyTestData(chunkSize*4, 9), chunkSize, 1)
	sumsBefore := &recycled.Sums[0]

	next := append([]byte(nil), base...)
	next[0] ^= 1
	ck, reused := CaptureDirtyInto(recycled, next, chunkSize, 1, prev, []pup.Range{{Lo: 0, Hi: 1}})
	if ck != recycled {
		t.Fatal("expected the recycled checkpoint struct to be reused")
	}
	if &ck.Sums[0] != sumsBefore {
		t.Fatal("expected the recycled Sums buffer to be reused")
	}
	if reused != 3 {
		t.Fatalf("reused %d chunks, want 3", reused)
	}
	mustMatchFresh(t, ck, next, chunkSize)
}

package ckptstore

import "acr/internal/chaos/point"

// Hooked interposes a fault-injection hook on a Store's read and write
// paths: point.StoreWrite fires after every accepted Put (the hook may
// corrupt the stored copy — at-rest corruption), point.StoreRead after
// every successful Get. Compare and Evict pass through untouched: the
// two-phase compare works on resident metadata, which real at-rest
// corruption does not reach.
type Hooked struct {
	inner Store
	hook  point.Hook
}

// WithHook wraps the store; a nil hook returns the store unchanged.
func WithHook(inner Store, hook point.Hook) Store {
	if hook == nil {
		return inner
	}
	return &Hooked{inner: inner, hook: hook}
}

// Inner returns the wrapped store (for tests and tier-specific access such
// as Disk.Dir).
func (s *Hooked) Inner() Store { return s.inner }

// Name implements Store.
func (s *Hooked) Name() string { return s.inner.Name() }

// Put implements Store: store first, then expose the stored checkpoint to
// the hook so corruption lands on the at-rest copy.
func (s *Hooked) Put(k Key, ck *Checkpoint) error {
	if err := s.inner.Put(k, ck); err != nil {
		return err
	}
	s.hook.Fire(point.StoreWrite, &point.Info{Replica: k.Replica, Node: k.Node, Task: k.Task, Epoch: k.Epoch, Payload: ck})
	return nil
}

// Get implements Store.
func (s *Hooked) Get(k Key) (*Checkpoint, error) {
	ck, err := s.inner.Get(k)
	if err != nil {
		return nil, err
	}
	s.hook.Fire(point.StoreRead, &point.Info{Replica: k.Replica, Node: k.Node, Task: k.Task, Epoch: k.Epoch, Payload: ck})
	return ck, nil
}

// Compare implements Store.
func (s *Hooked) Compare(a, b Key) (CompareResult, error) { return s.inner.Compare(a, b) }

// Evict implements Store.
func (s *Hooked) Evict(olderThan uint64) int { return s.inner.Evict(olderThan) }

// DropNode forwards the Volatile capability when the wrapped tier has it;
// on a non-volatile inner tier it reports zero drops (node death does not
// lose durable checkpoints).
func (s *Hooked) DropNode(replica, node int) int {
	if v, ok := s.inner.(Volatile); ok {
		return v.DropNode(replica, node)
	}
	return 0
}

// Keys forwards the Enumerator capability when the wrapped tier has it;
// a non-enumerable inner tier yields nil.
func (s *Hooked) Keys() []Key {
	if e, ok := s.inner.(Enumerator); ok {
		return e.Keys()
	}
	return nil
}

// Counters implements Store.
func (s *Hooked) Counters() Counters { return s.inner.Counters() }

// MutableBytes exposes a checkpoint's stored payload for in-place
// corruption by injection hooks. It exists solely for fault injection:
// every other caller must treat Bytes as read-only.
func (c *Checkpoint) MutableBytes() []byte { return c.data }

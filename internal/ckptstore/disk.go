package ckptstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"acr/internal/checksum"
	"acr/internal/model"
)

// Disk is the disk-backed tier: checkpoint payloads go to files, while
// the chunk metadata (root + per-chunk sums) stays resident so Compare
// never touches the disk — the two-phase compare needs only sums. This is
// the classic second level of a multilevel scheme (node-local SSD or PFS
// behind the in-memory buddy tier); the optional cost model accounts the
// §1 bandwidth wall: every payload write adds bytes/AggregateBandwidth of
// modeled PFS time, so experiments can report what the same checkpoint
// stream would have cost on a parallel file system.
type Disk struct {
	dir    string
	ownDir bool
	cost   *model.DiskSystem

	mu    sync.RWMutex
	index map[Key]*diskEntry
	ctrs  *counters

	modeledNanos int64 // guarded by mu
}

type diskEntry struct {
	path      string
	size      int
	chunkSize int
	root      uint64
	sums      []uint64
}

// NewDisk returns a disk store rooted at dir; an empty dir creates a
// private temp directory that Close removes. cost, if non-nil, accrues
// modeled parallel-file-system write time per model.DiskSystem.
//
// Opening a directory that already holds checkpoint files rebuilds the
// resident index from them, so a restarted process (the acrd daemon after
// kill -9) sees exactly what survived on disk — the store's ground truth,
// independent of any journal's claims. Files with unparsable names or
// malformed headers are skipped, not fatal; payload corruption is still
// caught by Get's root re-verification.
func NewDisk(dir string, cost *model.DiskSystem) (*Disk, error) {
	ownDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "ckptstore-*")
		if err != nil {
			return nil, fmt.Errorf("ckptstore: disk tier: %w", err)
		}
		dir, ownDir = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckptstore: disk tier: %w", err)
	}
	s := &Disk{
		dir:    dir,
		ownDir: ownDir,
		cost:   cost,
		index:  make(map[Key]*diskEntry),
		ctrs:   newCounters(),
	}
	if !ownDir {
		if err := s.loadIndex(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// loadIndex rebuilds the resident index from the checkpoint files already
// in the backing directory.
func (s *Disk) loadIndex() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("ckptstore: disk tier: %w", err)
	}
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		var k Key
		if n, err := fmt.Sscanf(de.Name(), "r%d_n%d_t%d_e%d.ckpt", &k.Replica, &k.Node, &k.Task, &k.Epoch); n != 4 || err != nil {
			continue
		}
		path := filepath.Join(s.dir, de.Name())
		e, err := readDiskHeader(path)
		if err != nil {
			continue // malformed header: not a restorable checkpoint
		}
		e.path = path
		s.index[k] = e
	}
	return nil
}

// readDiskHeader parses a checkpoint file's header (magic, chunk size,
// root, per-chunk sums) and derives the payload size from the file size.
func readDiskHeader(path string) (*diskEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	fixed := make([]byte, len(diskMagic)+24)
	if _, err := io.ReadFull(f, fixed); err != nil {
		return nil, err
	}
	if string(fixed[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("ckptstore: %s: bad magic", path)
	}
	chunkSize := binary.LittleEndian.Uint64(fixed[len(diskMagic):])
	root := binary.LittleEndian.Uint64(fixed[len(diskMagic)+8:])
	nsums := binary.LittleEndian.Uint64(fixed[len(diskMagic)+16:])
	header := int64(len(diskMagic)) + 24 + 8*int64(nsums)
	if nsums > 1<<32 || fi.Size() < header {
		return nil, fmt.Errorf("ckptstore: %s: truncated header", path)
	}
	raw := make([]byte, 8*nsums)
	if _, err := io.ReadFull(f, raw); err != nil {
		return nil, err
	}
	sums := make([]uint64, nsums)
	for i := range sums {
		sums[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return &diskEntry{
		size:      int(fi.Size() - header),
		chunkSize: int(chunkSize),
		root:      root,
		sums:      sums,
	}, nil
}

// Name implements Store.
func (s *Disk) Name() string { return "disk" }

// Dir returns the backing directory.
func (s *Disk) Dir() string { return s.dir }

// Close removes the backing directory when the store created it.
func (s *Disk) Close() error {
	if s.ownDir {
		return os.RemoveAll(s.dir)
	}
	return nil
}

// ModeledWriteTime returns the cumulative modeled PFS write time accrued
// by Put under the configured cost model (zero without one).
func (s *Disk) ModeledWriteTime() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return time.Duration(s.modeledNanos)
}

func (s *Disk) fileFor(k Key) string {
	return filepath.Join(s.dir, fmt.Sprintf("r%d_n%d_t%d_e%d.ckpt", k.Replica, k.Node, k.Task, k.Epoch))
}

// diskMagic guards the file format: "ACRCKPT1".
const diskMagic = "ACRCKPT1"

// Put implements Store: the payload is written to one file per key with a
// small header (magic, chunk size, sums) so a restart can re-verify the
// chunk structure without rehashing.
func (s *Disk) Put(k Key, ck *Checkpoint) error {
	buf := make([]byte, 0, len(diskMagic)+8+8+8+8*len(ck.Sums)+ck.Len())
	buf = append(buf, diskMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ck.ChunkSize))
	buf = binary.LittleEndian.AppendUint64(buf, ck.Root)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(ck.Sums)))
	for _, sum := range ck.Sums {
		buf = binary.LittleEndian.AppendUint64(buf, sum)
	}
	buf = append(buf, ck.Bytes()...)
	path := s.fileFor(k)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("ckptstore: disk put %v: %w", k, err)
	}
	entry := &diskEntry{
		path:      path,
		size:      ck.Len(),
		chunkSize: ck.ChunkSize,
		root:      ck.Root,
		sums:      append([]uint64(nil), ck.Sums...),
	}
	s.mu.Lock()
	s.index[k] = entry
	if s.cost != nil {
		if secs, err := s.cost.WriteSeconds(float64(ck.Len())); err == nil {
			s.modeledNanos += int64(secs * float64(time.Second))
		}
	}
	s.mu.Unlock()
	s.ctrs.puts.Add(1)
	s.ctrs.bytesWritten.Add(int64(ck.Len()))
	s.ctrs.chunksStored.Add(int64(ck.NumChunks()))
	return nil
}

func (s *Disk) entry(k Key) (*diskEntry, error) {
	s.mu.RLock()
	e, ok := s.index[k]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return e, nil
}

// Get implements Store. The payload is read back from the file and its
// root re-verified against the resident metadata, so corruption at rest
// is detected at restart time instead of silently restoring bad state.
func (s *Disk) Get(k Key) (*Checkpoint, error) {
	e, err := s.entry(k)
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(e.path)
	if err != nil {
		return nil, fmt.Errorf("ckptstore: disk get %v: %w", k, err)
	}
	header := len(diskMagic) + 24 + 8*len(e.sums)
	if len(raw) < header || string(raw[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("ckptstore: disk get %v: malformed checkpoint file", k)
	}
	data := raw[header:]
	if len(data) != e.size {
		return nil, fmt.Errorf("ckptstore: disk get %v: payload is %d bytes, want %d", k, len(data), e.size)
	}
	root, sums := checksum.Fletcher64Chunks(data, e.chunkSize, 0)
	if root != e.root {
		return nil, fmt.Errorf("disk get %v: %w (root %#x, want %#x)", k, ErrCorrupt, root, e.root)
	}
	s.ctrs.gets.Add(1)
	s.ctrs.bytesRead.Add(int64(len(data)))
	return &Checkpoint{ChunkSize: e.chunkSize, Root: e.root, Sums: sums, data: data}, nil
}

// CorruptAtRest flips one bit of the stored payload *in the backing file*,
// leaving the resident metadata untouched — the at-rest corruption a fault
// injector needs. byteIdx counts from the start of the payload; negative
// values count back from its end (-1 is the last byte). The next Get of k
// re-verifies the root and reports ErrCorrupt.
func (s *Disk) CorruptAtRest(k Key, byteIdx, bit int) error {
	e, err := s.entry(k)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(e.path)
	if err != nil {
		return fmt.Errorf("ckptstore: corrupt %v: %w", k, err)
	}
	header := len(diskMagic) + 24 + 8*len(e.sums)
	if len(raw) < header || len(raw)-header != e.size {
		return fmt.Errorf("ckptstore: corrupt %v: malformed checkpoint file", k)
	}
	if byteIdx < 0 {
		byteIdx += e.size
	}
	if byteIdx < 0 || byteIdx >= e.size {
		return fmt.Errorf("ckptstore: corrupt %v: byte %d out of range [0,%d)", k, byteIdx, e.size)
	}
	raw[header+byteIdx] ^= 1 << (uint(bit) & 7)
	if err := os.WriteFile(e.path, raw, 0o644); err != nil {
		return fmt.Errorf("ckptstore: corrupt %v: %w", k, err)
	}
	return nil
}

// Compare implements Store using only the resident metadata: no file IO.
func (s *Disk) Compare(a, b Key) (CompareResult, error) {
	meta := func(k Key) (*Checkpoint, error) {
		e, err := s.entry(k)
		if err != nil {
			return nil, err
		}
		// A metadata-only view: CompareCheckpoints touches ChunkSize,
		// Root, Sums, and Len, all known without the payload. The data
		// length is reconstructed from the chunk structure.
		return &Checkpoint{
			ChunkSize: e.chunkSize,
			Root:      e.root,
			Sums:      e.sums,
			data:      nil,
		}, nil
	}
	// Lengths of the payloads differ only if chunk counts or tail sums
	// differ; CompareCheckpoints's Len check is bypassed by the nil data,
	// so re-check sizes explicitly first.
	ea, err := s.entry(a)
	if err != nil {
		return CompareResult{}, fmt.Errorf("ckptstore: compare %v: %w", a, err)
	}
	eb, err := s.entry(b)
	if err != nil {
		return CompareResult{}, fmt.Errorf("ckptstore: compare %v: %w", b, err)
	}
	if ea.size != eb.size {
		res := CompareResult{Chunk: -1, Structural: true}
		s.ctrs.recordCompare(res, 0)
		return res, nil
	}
	return compareVia(s.ctrs, meta, a, b)
}

// Evict implements Store.
func (s *Disk) Evict(olderThan uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, e := range s.index {
		if k.Epoch < olderThan {
			os.Remove(e.path)
			s.ctrs.bytesEvicted.Add(int64(e.size))
			delete(s.index, k)
			n++
		}
	}
	return n
}

// Keys implements Enumerator.
func (s *Disk) Keys() []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Key, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	return out
}

// Counters implements Store.
func (s *Disk) Counters() Counters { return s.ctrs.snapshot() }

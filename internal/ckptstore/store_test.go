package ckptstore

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"acr/internal/model"
)

// backends returns one fresh instance of every Store implementation,
// so the conformance tests below run against all tiers.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":   NewMem(),
		"disk":  disk,
		"delta": NewDelta(),
	}
}

func randData(t testing.TB, seed int64, n int) []byte {
	t.Helper()
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

const testChunk = 4 << 10

func TestStorePutGetRoundTrip(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			data := randData(t, 1, 100<<10+17)
			ck := Capture(append([]byte(nil), data...), testChunk, 2)
			k := Key{Replica: 1, Node: 2, Task: 3, Epoch: 7}
			if err := st.Put(k, ck); err != nil {
				t.Fatal(err)
			}
			got, err := st.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if string(got.Bytes()) != string(data) {
				t.Fatal("payload did not round-trip")
			}
			if got.Root != ck.Root || got.NumChunks() != ck.NumChunks() {
				t.Fatalf("metadata did not round-trip: root %#x/%#x chunks %d/%d",
					got.Root, ck.Root, got.NumChunks(), ck.NumChunks())
			}
			if _, err := st.Get(Key{Epoch: 99}); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing key: got %v, want ErrNotFound", err)
			}
			c := st.Counters()
			if c.Puts != 1 || c.Gets != 1 || c.BytesRead != int64(len(data)) {
				t.Fatalf("counters: %+v", c)
			}
		})
	}
}

// An injected single-bit flip must be localized to the correct chunk by
// every backend's two-phase compare — the Merkle-style sharpening of §4.2
// diagnostics.
func TestStoreCompareLocalizesSingleBitFlip(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			const size = 256 << 10
			clean := randData(t, 2, size)
			a := Key{Replica: 0, Epoch: 1}
			b := Key{Replica: 1, Epoch: 1}
			if err := st.Put(a, Capture(append([]byte(nil), clean...), testChunk, 2)); err != nil {
				t.Fatal(err)
			}
			// The buddy saw one bit flip deep inside the buffer.
			corrupt := append([]byte(nil), clean...)
			flipAt := 201*1024 + 5
			corrupt[flipAt] ^= 0x10
			if err := st.Put(b, Capture(corrupt, testChunk, 2)); err != nil {
				t.Fatal(err)
			}
			res, err := st.Compare(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if res.Match {
				t.Fatal("single-bit SDC not detected")
			}
			if want := flipAt / testChunk; res.Chunk != want {
				t.Fatalf("SDC localized to chunk %d, want %d", res.Chunk, want)
			}
			c := st.Counters()
			if c.Mismatches != 1 || c.LastLocalizedChunk != int64(flipAt/testChunk) {
				t.Fatalf("counters after mismatch: %+v", c)
			}

			// Identical buddies must match (fast path: roots only).
			b2 := Key{Replica: 1, Epoch: 2}
			if err := st.Put(b2, Capture(append([]byte(nil), clean...), testChunk, 2)); err != nil {
				t.Fatal(err)
			}
			// Delta note: replica 0 and 1 are distinct identities, so b2
			// diffs against b (same identity), not a.
			res, err = st.Compare(a, b2)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Match {
				t.Fatalf("clean buddies mismatched: %v", res)
			}
		})
	}
}

func TestStoreCompareStructuralDivergence(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			a := Key{Replica: 0, Epoch: 1}
			b := Key{Replica: 1, Epoch: 1}
			if err := st.Put(a, Capture(randData(t, 3, 64<<10), testChunk, 1)); err != nil {
				t.Fatal(err)
			}
			if err := st.Put(b, Capture(randData(t, 3, 32<<10), testChunk, 1)); err != nil {
				t.Fatal(err)
			}
			res, err := st.Compare(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Structural || res.Match {
				t.Fatalf("want structural divergence, got %v", res)
			}
		})
	}
}

func TestStoreEvict(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for epoch := uint64(1); epoch <= 4; epoch++ {
				data := randData(t, int64(epoch), 32<<10)
				if err := st.Put(Key{Epoch: epoch}, Capture(data, testChunk, 1)); err != nil {
					t.Fatal(err)
				}
			}
			if n := st.Evict(4); n != 3 {
				t.Fatalf("evicted %d, want 3", n)
			}
			for epoch := uint64(1); epoch <= 3; epoch++ {
				if _, err := st.Get(Key{Epoch: epoch}); !errors.Is(err, ErrNotFound) {
					t.Fatalf("epoch %d survived eviction: %v", epoch, err)
				}
			}
			// The newest epoch must still be fully retrievable — the delta
			// tier has to re-anchor it when its base is evicted.
			got, err := st.Get(Key{Epoch: 4})
			if err != nil {
				t.Fatal(err)
			}
			if want := randData(t, 4, 32<<10); string(got.Bytes()) != string(want) {
				t.Fatal("surviving epoch corrupted by eviction")
			}
		})
	}
}

func TestStoreConcurrentPutGetCompare(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			const tasks = 8
			var wg sync.WaitGroup
			for task := 0; task < tasks; task++ {
				task := task
				for rep := 0; rep < 2; rep++ {
					rep := rep
					wg.Add(1)
					go func() {
						defer wg.Done()
						data := randData(t, int64(task), 16<<10) // same per task, both replicas
						if err := st.Put(Key{Replica: rep, Task: task, Epoch: 1}, Capture(data, testChunk, 1)); err != nil {
							t.Error(err)
						}
					}()
				}
			}
			wg.Wait()
			for task := 0; task < tasks; task++ {
				task := task
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := st.Compare(Key{Replica: 0, Task: task, Epoch: 1}, Key{Replica: 1, Task: task, Epoch: 1})
					if err != nil {
						t.Error(err)
						return
					}
					if !res.Match {
						t.Errorf("task %d: buddies diverged: %v", task, res)
					}
				}()
			}
			wg.Wait()
		})
	}
}

func TestDiskModeledWriteTime(t *testing.T) {
	cost := &model.DiskSystem{AggregateBandwidth: 1 << 20, BytesPerSocket: 0}
	st, err := NewDisk("", cost)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put(Key{Epoch: 1}, Capture(randData(t, 9, 512<<10), testChunk, 1)); err != nil {
		t.Fatal(err)
	}
	// 512 KiB at 1 MiB/s is 0.5 s of modeled PFS time.
	if got := st.ModeledWriteTime().Seconds(); got < 0.49 || got > 0.51 {
		t.Fatalf("modeled write time %.3fs, want ~0.5s", got)
	}
}

func TestDiskDetectsCorruptionAtRest(t *testing.T) {
	st, err := NewDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Replica: 1, Node: 0, Task: 0, Epoch: 3}
	if err := st.Put(k, Capture(randData(t, 11, 64<<10), testChunk, 1)); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in the on-disk file behind the store's back.
	path := st.fileFor(k)
	corruptFileByte(t, path, 40<<10)
	if _, err := st.Get(k); err == nil {
		t.Fatal("corrupted-at-rest checkpoint restored without error")
	}
}

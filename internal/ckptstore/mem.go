package ckptstore

import (
	"sync"
)

// Mem is the in-memory buddy tier: the double in-memory checkpoint of
// §2.1, now chunked. It retains checkpoints by reference (capture hands
// the buffer over), so Put is O(1) in data size and Get is free — exactly
// the "local checkpoint in memory" cost profile the paper's delta
// parameter assumes.
type Mem struct {
	mu   sync.RWMutex
	m    map[Key]*Checkpoint
	ctrs *counters
	pool *Pool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{m: make(map[Key]*Checkpoint), ctrs: newCounters()}
}

// Name implements Store.
func (s *Mem) Name() string { return "mem" }

// Put implements Store.
func (s *Mem) Put(k Key, ck *Checkpoint) error {
	s.mu.Lock()
	s.m[k] = ck
	s.mu.Unlock()
	s.ctrs.puts.Add(1)
	s.ctrs.bytesWritten.Add(int64(ck.Len()))
	s.ctrs.chunksStored.Add(int64(ck.NumChunks()))
	return nil
}

func (s *Mem) lookup(k Key) (*Checkpoint, error) {
	s.mu.RLock()
	ck, ok := s.m[k]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return ck, nil
}

// Get implements Store.
func (s *Mem) Get(k Key) (*Checkpoint, error) {
	ck, err := s.lookup(k)
	if err != nil {
		return nil, err
	}
	s.ctrs.gets.Add(1)
	s.ctrs.bytesRead.Add(int64(ck.Len()))
	return ck, nil
}

// Compare implements Store.
func (s *Mem) Compare(a, b Key) (CompareResult, error) {
	return compareVia(s.ctrs, s.lookup, a, b)
}

// SetPool implements Recycler: subsequent Evicts retire dropped
// checkpoints into pool for reuse by later captures. Only attach a pool
// when this store is owned exclusively by one controller — recycling
// invalidates evicted payloads, so no external reader may hold Bytes() of
// an epoch that can still be evicted.
func (s *Mem) SetPool(pool *Pool) {
	s.mu.Lock()
	s.pool = pool
	s.mu.Unlock()
}

// Evict implements Store.
func (s *Mem) Evict(olderThan uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, ck := range s.m {
		if k.Epoch < olderThan {
			s.ctrs.bytesEvicted.Add(int64(ck.Len()))
			delete(s.m, k)
			if s.pool != nil {
				// Pool.Put never calls back into the store, so recycling
				// under the store lock is deadlock-free; it dedupes
				// checkpoints mirrored under two keys (the recovery path)
				// by pointer.
				s.pool.Put(ck)
			}
			n++
		}
	}
	return n
}

// DropNode implements Volatile: both in-memory copies of a buddy pair
// died with their nodes, so every epoch of the logical node's checkpoints
// is gone. Unlike Evict, dropped checkpoints are NOT recycled into the
// pool — the recovery path mirrors one *Checkpoint under two keys, and
// the surviving key may still be referenced.
func (s *Mem) DropNode(replica, node int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, ck := range s.m {
		if k.Replica == replica && k.Node == node {
			s.ctrs.bytesEvicted.Add(int64(ck.Len()))
			delete(s.m, k)
			n++
		}
	}
	return n
}

// Keys implements Enumerator.
func (s *Mem) Keys() []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Key, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	return out
}

// Counters implements Store.
func (s *Mem) Counters() Counters { return s.ctrs.snapshot() }

// Len returns the number of stored task checkpoints (for tests).
func (s *Mem) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

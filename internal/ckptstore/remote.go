package ckptstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"acr/internal/chaos/point"
)

// Remote is a simulated object-store checkpoint tier: the kind of shared
// remote storage (S3, GCS, a parallel file system export) a production
// fleet flushes checkpoints to — and the least reliable component in the
// checkpoint path. It implements Store over an in-memory object map while
// modeling the failure modes a real remote exhibits:
//
//   - per-op latency (a base round trip plus a per-KiB transfer cost),
//   - seeded transient faults: request timeouts and throttling rejections,
//   - torn multi-chunk writes: an upload that times out mid-transfer
//     leaves a partial object behind, which later reads surface as
//     ErrCorrupt (the object exists but fails verification),
//   - at-rest read corruption: a read may discover the stored object
//     damaged; the damage is sticky, as real bit rot is,
//   - dark mode: total unavailability (SetDark / SetDarkFor), every
//     operation failing fast with ErrRemoteUnavailable.
//
// All fault injection is driven by a seeded rng, so a Remote with fixed
// options produces the same fault schedule for the same op sequence. The
// chaos engine drives the deterministic campaigns instead through the
// RemotePut / RemoteGet injection points (Info.Drop force-fails one op)
// and dark mode — campaign scenarios run with zero latency and zero rates.
type Remote struct {
	opts RemoteOptions
	ctrs *counters

	mu      sync.Mutex
	rng     *rand.Rand
	objects map[Key]*remoteObject
	dark    bool
	// darkOps, when positive, is the remaining failed-op budget before the
	// remote self-heals out of dark mode; 0 while dark means dark until
	// SetDark(false).
	darkOps int
}

// remoteObject is one uploaded checkpoint plus its damage state.
type remoteObject struct {
	ck      *Checkpoint
	torn    bool // partial multi-chunk upload: fails read verification
	corrupt bool // at-rest damage discovered (and kept) by a read
}

// RemoteOptions parameterizes the simulated remote. The zero value is a
// perfect store: no latency, no faults.
type RemoteOptions struct {
	// Latency is the per-operation base round-trip; PerKB adds transfer
	// time per KiB of checkpoint payload moved. Both must be zero in
	// deterministic chaos campaigns.
	Latency time.Duration
	PerKB   time.Duration
	// TimeoutRate / ThrottleRate are per-op probabilities of a transient
	// request timeout / throttling rejection (429-style). TornWriteRate is
	// the probability a Put times out mid-upload leaving a partial object;
	// ReadCorruptRate the probability a Get discovers sticky at-rest
	// corruption.
	TimeoutRate     float64
	ThrottleRate    float64
	TornWriteRate   float64
	ReadCorruptRate float64
	// Seed drives the fault rng; the same seed and op sequence yield the
	// same fault schedule.
	Seed int64
	// Hook, if non-nil, receives point.RemotePut / point.RemoteGet before
	// each operation (Info.Drop force-fails it) and point.RemoteDark on
	// dark-mode transitions.
	Hook point.Hook
}

// Transient remote faults. A Resilient wrapper retries these; permanent
// verdicts (ErrNotFound, ErrCorrupt) pass through untouched.
var (
	// ErrRemoteTimeout reports a remote request that timed out in flight.
	ErrRemoteTimeout = errors.New("ckptstore: remote request timed out")
	// ErrRemoteThrottled reports a remote throttling rejection.
	ErrRemoteThrottled = errors.New("ckptstore: remote throttled the request")
	// ErrRemoteUnavailable reports a remote that is dark (unreachable) or
	// an operation force-failed by an injection hook.
	ErrRemoteUnavailable = errors.New("ckptstore: remote unavailable")
)

// IsTransientRemote reports whether err is a transient remote fault a
// retry may clear (timeout, throttle, unavailability).
func IsTransientRemote(err error) bool {
	return errors.Is(err, ErrRemoteTimeout) ||
		errors.Is(err, ErrRemoteThrottled) ||
		errors.Is(err, ErrRemoteUnavailable)
}

// NewRemote builds a simulated remote object store.
func NewRemote(opts RemoteOptions) *Remote {
	return &Remote{
		opts:    opts,
		ctrs:    newCounters(),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		objects: make(map[Key]*remoteObject),
	}
}

// Name implements Store.
func (r *Remote) Name() string { return "remote" }

// SetDark switches total unavailability on or off: while dark, every
// operation fails fast with ErrRemoteUnavailable. Safe from any goroutine.
func (r *Remote) SetDark(dark bool) {
	r.mu.Lock()
	changed := r.dark != dark
	r.dark = dark
	r.darkOps = 0
	r.mu.Unlock()
	if changed {
		iter := 0
		if !dark {
			iter = -1
		}
		r.fireDark(iter)
	}
}

// SetDarkFor darkens the remote for the next n operations, after which it
// self-heals — a deterministic flapping outage. n <= 0 behaves like
// SetDark(true).
func (r *Remote) SetDarkFor(n int) {
	if n <= 0 {
		r.SetDark(true)
		return
	}
	r.mu.Lock()
	changed := !r.dark
	r.dark = true
	r.darkOps = n
	r.mu.Unlock()
	if changed {
		r.fireDark(n)
	}
}

// Dark reports whether the remote is currently dark.
func (r *Remote) Dark() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dark
}

func (r *Remote) fireDark(iter int) {
	if r.opts.Hook != nil {
		r.opts.Hook.Fire(point.RemoteDark, &point.Info{Replica: -1, Node: -1, Task: -1, Iter: iter})
	}
}

// consumeDark reports whether the op fails dark, burning one op of a
// bounded outage and firing the recovery transition when the budget runs
// out. Caller must not hold r.mu.
func (r *Remote) consumeDark() bool {
	r.mu.Lock()
	if !r.dark {
		r.mu.Unlock()
		return false
	}
	healed := false
	if r.darkOps > 0 {
		r.darkOps--
		if r.darkOps == 0 {
			r.dark = false
			healed = true
		}
	}
	r.mu.Unlock()
	if healed {
		r.fireDark(-1)
	}
	return true
}

// simLatency models the op's wall cost. bytes is the payload moved.
func (r *Remote) simLatency(bytes int) {
	d := r.opts.Latency + time.Duration(bytes/1024)*r.opts.PerKB
	if d > 0 {
		time.Sleep(d)
	}
}

// roll draws one fault decision from the seeded rng.
func (r *Remote) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	r.mu.Lock()
	hit := r.rng.Float64() < rate
	r.mu.Unlock()
	return hit
}

// firePoint notifies the injection hook; it reports whether the hook
// force-failed the op via Info.Drop.
func (r *Remote) firePoint(id point.ID, k Key) bool {
	if r.opts.Hook == nil {
		return false
	}
	info := point.Info{Replica: k.Replica, Node: k.Node, Task: k.Task, Epoch: k.Epoch}
	r.opts.Hook.Fire(id, &info)
	return info.Drop
}

// Put implements Store: uploads a deep copy of the checkpoint. A torn
// write stores the partial object AND returns ErrRemoteTimeout — the
// client believes the upload failed, but a damaged object now shadows the
// key, exactly the hazard idempotent re-Put must overwrite.
func (r *Remote) Put(k Key, ck *Checkpoint) error {
	if r.firePoint(point.RemotePut, k) {
		return fmt.Errorf("%w: put %v force-failed by injection", ErrRemoteUnavailable, k)
	}
	if r.consumeDark() {
		return fmt.Errorf("%w: put %v", ErrRemoteUnavailable, k)
	}
	r.simLatency(ck.Len())
	switch {
	case r.roll(r.opts.TimeoutRate):
		return fmt.Errorf("%w: put %v", ErrRemoteTimeout, k)
	case r.roll(r.opts.ThrottleRate):
		return fmt.Errorf("%w: put %v", ErrRemoteThrottled, k)
	case r.roll(r.opts.TornWriteRate):
		r.mu.Lock()
		r.objects[k] = &remoteObject{ck: ck.Clone(), torn: true}
		r.mu.Unlock()
		return fmt.Errorf("%w: put %v torn mid-upload", ErrRemoteTimeout, k)
	}
	r.mu.Lock()
	r.objects[k] = &remoteObject{ck: ck.Clone()}
	r.mu.Unlock()
	r.ctrs.puts.Add(1)
	r.ctrs.bytesWritten.Add(int64(ck.Len()))
	r.ctrs.chunksStored.Add(int64(ck.NumChunks()))
	return nil
}

// Get implements Store. Torn and corrupted objects surface as ErrCorrupt:
// the object exists but fails the read path's verification — detected
// damage, not absence.
func (r *Remote) Get(k Key) (*Checkpoint, error) {
	if r.firePoint(point.RemoteGet, k) {
		return nil, fmt.Errorf("%w: get %v force-failed by injection", ErrRemoteUnavailable, k)
	}
	if r.consumeDark() {
		return nil, fmt.Errorf("%w: get %v", ErrRemoteUnavailable, k)
	}
	r.mu.Lock()
	obj, ok := r.objects[k]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("ckptstore: remote get %v: %w", k, ErrNotFound)
	}
	r.simLatency(obj.ck.Len())
	switch {
	case r.roll(r.opts.TimeoutRate):
		return nil, fmt.Errorf("%w: get %v", ErrRemoteTimeout, k)
	case r.roll(r.opts.ThrottleRate):
		return nil, fmt.Errorf("%w: get %v", ErrRemoteThrottled, k)
	}
	if obj.torn || obj.corrupt {
		return nil, fmt.Errorf("ckptstore: remote get %v: %w", k, ErrCorrupt)
	}
	if r.roll(r.opts.ReadCorruptRate) {
		r.mu.Lock()
		obj.corrupt = true
		r.mu.Unlock()
		return nil, fmt.Errorf("ckptstore: remote get %v: %w", k, ErrCorrupt)
	}
	r.ctrs.gets.Add(1)
	r.ctrs.bytesRead.Add(int64(obj.ck.Len()))
	return obj.ck, nil
}

// Probe is a cheap health check: it succeeds exactly when the remote is
// reachable. It consumes a dark op (a bounded outage heals through failed
// probes too) but fires no injection points and draws no rng — background
// breaker probes must not perturb a deterministic campaign's occurrence
// counts.
func (r *Remote) Probe() error {
	if r.consumeDark() {
		return fmt.Errorf("%w: probe", ErrRemoteUnavailable)
	}
	return nil
}

// Compare implements Store.
func (r *Remote) Compare(a, b Key) (CompareResult, error) {
	return compareVia(r.ctrs, r.Get, a, b)
}

// Evict implements Store.
func (r *Remote) Evict(olderThan uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for k, obj := range r.objects {
		if k.Epoch < olderThan {
			r.ctrs.bytesEvicted.Add(int64(obj.ck.Len()))
			delete(r.objects, k)
			n++
		}
	}
	return n
}

// Keys implements Enumerator.
func (r *Remote) Keys() []Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Key, 0, len(r.objects))
	for k := range r.objects {
		out = append(out, k)
	}
	return out
}

// Counters implements Store.
func (r *Remote) Counters() Counters { return r.ctrs.snapshot() }

package ckptstore

import (
	"acr/internal/checksum"
	"acr/internal/pup"
)

// CaptureDirtyInto is CaptureInto with chunk-sum splicing: chunks of data
// that do not intersect any dirty range copy their Fletcher-64 sums from
// prev (the previous epoch's capture of the same task) instead of
// recomputing them, and the root is re-derived from the sum vector. The
// caller guarantees — PackDirtyInto's Spliced contract — that every byte
// outside dirty is byte-identical to prev's payload, so the reused sums
// stay consistent with the data.
//
// dirty must be normalized (sorted, disjoint), as returned by
// PackDirtyInto. ck must not be prev. A nil prev, or a prev whose chunk
// size or payload length differ, falls back to a full CaptureInto. The
// second return is the number of chunk sums reused; prev's Sums are read
// by value, never aliased or mutated.
func CaptureDirtyInto(ck *Checkpoint, data []byte, chunkSize, workers int, prev *Checkpoint, dirty []pup.Range) (*Checkpoint, int) {
	if chunkSize <= 0 {
		chunkSize = checksum.DefaultChunkSize
	}
	n := checksum.NumChunks(len(data), chunkSize)
	if prev == nil || prev.ChunkSize != chunkSize || prev.Len() != len(data) || len(prev.Sums) != n {
		return CaptureInto(ck, data, chunkSize, workers), 0
	}
	if ck == nil {
		ck = &Checkpoint{}
	}
	var sums []uint64
	if cap(ck.Sums) >= n {
		sums = ck.Sums[:n]
	} else {
		sums = make([]uint64, n)
	}
	reused := 0
	di := 0
	for i := 0; i < n; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		for di < len(dirty) && dirty[di].Hi <= lo {
			di++
		}
		if di < len(dirty) && dirty[di].Lo < hi {
			sums[i] = checksum.Fletcher64(data[lo:hi])
			continue
		}
		sums[i] = prev.Sums[i]
		reused++
	}
	*ck = Checkpoint{ChunkSize: chunkSize, Root: checksum.ChunkRoot(sums), Sums: sums, data: data}
	return ck, reused
}

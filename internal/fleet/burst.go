package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"acr/internal/chaos"
	"acr/internal/pup"
	"acr/internal/runtime"
)

// This file is the fleet's acceptance campaign: a seeded multi-job failure
// burst against a fleet with almost no slack — many jobs, one shared spare —
// verified against the serial golden reference. It is what cmd/acrbench and
// the CI fleet-smoke job run.

// BurstKill is one seeded failure: kill physical backing of (Replica, Node)
// in job Job, After the job has been admitted.
type BurstKill struct {
	Job     int           `json:"job"`
	Replica int           `json:"replica"`
	Node    int           `json:"node"`
	After   time.Duration `json:"after"`
}

// BurstSpec shapes a burst campaign.
type BurstSpec struct {
	Jobs         int           `json:"jobs"`
	SharedSpares int           `json:"shared_spares"`
	NodesPerJob  int           `json:"nodes_per_job"` // logical nodes per replica
	TasksPerNode int           `json:"tasks_per_node"`
	Iters        int           `json:"iters"`
	Interval     time.Duration `json:"interval"`
	Kills        []BurstKill   `json:"kills"`
	Watchdog     time.Duration `json:"watchdog"`
}

// BurstReport is the campaign outcome: fleet stats plus oracle violations
// (empty means the fleet survived with every job's golden result intact).
type BurstReport struct {
	Stats      FleetStats    `json:"stats"`
	Violations []string      `json:"violations,omitempty"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// DefaultBurstSpec is the acceptance shape: a 16-job fleet sharing a single
// spare, with a seeded failure burst hitting six different jobs — five more
// failures than the spare pool can absorb, so the brokering, folding, and
// waiting-list machinery all engage. Kills are derived from the seed so the
// plan is reproducible.
func DefaultBurstSpec(seed int64) BurstSpec {
	spec := BurstSpec{
		Jobs:         16,
		SharedSpares: 1,
		NodesPerJob:  2,
		TasksPerNode: 2,
		Iters:        12000,
		Interval:     2 * time.Millisecond,
		Watchdog:     2 * time.Minute,
	}
	rng := rand.New(rand.NewSource(seed))
	victims := rng.Perm(spec.Jobs)[:6] // distinct jobs: one kill each, so no
	// buddy-pair double faults (the ladder, not the fleet, owns those)
	for _, job := range victims {
		spec.Kills = append(spec.Kills, BurstKill{
			Job:     job,
			Replica: rng.Intn(2),
			Node:    rng.Intn(spec.NodesPerJob),
			After:   5*time.Millisecond + time.Duration(rng.Intn(40))*time.Millisecond,
		})
	}
	return spec
}

// RunBurst executes the campaign: submit every job, arm the seeded kills
// against admitted controllers, drain under a watchdog, and verify each
// job's final state bit-for-bit against the serial ring reference.
func RunBurst(spec BurstSpec) (BurstReport, error) {
	if spec.Watchdog <= 0 {
		spec.Watchdog = 2 * time.Minute
	}
	sched, err := New(Config{
		Nodes:  2 * spec.NodesPerJob * spec.Jobs,
		Spares: spec.SharedSpares,
	})
	if err != nil {
		return BurstReport{}, err
	}
	defer sched.Close()

	start := time.Now()
	jobs := make([]*Job, spec.Jobs)
	for i := range jobs {
		jobs[i], err = sched.Submit(JobSpec{
			Name:     fmt.Sprintf("burst-%02d", i),
			Priority: i % 4,
			Nodes:    spec.NodesPerJob,
			Tasks:    spec.TasksPerNode,
			Iters:    spec.Iters,
			Interval: spec.Interval,
		})
		if err != nil {
			return BurstReport{}, err
		}
	}
	for _, k := range spec.Kills {
		if k.Job < 0 || k.Job >= len(jobs) {
			return BurstReport{}, fmt.Errorf("fleet: kill targets job %d of %d", k.Job, len(jobs))
		}
		k := k
		j := jobs[k.Job]
		go func() {
			<-j.Admitted()
			time.Sleep(k.After)
			if ctrl := j.Controller(); ctrl != nil {
				ctrl.KillNode(k.Replica, k.Node)
			}
		}()
	}

	stats, err := sched.Drain(spec.Watchdog)
	report := BurstReport{Stats: stats, Elapsed: time.Since(start)}
	if err != nil {
		report.Violations = append(report.Violations, "no-deadlock: "+err.Error())
		return report, nil
	}
	for i, j := range jobs {
		res := j.Wait()
		if !res.Completed {
			report.Violations = append(report.Violations,
				fmt.Sprintf("job %d (%s): did not complete: %s", i, res.Name, res.Err))
			continue
		}
		if errs := VerifyRing(j); len(errs) > 0 {
			for _, e := range errs {
				report.Violations = append(report.Violations,
					fmt.Sprintf("golden-result: job %d (%s): %v", i, res.Name, e))
			}
		}
	}
	report.Stats = sched.Stats() // re-snapshot: Wait above is settled now
	return report, nil
}

// VerifyRing checks every task of both replicas of a completed ring-workload
// job against chaos.GoldenFinal, bit for bit — the fleet-level golden-result
// oracle. Only valid for jobs using the default workload (Factory nil).
func VerifyRing(j *Job) []error {
	spec := j.Spec()
	ctrl := j.Controller()
	if ctrl == nil {
		return []error{fmt.Errorf("job %q never admitted", spec.Name)}
	}
	numTasks := spec.Nodes * spec.Tasks
	golden := chaos.GoldenFinal(numTasks, spec.Iters)
	var errs []error
	for rep := 0; rep < 2; rep++ {
		for n := 0; n < spec.Nodes; n++ {
			for t := 0; t < spec.Tasks; t++ {
				addr := runtime.Addr{Replica: rep, Node: n, Task: t}
				data, err := ctrl.Machine().PackTask(addr)
				if err != nil {
					errs = append(errs, fmt.Errorf("%v: %w", addr, err))
					continue
				}
				var prog chaos.RingProg
				if err := pup.Unpack(data, &prog); err != nil {
					errs = append(errs, fmt.Errorf("%v: %w", addr, err))
					continue
				}
				g := n*spec.Tasks + t
				if prog.Iter != spec.Iters {
					errs = append(errs, fmt.Errorf("%v: stopped at iteration %d of %d", addr, prog.Iter, spec.Iters))
				}
				if math.Float64bits(prog.Val) != math.Float64bits(golden[g]) {
					errs = append(errs, fmt.Errorf("%v: final value %v, golden %v (not bit-identical)", addr, prog.Val, golden[g]))
				}
			}
		}
	}
	return errs
}

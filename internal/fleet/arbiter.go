package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"acr/internal/ckptstore"
)

// Arbiter is the fleet's checkpoint-I/O governor: a token-bucket bandwidth
// budget plus an optional transfer-slot limit shared by every job's durable
// flush traffic. Writers (tier-1 flush Puts) pass through a FIFO turnstile
// and pay for their bytes; a flush storm from one job therefore queues
// behind the budget instead of saturating the disk tier. Reads — recovery
// traffic walking the escalation ladder — are the priority class: they
// bypass the budget entirely, because delaying a restart to protect flush
// throughput inverts the whole point of having flushed.
//
// A writer is admitted once the balance covers its bytes (capped at the
// one-second burst, so a transfer larger than the burst is admitted at a
// full bucket and leaves debt behind rather than blocking forever). The
// debt is paid off by refill before the next writer passes, which keeps
// long-run throughput at BytesPerSec for any transfer-size mix.
type Arbiter struct {
	bytesPerSec float64
	slots       chan struct{}

	// turnstile serializes waiting writers so budget is granted in arrival
	// order (Go mutexes switch to FIFO handoff under contention, which is
	// exactly the fairness wanted here).
	turnstile sync.Mutex
	mu        sync.Mutex
	tokens    float64 // may be negative: outstanding debt
	last      time.Time

	writeWaits  atomic.Int64
	writeWaitNs atomic.Int64
	writeBytes  atomic.Int64
	readBypass  atomic.Int64
}

// ArbiterStats is a snapshot of the arbiter's traffic counters.
type ArbiterStats struct {
	WriteWaits   int64         `json:"write_waits"`   // writes that had to queue for budget
	WriteWait    time.Duration `json:"write_wait_ns"` // total time writers spent queued
	WriteBytes   int64         `json:"write_bytes"`   // bytes admitted through the budget
	ReadBypasses int64         `json:"read_bypasses"` // recovery reads that skipped the queue
}

// NewArbiter builds an arbiter with the given write budget in bytes per
// second (<= 0: unlimited, stats only) and concurrent-transfer slot count
// (<= 0: unlimited). The bucket starts full with a one-second burst.
func NewArbiter(bytesPerSec float64, transferSlots int) *Arbiter {
	a := &Arbiter{bytesPerSec: bytesPerSec, last: time.Now()}
	if bytesPerSec > 0 {
		a.tokens = bytesPerSec // one-second burst
	}
	if transferSlots > 0 {
		a.slots = make(chan struct{}, transferSlots)
	}
	return a
}

// refillLocked credits tokens for the time elapsed since the last refill,
// capped at the one-second burst. Callers hold a.mu.
func (a *Arbiter) refillLocked(now time.Time) {
	a.tokens += now.Sub(a.last).Seconds() * a.bytesPerSec
	if a.tokens > a.bytesPerSec {
		a.tokens = a.bytesPerSec
	}
	a.last = now
}

// AcquireWrite blocks until the caller may move n bytes of flush traffic,
// charging them against the shared budget. Pair with Release.
func (a *Arbiter) AcquireWrite(n int) {
	if a.slots != nil {
		a.slots <- struct{}{}
	}
	a.writeBytes.Add(int64(n))
	if a.bytesPerSec <= 0 {
		return
	}
	a.turnstile.Lock()
	defer a.turnstile.Unlock()
	start := time.Now()
	waited := false
	need := float64(n)
	if need > a.bytesPerSec {
		need = a.bytesPerSec // burst cap; see the type comment
	}
	a.mu.Lock()
	for {
		a.refillLocked(time.Now())
		if a.tokens >= need {
			a.tokens -= float64(n)
			a.mu.Unlock()
			break
		}
		// Sleep off the shortfall outside the balance lock; the turnstile
		// keeps later writers queued behind us.
		shortfall := need - a.tokens
		a.mu.Unlock()
		waited = true
		time.Sleep(time.Duration(shortfall / a.bytesPerSec * float64(time.Second)))
		a.mu.Lock()
	}
	if waited {
		a.writeWaits.Add(1)
		a.writeWaitNs.Add(int64(time.Since(start)))
	}
}

// NoteRead records a budget-exempt recovery read. Pair with Release when a
// slot limit is configured; reads still occupy a transfer slot (the disk
// has finitely many heads) but never queue for bandwidth.
func (a *Arbiter) NoteRead() {
	if a.slots != nil {
		a.slots <- struct{}{}
	}
	a.readBypass.Add(1)
}

// Release returns the transfer slot taken by AcquireWrite or NoteRead.
func (a *Arbiter) Release() {
	if a.slots != nil {
		<-a.slots
	}
}

// Stats snapshots the traffic counters.
func (a *Arbiter) Stats() ArbiterStats {
	return ArbiterStats{
		WriteWaits:   a.writeWaits.Load(),
		WriteWait:    time.Duration(a.writeWaitNs.Load()),
		WriteBytes:   a.writeBytes.Load(),
		ReadBypasses: a.readBypass.Load(),
	}
}

// Wrap returns a ckptstore.Store whose writes pass through the arbiter —
// the value a fleet job plugs into core.Config.FlushStore so its background
// flusher competes fairly for the shared disk tier.
func (a *Arbiter) Wrap(inner ckptstore.Store) ckptstore.Store {
	return &arbitratedStore{inner: inner, arb: a}
}

// arbitratedStore throttles Put traffic against the shared budget and lets
// Get (recovery) traffic bypass it. Compare, Evict, and Counters delegate
// untouched: they are metadata operations, not disk-tier transfers.
type arbitratedStore struct {
	inner ckptstore.Store
	arb   *Arbiter
}

func (s *arbitratedStore) Put(k ckptstore.Key, ck *ckptstore.Checkpoint) error {
	s.arb.AcquireWrite(ck.Len())
	defer s.arb.Release()
	return s.inner.Put(k, ck)
}

func (s *arbitratedStore) Get(k ckptstore.Key) (*ckptstore.Checkpoint, error) {
	s.arb.NoteRead()
	defer s.arb.Release()
	return s.inner.Get(k)
}

func (s *arbitratedStore) Compare(a, b ckptstore.Key) (ckptstore.CompareResult, error) {
	return s.inner.Compare(a, b)
}

func (s *arbitratedStore) Evict(olderThan uint64) int { return s.inner.Evict(olderThan) }

func (s *arbitratedStore) Counters() ckptstore.Counters { return s.inner.Counters() }

func (s *arbitratedStore) Name() string { return "arb(" + s.inner.Name() + ")" }

// Inner exposes the wrapped store so layered unwrappers (e.g.
// ckptstore.ResilientStatsOf walking down to a Resilient) can see through
// the arbitration wrapper.
func (s *arbitratedStore) Inner() ckptstore.Store { return s.inner }

// Keys forwards enumeration to the inner store when it supports it, so the
// acrd inventory endpoints see through the arbitration wrapper.
func (s *arbitratedStore) Keys() []ckptstore.Key {
	if e, ok := s.inner.(ckptstore.Enumerator); ok {
		return e.Keys()
	}
	return nil
}

package fleet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSubmitAfterClose: the typed-error contract.
func TestSubmitAfterClose(t *testing.T) {
	s, err := New(Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Submit(JobSpec{Name: "late", Nodes: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent: a second close must return, not hang or panic
}

// TestCloseSettlesUnfinishedJobs: jobs still queued (the pool fits one at a
// time) must be settled with ErrClosed when the scheduler shuts down — Wait
// returns instead of hanging.
func TestCloseSettlesUnfinishedJobs(t *testing.T) {
	s, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	running := mustSubmit(t, s, JobSpec{Name: "running", Nodes: 1, Tasks: 1, Iters: 400000})
	queued := mustSubmit(t, s, JobSpec{Name: "queued", Nodes: 1, Tasks: 1, Iters: 100})
	<-running.Admitted()
	s.Close()

	waitDone := make(chan JobResult, 2)
	go func() { waitDone <- running.Wait() }()
	go func() { waitDone <- queued.Wait() }()
	for i := 0; i < 2; i++ {
		select {
		case res := <-waitDone:
			if res.Completed {
				t.Fatalf("job %q reported completed after Close", res.Name)
			}
			if res.Err != ErrClosed.Error() {
				t.Errorf("job %q err = %q, want %q", res.Name, res.Err, ErrClosed)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("Wait hung after Close")
		}
	}
	if _, ok := queued.Result(); !ok {
		t.Fatal("Result not available after settle")
	}
}

// TestCloseRacesSubmitAndDrain hammers Close concurrently with Submit and
// Drain: every accepted job must settle (Drain and Wait return), every
// rejected submit must fail with ErrClosed, and nothing may deadlock or
// trip the race detector.
func TestCloseRacesSubmitAndDrain(t *testing.T) {
	for round := 0; round < 8; round++ {
		s, err := New(Config{Nodes: 8, Spares: 1})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var accepted []*Job

		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					j, err := s.Submit(JobSpec{Name: "race", Nodes: 1, Tasks: 1, Iters: 200})
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("submit error = %v, want ErrClosed", err)
						}
						return
					}
					mu.Lock()
					accepted = append(accepted, j)
					mu.Unlock()
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Drain(100 * time.Millisecond)
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(round) * 500 * time.Microsecond)
			s.Close()
		}()
		wg.Wait()
		s.Close() // idempotent after the racing close

		mu.Lock()
		jobs := accepted
		mu.Unlock()
		for _, j := range jobs {
			select {
			case <-j.Done():
			case <-time.After(30 * time.Second):
				t.Fatal("accepted job never settled after Close")
			}
		}
	}
}

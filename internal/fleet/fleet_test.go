package fleet

import (
	"testing"
	"time"
)

// drain is the test harness's watchdog-wrapped shutdown.
func drain(t *testing.T, s *Scheduler) FleetStats {
	t.Helper()
	stats, err := s.Drain(90 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// mustSubmit fails the test on a submit error (scheduler closed).
func mustSubmit(t *testing.T, s *Scheduler, spec JobSpec) *Job {
	t.Helper()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit %q: %v", spec.Name, err)
	}
	return j
}

// TestAdmissionQueuesUntilResources: a pool fitting one job at a time must
// serialize three submitted jobs, all completing with golden results.
func TestAdmissionQueuesUntilResources(t *testing.T) {
	s, err := New(Config{Nodes: 4}) // one 2-node-per-replica job at a time
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var jobs []*Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, mustSubmit(t, s, JobSpec{
			Name: "serial-" + string(rune('a'+i)), Nodes: 2, Tasks: 1, Iters: 2000,
		}))
	}
	stats := drain(t, s)
	if stats.Admissions != 3 || stats.Completed != 3 || stats.Failed != 0 {
		t.Fatalf("admissions=%d completed=%d failed=%d, want 3/3/0",
			stats.Admissions, stats.Completed, stats.Failed)
	}
	for _, j := range jobs {
		if errs := VerifyRing(j); len(errs) > 0 {
			t.Fatalf("golden violation: %v", errs)
		}
	}
	// With room for only one job, at least the third job measurably queued
	// behind the first two.
	if stats.Jobs[2].QueueWait <= 0 {
		t.Errorf("third job queue wait = %v, want > 0", stats.Jobs[2].QueueWait)
	}
}

// TestAdmissionPriorityOrder: with the pool blocked by a running job, the
// higher-priority later submission must be admitted before the earlier
// low-priority one.
func TestAdmissionPriorityOrder(t *testing.T) {
	s, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first := mustSubmit(t, s, JobSpec{Name: "first", Nodes: 1, Tasks: 1, Iters: 40000})
	<-first.Admitted()
	low := mustSubmit(t, s, JobSpec{Name: "low", Priority: 1, Nodes: 1, Tasks: 1, Iters: 500})
	high := mustSubmit(t, s, JobSpec{Name: "high", Priority: 5, Nodes: 1, Tasks: 1, Iters: 500})
	admitTime := func(j *Job) <-chan time.Time {
		ch := make(chan time.Time, 1)
		go func() { <-j.Admitted(); ch <- time.Now() }()
		return ch
	}
	lowAt, highAt := admitTime(low), admitTime(high)
	select {
	case <-low.Admitted():
		t.Fatal("low-priority job admitted while pool was full")
	case <-time.After(5 * time.Millisecond):
	}
	drain(t, s)
	if !high.Wait().Completed || !low.Wait().Completed {
		t.Fatal("jobs did not complete")
	}
	// Head-of-line priority order: low can only be admitted after high has
	// run and released the pool, so its admission is strictly later.
	if l, h := <-lowAt, <-highAt; !l.After(h) {
		t.Fatalf("low admitted at %v, before high at %v", l, h)
	}
}

// TestSpareBrokeringFromPool: a degraded job is granted the fleet's free
// spare and re-expands.
func TestSpareBrokeringFromPool(t *testing.T) {
	s, err := New(Config{Nodes: 4, Spares: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := mustSubmit(t, s, JobSpec{Name: "victim-of-fate", Nodes: 2, Tasks: 2, Iters: 8000})
	<-j.Admitted()
	time.Sleep(5 * time.Millisecond)
	j.Controller().KillNode(0, 1)
	stats := drain(t, s)
	res := j.Wait()
	if !res.Completed {
		t.Fatalf("job failed: %s", res.Err)
	}
	if res.Stats.Folds != 1 {
		t.Fatalf("folds = %d, want 1 (job had no dedicated spares)", res.Stats.Folds)
	}
	if stats.SpareGrants != 1 || res.Grants != 1 {
		t.Fatalf("spare grants = %d (job %d), want 1", stats.SpareGrants, res.Grants)
	}
	if res.DegradedTime <= 0 {
		t.Errorf("degraded time = %v, want > 0", res.DegradedTime)
	}
	if got := j.Controller().Machine().FoldedCount(); got != 0 {
		t.Errorf("folded nodes at end = %d, want 0 after grant", got)
	}
	if errs := VerifyRing(j); len(errs) > 0 {
		t.Fatalf("golden violation: %v", errs)
	}
}

// TestLastSpareContention is the fleet-level chaos scenario from the issue:
// nodes die in two jobs nearly simultaneously, both outranking a third job
// that holds the fleet's only (dedicated) spare. Exactly one preemption may
// occur — the spare exists once — there must be no deadlock, and every job
// must still produce its golden result.
func TestLastSpareContention(t *testing.T) {
	s, err := New(Config{Nodes: 12, Spares: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// donor holds the only spare as a dedicated one; the free pool is empty.
	donor := mustSubmit(t, s, JobSpec{Name: "donor", Priority: 0, Nodes: 2, Tasks: 2, Iters: 9000, Spares: 1})
	a := mustSubmit(t, s, JobSpec{Name: "contender-a", Priority: 2, Nodes: 2, Tasks: 2, Iters: 9000})
	b := mustSubmit(t, s, JobSpec{Name: "contender-b", Priority: 1, Nodes: 2, Tasks: 2, Iters: 9000})
	<-donor.Admitted()
	<-a.Admitted()
	<-b.Admitted()
	time.Sleep(5 * time.Millisecond)
	// Near-simultaneous kills in both contenders.
	a.Controller().KillNode(0, 0)
	b.Controller().KillNode(1, 1)

	stats := drain(t, s)
	for _, j := range []*Job{donor, a, b} {
		res := j.Wait()
		if !res.Completed {
			t.Fatalf("job %s failed: %s", res.Name, res.Err)
		}
		if errs := VerifyRing(j); len(errs) > 0 {
			t.Fatalf("golden violation in %s: %v", res.Name, errs)
		}
	}
	if stats.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want exactly 1 (one spare to steal)", stats.Preemptions)
	}
	if donor.Wait().Preempted != 1 {
		t.Fatalf("donor preempted = %d, want 1", donor.Wait().Preempted)
	}
	// One contender won the stolen spare; the other either finished
	// degraded or was served later from the donor's returned capacity.
	aRes, bRes := a.Wait(), b.Wait()
	if aRes.Grants+bRes.Grants < 1 {
		t.Fatalf("no contender received a grant (a=%d b=%d)", aRes.Grants, bRes.Grants)
	}
	if aRes.Stats.Folds+bRes.Stats.Folds != 2 {
		t.Fatalf("folds a=%d b=%d, want 2 total (both killed with no dedicated spares)",
			aRes.Stats.Folds, bRes.Stats.Folds)
	}
}

// TestBurstCampaign runs the full acceptance campaign at a CI-friendly
// size: 8 jobs, 1 shared spare, seeded kills, zero oracle violations.
func TestBurstCampaign(t *testing.T) {
	spec := DefaultBurstSpec(7)
	spec.Jobs = 8
	spec.Iters = 6000
	kept := spec.Kills[:0]
	for _, k := range spec.Kills {
		if k.Job < spec.Jobs {
			kept = append(kept, k)
		}
	}
	spec.Kills = kept
	if len(spec.Kills) < 2 {
		t.Fatalf("seed produced %d kills under job %d; pick a different seed", len(spec.Kills), spec.Jobs)
	}
	report, err := RunBurst(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range report.Violations {
		t.Error(v)
	}
	if report.Stats.Completed != spec.Jobs {
		t.Fatalf("completed = %d, want %d", report.Stats.Completed, spec.Jobs)
	}
}

// TestRemoteTierThroughFleet: a job with the remote tier enabled routes
// its uploads through the fleet's remote-bandwidth arbiter, and the
// resilient wrapper's stats surface through the arbitration layer into the
// job's final core.Stats.
func TestRemoteTierThroughFleet(t *testing.T) {
	s, err := New(Config{Nodes: 4, RemoteBytesPerSec: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := mustSubmit(t, s, JobSpec{
		Name: "remote", Nodes: 2, Tasks: 1, Iters: 4000,
		FlushEvery: 2, RemoteEvery: 2,
	})
	stats := drain(t, s)
	if stats.Completed != 1 || stats.Failed != 0 {
		t.Fatalf("completed=%d failed=%d: %+v", stats.Completed, stats.Failed, stats.Jobs)
	}
	if errs := VerifyRing(j); len(errs) > 0 {
		t.Fatalf("golden violation: %v", errs)
	}
	res := j.Wait()
	if res.Stats.RemoteFlushedEpochs == 0 {
		t.Fatalf("no epochs reached the remote tier: %+v", res.Stats)
	}
	if res.Stats.Remote.State != "closed" {
		t.Fatalf("remote breaker state %q, want closed (stats not unwrapped through the arbiter?)", res.Stats.Remote.State)
	}
	if stats.RemoteArbiter.WriteBytes == 0 {
		t.Fatalf("remote arbiter metered no upload traffic: %+v", stats.RemoteArbiter)
	}
	if stats.Arbiter.WriteBytes == 0 {
		t.Fatalf("local flush arbiter metered no traffic: %+v", stats.Arbiter)
	}
}

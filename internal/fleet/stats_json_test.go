package fleet

import (
	"encoding/json"
	"testing"

	"acr/internal/core"
)

// TestStatsJSONSchemaGolden pins the wire schema of the stats structs the
// acrd HTTP API and /metrics exporter serve. These encodings are consumed
// by external scrapers; renaming a tag, changing a field's kind, or
// reordering fields is a breaking API change and must fail here first.
// Zero values are encoded deliberately: the golden string then pins the
// complete key set, including fields that would hide behind omitempty.
func TestStatsJSONSchemaGolden(t *testing.T) {
	cases := []struct {
		name string
		v    any
		want string
	}{
		{
			name: "core.Stats",
			v:    core.Stats{},
			want: `{"checkpoints":0,"sdc_detected":0,"hard_errors":0,"rollbacks":0,"spares_used":0,"aborted_rounds":0,"predicted":0,"final_interval_ns":0,"checkpoint_times_ns":null,"blocked_times_ns":null,"capture_times_ns":null,"exchange_times_ns":null,"compare_times_ns":null,"capture_busy_times_ns":null,"exchange_busy_times_ns":null,"compare_busy_times_ns":null,"pack_fast_path":0,"pack_slow_path":0,"capture_chunks_packed":0,"capture_chunks_reused":0,"capture_bytes_reused":0,"dirty_ratio":0,"exchange_chunks_shipped":0,"exchange_chunks_reused":0,"pool":{"gets":0,"puts":0,"hits":0,"misses":0,"drops":0,"bytes_recycled":0},"elapsed_ns":0,"store_name":"","store":{"puts":0,"gets":0,"compares":0,"mismatches":0,"bytes_written":0,"bytes_read":0,"bytes_evicted":0,"chunks_stored":0,"chunks_reused":0,"compare_time_ns":0,"last_localized_chunk":0},"localized_chunks":null,"tier_recoveries":[0,0,0,0],"rollback_depths":null,"max_rollback_depth":0,"flushed_epochs":0,"flush_errors":0,"buddy_pair_losses":0,"remote_flushed_epochs":0,"remote_flush_errors":0,"remote":{"retries":0,"transients":0,"deadlines":0,"trips":0,"recloses":0,"probes":0,"probe_failures":0,"failovers":0,"deduped_puts":0,"state":""},"folds":0,"expands":0,"degraded_nodes":0,"resumed_epoch":0,"exchange_frames":0,"exchange_retries":0,"link":{"sent":0,"delivered":0,"lost":0,"duplicated":0,"reordered":0}}`,
		},
		{
			name: "fleet.FleetStats",
			v:    FleetStats{},
			want: `{"submitted":0,"admissions":0,"completed":0,"failed":0,"preemptions":0,"spare_grants":0,"queue_wait_ns":0,"max_queue_wait_ns":0,"degraded_ns":0,"arbiter":{"write_waits":0,"write_wait_ns":0,"write_bytes":0,"read_bypasses":0},"remote_arbiter":{"write_waits":0,"write_wait_ns":0,"write_bytes":0,"read_bypasses":0},"jobs":null}`,
		},
		{
			name: "fleet.ArbiterStats",
			v:    ArbiterStats{},
			want: `{"write_waits":0,"write_wait_ns":0,"write_bytes":0,"read_bypasses":0}`,
		},
		{
			name: "core.Progress",
			v:    core.Progress{},
			want: `{"committed_epoch":0,"checkpoints":0,"hard_errors":0,"sdc_detected":0,"rollbacks":0,"flushed_epochs":0,"flush_errors":0,"tier_recoveries":[0,0,0,0],"folds":0,"expands":0,"degraded_nodes":0,"resumed_epoch":0,"remote_flushed_epochs":0,"remote_flush_errors":0,"remote_retries":0,"remote_breaker_trips":0,"remote_breaker_recloses":0,"remote_failovers":0,"remote_breaker_open":0}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.Marshal(tc.v)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Errorf("schema drift:\n got  %s\n want %s", got, tc.want)
			}
		})
	}
}

// TestJobResultRoundTrip: JobResult (the per-job payload inside FleetStats)
// must survive an encode/decode cycle with its embedded core.Stats intact.
func TestJobResultRoundTrip(t *testing.T) {
	in := JobResult{Name: "j", Priority: 3, Completed: true}
	in.Stats.Checkpoints = 7
	in.Stats.TierRecoveries = [4]int{1, 2, 3, 4}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out JobResult
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "j" || out.Priority != 3 || !out.Completed ||
		out.Stats.Checkpoints != 7 || out.Stats.TierRecoveries != [4]int{1, 2, 3, 4} {
		t.Fatalf("round trip mangled result: %+v", out)
	}
}

// Package fleet multiplexes many concurrent ACR jobs — each a
// core.Controller driving a runtime.Machine — over three shared, contended
// resources: a physical node pool (each job occupies 2×Nodes physical
// nodes, one per replica member), a spare pool (repaired nodes waiting for
// work), and a disk-tier bandwidth budget for durable checkpoint flushes.
//
// The scheduler provides:
//
//   - Admission control: submitted jobs queue until their node and spare
//     demand fits the free pools, served in priority order (head-of-line —
//     a large high-priority job is never overtaken by a small low-priority
//     one, so priorities cannot starve).
//   - Checkpoint-I/O arbitration: every job's tier-1 flush traffic passes
//     through one token-bucket Arbiter (see arbiter.go) plugged into
//     core.Config.FlushStore, so one job's flush storm queues against the
//     budget instead of starving another job's recovery reads.
//   - Spare brokering: when a job exhausts its dedicated spares and folds a
//     dead node onto a survivor (degraded mode), the fleet grants it a
//     spare — from the free pool if one is available, otherwise by
//     preempting an idle spare from the lowest-priority healthy job. The
//     grant lands through Controller.FreeSpare, which re-expands the folded
//     node.
//
// All brokering decisions run on one scheduler goroutine fed by channels;
// controllers never touch fleet state directly, so the fleet adds no lock
// ordering constraints to the per-job machinery.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"acr/internal/chaos"
	"acr/internal/ckptstore"
	"acr/internal/core"
	"acr/internal/runtime"
	"acr/internal/trace"
)

// Config shapes the shared resource pools.
type Config struct {
	// Nodes is the physical node pool backing replicas. A job with N
	// logical nodes per replica occupies 2N of them for its lifetime.
	Nodes int
	// Spares is the shared spare pool. Dedicated per-job spares
	// (JobSpec.Spares) are carved out of it at admission; the remainder is
	// the brokered free pool degraded jobs draw from.
	Spares int
	// BytesPerSec is the shared disk-tier write budget for durable flushes;
	// <= 0 disables throttling (the arbiter still counts traffic).
	BytesPerSec float64
	// TransferSlots bounds concurrent disk-tier transfers; <= 0 unlimited.
	TransferSlots int
	// RemoteBytesPerSec is the shared remote-tier (object store) upload
	// budget, metered by a second arbiter so remote flush traffic queues
	// against its own budget instead of competing with local disk flushes;
	// <= 0 disables throttling (the arbiter still counts traffic).
	RemoteBytesPerSec float64
	// RemoteTransferSlots bounds concurrent remote-tier transfers; <= 0
	// unlimited.
	RemoteTransferSlots int
	// Timeline, if non-nil, receives fleet-level events (admissions,
	// grants, preemptions) as trace.Fleet annotations.
	Timeline *trace.Timeline
}

// JobSpec describes one job submitted to the fleet.
type JobSpec struct {
	Name     string `json:"name"`
	Priority int    `json:"priority"`
	// Nodes and Tasks shape the job's machine: Nodes logical nodes per
	// replica, Tasks tasks per node (2×Nodes physical nodes total).
	Nodes int `json:"nodes"`
	Tasks int `json:"tasks"`
	// Spares is the job's dedicated spare count, allocated from the fleet
	// pool at admission and returned (if unused) at completion.
	Spares int `json:"spares"`
	// Iters is the ring-workload lap count when Factory is nil.
	Iters int `json:"iters"`
	// Factory overrides the default ring workload. Jobs with a custom
	// factory are not golden-verifiable by VerifyRing.
	Factory runtime.Factory `json:"-"`

	Scheme     core.Scheme     `json:"scheme"`
	Comparison core.Comparison `json:"comparison"`
	// Interval is the checkpoint interval; <= 0 selects 2ms.
	Interval time.Duration `json:"interval"`
	// FlushEvery > 0 flushes every K-th committed epoch to a durable tier
	// routed through the fleet's bandwidth arbiter.
	FlushEvery int `json:"flush_every"`
	// FlushRetain bounds the complete durable epochs the job's flush tier
	// keeps (core.Config.FlushRetain); <= 0 selects the core default.
	FlushRetain int `json:"flush_retain,omitempty"`
	// FlushStore overrides the job's durable tier (still routed through the
	// fleet arbiter). Nil with FlushEvery > 0 selects a job-private
	// in-memory tier. A daemon passes a per-job disk store here so flushed
	// epochs survive the process.
	FlushStore ckptstore.Store `json:"-"`
	// ResumeEpochs warm-starts the job from the newest usable of these
	// durable epochs in FlushStore (core.Config.ResumeEpochs) instead of
	// factory state. Requires FlushEvery > 0.
	ResumeEpochs []uint64 `json:"resume_epochs,omitempty"`
	// RemoteEvery > 0 uploads every K-th committed epoch to the remote
	// checkpoint tier (core.Config.RemoteFlushEvery), routed through the
	// fleet's remote-bandwidth arbiter.
	RemoteEvery int `json:"remote_every,omitempty"`
	// RemoteRetain bounds the epochs the remote tier keeps
	// (core.Config.RemoteRetain); <= 0 selects the core default.
	RemoteRetain int `json:"remote_retain,omitempty"`
	// RemoteStore overrides the job's remote tier (still routed through
	// the remote arbiter). Nil with RemoteEvery > 0 selects a job-private
	// simulated remote hardened by the Resilient wrapper with an
	// in-memory fallback. A daemon passes its own Resilient-wrapped
	// remote here.
	RemoteStore ckptstore.Store `json:"-"`
}

// JobResult is one job's final accounting.
type JobResult struct {
	Name     string `json:"name"`
	Priority int    `json:"priority"`
	// QueueWait is the time between submission and admission.
	QueueWait time.Duration `json:"queue_wait_ns"`
	// DegradedTime is the total time the job ran with folded nodes.
	DegradedTime time.Duration `json:"degraded_ns"`
	// Preempted counts spares the fleet took from this job for others;
	// Grants counts spares the fleet granted to this job while degraded.
	Preempted int `json:"preempted"`
	Grants    int `json:"grants"`

	Completed bool       `json:"completed"`
	Err       string     `json:"err,omitempty"`
	Stats     core.Stats `json:"stats"`
}

// FleetStats aggregates the fleet's lifetime accounting.
type FleetStats struct {
	Submitted   int `json:"submitted"`
	Admissions  int `json:"admissions"`
	Completed   int `json:"completed"`
	Failed      int `json:"failed"`
	Preemptions int `json:"preemptions"`
	SpareGrants int `json:"spare_grants"`

	QueueWait    time.Duration `json:"queue_wait_ns"`
	MaxQueueWait time.Duration `json:"max_queue_wait_ns"`
	DegradedTime time.Duration `json:"degraded_ns"`

	Arbiter       ArbiterStats `json:"arbiter"`
	RemoteArbiter ArbiterStats `json:"remote_arbiter"`
	Jobs          []JobResult  `json:"jobs"`
}

// Job is the handle Submit returns.
type Job struct {
	spec     JobSpec
	seq      int
	submitAt time.Time

	admitted chan struct{}
	done     chan struct{}

	// Scheduler-goroutine state (guarded by Scheduler.mu for readers).
	ctrl          *core.Controller
	admitAt       time.Time
	degradedSince time.Time
	res           JobResult
}

// Spec returns the submitted spec.
func (j *Job) Spec() JobSpec { return j.spec }

// Admitted is closed once the job holds resources and its controller is
// running; Controller is valid from then on.
func (j *Job) Admitted() <-chan struct{} { return j.admitted }

// Done is closed when the job has completed or failed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Controller returns the job's controller (nil before admission) — the
// handle chaos tests use to inject failures.
func (j *Job) Controller() *core.Controller {
	select {
	case <-j.admitted:
		return j.ctrl
	default:
		return nil
	}
}

// Wait blocks until the job finishes and returns its result.
func (j *Job) Wait() JobResult {
	<-j.done
	return j.res
}

// Result returns the job's final accounting without blocking; ok is false
// while the job is still queued or running.
func (j *Job) Result() (res JobResult, ok bool) {
	select {
	case <-j.done:
		return j.res, true
	default:
		return JobResult{}, false
	}
}

// Seq returns the job's submission sequence number — its stable identity
// within the scheduler (and the acrd job id).
func (j *Job) Seq() int { return j.seq }

type eventKind int

const (
	evSubmit eventKind = iota
	evFold
	evDone
	evSpare
)

type event struct {
	kind  eventKind
	job   *Job
	stats core.Stats
	err   error
}

// Scheduler multiplexes jobs over the shared pools. All scheduling state is
// owned by one goroutine; public methods communicate with it via channels.
type Scheduler struct {
	cfg       Config
	arb       *Arbiter
	remoteArb *Arbiter

	events  chan event
	stop    chan struct{}
	stopped chan struct{}
	once    sync.Once
	start   time.Time

	mu     sync.Mutex
	closed bool
	jobs   []*Job
	stats  FleetStats

	// Loop-owned (no locking): pool balances and scheduling queues.
	freeNodes  int
	freeSpares int
	queue      []*Job
	running    map[*Job]bool
	waiting    []*Job // degraded jobs owed a spare, priority order
}

// New builds a scheduler over the given pools and starts its loop.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("fleet: node pool must be positive, got %d", cfg.Nodes)
	}
	if cfg.Spares < 0 {
		return nil, fmt.Errorf("fleet: negative spare pool %d", cfg.Spares)
	}
	s := &Scheduler{
		cfg:        cfg,
		arb:        NewArbiter(cfg.BytesPerSec, cfg.TransferSlots),
		remoteArb:  NewArbiter(cfg.RemoteBytesPerSec, cfg.RemoteTransferSlots),
		events:     make(chan event, 64),
		stop:       make(chan struct{}),
		stopped:    make(chan struct{}),
		start:      time.Now(),
		freeNodes:  cfg.Nodes,
		freeSpares: cfg.Spares,
		running:    make(map[*Job]bool),
	}
	go s.loop()
	return s, nil
}

// Arbiter exposes the fleet's I/O arbiter (for stats and custom stores).
func (s *Scheduler) Arbiter() *Arbiter { return s.arb }

// RemoteArbiter exposes the fleet's remote-tier bandwidth arbiter.
func (s *Scheduler) RemoteArbiter() *Arbiter { return s.remoteArb }

func (s *Scheduler) mark(format string, args ...any) {
	if s.cfg.Timeline == nil {
		return
	}
	s.cfg.Timeline.Add(time.Since(s.start).Seconds(), trace.Fleet, fmt.Sprintf(format, args...))
}

// ErrClosed reports an operation against a scheduler that has been Closed.
var ErrClosed = errors.New("fleet: scheduler closed")

// Submit queues a job for admission and returns its handle. Submitting
// after (or concurrently with) Close returns ErrClosed; a job accepted by
// Submit is always settled — admitted and run, or failed with ErrClosed in
// its result — so Wait and Drain never hang on it.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if spec.Tasks <= 0 {
		spec.Tasks = 1
	}
	if spec.Interval <= 0 {
		spec.Interval = 2 * time.Millisecond
	}
	if spec.Iters <= 0 {
		spec.Iters = 4000
	}
	j := &Job{
		spec:     spec,
		submitAt: time.Now(),
		admitted: make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	j.seq = len(s.jobs)
	s.jobs = append(s.jobs, j)
	s.stats.Submitted++
	s.mu.Unlock()
	s.notify(event{kind: evSubmit, job: j})
	return j, nil
}

// Jobs snapshots every submitted job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.jobs...)
}

// AddSpare models a repaired physical node rejoining the fleet's shared
// spare pool; waiting degraded jobs are served immediately.
func (s *Scheduler) AddSpare() {
	s.notify(event{kind: evSpare})
}

// notify delivers an event to the loop unless the scheduler has stopped.
func (s *Scheduler) notify(ev event) {
	select {
	case s.events <- ev:
	case <-s.stopped:
	}
}

// Drain waits until every submitted job has finished, then returns the
// final stats. It fails if the fleet has not quiesced within the timeout —
// the no-deadlock watchdog for chaos campaigns.
func (s *Scheduler) Drain(timeout time.Duration) (FleetStats, error) {
	deadline := time.After(timeout)
	s.mu.Lock()
	jobs := append([]*Job(nil), s.jobs...)
	s.mu.Unlock()
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-deadline:
			return s.Stats(), fmt.Errorf("fleet: drain timed out after %v with job %q unfinished", timeout, j.spec.Name)
		}
	}
	return s.Stats(), nil
}

// Close stops the scheduler loop, aborts still-running machines, and
// settles every unfinished job with ErrClosed so no Wait or Drain hangs.
// Idempotent and safe to call concurrently with Submit and Drain; Drain
// first for a clean shutdown. The closed flag is raised before the loop is
// stopped, so any job Submit accepted is visible to the final settle pass.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.once.Do(func() { close(s.stop) })
	<-s.stopped
}

// Stats snapshots the fleet accounting, including per-job results in
// submission order.
func (s *Scheduler) Stats() FleetStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.Arbiter = s.arb.Stats()
	out.RemoteArbiter = s.remoteArb.Stats()
	out.Jobs = make([]JobResult, 0, len(s.jobs))
	for _, j := range s.jobs {
		out.Jobs = append(out.Jobs, j.res)
	}
	return out
}

// loop is the scheduler goroutine: the only writer of pool balances and
// queues, and (under s.mu) of job results and aggregate stats.
func (s *Scheduler) loop() {
	defer close(s.stopped)
	for {
		select {
		case <-s.stop:
			for j := range s.running {
				j.ctrl.Machine().Stop()
			}
			s.settleAll()
			return
		case ev := <-s.events:
			switch ev.kind {
			case evSubmit:
				s.enqueue(ev.job)
				s.admitReady()
			case evFold:
				s.brokerSpare(ev.job)
			case evDone:
				s.finish(ev.job, ev.stats, ev.err)
				s.serveWaiting()
				s.admitReady()
			case evSpare:
				s.freeSpares++
				s.mark("spare pool +1 (repair), free=%d", s.freeSpares)
				s.serveWaiting()
				s.admitReady()
			}
		}
	}
}

// enqueue inserts the job into the admission queue, priority-descending
// with submission order breaking ties.
func (s *Scheduler) enqueue(j *Job) {
	s.queue = append(s.queue, j)
	sort.SliceStable(s.queue, func(a, b int) bool {
		if s.queue[a].spec.Priority != s.queue[b].spec.Priority {
			return s.queue[a].spec.Priority > s.queue[b].spec.Priority
		}
		return s.queue[a].seq < s.queue[b].seq
	})
}

// admitReady admits queue-head jobs while resources last. Head-of-line by
// design: if the highest-priority waiter does not fit, nothing behind it is
// considered, trading utilization for freedom from priority starvation.
func (s *Scheduler) admitReady() {
	for len(s.queue) > 0 {
		j := s.queue[0]
		need := 2 * j.spec.Nodes
		if need > s.freeNodes || j.spec.Spares > s.freeSpares {
			return
		}
		s.queue = s.queue[1:]
		if err := s.admit(j); err != nil {
			s.mu.Lock()
			j.res = JobResult{Name: j.spec.Name, Priority: j.spec.Priority, Err: err.Error()}
			s.stats.Failed++
			s.mu.Unlock()
			close(j.admitted)
			close(j.done)
			continue
		}
		s.freeNodes -= need
		s.freeSpares -= j.spec.Spares
	}
}

// admit builds the job's controller and launches its runner.
func (s *Scheduler) admit(j *Job) error {
	spec := j.spec
	factory := spec.Factory
	if factory == nil {
		factory = chaos.RingFactory(spec.Tasks, spec.Iters, 0)
	}
	cc := core.Config{
		NodesPerReplica:    spec.Nodes,
		TasksPerNode:       spec.Tasks,
		Spares:             spec.Spares,
		Factory:            factory,
		Scheme:             spec.Scheme,
		Comparison:         spec.Comparison,
		CheckpointInterval: spec.Interval,
		HeartbeatInterval:  time.Millisecond,
		HeartbeatTimeout:   8 * time.Millisecond,
		Degraded:           true,
		OnFold:             func() { s.notify(event{kind: evFold, job: j}) },
	}
	if spec.FlushEvery > 0 {
		cc.FlushEvery = spec.FlushEvery
		cc.FlushRetain = spec.FlushRetain
		fs := spec.FlushStore
		if fs == nil {
			fs = ckptstore.NewMem()
		}
		cc.FlushStore = s.arb.Wrap(fs)
		cc.ResumeEpochs = spec.ResumeEpochs
	}
	if spec.RemoteEvery > 0 {
		cc.RemoteFlushEvery = spec.RemoteEvery
		cc.RemoteRetain = spec.RemoteRetain
		rs := spec.RemoteStore
		if rs == nil {
			// Job-private simulated remote behind the full resilience
			// stack: retries, breaker, and a local fallback so a remote
			// outage degrades the tier instead of failing the job.
			rs = ckptstore.NewResilient(
				ckptstore.NewRemote(ckptstore.RemoteOptions{}),
				ckptstore.ResilientOptions{Fallback: ckptstore.NewMem()},
			)
		}
		cc.RemoteStore = s.remoteArb.Wrap(rs)
	}
	ctrl, err := core.New(cc)
	if err != nil {
		return fmt.Errorf("fleet: job %q: %w", spec.Name, err)
	}
	j.ctrl = ctrl
	now := time.Now()
	wait := now.Sub(j.submitAt)
	j.admitAt = now
	s.running[j] = true
	s.mu.Lock()
	s.stats.Admissions++
	s.stats.QueueWait += wait
	if wait > s.stats.MaxQueueWait {
		s.stats.MaxQueueWait = wait
	}
	j.res.Name = spec.Name
	j.res.Priority = spec.Priority
	j.res.QueueWait = wait
	s.mu.Unlock()
	s.mark("admit %q prio=%d nodes=%d spares=%d after %v (pool nodes=%d spares=%d)",
		spec.Name, spec.Priority, 2*spec.Nodes, spec.Spares, wait.Round(time.Microsecond),
		s.freeNodes-2*spec.Nodes, s.freeSpares-spec.Spares)
	close(j.admitted)
	go func() {
		stats, err := ctrl.Run()
		s.notify(event{kind: evDone, job: j, stats: stats, err: err})
	}()
	return nil
}

// brokerSpare serves a fold notification: grant a free-pool spare, else
// preempt one from the lowest-priority healthy job the degraded job
// outranks, else put the job on the waiting list.
func (s *Scheduler) brokerSpare(j *Job) {
	if !s.running[j] {
		return
	}
	if j.degradedSince.IsZero() {
		j.degradedSince = time.Now()
	}
	if s.freeSpares > 0 {
		s.freeSpares--
		s.grant(j, "pool")
		return
	}
	if v := s.preemptionVictim(j); v != nil {
		if _, ok := v.ctrl.Machine().TakeSpare(); ok {
			s.mu.Lock()
			s.stats.Preemptions++
			v.res.Preempted++
			s.mu.Unlock()
			s.mark("preempt spare from %q (prio=%d) for %q (prio=%d)",
				v.spec.Name, v.spec.Priority, j.spec.Name, j.spec.Priority)
			s.grant(j, "preempt")
			return
		}
	}
	s.mark("%q degraded, no spare available; waiting", j.spec.Name)
	// One waiting entry per unserved fold: a job folded twice is owed two
	// grants, so duplicates are deliberate. serveWaiting drops entries that
	// turn out healthy by the time a spare frees up.
	s.waiting = append(s.waiting, j)
	sort.SliceStable(s.waiting, func(a, b int) bool {
		if s.waiting[a].spec.Priority != s.waiting[b].spec.Priority {
			return s.waiting[a].spec.Priority > s.waiting[b].spec.Priority
		}
		return s.waiting[a].seq < s.waiting[b].seq
	})
}

// preemptionVictim picks the lowest-priority running job that is healthy
// (no folded nodes), still holds an idle spare, and is outranked by j.
// Ties break toward the youngest job.
func (s *Scheduler) preemptionVictim(j *Job) *Job {
	var victim *Job
	for v := range s.running {
		if v == j || v.spec.Priority >= j.spec.Priority {
			continue
		}
		m := v.ctrl.Machine()
		if m.FoldedCount() > 0 || m.SpareCount() == 0 {
			continue
		}
		if victim == nil ||
			v.spec.Priority < victim.spec.Priority ||
			(v.spec.Priority == victim.spec.Priority && v.seq > victim.seq) {
			victim = v
		}
	}
	return victim
}

// grant hands one spare to a degraded job via FreeSpare (which re-expands
// the folded node) and settles its degraded-time accounting.
func (s *Scheduler) grant(j *Job, how string) {
	j.ctrl.FreeSpare()
	healthy := j.ctrl.Machine().FoldedCount() == 0
	s.mu.Lock()
	s.stats.SpareGrants++
	j.res.Grants++
	if healthy && !j.degradedSince.IsZero() {
		d := time.Since(j.degradedSince)
		j.res.DegradedTime += d
		s.stats.DegradedTime += d
		j.degradedSince = time.Time{}
	}
	s.mu.Unlock()
	s.mark("grant spare to %q via %s (healthy=%v)", j.spec.Name, how, healthy)
}

// serveWaiting grants free-pool spares to waiting degraded jobs, highest
// priority first.
func (s *Scheduler) serveWaiting() {
	for len(s.waiting) > 0 && s.freeSpares > 0 {
		j := s.waiting[0]
		s.waiting = s.waiting[1:]
		if !s.running[j] || j.ctrl.Machine().FoldedCount() == 0 {
			continue // finished or already re-expanded; owes nothing
		}
		s.freeSpares--
		s.grant(j, "pool (waited)")
	}
}

// finish settles a completed job and returns its resources to the pools.
// The job's physical nodes — including repaired-and-unused spares still in
// its machine — rejoin the free pools, modeling node repair at job end.
func (s *Scheduler) finish(j *Job, stats core.Stats, err error) {
	if !s.running[j] {
		return
	}
	delete(s.running, j)
	kept := s.waiting[:0]
	for _, w := range s.waiting {
		if w != j {
			kept = append(kept, w)
		}
	}
	s.waiting = kept
	s.freeNodes += 2 * j.spec.Nodes
	s.freeSpares += j.ctrl.Machine().SpareCount()
	s.mu.Lock()
	if !j.degradedSince.IsZero() {
		d := time.Since(j.degradedSince)
		j.res.DegradedTime += d
		s.stats.DegradedTime += d
		j.degradedSince = time.Time{}
	}
	j.res.Stats = stats
	if err != nil {
		j.res.Err = err.Error()
		s.stats.Failed++
	} else {
		j.res.Completed = true
		s.stats.Completed++
	}
	s.mu.Unlock()
	s.mark("done %q err=%v (pool nodes=%d spares=%d)", j.spec.Name, err, s.freeNodes, s.freeSpares)
	close(j.done)
}

// settleAll fails every job that has not finished when the loop stops —
// queued, admitted-and-aborted, or accepted by a Submit whose event never
// reached the loop. Runs on the loop goroutine after the final event, so
// the channel closes cannot race admit or finish.
func (s *Scheduler) settleAll() {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.jobs...)
	s.mu.Unlock()
	for _, j := range jobs {
		select {
		case <-j.done:
			continue
		default:
		}
		s.mu.Lock()
		j.res.Name = j.spec.Name
		j.res.Priority = j.spec.Priority
		j.res.Err = ErrClosed.Error()
		s.stats.Failed++
		s.mu.Unlock()
		select {
		case <-j.admitted:
		default:
			close(j.admitted)
		}
		close(j.done)
	}
}

package fleet

import (
	"sync"
	"testing"
	"time"

	"acr/internal/ckptstore"
	"acr/internal/pup"
)

func ckptOf(t *testing.T, size int) *ckptstore.Checkpoint {
	t.Helper()
	buf := make([]float64, size/8)
	for i := range buf {
		buf[i] = float64(i)
	}
	data, err := pup.Pack(&payload{Vals: buf})
	if err != nil {
		t.Fatal(err)
	}
	return ckptstore.Capture(data, 0, 1)
}

type payload struct{ Vals []float64 }

func (p *payload) Pup(pp *pup.PUPer) {
	pp.Label("vals")
	pp.Float64s(&p.Vals)
}

// TestArbiterThrottlesWrites: pushing several seconds of budget through the
// bucket must take at least (bytes/budget - burst) of wall clock.
func TestArbiterThrottlesWrites(t *testing.T) {
	const budget = 4 << 20 // 4 MiB/s, 4 MiB burst
	a := NewArbiter(budget, 0)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.AcquireWrite(4 << 20)
			a.Release()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 12 MiB through a 4 MiB/s bucket with a 4 MiB burst: >= ~2s. Accept
	// 1.5s to stay robust under slow CI clocks.
	if elapsed < 1500*time.Millisecond {
		t.Fatalf("3x4MiB through 4MiB/s finished in %v, bucket not throttling", elapsed)
	}
	st := a.Stats()
	if st.WriteBytes != 12<<20 {
		t.Errorf("write bytes = %d, want %d", st.WriteBytes, 12<<20)
	}
	if st.WriteWaits == 0 {
		t.Error("no writer ever waited")
	}
}

// TestArbiterReadsBypassBudget: with the budget fully in debt, a recovery
// read must not block.
func TestArbiterReadsBypassBudget(t *testing.T) {
	a := NewArbiter(1<<20, 0)
	a.AcquireWrite(32 << 20) // drive the bucket deep into debt
	a.Release()
	done := make(chan struct{})
	go func() {
		a.NoteRead()
		a.Release()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("read blocked behind write debt")
	}
	if got := a.Stats().ReadBypasses; got != 1 {
		t.Errorf("read bypasses = %d, want 1", got)
	}
}

// TestArbiterSlotsLimitConcurrency: the slot channel must keep in-flight
// transfers at or below the limit.
func TestArbiterSlotsLimitConcurrency(t *testing.T) {
	a := NewArbiter(0, 2)
	var mu sync.Mutex
	inflight, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.AcquireWrite(1)
			mu.Lock()
			inflight++
			if inflight > peak {
				peak = inflight
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			inflight--
			mu.Unlock()
			a.Release()
		}()
	}
	wg.Wait()
	if peak > 2 {
		t.Fatalf("peak in-flight transfers = %d, want <= 2", peak)
	}
}

// TestArbitratedStoreDelegates: the wrapper must deliver identical bytes
// and advertise itself in the store name.
func TestArbitratedStoreDelegates(t *testing.T) {
	a := NewArbiter(0, 0)
	st := a.Wrap(ckptstore.NewMem())
	if st.Name() != "arb(mem)" {
		t.Fatalf("name = %q, want arb(mem)", st.Name())
	}
	k := ckptstore.Key{Replica: 0, Node: 1, Task: 2, Epoch: 3}
	ck := ckptOf(t, 64<<10)
	if err := st.Put(k, ck); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Bytes()) != string(ck.Bytes()) {
		t.Fatal("round-trip bytes differ")
	}
	stats := a.Stats()
	if stats.WriteBytes != int64(ck.Len()) {
		t.Errorf("write bytes = %d, want %d", stats.WriteBytes, ck.Len())
	}
	if stats.ReadBypasses != 1 {
		t.Errorf("read bypasses = %d, want 1", stats.ReadBypasses)
	}
}

package fleet

import "testing"

// TestSimFleetDeterministic: same spec, same epochs and failures, twice.
func TestSimFleetDeterministic(t *testing.T) {
	spec := DefaultSimFleetSpec(4)
	spec.Horizon = 100
	a, b := RunSimFleet(spec), RunSimFleet(spec)
	if a != b {
		t.Fatalf("sim fleet nondeterministic:\n%+v\n%+v", a, b)
	}
	if a.CommittedEpochs == 0 {
		t.Fatal("no epochs committed")
	}
	if a.SimCores != 4*8192 {
		t.Fatalf("sim cores = %d, want %d", a.SimCores, 4*8192)
	}
}

// TestSimFleetScalesEpochs: 4x the jobs at the same horizon must commit
// close to 4x the epochs (failures perturb the count slightly).
func TestSimFleetScalesEpochs(t *testing.T) {
	small := DefaultSimFleetSpec(2)
	small.Horizon = 100
	big := DefaultSimFleetSpec(8)
	big.Horizon = 100
	a, b := RunSimFleet(small), RunSimFleet(big)
	lo, hi := 3.5*float64(a.CommittedEpochs), 4.5*float64(a.CommittedEpochs)
	if got := float64(b.CommittedEpochs); got < lo || got > hi {
		t.Fatalf("8-job fleet committed %d epochs, 2-job %d; want ~4x", b.CommittedEpochs, a.CommittedEpochs)
	}
}

// TestSimFleetCongestionEngages: a fleet whose aggregate flush demand
// exceeds the disk budget must stretch checkpoint costs (congestion > 1)
// and commit fewer epochs than an unconstrained run.
func TestSimFleetCongestionEngages(t *testing.T) {
	free := DefaultSimFleetSpec(8)
	free.Horizon = 100
	free.DiskBytesPerSec = 0 // unlimited
	tight := free
	tight.DiskBytesPerSec = float64(free.BytesPerCkpt) * 2 // ~1/4 of demand

	a, b := RunSimFleet(free), RunSimFleet(tight)
	if b.MaxCongestion <= 1 {
		t.Fatalf("max congestion = %v, want > 1 under a starved budget", b.MaxCongestion)
	}
	if b.CommittedEpochs >= a.CommittedEpochs {
		t.Fatalf("congested fleet committed %d epochs, unconstrained %d; congestion had no effect",
			b.CommittedEpochs, a.CommittedEpochs)
	}
}

// TestFleetScalingBenchQuick exercises the acrbench case end to end at the
// quick horizon and sanity-checks the gate quantity.
func TestFleetScalingBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench case in -short mode")
	}
	cs, err := RunFleetScalingBench(true, 1, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Name != FleetScaleCaseName {
		t.Fatalf("case name = %q", cs.Name)
	}
	if cs.Serial.NsPerOp <= 0 || cs.Fast.NsPerOp <= 0 {
		t.Fatalf("empty measurements: %+v", cs)
	}
	// The acceptance gate: per-epoch cost grows <= 1.3x at 8x job count.
	if cs.Speedup < 1.0/1.3 {
		t.Fatalf("per-epoch cost at 16 jobs is %.2fx the 2-job cost (scale %.2f), exceeds 1.3x budget",
			1/cs.Speedup, cs.Speedup)
	}
}

package fleet

import (
	"fmt"
	"math/rand"
	"testing"

	"acr/internal/core"
	"acr/internal/sim"
)

// This file is the fleet's scale story: a discrete-event model of many
// checkpointing jobs — far larger than the live goroutine-backed machines
// can be — driven through sim.Sharded, one shard (event loop) per job. The
// jobs are coupled only through the shared disk-tier bandwidth: every
// window barrier recomputes a congestion factor from the fleet's aggregate
// flush demand, which stretches the next window's checkpoint costs. That is
// exactly the coupling discipline Sharded permits (cross-shard state
// exchanged at barriers only), so shards stay race-free and the fleet clock
// stays deterministic.
//
// cmd/acrbench measures wall-clock per committed epoch at 2 jobs versus 16
// jobs (8× the job count, 131,072 simulated cores at 8,192 cores per job —
// the paper's scale target). A single event loop would serialize all jobs
// through one heap; sharding keeps per-epoch cost flat, which the checked-in
// baseline gates at ≤ 1.3× growth.

// SimFleetSpec shapes a simulated fleet.
type SimFleetSpec struct {
	Jobs        int     `json:"jobs"`
	CoresPerJob int     `json:"cores_per_job"`
	Tau         float64 `json:"tau"`       // checkpoint interval, virtual s
	CkptCost    float64 `json:"ckpt_cost"` // uncongested commit cost, virtual s
	// CoreMTBF is one core's mean time between failures; a job's failure
	// rate is CoresPerJob/CoreMTBF (the paper's scale argument: more cores,
	// proportionally more failures).
	CoreMTBF     float64 `json:"core_mtbf"`
	RecoveryCost float64 `json:"recovery_cost"` // added to the commit after a failure
	// BytesPerCkpt and DiskBytesPerSec couple the jobs: when the fleet's
	// aggregate flush demand over a window exceeds the budget, every job's
	// next-window checkpoint cost stretches by the overload factor.
	BytesPerCkpt    float64 `json:"bytes_per_ckpt"`
	DiskBytesPerSec float64 `json:"disk_bytes_per_sec"`
	Horizon         float64 `json:"horizon"` // virtual seconds simulated
	Window          float64 `json:"window"`  // barrier window, virtual s
	Seed            int64   `json:"seed"`
}

// DefaultSimFleetSpec returns the benchmark shape for a job count: 8,192
// cores per job, so 16 jobs reach the paper's 131,072-core scale.
func DefaultSimFleetSpec(jobs int) SimFleetSpec {
	return SimFleetSpec{
		Jobs:            jobs,
		CoresPerJob:     8192,
		Tau:             1.0,
		CkptCost:        0.05,
		CoreMTBF:        500_000, // ~one failure per job per ~61 virtual s
		RecoveryCost:    0.5,
		BytesPerCkpt:    64 << 20,
		DiskBytesPerSec: 2 << 30, // 2 GiB/s shared budget
		Horizon:         400,
		Window:          8,
		Seed:            1,
	}
}

// SimFleetResult aggregates one simulated-fleet run.
type SimFleetResult struct {
	Jobs            int     `json:"jobs"`
	SimCores        int     `json:"sim_cores"`
	CommittedEpochs int64   `json:"committed_epochs"`
	Failures        int64   `json:"failures"`
	FleetClock      float64 `json:"fleet_clock"`
	MaxCongestion   float64 `json:"max_congestion"`
}

// RunSimFleet runs the fleet model to its horizon. Deterministic in the
// spec (per-job seeded RNGs, barrier-synchronized coupling).
func RunSimFleet(spec SimFleetSpec) SimFleetResult {
	s := sim.NewSharded(spec.Jobs, spec.Window)
	committed := make([]int64, spec.Jobs)
	failures := make([]int64, spec.Jobs)
	pendingRecovery := make([]int64, spec.Jobs)
	// congestion is written only at barriers, read only by the owning
	// shard's events; windowBytes is written by the owning shard, read and
	// zeroed at barriers.
	congestion := make([]float64, spec.Jobs)
	windowBytes := make([]float64, spec.Jobs)
	for i := range congestion {
		congestion[i] = 1
	}

	jobRate := float64(spec.CoresPerJob) / spec.CoreMTBF
	for j := 0; j < spec.Jobs; j++ {
		j := j
		rng := rand.New(rand.NewSource(spec.Seed + int64(j)*1_000_003))
		e := s.Shard(j)

		var commit func(*sim.Engine)
		commit = func(e *sim.Engine) {
			cost := spec.CkptCost * congestion[j]
			if n := pendingRecovery[j]; n > 0 {
				cost += float64(n) * spec.RecoveryCost
				pendingRecovery[j] = 0
			}
			committed[j]++
			windowBytes[j] += spec.BytesPerCkpt
			e.After(spec.Tau+cost, commit)
		}
		e.After(spec.Tau, commit)

		var fail func(*sim.Engine)
		fail = func(e *sim.Engine) {
			failures[j]++
			pendingRecovery[j]++
			e.After(rng.ExpFloat64()/jobRate, fail)
		}
		e.After(rng.ExpFloat64()/jobRate, fail)
	}

	maxCongestion := 1.0
	s.OnWindow = func(t float64) {
		demand := 0.0
		for j := range windowBytes {
			demand += windowBytes[j]
			windowBytes[j] = 0
		}
		factor := 1.0
		if spec.DiskBytesPerSec > 0 {
			if overload := demand / spec.Window / spec.DiskBytesPerSec; overload > 1 {
				factor = overload
			}
		}
		if factor > maxCongestion {
			maxCongestion = factor
		}
		for j := range congestion {
			congestion[j] = factor
		}
	}
	clock := s.Run(spec.Horizon)

	res := SimFleetResult{
		Jobs:          spec.Jobs,
		SimCores:      spec.Jobs * spec.CoresPerJob,
		FleetClock:    clock,
		MaxCongestion: maxCongestion,
	}
	for j := 0; j < spec.Jobs; j++ {
		res.CommittedEpochs += committed[j]
		res.Failures += failures[j]
	}
	return res
}

// FleetScaleCaseName is the acrbench case gating fleet scaling. Its
// "speedup" is per-epoch cost at 2 jobs over per-epoch cost at 16 jobs —
// near-linear scaling holds when it stays near 1.0; the regression gate
// fails below 1/1.3 (per-epoch cost grew more than 1.3× at 8× the jobs).
const FleetScaleCaseName = "fleet-scale/2to16jobs/epoch"

// perEpoch divides a whole-run benchmark result down to per-committed-epoch
// cost, the unit that is comparable across fleet sizes.
func perEpoch(r testing.BenchmarkResult, epochs int64) core.BenchMeasurement {
	if epochs <= 0 {
		return core.BenchMeasurement{}
	}
	return core.BenchMeasurement{
		NsPerOp:     r.NsPerOp() / epochs,
		BytesPerOp:  r.AllocedBytesPerOp() / epochs,
		AllocsPerOp: r.AllocsPerOp() / epochs,
	}
}

// RunFleetScalingBench measures wall-clock per committed epoch at 2 jobs
// ("serial" leg) and 16 jobs ("fast" leg) and packages the pair as a
// core.BenchCase for the acrbench report. Each leg is measured count times,
// fastest kept.
func RunFleetScalingBench(quick bool, count int, logf func(format string, args ...any)) (core.BenchCase, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if count < 1 {
		count = 1
	}
	horizon := 400.0
	if quick {
		horizon = 150.0
	}
	measure := func(jobs int) (core.BenchMeasurement, SimFleetResult, error) {
		spec := DefaultSimFleetSpec(jobs)
		spec.Horizon = horizon
		ref := RunSimFleet(spec)
		if ref.CommittedEpochs == 0 {
			return core.BenchMeasurement{}, ref, fmt.Errorf("fleet-scale: %d-job sim committed no epochs", jobs)
		}
		var best testing.BenchmarkResult
		var benchErr error
		for i := 0; i < count; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for n := 0; n < b.N; n++ {
					got := RunSimFleet(spec)
					if got.CommittedEpochs != ref.CommittedEpochs {
						benchErr = fmt.Errorf("fleet sim nondeterministic: %d epochs, then %d", ref.CommittedEpochs, got.CommittedEpochs)
						b.FailNow()
					}
				}
			})
			if benchErr != nil {
				return core.BenchMeasurement{}, ref, benchErr
			}
			if i == 0 || r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		return perEpoch(best, ref.CommittedEpochs), ref, nil
	}

	small, smallRef, err := measure(2)
	if err != nil {
		return core.BenchCase{}, err
	}
	big, bigRef, err := measure(16)
	if err != nil {
		return core.BenchCase{}, err
	}
	scale := 0.0
	if big.NsPerOp > 0 {
		scale = float64(small.NsPerOp) / float64(big.NsPerOp)
	}
	cs := core.BenchCase{
		Name:    FleetScaleCaseName,
		Serial:  small,
		Fast:    big,
		Speedup: float64(int(scale*100)) / 100,
	}
	if small.AllocsPerOp > 0 {
		cs.AllocRatio = float64(int(float64(big.AllocsPerOp)/float64(small.AllocsPerOp)*100)) / 100
	}
	logf("%-28s 2 jobs (%d cores, %d epochs) %d ns/epoch | 16 jobs (%d cores, %d epochs) %d ns/epoch | scale %.2fx",
		cs.Name, smallRef.SimCores, smallRef.CommittedEpochs, small.NsPerOp,
		bigRef.SimCores, bigRef.CommittedEpochs, big.NsPerOp, cs.Speedup)
	return cs, nil
}

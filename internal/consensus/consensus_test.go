package consensus

import (
	"math/rand"
	"testing"
	"time"

	"acr/internal/pup"
	"acr/internal/runtime"
)

// stepProg runs Iters iterations; each iteration exchanges a message with a
// ring neighbour (so stragglers really block frontier tasks' inputs) and
// does a variable amount of fake work to desynchronize progress.
type stepProg struct {
	Iter  int
	Iters int
	Acc   int64
	seed  int64
}

func (s *stepProg) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&s.Iter)
	p.Label("iters")
	p.Int(&s.Iters)
	p.Label("acc")
	p.Int64(&s.Acc)
}

func (s *stepProg) Run(ctx *runtime.Ctx) error {
	rng := rand.New(rand.NewSource(s.seed + int64(ctx.GlobalTask())))
	n := ctx.NumTasks()
	me := ctx.GlobalTask()
	next := ctx.AddrOfGlobal((me + 1) % n)
	for s.Iter < s.Iters {
		if err := ctx.Send(next, 0, int64(s.Iter)); err != nil {
			return err
		}
		msg, err := ctx.Recv()
		if err != nil {
			return err
		}
		s.Acc += msg.Data.(int64)
		// Desynchronize: occasionally dawdle.
		if rng.Intn(4) == 0 {
			time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
		}
		s.Iter++
		if err := ctx.Progress(s.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

func machineWith(t *testing.T, coord *Coordinator, nodes, tasks, iters int) *runtime.Machine {
	t.Helper()
	m, err := runtime.NewMachine(runtime.Config{
		NodesPerReplica: nodes,
		TasksPerNode:    tasks,
		Factory: func(addr runtime.Addr) runtime.Program {
			return &stepProg{Iters: iters, seed: 42}
		},
		Gate: coord,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

func TestIdlePassthrough(t *testing.T) {
	c := New(2, 2)
	m := machineWith(t, c, 2, 2, 50)
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.Phase() != Idle {
		t.Fatal("phase should stay idle without a request")
	}
	// Progress was recorded (phase 1).
	if got := c.Progress(runtime.Addr{Replica: 0, Node: 0, Task: 0}); got != 49 {
		t.Fatalf("recorded progress = %d, want 49", got)
	}
	if c.MaxProgress(BothReplicas) != 49 {
		t.Fatalf("max progress = %d", c.MaxProgress(BothReplicas))
	}
}

func TestProgressUnknownTask(t *testing.T) {
	c := New(1, 1)
	if c.Progress(runtime.Addr{}) != -1 {
		t.Fatal("unknown task should report -1")
	}
	if c.MaxProgress(BothReplicas) != -1 {
		t.Fatal("empty coordinator max should be -1")
	}
}

// The core protocol property: a requested cut parks every task at exactly
// the same iteration, and no task has started a later iteration.
func TestConsistentCut(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		c := New(2, 2)
		m := machineWith(t, c, 2, 2, 100000)
		m.Start()
		// Let the app desynchronize, then request a cut.
		time.Sleep(5 * time.Millisecond)
		ready, err := c.Request(BothReplicas)
		if err != nil {
			t.Fatal(err)
		}
		var target int
		select {
		case target = <-ready:
		case <-time.After(10 * time.Second):
			t.Fatalf("trial %d: cut never completed (parked %d)", trial, c.ParkedCount())
		}
		if c.Phase() != Ready {
			t.Fatal("phase should be Ready")
		}
		// Every task is parked with a packed state cursor exactly at
		// target+1 (it finished iteration target and advanced).
		for rep := 0; rep < 2; rep++ {
			for n := 0; n < 2; n++ {
				for tk := 0; tk < 2; tk++ {
					addr := runtime.Addr{Replica: rep, Node: n, Task: tk}
					data, err := m.PackTask(addr)
					if err != nil {
						t.Fatal(err)
					}
					var snap stepProg
					if err := pup.Unpack(data, &snap); err != nil {
						t.Fatal(err)
					}
					if snap.Iter != target+1 {
						t.Fatalf("trial %d: %v parked at iter %d, cut target %d", trial, addr, snap.Iter, target)
					}
				}
			}
		}
		// Buddy states must be identical at the cut (the SDC detection
		// premise).
		for n := 0; n < 2; n++ {
			for tk := 0; tk < 2; tk++ {
				d0, err := m.PackTask(runtime.Addr{Replica: 0, Node: n, Task: tk})
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.CheckTask(runtime.Addr{Replica: 1, Node: n, Task: tk}, d0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Match {
					t.Fatalf("buddy states differ at the cut: %v", res.Mismatches)
				}
			}
		}
		c.Release()
		if c.Phase() != Idle {
			t.Fatal("release should return to Idle")
		}
		m.Stop()
	}
}

func TestSingleReplicaScope(t *testing.T) {
	c := New(2, 1)
	m := machineWith(t, c, 2, 1, 100000)
	m.Start()
	time.Sleep(2 * time.Millisecond)
	ready, err := c.Request(OnlyReplica(1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("single-replica cut never completed")
	}
	// Replica 0 tasks are not parked; they keep making progress.
	p0 := c.Progress(runtime.Addr{Replica: 0, Node: 0, Task: 0})
	time.Sleep(5 * time.Millisecond)
	if c.Progress(runtime.Addr{Replica: 0, Node: 0, Task: 0}) <= p0 {
		t.Fatal("out-of-scope replica should keep running")
	}
	c.Release()
}

func TestRequestValidation(t *testing.T) {
	c := New(1, 1)
	if _, err := c.Request(Scope{}); err == nil {
		t.Fatal("empty scope must fail")
	}
	m := machineWith(t, c, 1, 1, 100000)
	m.Start()
	time.Sleep(time.Millisecond)
	ready, err := c.Request(BothReplicas)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request(BothReplicas); err == nil {
		t.Fatal("second concurrent round must fail")
	}
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("cut never completed")
	}
	c.Release()
}

func TestRequestAfterCompletion(t *testing.T) {
	c := New(1, 2)
	m := machineWith(t, c, 1, 2, 5)
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	ready, err := c.Request(BothReplicas)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case target := <-ready:
		// The cut is one past the maximum reported progress (the job
		// finished at iteration 4, so the label is 5); all tasks are
		// done, which satisfies the cut trivially.
		if target != 5 {
			t.Fatalf("target = %d, want 5", target)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("completed job should be instantly ready")
	}
	c.Release()
}

func TestAbortMidRound(t *testing.T) {
	c := New(2, 2)
	m := machineWith(t, c, 2, 2, 100000)
	m.Start()
	time.Sleep(2 * time.Millisecond)
	if _, err := c.Request(BothReplicas); err != nil {
		t.Fatal(err)
	}
	// Abort without waiting for ready: everything resumes.
	c.Release()
	if c.Phase() != Idle {
		t.Fatal("phase after abort should be Idle")
	}
	p := c.Progress(runtime.Addr{Replica: 0, Node: 0, Task: 0})
	time.Sleep(5 * time.Millisecond)
	if c.Progress(runtime.Addr{Replica: 0, Node: 0, Task: 0}) <= p {
		t.Fatal("tasks should resume after abort")
	}
}

func TestForgetAndUndone(t *testing.T) {
	c := New(1, 1)
	m := machineWith(t, c, 1, 1, 3)
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.MaxProgress(OnlyReplica(0)) != 2 {
		t.Fatalf("max = %d", c.MaxProgress(OnlyReplica(0)))
	}
	c.ForgetProgress(0)
	if c.MaxProgress(OnlyReplica(0)) != -1 {
		t.Fatal("ForgetProgress did not clear replica 0")
	}
	if c.MaxProgress(OnlyReplica(1)) != 2 {
		t.Fatal("ForgetProgress cleared the wrong replica")
	}
	c.Undone(0) // must not panic; replica 1 completion marks survive
	ready, err := c.Request(OnlyReplica(1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("replica 1 (all done) should be instantly ready")
	}
	c.Release()
}

func TestPhaseString(t *testing.T) {
	if Idle.String() != "idle" || Deciding.String() != "deciding" || Ready.String() != "ready" {
		t.Fatal("Phase.String broken")
	}
	if Phase(9).String() == "" {
		t.Fatal("unknown phase should format")
	}
}

// Stress: repeated cuts against a long-running app always converge and
// always produce consistent states.
func TestRepeatedCuts(t *testing.T) {
	c := New(2, 2)
	m := machineWith(t, c, 2, 2, 1000000)
	m.Start()
	lastTarget := -1
	for round := 0; round < 10; round++ {
		time.Sleep(time.Millisecond)
		ready, err := c.Request(BothReplicas)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case target := <-ready:
			if target < lastTarget {
				t.Fatalf("cut target moved backwards: %d after %d", target, lastTarget)
			}
			lastTarget = target
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d never completed", round)
		}
		c.Release()
	}
}

// A mixed workload where tasks finish at different times: cuts requested
// while some tasks are done and others are running must still converge.
func TestCutWithPartialCompletion(t *testing.T) {
	c := New(1, 2)
	factory := func(addr runtime.Addr) runtime.Program {
		iters := 3
		if addr.Task == 1 {
			iters = 100000
		}
		return &stepProgNoRing{Iters: iters}
	}
	m, err := runtime.NewMachine(runtime.Config{
		NodesPerReplica: 1, TasksPerNode: 2, Factory: factory, Gate: c,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	m.Start()
	time.Sleep(5 * time.Millisecond) // task 0 long done, task 1 running
	ready, err := c.Request(BothReplicas)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("cut with completed tasks never converged")
	}
	c.Release()
}

// stepProgNoRing iterates without communication, for completion-mix tests.
type stepProgNoRing struct {
	Iter, Iters int
}

func (s *stepProgNoRing) Pup(p *pup.PUPer) {
	p.Int(&s.Iter)
	p.Int(&s.Iters)
}

func (s *stepProgNoRing) Run(ctx *runtime.Ctx) error {
	for s.Iter < s.Iters {
		s.Iter++
		if err := ctx.Progress(s.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

// TestSparseReportingEscalation drives the coordinator directly with tasks
// that report only every other iteration: the decided cut lands on an
// unreachable odd iteration first, and the escalation path in Report must
// raise the target to the next commonly reachable value.
func TestSparseReportingEscalation(t *testing.T) {
	c := New(1, 1) // 2 tasks total (one per replica)
	a0 := runtime.Addr{Replica: 0, Node: 0, Task: 0}
	a1 := runtime.Addr{Replica: 1, Node: 0, Task: 0}
	// Both tasks have reported iteration 4 and are executing 5..6.
	if c.Report(a0, 4) != nil || c.Report(a1, 4) != nil {
		t.Fatal("idle reports must not park")
	}
	ready, err := c.Request(BothReplicas)
	if err != nil {
		t.Fatal(err)
	}
	// Target is 5, but these tasks only report even iterations: the first
	// even report beyond the target must escalate and park.
	ch0 := c.Report(a0, 6)
	if ch0 == nil {
		t.Fatal("task 0 should park at 6")
	}
	ch1 := c.Report(a1, 6)
	if ch1 == nil {
		t.Fatal("task 1 should park at 6")
	}
	select {
	case target := <-ready:
		if target != 6 {
			t.Fatalf("escalated target = %d, want 6", target)
		}
	default:
		t.Fatal("cut should be ready once both parked at 6")
	}
	c.Release()
	select {
	case <-ch0:
	default:
		t.Fatal("release must free parked tasks")
	}
}

// TestMixedCadenceEscalation: one frontier task beyond the target releases
// a task already parked below it.
func TestMixedCadenceEscalation(t *testing.T) {
	c := New(1, 1)
	a0 := runtime.Addr{Replica: 0, Node: 0, Task: 0}
	a1 := runtime.Addr{Replica: 1, Node: 0, Task: 0}
	c.Report(a0, 2)
	c.Report(a1, 2)
	ready, err := c.Request(BothReplicas)
	if err != nil {
		t.Fatal(err)
	}
	// Target 3. Task 0 parks exactly there.
	ch0 := c.Report(a0, 3)
	if ch0 == nil {
		t.Fatal("task 0 should park at target")
	}
	// Task 1 (sparse) reports 4: target escalates, task 0 is released.
	ch1 := c.Report(a1, 4)
	if ch1 == nil {
		t.Fatal("task 1 should park at 4")
	}
	select {
	case <-ch0:
	default:
		t.Fatal("escalation must release tasks parked below the new target")
	}
	// Task 0 catches up to 4 and parks; the cut completes at 4.
	if c.Report(a0, 4) == nil {
		t.Fatal("task 0 should re-park at 4")
	}
	select {
	case target := <-ready:
		if target != 4 {
			t.Fatalf("target = %d, want 4", target)
		}
	default:
		t.Fatal("cut should be ready")
	}
	c.Release()
}

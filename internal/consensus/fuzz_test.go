package consensus

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"acr/internal/runtime"
)

// Model-level fuzz of the coordinator, without a machine: goroutines
// emulate tasks that report strictly increasing iterations and obey the
// gate (blocking on returned channels), in random interleavings. The
// protocol invariants must hold in every schedule:
//
//  1. a requested round terminates (Ready fires);
//  2. the decided target is at least every pre-request report;
//  3. at Ready, every non-done participant is parked at >= target;
//  4. after Release, all tasks run on unimpeded.
func TestCoordinatorFuzz(t *testing.T) {
	f := func(seed int64, nodesRaw, tasksRaw uint8) bool {
		return coordinatorFuzzDriver(seed, nodesRaw, tasksRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FuzzConsensus is the native-fuzzing entry over the same driver, so
// `go test -fuzz=FuzzConsensus` can explore coordinator schedules beyond
// the quick.Check sample.
func FuzzConsensus(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(42), uint8(1), uint8(2))
	f.Add(int64(-7), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nodesRaw, tasksRaw uint8) {
		if !coordinatorFuzzDriver(seed, nodesRaw, tasksRaw) {
			t.Fatalf("coordinator invariant violated: seed=%d nodes=%d tasks=%d",
				seed, int(nodesRaw)%3+1, int(tasksRaw)%3+1)
		}
	})
}

// coordinatorFuzzDriver runs one randomized coordinator schedule and
// reports whether every protocol invariant held.
func coordinatorFuzzDriver(seed int64, nodesRaw, tasksRaw uint8) bool {
	nodes := int(nodesRaw)%3 + 1
	tasks := int(tasksRaw)%3 + 1
	rng := rand.New(rand.NewSource(seed))
	c := New(nodes, tasks)

	total := 2 * nodes * tasks
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Emulated tasks: report 0,1,2,... until stopped; block when the
	// gate says so.
	_ = rng
	for rep := 0; rep < 2; rep++ {
		for n := 0; n < nodes; n++ {
			for tk := 0; tk < tasks; tk++ {
				addr := runtime.Addr{Replica: rep, Node: n, Task: tk}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for iter := 0; ; iter++ {
						ch := c.Report(addr, iter)
						if ch != nil {
							select {
							case <-ch:
							case <-stop:
								return
							}
						}
						select {
						case <-stop:
							return
						default:
						}
					}
				}()
			}
		}
	}

	ok := true
	for round := 0; round < 3 && ok; round++ {
		before := c.MaxProgress(BothReplicas)
		ready, err := c.Request(BothReplicas)
		if err != nil {
			ok = false
			break
		}
		target := <-ready // invariant 1: must terminate
		if target < before {
			ok = false // invariant 2
		}
		// Invariant 3: every participant parked at >= target.
		c.mu.Lock()
		parked := len(c.parkedIter)
		for a, it := range c.parkedIter {
			if it < target {
				ok = false
			}
			_ = a
		}
		if parked != total {
			ok = false
		}
		c.mu.Unlock()
		c.Release()
	}
	close(stop)
	c.Release() // idempotent; frees any stragglers
	wg.Wait()
	return ok
}

// TestCoordinatorTargetMonotone: across consecutive rounds the decided
// target never regresses (progress only moves forward).
func TestCoordinatorTargetMonotone(t *testing.T) {
	c := New(1, 2)
	addrs := []runtime.Addr{
		{Replica: 0, Node: 0, Task: 0},
		{Replica: 0, Node: 0, Task: 1},
		{Replica: 1, Node: 0, Task: 0},
		{Replica: 1, Node: 0, Task: 1},
	}
	iter := make(map[runtime.Addr]int)
	last := -1
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 20; round++ {
		// Random quiescent progress before the request.
		for _, a := range addrs {
			steps := rng.Intn(4)
			for s := 0; s < steps; s++ {
				if ch := c.Report(a, iter[a]); ch != nil {
					t.Fatal("idle report must not park")
				}
				iter[a]++
			}
		}
		ready, err := c.Request(BothReplicas)
		if err != nil {
			t.Fatal(err)
		}
		// Drive every task to the cut synchronously, respecting the gate
		// contract: a parked task reports nothing further.
		parked := map[runtime.Addr]bool{}
		for {
			select {
			case target := <-ready:
				if target < last {
					t.Fatalf("target regressed: %d after %d", target, last)
				}
				last = target
				c.Release()
				goto next
			default:
			}
			for _, a := range addrs {
				if parked[a] {
					continue
				}
				if ch := c.Report(a, iter[a]); ch != nil {
					parked[a] = true
					continue
				}
				iter[a]++
			}
		}
	next:
		// After release, parked tasks resume from their parked iteration.
		for _, a := range addrs {
			iter[a]++
		}
	}
}

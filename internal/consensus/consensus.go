// Package consensus implements ACR's automatic checkpoint decision protocol
// (§2.2): the mechanism that turns "checkpoint now, please" into a globally
// consistent cut without synchronizing the application.
//
// Every task periodically reports its progress (Phase 1). When a checkpoint
// is requested, tasks that are at the progress frontier pause as they
// report, while stragglers keep running (Phase 2); once the frontier
// stabilizes, its value is the checkpoint iteration (Phase 3), every task
// runs exactly up to it and pauses, and when all participants are parked
// the checkpoint can be taken (Phase 4). Because a task only sends messages
// for iteration k while *executing* iteration k, a cut at which every task
// has finished iteration K and not started K+1 has no in-flight messages —
// the hang scenario described in §2.2 cannot occur.
//
// The Coordinator implements runtime.Gate, so plugging it into a Machine is
// all that is needed to steer an application.
package consensus

import (
	"fmt"
	"sync"

	"acr/internal/runtime"
)

// Phase is the protocol state.
type Phase int

// Protocol phases (named after Figure 3).
const (
	// Idle: progress is recorded, nobody pauses.
	Idle Phase = iota
	// Deciding: a checkpoint was requested; frontier tasks pause as they
	// report while the maximum progress is established (Phases 2-3 of
	// Figure 3 merge here because the tracker sees all reports).
	Deciding
	// Ready: every participant is parked at the checkpoint iteration
	// (Phase 4); the caller may capture state, then Release.
	Ready
)

func (p Phase) String() string {
	switch p {
	case Idle:
		return "idle"
	case Deciding:
		return "deciding"
	case Ready:
		return "ready"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Scope selects which replicas participate in a round.
type Scope [2]bool

// BothReplicas is the normal periodic-checkpoint scope.
var BothReplicas = Scope{true, true}

// OnlyReplica returns a scope containing a single replica (used by the
// medium and weak recovery schemes, which checkpoint just the healthy
// replica).
func OnlyReplica(rep int) Scope {
	var s Scope
	s[rep] = true
	return s
}

// Coordinator tracks progress and coordinates checkpoint cuts. It is safe
// for concurrent use and implements runtime.Gate.
type Coordinator struct {
	mu sync.Mutex

	nodesPerReplica int
	tasksPerNode    int

	phase      Phase
	scope      Scope
	target     int // frontier / decided checkpoint iteration
	last       map[runtime.Addr]int
	done       map[runtime.Addr]bool
	parked     map[runtime.Addr]chan struct{}
	parkedIter map[runtime.Addr]int
	readyCh    chan int
}

// New returns a coordinator for a machine with the given shape.
func New(nodesPerReplica, tasksPerNode int) *Coordinator {
	return &Coordinator{
		nodesPerReplica: nodesPerReplica,
		tasksPerNode:    tasksPerNode,
		last:            make(map[runtime.Addr]int),
		done:            make(map[runtime.Addr]bool),
		parked:          make(map[runtime.Addr]chan struct{}),
		parkedIter:      make(map[runtime.Addr]int),
	}
}

// Phase returns the current protocol phase.
func (c *Coordinator) Phase() Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase
}

// Progress returns the last reported iteration of a task (-1 if none).
func (c *Coordinator) Progress(addr runtime.Addr) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if it, ok := c.last[addr]; ok {
		return it
	}
	return -1
}

// MaxProgress returns the maximum reported progress within the scope (-1 if
// nothing was reported).
func (c *Coordinator) MaxProgress(scope Scope) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxProgressLocked(scope)
}

func (c *Coordinator) maxProgressLocked(scope Scope) int {
	m := -1
	for addr, it := range c.last {
		if scope[addr.Replica] && it > m {
			m = it
		}
	}
	return m
}

// Report implements runtime.Gate. Tasks report the iteration they just
// finished (with state already advanced per the runtime contract).
func (c *Coordinator) Report(addr runtime.Addr, iter int) <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last[addr] = iter
	if c.phase != Deciding || !c.scope[addr.Replica] {
		return nil
	}
	if iter < c.target {
		return nil // straggler: run on toward the cut
	}
	// Frontier task: park it. A report beyond the current frontier
	// raises the target and releases everyone parked below it.
	if iter > c.target {
		c.target = iter
		for a, ch := range c.parked {
			if c.parkedIter[a] < c.target {
				close(ch)
				delete(c.parked, a)
				delete(c.parkedIter, a)
			}
		}
	}
	ch := make(chan struct{})
	c.parked[addr] = ch
	c.parkedIter[addr] = iter
	c.checkReadyLocked()
	return ch
}

// Done implements runtime.Gate: the task finished the whole job. Completed
// tasks count as parked for every future cut.
func (c *Coordinator) Done(addr runtime.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[addr] = true
	if c.phase == Deciding {
		c.checkReadyLocked()
	}
}

// Undone clears completion marks for a replica (after it is rolled back).
func (c *Coordinator) Undone(rep int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr := range c.done {
		if addr.Replica == rep {
			delete(c.done, addr)
		}
	}
}

// ForgetProgress drops recorded progress for a replica (call when rolling
// it back, so stale frontier values do not inflate the next cut).
func (c *Coordinator) ForgetProgress(rep int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr := range c.last {
		if addr.Replica == rep {
			delete(c.last, addr)
		}
	}
}

func (c *Coordinator) checkReadyLocked() {
	want := 0
	have := 0
	for rep := 0; rep < 2; rep++ {
		if !c.scope[rep] {
			continue
		}
		want += c.nodesPerReplica * c.tasksPerNode
		for n := 0; n < c.nodesPerReplica; n++ {
			for t := 0; t < c.tasksPerNode; t++ {
				addr := runtime.Addr{Replica: rep, Node: n, Task: t}
				if c.done[addr] {
					have++
				} else if it, ok := c.parkedIter[addr]; ok && it >= c.target {
					have++
				}
			}
		}
	}
	if want > 0 && have == want {
		c.phase = Ready
		ch := c.readyCh
		c.readyCh = nil
		if ch != nil {
			ch <- c.target
			close(ch)
		}
	}
}

// Request begins a checkpoint round over the scope. The returned channel
// delivers the decided checkpoint iteration once every participant is
// parked (Phase 4). Exactly one round may be active at a time.
func (c *Coordinator) Request(scope Scope) (<-chan int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase != Idle {
		return nil, fmt.Errorf("consensus: round already active (phase %v)", c.phase)
	}
	if !scope[0] && !scope[1] {
		return nil, fmt.Errorf("consensus: empty scope")
	}
	c.phase = Deciding
	c.scope = scope
	// The cut is one past the maximum reported progress. Any task is
	// executing at most (its last report + 1) <= target, so no task is
	// ever stranded beyond the cut waiting for input from a parked
	// neighbour; every participant runs through iteration target —
	// emitting all its messages for iterations <= target on the way —
	// and parks when it reports target. (Tasks must report every
	// iteration; sparse reporting is handled by the escalation path in
	// Report.)
	c.target = c.maxProgressLocked(scope) + 1
	ch := make(chan int, 1)
	c.readyCh = ch
	// Everything may already be quiescent (all tasks done).
	c.checkReadyLocked()
	return ch, nil
}

// Release ends the round: every parked task resumes and the coordinator
// returns to Idle. It is also safe to call to abort a round mid-decision
// (e.g. when a failure interrupts checkpointing).
func (c *Coordinator) Release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for a, ch := range c.parked {
		close(ch)
		delete(c.parked, a)
		delete(c.parkedIter, a)
	}
	if c.readyCh != nil {
		close(c.readyCh)
		c.readyCh = nil
	}
	c.phase = Idle
}

// ParkedCount returns how many tasks are currently parked.
func (c *Coordinator) ParkedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.parked)
}

var _ runtime.Gate = (*Coordinator)(nil)

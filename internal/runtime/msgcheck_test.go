package runtime

import (
	"testing"

	"acr/internal/pup"
)

func TestDefaultMessageHasher(t *testing.T) {
	cases := []any{float64(1.5), int64(-3), int(42), []float64{1, 2, 3}}
	sums := map[uint64]bool{}
	for _, v := range cases {
		h, ok := DefaultMessageHasher(v)
		if !ok {
			t.Fatalf("hashable type rejected: %T", v)
		}
		sums[h] = true
	}
	if _, ok := DefaultMessageHasher(struct{}{}); ok {
		t.Fatal("unhashable type accepted")
	}
	// Position dependence of slices.
	a, _ := DefaultMessageHasher([]float64{1, 2})
	b, _ := DefaultMessageHasher([]float64{2, 1})
	if a == b {
		t.Fatal("transposed payload not distinguished")
	}
	// Value dependence.
	c, _ := DefaultMessageHasher(float64(1))
	d, _ := DefaultMessageHasher(float64(2))
	if c == d {
		t.Fatal("different values hash equal")
	}
}

// TestMsgCheckerCleanRun: identical replicas produce identical streams.
func TestMsgCheckerCleanRun(t *testing.T) {
	mc := NewMsgChecker(nil)
	m := newTestMachine(t, Config{
		NodesPerReplica: 2,
		TasksPerNode:    2,
		Factory:         ringFactory(50),
		MsgChecker:      mc,
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if div := mc.Compare(2, 2, true); len(div) != 0 {
		t.Fatalf("clean run diverged: %+v", div)
	}
}

// corruptibleProg sends its state value each iteration; Corrupt flips the
// value that *is* communicated, Hidden flips a value that never leaves the
// task.
type corruptibleProg struct {
	Iter, Iters int
	Sent        float64 // communicated every iteration
	Hidden      float64 // never communicated
}

func (c *corruptibleProg) Pup(p *pup.PUPer) {
	p.Int(&c.Iter)
	p.Int(&c.Iters)
	p.Float64(&c.Sent)
	p.Float64(&c.Hidden)
}

func (c *corruptibleProg) Run(ctx *Ctx) error {
	n := ctx.NumTasks()
	me := ctx.GlobalTask()
	next := ctx.AddrOfGlobal((me + 1) % n)
	for c.Iter < c.Iters {
		if err := ctx.Send(next, 1, c.Sent); err != nil {
			return err
		}
		msg, err := ctx.Recv()
		if err != nil {
			return err
		}
		c.Sent += msg.Data.(float64) * 1e-6
		c.Hidden += 1
		c.Iter++
		if err := ctx.Progress(c.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

// TestMsgCheckerDetectsCommunicatedCorruption: a flip in data that flows
// into messages diverges the streams — the case where §3.3's scheme works
// and even detects *earlier* than checkpoint comparison.
func TestMsgCheckerDetectsCommunicatedCorruption(t *testing.T) {
	mc := NewMsgChecker(nil)
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    2,
		Factory: func(addr Addr) Program {
			return &corruptibleProg{Iters: 500, Sent: 1}
		},
		MsgChecker: mc,
	})
	// Corrupt the communicated value of replica 0, task 0, before launch
	// (deterministic injection point; the corruption flows into every
	// message the task sends).
	m.CorruptTask(Addr{0, 0, 0}, func(p pup.Pupable) {
		p.(*corruptibleProg).Sent = 999
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if div := mc.Compare(1, 2, true); len(div) == 0 {
		t.Fatal("communicated corruption not detected by message comparison")
	}
}

// TestMsgCheckerBlindToLocalCorruption: the §3.3 criticism, demonstrated —
// a flip in data that never leaves the task is invisible to message
// comparison, while the checkpoint-based checker catches it immediately.
func TestMsgCheckerBlindToLocalCorruption(t *testing.T) {
	mc := NewMsgChecker(nil)
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    2,
		Factory: func(addr Addr) Program {
			return &corruptibleProg{Iters: 200, Sent: 1}
		},
		MsgChecker: mc,
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	// Corrupt quiescent, non-communicated state.
	m.CorruptTask(Addr{0, 0, 0}, func(p pup.Pupable) {
		p.(*corruptibleProg).Hidden += 1000
	})
	// Message comparison sees nothing...
	if div := mc.Compare(1, 2, true); len(div) != 0 {
		t.Fatalf("message comparison falsely flagged local corruption: %+v", div)
	}
	// ...while the checkpoint-based checker catches it.
	data, err := m.PackTask(Addr{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.CheckTask(Addr{1, 0, 0}, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Match {
		t.Fatal("checkpoint comparison missed the local corruption")
	}
}

func TestMsgCheckerCountMismatch(t *testing.T) {
	mc := NewMsgChecker(nil)
	mc.observe(Addr{0, 0, 0}, 1, float64(1))
	mc.observe(Addr{0, 0, 0}, 1, float64(2))
	mc.observe(Addr{1, 0, 0}, 1, float64(1))
	// Unequal counts: divergent only when equality is required.
	if div := mc.Compare(1, 1, false); len(div) != 0 {
		t.Fatalf("length difference flagged during execution: %+v", div)
	}
	if div := mc.Compare(1, 1, true); len(div) != 1 {
		t.Fatalf("length difference not flagged at a cut: %+v", div)
	}
}

func TestMsgCheckerReset(t *testing.T) {
	mc := NewMsgChecker(nil)
	mc.observe(Addr{0, 0, 0}, 1, float64(1))
	mc.observe(Addr{1, 0, 0}, 1, float64(2))
	mc.Reset(0)
	div := mc.Compare(1, 1, true)
	if len(div) != 1 || div[0].Count0 != 0 || div[0].Count1 != 1 {
		t.Fatalf("reset semantics wrong: %+v", div)
	}
	mc.ResetAll()
	if div := mc.Compare(1, 1, true); len(div) != 0 {
		t.Fatalf("ResetAll left streams: %+v", div)
	}
}

func TestMsgCheckerUnhashablePayloadsSkipped(t *testing.T) {
	mc := NewMsgChecker(nil)
	mc.observe(Addr{0, 0, 0}, 1, struct{ X int }{1})
	mc.observe(Addr{1, 0, 0}, 1, struct{ X int }{2})
	if div := mc.Compare(1, 1, true); len(div) != 0 {
		t.Fatalf("unhashable payloads must not fold: %+v", div)
	}
}
